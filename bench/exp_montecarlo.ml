(* Sec. VII-D: Monte-Carlo process variation.  Gaussian sigma/mu = 5%
   on cell delays and wire RC, 1000 instances.  Reported: skew yield and
   the normalized standard deviations of peak current and VDD/GND noise.
   Paper: yields 95.5% (PeakMin) vs 83.9% (WaveMin) — WaveMin's
   solutions sit closer to the skew bound; normalized sigmas ~0.05-0.09.

   The paper optimizes and measures yield against kappa = 100 ps on
   nanosecond-latency trees; our trees are an order of magnitude
   shallower, so the equivalent bound here is 35 ps — what matters for
   the phenomenon is how close each optimizer leaves the nominal skew to
   the bound relative to the variation-induced spread.

   The per-circuit compute (synthesis, both optimizers, the Monte-Carlo
   sweep) fans across the domain pool; recording and printing happen
   afterwards, sequentially, in suite order, so report contents are
   independent of the job count. *)

module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Montecarlo = Repro_core.Montecarlo
module Par = Repro_par.Par
module Table = Repro_util.Table

let kappa = 35.0

(* The paper runs 1000 HSPICE instances; the golden evaluator is cheap
   enough to run on a subset while skew is measured on all. *)
let config =
  { Montecarlo.default_config with
    Montecarlo.instances = 1000;
    noise_instances = 48;
    kappa }

let algos = [ Flow.Peakmin; Flow.Wavemin ]

(* One circuit's full compute, run inside a pool worker: everything here
   is pure up to the (domain-safe) metrics/trace registries. *)
let compute params spec =
  let name = spec.Repro_cts.Benchmarks.name in
  Bench_common.time2 @@ fun () ->
  let tree = Repro_cts.Benchmarks.synthesize spec in
  let per_algo =
    List.map
      (fun algo ->
        let run = Flow.run_tree ~params ~name tree algo in
        ignore run;
        let ctx = Context.create ~params tree ~cells:(Flow.leaf_library ()) in
        let assignment =
          match algo with
          | Flow.Peakmin -> (Repro_core.Clk_peakmin.optimize ctx).Context.assignment
          | Flow.Wavemin -> (Repro_core.Clk_wavemin.optimize ctx).Context.assignment
          | Flow.Wavemin_fast | Flow.Initial | Flow.Sa -> assert false
        in
        (algo, Montecarlo.run ~config tree assignment))
      algos
  in
  (tree, per_algo)

(* A reduced sweep timed at jobs = 1 and again at the session's job
   count: the measured speedup goes into the report as runtime metrics
   and an environment note — never as gated quality. *)
let speedup_probe tree assignment =
  let probe =
    { config with Montecarlo.instances = 200; noise_instances = 16 }
  in
  let jobs = Par.jobs () in
  let _, seq_s =
    Bench_common.time (fun () ->
        Par.with_jobs 1 (fun () -> Montecarlo.run ~config:probe tree assignment))
  in
  let _, par_s =
    Bench_common.time (fun () -> Montecarlo.run ~config:probe tree assignment)
  in
  let speedup = seq_s /. Float.max 1e-9 par_s in
  Bench_common.record ~benchmark:"probe" ~algorithm:"montecarlo"
    ~runtime:
      [ ("seq_wall_s", seq_s); ("par_wall_s", par_s); ("speedup", speedup) ]
    ();
  Bench_common.annotate_environment
    [ ("jobs", string_of_int jobs);
      ("mc_speedup", Printf.sprintf "%.2f" speedup) ];
  Bench_common.note
    "speedup probe (200 instances): %.2f s sequential, %.2f s at %d job(s) \
     -> %.2fx"
    seq_s par_s jobs speedup

let run () =
  Bench_common.section
    "Sec. VII-D — Monte-Carlo variation (kappa = 35 ps, sigma/mu = 5%, 1000 instances)";
  let params = { Context.default_params with Context.kappa } in
  let specs =
    List.filter
      (fun s ->
        List.mem s.Repro_cts.Benchmarks.name
          [ "s13207"; "s15850"; "s35932"; "s38584" ])
      Bench_common.table5_suite
    |> Array.of_list
  in
  let results =
    Par.parallel_map ~label:"montecarlo.circuits" (compute params) specs
  in
  let t =
    Table.create
      ~headers:
        [ "circuit"; "algo"; "yield"; "mean skew"; "s/m peak"; "s/m VDD";
          "s/m GND" ]
  in
  let yields = Hashtbl.create 4 in
  Array.iteri
    (fun i ((_, per_algo), wall, cpu) ->
      let name = specs.(i).Repro_cts.Benchmarks.name in
      Bench_common.record_stage name ~wall_s:wall ~cpu_s:cpu;
      List.iter
        (fun (algo, rep) ->
          let key = Flow.algorithm_name algo in
          let prev = try Hashtbl.find yields key with Not_found -> [] in
          Hashtbl.replace yields key (rep.Montecarlo.skew_yield :: prev);
          Bench_common.record ~benchmark:name ~algorithm:key
            ~quality:
              [ ("skew_yield", rep.Montecarlo.skew_yield);
                ("mean_skew_ps", rep.Montecarlo.mean_skew);
                ("norm_std_peak", rep.Montecarlo.norm_std_peak);
                ("norm_std_vdd", rep.Montecarlo.norm_std_vdd);
                ("norm_std_gnd", rep.Montecarlo.norm_std_gnd) ]
            ();
          Table.add_row t
            [ name; key;
              Table.cell_pct (100.0 *. rep.Montecarlo.skew_yield);
              Table.cell_f rep.Montecarlo.mean_skew;
              Table.cell_f ~decimals:3 rep.Montecarlo.norm_std_peak;
              Table.cell_f ~decimals:3 rep.Montecarlo.norm_std_vdd;
              Table.cell_f ~decimals:3 rep.Montecarlo.norm_std_gnd ])
        per_algo)
    results;
  print_string (Table.render t);
  List.iter
    (fun algo ->
      let key = Flow.algorithm_name algo in
      match Hashtbl.find_opt yields key with
      | None -> ()
      | Some ys ->
        let mean =
          List.fold_left ( +. ) 0.0 ys /. float_of_int (List.length ys)
        in
        Bench_common.record ~benchmark:"average" ~algorithm:key
          ~quality:[ ("skew_yield", mean) ]
          ();
        Bench_common.note "average skew yield %s: %.1f%%" key (100.0 *. mean))
    algos;
  (if Array.length results > 0 then
     let (tree, _), _, _ = results.(0) in
     let base = Repro_clocktree.Assignment.default tree ~num_modes:1 in
     speedup_probe tree base);
  Bench_common.note "(paper: ClkPeakMin 95.5%%, ClkWaveMin 83.9%%; sigma/mu ~0.05-0.09)"
