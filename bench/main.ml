(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 5 for the experiment index).

   Usage:
     dune exec bench/main.exe              # run everything
     dune exec bench/main.exe -- table5    # run selected experiments
   Available experiment names: table1 fig2 table2 fig6 fig9 fig11 table5 table6
   montecarlo table7 fig14 ablation dynamic baselines portfolio bechamel

   Every experiment writes a machine-readable run report to
   BENCH_<name>.json in the current directory (override with
   WAVEMIN_BENCH_DIR); compare two reports with
   `dune exec bench/check_regressions.exe -- A.json B.json` or
   `wavemin bench-diff`.  A failing experiment is recorded in its report
   as an error and does not abort the remaining experiments; the harness
   exits nonzero at the end if anything failed. *)

module Report = Repro_obs.Report

let experiments =
  [ ("table1", Exp_table1.run);
    ("fig2", Exp_fig2.run);
    ("table2", Exp_table2.run);
    ("fig6", Exp_fig6.run);
    ("fig9", Exp_fig9.run);
    ("fig11", Exp_fig11.run);
    ("table5", Exp_table5.run);
    ("table6", Exp_table6.run);
    ("montecarlo", Exp_montecarlo.run);
    ("table7", Exp_table7.run);
    ("fig14", Exp_fig14.run);
    ("ablation", Exp_ablation.run);
    ("dynamic", Exp_dynamic.run);
    ("baselines", Exp_baselines.run);
    ("portfolio", Exp_portfolio.run);
    ("bechamel", Exp_bechamel.run) ]

let bench_dir () =
  match Sys.getenv_opt "WAVEMIN_BENCH_DIR" with
  | Some d when d <> "" ->
    if not (Sys.file_exists d) then (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d
  | Some _ | None -> "."

let () =
  Bench_common.init_observability ();
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | [ _ ] | [] -> List.map fst experiments
  in
  let unknown =
    List.filter (fun n -> not (List.mem_assoc n experiments)) requested
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s\n"
      (String.concat ", " unknown)
      (String.concat ", " (List.map fst experiments));
    exit 1
  end;
  let git = Bench_common.git_describe () in
  let suite =
    List.map (fun s -> s.Repro_cts.Benchmarks.name) Repro_cts.Benchmarks.all
  in
  let failed = ref [] in
  List.iter
    (fun name ->
      let run = List.assoc name experiments in
      (* Per-experiment registry snapshot: each report carries only its
         own experiment's instrument activity. *)
      Repro_obs.Metrics.reset ();
      let builder =
        Report.create ~experiment:name ~suite
          ~seeds:(Bench_common.manifest_seeds ())
          ~config:(Bench_common.manifest_config ())
          ~environment:
            [ ("jobs", string_of_int (Repro_par.Par.jobs ())) ]
          ?git ()
      in
      Bench_common.set_report (Some builder);
      let (), wall, cpu =
        Bench_common.time2 (fun () ->
            try Repro_obs.Trace.with_span ~name:("exp." ^ name) run
            with exn ->
              let msg = Printexc.to_string exn in
              Printf.eprintf "[%s FAILED: %s]\n%!" name msg;
              Report.record_error builder msg;
              failed := name :: !failed)
      in
      Bench_common.set_report None;
      Report.add_stage builder ~stage:"total" ~wall_s:wall ~cpu_s:cpu;
      let report = Report.finalize builder in
      let path = Filename.concat (bench_dir ()) ("BENCH_" ^ name ^ ".json") in
      (try
         Report.write path report;
         Bench_common.note "[%s %s in %.1f s wall, %.1f s cpu] -> %s" name
           (match report.Report.status with
           | Report.Completed -> "completed"
           | Report.Failed _ -> "FAILED")
           wall cpu path
       with
       | Sys_error msg ->
         Printf.eprintf "cannot write %s: %s\n%!" path msg;
         if not (List.mem name !failed) then failed := name :: !failed
       | Repro_util.Verrors.Error e ->
         (* e.g. the report-writer fault seam (WAVEMIN_FAULTS). *)
         Printf.eprintf "cannot write %s: %s\n%!" path
           (Repro_util.Verrors.to_string e);
         if not (List.mem name !failed) then failed := name :: !failed))
    requested;
  if !failed <> [] then begin
    Printf.eprintf "%d experiment(s) failed: %s\n%!"
      (List.length !failed)
      (String.concat ", " (List.rev !failed));
    exit 1
  end
