(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 5 for the experiment index).

   Usage:
     dune exec bench/main.exe              # run everything
     dune exec bench/main.exe -- table5    # run selected experiments
   Available experiment names: table1 fig2 table2 fig6 fig9 fig11 table5 table6
   montecarlo table7 fig14 ablation dynamic baselines bechamel *)

let experiments =
  [ ("table1", Exp_table1.run);
    ("fig2", Exp_fig2.run);
    ("table2", Exp_table2.run);
    ("fig6", Exp_fig6.run);
    ("fig9", Exp_fig9.run);
    ("fig11", Exp_fig11.run);
    ("table5", Exp_table5.run);
    ("table6", Exp_table6.run);
    ("montecarlo", Exp_montecarlo.run);
    ("table7", Exp_table7.run);
    ("fig14", Exp_fig14.run);
    ("ablation", Exp_ablation.run);
    ("dynamic", Exp_dynamic.run);
    ("baselines", Exp_baselines.run);
    ("bechamel", Exp_bechamel.run) ]

let () =
  Bench_common.init_observability ();
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | [ _ ] | [] -> List.map fst experiments
  in
  let unknown =
    List.filter (fun n -> not (List.mem_assoc n experiments)) requested
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s\n"
      (String.concat ", " unknown)
      (String.concat ", " (List.map fst experiments));
    exit 1
  end;
  List.iter
    (fun name ->
      let run = List.assoc name experiments in
      let (), wall, cpu =
        Bench_common.time2 (fun () ->
            Repro_obs.Trace.with_span ~name:("exp." ^ name) run)
      in
      Bench_common.note "[%s completed in %.1f s wall, %.1f s cpu]" name wall
        cpu)
    requested
