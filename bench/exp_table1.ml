(* Table I: impact of buffer sizing and polarity assignment of 15
   siblings on one observed buffer.  The observed delay and slew move
   mildly (only the shared parent's load changes), the local rail peaks
   move strongly. *)

module Characterize = Repro_cell.Characterize
module Table = Repro_util.Table

let run () =
  Bench_common.section
    "Table I — sibling polarity/sizing impact (BUF_X16 parent, 16 leaves, BUF_X4 -> INV_X8)";
  let rows =
    Bench_common.report_stage "sibling_sweep" Characterize.sibling_sweep
  in
  let t =
    Table.create
      ~headers:
        [ "#Invs"; "#Bufs"; "T_D rise"; "T_D fall"; "peak IDD"; "peak ISS";
          "slew rise"; "slew fall" ]
  in
  List.iter
    (fun r ->
      Bench_common.record ~benchmark:"sibling_sweep"
        ~algorithm:
          (Printf.sprintf "inv%d_buf%d" r.Characterize.num_inverters
             r.Characterize.num_buffers)
        ~quality:
          [ ("t_d_rise_ps", r.Characterize.obs_t_d_rise);
            ("t_d_fall_ps", r.Characterize.obs_t_d_fall);
            ("peak_idd_ua", r.Characterize.peak_idd);
            ("peak_iss_ua", r.Characterize.peak_iss);
            ("slew_rise_ps", r.Characterize.obs_slew_rise);
            ("slew_fall_ps", r.Characterize.obs_slew_fall) ]
        ();
      Table.add_row t
        [ Table.cell_i r.Characterize.num_inverters;
          Table.cell_i r.Characterize.num_buffers;
          Table.cell_f r.Characterize.obs_t_d_rise;
          Table.cell_f r.Characterize.obs_t_d_fall;
          Table.cell_f r.Characterize.peak_idd;
          Table.cell_f r.Characterize.peak_iss;
          Table.cell_f r.Characterize.obs_slew_rise;
          Table.cell_f r.Characterize.obs_slew_fall ])
    rows;
  print_string (Table.render t);
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  Bench_common.record ~benchmark:"sibling_sweep" ~algorithm:"shape_check"
    ~quality:
      [ ( "delay_moved_ps",
          Float.abs
            (last.Characterize.obs_t_d_rise -. first.Characterize.obs_t_d_rise)
        );
        ( "slew_moved_ps",
          Float.abs
            (last.Characterize.obs_slew_rise
            -. first.Characterize.obs_slew_rise) );
        ( "idd_peak_ratio",
          Float.max
            (last.Characterize.peak_idd /. first.Characterize.peak_idd)
            (first.Characterize.peak_idd /. last.Characterize.peak_idd) ) ]
    ();
  Bench_common.note
    "shape check: delay moved %.1f ps, slew moved %.1f ps, IDD peak moved %.1fx"
    (Float.abs (last.Characterize.obs_t_d_rise -. first.Characterize.obs_t_d_rise))
    (Float.abs (last.Characterize.obs_slew_rise -. first.Characterize.obs_slew_rise))
    (Float.max
       (last.Characterize.peak_idd /. first.Characterize.peak_idd)
       (first.Characterize.peak_idd /. last.Characterize.peak_idd))
