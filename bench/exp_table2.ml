(* Table II / Table III: characterization of the toy X1/X2 library at
   both supply levels, next to the paper's published values — these are
   the anchor points the electrical models are calibrated against.
   Also prints a Fig. 7-style sampling of a buffer's waveform hot
   spots. *)

module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Library = Repro_cell.Library
module Characterize = Repro_cell.Characterize
module Pwl = Repro_waveform.Pwl
module Table = Repro_util.Table

(* The paper's Table II / Table III values: (T_D, P+, P-) per supply. *)
let paper =
  [ ("BUF_X1", (24.0, 130.0, 13.0), (27.0, 120.0, 10.0));
    ("BUF_X2", (19.0, 255.0, 44.0), (23.0, 234.0, 36.0));
    ("INV_X1", (21.0, 13.0, 130.0), (24.0, 10.0, 120.0));
    ("INV_X2", (17.0, 44.0, 255.0), (22.0, 36.0, 234.0)) ]

let load = 2.0 (* fF — the toy cells drive small FF groups *)

let measure cell vdd =
  let d = Electrical.delay cell ~vdd ~load ~edge:Electrical.Rising () in
  let p_plus =
    Electrical.peak_of_event cell ~vdd ~load ~edge:Electrical.Rising
      ~rail:Cell.Vdd_rail
  in
  let p_minus =
    Electrical.peak_of_event cell ~vdd ~load ~edge:Electrical.Falling
      ~rail:Cell.Vdd_rail
  in
  (d, p_plus, p_minus)

let run () =
  Bench_common.section
    "Table II / III — toy-library characterization vs the paper's anchors";
  let t =
    Table.create
      ~headers:
        [ "cell"; "VDD"; "T_D ours"; "T_D paper"; "P+ ours"; "P+ paper";
          "P- ours"; "P- paper" ]
  in
  Bench_common.report_stage "characterize" (fun () ->
  List.iter
    (fun (name, at11, at09) ->
      let cell = Library.find name in
      List.iter
        (fun (vdd, (pd, pp, pm)) ->
          let d, p_plus, p_minus = measure cell vdd in
          Bench_common.record
            ~benchmark:(Printf.sprintf "%s@%.1fV" name vdd)
            ~algorithm:"characterize"
            ~quality:
              [ ("t_d_ps", d); ("p_plus_ua", p_plus); ("p_minus_ua", p_minus);
                ("paper_t_d_ps", pd); ("paper_p_plus_ua", pp);
                ("paper_p_minus_ua", pm) ]
            ();
          Table.add_row t
            [ name; Table.cell_f ~decimals:1 vdd;
              Table.cell_f ~decimals:1 d; Table.cell_f ~decimals:0 pd;
              Table.cell_f ~decimals:0 p_plus; Table.cell_f ~decimals:0 pp;
              Table.cell_f ~decimals:0 p_minus; Table.cell_f ~decimals:0 pm ])
        [ (1.1, at11); (0.9, at09) ])
    paper);
  print_string (Table.render t);
  Bench_common.note
    "anchors: P+ within ~15%% of Table II at both supplies; T_D ordering (INV < BUF, X2 < X1) preserved";

  Bench_common.section "Fig. 7 — waveform hot-spot sampling of BUF_X8";
  let p, samples =
    Bench_common.report_stage "hot_spot_sampling" (fun () ->
        let p =
          Characterize.profile (Library.buf 8) ~vdd:1.1 ~load:12.0
            ~period:2000.0 ()
        in
        (p, Characterize.hot_spot_times p ~count:12))
  in
  Bench_common.record ~benchmark:"BUF_X8@1.1V" ~algorithm:"hot_spots"
    ~quality:
      [ ("num_samples", float_of_int (Array.length samples));
        ("first_sample_ps", samples.(0));
        ("last_sample_ps", samples.(Array.length samples - 1));
        ("peak_idd_ua", Repro_waveform.Pwl.peak p.Characterize.idd) ]
    ();
  Bench_common.note "12 hot-spot sampling points (ps): %s"
    (String.concat ", "
       (Array.to_list (Array.map (fun t -> Printf.sprintf "%.1f" t) samples)));
  Bench_common.note "I_DD at those points (uA): %s"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun t -> Printf.sprintf "%.0f" (Pwl.eval p.Characterize.idd t))
             samples)))
