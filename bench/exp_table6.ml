(* Table VI: effect of the number of time sampling points.  ClkPeakMin,
   ClkWaveMin with |S| in {4, 8, 158}, and ClkWaveMin-f (|S| = 158);
   golden peak current and optimizer execution time per circuit.  The
   paper's shape: more sampling points never hurt, and ClkWaveMin-f is
   close in quality at a fraction of the runtime (occasionally even
   better under golden evaluation, which the paper attributes to the
   noise-model/HSPICE mismatch). *)

module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Golden = Repro_core.Golden
module Table = Repro_util.Table

let with_slots n = { Context.default_params with Context.num_slots = n }

let run () =
  Bench_common.section
    "Table VI — sampling granularity and the fast algorithm (kappa = 20 ps)";
  let t =
    Table.create
      ~headers:
        [ "circuit"; "PM peak"; "PM t(s)"; "WM4 peak"; "WM4 t(s)"; "WM8 peak";
          "WM8 t(s)"; "WM158 peak"; "WM158 t(s)"; "WMf peak"; "WMf t(s)" ]
  in
  List.iter
    (fun spec ->
      let name = spec.Repro_cts.Benchmarks.name in
      Bench_common.report_stage name @@ fun () ->
      let tree = Repro_cts.Benchmarks.synthesize spec in
      let cell ?suffix (r : Flow.run) =
        Bench_common.record_run ?algorithm_suffix:suffix r;
        ( Table.cell_f r.Flow.metrics.Golden.peak_current_ma,
          Table.cell_f ~decimals:3 r.Flow.elapsed_s )
      in
      let pm_p, pm_t = cell (Flow.run_tree ~name tree Flow.Peakmin) in
      let w4_p, w4_t =
        cell ~suffix:"@s4"
          (Flow.run_tree ~params:(with_slots 4) ~name tree Flow.Wavemin)
      in
      let w8_p, w8_t =
        cell ~suffix:"@s8"
          (Flow.run_tree ~params:(with_slots 8) ~name tree Flow.Wavemin)
      in
      let w158_p, w158_t = cell (Flow.run_tree ~name tree Flow.Wavemin) in
      let wf_p, wf_t = cell (Flow.run_tree ~name tree Flow.Wavemin_fast) in
      Table.add_row t
        [ name; pm_p; pm_t; w4_p; w4_t; w8_p; w8_t; w158_p; w158_t; wf_p; wf_t ])
    Bench_common.table5_suite;
  print_string (Table.render t);
  Bench_common.note
    "shape: |S|=158 <= |S|=8 <= |S|=4 on peak (mostly); ClkWaveMin-f ~ClkWaveMin quality, far faster"
