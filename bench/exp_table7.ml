(* Table VII: multi-power-mode designs.  Four power modes over 4-10
   voltage islands at 0.9/1.1 V; three skew bounds per circuit.
   Compared: the noise-unaware ADB-embedded-only design (the [17]
   reference) vs ClkWaveMin-M.  Reported: worst-mode peak current and
   VDD/GND noise, #ADBs, #ADIs and improvements.  Paper average: 16.4%
   peak current reduction.

   Skew bounds: the paper uses 90/110/130 ps on trees with nanosecond
   source latencies (6-10 %% of latency); our synthetic trees are
   shallower, so the bounds are scaled to 16/24/32 ps, the same
   position relative to the mode-induced skew (see EXPERIMENTS.md). *)

module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Clk_wavemin_m = Repro_core.Clk_wavemin_m
module Adb_embedding = Repro_core.Adb_embedding
module Golden = Repro_core.Golden
module Islands = Repro_cts.Islands
module Timing = Repro_clocktree.Timing
module Table = Repro_util.Table

let skew_bounds = [ 16.0; 24.0; 32.0 ]

let envs_for spec tree =
  ignore tree;
  let islands =
    Islands.grid ~die_side:spec.Repro_cts.Benchmarks.die_side
      ~count:(4 + (spec.Repro_cts.Benchmarks.seed mod 7))
  in
  let rng = Repro_util.Rng.create ~seed:(spec.Repro_cts.Benchmarks.seed * 31) in
  let modes = Islands.random_modes rng islands ~num_modes:4 () in
  Array.mapi
    (fun mode_idx vdds ->
      { (Timing.nominal ~mode:mode_idx ()) with
        Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands vdds nd) })
    modes

let params_for kappa =
  { Context.default_params with
    Context.kappa;
    num_slots = Bench_common.multimode_slots;
    max_interval_classes = 8;
    max_labels = 200 }

let run () =
  Bench_common.section
    "Table VII — multi-power-mode designs: ADB-embedded-only [17] vs ClkWaveMin-M";
  let t =
    Table.create
      ~headers:
        [ "circuit"; "kappa"; "ref peak"; "ref VDD"; "ref GND"; "ref #ADB";
          "WM-M peak"; "WM-M VDD"; "WM-M GND"; "#ADB"; "#ADI"; "dPeak%" ]
  in
  let sum = ref 0.0 and count = ref 0 in
  List.iter
    (fun spec ->
      let name = spec.Repro_cts.Benchmarks.name in
      Bench_common.report_stage name @@ fun () ->
      let tree = Repro_cts.Benchmarks.synthesize spec in
      let envs = envs_for spec tree in
      List.iter
        (fun kappa ->
          let params = params_for kappa in
          let reference = Clk_wavemin_m.adb_embedded_only ~params tree ~envs in
          let ref_m =
            Golden.worst_over_modes tree reference.Adb_embedding.assignment envs
          in
          let o = Clk_wavemin_m.optimize ~params tree ~envs in
          let opt_m = Golden.worst_over_modes tree o.Clk_wavemin_m.assignment envs in
          let dp =
            Flow.improvement_pct ~baseline:ref_m.Golden.peak_current_ma
              ~value:opt_m.Golden.peak_current_ma
          in
          sum := !sum +. dp;
          incr count;
          Bench_common.record ~benchmark:name
            ~algorithm:(Printf.sprintf "adb-embedded@k%.0f" kappa)
            ~quality:
              [ ("peak_current_ma", ref_m.Golden.peak_current_ma);
                ("vdd_noise_mv", ref_m.Golden.vdd_noise_mv);
                ("gnd_noise_mv", ref_m.Golden.gnd_noise_mv);
                ( "num_adbs",
                  float_of_int reference.Adb_embedding.num_adbs ) ]
            ();
          Bench_common.record ~benchmark:name
            ~algorithm:(Printf.sprintf "wavemin-m@k%.0f" kappa)
            ~quality:
              [ ("peak_current_ma", opt_m.Golden.peak_current_ma);
                ("vdd_noise_mv", opt_m.Golden.vdd_noise_mv);
                ("gnd_noise_mv", opt_m.Golden.gnd_noise_mv);
                ("num_adbs", float_of_int o.Clk_wavemin_m.num_adbs);
                ("num_adis", float_of_int o.Clk_wavemin_m.num_adis);
                ("d_peak_pct", dp) ]
            ();
          Table.add_row t
            [ spec.Repro_cts.Benchmarks.name;
              Table.cell_f ~decimals:0 kappa;
              Table.cell_f ref_m.Golden.peak_current_ma;
              Table.cell_f ref_m.Golden.vdd_noise_mv;
              Table.cell_f ref_m.Golden.gnd_noise_mv;
              Table.cell_i reference.Adb_embedding.num_adbs;
              Table.cell_f opt_m.Golden.peak_current_ma;
              Table.cell_f opt_m.Golden.vdd_noise_mv;
              Table.cell_f opt_m.Golden.gnd_noise_mv;
              Table.cell_i o.Clk_wavemin_m.num_adbs;
              Table.cell_i o.Clk_wavemin_m.num_adis;
              Table.cell_pct dp ])
        skew_bounds)
    Bench_common.table5_suite;
  print_string (Table.render t);
  Bench_common.record ~benchmark:"average" ~algorithm:"wavemin-m"
    ~quality:[ ("d_peak_pct", !sum /. float_of_int !count) ]
    ();
  Bench_common.note "average peak improvement: %.2f%% (paper: 16.38%%)"
    (!sum /. float_of_int !count)
