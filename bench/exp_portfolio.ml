(* Solver portfolio: ClkWaveMin, ClkWaveMin-f and ClkSA raced
   sequentially over a shared prepared context; the member with the
   lowest golden peak current wins.  The report records the winner, each
   member's wall time and peak, and the annealer's move counters in the
   environment block (machine-dependent numbers are never gated), plus
   the winner's quality as ordinary gated samples.

   A second pass re-solves with the warm-started quench seeded from the
   cold SA solution — the server's ECO path — and reports the move-count
   saving. *)

module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Golden = Repro_core.Golden
module Clk_sa = Repro_core.Clk_sa
module Benchmarks = Repro_cts.Benchmarks
module Table = Repro_util.Table
module Verrors = Repro_util.Verrors

let suite = [ "s13207"; "s15850" ]

let fmt_f = Printf.sprintf "%.3f"

let member_rows t name (r : Flow.run) =
  List.iter
    (fun (e : Flow.portfolio_entry) ->
      Table.add_row t
        [ name;
          Flow.algorithm_name e.Flow.member;
          (if e.Flow.won then "won"
           else match e.Flow.failure with Some _ -> "failed" | None -> "lost");
          (match e.Flow.peak_ma with
          | Some p -> Table.cell_f p
          | None -> "-");
          Table.cell_f ~decimals:3 e.Flow.wall_s ];
      Bench_common.record ~benchmark:name
        ~algorithm:("portfolio-" ^ Flow.algorithm_name e.Flow.member)
        ~runtime:[ ("wall_s", e.Flow.wall_s) ]
        ();
      Bench_common.annotate_environment
        [ ( Printf.sprintf "portfolio_%s_%s_wall_s" name
              (Flow.algorithm_name e.Flow.member),
            fmt_f e.Flow.wall_s ) ])
    r.Flow.portfolio

let sa_environment name prefix (s : Clk_sa.stats) =
  Bench_common.annotate_environment
    [ (Printf.sprintf "%s_%s_proposed" prefix name, string_of_int s.Clk_sa.proposed);
      (Printf.sprintf "%s_%s_accepted" prefix name, string_of_int s.Clk_sa.accepted);
      (Printf.sprintf "%s_%s_rejected" prefix name, string_of_int s.Clk_sa.rejected);
      (Printf.sprintf "%s_%s_restarts" prefix name, string_of_int s.Clk_sa.restarts) ]

let run () =
  Bench_common.section
    "Solver portfolio — best-under-budget race (ClkWaveMin, ClkWaveMin-f, ClkSA)";
  let params = Context.default_params in
  let t =
    Table.create
      ~headers:[ "circuit"; "member"; "result"; "peak (mA)"; "wall (s)" ]
  in
  List.iter
    (fun name ->
      let spec = Benchmarks.find name in
      let tree = Benchmarks.synthesize spec in
      let prep = Flow.prepare ~params ~name tree in
      let (outcome, sa_run), wall, cpu =
        Bench_common.time2 (fun () ->
            let outcome = Flow.run_prepared_portfolio prep in
            (* A standalone SA run over the same prepared context, for
               the annealer's move counters regardless of who won. *)
            let sa_run = Flow.run_prepared prep Flow.Sa in
            (outcome, sa_run))
      in
      Bench_common.record_stage name ~wall_s:wall ~cpu_s:cpu;
      (match outcome with
      | Error (e, _) ->
        Bench_common.note "portfolio failed on %s: %s" name
          (Verrors.to_string e)
      | Ok r ->
        member_rows t name r;
        Bench_common.annotate_environment
          [ ( "portfolio_winner_" ^ name,
              Flow.algorithm_name r.Flow.algorithm ) ];
        Bench_common.record ~benchmark:name ~algorithm:"Portfolio"
          ~quality:
            [ ("peak_current_ma", r.Flow.metrics.Golden.peak_current_ma);
              ("vdd_noise_mv", r.Flow.metrics.Golden.vdd_noise_mv);
              ("gnd_noise_mv", r.Flow.metrics.Golden.gnd_noise_mv);
              ("skew_ps", r.Flow.metrics.Golden.skew_ps) ]
          ();
        Bench_common.note "%s: winner %s (peak %.2f mA)" name
          (Flow.algorithm_name r.Flow.algorithm)
          r.Flow.metrics.Golden.peak_current_ma);
      (match sa_run.Flow.sa with
      | Some s -> sa_environment name "sa" s
      | None -> ());
      (* Warm-started ECO re-solve from the cold SA solution: same
         objective regime, a fraction of the moves. *)
      match Flow.resolve_warm prep ~previous:sa_run.Flow.assignment with
      | Error (e, _) ->
        Bench_common.note "warm re-solve failed on %s: %s" name
          (Verrors.to_string e)
      | Ok warm_run ->
        (match warm_run.Flow.sa with
        | Some s -> sa_environment name "warm" s
        | None -> ());
        let saving =
          match (sa_run.Flow.sa, warm_run.Flow.sa) with
          | Some cold, Some warm when cold.Clk_sa.proposed > 0 ->
            100.0
            *. (1.0
               -. float_of_int warm.Clk_sa.proposed
                  /. float_of_int cold.Clk_sa.proposed)
          | _ -> 0.0
        in
        Bench_common.record ~benchmark:name ~algorithm:"ClkSA-warm"
          ~quality:
            [ ("peak_current_ma", warm_run.Flow.metrics.Golden.peak_current_ma);
              ("skew_ps", warm_run.Flow.metrics.Golden.skew_ps) ]
          ~runtime:[ ("wall_s", warm_run.Flow.elapsed_s) ]
          ();
        Bench_common.note
          "%s: warm quench %.2f mA in %d moves (cold %d, %.0f%% fewer)" name
          warm_run.Flow.metrics.Golden.peak_current_ma
          (match warm_run.Flow.sa with
          | Some s -> s.Clk_sa.proposed
          | None -> 0)
          (match sa_run.Flow.sa with
          | Some s -> s.Clk_sa.proposed
          | None -> 0)
          saving)
    suite;
  print_string (Table.render t)
