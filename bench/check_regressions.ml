(* Regression gate over two run reports:

     dune exec bench/check_regressions.exe -- BASELINE.json CANDIDATE.json

   Compares every quality metric exact-or-epsilon and every runtime with
   a generous slowdown ratio (see Repro_obs.Report.diff), prints a
   readable diff table, and exits 0 when clean, 1 on regressions, 2 on
   usage or I/O errors.  `wavemin bench-diff` is the same gate behind
   the CLI front end; CI runs this one against bench/baselines/. *)

module Report = Repro_obs.Report

let usage () =
  prerr_endline
    "usage: check_regressions [OPTIONS] BASELINE.json CANDIDATE.json\n\
     \n\
     options:\n\
    \  --quality-rtol E    relative quality tolerance (default 1e-6)\n\
    \  --quality-atol E    absolute quality tolerance (default 1e-9)\n\
    \  --runtime-ratio R   slowdown factor that fails the gate (default 5.0)\n\
    \  --runtime-slack S   seconds a runtime may grow regardless (default 0.25)";
  exit 2

let () =
  let tol = ref Report.default_tolerances in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quality-rtol" :: v :: rest ->
      tol := { !tol with Report.quality_rtol = float_of_string v };
      parse rest
    | "--quality-atol" :: v :: rest ->
      tol := { !tol with Report.quality_atol = float_of_string v };
      parse rest
    | "--runtime-ratio" :: v :: rest ->
      tol := { !tol with Report.runtime_ratio = float_of_string v };
      parse rest
    | "--runtime-slack" :: v :: rest ->
      tol := { !tol with Report.runtime_slack_s = float_of_string v };
      parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      Printf.eprintf "unknown option %s\n" arg;
      usage ()
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
  in
  (try parse (List.tl (Array.to_list Sys.argv))
   with Failure _ -> usage ());
  match List.rev !positional with
  | [ baseline_path; candidate_path ] ->
    let load path =
      match Report.read path with
      | Ok r -> r
      | Error msg ->
        Printf.eprintf "cannot read report %s: %s\n" path msg;
        exit 2
    in
    let baseline = load baseline_path in
    let candidate = load candidate_path in
    let changes = Report.diff ~tol:!tol ~baseline ~candidate () in
    print_string (Report.render_diff changes);
    exit (if Report.failures changes = [] then 0 else 1)
  | _ -> usage ()
