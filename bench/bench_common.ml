(* Shared helpers for the experiment harness. *)

module Obs_clock = Repro_obs.Clock
module Obs_trace = Repro_obs.Trace
module Obs_metrics = Repro_obs.Metrics

let section title =
  let bar = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n%!" bar title bar

let note fmt = Printf.printf (fmt ^^ "\n%!")

(* Wall-clock timing on the monotonic clock; [Sys.time] would report CPU
   seconds and hide any blocked/descheduled time. *)
let time f =
  let t0 = Obs_clock.now_s () in
  let r = f () in
  (r, Obs_clock.now_s () -. t0)

(* Wall and CPU seconds together, for stages where the distinction
   matters (e.g. Table VI runtime columns). *)
let time2 f =
  let t0 = Obs_clock.now_s () in
  let c0 = Obs_clock.cpu_s () in
  let r = f () in
  (r, Obs_clock.now_s () -. t0, Obs_clock.cpu_s () -. c0)

(* Run [f] as a named pipeline stage: recorded as a trace span (when
   tracing is on) and reported with its wall time. *)
let stage name f =
  Obs_trace.with_span ~name (fun () ->
      let r, dt = time f in
      note "  [stage] %-40s %8.2f s" name dt;
      r)

(* Opt-in observability for every exp_* driver: WAVEMIN_TRACE=<path>
   enables span tracing and writes a Chrome trace-event file on exit;
   WAVEMIN_METRICS=1 dumps the metrics registry on exit. *)
let init_observability () =
  (match Sys.getenv_opt "WAVEMIN_TRACE" with
  | None -> ()
  | Some path ->
    Obs_trace.set_enabled true;
    at_exit (fun () ->
        try
          Obs_trace.write_chrome_json path;
          note "wrote Chrome trace to %s (open in chrome://tracing or Perfetto)"
            path
        with Sys_error msg ->
          Printf.eprintf "cannot write trace file: %s\n%!" msg));
  match Sys.getenv_opt "WAVEMIN_METRICS" with
  | None | Some "" | Some "0" -> ()
  | Some _ ->
    at_exit (fun () ->
        section "Metrics";
        print_string (Obs_metrics.dump ()))

(* The benchmarks of Table V in paper order. *)
let table5_suite = Repro_cts.Benchmarks.all

(* Cheaper parameters for the heavy multi-mode experiments; the skew
   bounds are scaled from the paper's 90/110/130 ps to our trees'
   shorter source latencies (see EXPERIMENTS.md). *)
let multimode_slots = 24
