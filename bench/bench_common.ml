(* Shared helpers for the experiment harness. *)

module Obs_clock = Repro_obs.Clock
module Obs_trace = Repro_obs.Trace
module Obs_metrics = Repro_obs.Metrics
module Report = Repro_obs.Report
module Flow = Repro_core.Flow
module Golden = Repro_core.Golden

let section title =
  let bar = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n%!" bar title bar

let note fmt = Printf.printf (fmt ^^ "\n%!")

(* Wall-clock timing on the monotonic clock; [Sys.time] would report CPU
   seconds and hide any blocked/descheduled time. *)
let time f =
  let t0 = Obs_clock.now_s () in
  let r = f () in
  (r, Obs_clock.now_s () -. t0)

(* Wall and CPU seconds together, for stages where the distinction
   matters (e.g. Table VI runtime columns). *)
let time2 f =
  let t0 = Obs_clock.now_s () in
  let c0 = Obs_clock.cpu_s () in
  let r = f () in
  (r, Obs_clock.now_s () -. t0, Obs_clock.cpu_s () -. c0)

(* ---- run reports --------------------------------------------------
   bench/main.ml opens a Report.builder per experiment and installs it
   here; the exp_* drivers record their headline numbers and stage
   timings into whichever report is current.  With no current report
   (e.g. a driver called directly from a test) recording is a no-op. *)

let current_report : Report.builder option ref = ref None
let set_report b = current_report := b

let record ~benchmark ~algorithm ?quality ?runtime () =
  match !current_report with
  | None -> ()
  | Some b -> Report.add_sample b ~benchmark ~algorithm ?quality ?runtime ()

(* Record execution-environment facts (job count, measured speedups)
   into the current report's manifest.  Environment entries are never
   gated by the regression diff, so they are the right home for numbers
   that vary with the machine. *)
let annotate_environment kvs =
  match !current_report with
  | None -> ()
  | Some b -> Report.add_environment b kvs

(* The standard per-algorithm sample of a single-mode flow run: the
   golden quality metrics plus the optimizer's wall/CPU time.  Fallback
   links of a robust run land in the report's (non-gated) degradations
   block; plain runs have none. *)
let record_run ?(algorithm_suffix = "") (r : Flow.run) =
  let algorithm = Flow.algorithm_name r.Flow.algorithm ^ algorithm_suffix in
  record ~benchmark:r.Flow.benchmark ~algorithm
    ~quality:
      [ ("peak_current_ma", r.Flow.metrics.Golden.peak_current_ma);
        ("vdd_noise_mv", r.Flow.metrics.Golden.vdd_noise_mv);
        ("gnd_noise_mv", r.Flow.metrics.Golden.gnd_noise_mv);
        ("skew_ps", r.Flow.metrics.Golden.skew_ps);
        ("predicted_peak_ua", r.Flow.predicted_peak_ua);
        ("num_leaf_inverters", float_of_int r.Flow.num_leaf_inverters) ]
    ~runtime:[ ("wall_s", r.Flow.elapsed_s); ("cpu_s", r.Flow.cpu_s) ]
    ();
  match !current_report with
  | None -> ()
  | Some b ->
    List.iter
      (fun (d : Flow.degradation) ->
        Report.add_degradation b
          { Report.benchmark = r.Flow.benchmark;
            algorithm;
            from_alg = Flow.algorithm_name d.Flow.from_alg;
            to_alg = Option.map Flow.algorithm_name d.Flow.to_alg;
            code = Repro_util.Verrors.code_name d.Flow.error.Repro_util.Verrors.code;
            detail = d.Flow.error.Repro_util.Verrors.message })
      r.Flow.degradations

(* Stage entry for work that was timed elsewhere — e.g. inside a
   parallel worker, where recording must wait for the sequential
   reporting phase to keep report order stable. *)
let record_stage name ~wall_s ~cpu_s =
  note "  [stage] %-40s %8.2f s" name wall_s;
  match !current_report with
  | None -> ()
  | Some b -> Report.add_stage b ~stage:name ~wall_s ~cpu_s

(* Run [f] as a named pipeline stage: recorded as a trace span (when
   tracing is on), as a wall/CPU stage entry of the current run report,
   and reported with its wall time. *)
let report_stage name f =
  Obs_trace.with_span ~name (fun () ->
      let r, wall, cpu = time2 f in
      record_stage name ~wall_s:wall ~cpu_s:cpu;
      r)

(* [git describe] of the producing checkout for the report manifest;
   None outside a git checkout (or without git on PATH). *)
let git_describe () =
  let tmp = Filename.temp_file "wavemin_git" ".txt" in
  let cmd =
    Printf.sprintf "git describe --always --dirty --tags > %s 2>/dev/null"
      (Filename.quote tmp)
  in
  let result =
    if (try Sys.command cmd with Sys_error _ -> 1) = 0 then (
      let ic = open_in tmp in
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      match line with Some "" -> None | r -> r)
    else None
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  result

(* Manifest ingredients shared by every experiment: the Table V suite
   with its synthesis seeds, and the default solver configuration. *)
let manifest_seeds () =
  List.map
    (fun spec ->
      (spec.Repro_cts.Benchmarks.name, spec.Repro_cts.Benchmarks.seed))
    Repro_cts.Benchmarks.all

let manifest_config () =
  let p = Repro_core.Context.default_params in
  [ ("kappa", string_of_float p.Repro_core.Context.kappa);
    ("epsilon", string_of_float p.Repro_core.Context.epsilon);
    ("num_slots", string_of_int p.Repro_core.Context.num_slots);
    ("zone_side", string_of_float p.Repro_core.Context.zone_side);
    ("max_labels", string_of_int p.Repro_core.Context.max_labels);
    ("coalesce", string_of_float p.Repro_core.Context.coalesce);
    ( "max_interval_classes",
      string_of_int p.Repro_core.Context.max_interval_classes );
    ("sibling_guard", string_of_float p.Repro_core.Context.sibling_guard) ]

(* Opt-in observability for every exp_* driver: WAVEMIN_TRACE=<path>
   enables span tracing and writes a Chrome trace-event file on exit;
   WAVEMIN_METRICS=1 dumps the metrics registry on exit. *)
let init_observability () =
  (match Sys.getenv_opt "WAVEMIN_TRACE" with
  | None -> ()
  | Some path ->
    Obs_trace.set_enabled true;
    at_exit (fun () ->
        try
          Obs_trace.write_chrome_json path;
          note "wrote Chrome trace to %s (open in chrome://tracing or Perfetto)"
            path
        with Sys_error msg ->
          Printf.eprintf "cannot write trace file: %s\n%!" msg));
  match Sys.getenv_opt "WAVEMIN_METRICS" with
  | None | Some "" | Some "0" -> ()
  | Some _ ->
    at_exit (fun () ->
        section "Metrics";
        print_string (Obs_metrics.dump ()))

(* The benchmarks of Table V in paper order. *)
let table5_suite = Repro_cts.Benchmarks.all

(* Cheaper parameters for the heavy multi-mode experiments; the skew
   bounds are scaled from the paper's 90/110/130 ps to our trees'
   shorter source latencies (see EXPERIMENTS.md). *)
let multimode_slots = 24
