(* Bechamel micro-benchmarks: one Test.make per reproduced table's
   algorithmic kernel, timed on a fixed s13207 zone workload so the
   runtime comparison of Table VI has a rigorous counterpart. *)

open Bechamel
open Toolkit

module Context = Repro_core.Context
module Noise_table = Repro_core.Noise_table
module Waveforms = Repro_core.Waveforms
module Flow = Repro_core.Flow
module Pareto = Repro_mosp.Pareto
module Pwl = Repro_waveform.Pwl

let make_workload () =
  let spec = Repro_cts.Benchmarks.find "s13207" in
  let tree = Repro_cts.Benchmarks.synthesize spec in
  let params = { Context.default_params with Context.num_slots = 32 } in
  let ctx = Context.create ~params tree ~cells:(Flow.leaf_library ()) in
  let cls = List.hd ctx.Context.classes in
  let table = ctx.Context.tables.(0) in
  let avail =
    Array.map (fun row -> cls.Context.avail.(row)) table.Noise_table.sink_rows
  in
  (ctx, table, avail)

(* Micro-kernels introduced by the flat-array rewrite: the dominance
   filter, in-place PWL sampling, and the candidate-waveform memo. *)
let kernel_tests ctx =
  let test name f = Test.make ~name (Staged.stage f) in
  (* Synthetic Pareto frontier: 256 six-dimensional labels, the size
     regime where the solver still runs the exact dominance filter. *)
  let rng = Repro_util.Rng.create ~seed:7 in
  let labels =
    List.init 256 (fun _ ->
        { Pareto.cost =
            Array.init 6 (fun _ -> Repro_util.Rng.float rng ~bound:100.0);
          choices_rev = [] })
  in
  let rise =
    Pwl.triangle ~start:0.0 ~peak_time:40.0 ~finish:120.0 ~height:900.0
  in
  let fall =
    Pwl.triangle ~start:10.0 ~peak_time:70.0 ~finish:200.0 ~height:650.0
  in
  let times = Array.init 64 (fun i -> float_of_int i *. 3.5) in
  let buf = Array.make 64 0.0 in
  let tree = ctx.Context.tree in
  let base = ctx.Context.base in
  let env = ctx.Context.env in
  let rising = ctx.Context.timing in
  let falling =
    Repro_clocktree.Timing.analyze tree base env
      ~edge:Repro_cell.Electrical.Falling
  in
  let sinks = ctx.Context.sinks in
  let zone = (Repro_core.Zones.zones ctx.Context.zones).(0) in
  let num_slots = ctx.Context.params.Context.num_slots in
  let build cache =
    Noise_table.build tree base env ~rising ~falling ~sinks ~zone ~num_slots
      ~cache ()
  in
  let warm_cache = Waveforms.create_cache () in
  ignore (build warm_cache);
  Test.make_grouped ~name:"kernels"
    [ test "Pareto.non_dominated (256x6)" (fun () ->
          Pareto.non_dominated labels);
      test "Pwl.add + eval (allocating)" (fun () ->
          let w = Pwl.add rise fall in
          Array.iteri (fun i t -> buf.(i) <- Pwl.eval w t) times);
      test "Pwl.sample_into + add_into (in place)" (fun () ->
          Pwl.sample_into rise ~times ~into:buf;
          Pwl.add_into fall ~times ~into:buf);
      test "Noise_table.build (cold cache)" (fun () ->
          build (Waveforms.create_cache ()));
      test "Noise_table.build (warm cache)" (fun () -> build warm_cache) ]

(* The annealer's core claim, measured: one move evaluated incrementally
   (subtract the old candidate row, add the new one, peak over slots —
   then an O(1) discard) versus the full zone objective re-summed from
   scratch.  Both walk the same cyclic move schedule. *)
let sa_eval_tests table avail =
  let module Eval = Repro_sa.Eval in
  let test name f = Test.make ~name (Staged.stage f) in
  let first_avail s =
    let rec go c = if avail.(s).(c) then c else go (c + 1) in
    go 0
  in
  let init = Array.mapi (fun s _ -> first_avail s) avail in
  let problem =
    { Eval.rows = table.Noise_table.noise;
      base = table.Noise_table.nonleaf;
      avail }
  in
  let ev = Eval.create problem ~init in
  let rng = Repro_util.Rng.create ~seed:11 in
  let moves =
    Array.init 256 (fun _ ->
        let s =
          Repro_util.Rng.int rng ~bound:(Array.length avail)
        in
        let cands =
          List.filter
            (fun c -> avail.(s).(c))
            (List.init (Array.length avail.(s)) Fun.id)
        in
        let c =
          List.nth cands
            (Repro_util.Rng.int rng ~bound:(List.length cands))
        in
        (s, c))
  in
  let choices = Array.copy init in
  let i = ref 0 and j = ref 0 in
  Test.make_grouped ~name:"sa-eval"
    [ test "delta eval per move (propose+discard)" (fun () ->
          let s, c = moves.(!i land 255) in
          incr i;
          ignore (Eval.propose ev [| (s, c) |]);
          Eval.discard ev);
      test "full zone_objective per move" (fun () ->
          let s, c = moves.(!j land 255) in
          incr j;
          let old = choices.(s) in
          choices.(s) <- c;
          ignore (Noise_table.zone_objective table ~choices);
          choices.(s) <- old) ]

let run () =
  Bench_common.section
    "Bechamel — zone-solver kernels (Table V/VI runtime counterpart, one s13207 zone)";
  let ctx, table, avail =
    Bench_common.report_stage "workload_setup" make_workload
  in
  let test name f = Test.make ~name (Staged.stage f) in
  let grouped =
    Test.make_grouped ~name:"wavemin"
      [ Test.make_grouped ~name:"zone-solvers"
          [ test "ClkWaveMin (Warburton)" (fun () ->
                Repro_core.Clk_wavemin.zone_solver ctx table ~avail);
            test "ClkWaveMin-f (greedy)" (fun () ->
                Repro_core.Clk_wavemin_f.zone_solver ctx table ~avail);
            test "ClkPeakMin (knapsack DP)" (fun () ->
                Repro_core.Clk_peakmin.zone_solver ctx table ~avail) ];
        kernel_tests ctx;
        sa_eval_tests table avail ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw =
    Bench_common.report_stage "measure" (fun () ->
        Benchmark.all cfg [ instance ] grouped)
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name stats ->
      match Analyze.OLS.estimates stats with
      | Some (est :: _) ->
        Bench_common.record ~benchmark:"s13207-zone" ~algorithm:name
          ~runtime:[ ("ns_per_run", est) ]
          ();
        Bench_common.note "%-48s %14.1f ns/run" name est
      | Some [] | None -> Bench_common.note "%-48s (no estimate)" name)
    results
