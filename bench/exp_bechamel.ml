(* Bechamel micro-benchmarks: one Test.make per reproduced table's
   algorithmic kernel, timed on a fixed s13207 zone workload so the
   runtime comparison of Table VI has a rigorous counterpart. *)

open Bechamel
open Toolkit

module Context = Repro_core.Context
module Noise_table = Repro_core.Noise_table
module Flow = Repro_core.Flow

let make_workload () =
  let spec = Repro_cts.Benchmarks.find "s13207" in
  let tree = Repro_cts.Benchmarks.synthesize spec in
  let params = { Context.default_params with Context.num_slots = 32 } in
  let ctx = Context.create ~params tree ~cells:(Flow.leaf_library ()) in
  let cls = List.hd ctx.Context.classes in
  let table = ctx.Context.tables.(0) in
  let avail =
    Array.map (fun row -> cls.Context.avail.(row)) table.Noise_table.sink_rows
  in
  (ctx, table, avail)

let run () =
  Bench_common.section
    "Bechamel — zone-solver kernels (Table V/VI runtime counterpart, one s13207 zone)";
  let ctx, table, avail =
    Bench_common.report_stage "workload_setup" make_workload
  in
  let test name f = Test.make ~name (Staged.stage f) in
  let grouped =
    Test.make_grouped ~name:"zone-solvers"
      [ test "ClkWaveMin (Warburton)" (fun () ->
            Repro_core.Clk_wavemin.zone_solver ctx table ~avail);
        test "ClkWaveMin-f (greedy)" (fun () ->
            Repro_core.Clk_wavemin_f.zone_solver ctx table ~avail);
        test "ClkPeakMin (knapsack DP)" (fun () ->
            Repro_core.Clk_peakmin.zone_solver ctx table ~avail) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw =
    Bench_common.report_stage "measure" (fun () ->
        Benchmark.all cfg [ instance ] grouped)
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name stats ->
      match Analyze.OLS.estimates stats with
      | Some (est :: _) ->
        Bench_common.record ~benchmark:"s13207-zone" ~algorithm:name
          ~runtime:[ ("ns_per_run", est) ]
          ();
        Bench_common.note "%-48s %14.1f ns/run" name est
      | Some [] | None -> Bench_common.note "%-48s (no estimate)" name)
    results
