(* Table V: ClkPeakMin [27] vs ClkWaveMin on the seven benchmarks,
   kappa = 20 ps, epsilon = 0.01, |S| = 158.  Columns: V_DD noise, Gnd
   noise (power-grid mV) and peak current (mA), with improvement
   percentages and averages.  Paper averages: +3.4% VDD, -11.8% GND,
   +15.6% peak. *)

module Flow = Repro_core.Flow
module Golden = Repro_core.Golden
module Table = Repro_util.Table

let run () =
  Bench_common.section
    "Table V — ClkPeakMin [27] vs ClkWaveMin (kappa = 20 ps, eps = 0.01, |S| = 158)";
  let t =
    Table.create
      ~headers:
        [ "circuit"; "n"; "|L|"; "PM VDD"; "PM GND"; "PM peak"; "WM VDD";
          "WM GND"; "WM peak"; "dVDD%"; "dGND%"; "dPeak%" ]
  in
  let sums = Array.make 3 0.0 in
  let count = ref 0 in
  List.iter
    (fun spec ->
      let name = spec.Repro_cts.Benchmarks.name in
      let pm, wm =
        Bench_common.report_stage name (fun () ->
            let tree = Repro_cts.Benchmarks.synthesize spec in
            let pm = Flow.run_tree ~name tree Flow.Peakmin in
            let wm = Flow.run_tree ~name tree Flow.Wavemin in
            (pm, wm))
      in
      Bench_common.record_run pm;
      Bench_common.record_run wm;
      let dv =
        Flow.improvement_pct ~baseline:pm.Flow.metrics.Golden.vdd_noise_mv
          ~value:wm.Flow.metrics.Golden.vdd_noise_mv
      in
      let dg =
        Flow.improvement_pct ~baseline:pm.Flow.metrics.Golden.gnd_noise_mv
          ~value:wm.Flow.metrics.Golden.gnd_noise_mv
      in
      let dp =
        Flow.improvement_pct ~baseline:pm.Flow.metrics.Golden.peak_current_ma
          ~value:wm.Flow.metrics.Golden.peak_current_ma
      in
      sums.(0) <- sums.(0) +. dv;
      sums.(1) <- sums.(1) +. dg;
      sums.(2) <- sums.(2) +. dp;
      incr count;
      Bench_common.record ~benchmark:name ~algorithm:"improvement"
        ~quality:
          [ ("d_vdd_pct", dv); ("d_gnd_pct", dg); ("d_peak_pct", dp) ]
        ();
      Table.add_row t
        [ name;
          Table.cell_i spec.Repro_cts.Benchmarks.num_nodes;
          Table.cell_i spec.Repro_cts.Benchmarks.num_leaves;
          Table.cell_f pm.Flow.metrics.Golden.vdd_noise_mv;
          Table.cell_f pm.Flow.metrics.Golden.gnd_noise_mv;
          Table.cell_f pm.Flow.metrics.Golden.peak_current_ma;
          Table.cell_f wm.Flow.metrics.Golden.vdd_noise_mv;
          Table.cell_f wm.Flow.metrics.Golden.gnd_noise_mv;
          Table.cell_f wm.Flow.metrics.Golden.peak_current_ma;
          Table.cell_pct dv; Table.cell_pct dg; Table.cell_pct dp ])
    Bench_common.table5_suite;
  print_string (Table.render t);
  let n = float_of_int !count in
  Bench_common.record ~benchmark:"average" ~algorithm:"improvement"
    ~quality:
      [ ("d_vdd_pct", sums.(0) /. n); ("d_gnd_pct", sums.(1) /. n);
        ("d_peak_pct", sums.(2) /. n) ]
    ();
  Bench_common.note
    "averages: VDD %.2f%%, GND %.2f%%, peak %.2f%%  (paper: 3.42%%, -11.78%%, 15.62%%)"
    (sums.(0) /. n) (sums.(1) /. n) (sums.(2) /. n)
