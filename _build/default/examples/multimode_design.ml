(* Multi-power-mode design example (Sec. VI of the paper).

   A 40-leaf clock tree spans four voltage islands.  Four power modes
   switch the islands between 1.1 V and 0.9 V, which spreads the sink
   arrival times far beyond the skew bound in the low-voltage modes.
   ClkWaveMin-M first tries polarity assignment with buffer sizing
   alone; when that cannot satisfy the bound it embeds ADBs
   (capacitor-bank adjustable delay buffers), then re-optimizes the
   polarities where ADB leaves may become ADIs.

   Run with: dune exec examples/multimode_design.exe *)

module Placement = Repro_cts.Placement
module Synthesis = Repro_cts.Synthesis
module Islands = Repro_cts.Islands
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Context = Repro_core.Context
module Clk_wavemin_m = Repro_core.Clk_wavemin_m
module Adb_embedding = Repro_core.Adb_embedding
module Golden = Repro_core.Golden

let die_side = 220.0

let () =
  let rng = Repro_util.Rng.create ~seed:11 in
  let sinks =
    Placement.random_sinks rng (Placement.square_die die_side) ~count:40 ()
  in
  let tree = Synthesis.synthesize ~rng sinks ~internals:12 in

  (* Four islands, four power modes (mode 0 is all-nominal). *)
  let islands = Islands.grid ~die_side ~count:4 in
  let modes = Islands.random_modes rng islands ~num_modes:4 () in
  let envs =
    Array.mapi
      (fun mode_idx vdds ->
        { (Timing.nominal ~mode:mode_idx ()) with
          Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands vdds nd) })
      modes
  in

  let params =
    { Context.default_params with Context.kappa = 25.0; num_slots = 32 }
  in

  (* Reference: ADB embedding only, no noise optimization (the
     "ADB-embedding-only" columns of Table VII). *)
  let reference = Clk_wavemin_m.adb_embedded_only ~params tree ~envs in
  let ref_metrics =
    Golden.worst_over_modes tree reference.Adb_embedding.assignment envs
  in

  (* ClkWaveMin-M. *)
  let o = Clk_wavemin_m.optimize ~params tree ~envs in
  let opt_metrics = Golden.worst_over_modes tree o.Clk_wavemin_m.assignment envs in

  Format.printf "Design: %a over %d islands, %d power modes, kappa = %.0f ps@."
    Tree.pp_summary tree (Islands.count islands) (Array.length envs)
    params.Context.kappa;
  Format.printf "Per-mode skews before optimization:";
  Array.iter (fun s -> Format.printf " %.1f" s)
    (Adb_embedding.skews tree
       (Repro_clocktree.Assignment.default tree ~num_modes:(Array.length envs))
       envs);
  Format.printf " ps@.@.";

  Format.printf "%-26s %14s %14s@." "" "ADB-embed only" "ClkWaveMin-M";
  let row name a b = Format.printf "%-26s %14.2f %14.2f@." name a b in
  row "worst peak current (mA)" ref_metrics.Golden.peak_current_ma
    opt_metrics.Golden.peak_current_ma;
  row "worst VDD noise (mV)" ref_metrics.Golden.vdd_noise_mv
    opt_metrics.Golden.vdd_noise_mv;
  row "worst GND noise (mV)" ref_metrics.Golden.gnd_noise_mv
    opt_metrics.Golden.gnd_noise_mv;
  row "worst skew (ps)" ref_metrics.Golden.skew_ps opt_metrics.Golden.skew_ps;
  Format.printf "@.#ADBs: reference %d -> optimized %d; #ADIs introduced: %d@."
    reference.Adb_embedding.num_adbs o.Clk_wavemin_m.num_adbs
    o.Clk_wavemin_m.num_adis;
  Format.printf "used ADB embedding: %b; all mode skews within bound: %b@."
    o.Clk_wavemin_m.used_adb_embedding o.Clk_wavemin_m.feasible
