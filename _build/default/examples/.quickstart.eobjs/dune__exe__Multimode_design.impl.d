examples/multimode_design.ml: Array Format Repro_clocktree Repro_core Repro_cts Repro_util
