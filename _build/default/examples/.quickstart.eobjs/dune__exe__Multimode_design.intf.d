examples/multimode_design.mli:
