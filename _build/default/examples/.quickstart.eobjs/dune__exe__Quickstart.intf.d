examples/quickstart.mli:
