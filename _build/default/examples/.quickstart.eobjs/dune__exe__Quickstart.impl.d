examples/quickstart.ml: Format Repro_cell Repro_clocktree Repro_core Repro_cts Repro_util
