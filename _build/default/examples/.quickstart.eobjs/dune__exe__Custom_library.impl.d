examples/custom_library.ml: Format List Printf Repro_cell Repro_clocktree Repro_core Repro_cts Repro_util Repro_waveform
