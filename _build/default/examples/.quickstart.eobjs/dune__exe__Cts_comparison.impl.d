examples/cts_comparison.ml: Format Repro_clocktree Repro_core Repro_cts Repro_util
