examples/custom_library.mli:
