examples/noise_analysis.mli:
