examples/cts_comparison.mli:
