examples/noise_analysis.ml: Array Float Format List Repro_cell Repro_clocktree Repro_core Repro_cts Repro_powergrid Repro_util Repro_waveform String
