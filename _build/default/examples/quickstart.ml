(* Quickstart: synthesize a small clock tree, run the WaveMin polarity
   assignment, and compare peak current and power/ground noise before and
   after.

   Run with: dune exec examples/quickstart.exe *)

module Placement = Repro_cts.Placement
module Synthesis = Repro_cts.Synthesis
module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Context = Repro_core.Context
module Golden = Repro_core.Golden
module Flow = Repro_core.Flow

let () =
  (* 1. Place 40 leaf buffer locations on a 200 x 200 um die and build a
     zero-skew buffered clock tree with 12 internal buffers. *)
  let rng = Repro_util.Rng.create ~seed:7 in
  let sinks =
    Placement.random_sinks rng (Placement.square_die 200.0) ~count:40 ()
  in
  let tree = Synthesis.synthesize ~rng sinks ~internals:12 in
  Format.printf "Synthesized %a, nominal skew %.2f ps@."
    Tree.pp_summary tree (Synthesis.nominal_skew tree);

  (* 2. Evaluate the untouched tree (every leaf is a BUF_X8). *)
  let env = Timing.nominal () in
  let initial = Assignment.default tree ~num_modes:1 in
  let before = Golden.evaluate tree initial env in

  (* 3. Run ClkWaveMin with the experiment library (BUF/INV X8, X16),
     skew bound 20 ps, |S| = 158 fine-grained sampling. *)
  let ctx = Context.create ~env tree ~cells:(Flow.leaf_library ()) in
  let outcome = Repro_core.Clk_wavemin.optimize ctx in
  let after = Golden.evaluate tree outcome.Context.assignment env in

  let inverters =
    Assignment.count_leaves outcome.Context.assignment tree ~pred:(fun c ->
        Cell.polarity c = Cell.Negative)
  in
  Format.printf "@.%-22s %12s %12s@." "" "initial" "ClkWaveMin";
  let row name f =
    Format.printf "%-22s %12.2f %12.2f@." name (f before) (f after)
  in
  row "peak current (mA)" (fun m -> m.Golden.peak_current_ma);
  row "VDD noise (mV)" (fun m -> m.Golden.vdd_noise_mv);
  row "GND noise (mV)" (fun m -> m.Golden.gnd_noise_mv);
  row "clock skew (ps)" (fun m -> m.Golden.skew_ps);
  Format.printf "@.%d of %d leaves became inverters; skew bound %.0f ps respected: %b@."
    inverters (Tree.num_leaves tree) ctx.Context.params.Context.kappa
    (after.Golden.skew_ps <= ctx.Context.params.Context.kappa);
  Format.printf "peak current reduced by %.1f%%@."
    (Flow.improvement_pct ~baseline:before.Golden.peak_current_ma
       ~value:after.Golden.peak_current_ma)
