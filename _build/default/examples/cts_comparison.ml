(* CTS engine comparison: the level-balanced synthesizer (commercial
   CTS style: uniform buffer depth + snaking) vs the DME construction
   (binary merges, exact Elmore balancing).  WaveMin is agnostic to
   where the zero-skew tree came from — both are optimized and the
   outcomes compared.

   Run with: dune exec examples/cts_comparison.exe *)

module Placement = Repro_cts.Placement
module Synthesis = Repro_cts.Synthesis
module Dme = Repro_cts.Dme
module Tree = Repro_clocktree.Tree
module Tree_stats = Repro_clocktree.Tree_stats
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Context = Repro_core.Context
module Golden = Repro_core.Golden
module Power = Repro_core.Power
module Flow = Repro_core.Flow

let () =
  let rng = Repro_util.Rng.create ~seed:31 in
  let sinks =
    Placement.random_sinks rng (Placement.square_die 220.0) ~count:48 ()
  in
  let level_tree = Synthesis.synthesize ~rng sinks ~internals:14 in
  let dme_tree = Dme.synthesize sinks in
  let env = Timing.nominal () in

  let describe name tree =
    Format.printf "=== %s ===@." name;
    Format.printf "%a@." Tree_stats.pp (Tree_stats.compute tree);
    Format.printf "nominal skew: %.2f ps@." (Synthesis.nominal_skew tree);
    let initial = Assignment.default tree ~num_modes:1 in
    let before = Golden.evaluate tree initial env in
    let ctx = Context.create ~env tree ~cells:(Flow.leaf_library ()) in
    let o = Repro_core.Clk_wavemin.optimize ctx in
    let after = Golden.evaluate tree o.Context.assignment env in
    let power = Power.analyze tree o.Context.assignment env in
    Format.printf "peak current: %.2f -> %.2f mA (%.1f%%)@."
      before.Golden.peak_current_ma after.Golden.peak_current_ma
      (Flow.improvement_pct ~baseline:before.Golden.peak_current_ma
         ~value:after.Golden.peak_current_ma);
    Format.printf "%a@.@." Power.pp power
  in
  describe "level-balanced synthesis" level_tree;
  describe "DME synthesis" dme_tree;
  Format.printf
    "Same sinks, two CTS engines: WaveMin cuts the peak on both; the DME@.";
  Format.printf
    "tree has more (binary) buffers, so its non-leaf background differs.@."
