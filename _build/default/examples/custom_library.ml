(* Custom cell library example.

   WaveMin is library-agnostic: any set of buffer and inverter cells can
   be characterized and used as the candidate libraries B and I.  This
   example defines a small custom library, characterizes it (the
   Sec. IV-B profiling step), prints a Table II-style characterization,
   and runs the optimization with it.

   Run with: dune exec examples/custom_library.exe *)

module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Characterize = Repro_cell.Characterize
module Placement = Repro_cts.Placement
module Synthesis = Repro_cts.Synthesis
module Timing = Repro_clocktree.Timing
module Context = Repro_core.Context
module Golden = Repro_core.Golden
module Pwl = Repro_waveform.Pwl

(* A fictitious low-power library: weaker drives, higher resistance. *)
let lp_buf drive =
  Cell.make
    ~name:(Printf.sprintf "LPBUF_X%d" drive)
    ~kind:Cell.Buffer ~drive ~input_cap:(0.22 *. float_of_int drive)
    ~output_res:(7.8 /. float_of_int drive)
    ~intrinsic_rise:24.0 ~intrinsic_fall:26.0
    ~area:(1.2 *. float_of_int drive)
    ()

let lp_inv drive =
  Cell.make
    ~name:(Printf.sprintf "LPINV_X%d" drive)
    ~kind:Cell.Inverter ~drive ~input_cap:(0.24 *. float_of_int drive)
    ~output_res:(6.9 /. float_of_int drive)
    ~intrinsic_rise:19.0 ~intrinsic_fall:20.5
    ~area:(0.7 *. float_of_int drive)
    ()

let () =
  let cells = [ lp_buf 8; lp_buf 16; lp_inv 8; lp_inv 16 ] in

  (* Characterization table (cf. Table II of the paper). *)
  let table = Repro_util.Table.create
      ~headers:[ "cell"; "T_D rise"; "T_D fall"; "P+ (uA)"; "P- (uA)"; "slew" ] in
  List.iter
    (fun cell ->
      let p = Characterize.profile cell ~vdd:1.1 ~load:12.0 ~period:2000.0 () in
      Repro_util.Table.add_row table
        [ cell.Cell.name;
          Repro_util.Table.cell_f p.Characterize.t_d_rise;
          Repro_util.Table.cell_f p.Characterize.t_d_fall;
          Repro_util.Table.cell_f
            (Electrical.peak_of_event cell ~vdd:1.1 ~load:12.0
               ~edge:Electrical.Rising ~rail:Cell.Vdd_rail);
          Repro_util.Table.cell_f
            (Electrical.peak_of_event cell ~vdd:1.1 ~load:12.0
               ~edge:Electrical.Falling ~rail:Cell.Vdd_rail);
          Repro_util.Table.cell_f p.Characterize.slew_rise ])
    cells;
  print_string (Repro_util.Table.render table);

  (* Optimize a tree with the custom library. *)
  let rng = Repro_util.Rng.create ~seed:99 in
  let sinks =
    Placement.random_sinks rng (Placement.square_die 180.0) ~count:30 ()
  in
  let tree = Synthesis.synthesize ~rng sinks ~internals:9 in
  let env = Timing.nominal () in
  let initial = Repro_clocktree.Assignment.default tree ~num_modes:1 in
  let before = Golden.evaluate tree initial env in
  let ctx = Context.create ~env tree ~cells in
  let o = Repro_core.Clk_wavemin.optimize ctx in
  let after = Golden.evaluate tree o.Context.assignment env in
  Format.printf
    "@.Custom-library optimization: peak %.2f -> %.2f mA (%.1f%% lower), skew %.2f ps@."
    before.Golden.peak_current_ma after.Golden.peak_current_ma
    (Repro_core.Flow.improvement_pct ~baseline:before.Golden.peak_current_ma
       ~value:after.Golden.peak_current_ma)
    after.Golden.skew_ps
