(* Power-grid noise analysis example.

   Shows the substrate the golden evaluator uses: the clock tree's
   current pulses are injected into a resistive V_DD mesh and the
   worst-node voltage drop is computed over time.  The example prints a
   coarse spatial map of the drop at the instant of worst noise, before
   and after polarity assignment, and the effect of the number of time
   sampling points (the |S| study of Table VI in miniature).

   Run with: dune exec examples/noise_analysis.exe *)

module Placement = Repro_cts.Placement
module Synthesis = Repro_cts.Synthesis
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Electrical = Repro_cell.Electrical
module Grid = Repro_powergrid.Grid
module Noise = Repro_powergrid.Noise
module Pwl = Repro_waveform.Pwl
module Context = Repro_core.Context
module Flow = Repro_core.Flow

let die_side = 200.0

let injections tree asg env =
  let timing = Timing.analyze tree asg env ~edge:Electrical.Rising in
  Array.to_list
    (Array.map
       (fun nd ->
         let c =
           Repro_core.Waveforms.node_currents tree asg env timing nd.Tree.id
         in
         { Noise.x = nd.Tree.x; y = nd.Tree.y; waveform = c.Electrical.idd })
       (Tree.nodes tree))

let print_map grid injections =
  (* Solve at the worst instant and render a 16x16 character map. *)
  let times = Noise.default_times injections ~count:64 in
  let worst_t, _ =
    Array.fold_left
      (fun (bt, bv) t ->
        let inj = Array.make (Grid.num_nodes grid) 0.0 in
        List.iter
          (fun i ->
            let n = Grid.node_at grid ~x:i.Noise.x ~y:i.Noise.y in
            inj.(n) <- inj.(n) +. Pwl.eval i.Noise.waveform t)
          injections;
        let v = Grid.solve grid ~injection:inj in
        let peak = Array.fold_left Float.max 0.0 v in
        if peak > bv then (t, peak) else (bt, bv))
      (0.0, 0.0) times
  in
  let inj = Array.make (Grid.num_nodes grid) 0.0 in
  List.iter
    (fun i ->
      let n = Grid.node_at grid ~x:i.Noise.x ~y:i.Noise.y in
      inj.(n) <- inj.(n) +. Pwl.eval i.Noise.waveform worst_t)
    injections;
  let v = Grid.solve grid ~injection:inj in
  let vmax = Array.fold_left Float.max 1e-9 v in
  Format.printf "worst instant t = %.1f ps, worst drop = %.2f mV@." worst_t
    (vmax /. 1000.0);
  let shades = " .:-=+*#%@" in
  for j = 15 downto 0 do
    for i = 0 to 15 do
      let id = (j * 16) + i in
      let level =
        int_of_float (Float.min 9.0 (v.(id) /. vmax *. 9.0))
      in
      Format.printf "%c" shades.[level]
    done;
    Format.printf "@."
  done

let () =
  let rng = Repro_util.Rng.create ~seed:23 in
  let sinks =
    Placement.random_sinks rng (Placement.square_die die_side) ~count:48 ()
  in
  let tree = Synthesis.synthesize ~rng sinks ~internals:14 in
  let env = Timing.nominal () in
  let grid = Grid.create ~die_side:(die_side *. 1.02) () in

  Format.printf "=== V_DD drop map, all leaves are buffers ===@.";
  let initial = Assignment.default tree ~num_modes:1 in
  print_map grid (injections tree initial env);

  let ctx = Context.create ~env tree ~cells:(Flow.leaf_library ()) in
  let o = Repro_core.Clk_wavemin.optimize ctx in
  Format.printf "@.=== V_DD drop map after ClkWaveMin ===@.";
  print_map grid (injections tree o.Context.assignment env);

  (* Sampling-granularity study: optimize with |S| = 4, 8, 158 and
     report the golden peak each achieves. *)
  Format.printf "@.=== effect of |S| (time sampling points) ===@.";
  List.iter
    (fun num_slots ->
      let params = { Context.default_params with Context.num_slots } in
      let ctx = Context.create ~params ~env tree ~cells:(Flow.leaf_library ()) in
      let o = Repro_core.Clk_wavemin.optimize ctx in
      let m = Repro_core.Golden.evaluate tree o.Context.assignment env in
      Format.printf "|S| = %3d: golden peak %.2f mA, VDD noise %.2f mV@."
        num_slots m.Repro_core.Golden.peak_current_ma
        m.Repro_core.Golden.vdd_noise_mv)
    [ 4; 8; 158 ]
