module Rng = Repro_util.Rng
module Stats = Repro_util.Stats
module Table = Repro_util.Table

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a ~bound:1000) (Rng.int b ~bound:1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Rng.int a ~bound:1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b ~bound:1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng ~bound:13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create ~seed:7 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng ~bound:0))

let test_rng_float_bounds () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng ~bound:2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniform_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng ~lo:(-3.0) ~hi:(-1.0) in
    Alcotest.(check bool) "in range" true (v >= -3.0 && v < -1.0)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:5 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian rng ~mu:10.0 ~sigma:2.0) in
  check_close 0.1 "mean" 10.0 (Stats.mean xs);
  check_close 0.1 "std" 2.0 (Stats.stddev xs)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:99 in
  let child = Rng.split parent in
  let a = Rng.int child ~bound:1_000_000 in
  (* Drawing more from the parent must not change the child's stream
     had we split at the same point. *)
  let parent2 = Rng.create ~seed:99 in
  let child2 = Rng.split parent2 in
  Alcotest.(check int) "split deterministic" a (Rng.int child2 ~bound:1_000_000)

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:17 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick () =
  let rng = Rng.create ~seed:23 in
  for _ = 1 to 100 do
    let v = Rng.pick rng [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick rng []))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_mean () = check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  check_close 1e-9 "known" (sqrt 2.0) (Stats.stddev [| 1.0; 3.0; 1.0; 3.0; 1.0; 3.0 |] *. sqrt 2.0)

let test_stats_normalized_stddev () =
  check_close 1e-9 "known" 0.5 (Stats.normalized_stddev [| 1.0; 3.0 |])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0; 2.0 |] in
  check_float "lo" (-1.0) lo;
  check_float "hi" 7.0 hi

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stats.percentile xs ~p:50.0);
  check_float "min" 1.0 (Stats.percentile xs ~p:0.0);
  check_float "max" 5.0 (Stats.percentile xs ~p:100.0);
  check_float "interp" 1.5 (Stats.percentile xs ~p:12.5)

let test_stats_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 2.0; 4.0; 6.0; 8.0 |] in
  check_close 1e-9 "perfect" 1.0 (Stats.correlation xs ys);
  let zs = [| 8.0; 6.0; 4.0; 2.0 |] in
  check_close 1e-9 "anti" (-1.0) (Stats.correlation xs zs)

let test_stats_fraction () =
  check_float "yield" 0.75
    (Stats.fraction_satisfying (fun x -> x <= 10.0) [| 1.0; 5.0; 10.0; 11.0 |]);
  check_float "empty" 0.0 (Stats.fraction_satisfying (fun _ -> true) [||])

let test_stats_empty_rejected () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]))

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "contains alpha" true
    (String.length out > 0 && contains out "alpha" && contains out "22")

let test_table_arity () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: arity mismatch with headers") (fun () ->
      Table.add_row t [ "only one" ])

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "float decimals" "3.1416" (Table.cell_f ~decimals:4 3.14159);
  Alcotest.(check string) "int" "42" (Table.cell_i 42);
  Alcotest.(check string) "pct" "12.50%" (Table.cell_pct 12.5)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 30) (float_range (-100.) 100.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs ~p:lo <= Stats.percentile xs ~p:hi +. 1e-9)

let prop_stddev_nonneg =
  QCheck.Test.make ~name:"stddev non-negative" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3))
    (fun xs -> Stats.stddev xs >= 0.0)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (array small_int))
    (fun (seed, arr) ->
      let rng = Rng.create ~seed in
      let copy = Array.copy arr in
      Rng.shuffle rng copy;
      let s1 = Array.to_list arr |> List.sort compare in
      let s2 = Array.to_list copy |> List.sort compare in
      s1 = s2)

let () =
  Alcotest.run "repro_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "split deterministic" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "normalized stddev" `Quick test_stats_normalized_stddev;
          Alcotest.test_case "min max" `Quick test_stats_min_max;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "correlation" `Quick test_stats_correlation;
          Alcotest.test_case "fraction" `Quick test_stats_fraction;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty_rejected;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_percentile_monotone; prop_stddev_nonneg;
            prop_shuffle_preserves_multiset ] );
    ]
