module Layered = Repro_mosp.Layered
module Pareto = Repro_mosp.Pareto
module Warburton = Repro_mosp.Warburton

let check_close eps = Alcotest.(check (float eps))

let w xs = Array.of_list xs

(* A 2-row, 2-objective instance with a known min-max optimum:
   row 0: options (10,0) and (0,10); row 1: options (8,1) and (1,8);
   dest (0,0).  Balanced picks give (11,8) or (8,11) -> objective 11;
   unbalanced give (18,1)/(1,18).  *)
let small_graph () =
  Layered.create
    ~options:
      [| [| w [ 10.; 0. ]; w [ 0.; 10. ] |];
         [| w [ 8.; 1. ]; w [ 1.; 8. ] |] |]
    ~dest_weight:(w [ 0.; 0. ])

(* ------------------------------------------------------------------ *)
(* Layered                                                             *)

let test_layered_counts () =
  let g = small_graph () in
  Alcotest.(check int) "rows" 2 (Layered.num_rows g);
  Alcotest.(check int) "dim" 2 (Layered.dimension g);
  Alcotest.(check int) "vertices" 6 (Layered.num_vertices g);
  (* src->2 + 2*2 + 2->dest = 8 *)
  Alcotest.(check int) "arcs" 8 (Layered.num_arcs g)

let test_layered_path_cost () =
  let g = small_graph () in
  let c = Layered.path_cost g ~choices:[| 0; 1 |] in
  check_close 1e-12 "x" 11.0 c.(0);
  check_close 1e-12 "y" 8.0 c.(1)

let test_layered_validation () =
  Alcotest.check_raises "empty row"
    (Invalid_argument "Layered.create: empty row 0") (fun () ->
      ignore (Layered.create ~options:[| [||] |] ~dest_weight:(w [ 0. ])));
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Layered.create: weight dimension mismatch") (fun () ->
      ignore
        (Layered.create ~options:[| [| w [ 1.; 2. ] |] |] ~dest_weight:(w [ 0. ])));
  Alcotest.check_raises "negative"
    (Invalid_argument "Layered.create: negative weight component") (fun () ->
      ignore (Layered.create ~options:[| [| w [ -1. ] |] |] ~dest_weight:(w [ 0. ])))

let test_layered_bad_choices () =
  let g = small_graph () in
  Alcotest.check_raises "arity"
    (Invalid_argument "Layered.path_cost: wrong number of choices") (fun () ->
      ignore (Layered.path_cost g ~choices:[| 0 |]));
  Alcotest.check_raises "range"
    (Invalid_argument "Layered.path_cost: choice out of range") (fun () ->
      ignore (Layered.path_cost g ~choices:[| 0; 5 |]))

(* ------------------------------------------------------------------ *)
(* Pareto                                                              *)

let lbl xs = { Pareto.cost = w xs; choices_rev = [] }

let test_dominates () =
  Alcotest.(check bool) "dominates" true (Pareto.dominates (w [ 1.; 2. ]) (w [ 2.; 2. ]));
  Alcotest.(check bool) "self" true (Pareto.dominates (w [ 1.; 2. ]) (w [ 1.; 2. ]));
  Alcotest.(check bool) "incomparable" false
    (Pareto.dominates (w [ 1.; 3. ]) (w [ 2.; 2. ]));
  Alcotest.(check bool) "dim mismatch" false (Pareto.dominates (w [ 1. ]) (w [ 1.; 2. ]))

let test_insert_prunes () =
  let set = Pareto.insert [ lbl [ 1.; 3. ] ] (lbl [ 3.; 1. ]) in
  Alcotest.(check int) "both kept" 2 (List.length set);
  let set = Pareto.insert set (lbl [ 0.5; 0.5 ]) in
  Alcotest.(check int) "dominator evicts" 1 (List.length set);
  let set = Pareto.insert set (lbl [ 1.0; 1.0 ]) in
  Alcotest.(check int) "dominated dropped" 1 (List.length set)

let test_non_dominated () =
  let set =
    Pareto.non_dominated [ lbl [ 1.; 5. ]; lbl [ 5.; 1. ]; lbl [ 3.; 3. ]; lbl [ 6.; 6. ] ]
  in
  Alcotest.(check int) "frontier" 3 (List.length set)

let test_grid_prune () =
  let labels = [ lbl [ 1.0; 1.0 ]; lbl [ 1.1; 1.1 ]; lbl [ 5.0; 5.0 ] ] in
  let pruned = Pareto.grid_prune ~deltas:(w [ 2.0; 2.0 ]) labels in
  Alcotest.(check int) "two cells" 2 (List.length pruned);
  (* Zero deltas = identity. *)
  Alcotest.(check int) "identity" 3
    (List.length (Pareto.grid_prune ~deltas:(w [ 0.0; 0.0 ]) labels))

let test_grid_prune_keeps_best () =
  let labels = [ lbl [ 1.9; 0.1 ]; lbl [ 1.0; 1.0 ] ] in
  (* Same cell under delta 2; representative is the min-max one. *)
  match Pareto.grid_prune ~deltas:(w [ 2.0; 2.0 ]) labels with
  | [ kept ] -> check_close 1e-12 "min max kept" 1.0 (Pareto.max_component kept)
  | l -> Alcotest.failf "expected 1, got %d" (List.length l)

let test_best_min_max () =
  (match Pareto.best_min_max [ lbl [ 9.; 1. ]; lbl [ 4.; 5. ]; lbl [ 6.; 6. ] ] with
  | Some best -> check_close 1e-12 "objective" 5.0 (Pareto.max_component best)
  | None -> Alcotest.fail "expected a label");
  Alcotest.(check bool) "empty" true (Pareto.best_min_max [] = None)

(* ------------------------------------------------------------------ *)
(* Warburton                                                           *)

let test_exhaustive_small () =
  let s = Warburton.exhaustive_min_max (small_graph ()) in
  check_close 1e-12 "objective" 11.0 s.Warburton.objective

let test_solver_matches_exhaustive_small () =
  let g = small_graph () in
  let s = Warburton.solve_min_max ~epsilon:0.0 g in
  check_close 1e-12 "exact epsilon=0" 11.0 s.Warburton.objective;
  let c = Layered.path_cost g ~choices:s.Warburton.choices in
  check_close 1e-12 "cost consistent"
    (Array.fold_left Float.max 0.0 c)
    s.Warburton.objective

let test_dest_weight_changes_optimum () =
  (* Observation 1: a biased dest (non-leaf) vector flips the optimal
     choice.  One row, options (10,0) vs (0,10); dest (0,9) makes the
     first option optimal (max 10 vs max 19). *)
  let g =
    Layered.create
      ~options:[| [| w [ 10.; 0. ]; w [ 0.; 10. ] |] |]
      ~dest_weight:(w [ 0.; 9. ])
  in
  let s = Warburton.solve_min_max ~epsilon:0.0 g in
  Alcotest.(check (array int)) "choice" [| 0 |] s.Warburton.choices;
  check_close 1e-12 "objective" 10.0 s.Warburton.objective

let test_pareto_paths_nondominated () =
  let g = small_graph () in
  let paths = Warburton.pareto_paths ~epsilon:0.0 g in
  List.iter
    (fun (a : Pareto.label) ->
      List.iter
        (fun (b : Pareto.label) ->
          if a != b then
            Alcotest.(check bool) "no strict domination" false
              (Pareto.dominates a.Pareto.cost b.Pareto.cost
              && a.Pareto.cost <> b.Pareto.cost))
        paths)
    paths

let test_epsilon_within_bound () =
  (* ε-approximation must stay within (1+ε) of the exact min-max. *)
  let rng = Repro_util.Rng.create ~seed:8 in
  for _ = 1 to 20 do
    let rows = 1 + Repro_util.Rng.int rng ~bound:5 in
    let dim = 1 + Repro_util.Rng.int rng ~bound:4 in
    let options =
      Array.init rows (fun _ ->
          Array.init
            (1 + Repro_util.Rng.int rng ~bound:4)
            (fun _ ->
              Array.init dim (fun _ -> Repro_util.Rng.float rng ~bound:100.0)))
    in
    let dest = Array.init dim (fun _ -> Repro_util.Rng.float rng ~bound:50.0) in
    let g = Layered.create ~options ~dest_weight:dest in
    let exact = Warburton.exhaustive_min_max g in
    let eps = 0.05 in
    let approx = Warburton.solve_min_max ~epsilon:eps g in
    Alcotest.(check bool) "within (1+eps)" true
      (approx.Warburton.objective
      <= (1.0 +. eps) *. exact.Warburton.objective +. 1e-6);
    Alcotest.(check bool) "not better than optimal" true
      (approx.Warburton.objective >= exact.Warburton.objective -. 1e-6)
  done

let test_max_labels_cap_safe () =
  (* Even with a tiny cap a valid path must come out. *)
  let g = small_graph () in
  let s = Warburton.solve_min_max ~max_labels:1 g in
  let c = Layered.path_cost g ~choices:s.Warburton.choices in
  check_close 1e-12 "consistent" (Array.fold_left Float.max 0.0 c) s.Warburton.objective

let test_exhaustive_guard () =
  let options = Array.make 30 [| w [ 1. ]; w [ 2. ] |] in
  let g = Layered.create ~options ~dest_weight:(w [ 0. ]) in
  Alcotest.check_raises "guard"
    (Invalid_argument "Warburton.exhaustive_min_max: too many paths") (fun () ->
      ignore (Warburton.exhaustive_min_max g))

let test_invalid_epsilon () =
  Alcotest.check_raises "epsilon"
    (Invalid_argument "Warburton.pareto_paths: epsilon < 0") (fun () ->
      ignore (Warburton.pareto_paths ~epsilon:(-0.1) (small_graph ())))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let instance_gen =
  QCheck.make
    ~print:(fun (rows, dim, seed) -> Printf.sprintf "rows=%d dim=%d seed=%d" rows dim seed)
    QCheck.Gen.(
      let* rows = int_range 1 4 in
      let* dim = int_range 1 3 in
      let* seed = int_range 0 10000 in
      return (rows, dim, seed))

let build_instance (rows, dim, seed) =
  let rng = Repro_util.Rng.create ~seed in
  let options =
    Array.init rows (fun _ ->
        Array.init
          (1 + Repro_util.Rng.int rng ~bound:3)
          (fun _ -> Array.init dim (fun _ -> Repro_util.Rng.float rng ~bound:50.0)))
  in
  let dest = Array.init dim (fun _ -> Repro_util.Rng.float rng ~bound:20.0) in
  Layered.create ~options ~dest_weight:dest

let prop_exact_matches_exhaustive =
  QCheck.Test.make ~name:"epsilon=0 matches exhaustive min-max" ~count:100
    instance_gen (fun params ->
      let g = build_instance params in
      let a = Warburton.solve_min_max ~epsilon:0.0 g in
      let b = Warburton.exhaustive_min_max g in
      Float.abs (a.Warburton.objective -. b.Warburton.objective) < 1e-6)

let prop_solution_cost_consistent =
  QCheck.Test.make ~name:"reported cost equals path cost" ~count:100 instance_gen
    (fun params ->
      let g = build_instance params in
      let s = Warburton.solve_min_max g in
      let c = Layered.path_cost g ~choices:s.Warburton.choices in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) c s.Warburton.cost)

let () =
  Alcotest.run "repro_mosp"
    [
      ( "layered",
        [
          Alcotest.test_case "counts" `Quick test_layered_counts;
          Alcotest.test_case "path cost" `Quick test_layered_path_cost;
          Alcotest.test_case "validation" `Quick test_layered_validation;
          Alcotest.test_case "bad choices" `Quick test_layered_bad_choices;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "insert prunes" `Quick test_insert_prunes;
          Alcotest.test_case "non dominated" `Quick test_non_dominated;
          Alcotest.test_case "grid prune" `Quick test_grid_prune;
          Alcotest.test_case "grid prune keeps best" `Quick test_grid_prune_keeps_best;
          Alcotest.test_case "best min max" `Quick test_best_min_max;
        ] );
      ( "warburton",
        [
          Alcotest.test_case "exhaustive small" `Quick test_exhaustive_small;
          Alcotest.test_case "solver matches exhaustive" `Quick
            test_solver_matches_exhaustive_small;
          Alcotest.test_case "dest weight (Observation 1)" `Quick
            test_dest_weight_changes_optimum;
          Alcotest.test_case "pareto paths nondominated" `Quick
            test_pareto_paths_nondominated;
          Alcotest.test_case "epsilon bound" `Quick test_epsilon_within_bound;
          Alcotest.test_case "label cap safe" `Quick test_max_labels_cap_safe;
          Alcotest.test_case "exhaustive guard" `Quick test_exhaustive_guard;
          Alcotest.test_case "invalid epsilon" `Quick test_invalid_epsilon;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exact_matches_exhaustive; prop_solution_cost_consistent ] );
    ]
