module Observations = Repro_core.Observations
module Tree = Repro_clocktree.Tree

let test_example_tree_shape () =
  let t = Observations.example_tree () in
  Alcotest.(check int) "4 leaves" 4 (Tree.num_leaves t);
  Alcotest.(check int) "7 nodes" 7 (Tree.size t)

let test_fig2_rows () =
  let f = Observations.fig2 () in
  Alcotest.(check int) "16 assignments" 16 (List.length f.Observations.rows);
  (* Polarity strings are all distinct. *)
  let names = List.map (fun r -> r.Observations.polarities) f.Observations.rows in
  Alcotest.(check int) "distinct" 16 (List.length (List.sort_uniq compare names));
  List.iter
    (fun r ->
      Alcotest.(check bool) "leaf <= total + eps" true
        (r.Observations.leaf_peak_ua
        <= r.Observations.total_peak_ua +. r.Observations.total_peak_ua);
      Alcotest.(check bool) "positive" true (r.Observations.leaf_peak_ua > 0.0))
    f.Observations.rows

let test_fig2_optima_consistent () =
  let f = Observations.fig2 () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "best by leaf minimal" true
        (f.Observations.best_by_leaf.Observations.leaf_peak_ua
        <= r.Observations.leaf_peak_ua +. 1e-9);
      Alcotest.(check bool) "best by total minimal" true
        (f.Observations.best_by_total.Observations.total_peak_ua
        <= r.Observations.total_peak_ua +. 1e-9))
    f.Observations.rows

let test_fig2_divergence () =
  (* Observation 1: the leaf-only optimum is not the total optimum. *)
  let f = Observations.fig2 () in
  Alcotest.(check bool) "non-leaf noise matters" true f.Observations.divergence

let test_fig2_extremes_are_worst () =
  (* All-P and all-N assignments should be far from leaf-optimal. *)
  let f = Observations.fig2 () in
  let find p = List.find (fun r -> r.Observations.polarities = p) f.Observations.rows in
  let all_p = find "PPPP" and all_n = find "NNNN" in
  Alcotest.(check bool) "PPPP bad" true
    (all_p.Observations.leaf_peak_ua
    > 1.5 *. f.Observations.best_by_leaf.Observations.leaf_peak_ua);
  Alcotest.(check bool) "NNNN bad" true
    (all_n.Observations.leaf_peak_ua
    > 1.5 *. f.Observations.best_by_leaf.Observations.leaf_peak_ua)

let test_fig3_adi_helps () =
  let f = Observations.fig3 () in
  Alcotest.(check bool) "adi helps" true f.Observations.adi_helps;
  Alcotest.(check bool) "strict improvement" true
    (f.Observations.peak_with_adi < f.Observations.peak_without_adi)

let () =
  Alcotest.run "repro_observations"
    [
      ( "fig2",
        [
          Alcotest.test_case "tree shape" `Quick test_example_tree_shape;
          Alcotest.test_case "rows" `Quick test_fig2_rows;
          Alcotest.test_case "optima consistent" `Quick test_fig2_optima_consistent;
          Alcotest.test_case "divergence (Observation 1)" `Quick test_fig2_divergence;
          Alcotest.test_case "extremes worst" `Quick test_fig2_extremes_are_worst;
        ] );
      ( "fig3",
        [ Alcotest.test_case "ADI helps (Observation 3)" `Quick test_fig3_adi_helps ] );
    ]
