module Tree = Repro_clocktree.Tree
module Export = Repro_clocktree.Export
module Tree_stats = Repro_clocktree.Tree_stats
module Assignment = Repro_clocktree.Assignment
module Library = Repro_cell.Library
module Cell = Repro_cell.Cell
module Rng = Repro_util.Rng

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let tree () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed:808)
      (Repro_cts.Placement.square_die 150.0) ~count:15 ()
  in
  Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:809) sinks ~internals:5

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let trees_equal a b =
  Tree.size a = Tree.size b
  && Array.for_all2
       (fun na nb ->
         na.Tree.id = nb.Tree.id && na.Tree.parent = nb.Tree.parent
         && List.sort compare na.Tree.children
            = List.sort compare nb.Tree.children
         && na.Tree.kind = nb.Tree.kind
         && Float.abs (na.Tree.x -. nb.Tree.x) < 1e-6
         && Float.abs (na.Tree.wire.Repro_clocktree.Wire.length
                       -. nb.Tree.wire.Repro_clocktree.Wire.length) < 1e-6
         && Float.abs (na.Tree.sink_cap -. nb.Tree.sink_cap) < 1e-6
         && Cell.equal na.Tree.default_cell nb.Tree.default_cell)
       (Tree.nodes a) (Tree.nodes b)

let test_table_roundtrip () =
  let t = tree () in
  match Export.of_table (Export.to_table t) with
  | Ok t' -> Alcotest.(check bool) "roundtrip" true (trees_equal t t')
  | Error msg -> Alcotest.fail msg

let test_file_roundtrip () =
  let t = tree () in
  let path = Filename.temp_file "tree" ".tbl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.save_file path t;
      match Export.load_file path with
      | Ok t' -> Alcotest.(check bool) "roundtrip" true (trees_equal t t')
      | Error msg -> Alcotest.fail msg)

let test_table_rejects_garbage () =
  (match Export.of_table "1 2 3" with
  | Error msg -> Alcotest.(check bool) "fields" true (contains msg "8 fields")
  | Ok _ -> Alcotest.fail "expected error");
  match Export.of_table "0 -1 internal 0 0 0 0 NOT_A_CELL" with
  | Error msg -> Alcotest.(check bool) "cell" true (contains msg "unknown cell")
  | Ok _ -> Alcotest.fail "expected error"

let test_table_rejects_noncontiguous_ids () =
  let t = tree () in
  let dump = Export.to_table t in
  (* Drop one body line: ids are no longer 0..n-1. *)
  let lines = String.split_on_char '\n' dump in
  let mangled = String.concat "\n" (List.filteri (fun i _ -> i <> 2) lines) in
  match Export.of_table mangled with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_dot_output () =
  let t = tree () in
  let dot = Export.to_dot t in
  Alcotest.(check bool) "digraph" true (contains dot "digraph clock_tree");
  Alcotest.(check bool) "edges" true (contains dot "->");
  (* One node statement per tree node. *)
  Array.iter
    (fun nd ->
      Alcotest.(check bool) "node present" true
        (contains dot (Printf.sprintf "n%d [" nd.Tree.id)))
    (Tree.nodes t)

let test_dot_marks_inverters () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let leaf = (Tree.leaves t).(0) in
  let asg = Assignment.set_cell asg leaf.Tree.id (Library.inv 8) in
  let dot = Export.to_dot ~assignment:asg t in
  Alcotest.(check bool) "shaded" true (contains dot "fillcolor=lightgrey");
  Alcotest.(check bool) "cell name" true (contains dot "INV_X8")

(* ------------------------------------------------------------------ *)
(* Tree stats                                                          *)

let test_stats_counts () =
  let t = tree () in
  let s = Tree_stats.compute t in
  Alcotest.(check int) "nodes" (Tree.size t) s.Tree_stats.num_nodes;
  Alcotest.(check int) "leaves" (Tree.num_leaves t) s.Tree_stats.num_leaves;
  Alcotest.(check int) "consistency" s.Tree_stats.num_nodes
    (s.Tree_stats.num_leaves + s.Tree_stats.num_internal)

let test_stats_positive_electricals () =
  let t = tree () in
  let s = Tree_stats.compute t in
  Alcotest.(check bool) "wirelength" true (s.Tree_stats.total_wirelength > 0.0);
  Alcotest.(check bool) "wire cap" true (s.Tree_stats.total_wire_cap > 0.0);
  Alcotest.(check bool) "sink cap" true (s.Tree_stats.total_sink_cap > 0.0);
  Alcotest.(check bool) "area" true (s.Tree_stats.total_cell_area > 0.0);
  Alcotest.(check bool) "fanout" true (s.Tree_stats.max_fanout >= 1)

let test_stats_follow_assignment () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let s0 = Tree_stats.compute ~assignment:asg t in
  Alcotest.(check int) "no inverters" 0 s0.Tree_stats.num_inverting_leaves;
  let leaf = (Tree.leaves t).(0) in
  let asg = Assignment.set_cell asg leaf.Tree.id (Library.inv 16) in
  let s1 = Tree_stats.compute ~assignment:asg t in
  Alcotest.(check int) "one inverter" 1 s1.Tree_stats.num_inverting_leaves;
  Alcotest.(check bool) "area changed" true
    (s1.Tree_stats.total_cell_area <> s0.Tree_stats.total_cell_area)

let test_stats_adjustable_counted () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let leaf = (Tree.leaves t).(1) in
  let asg = Assignment.set_cell asg leaf.Tree.id (Library.adb 8) in
  let s = Tree_stats.compute ~assignment:asg t in
  Alcotest.(check int) "adb" 1 s.Tree_stats.num_adjustable

let test_stats_pp () =
  let t = tree () in
  let s = Tree_stats.compute t in
  let out = Format.asprintf "%a" Tree_stats.pp s in
  Alcotest.(check bool) "mentions nodes" true (contains out "nodes:")

let prop_roundtrip_random_trees =
  QCheck.Test.make ~name:"table roundtrip random trees" ~count:15
    QCheck.(pair (int_range 1 5000) (int_range 4 40))
    (fun (seed, leaves) ->
      let sinks =
        Repro_cts.Placement.random_sinks (Rng.create ~seed)
          (Repro_cts.Placement.square_die 200.0) ~count:leaves ()
      in
      let t =
        Repro_cts.Synthesis.build ~rng:(Rng.create ~seed:(seed + 1)) sinks
          ~internals:(max 1 (leaves / 4))
      in
      match Export.of_table (Export.to_table t) with
      | Ok t' -> trees_equal t t'
      | Error _ -> false)

let () =
  Alcotest.run "repro_export"
    [
      ( "export",
        [
          Alcotest.test_case "table roundtrip" `Quick test_table_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_table_rejects_garbage;
          Alcotest.test_case "rejects noncontiguous" `Quick
            test_table_rejects_noncontiguous_ids;
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "dot marks inverters" `Quick test_dot_marks_inverters;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counts" `Quick test_stats_counts;
          Alcotest.test_case "electricals" `Quick test_stats_positive_electricals;
          Alcotest.test_case "follow assignment" `Quick test_stats_follow_assignment;
          Alcotest.test_case "adjustable counted" `Quick test_stats_adjustable_counted;
          Alcotest.test_case "pp" `Quick test_stats_pp;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_random_trees ] );
    ]
