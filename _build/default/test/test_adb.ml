module Adb_embedding = Repro_core.Adb_embedding
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Islands = Repro_cts.Islands
module Library = Repro_cell.Library
module Cell = Repro_cell.Cell
module Rng = Repro_util.Rng

let die_side = 150.0

let tree ?(seed = 1313) ?(leaves = 14) ?(internals = 5) () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed)
      (Repro_cts.Placement.square_die die_side) ~count:leaves ()
  in
  Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:(seed + 1)) sinks ~internals

let two_mode_envs () =
  let islands = Islands.grid ~die_side ~count:2 in
  let m0 = Islands.uniform_mode islands ~vdd:1.1 in
  let m1 = Array.mapi (fun i _ -> if i = 0 then 1.1 else 0.9) m0 in
  [| { (Timing.nominal ~mode:0 ()) with
       Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands m0 nd) };
     { (Timing.nominal ~mode:1 ()) with
       Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands m1 nd) } |]

let test_skews_per_mode () =
  let t = tree () in
  let envs = two_mode_envs () in
  let base = Assignment.default t ~num_modes:2 in
  let skews = Adb_embedding.skews t base envs in
  Alcotest.(check int) "two modes" 2 (Array.length skews);
  (* Mode 1 has a voltage island boundary cutting the tree: bigger
     skew. *)
  Alcotest.(check bool) "mode1 worse" true (skews.(1) > skews.(0))

let test_embed_repairs_skew () =
  let t = tree () in
  let envs = two_mode_envs () in
  let base = Assignment.default t ~num_modes:2 in
  let before = Adb_embedding.skews t base envs in
  let kappa = 10.0 in
  if before.(1) > kappa then begin
    let r = Adb_embedding.embed t base ~envs ~kappa in
    Alcotest.(check bool) "skew improved" true
      (r.Adb_embedding.skews.(1) < before.(1));
    Alcotest.(check bool) "some ADBs" true (r.Adb_embedding.num_adbs > 0)
  end

let test_embed_noop_when_feasible () =
  let t = tree () in
  let env = [| Timing.nominal () |] in
  let base = Assignment.default t ~num_modes:1 in
  let r = Adb_embedding.embed t base ~envs:env ~kappa:50.0 in
  Alcotest.(check int) "no ADBs needed" 0 r.Adb_embedding.num_adbs;
  Alcotest.(check bool) "feasible" true r.Adb_embedding.feasible

let test_embed_settings_are_valid_steps () =
  let t = tree () in
  let envs = two_mode_envs () in
  let base = Assignment.default t ~num_modes:2 in
  let r = Adb_embedding.embed t base ~envs ~kappa:10.0 in
  let asg = r.Adb_embedding.assignment in
  Array.iter
    (fun nd ->
      let c = Assignment.cell asg nd.Tree.id in
      for m = 0 to 1 do
        let extra = Assignment.extra_delay asg ~mode:m nd.Tree.id in
        if Cell.is_adjustable c then
          Alcotest.(check bool) "valid step" true
            (Array.exists (fun s -> Float.abs (s -. extra) < 1e-9) c.Cell.delay_steps)
        else Alcotest.(check (float 1e-12)) "fixed zero" 0.0 extra
      done)
    (Tree.nodes t)

let test_embed_validation () =
  let t = tree () in
  let base = Assignment.default t ~num_modes:1 in
  Alcotest.check_raises "kappa" (Invalid_argument "Adb_embedding.embed: kappa <= 0")
    (fun () ->
      ignore (Adb_embedding.embed t base ~envs:[| Timing.nominal () |] ~kappa:0.0));
  Alcotest.check_raises "modes"
    (Invalid_argument "Adb_embedding.embed: envs/assignment mode count mismatch")
    (fun () ->
      ignore
        (Adb_embedding.embed t base
           ~envs:[| Timing.nominal ~mode:0 (); Timing.nominal ~mode:1 () |]
           ~kappa:10.0))

let test_embed_preserves_tree_cells_kind () =
  (* Embedding only converts buffers to ADBs; it never introduces
     inverting cells. *)
  let t = tree () in
  let envs = two_mode_envs () in
  let base = Assignment.default t ~num_modes:2 in
  let r = Adb_embedding.embed t base ~envs ~kappa:10.0 in
  Array.iter
    (fun nd ->
      let c = Assignment.cell r.Adb_embedding.assignment nd.Tree.id in
      Alcotest.(check bool) "positive polarity" true
        (Cell.polarity c = Cell.Positive))
    (Tree.nodes t)

let prop_embed_never_worsens_much =
  QCheck.Test.make ~name:"embedding does not blow up skew" ~count:6
    QCheck.(int_range 1 5000)
    (fun seed ->
      let t = tree ~seed () in
      let envs = two_mode_envs () in
      let base = Assignment.default t ~num_modes:2 in
      let before = Adb_embedding.skews t base envs in
      let r = Adb_embedding.embed t base ~envs ~kappa:12.0 in
      Array.for_all2
        (fun a b -> b <= Float.max 12.0 (a +. 4.0))
        before r.Adb_embedding.skews)

let () =
  Alcotest.run "repro_core_adb"
    [
      ( "embedding",
        [
          Alcotest.test_case "skews per mode" `Quick test_skews_per_mode;
          Alcotest.test_case "repairs skew" `Quick test_embed_repairs_skew;
          Alcotest.test_case "noop when feasible" `Quick test_embed_noop_when_feasible;
          Alcotest.test_case "valid steps" `Quick test_embed_settings_are_valid_steps;
          Alcotest.test_case "validation" `Quick test_embed_validation;
          Alcotest.test_case "keeps polarity positive" `Quick
            test_embed_preserves_tree_cells_kind;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_embed_never_worsens_much ] );
    ]
