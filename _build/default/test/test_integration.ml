(* End-to-end integration: the full flow (synthesize -> optimize ->
   golden evaluate) on real benchmark specs, asserting the system-level
   claims rather than module behaviour. *)

module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Golden = Repro_core.Golden
module Benchmarks = Repro_cts.Benchmarks
module Tree = Repro_clocktree.Tree

(* Cheap parameters keep the whole suite fast; shapes do not depend on
   the slot budget beyond |S| >= ~16. *)
let params =
  { Context.default_params with Context.num_slots = 16; max_interval_classes = 8 }

let specs = [ "s13207"; "s15850"; "ispd09f34" ]

let run spec_name algo tree =
  Flow.run_tree ~params ~name:spec_name tree algo

let test_benchmarks_improve () =
  List.iter
    (fun name ->
      let spec = Benchmarks.find name in
      let tree = Benchmarks.synthesize spec in
      let initial = run name Flow.Initial tree in
      List.iter
        (fun algo ->
          let r = run name algo tree in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s beats initial" name (Flow.algorithm_name algo))
            true
            (r.Flow.metrics.Golden.peak_current_ma
            < initial.Flow.metrics.Golden.peak_current_ma);
          Alcotest.(check bool)
            (Printf.sprintf "%s %s respects kappa" name (Flow.algorithm_name algo))
            true
            (r.Flow.metrics.Golden.skew_ps <= params.Context.kappa +. 1e-6))
        [ Flow.Peakmin; Flow.Wavemin; Flow.Wavemin_fast ])
    specs

let test_benchmark_structure_matches_paper () =
  List.iter
    (fun spec ->
      let tree = Benchmarks.synthesize spec in
      Alcotest.(check int) (spec.Benchmarks.name ^ " n")
        spec.Benchmarks.num_nodes (Tree.size tree);
      Alcotest.(check int)
        (spec.Benchmarks.name ^ " |L|")
        spec.Benchmarks.num_leaves (Tree.num_leaves tree))
    Benchmarks.all

let test_wavemin_not_much_worse_than_greedy_anywhere () =
  (* System-level sanity: with the admissible-completion beam, the
     approximation never trails the greedy badly on the golden metric. *)
  List.iter
    (fun name ->
      let spec = Benchmarks.find name in
      let tree = Benchmarks.synthesize spec in
      let wm = run name Flow.Wavemin tree in
      let wf = run name Flow.Wavemin_fast tree in
      Alcotest.(check bool)
        (name ^ " wavemin within 10% of greedy")
        true
        (wm.Flow.metrics.Golden.peak_current_ma
        <= 1.10 *. wf.Flow.metrics.Golden.peak_current_ma))
    specs

let test_deterministic_across_runs () =
  let name = "s15850" in
  let spec = Benchmarks.find name in
  let r1 = run name Flow.Wavemin (Benchmarks.synthesize spec) in
  let r2 = run name Flow.Wavemin (Benchmarks.synthesize spec) in
  Alcotest.(check (float 1e-9)) "same peak"
    r1.Flow.metrics.Golden.peak_current_ma r2.Flow.metrics.Golden.peak_current_ma;
  Alcotest.(check int) "same inverters" r1.Flow.num_leaf_inverters
    r2.Flow.num_leaf_inverters

let test_predicted_tracks_golden_direction () =
  (* The estimate and the golden metric must agree on the ordering
     initial vs optimized (not on absolute values). *)
  let name = "s13207" in
  let spec = Benchmarks.find name in
  let tree = Benchmarks.synthesize spec in
  let env = Repro_clocktree.Timing.nominal () in
  let ctx = Context.create ~params ~env tree ~cells:(Flow.leaf_library ()) in
  let o = Repro_core.Clk_wavemin.optimize ctx in
  let initial_choice_peak =
    (* Estimate of the all-default choice in the same tables: candidate
       0 is BUF_X8 = the default leaf cell. *)
    Array.fold_left
      (fun acc table ->
        let n = Array.length table.Repro_core.Noise_table.sinks in
        Float.max acc
          (Repro_core.Noise_table.zone_objective table ~choices:(Array.make n 0)))
      0.0 ctx.Context.tables
  in
  Alcotest.(check bool) "estimate improves over default" true
    (o.Context.predicted_peak_ua < initial_choice_peak)

let () =
  Alcotest.run "repro_integration"
    [
      ( "integration",
        [
          Alcotest.test_case "benchmarks improve" `Slow test_benchmarks_improve;
          Alcotest.test_case "structure matches paper" `Slow
            test_benchmark_structure_matches_paper;
          Alcotest.test_case "wavemin vs greedy" `Slow
            test_wavemin_not_much_worse_than_greedy_anywhere;
          Alcotest.test_case "deterministic" `Quick test_deterministic_across_runs;
          Alcotest.test_case "estimate tracks golden" `Quick
            test_predicted_tracks_golden_direction;
        ] );
    ]
