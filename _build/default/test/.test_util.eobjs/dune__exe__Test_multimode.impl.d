test/test_multimode.ml: Alcotest Array List Repro_cell Repro_clocktree Repro_core Repro_cts Repro_util
