test/test_baselines.ml: Alcotest Array List Printf QCheck QCheck_alcotest Repro_cell Repro_clocktree Repro_core Repro_cts Repro_util
