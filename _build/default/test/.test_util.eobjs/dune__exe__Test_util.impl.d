test/test_util.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Repro_util String
