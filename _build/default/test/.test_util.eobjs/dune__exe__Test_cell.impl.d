test/test_cell.ml: Alcotest Array Float List QCheck QCheck_alcotest Repro_cell Repro_waveform
