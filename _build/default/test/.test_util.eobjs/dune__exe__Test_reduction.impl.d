test/test_reduction.ml: Alcotest Array Float List QCheck QCheck_alcotest Repro_mosp Repro_util
