test/test_waveform.mli:
