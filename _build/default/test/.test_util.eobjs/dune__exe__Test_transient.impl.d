test/test_transient.ml: Alcotest Array Float List QCheck QCheck_alcotest Repro_powergrid Repro_waveform
