test/test_intervals.ml: Alcotest Array Float List QCheck QCheck_alcotest Repro_cell Repro_clocktree Repro_core Repro_cts Repro_util String
