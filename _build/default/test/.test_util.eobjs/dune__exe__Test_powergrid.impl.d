test/test_powergrid.ml: Alcotest Array Gen List QCheck QCheck_alcotest Repro_powergrid Repro_waveform
