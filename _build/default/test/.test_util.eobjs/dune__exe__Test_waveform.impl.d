test/test_waveform.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Repro_waveform
