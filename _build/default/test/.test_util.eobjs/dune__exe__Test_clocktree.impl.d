test/test_clocktree.ml: Alcotest Array Float Repro_cell Repro_clocktree
