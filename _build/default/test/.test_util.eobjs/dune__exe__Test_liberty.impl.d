test/test_liberty.ml: Alcotest Filename Fun List Printf QCheck QCheck_alcotest Repro_cell String Sys
