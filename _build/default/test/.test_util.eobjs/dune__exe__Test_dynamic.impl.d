test/test_dynamic.ml: Alcotest Array Printf Repro_cell Repro_clocktree Repro_core Repro_cts Repro_util
