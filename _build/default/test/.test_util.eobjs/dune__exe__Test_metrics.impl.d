test/test_metrics.ml: Alcotest List Printf QCheck QCheck_alcotest Repro_waveform
