test/test_mosp.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Repro_mosp Repro_util
