test/test_mosp.mli:
