test/test_golden.ml: Alcotest Array Float Repro_cell Repro_clocktree Repro_core Repro_cts Repro_powergrid Repro_util Repro_waveform
