test/test_lut.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Repro_cell Repro_waveform
