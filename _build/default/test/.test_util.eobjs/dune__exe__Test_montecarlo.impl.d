test/test_montecarlo.ml: Alcotest Array Float Repro_cell Repro_clocktree Repro_core Repro_cts Repro_util
