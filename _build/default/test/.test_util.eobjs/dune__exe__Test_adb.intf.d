test/test_adb.mli:
