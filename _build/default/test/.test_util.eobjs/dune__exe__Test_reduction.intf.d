test/test_reduction.mli:
