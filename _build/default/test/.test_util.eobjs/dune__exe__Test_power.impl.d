test/test_power.ml: Alcotest Array Float Format Repro_cell Repro_clocktree Repro_core Repro_cts Repro_util String
