test/test_zones.ml: Alcotest Array Float Repro_cell Repro_clocktree Repro_core Repro_cts Repro_util Repro_waveform
