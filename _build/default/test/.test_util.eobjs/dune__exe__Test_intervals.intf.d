test/test_intervals.mli:
