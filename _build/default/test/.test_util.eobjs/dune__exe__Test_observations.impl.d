test/test_observations.ml: Alcotest List Repro_clocktree Repro_core
