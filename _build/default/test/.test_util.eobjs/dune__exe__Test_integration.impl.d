test/test_integration.ml: Alcotest Array Float List Printf Repro_clocktree Repro_core Repro_cts
