test/test_cts.ml: Alcotest Array List Printf QCheck QCheck_alcotest Repro_clocktree Repro_core Repro_cts Repro_util
