test/test_montecarlo.mli:
