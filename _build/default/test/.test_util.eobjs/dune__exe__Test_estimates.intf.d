test/test_estimates.mli:
