test/test_lut.mli:
