test/test_cts.mli:
