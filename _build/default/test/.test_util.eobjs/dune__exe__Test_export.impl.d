test/test_export.ml: Alcotest Array Filename Float Format Fun List Printf QCheck QCheck_alcotest Repro_cell Repro_clocktree Repro_cts Repro_util String Sys
