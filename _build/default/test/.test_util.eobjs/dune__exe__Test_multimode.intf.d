test/test_multimode.mli:
