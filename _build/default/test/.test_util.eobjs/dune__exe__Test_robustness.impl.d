test/test_robustness.ml: Alcotest Array List Repro_cell Repro_clocktree Repro_core Repro_cts Repro_powergrid Repro_util Repro_waveform String
