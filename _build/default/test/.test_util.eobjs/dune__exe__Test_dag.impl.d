test/test_dag.ml: Alcotest Array Float List QCheck QCheck_alcotest Repro_mosp Repro_util
