test/test_observations.mli:
