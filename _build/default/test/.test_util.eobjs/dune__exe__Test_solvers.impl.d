test/test_solvers.ml: Alcotest Array List QCheck QCheck_alcotest Repro_cell Repro_clocktree Repro_core Repro_cts Repro_mosp Repro_util
