test/test_cell.mli:
