test/test_transient.mli:
