test/test_clocktree.mli:
