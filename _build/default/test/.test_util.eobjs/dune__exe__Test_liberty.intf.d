test/test_liberty.mli:
