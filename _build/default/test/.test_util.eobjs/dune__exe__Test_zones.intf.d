test/test_zones.mli:
