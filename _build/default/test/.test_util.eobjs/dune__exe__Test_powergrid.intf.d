test/test_powergrid.mli:
