test/test_dynamic.mli:
