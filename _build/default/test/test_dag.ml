module Dag = Repro_mosp.Dag
module Layered = Repro_mosp.Layered
module Warburton = Repro_mosp.Warburton
module Rng = Repro_util.Rng

let w xs = Array.of_list xs

let diamond () =
  (* src=0 -> {1, 2} -> dst=3; two trade-off routes. *)
  Dag.create ~num_vertices:4
    ~arcs:
      [ { Dag.src = 0; dst = 1; weight = w [ 10.; 0. ] };
        { Dag.src = 0; dst = 2; weight = w [ 0.; 10. ] };
        { Dag.src = 1; dst = 3; weight = w [ 1.; 1. ] };
        { Dag.src = 2; dst = 3; weight = w [ 1.; 1. ] } ]

let test_counts () =
  let g = diamond () in
  Alcotest.(check int) "vertices" 4 (Dag.num_vertices g);
  Alcotest.(check int) "arcs" 4 (Dag.num_arcs g);
  Alcotest.(check int) "dim" 2 (Dag.dimension g)

let test_topological_order () =
  let g = diamond () in
  let order = Dag.topological_order g in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "src first" true (pos.(0) < pos.(1) && pos.(0) < pos.(2));
  Alcotest.(check bool) "dst last" true (pos.(3) > pos.(1) && pos.(3) > pos.(2))

let test_validation () =
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.create: graph has a cycle")
    (fun () ->
      ignore
        (Dag.create ~num_vertices:2
           ~arcs:
             [ { Dag.src = 0; dst = 1; weight = w [ 1. ] };
               { Dag.src = 1; dst = 0; weight = w [ 1. ] } ]));
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.create: self loop")
    (fun () ->
      ignore
        (Dag.create ~num_vertices:1 ~arcs:[ { Dag.src = 0; dst = 0; weight = w [ 1. ] } ]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dag.create: negative weight component") (fun () ->
      ignore
        (Dag.create ~num_vertices:2
           ~arcs:[ { Dag.src = 0; dst = 1; weight = w [ -1. ] } ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Dag.create: arc endpoint out of range") (fun () ->
      ignore
        (Dag.create ~num_vertices:2
           ~arcs:[ { Dag.src = 0; dst = 5; weight = w [ 1. ] } ]))

let test_pareto_diamond () =
  let g = diamond () in
  let paths = Dag.pareto_paths ~epsilon:0.0 g ~src:0 ~dst:3 in
  Alcotest.(check int) "two nondominated routes" 2 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check int) "path length" 3 (List.length p.Dag.vertices);
      Alcotest.(check bool) "starts at src" true (List.hd p.Dag.vertices = 0))
    paths

let test_min_max_diamond () =
  match Dag.min_max_path ~epsilon:0.0 (diamond ()) ~src:0 ~dst:3 with
  | Some p ->
    Alcotest.(check (float 1e-9)) "objective" 11.0
      (Array.fold_left Float.max 0.0 p.Dag.cost)
  | None -> Alcotest.fail "expected a path"

let test_unreachable () =
  let g =
    Dag.create ~num_vertices:3 ~arcs:[ { Dag.src = 0; dst = 1; weight = w [ 1. ] } ]
  in
  Alcotest.(check bool) "no path" true (Dag.pareto_paths g ~src:0 ~dst:2 = []);
  Alcotest.(check bool) "min max none" true (Dag.min_max_path g ~src:0 ~dst:2 = None)

let test_src_is_dst () =
  let g =
    Dag.create ~num_vertices:2 ~arcs:[ { Dag.src = 0; dst = 1; weight = w [ 1. ] } ]
  in
  match Dag.pareto_paths ~epsilon:0.0 g ~src:0 ~dst:0 with
  | [ p ] ->
    Alcotest.(check (list int)) "trivial path" [ 0 ] p.Dag.vertices;
    Alcotest.(check (float 1e-12)) "zero cost" 0.0
      (Array.fold_left Float.max 0.0 p.Dag.cost)
  | l -> Alcotest.failf "expected 1 path, got %d" (List.length l)

let random_layered rng =
  let rows = 1 + Rng.int rng ~bound:4 in
  let dim = 1 + Rng.int rng ~bound:3 in
  let options =
    Array.init rows (fun _ ->
        Array.init
          (1 + Rng.int rng ~bound:3)
          (fun _ -> Array.init dim (fun _ -> Rng.float rng ~bound:50.0)))
  in
  let dest = Array.init dim (fun _ -> Rng.float rng ~bound:20.0) in
  Layered.create ~options ~dest_weight:dest

let test_of_layered_matches_warburton () =
  let rng = Rng.create ~seed:616 in
  for _ = 1 to 30 do
    let layered = random_layered rng in
    let expected = Warburton.exhaustive_min_max layered in
    let dag, src, dst = Dag.of_layered layered in
    match Dag.min_max_path ~epsilon:0.0 dag ~src ~dst with
    | Some p ->
      Alcotest.(check (float 1e-6)) "same objective"
        expected.Warburton.objective
        (Array.fold_left Float.max 0.0 p.Dag.cost)
    | None -> Alcotest.fail "expected a path"
  done

let test_of_layered_structure () =
  let layered =
    Layered.create
      ~options:[| [| w [ 1.; 2. ]; w [ 2.; 1. ] |]; [| w [ 3.; 3. ] |] |]
      ~dest_weight:(w [ 0.; 0. ])
  in
  let dag, src, dst = Dag.of_layered layered in
  Alcotest.(check int) "vertices" (Layered.num_vertices layered)
    (Dag.num_vertices dag);
  Alcotest.(check int) "arcs" (Layered.num_arcs layered) (Dag.num_arcs dag);
  Alcotest.(check int) "src" 0 src;
  Alcotest.(check int) "dst" (Dag.num_vertices dag - 1) dst

let prop_dag_matches_layered =
  QCheck.Test.make ~name:"DAG solver == layered exhaustive" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let layered = random_layered rng in
      let expected = Warburton.exhaustive_min_max layered in
      let dag, src, dst = Dag.of_layered layered in
      match Dag.min_max_path ~epsilon:0.0 dag ~src ~dst with
      | Some p ->
        Float.abs
          (Array.fold_left Float.max 0.0 p.Dag.cost
          -. expected.Warburton.objective)
        < 1e-6
      | None -> false)

let prop_pareto_paths_valid =
  QCheck.Test.make ~name:"returned costs equal path recomputation" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let layered = random_layered rng in
      let dag, src, dst = Dag.of_layered layered in
      let arc_weight u v =
        (* recompute by walking the layered structure via the DAG is
           complex; instead verify monotonicity: every cost component is
           at least the per-component minimum bound and finite. *)
        ignore (u, v);
        true
      in
      ignore arc_weight;
      List.for_all
        (fun p ->
          List.hd p.Dag.vertices = src
          && List.nth p.Dag.vertices (List.length p.Dag.vertices - 1) = dst
          && Array.for_all (fun c -> Float.is_finite c && c >= 0.0) p.Dag.cost)
        (Dag.pareto_paths ~epsilon:0.0 dag ~src ~dst))

let () =
  Alcotest.run "repro_dag"
    [
      ( "dag",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "pareto diamond" `Quick test_pareto_diamond;
          Alcotest.test_case "min max diamond" `Quick test_min_max_diamond;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "src = dst" `Quick test_src_is_dst;
          Alcotest.test_case "of_layered matches warburton" `Quick
            test_of_layered_matches_warburton;
          Alcotest.test_case "of_layered structure" `Quick test_of_layered_structure;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_dag_matches_layered; prop_pareto_paths_valid ] );
    ]
