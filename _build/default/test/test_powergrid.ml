module Grid = Repro_powergrid.Grid
module Noise = Repro_powergrid.Noise
module Pwl = Repro_waveform.Pwl

let check_close eps = Alcotest.(check (float eps))

let grid () = Grid.create ~die_side:100.0 ~nx:8 ~ny:8 ~segment_res:0.5 ()

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)

let test_create_validation () =
  Alcotest.check_raises "small" (Invalid_argument "Grid.create: mesh too small")
    (fun () -> ignore (Grid.create ~die_side:10.0 ~nx:1 ~ny:4 ()));
  Alcotest.check_raises "die" (Invalid_argument "Grid.create: non-positive dimension")
    (fun () -> ignore (Grid.create ~die_side:0.0 ()))

let test_num_nodes () = Alcotest.(check int) "8x8" 64 (Grid.num_nodes (grid ()))

let test_node_at_corners () =
  let g = grid () in
  Alcotest.(check int) "origin" 0 (Grid.node_at g ~x:0.0 ~y:0.0);
  Alcotest.(check int) "far corner" 63 (Grid.node_at g ~x:99.9 ~y:99.9);
  (* Clamping outside the die. *)
  Alcotest.(check int) "clamped" 0 (Grid.node_at g ~x:(-10.0) ~y:(-10.0))

let test_position_roundtrip () =
  let g = grid () in
  for id = 0 to Grid.num_nodes g - 1 do
    let x, y = Grid.position g id in
    Alcotest.(check int) "roundtrip" id (Grid.node_at g ~x ~y)
  done

let test_pads_on_boundary () =
  let g = grid () in
  Alcotest.(check bool) "corner is pad" true (Grid.is_pad g 0);
  (* Center of an 8x8 grid is not a pad. *)
  let center = Grid.node_at g ~x:50.0 ~y:50.0 in
  Alcotest.(check bool) "center not pad" false (Grid.is_pad g center)

let test_solve_zero_injection () =
  let g = grid () in
  let v = Grid.solve g ~injection:(Array.make (Grid.num_nodes g) 0.0) in
  Array.iter (fun d -> check_close 1e-9 "zero" 0.0 d) v

let test_solve_positive_drop () =
  let g = grid () in
  let inj = Array.make (Grid.num_nodes g) 0.0 in
  let center = Grid.node_at g ~x:50.0 ~y:50.0 in
  inj.(center) <- 1000.0;
  let v = Grid.solve g ~injection:inj in
  Alcotest.(check bool) "positive at source" true (v.(center) > 0.0);
  Alcotest.(check bool) "max at source" true
    (Array.for_all (fun d -> d <= v.(center) +. 1e-6) v);
  check_close 1e-9 "pads clamped" 0.0 v.(0)

let test_solve_length_mismatch () =
  let g = grid () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Grid.solve: injection length mismatch") (fun () ->
      ignore (Grid.solve g ~injection:[| 1.0 |]))

let test_solve_linear () =
  (* Superposition: solve(2i) = 2 solve(i). *)
  let g = grid () in
  let inj = Array.make (Grid.num_nodes g) 0.0 in
  inj.(27) <- 500.0;
  inj.(36) <- 250.0;
  let v1 = Grid.solve g ~injection:inj in
  let v2 = Grid.solve g ~injection:(Array.map (fun x -> 2.0 *. x) inj) in
  Array.iteri
    (fun i d -> check_close 1e-3 "linear" (2.0 *. d) v2.(i))
    v1

let test_effective_resistance_center_vs_edge () =
  let g = grid () in
  let center = Grid.node_at g ~x:50.0 ~y:50.0 in
  let near_pad = Grid.node_at g ~x:10.0 ~y:0.0 in
  let rc = Grid.effective_resistance g center in
  let re = Grid.effective_resistance g near_pad in
  Alcotest.(check bool) "center worse" true (rc > re);
  Alcotest.(check bool) "sane magnitude" true (rc > 0.0 && rc < 10.0)

(* ------------------------------------------------------------------ *)
(* Noise                                                               *)

let pulse t0 h =
  Pwl.triangle ~start:t0 ~peak_time:(t0 +. 5.0) ~finish:(t0 +. 15.0) ~height:h

let test_rail_noise_zero_without_injection () =
  let g = grid () in
  check_close 1e-12 "no injections" 0.0
    (Noise.rail_noise_mv g ~injections:[] ~times:[| 0.0; 1.0 |])

let test_rail_noise_positive () =
  let g = grid () in
  let injections = [ { Noise.x = 50.0; y = 50.0; waveform = pulse 0.0 2000.0 } ] in
  let times = Noise.default_times injections ~count:32 in
  let noise = Noise.rail_noise_mv g ~injections ~times in
  Alcotest.(check bool) "positive" true (noise > 0.0);
  (* 2000 uA through ~1-2 Ohm effective -> a few mV. *)
  Alcotest.(check bool) "sane" true (noise < 20.0)

let test_noise_scales_with_current () =
  let g = grid () in
  let mk h = [ { Noise.x = 30.0; y = 70.0; waveform = pulse 0.0 h } ] in
  let times = Noise.default_times (mk 1000.0) ~count:32 in
  let n1 = Noise.rail_noise_mv g ~injections:(mk 1000.0) ~times in
  let n2 = Noise.rail_noise_mv g ~injections:(mk 2000.0) ~times in
  check_close 1e-6 "linear" (2.0 *. n1) n2

let test_disjoint_pulses_do_not_add () =
  (* Two pulses far apart in time: the peak equals the single-pulse
     peak, unlike overlapping pulses. *)
  let g = grid () in
  let at t = { Noise.x = 50.0; y = 50.0; waveform = pulse t 1000.0 } in
  let overlapping = [ at 0.0; at 0.0 ] in
  let disjoint = [ at 0.0; at 500.0 ] in
  let times l = Noise.default_times l ~count:64 in
  let n_overlap = Noise.rail_noise_mv g ~injections:overlapping ~times:(times overlapping) in
  let n_disjoint = Noise.rail_noise_mv g ~injections:disjoint ~times:(times disjoint) in
  Alcotest.(check bool) "overlap worse" true (n_overlap > n_disjoint *. 1.5)

let test_evaluate_both_rails () =
  let g = grid () in
  let vdd = [ { Noise.x = 50.0; y = 50.0; waveform = pulse 0.0 1500.0 } ] in
  let gnd = [ { Noise.x = 50.0; y = 50.0; waveform = pulse 0.0 750.0 } ] in
  let times = Noise.default_times (vdd @ gnd) ~count:32 in
  let r = Noise.evaluate g ~vdd ~gnd ~times in
  Alcotest.(check bool) "vdd > gnd" true
    (r.Noise.vdd_noise_mv > r.Noise.gnd_noise_mv)

let test_default_times_cover_support () =
  let injections =
    [ { Noise.x = 0.0; y = 0.0; waveform = pulse 10.0 1.0 };
      { Noise.x = 0.0; y = 0.0; waveform = pulse 100.0 1.0 } ]
  in
  let times = Noise.default_times injections ~count:16 in
  Alcotest.(check int) "count" 16 (Array.length times);
  Alcotest.(check (float 1e-9)) "start" 10.0 times.(0);
  Alcotest.(check (float 1e-9)) "end" 115.0 times.(15)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_drop_nonnegative_for_nonneg_injection =
  QCheck.Test.make ~name:"drops non-negative for draws" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 6)
              (pair (pair (float_range 0. 100.) (float_range 0. 100.))
                 (float_range 0. 5000.)))
    (fun sources ->
      let g = grid () in
      let inj = Array.make (Grid.num_nodes g) 0.0 in
      List.iter
        (fun ((x, y), i) ->
          let n = Grid.node_at g ~x ~y in
          inj.(n) <- inj.(n) +. i)
        sources;
      let v = Grid.solve g ~injection:inj in
      Array.for_all (fun d -> d >= -1e-6) v)

let () =
  Alcotest.run "repro_powergrid"
    [
      ( "grid",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "num nodes" `Quick test_num_nodes;
          Alcotest.test_case "node at corners" `Quick test_node_at_corners;
          Alcotest.test_case "position roundtrip" `Quick test_position_roundtrip;
          Alcotest.test_case "pads on boundary" `Quick test_pads_on_boundary;
          Alcotest.test_case "zero injection" `Quick test_solve_zero_injection;
          Alcotest.test_case "positive drop" `Quick test_solve_positive_drop;
          Alcotest.test_case "length mismatch" `Quick test_solve_length_mismatch;
          Alcotest.test_case "linearity" `Quick test_solve_linear;
          Alcotest.test_case "effective resistance" `Quick
            test_effective_resistance_center_vs_edge;
        ] );
      ( "noise",
        [
          Alcotest.test_case "zero without injection" `Quick
            test_rail_noise_zero_without_injection;
          Alcotest.test_case "positive" `Quick test_rail_noise_positive;
          Alcotest.test_case "scales with current" `Quick
            test_noise_scales_with_current;
          Alcotest.test_case "disjoint pulses" `Quick
            test_disjoint_pulses_do_not_add;
          Alcotest.test_case "both rails" `Quick test_evaluate_both_rails;
          Alcotest.test_case "default times" `Quick test_default_times_cover_support;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_drop_nonnegative_for_nonneg_injection ] );
    ]
