module Power = Repro_core.Power
module Golden = Repro_core.Golden
module Context = Repro_core.Context
module Flow = Repro_core.Flow
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Library = Repro_cell.Library
module Rng = Repro_util.Rng

let tree () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed:6161)
      (Repro_cts.Placement.square_die 150.0) ~count:16 ()
  in
  Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:6162) sinks ~internals:5

let setup () =
  let t = tree () in
  (t, Assignment.default t ~num_modes:1, Timing.nominal ())

let test_report_positive () =
  let t, asg, env = setup () in
  let r = Power.analyze t asg env in
  Alcotest.(check bool) "charge" true (r.Power.charge_per_cycle_fc > 0.0);
  Alcotest.(check bool) "power" true (r.Power.avg_power_uw > 0.0);
  Alcotest.(check bool) "peak" true (r.Power.peak_current_ma > 0.0);
  Alcotest.(check bool) "crest > 1" true (r.Power.peak_to_average > 1.0);
  Alcotest.(check bool) "leaf share sane" true
    (r.Power.leaf_share > 0.0 && r.Power.leaf_share < 1.0)

let test_peak_consistent_with_golden () =
  let t, asg, env = setup () in
  let r = Power.analyze t asg env in
  let g = Golden.evaluate t asg env in
  Alcotest.(check (float 0.2)) "same peak" g.Golden.peak_current_ma
    r.Power.peak_current_ma

let test_charge_roughly_invariant_under_polarity () =
  (* Polarity assignment moves charge across rails/time but barely
     changes the total (cells keep similar sizes). *)
  let t, asg, env = setup () in
  let before = Power.analyze t asg env in
  let ctx = Context.create ~env t ~cells:(Flow.leaf_library ()) in
  let o = Repro_core.Clk_wavemin.optimize ctx in
  let after = Power.analyze t o.Context.assignment env in
  let rel =
    Float.abs (after.Power.charge_per_cycle_fc -. before.Power.charge_per_cycle_fc)
    /. before.Power.charge_per_cycle_fc
  in
  Alcotest.(check bool) "within 30%" true (rel < 0.30);
  (* ... while the crest improves. *)
  Alcotest.(check bool) "crest improves" true
    (after.Power.peak_to_average < before.Power.peak_to_average)

let test_power_scales_with_frequency () =
  (* Halving the period doubles the average power (same charge per
     cycle, twice as often). *)
  let t, asg, env = setup () in
  let slow = Power.analyze ~period:2000.0 t asg env in
  let fast = Power.analyze ~period:1000.0 t asg env in
  Alcotest.(check (float 0.2)) "double power"
    (2.0 *. slow.Power.avg_power_uw)
    fast.Power.avg_power_uw

let test_bigger_cells_more_power () =
  let t, asg, env = setup () in
  let upsized =
    Array.fold_left
      (fun a nd -> Assignment.set_cell a nd.Tree.id (Library.buf 16))
      asg (Tree.leaves t)
  in
  let small = Power.analyze t asg env in
  let big = Power.analyze t upsized env in
  Alcotest.(check bool) "more charge" true
    (big.Power.charge_per_cycle_fc > small.Power.charge_per_cycle_fc)

let test_pp () =
  let t, asg, env = setup () in
  let out = Format.asprintf "%a" Power.pp (Power.analyze t asg env) in
  Alcotest.(check bool) "mentions power" true (String.length out > 20)

let () =
  Alcotest.run "repro_power"
    [
      ( "power",
        [
          Alcotest.test_case "report positive" `Quick test_report_positive;
          Alcotest.test_case "peak consistent" `Quick
            test_peak_consistent_with_golden;
          Alcotest.test_case "charge invariant" `Quick
            test_charge_roughly_invariant_under_polarity;
          Alcotest.test_case "frequency scaling" `Quick
            test_power_scales_with_frequency;
          Alcotest.test_case "bigger cells more power" `Quick
            test_bigger_cells_more_power;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
    ]
