module Multimode = Repro_core.Multimode
module Context = Repro_core.Context
module Adb_embedding = Repro_core.Adb_embedding
module Clk_wavemin_m = Repro_core.Clk_wavemin_m
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Islands = Repro_cts.Islands
module Library = Repro_cell.Library
module Cell = Repro_cell.Cell
module Rng = Repro_util.Rng

let die_side = 150.0

let tree ?(seed = 909) ?(leaves = 12) ?(internals = 4) () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed)
      (Repro_cts.Placement.square_die die_side) ~count:leaves ()
  in
  Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:(seed + 1)) sinks ~internals

let params =
  { Context.default_params with
    Context.num_slots = 16;
    max_interval_classes = 6;
    kappa = 30.0 }

(* Two power modes over two vertical islands: M0 all 1.1 V, M1 drops
   half the die to 0.9 V. *)
let envs_for tree_v =
  let islands = Islands.grid ~die_side ~count:2 in
  let m0 = Islands.uniform_mode islands ~vdd:1.1 in
  let m1 =
    Array.mapi (fun i _ -> if i = 0 then 1.1 else 0.9)
      (Islands.uniform_mode islands ~vdd:1.1)
  in
  ignore tree_v;
  [| { (Timing.nominal ~mode:0 ()) with
       Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands m0 nd) };
     { (Timing.nominal ~mode:1 ()) with
       Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands m1 nd) } |]

let plain_cells = [ Library.buf 8; Library.buf 16; Library.inv 8; Library.inv 16 ]

(* ------------------------------------------------------------------ *)
(* Multimode context                                                   *)

let test_create_validates_modes () =
  let t = tree () in
  let base = Assignment.default t ~num_modes:2 in
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Multimode.create: envs/assignment mode count mismatch")
    (fun () ->
      ignore
        (Multimode.create ~params t ~base ~envs:[| Timing.nominal () |]
           ~cells:plain_cells))

let test_create_checks_env_mode_index () =
  let t = tree () in
  let base = Assignment.default t ~num_modes:2 in
  let bad = [| Timing.nominal ~mode:0 (); Timing.nominal ~mode:0 () |] in
  Alcotest.check_raises "env mode"
    (Invalid_argument "Multimode.create: env.mode must equal its index") (fun () ->
      ignore (Multimode.create ~params t ~base ~envs:bad ~cells:plain_cells))

let test_single_mode_reduces_to_context () =
  (* With one nominal mode, multimode must be feasible whenever the
     single-mode context is. *)
  let t = tree () in
  let base = Assignment.default t ~num_modes:1 in
  let mm =
    Multimode.create ~params t ~base ~envs:[| Timing.nominal () |]
      ~cells:plain_cells
  in
  let ctx = Context.create ~params t ~cells:plain_cells in
  Alcotest.(check bool) "same feasibility" (Context.feasible ctx)
    (Multimode.feasible mm)

let test_intersections_feasible () =
  let t = tree () in
  let envs = envs_for t in
  let base = Assignment.default t ~num_modes:2 in
  let mm = Multimode.create ~params t ~base ~envs ~cells:plain_cells in
  List.iter
    (fun inter ->
      Alcotest.(check int) "one interval per mode" 2
        (Array.length inter.Multimode.intervals);
      (* Every sink admits at least one cell. *)
      Array.iter
        (fun row ->
          Alcotest.(check bool) "row non-empty" true (Array.exists (fun b -> b) row))
        inter.Multimode.cell_avail)
    mm.Multimode.intersections

let test_chosen_candidates_consistent () =
  let t = tree () in
  let envs = envs_for t in
  let base = Assignment.default t ~num_modes:2 in
  let mm = Multimode.create ~params t ~base ~envs ~cells:plain_cells in
  match mm.Multimode.intersections with
  | [] -> () (* nothing to check when infeasible *)
  | inter :: _ ->
    Array.iteri
      (fun m via ->
        Array.iteri
          (fun row per_cell ->
            Array.iteri
              (fun k ci ->
                if inter.Multimode.cell_avail.(row).(k) then begin
                  Alcotest.(check bool) "candidate present" true (ci >= 0);
                  let cand =
                    mm.Multimode.modes.(m).Multimode.sinks.(row)
                      .Repro_core.Intervals.candidates.(ci)
                  in
                  let iv = inter.Multimode.intervals.(m) in
                  Alcotest.(check bool) "inside interval" true
                    (cand.Repro_core.Intervals.arrival
                     >= iv.Repro_core.Intervals.lo -. 1e-6
                    && cand.Repro_core.Intervals.arrival
                       <= iv.Repro_core.Intervals.hi +. 1e-6);
                  Alcotest.(check bool) "right cell" true
                    (Cell.equal cand.Repro_core.Intervals.cell
                       mm.Multimode.cell_universe.(k))
                end)
              per_cell)
          via)
      inter.Multimode.chosen_candidate

let test_solve_respects_skew_in_all_modes () =
  (* Raw Multimode.solve guarantees kappa under base-timing arrivals;
     the realized skew may exceed it by at most the sibling shift in
     excess of the guard (small).  The verified flow (ClkWaveMin-M)
     must meet kappa exactly — both are checked. *)
  let t = tree () in
  let envs = envs_for t in
  let base = Assignment.default t ~num_modes:2 in
  let mm = Multimode.create ~params t ~base ~envs ~cells:plain_cells in
  if Multimode.feasible mm then begin
    let sol = Multimode.solve mm in
    let skews = Adb_embedding.skews t sol.Multimode.assignment envs in
    Array.iter
      (fun s ->
        Alcotest.(check bool) "raw solve within kappa + slack" true
          (s <= params.Context.kappa +. 3.0))
      skews
  end;
  let o = Clk_wavemin_m.optimize ~params t ~envs in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "verified flow within kappa" true
        (s <= params.Context.kappa +. 1e-6))
    o.Clk_wavemin_m.skews

let test_dof_table_nonempty () =
  let t = tree () in
  let envs = envs_for t in
  let base = Assignment.default t ~num_modes:2 in
  let mm = Multimode.create ~params t ~base ~envs ~cells:plain_cells in
  if Multimode.feasible mm then begin
    let table = Multimode.degree_of_freedom_table mm in
    Alcotest.(check bool) "rows" true (table <> []);
    List.iter
      (fun (dof, peak) ->
        Alcotest.(check bool) "positive dof" true (dof > 0);
        Alcotest.(check bool) "positive peak" true (peak > 0.0))
      table
  end

(* ------------------------------------------------------------------ *)
(* ClkWaveMin-M                                                        *)

let test_wavemin_m_runs () =
  let t = tree ~leaves:10 ~internals:3 () in
  let envs = envs_for t in
  let o = Clk_wavemin_m.optimize ~params t ~envs in
  Alcotest.(check bool) "feasible output" true o.Clk_wavemin_m.feasible;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "skews" true (s <= params.Context.kappa +. 1e-6))
    o.Clk_wavemin_m.skews

let test_wavemin_m_tight_kappa_uses_adbs () =
  (* A very tight skew bound across 0.9/1.1 V islands cannot be met by
     sizing alone: the flow must fall back to ADB embedding. *)
  let t = tree ~leaves:10 ~internals:3 () in
  let envs = envs_for t in
  let tight = { params with Context.kappa = 6.0 } in
  let o = Clk_wavemin_m.optimize ~params:tight t ~envs in
  Alcotest.(check bool) "used embedding" true o.Clk_wavemin_m.used_adb_embedding;
  Alcotest.(check bool) "placed ADBs or ADIs" true
    (o.Clk_wavemin_m.num_adbs + o.Clk_wavemin_m.num_adis > 0)

let test_embedding_guarantees_intersection () =
  (* The paper's guarantee: after ADB embedding succeeds at a bound
     tighter than kappa by the guard, the multimode context (with ADB
     leaves restricted to {ADB, ADI}) always has the trivial
     keep-everything intersection. *)
  let t = tree () in
  let envs = envs_for t in
  let kappa = 30.0 in
  let base = Assignment.default t ~num_modes:2 in
  let e =
    Adb_embedding.embed t base ~envs
      ~kappa:(kappa -. params.Context.sibling_guard -. 2.0)
  in
  if e.Adb_embedding.feasible then begin
    let basee = e.Adb_embedding.assignment in
    let cells_of leaf =
      let current = Assignment.cell basee leaf in
      if Cell.is_adjustable current then
        [ Library.adb current.Cell.drive; Library.adi current.Cell.drive ]
      else plain_cells
    in
    let mm =
      Multimode.create ~params:{ params with Context.kappa } ~cells_of t
        ~base:basee ~envs ~cells:plain_cells
    in
    Alcotest.(check bool) "trivial intersection exists" true
      (Multimode.feasible mm)
  end

let test_adb_embedded_only_reference () =
  let t = tree ~leaves:10 ~internals:3 () in
  let envs = envs_for t in
  let tight = { params with Context.kappa = 6.0 } in
  let r = Clk_wavemin_m.adb_embedded_only ~params:tight t ~envs in
  Alcotest.(check int) "skews per mode" 2 (Array.length r.Adb_embedding.skews)

let () =
  Alcotest.run "repro_core_multimode"
    [
      ( "context",
        [
          Alcotest.test_case "validates modes" `Quick test_create_validates_modes;
          Alcotest.test_case "checks env mode index" `Quick
            test_create_checks_env_mode_index;
          Alcotest.test_case "single mode reduces" `Quick
            test_single_mode_reduces_to_context;
          Alcotest.test_case "intersections feasible" `Quick
            test_intersections_feasible;
          Alcotest.test_case "chosen candidates consistent" `Quick
            test_chosen_candidates_consistent;
        ] );
      ( "solve",
        [
          Alcotest.test_case "skew in all modes" `Quick
            test_solve_respects_skew_in_all_modes;
          Alcotest.test_case "dof table" `Quick test_dof_table_nonempty;
        ] );
      ( "wavemin-m",
        [
          Alcotest.test_case "runs" `Quick test_wavemin_m_runs;
          Alcotest.test_case "tight kappa uses ADBs" `Quick
            test_wavemin_m_tight_kappa_uses_adbs;
          Alcotest.test_case "embedding guarantees intersection" `Quick
            test_embedding_guarantees_intersection;
          Alcotest.test_case "embedded-only reference" `Quick
            test_adb_embedded_only_reference;
        ] );
    ]
