module Grid = Repro_powergrid.Grid
module Noise = Repro_powergrid.Noise
module Transient = Repro_powergrid.Transient
module Pwl = Repro_waveform.Pwl

let grid () = Grid.create ~die_side:100.0 ~nx:8 ~ny:8 ~segment_res:0.5 ()

let pulse t0 h =
  Pwl.triangle ~start:t0 ~peak_time:(t0 +. 5.0) ~finish:(t0 +. 15.0) ~height:h

let injections h = [ { Noise.x = 50.0; y = 50.0; waveform = pulse 0.0 h } ]

let test_no_injections () =
  let r = Transient.simulate (grid ()) ~injections:[] () in
  Alcotest.(check (float 1e-12)) "zero" 0.0 r.Transient.worst_drop_mv;
  Alcotest.(check int) "no samples" 0 (Array.length r.Transient.times)

let test_positive_drop () =
  let r = Transient.simulate (grid ()) ~injections:(injections 2000.0) () in
  Alcotest.(check bool) "positive" true (r.Transient.worst_drop_mv > 0.0);
  Alcotest.(check bool) "bounded" true (r.Transient.worst_drop_mv < 20.0)

let test_envelope_shape () =
  let r = Transient.simulate (grid ()) ~injections:(injections 2000.0) () in
  Alcotest.(check int) "envelope per step" (Array.length r.Transient.times)
    (Array.length r.Transient.envelope_mv);
  let max_env = Array.fold_left Float.max 0.0 r.Transient.envelope_mv in
  Alcotest.(check (float 1e-9)) "worst = max envelope" r.Transient.worst_drop_mv
    max_env

let test_decap_smooths () =
  (* More decap, lower worst drop. *)
  let run decap_ff =
    (Transient.simulate (grid ())
       ~config:{ Transient.decap_ff; dt = 2.0 }
       ~injections:(injections 3000.0) ())
      .Transient.worst_drop_mv
  in
  let none = run 0.0 in
  let some = run 2000.0 in
  let lots = run 20000.0 in
  Alcotest.(check bool) "monotone" true (lots < some && some < none)

let test_zero_decap_matches_resistive () =
  (* With zero decap every step is an independent resistive solve. *)
  let g = grid () in
  let injections = injections 1500.0 in
  let r =
    Transient.simulate g ~config:{ Transient.decap_ff = 0.0; dt = 1.0 }
      ~injections ()
  in
  let resistive =
    Transient.resistive_reference g ~injections ~times:r.Transient.times
  in
  Alcotest.(check (float 0.01)) "equal" resistive r.Transient.worst_drop_mv

let test_worst_time_in_span () =
  let r = Transient.simulate (grid ()) ~injections:(injections 2000.0) () in
  Alcotest.(check bool) "within simulated span" true
    (r.Transient.worst_time >= r.Transient.times.(0)
    && r.Transient.worst_time
       <= r.Transient.times.(Array.length r.Transient.times - 1))

let test_worst_node_not_pad () =
  let g = grid () in
  let r = Transient.simulate g ~injections:(injections 2000.0) () in
  Alcotest.(check bool) "not a pad" false (Grid.is_pad g r.Transient.worst_node)

let test_config_validation () =
  Alcotest.check_raises "dt" (Invalid_argument "Transient.simulate: dt <= 0")
    (fun () ->
      ignore
        (Transient.simulate (grid ())
           ~config:{ Transient.decap_ff = 1.0; dt = 0.0 }
           ~injections:(injections 1.0) ()));
  Alcotest.check_raises "decap" (Invalid_argument "Transient.simulate: decap < 0")
    (fun () ->
      ignore
        (Transient.simulate (grid ())
           ~config:{ Transient.decap_ff = -1.0; dt = 1.0 }
           ~injections:(injections 1.0) ()))

let test_solve_shifted_reduces_drop () =
  (* Adding a positive diagonal (leakage to the ideal rail) can only
     lower the drop. *)
  let g = grid () in
  let inj = Array.make (Grid.num_nodes g) 0.0 in
  inj.(Grid.node_at g ~x:50.0 ~y:50.0) <- 1000.0;
  let v0 = Grid.solve g ~injection:inj in
  let v1 =
    Grid.solve_shifted g ~diag:(Array.make (Grid.num_nodes g) 0.5) ~injection:inj
  in
  let m a = Array.fold_left Float.max 0.0 a in
  Alcotest.(check bool) "shifted lower" true (m v1 < m v0)

let test_solve_shifted_validation () =
  let g = grid () in
  let n = Grid.num_nodes g in
  Alcotest.check_raises "diag length"
    (Invalid_argument "Grid.solve_shifted: diag length mismatch") (fun () ->
      ignore (Grid.solve_shifted g ~diag:[| 1.0 |] ~injection:(Array.make n 0.0)));
  Alcotest.check_raises "negative diag"
    (Invalid_argument "Grid.solve_shifted: negative diagonal entry") (fun () ->
      ignore
        (Grid.solve_shifted g
           ~diag:(Array.make n (-1.0))
           ~injection:(Array.make n 0.0)))

let prop_transient_leq_resistive =
  QCheck.Test.make ~name:"decap never worsens the worst drop" ~count:25
    QCheck.(pair (float_range 100.0 5000.0) (float_range 100.0 20000.0))
    (fun (height, decap_ff) ->
      let g = grid () in
      let injections = injections height in
      let r =
        Transient.simulate g ~config:{ Transient.decap_ff; dt = 2.0 }
          ~injections ()
      in
      let resistive =
        Transient.resistive_reference g ~injections ~times:r.Transient.times
      in
      r.Transient.worst_drop_mv <= resistive +. 1e-6)

let () =
  Alcotest.run "repro_transient"
    [
      ( "transient",
        [
          Alcotest.test_case "no injections" `Quick test_no_injections;
          Alcotest.test_case "positive drop" `Quick test_positive_drop;
          Alcotest.test_case "envelope shape" `Quick test_envelope_shape;
          Alcotest.test_case "decap smooths" `Quick test_decap_smooths;
          Alcotest.test_case "zero decap = resistive" `Quick
            test_zero_decap_matches_resistive;
          Alcotest.test_case "worst time in span" `Quick test_worst_time_in_span;
          Alcotest.test_case "worst node not pad" `Quick test_worst_node_not_pad;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "shifted solve reduces drop" `Quick
            test_solve_shifted_reduces_drop;
          Alcotest.test_case "shifted solve validation" `Quick
            test_solve_shifted_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_transient_leq_resistive ] );
    ]
