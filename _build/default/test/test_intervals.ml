module Intervals = Repro_core.Intervals
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Library = Repro_cell.Library
module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Rng = Repro_util.Rng

let tree () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed:31)
      (Repro_cts.Placement.square_die 150.0) ~count:12 ()
  in
  Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:32) sinks ~internals:4

let setup () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let env = Timing.nominal () in
  let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
  (t, asg, env, timing)

let cells = [ Library.buf 8; Library.buf 16; Library.inv 8; Library.inv 16 ]

let test_collect_shape () =
  let t, asg, env, timing = setup () in
  let sinks = Intervals.collect t asg env timing ~cells in
  Alcotest.(check int) "one per leaf" (Tree.num_leaves t) (Array.length sinks);
  Array.iter
    (fun s ->
      Alcotest.(check int) "4 fixed candidates" 4
        (Array.length s.Intervals.candidates);
      Array.iter
        (fun c ->
          Alcotest.(check bool) "positive arrival" true (c.Intervals.arrival > 0.0);
          Alcotest.(check (float 1e-12)) "fixed extra" 0.0 c.Intervals.extra)
        s.Intervals.candidates)
    sinks

let test_collect_expands_adjustable () =
  let t, asg, env, timing = setup () in
  let sinks = Intervals.collect t asg env timing ~cells:[ Library.adb 8 ] in
  let steps = Array.length Library.adjustable_steps in
  Array.iter
    (fun s ->
      Alcotest.(check int) "one per step" steps (Array.length s.Intervals.candidates);
      (* Arrivals differ exactly by the steps. *)
      let base = s.Intervals.candidates.(0).Intervals.arrival in
      Array.iteri
        (fun i c ->
          Alcotest.(check (float 1e-9)) "step offset"
            (base +. Library.adjustable_steps.(i))
            c.Intervals.arrival)
        s.Intervals.candidates)
    sinks

let test_collect_per_leaf_library () =
  let t, asg, env, timing = setup () in
  let leaves = Tree.leaves t in
  let special = leaves.(0).Tree.id in
  let sinks =
    Intervals.collect_per_leaf t asg env timing ~cells_of:(fun leaf ->
        if leaf = special then [ Library.buf 8 ] else cells)
  in
  Array.iter
    (fun s ->
      let expect = if s.Intervals.leaf_id = special then 1 else 4 in
      Alcotest.(check int) "per-leaf size" expect (Array.length s.Intervals.candidates))
    sinks

let test_collect_per_leaf_empty_rejected () =
  let t, asg, env, timing = setup () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Intervals.collect_per_leaf: empty leaf library") (fun () ->
      ignore (Intervals.collect_per_leaf t asg env timing ~cells_of:(fun _ -> [])))

let test_feasible_intervals_exist () =
  let t, asg, env, timing = setup () in
  let sinks = Intervals.collect t asg env timing ~cells in
  let ivs = Intervals.feasible_intervals sinks ~kappa:20.0 in
  Alcotest.(check bool) "some interval" true (ivs <> []);
  List.iter
    (fun iv ->
      Alcotest.(check (float 1e-9)) "width kappa" 20.0
        (iv.Intervals.hi -. iv.Intervals.lo);
      Alcotest.(check bool) "feasible" true (Intervals.feasible sinks iv))
    ivs

let test_tight_kappa_infeasible () =
  let t, asg, env, timing = setup () in
  (* With a single cell type the arrival spread is the tree skew; a
     kappa far below it leaves no feasible interval. *)
  let sinks = Intervals.collect t asg env timing ~cells in
  let spread =
    let all =
      Array.to_list sinks
      |> List.concat_map (fun s ->
             Array.to_list (Array.map (fun c -> c.Intervals.arrival) s.Intervals.candidates))
    in
    let mins =
      Array.to_list sinks
      |> List.map (fun s ->
             Array.fold_left
               (fun acc c -> Float.min acc c.Intervals.arrival)
               infinity s.Intervals.candidates)
    in
    let maxmin = List.fold_left Float.max neg_infinity mins in
    let minmax =
      Array.to_list sinks
      |> List.map (fun s ->
             Array.fold_left
               (fun acc c -> Float.max acc c.Intervals.arrival)
               neg_infinity s.Intervals.candidates)
      |> List.fold_left Float.min infinity
    in
    ignore all;
    maxmin -. minmax
  in
  if spread > 0.5 then begin
    let ivs = Intervals.feasible_intervals sinks ~kappa:(spread /. 2.0) in
    Alcotest.(check bool) "infeasible" true (ivs = [])
  end

let test_kappa_validation () =
  let t, asg, env, timing = setup () in
  let sinks = Intervals.collect t asg env timing ~cells in
  Alcotest.check_raises "kappa"
    (Invalid_argument "Intervals.feasible_intervals: kappa <= 0") (fun () ->
      ignore (Intervals.feasible_intervals sinks ~kappa:0.0))

let test_availability_consistent () =
  let t, asg, env, timing = setup () in
  let sinks = Intervals.collect t asg env timing ~cells in
  match Intervals.feasible_intervals sinks ~kappa:20.0 with
  | [] -> Alcotest.fail "expected feasible interval"
  | iv :: _ ->
    let avail = Intervals.availability sinks iv in
    Array.iteri
      (fun row s ->
        Array.iteri
          (fun ci ok ->
            let a = s.Intervals.candidates.(ci).Intervals.arrival in
            let inside = a >= iv.Intervals.lo -. 1e-9 && a <= iv.Intervals.hi +. 1e-9 in
            Alcotest.(check bool) "matches" inside ok)
          avail.(row))
      sinks

let test_signature_distinguishes () =
  let a = [| [| true; false |]; [| true; true |] |] in
  let b = [| [| true; false |]; [| false; true |] |] in
  Alcotest.(check bool) "same" true
    (String.equal (Intervals.signature a) (Intervals.signature a));
  Alcotest.(check bool) "different" false
    (String.equal (Intervals.signature a) (Intervals.signature b))

let test_coalesce_reduces_intervals () =
  let t, asg, env, timing = setup () in
  let sinks = Intervals.collect t asg env timing ~cells in
  let fine = Intervals.feasible_intervals ~coalesce:0.01 sinks ~kappa:20.0 in
  let coarse = Intervals.feasible_intervals ~coalesce:2.0 sinks ~kappa:20.0 in
  Alcotest.(check bool) "coarse <= fine" true
    (List.length coarse <= List.length fine)

(* Property: feasibility is monotone — an interval wholly containing a
   feasible interval's arrivals is itself feasible when kappa grows. *)
let prop_larger_kappa_keeps_feasible =
  QCheck.Test.make ~name:"larger kappa keeps intervals feasible" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let sinks_arr =
        Repro_cts.Placement.random_sinks (Rng.create ~seed)
          (Repro_cts.Placement.square_die 120.0) ~count:8 ()
      in
      let t =
        Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:(seed + 1))
          sinks_arr ~internals:3
      in
      let asg = Assignment.default t ~num_modes:1 in
      let env = Timing.nominal () in
      let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
      let sinks = Intervals.collect t asg env timing ~cells in
      let small = Intervals.feasible_intervals sinks ~kappa:15.0 in
      List.for_all
        (fun iv ->
          Intervals.feasible sinks
            { Intervals.lo = iv.Intervals.hi -. 25.0; hi = iv.Intervals.hi })
        small)

let () =
  Alcotest.run "repro_core_intervals"
    [
      ( "collect",
        [
          Alcotest.test_case "shape" `Quick test_collect_shape;
          Alcotest.test_case "expands adjustable" `Quick
            test_collect_expands_adjustable;
          Alcotest.test_case "per leaf library" `Quick test_collect_per_leaf_library;
          Alcotest.test_case "empty library rejected" `Quick
            test_collect_per_leaf_empty_rejected;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "feasible exist" `Quick test_feasible_intervals_exist;
          Alcotest.test_case "tight kappa infeasible" `Quick
            test_tight_kappa_infeasible;
          Alcotest.test_case "kappa validation" `Quick test_kappa_validation;
          Alcotest.test_case "availability consistent" `Quick
            test_availability_consistent;
          Alcotest.test_case "signature" `Quick test_signature_distinguishes;
          Alcotest.test_case "coalesce" `Quick test_coalesce_reduces_intervals;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_larger_kappa_keeps_feasible ] );
    ]
