module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Library = Repro_cell.Library
module Noise_lut = Repro_cell.Noise_lut
module Pwl = Repro_waveform.Pwl

let check_close eps = Alcotest.(check (float eps))

let lut () = Noise_lut.build (Library.buf 8) ~vdd:1.1 ()

let test_build_validation () =
  Alcotest.check_raises "small grid"
    (Invalid_argument "Noise_lut.build: loads too small") (fun () ->
      ignore (Noise_lut.build (Library.buf 1) ~vdd:1.1 ~loads:[| 1.0 |] ()));
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Noise_lut.build: slews must be strictly increasing")
    (fun () ->
      ignore
        (Noise_lut.build (Library.buf 1) ~vdd:1.1 ~slews:[| 10.0; 10.0 |] ()))

let test_exact_on_grid_points () =
  let t = lut () in
  Array.iter
    (fun load ->
      Array.iter
        (fun input_slew ->
          let exact =
            Electrical.delay (Library.buf 8) ~vdd:1.1 ~load ~input_slew
              ~edge:Electrical.Rising ()
          in
          check_close 1e-9 "grid exact" exact
            (Noise_lut.delay t ~load ~input_slew ~edge:Electrical.Rising))
        (Noise_lut.slews t))
    (Noise_lut.loads t)

let test_interpolation_accuracy () =
  (* Off-grid queries stay within a few percent of the analytic model. *)
  let t = lut () in
  let err =
    Noise_lut.max_relative_error t
      ~probe_loads:[| 2.0; 4.5; 8.0; 12.5; 18.0; 23.0; 30.0; 37.0 |]
      ~probe_slews:[| 10.0; 20.0; 30.0; 42.0; 55.0 |]
  in
  Alcotest.(check bool) (Printf.sprintf "error %.4f < 3%%" err) true (err < 0.03)

let test_clamping_outside_grid () =
  let t = lut () in
  let inside = Noise_lut.delay t ~load:40.0 ~input_slew:60.0 ~edge:Electrical.Rising in
  let outside = Noise_lut.delay t ~load:100.0 ~input_slew:90.0 ~edge:Electrical.Rising in
  check_close 1e-9 "clamped" inside outside

let test_noise_matches_waveform_on_grid () =
  let t = lut () in
  let load = 10.0 and input_slew = 25.0 in
  let c =
    Electrical.event_currents (Library.buf 8) ~vdd:1.1 ~load ~input_slew
      ~edge:Electrical.Rising ()
  in
  let time = Pwl.peak_time c.Electrical.idd in
  check_close 1e-6 "noise = eval"
    (Pwl.eval c.Electrical.idd time)
    (Noise_lut.noise t ~load ~input_slew ~edge:Electrical.Rising
       ~rail:Cell.Vdd_rail ~time)

let test_peak_monotone_in_load () =
  let t = lut () in
  let p load =
    Noise_lut.peak t ~load ~input_slew:20.0 ~edge:Electrical.Rising
      ~rail:Cell.Vdd_rail
  in
  Alcotest.(check bool) "monotone trend" true (p 5.0 <= p 35.0)

let test_rails_follow_polarity () =
  let t = lut () in
  let buf_vdd =
    Noise_lut.peak t ~load:10.0 ~input_slew:20.0 ~edge:Electrical.Rising
      ~rail:Cell.Vdd_rail
  in
  let buf_gnd =
    Noise_lut.peak t ~load:10.0 ~input_slew:20.0 ~edge:Electrical.Rising
      ~rail:Cell.Gnd_rail
  in
  Alcotest.(check bool) "buffer VDD-heavy on rising" true (buf_vdd > buf_gnd);
  let inv_lut = Noise_lut.build (Library.inv 8) ~vdd:1.1 () in
  let inv_vdd =
    Noise_lut.peak inv_lut ~load:10.0 ~input_slew:20.0 ~edge:Electrical.Rising
      ~rail:Cell.Vdd_rail
  in
  let inv_gnd =
    Noise_lut.peak inv_lut ~load:10.0 ~input_slew:20.0 ~edge:Electrical.Rising
      ~rail:Cell.Gnd_rail
  in
  Alcotest.(check bool) "inverter GND-heavy on rising" true (inv_gnd > inv_vdd)

let test_accessors () =
  let t = lut () in
  Alcotest.(check bool) "cell" true (Cell.equal (Noise_lut.cell t) (Library.buf 8));
  check_close 1e-12 "vdd" 1.1 (Noise_lut.vdd t)

let prop_interp_between_corner_values =
  (* Bilinear interpolation is bounded by the surrounding corner values. *)
  QCheck.Test.make ~name:"interpolation within corner bounds" ~count:100
    QCheck.(pair (float_range 1.0 40.0) (float_range 8.0 60.0))
    (fun (load, input_slew) ->
      let t = lut () in
      let loads = Noise_lut.loads t and slews = Noise_lut.slews t in
      let d = Noise_lut.delay t ~load ~input_slew ~edge:Electrical.Rising in
      (* Corner delays over the whole grid bound any interpolated value. *)
      let all =
        Array.to_list loads
        |> List.concat_map (fun l ->
               Array.to_list slews
               |> List.map (fun sl ->
                      Noise_lut.delay t ~load:l ~input_slew:sl
                        ~edge:Electrical.Rising))
      in
      let lo = List.fold_left Float.min infinity all in
      let hi = List.fold_left Float.max neg_infinity all in
      d >= lo -. 1e-9 && d <= hi +. 1e-9)

let () =
  Alcotest.run "repro_noise_lut"
    [
      ( "lut",
        [
          Alcotest.test_case "build validation" `Quick test_build_validation;
          Alcotest.test_case "exact on grid" `Quick test_exact_on_grid_points;
          Alcotest.test_case "interpolation accuracy" `Quick
            test_interpolation_accuracy;
          Alcotest.test_case "clamping" `Quick test_clamping_outside_grid;
          Alcotest.test_case "noise matches waveform" `Quick
            test_noise_matches_waveform_on_grid;
          Alcotest.test_case "peak monotone" `Quick test_peak_monotone_in_load;
          Alcotest.test_case "rails follow polarity" `Quick
            test_rails_follow_polarity;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_interp_between_corner_values ] );
    ]
