module Zones = Repro_core.Zones
module Slots = Repro_core.Slots
module Noise_table = Repro_core.Noise_table
module Intervals = Repro_core.Intervals
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Library = Repro_cell.Library
module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Pwl = Repro_waveform.Pwl
module Rng = Repro_util.Rng

let tree () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed:77)
      (Repro_cts.Placement.square_die 160.0) ~count:20 ()
  in
  Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:78) sinks ~internals:6

(* ------------------------------------------------------------------ *)
(* Zones                                                               *)

let test_partition_covers_leaves () =
  let t = tree () in
  let z = Zones.partition t ~side:50.0 in
  let covered =
    Array.fold_left
      (fun acc zone -> acc + Array.length zone.Zones.leaf_ids)
      0 (Zones.zones z)
  in
  Alcotest.(check int) "all leaves" (Tree.num_leaves t) covered

let test_partition_no_empty_zones () =
  let t = tree () in
  let z = Zones.partition t ~side:50.0 in
  Array.iter
    (fun zone ->
      Alcotest.(check bool) "has leaves" true (Array.length zone.Zones.leaf_ids > 0))
    (Zones.zones z)

let test_partition_geometry () =
  let t = tree () in
  let side = 50.0 in
  let z = Zones.partition t ~side in
  Array.iter
    (fun zone ->
      Array.iter
        (fun leaf ->
          let nd = Tree.node t leaf in
          Alcotest.(check int) "ix" zone.Zones.ix
            (int_of_float (nd.Tree.x /. side));
          Alcotest.(check int) "iy" zone.Zones.iy
            (int_of_float (nd.Tree.y /. side)))
        zone.Zones.leaf_ids)
    (Zones.zones z)

let test_zone_of_leaf () =
  let t = tree () in
  let z = Zones.partition t ~side:50.0 in
  Array.iter
    (fun nd ->
      match Zones.zone_of_leaf z nd.Tree.id with
      | Some zone ->
        Alcotest.(check bool) "member" true
          (Array.exists (fun id -> id = nd.Tree.id) zone.Zones.leaf_ids)
      | None -> Alcotest.fail "leaf without zone")
    (Tree.leaves t)

let test_zone_of_internal_is_none () =
  let t = tree () in
  let z = Zones.partition t ~side:50.0 in
  (* Internal ids are not in the leaf lookup (unless they share an id,
     impossible). *)
  Array.iter
    (fun nd ->
      Alcotest.(check bool) "not indexed as leaf" true
        (Zones.zone_of_leaf z nd.Tree.id = None
        || Array.exists
             (fun l -> l.Tree.id = nd.Tree.id)
             (Tree.leaves t)))
    (Tree.internals t)

let test_partition_side_validation () =
  let t = tree () in
  Alcotest.check_raises "side" (Invalid_argument "Zones.partition: side <= 0")
    (fun () -> ignore (Zones.partition t ~side:0.0))

let test_mean_leaves () =
  let t = tree () in
  let z = Zones.partition t ~side:50.0 in
  let mean = Zones.mean_leaves_per_zone z in
  Alcotest.(check bool) "positive" true (mean >= 1.0);
  Alcotest.(check bool) "bounded" true
    (mean <= float_of_int (Tree.num_leaves t))

let test_one_big_zone () =
  let t = tree () in
  let z = Zones.partition t ~side:10000.0 in
  Alcotest.(check int) "single zone" 1 (Zones.num_zones z)

(* ------------------------------------------------------------------ *)
(* Slots                                                               *)

let currents_of_tree () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let env = Timing.nominal () in
  let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
  Repro_core.Waveforms.total_rail_currents t asg env timing ()

let test_slots_count_split () =
  let c = currents_of_tree () in
  let slots = Slots.of_currents c ~count:8 () in
  Alcotest.(check int) "8 slots" 8 (Array.length slots);
  let vdd =
    Array.fold_left
      (fun acc s -> if s.Slots.rail = Cell.Vdd_rail then acc + 1 else acc)
      0 slots
  in
  Alcotest.(check int) "half per rail" 4 vdd

let test_slots_validation () =
  let c = currents_of_tree () in
  Alcotest.check_raises "count" (Invalid_argument "Slots.of_currents: count < 2")
    (fun () -> ignore (Slots.of_currents c ~count:1 ()))

let test_slots_sample_matches_eval () =
  let c = currents_of_tree () in
  let slots = Slots.of_currents c ~count:6 () in
  let samples = Slots.sample slots c in
  Array.iteri
    (fun i s ->
      let expected =
        match s.Slots.rail with
        | Cell.Vdd_rail -> Pwl.eval c.Electrical.idd s.Slots.time
        | Cell.Gnd_rail -> Pwl.eval c.Electrical.iss s.Slots.time
      in
      Alcotest.(check (float 1e-9)) "sample" expected samples.(i))
    slots

let test_slots_capture_peak () =
  (* With enough slots the sampled maximum approaches the true peak. *)
  let c = currents_of_tree () in
  let slots = Slots.of_currents c ~count:158 () in
  let samples = Slots.sample slots c in
  let sampled_max = Array.fold_left Float.max 0.0 samples in
  let true_peak = Float.max (Pwl.peak c.Electrical.idd) (Pwl.peak c.Electrical.iss) in
  Alcotest.(check bool) "captures >= 90%" true (sampled_max >= 0.9 *. true_peak)

let test_more_slots_better () =
  let c = currents_of_tree () in
  let sampled n =
    let slots = Slots.of_currents c ~count:n () in
    Array.fold_left Float.max 0.0 (Slots.sample slots c)
  in
  Alcotest.(check bool) "monotone trend" true (sampled 158 >= sampled 4 -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Noise table                                                         *)

let table_setup () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let env = Timing.nominal () in
  let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
  let falling = Timing.analyze t asg env ~edge:Electrical.Falling in
  let cells = [ Library.buf 8; Library.buf 16; Library.inv 8; Library.inv 16 ] in
  let sinks = Intervals.collect t asg env timing ~cells in
  let zones = Zones.partition t ~side:50.0 in
  let zone = (Zones.zones zones).(0) in
  (t, asg, env, (timing, falling), sinks, zone)

let test_table_shape () =
  let t, asg, env, (timing, falling), sinks, zone = table_setup () in
  let table =
    Noise_table.build t asg env ~rising:timing ~falling ~sinks ~zone
      ~num_slots:16 ()
  in
  let nz = Array.length zone.Zones.leaf_ids in
  Alcotest.(check int) "zone sinks" nz (Array.length table.Noise_table.sinks);
  Alcotest.(check int) "slots" 16 (Array.length table.Noise_table.slots);
  Array.iter
    (fun per_sink ->
      Array.iter
        (fun v ->
          Alcotest.(check int) "vector dims" 16 (Array.length v);
          Array.iter
            (fun x -> Alcotest.(check bool) "non-negative" true (x >= 0.0))
            v)
        per_sink)
    table.Noise_table.noise

let test_table_objective_additive () =
  let t, asg, env, (timing, falling), sinks, zone = table_setup () in
  let table =
    Noise_table.build t asg env ~rising:timing ~falling ~sinks ~zone
      ~num_slots:16 ()
  in
  let n = Array.length table.Noise_table.sinks in
  let choices = Array.make n 0 in
  let obj = Noise_table.zone_objective table ~choices in
  (* Manual recomputation. *)
  let acc = Array.copy table.Noise_table.nonleaf in
  Array.iteri
    (fun zi ci ->
      Array.iteri (fun si x -> acc.(si) <- acc.(si) +. x) table.Noise_table.noise.(zi).(ci))
    choices;
  let manual = Array.fold_left Float.max 0.0 acc in
  Alcotest.(check (float 1e-9)) "objective" manual obj

let test_table_objective_arity () =
  let t, asg, env, (timing, falling), sinks, zone = table_setup () in
  let table =
    Noise_table.build t asg env ~rising:timing ~falling ~sinks ~zone
      ~num_slots:8 ()
  in
  Alcotest.check_raises "arity"
    (Invalid_argument "Noise_table.zone_objective: arity mismatch") (fun () ->
      ignore (Noise_table.zone_objective table ~choices:[| 0 |]))

let test_table_polarity_visible () =
  (* Over one edge a buffer loads VDD and the inverter GND; over the
     whole period both rails carry one main pulse each, so compare at
     the rising-edge window only (first half of the period). *)
  let t, asg, env, (timing, falling), sinks, zone = table_setup () in
  let table =
    Noise_table.build t asg env ~rising:timing ~falling ~sinks ~zone
      ~num_slots:16 ()
  in
  let slots = table.Noise_table.slots in
  let sum_rail v rail =
    let acc = ref 0.0 in
    Array.iteri
      (fun i s ->
        if s.Slots.rail = rail && s.Slots.time < 1000.0 then
          acc := !acc +. v.(i))
      slots;
    !acc
  in
  (* Candidate order matches the cells list: 0 = BUF_X8, 2 = INV_X8. *)
  let v_buf = table.Noise_table.noise.(0).(0) in
  let v_inv = table.Noise_table.noise.(0).(2) in
  Alcotest.(check bool) "buffer loads VDD" true
    (sum_rail v_buf Cell.Vdd_rail >= sum_rail v_buf Cell.Gnd_rail);
  Alcotest.(check bool) "inverter loads GND" true
    (sum_rail v_inv Cell.Gnd_rail >= sum_rail v_inv Cell.Vdd_rail)

let test_table_cand_peak_positive () =
  let t, asg, env, (timing, falling), sinks, zone = table_setup () in
  let table =
    Noise_table.build t asg env ~rising:timing ~falling ~sinks ~zone
      ~num_slots:8 ()
  in
  Array.iter
    (Array.iter (fun p -> Alcotest.(check bool) "positive" true (p > 0.0)))
    table.Noise_table.cand_peak

let () =
  Alcotest.run "repro_core_zones"
    [
      ( "zones",
        [
          Alcotest.test_case "covers leaves" `Quick test_partition_covers_leaves;
          Alcotest.test_case "no empty zones" `Quick test_partition_no_empty_zones;
          Alcotest.test_case "geometry" `Quick test_partition_geometry;
          Alcotest.test_case "zone of leaf" `Quick test_zone_of_leaf;
          Alcotest.test_case "internal not leaf-indexed" `Quick
            test_zone_of_internal_is_none;
          Alcotest.test_case "side validation" `Quick test_partition_side_validation;
          Alcotest.test_case "mean leaves" `Quick test_mean_leaves;
          Alcotest.test_case "one big zone" `Quick test_one_big_zone;
        ] );
      ( "slots",
        [
          Alcotest.test_case "count split" `Quick test_slots_count_split;
          Alcotest.test_case "validation" `Quick test_slots_validation;
          Alcotest.test_case "sample matches eval" `Quick
            test_slots_sample_matches_eval;
          Alcotest.test_case "capture peak" `Quick test_slots_capture_peak;
          Alcotest.test_case "more slots better" `Quick test_more_slots_better;
        ] );
      ( "noise_table",
        [
          Alcotest.test_case "shape" `Quick test_table_shape;
          Alcotest.test_case "objective additive" `Quick test_table_objective_additive;
          Alcotest.test_case "objective arity" `Quick test_table_objective_arity;
          Alcotest.test_case "polarity visible" `Quick test_table_polarity_visible;
          Alcotest.test_case "candidate peaks" `Quick test_table_cand_peak_positive;
        ] );
    ]
