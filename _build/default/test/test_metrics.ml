module Pwl = Repro_waveform.Pwl
module Metrics = Repro_waveform.Metrics

let check_close eps = Alcotest.(check (float eps))

let tri = Pwl.triangle ~start:0.0 ~peak_time:2.0 ~finish:6.0 ~height:12.0

let test_energy_matches_area () =
  check_close 1e-9 "energy = area" (Pwl.area tri) (Metrics.energy tri)

let test_rms_constant_segment () =
  (* A flat segment of value v has rms v. *)
  let w = Pwl.create [ (0.0, 5.0); (10.0, 5.0) ] in
  check_close 1e-9 "flat rms" 5.0 (Metrics.rms w ())

let test_rms_triangle_closed_form () =
  (* Symmetric triangle of height h over [0, w]: rms = h / sqrt 3. *)
  let h = 9.0 in
  let w = Pwl.triangle ~start:0.0 ~peak_time:1.0 ~finish:2.0 ~height:h in
  check_close 1e-6 "triangle rms" (h /. sqrt 3.0) (Metrics.rms w ())

let test_rms_zero () =
  check_close 1e-12 "zero" 0.0 (Metrics.rms Pwl.zero ())

let test_rms_window () =
  (* Over a window with only zeros the rms is 0. *)
  let w = Pwl.triangle ~start:10.0 ~peak_time:11.0 ~finish:12.0 ~height:4.0 in
  check_close 1e-9 "empty window" 0.0 (Metrics.rms w ~window:(0.0, 5.0) ());
  (* A window wider than the support dilutes the rms. *)
  let tight = Metrics.rms w () in
  let wide = Metrics.rms w ~window:(0.0, 20.0) () in
  Alcotest.(check bool) "diluted" true (wide < tight)

let test_mean_value () =
  let w = Pwl.create [ (0.0, 2.0); (4.0, 2.0) ] in
  check_close 1e-9 "flat mean" 2.0 (Metrics.mean_value w ());
  (* Triangle mean over its support is area / width = h/2. *)
  check_close 1e-9 "triangle mean" 6.0 (Metrics.mean_value tri ())

let test_crest_factor () =
  (* Flat: crest = 1.  Triangle: sqrt 3. *)
  let flat = Pwl.create [ (0.0, 3.0); (5.0, 3.0) ] in
  check_close 1e-6 "flat" 1.0 (Metrics.crest_factor flat);
  let t = Pwl.triangle ~start:0.0 ~peak_time:1.0 ~finish:2.0 ~height:7.0 in
  check_close 1e-6 "triangle" (sqrt 3.0) (Metrics.crest_factor t);
  check_close 1e-12 "zero" 0.0 (Metrics.crest_factor Pwl.zero)

let test_overlap_disjoint () =
  let a = Pwl.triangle ~start:0.0 ~peak_time:1.0 ~finish:2.0 ~height:5.0 in
  let b = Pwl.triangle ~start:10.0 ~peak_time:11.0 ~finish:12.0 ~height:5.0 in
  check_close 1e-12 "disjoint" 0.0 (Metrics.overlap a b)

let test_overlap_self () =
  (* overlap w w = integral of w^2 = rms^2 * width. *)
  let r = Metrics.rms tri () in
  check_close 1e-6 "self overlap" (r *. r *. 6.0) (Metrics.overlap tri tri)

let test_overlap_symmetric () =
  let a = Pwl.triangle ~start:0.0 ~peak_time:2.0 ~finish:5.0 ~height:3.0 in
  let b = Pwl.triangle ~start:1.0 ~peak_time:3.0 ~finish:4.0 ~height:7.0 in
  check_close 1e-9 "symmetric" (Metrics.overlap a b) (Metrics.overlap b a)

let test_polarity_assignment_lowers_crest () =
  (* The system-level motivation: splitting N aligned pulses across two
     rails halves each rail's peak while keeping per-rail charge
     proportional — the crest factor of the heavier rail drops. *)
  let pulse k = Pwl.shift (Pwl.triangle ~start:0.0 ~peak_time:5.0 ~finish:10.0 ~height:100.0) (0.2 *. float_of_int k) in
  let all = Pwl.sum (List.init 10 pulse) in
  let half = Pwl.sum (List.init 5 pulse) in
  Alcotest.(check bool) "peak halves" true
    (Pwl.peak half < 0.6 *. Pwl.peak all)

let gen_tri =
  QCheck.make
    ~print:(fun (s, p, f, h) -> Printf.sprintf "(%g,%g,%g,%g)" s p f h)
    QCheck.Gen.(
      let* s = float_range 0.0 20.0 in
      let* dp = float_range 0.1 5.0 in
      let* df = float_range 0.1 5.0 in
      let* h = float_range 0.1 50.0 in
      return (s, s +. dp, s +. dp +. df, h))

let mk (s, p, f, h) = Pwl.triangle ~start:s ~peak_time:p ~finish:f ~height:h

let prop_rms_bounded_by_peak =
  QCheck.Test.make ~name:"rms <= peak" ~count:200 gen_tri (fun g ->
      let w = mk g in
      Metrics.rms w () <= Pwl.peak w +. 1e-9)

let prop_overlap_cauchy_schwarz =
  QCheck.Test.make ~name:"overlap Cauchy-Schwarz" ~count:200
    (QCheck.pair gen_tri gen_tri) (fun (a, b) ->
      let wa = mk a and wb = mk b in
      let lhs = Metrics.overlap wa wb in
      let rhs = sqrt (Metrics.overlap wa wa *. Metrics.overlap wb wb) in
      lhs <= rhs +. 1e-6)

let prop_overlap_nonneg =
  QCheck.Test.make ~name:"overlap non-negative" ~count:200
    (QCheck.pair gen_tri gen_tri) (fun (a, b) ->
      Metrics.overlap (mk a) (mk b) >= -1e-9)

let () =
  Alcotest.run "repro_metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "energy" `Quick test_energy_matches_area;
          Alcotest.test_case "rms flat" `Quick test_rms_constant_segment;
          Alcotest.test_case "rms triangle" `Quick test_rms_triangle_closed_form;
          Alcotest.test_case "rms zero" `Quick test_rms_zero;
          Alcotest.test_case "rms window" `Quick test_rms_window;
          Alcotest.test_case "mean value" `Quick test_mean_value;
          Alcotest.test_case "crest factor" `Quick test_crest_factor;
          Alcotest.test_case "overlap disjoint" `Quick test_overlap_disjoint;
          Alcotest.test_case "overlap self" `Quick test_overlap_self;
          Alcotest.test_case "overlap symmetric" `Quick test_overlap_symmetric;
          Alcotest.test_case "splitting lowers peak" `Quick
            test_polarity_assignment_lowers_crest;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rms_bounded_by_peak; prop_overlap_cauchy_schwarz;
            prop_overlap_nonneg ] );
    ]
