module Dynamic_polarity = Repro_core.Dynamic_polarity
module Clk_wavemin_m = Repro_core.Clk_wavemin_m
module Context = Repro_core.Context
module Golden = Repro_core.Golden
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Library = Repro_cell.Library
module Electrical = Repro_cell.Electrical
module Islands = Repro_cts.Islands
module Rng = Repro_util.Rng

let die_side = 150.0

let tree () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed:4545)
      (Repro_cts.Placement.square_die die_side) ~count:12 ()
  in
  Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:4546) sinks ~internals:4

let envs () =
  let islands = Islands.grid ~die_side ~count:2 in
  let m0 = Islands.uniform_mode islands ~vdd:1.1 in
  let m1 = Array.mapi (fun i _ -> if i = 0 then 1.1 else 0.9) m0 in
  [| { (Timing.nominal ~mode:0 ()) with
       Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands m0 nd) };
     { (Timing.nominal ~mode:1 ()) with
       Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands m1 nd) } |]

let params =
  { Context.default_params with Context.num_slots = 16; max_interval_classes = 4 }

let test_twin_properties () =
  let twin = Dynamic_polarity.inverting_twin (Library.buf 8) in
  Alcotest.(check bool) "negative" true (Cell.polarity twin = Cell.Negative);
  Alcotest.(check string) "name" "~BUF_X8" twin.Cell.name;
  (* Delay-matched by construction. *)
  let d c = Electrical.delay c ~vdd:1.1 ~load:10.0 ~edge:Electrical.Rising () in
  Alcotest.(check (float 1e-9)) "same delay" (d (Library.buf 8)) (d twin);
  Alcotest.(check (float 1e-9)) "area overhead"
    ((Library.buf 8).Cell.area +. Dynamic_polarity.xor_area_overhead)
    twin.Cell.area

let test_twin_rejects_non_buffers () =
  Alcotest.check_raises "inverter"
    (Invalid_argument "Dynamic_polarity.inverting_twin: driver must be a plain buffer")
    (fun () -> ignore (Dynamic_polarity.inverting_twin (Library.inv 8)));
  Alcotest.check_raises "adb"
    (Invalid_argument "Dynamic_polarity.inverting_twin: driver must be a plain buffer")
    (fun () -> ignore (Dynamic_polarity.inverting_twin (Library.adb 8)))

let test_optimize_shapes () =
  let t = tree () in
  let envs = envs () in
  let o = Dynamic_polarity.optimize ~params t ~envs in
  Alcotest.(check int) "modes" 2 (Array.length o.Dynamic_polarity.polarity_bits);
  Array.iter
    (fun bits ->
      Alcotest.(check int) "bits per leaf" (Tree.num_leaves t) (Array.length bits))
    o.Dynamic_polarity.polarity_bits;
  Alcotest.(check (float 1e-9)) "xor area"
    (Dynamic_polarity.xor_area_overhead *. float_of_int (Tree.num_leaves t))
    o.Dynamic_polarity.area_overhead;
  Alcotest.(check bool) "positive estimate" true
    (o.Dynamic_polarity.predicted_peak_ua > 0.0)

let test_polarity_bits_match_assignments () =
  let t = tree () in
  let envs = envs () in
  let o = Dynamic_polarity.optimize ~params t ~envs in
  Array.iteri
    (fun m asg ->
      Array.iteri
        (fun i nd ->
          let inverted =
            Cell.polarity (Repro_clocktree.Assignment.cell asg nd.Tree.id)
            = Cell.Negative
          in
          Alcotest.(check bool) "bit consistent" inverted
            o.Dynamic_polarity.polarity_bits.(m).(i))
        (Tree.leaves t))
    o.Dynamic_polarity.assignments

let test_mixed_polarities_chosen () =
  let t = tree () in
  let envs = envs () in
  let o = Dynamic_polarity.optimize ~params t ~envs in
  Array.iter
    (fun bits ->
      let inv = Array.fold_left (fun a b -> if b then a + 1 else a) 0 bits in
      Alcotest.(check bool) "some of each" true
        (inv > 0 && inv < Array.length bits))
    o.Dynamic_polarity.polarity_bits

let test_skew_neutrality () =
  (* The twin is delay-matched, so per-mode skew equals the all-buffer
     skew in that mode. *)
  let t = tree () in
  let envs = envs () in
  let base = Repro_clocktree.Assignment.default t ~num_modes:2 in
  let base_skews = Repro_core.Adb_embedding.skews t base envs in
  let o = Dynamic_polarity.optimize ~params t ~envs in
  Array.iteri
    (fun m asg ->
      let env = { envs.(m) with Timing.mode = 0 } in
      let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
      Alcotest.(check (float 0.5)) "same skew" base_skews.(m)
        (Timing.skew t timing))
    o.Dynamic_polarity.assignments

let test_dynamic_beats_static_estimate () =
  (* Reconfigurability can only help: the dynamic optimum's estimate is
     no worse than static ClkWaveMin-M's (both fine-grained). *)
  let t = tree () in
  let envs = envs () in
  let dynamic, static = Dynamic_polarity.static_gap ~params t ~envs in
  Alcotest.(check bool) "dynamic <= static * 1.05" true (dynamic <= static *. 1.05)

let test_golden_improvement_over_all_buffers () =
  let t = tree () in
  let envs = envs () in
  let o = Dynamic_polarity.optimize ~params t ~envs in
  let base = Repro_clocktree.Assignment.default t ~num_modes:1 in
  Array.iteri
    (fun m asg ->
      let env = { envs.(m) with Timing.mode = 0 } in
      let before = Golden.evaluate t base env in
      let after = Golden.evaluate t asg env in
      Alcotest.(check bool)
        (Printf.sprintf "mode %d peak reduced" m)
        true
        (after.Golden.peak_current_ma < before.Golden.peak_current_ma))
    o.Dynamic_polarity.assignments

let test_rejects_empty_modes () =
  let t = tree () in
  Alcotest.check_raises "no modes"
    (Invalid_argument "Dynamic_polarity.optimize: no modes") (fun () ->
      ignore (Dynamic_polarity.optimize ~params t ~envs:[||]))

let () =
  Alcotest.run "repro_dynamic_polarity"
    [
      ( "dynamic",
        [
          Alcotest.test_case "twin properties" `Quick test_twin_properties;
          Alcotest.test_case "twin rejects non-buffers" `Quick
            test_twin_rejects_non_buffers;
          Alcotest.test_case "optimize shapes" `Quick test_optimize_shapes;
          Alcotest.test_case "bits match assignments" `Quick
            test_polarity_bits_match_assignments;
          Alcotest.test_case "mixed polarities" `Quick test_mixed_polarities_chosen;
          Alcotest.test_case "skew neutrality" `Quick test_skew_neutrality;
          Alcotest.test_case "dynamic vs static estimate" `Quick
            test_dynamic_beats_static_estimate;
          Alcotest.test_case "golden improvement" `Quick
            test_golden_improvement_over_all_buffers;
          Alcotest.test_case "rejects empty modes" `Quick test_rejects_empty_modes;
        ] );
    ]
