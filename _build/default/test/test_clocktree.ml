module Tree = Repro_clocktree.Tree
module Wire = Repro_clocktree.Wire
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Library = Repro_cell.Library
module Electrical = Repro_cell.Electrical

let check_close eps = Alcotest.(check (float eps))

(* A small hand-built tree: root -> two internals -> four leaves. *)
let sample_tree () =
  let node id parent children kind x y wire_len sink_cap cell =
    { Tree.id; parent; children; kind; x; y;
      wire = Wire.of_length wire_len; sink_cap; default_cell = cell }
  in
  Tree.create
    [|
      node 0 None [ 1; 2 ] Tree.Internal 50. 50. 0. 0. (Library.buf 16);
      node 1 (Some 0) [ 3; 4 ] Tree.Internal 25. 40. 30. 0. (Library.buf 8);
      node 2 (Some 0) [ 5; 6 ] Tree.Internal 75. 60. 40. 0. (Library.buf 8);
      node 3 (Some 1) [] Tree.Leaf 15. 30. 20. 5. (Library.buf 8);
      node 4 (Some 1) [] Tree.Leaf 30. 55. 25. 6. (Library.buf 8);
      node 5 (Some 2) [] Tree.Leaf 70. 80. 22. 4. (Library.buf 8);
      node 6 (Some 2) [] Tree.Leaf 95. 60. 28. 7. (Library.buf 8);
    |]

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let test_wire_of_length () =
  let w = Wire.of_length 100.0 in
  check_close 1e-12 "res" (100.0 *. Wire.res_per_um) w.Wire.res;
  check_close 1e-12 "cap" (100.0 *. Wire.cap_per_um) w.Wire.cap

let test_wire_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Wire.of_length: negative length") (fun () ->
      ignore (Wire.of_length (-1.0)))

let test_wire_manhattan () =
  let w = Wire.manhattan ~x0:0.0 ~y0:0.0 ~x1:3.0 ~y1:4.0 in
  check_close 1e-12 "L1 length" 7.0 w.Wire.length

let test_wire_elmore () =
  let w = Wire.of_length 100.0 in
  let expected = w.Wire.res *. ((w.Wire.cap /. 2.0) +. 5.0) in
  check_close 1e-12 "elmore" expected (Wire.elmore_delay w ~load:5.0)

let test_wire_scaled () =
  let w = Wire.of_length 10.0 in
  let s = Wire.scaled w ~r_scale:2.0 ~c_scale:0.5 in
  check_close 1e-12 "r" (2.0 *. w.Wire.res) s.Wire.res;
  check_close 1e-12 "c" (0.5 *. w.Wire.cap) s.Wire.cap

(* ------------------------------------------------------------------ *)
(* Tree construction & invariants                                      *)

let test_tree_basic () =
  let t = sample_tree () in
  Alcotest.(check int) "size" 7 (Tree.size t);
  Alcotest.(check int) "leaves" 4 (Tree.num_leaves t);
  Alcotest.(check int) "internals" 3 (Array.length (Tree.internals t));
  Alcotest.(check int) "root id" 0 (Tree.root t).Tree.id

let test_tree_topological () =
  let t = sample_tree () in
  let order = Tree.topological_order t in
  let pos = Array.make 7 0 in
  Array.iteri (fun i id -> pos.(id) <- i) order;
  Array.iter
    (fun nd ->
      match nd.Tree.parent with
      | None -> ()
      | Some p ->
        Alcotest.(check bool) "parent first" true (pos.(p) < pos.(nd.Tree.id)))
    (Tree.nodes t)

let test_tree_depth () =
  let t = sample_tree () in
  Alcotest.(check int) "root" 0 (Tree.depth t 0);
  Alcotest.(check int) "leaf" 2 (Tree.depth t 3)

let bad_node () =
  { Tree.id = 0; parent = None; children = []; kind = Tree.Internal;
    x = 0.; y = 0.; wire = Wire.zero; sink_cap = 0.;
    default_cell = Library.buf 1 }

let test_tree_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Tree.create: empty node array")
    (fun () -> ignore (Tree.create [||]))

let test_tree_rejects_internal_without_children () =
  Alcotest.check_raises "no children"
    (Invalid_argument "Tree.create: internal node without children") (fun () ->
      ignore (Tree.create [| bad_node () |]))

let test_tree_rejects_leaf_with_zero_cap () =
  let leaf =
    { (bad_node ()) with Tree.kind = Tree.Leaf; sink_cap = 0.0 }
  in
  Alcotest.check_raises "zero cap"
    (Invalid_argument "Tree.create: leaf needs positive sink capacitance")
    (fun () -> ignore (Tree.create [| leaf |]))

let test_tree_rejects_two_roots () =
  let l cap id =
    { Tree.id; parent = None; children = []; kind = Tree.Leaf; x = 0.; y = 0.;
      wire = Wire.zero; sink_cap = cap; default_cell = Library.buf 1 }
  in
  Alcotest.check_raises "two roots"
    (Invalid_argument "Tree.create: multiple roots") (fun () ->
      ignore (Tree.create [| l 1.0 0; l 1.0 1 |]))

let test_tree_rejects_inconsistent_parent () =
  let n0 =
    { (bad_node ()) with Tree.children = [ 1 ] }
  in
  let n1 =
    { Tree.id = 1; parent = None; children = []; kind = Tree.Leaf; x = 0.;
      y = 0.; wire = Wire.zero; sink_cap = 1.0; default_cell = Library.buf 1 }
  in
  Alcotest.check_raises "child without parent link"
    (Invalid_argument "Tree.create: child does not point to parent") (fun () ->
      ignore (Tree.create [| n0; n1 |]))

(* ------------------------------------------------------------------ *)
(* Assignment                                                          *)

let test_assignment_default () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:2 in
  Alcotest.(check int) "modes" 2 (Assignment.num_modes a);
  Alcotest.(check bool) "default cell" true
    (Cell.equal (Assignment.cell a 3) (Library.buf 8));
  check_close 1e-12 "extra 0" 0.0 (Assignment.extra_delay a ~mode:1 3)

let test_assignment_set_cell () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let a' = Assignment.set_cell a 3 (Library.inv 16) in
  Alcotest.(check bool) "updated" true
    (Cell.equal (Assignment.cell a' 3) (Library.inv 16));
  Alcotest.(check bool) "original untouched" true
    (Cell.equal (Assignment.cell a 3) (Library.buf 8))

let test_assignment_extra_delay () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:2 in
  let a = Assignment.set_cell a 3 (Library.adb 8) in
  let a = Assignment.set_extra_delay a ~mode:1 3 4.0 in
  check_close 1e-12 "mode1" 4.0 (Assignment.extra_delay a ~mode:1 3);
  check_close 1e-12 "mode0 untouched" 0.0 (Assignment.extra_delay a ~mode:0 3)

let test_assignment_extra_delay_validation () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  Alcotest.check_raises "not adjustable"
    (Invalid_argument "Assignment.set_extra_delay: cell is not adjustable")
    (fun () -> ignore (Assignment.set_extra_delay a ~mode:0 3 2.0));
  let a = Assignment.set_cell a 3 (Library.adb 8) in
  Alcotest.check_raises "bad step"
    (Invalid_argument "Assignment.set_extra_delay: value not in delay steps")
    (fun () -> ignore (Assignment.set_extra_delay a ~mode:0 3 3.0))

let test_assignment_set_cell_resets_settings () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let a = Assignment.set_cell a 3 (Library.adb 8) in
  let a = Assignment.set_extra_delay a ~mode:0 3 6.0 in
  let a = Assignment.set_cell a 3 (Library.adb 16) in
  check_close 1e-12 "reset" 0.0 (Assignment.extra_delay a ~mode:0 3)

let test_assignment_count_leaves () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let a = Assignment.set_cell a 3 (Library.inv 8) in
  let a = Assignment.set_cell a 5 (Library.inv 16) in
  Alcotest.(check int) "inverters" 2
    (Assignment.count_leaves a t ~pred:(fun c -> Cell.polarity c = Cell.Negative))

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)

let test_timing_arrival_order () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let res = Timing.analyze t a (Timing.nominal ()) ~edge:Electrical.Rising in
  (* Children arrive strictly after parents. *)
  Array.iter
    (fun nd ->
      match nd.Tree.parent with
      | None -> ()
      | Some p ->
        Alcotest.(check bool) "monotone" true
          (res.Timing.input_arrival.(nd.Tree.id) > res.Timing.input_arrival.(p)))
    (Tree.nodes t)

let test_timing_sink_arrival_only_leaves () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let res = Timing.analyze t a (Timing.nominal ()) ~edge:Electrical.Rising in
  Alcotest.(check bool) "internal nan" true
    (Float.is_nan res.Timing.sink_arrival.(0));
  Alcotest.(check bool) "leaf finite" true
    (Float.is_finite res.Timing.sink_arrival.(3))

let test_timing_skew_nonnegative () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let res = Timing.analyze t a (Timing.nominal ()) ~edge:Electrical.Rising in
  Alcotest.(check bool) "skew >= 0" true (Timing.skew t res >= 0.0)

let test_timing_lower_vdd_slower () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let fast = Timing.analyze t a (Timing.nominal ~vdd:1.1 ()) ~edge:Electrical.Rising in
  let slow = Timing.analyze t a (Timing.nominal ~vdd:0.9 ()) ~edge:Electrical.Rising in
  Alcotest.(check bool) "slower at 0.9V" true
    (slow.Timing.sink_arrival.(3) > fast.Timing.sink_arrival.(3))

let test_timing_edge_flip_through_inverter () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  (* Make internal node 1 an inverter: its subtree sees flipped edges. *)
  let a = Assignment.set_cell a 1 (Library.inv 8) in
  let res = Timing.analyze t a (Timing.nominal ()) ~edge:Electrical.Rising in
  Alcotest.(check bool) "leaf 3 falling" true
    (res.Timing.input_edge.(3) = Electrical.Falling);
  Alcotest.(check bool) "leaf 5 rising" true
    (res.Timing.input_edge.(5) = Electrical.Rising)

let test_timing_extra_delay_applied () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let a = Assignment.set_cell a 3 (Library.adb 8) in
  let base = Timing.analyze t a (Timing.nominal ()) ~edge:Electrical.Rising in
  let a' = Assignment.set_extra_delay a ~mode:0 3 8.0 in
  let res = Timing.analyze t a' (Timing.nominal ()) ~edge:Electrical.Rising in
  check_close 1e-6 "8 ps later" 8.0
    (res.Timing.sink_arrival.(3) -. base.Timing.sink_arrival.(3))

let test_timing_mode_out_of_range () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  Alcotest.check_raises "mode" (Invalid_argument "Timing.analyze: mode out of range")
    (fun () ->
      ignore (Timing.analyze t a (Timing.nominal ~mode:1 ()) ~edge:Electrical.Rising))

let test_timing_leaf_delay_matches_assignment () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let env = Timing.nominal () in
  let res = Timing.analyze t a env ~edge:Electrical.Rising in
  let d = Timing.leaf_delay t a env res 3 (Library.buf 8) in
  check_close 1e-6 "consistent with analysis"
    (res.Timing.sink_arrival.(3) -. res.Timing.input_arrival.(3))
    d

let test_timing_derate_increases_delay () =
  let t = sample_tree () in
  let a = Assignment.default t ~num_modes:1 in
  let env = Timing.nominal () in
  let env' = { env with Timing.cell_derate = (fun _ -> 1.2) } in
  let r1 = Timing.analyze t a env ~edge:Electrical.Rising in
  let r2 = Timing.analyze t a env' ~edge:Electrical.Rising in
  Alcotest.(check bool) "slower" true
    (r2.Timing.sink_arrival.(3) > r1.Timing.sink_arrival.(3))

let () =
  Alcotest.run "repro_clocktree"
    [
      ( "wire",
        [
          Alcotest.test_case "of_length" `Quick test_wire_of_length;
          Alcotest.test_case "negative" `Quick test_wire_negative;
          Alcotest.test_case "manhattan" `Quick test_wire_manhattan;
          Alcotest.test_case "elmore" `Quick test_wire_elmore;
          Alcotest.test_case "scaled" `Quick test_wire_scaled;
        ] );
      ( "tree",
        [
          Alcotest.test_case "basic" `Quick test_tree_basic;
          Alcotest.test_case "topological" `Quick test_tree_topological;
          Alcotest.test_case "depth" `Quick test_tree_depth;
          Alcotest.test_case "rejects empty" `Quick test_tree_rejects_empty;
          Alcotest.test_case "rejects childless internal" `Quick
            test_tree_rejects_internal_without_children;
          Alcotest.test_case "rejects zero-cap leaf" `Quick
            test_tree_rejects_leaf_with_zero_cap;
          Alcotest.test_case "rejects two roots" `Quick test_tree_rejects_two_roots;
          Alcotest.test_case "rejects inconsistent parent" `Quick
            test_tree_rejects_inconsistent_parent;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "default" `Quick test_assignment_default;
          Alcotest.test_case "set cell" `Quick test_assignment_set_cell;
          Alcotest.test_case "extra delay" `Quick test_assignment_extra_delay;
          Alcotest.test_case "extra delay validation" `Quick
            test_assignment_extra_delay_validation;
          Alcotest.test_case "set cell resets settings" `Quick
            test_assignment_set_cell_resets_settings;
          Alcotest.test_case "count leaves" `Quick test_assignment_count_leaves;
        ] );
      ( "timing",
        [
          Alcotest.test_case "arrival order" `Quick test_timing_arrival_order;
          Alcotest.test_case "sink arrival leaves only" `Quick
            test_timing_sink_arrival_only_leaves;
          Alcotest.test_case "skew nonnegative" `Quick test_timing_skew_nonnegative;
          Alcotest.test_case "lower vdd slower" `Quick test_timing_lower_vdd_slower;
          Alcotest.test_case "edge flip through inverter" `Quick
            test_timing_edge_flip_through_inverter;
          Alcotest.test_case "extra delay applied" `Quick
            test_timing_extra_delay_applied;
          Alcotest.test_case "mode out of range" `Quick test_timing_mode_out_of_range;
          Alcotest.test_case "leaf delay consistent" `Quick
            test_timing_leaf_delay_matches_assignment;
          Alcotest.test_case "derate increases delay" `Quick
            test_timing_derate_increases_delay;
        ] );
    ]
