(* Cross-module edge cases and failure injection: minimal trees, extreme
   parameters, and boundary inputs that the main suites don't reach. *)

module Tree = Repro_clocktree.Tree
module Wire = Repro_clocktree.Wire
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Library = Repro_cell.Library
module Electrical = Repro_cell.Electrical
module Context = Repro_core.Context
module Flow = Repro_core.Flow
module Golden = Repro_core.Golden
module Rng = Repro_util.Rng

(* The smallest legal optimizable tree: one internal driver, two leaves. *)
let minimal_tree () =
  let node id parent children kind x y wire_len sink_cap cell =
    { Tree.id; parent; children; kind; x; y;
      wire = Wire.of_length wire_len; sink_cap; default_cell = cell }
  in
  Tree.create
    [|
      node 0 None [ 1; 2 ] Tree.Internal 10.0 10.0 0.0 0.0 (Library.buf 16);
      node 1 (Some 0) [] Tree.Leaf 5.0 5.0 8.0 12.0 (Library.buf 8);
      node 2 (Some 0) [] Tree.Leaf 15.0 15.0 8.0 14.0 (Library.buf 8);
    |]

let test_minimal_tree_full_flow () =
  let t = minimal_tree () in
  List.iter
    (fun algo ->
      let r = Flow.run_tree ~name:"minimal" t algo in
      Alcotest.(check bool)
        (Flow.algorithm_name algo ^ " works")
        true
        (r.Flow.metrics.Golden.peak_current_ma > 0.0))
    [ Flow.Initial; Flow.Peakmin; Flow.Wavemin; Flow.Wavemin_fast ]

let test_single_leaf_tree () =
  (* A root-only leaf is legal; timing and golden still work. *)
  let t =
    Tree.create
      [|
        {
          Tree.id = 0; parent = None; children = []; kind = Tree.Leaf;
          x = 1.0; y = 1.0; wire = Wire.zero; sink_cap = 10.0;
          default_cell = Library.buf 8;
        };
      |]
  in
  let asg = Assignment.default t ~num_modes:1 in
  let m = Golden.evaluate t asg (Timing.nominal ()) in
  Alcotest.(check bool) "positive peak" true (m.Golden.peak_current_ma > 0.0);
  Alcotest.(check (float 1e-9)) "zero skew" 0.0 m.Golden.skew_ps

let test_every_leaf_its_own_zone () =
  (* Tiny zones: every leaf alone; the solvers degenerate to per-leaf
     choices and must still respect the skew bound. *)
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed:99)
      (Repro_cts.Placement.square_die 400.0) ~count:10 ()
  in
  let t = Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:98) sinks ~internals:3 in
  let params =
    { Context.default_params with Context.zone_side = 1.0; num_slots = 8 }
  in
  let ctx = Context.create ~params t ~cells:(Flow.leaf_library ()) in
  Alcotest.(check int) "one leaf per zone" (Tree.num_leaves t)
    (Repro_core.Zones.num_zones ctx.Context.zones);
  let o = Repro_core.Clk_wavemin.optimize ctx in
  let timing =
    Timing.analyze t o.Context.assignment ctx.Context.env ~edge:Electrical.Rising
  in
  Alcotest.(check bool) "skew ok" true
    (Timing.skew t timing <= params.Context.kappa +. 1e-6)

let test_one_giant_zone () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed:97)
      (Repro_cts.Placement.square_die 100.0) ~count:8 ()
  in
  let t = Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:96) sinks ~internals:3 in
  let params =
    { Context.default_params with Context.zone_side = 10000.0; num_slots = 8 }
  in
  let ctx = Context.create ~params t ~cells:(Flow.leaf_library ()) in
  Alcotest.(check int) "single zone" 1 (Repro_core.Zones.num_zones ctx.Context.zones);
  let o = Repro_core.Clk_wavemin.optimize ctx in
  Alcotest.(check bool) "positive estimate" true (o.Context.predicted_peak_ua > 0.0)

let test_golden_worst_over_modes_empty () =
  let t = minimal_tree () in
  let asg = Assignment.default t ~num_modes:1 in
  Alcotest.check_raises "no modes"
    (Invalid_argument "Golden.worst_over_modes: no modes") (fun () ->
      ignore (Golden.worst_over_modes t asg [||]))

let test_liberty_empty_input () =
  match Repro_cell.Liberty.parse "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty library"
  | Error e -> Alcotest.failf "unexpected error: %a" Repro_cell.Liberty.pp_error e

let test_pwl_extreme_shift () =
  let module Pwl = Repro_waveform.Pwl in
  let w = Pwl.triangle ~start:0.0 ~peak_time:1.0 ~finish:2.0 ~height:5.0 in
  let s = Pwl.shift w 1e9 in
  Alcotest.(check (float 1e-6)) "peak preserved" 5.0 (Pwl.peak s);
  Alcotest.(check (float 1e-6)) "old position empty" 0.0 (Pwl.eval s 1.0)

let test_grid_minimal_2x2 () =
  let module Grid = Repro_powergrid.Grid in
  let g = Grid.create ~die_side:10.0 ~nx:2 ~ny:2 () in
  (* With pad_stride 8 on a 2x2 mesh, every node is a boundary pad. *)
  let v = Grid.solve g ~injection:[| 100.0; 100.0; 100.0; 100.0 |] in
  Array.iter (fun d -> Alcotest.(check (float 1e-9)) "all pads" 0.0 d) v

let test_montecarlo_single_instance () =
  let t = minimal_tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let config =
    { Repro_core.Montecarlo.default_config with
      Repro_core.Montecarlo.instances = 1;
      noise_instances = 1 }
  in
  let r = Repro_core.Montecarlo.run ~config t asg in
  Alcotest.(check bool) "yield is 0 or 1" true
    (r.Repro_core.Montecarlo.skew_yield = 0.0
    || r.Repro_core.Montecarlo.skew_yield = 1.0)

let test_adjustable_in_single_mode_context () =
  (* ADBs in the single-mode library: the expanded step candidates must
     be applied back into the assignment on selection. *)
  let t = minimal_tree () in
  let params = { Context.default_params with Context.num_slots = 8; kappa = 40.0 } in
  let ctx =
    Context.create ~params t ~cells:[ Library.buf 8; Library.adb 8 ]
  in
  let o = Repro_core.Clk_wavemin.optimize ctx in
  Array.iter
    (fun nd ->
      let c = Assignment.cell o.Context.assignment nd.Tree.id in
      let extra = Assignment.extra_delay o.Context.assignment ~mode:0 nd.Tree.id in
      if not (Cell.is_adjustable c) then
        Alcotest.(check (float 1e-12)) "fixed cells have no extra" 0.0 extra)
    (Tree.leaves t)

let test_report_contains_sections () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let t = minimal_tree () in
  let report =
    Repro_core.Report.for_tree ~name:"toy" t
      ~algorithms:[ Flow.Initial; Flow.Wavemin_fast ]
  in
  Alcotest.(check bool) "title" true (contains report "# WaveMin report");
  Alcotest.(check bool) "tree section" true (contains report "## Clock tree");
  Alcotest.(check bool) "results" true (contains report "ClkWaveMin-f")

let () =
  Alcotest.run "repro_robustness"
    [
      ( "robustness",
        [
          Alcotest.test_case "minimal tree full flow" `Quick
            test_minimal_tree_full_flow;
          Alcotest.test_case "single leaf tree" `Quick test_single_leaf_tree;
          Alcotest.test_case "leaf per zone" `Quick test_every_leaf_its_own_zone;
          Alcotest.test_case "one giant zone" `Quick test_one_giant_zone;
          Alcotest.test_case "worst over modes empty" `Quick
            test_golden_worst_over_modes_empty;
          Alcotest.test_case "liberty empty" `Quick test_liberty_empty_input;
          Alcotest.test_case "pwl extreme shift" `Quick test_pwl_extreme_shift;
          Alcotest.test_case "grid 2x2 all pads" `Quick test_grid_minimal_2x2;
          Alcotest.test_case "montecarlo single instance" `Quick
            test_montecarlo_single_instance;
          Alcotest.test_case "adjustable in single mode" `Quick
            test_adjustable_in_single_mode_context;
          Alcotest.test_case "report sections" `Quick test_report_contains_sections;
        ] );
    ]
