(* Theorem 2 (NP-completeness of Decision-WaveMin) rests on the
   reduction of PeakMin to WaveMin with |S| = 2: the two summation terms
   of PeakMin's objective become the two time sampling slots.  This
   suite checks the reduction computationally: on random instances, the
   exact WaveMin min-max over the 2-slot encoding equals the exact
   PeakMin optimum. *)

module Layered = Repro_mosp.Layered
module Warburton = Repro_mosp.Warburton
module Rng = Repro_util.Rng

type pcand = { positive : bool; peak : float }

let random_instance rng =
  let sinks = 2 + Rng.int rng ~bound:5 in
  Array.init sinks (fun _ ->
      Array.init
        (1 + Rng.int rng ~bound:3)
        (fun _ ->
          { positive = Rng.bool rng; peak = Rng.float rng ~bound:100.0 }))

(* Exact PeakMin: enumerate all assignments, minimize
   max(sum positive peaks, sum negative peaks). *)
let peakmin_opt instance =
  let n = Array.length instance in
  let best = ref infinity in
  let rec go i pos neg =
    if i = n then best := Float.min !best (Float.max pos neg)
    else
      Array.iter
        (fun c ->
          if c.positive then go (i + 1) (pos +. c.peak) neg
          else go (i + 1) pos (neg +. c.peak))
        instance.(i)
  in
  go 0 0.0 0.0;
  !best

(* WaveMin encoding with |S| = 2: slot 0 collects positive-polarity
   peaks, slot 1 negative-polarity peaks. *)
let wavemin_encoding instance =
  let options =
    Array.map
      (Array.map (fun c ->
           if c.positive then [| c.peak; 0.0 |] else [| 0.0; c.peak |]))
      instance
  in
  Layered.create ~options ~dest_weight:[| 0.0; 0.0 |]

let test_reduction_on_seeds () =
  let rng = Rng.create ~seed:271828 in
  for _ = 1 to 50 do
    let instance = random_instance rng in
    let expected = peakmin_opt instance in
    let got =
      (Warburton.exhaustive_min_max (wavemin_encoding instance)).Warburton.objective
    in
    Alcotest.(check (float 1e-6)) "objectives equal" expected got
  done

let test_reduction_with_solver () =
  (* The epsilon = 0 label solver also matches. *)
  let rng = Rng.create ~seed:314159 in
  for _ = 1 to 50 do
    let instance = random_instance rng in
    let expected = peakmin_opt instance in
    let got =
      (Warburton.solve_min_max ~epsilon:0.0 (wavemin_encoding instance))
        .Warburton.objective
    in
    Alcotest.(check (float 1e-6)) "objectives equal" expected got
  done

let prop_reduction =
  QCheck.Test.make ~name:"PeakMin == 2-slot WaveMin" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let instance = random_instance rng in
      let a = peakmin_opt instance in
      let b =
        (Warburton.exhaustive_min_max (wavemin_encoding instance))
          .Warburton.objective
      in
      Float.abs (a -. b) < 1e-6)

let prop_wavemin_generalizes =
  (* WaveMin with more slots can only do at least as well as the same
     instance folded onto 2 slots would suggest as a lower bound:
     splitting a slot cannot raise the optimum above the 2-slot value
     when the split vectors sum back to the original. *)
  QCheck.Test.make ~name:"slot refinement never hurts" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let instance = random_instance rng in
      let coarse =
        (Warburton.exhaustive_min_max (wavemin_encoding instance))
          .Warburton.objective
      in
      (* Refine: split each positive peak across two sub-slots. *)
      let options =
        Array.map
          (Array.map (fun c ->
               if c.positive then [| c.peak /. 2.0; c.peak /. 2.0; 0.0 |]
               else [| 0.0; 0.0; c.peak |]))
          instance
      in
      let g = Layered.create ~options ~dest_weight:[| 0.0; 0.0; 0.0 |] in
      let fine = (Warburton.exhaustive_min_max g).Warburton.objective in
      fine <= coarse +. 1e-6)

let () =
  Alcotest.run "repro_reduction"
    [
      ( "theorem 2",
        [
          Alcotest.test_case "reduction (exhaustive)" `Quick test_reduction_on_seeds;
          Alcotest.test_case "reduction (solver)" `Quick test_reduction_with_solver;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_reduction; prop_wavemin_generalizes ] );
    ]
