module Golden = Repro_core.Golden
module Waveforms = Repro_core.Waveforms
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Library = Repro_cell.Library
module Electrical = Repro_cell.Electrical
module Pwl = Repro_waveform.Pwl
module Rng = Repro_util.Rng

let tree ?(seed = 2121) ?(leaves = 14) ?(internals = 5) () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed)
      (Repro_cts.Placement.square_die 150.0) ~count:leaves ()
  in
  Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:(seed + 1)) sinks ~internals

let setup () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let env = Timing.nominal () in
  (t, asg, env)

(* ------------------------------------------------------------------ *)
(* Waveforms                                                           *)

let test_node_currents_shifted () =
  let t, asg, env = setup () in
  let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
  Array.iter
    (fun nd ->
      let c = Waveforms.node_currents t asg env timing nd.Tree.id in
      match Pwl.support c.Electrical.idd with
      | Some (t0, _) ->
        Alcotest.(check bool) "after input arrival" true
          (t0 >= timing.Timing.input_arrival.(nd.Tree.id) -. 1e-9)
      | None -> Alcotest.fail "buffer must draw current")
    (Tree.nodes t)

let test_candidate_currents_leaf_only () =
  let t, asg, env = setup () in
  let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
  let internal = (Tree.internals t).(0) in
  Alcotest.check_raises "internal rejected"
    (Invalid_argument "Waveforms.candidate_currents: not a leaf") (fun () ->
      ignore
        (Waveforms.candidate_currents t env timing internal.Tree.id (Library.buf 8)))

let test_candidate_matches_assigned () =
  (* For the currently assigned cell, candidate currents equal the
     node currents. *)
  let t, asg, env = setup () in
  let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
  let leaf = (Tree.leaves t).(0) in
  let a = Waveforms.node_currents t asg env timing leaf.Tree.id in
  let b = Waveforms.candidate_currents t env timing leaf.Tree.id (Library.buf 8) in
  Alcotest.(check bool) "idd equal" true (Pwl.equal ~eps:1e-6 a.Electrical.idd b.Electrical.idd);
  Alcotest.(check bool) "iss equal" true (Pwl.equal ~eps:1e-6 a.Electrical.iss b.Electrical.iss)

let test_total_is_sum_of_parts () =
  let t, asg, env = setup () in
  let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
  let leaves = Array.map (fun nd -> nd.Tree.id) (Tree.leaves t) in
  let internals = Array.map (fun nd -> nd.Tree.id) (Tree.internals t) in
  let all = Waveforms.total_rail_currents t asg env timing () in
  let l = Waveforms.total_rail_currents t asg env timing ~node_ids:leaves () in
  let i = Waveforms.total_rail_currents t asg env timing ~node_ids:internals () in
  let sum = Pwl.add l.Electrical.idd i.Electrical.idd in
  Alcotest.(check bool) "decomposes" true (Pwl.equal ~eps:1e-6 all.Electrical.idd sum)

let test_period_profile_has_both_edges () =
  let t, asg, env = setup () in
  let c = Waveforms.period_rail_currents t asg env ~period:2000.0 () in
  (* Buffers: IDD spike near the rising event (early) and ISS spike near
     the falling event (after 1000 ps). *)
  (match Pwl.support c.Electrical.idd with
  | Some (t0, _) -> Alcotest.(check bool) "idd early" true (t0 < 500.0)
  | None -> Alcotest.fail "idd");
  match Pwl.support c.Electrical.iss with
  | Some (_, t1) -> Alcotest.(check bool) "iss extends past half period" true (t1 > 1000.0)
  | None -> Alcotest.fail "iss"

(* ------------------------------------------------------------------ *)
(* Golden                                                              *)

let test_metrics_positive () =
  let t, asg, env = setup () in
  let m = Golden.evaluate t asg env in
  Alcotest.(check bool) "peak" true (m.Golden.peak_current_ma > 0.0);
  Alcotest.(check bool) "vdd noise" true (m.Golden.vdd_noise_mv > 0.0);
  Alcotest.(check bool) "gnd noise" true (m.Golden.gnd_noise_mv > 0.0);
  Alcotest.(check bool) "skew" true (m.Golden.skew_ps >= 0.0)

let test_peak_bounded_by_sum_of_cell_peaks () =
  let t, asg, env = setup () in
  let timing = Timing.analyze t asg env ~edge:Electrical.Rising in
  let m = Golden.evaluate t asg env in
  let bound =
    Array.fold_left
      (fun acc nd ->
        let c = Waveforms.node_currents t asg env timing nd.Tree.id in
        acc +. Float.max (Pwl.peak c.Electrical.idd) (Pwl.peak c.Electrical.iss))
      0.0 (Tree.nodes t)
  in
  Alcotest.(check bool) "bounded" true (m.Golden.peak_current_ma <= bound /. 1000.0 +. 1e-6)

let test_all_inverters_swaps_rails () =
  (* Flipping every leaf to an inverter moves the rising-edge leaf
     current from VDD to GND; total peak stays in the same ballpark. *)
  let t, asg, env = setup () in
  let asg_inv =
    Array.fold_left
      (fun a nd -> Assignment.set_cell a nd.Tree.id (Library.inv 8))
      asg (Tree.leaves t)
  in
  let m0 = Golden.evaluate t asg env in
  let m1 = Golden.evaluate t asg_inv env in
  Alcotest.(check bool) "same ballpark" true
    (m1.Golden.peak_current_ma < 2.0 *. m0.Golden.peak_current_ma
    && m1.Golden.peak_current_ma > 0.5 *. m0.Golden.peak_current_ma)

let test_worst_over_modes () =
  let t, asg, _ = setup () in
  let envs = [| Timing.nominal ~vdd:1.1 (); Timing.nominal ~vdd:0.9 () |] in
  (* Both modes index 0 of a 1-mode assignment is fine: mode defaults 0. *)
  let w = Golden.worst_over_modes t asg envs in
  let m0 = Golden.evaluate t asg envs.(0) in
  let m1 = Golden.evaluate t asg envs.(1) in
  Alcotest.(check (float 1e-9)) "peak is max"
    (Float.max m0.Golden.peak_current_ma m1.Golden.peak_current_ma)
    w.Golden.peak_current_ma

let test_default_grid_covers_tree () =
  let t, _, _ = setup () in
  let grid = Golden.default_grid t in
  Array.iter
    (fun nd ->
      let id = Repro_powergrid.Grid.node_at grid ~x:nd.Tree.x ~y:nd.Tree.y in
      Alcotest.(check bool) "valid node" true
        (id >= 0 && id < Repro_powergrid.Grid.num_nodes grid))
    (Tree.nodes t)

let test_balanced_polarity_reduces_peak () =
  (* Half inverters (alternating) must beat all-buffers on peak. *)
  let t, asg, env = setup () in
  let asg_mixed =
    let leaves = Tree.leaves t in
    let a = ref asg in
    Array.iteri
      (fun i nd ->
        if i mod 2 = 0 then a := Assignment.set_cell !a nd.Tree.id (Library.inv 8))
      leaves;
    !a
  in
  let m0 = Golden.evaluate t asg env in
  let m1 = Golden.evaluate t asg_mixed env in
  Alcotest.(check bool) "mixed lower peak" true
    (m1.Golden.peak_current_ma < m0.Golden.peak_current_ma)

let () =
  Alcotest.run "repro_core_golden"
    [
      ( "waveforms",
        [
          Alcotest.test_case "node currents shifted" `Quick test_node_currents_shifted;
          Alcotest.test_case "candidate leaf only" `Quick
            test_candidate_currents_leaf_only;
          Alcotest.test_case "candidate matches assigned" `Quick
            test_candidate_matches_assigned;
          Alcotest.test_case "total decomposes" `Quick test_total_is_sum_of_parts;
          Alcotest.test_case "period profile" `Quick test_period_profile_has_both_edges;
        ] );
      ( "golden",
        [
          Alcotest.test_case "metrics positive" `Quick test_metrics_positive;
          Alcotest.test_case "peak bounded" `Quick
            test_peak_bounded_by_sum_of_cell_peaks;
          Alcotest.test_case "all inverters" `Quick test_all_inverters_swaps_rails;
          Alcotest.test_case "worst over modes" `Quick test_worst_over_modes;
          Alcotest.test_case "default grid" `Quick test_default_grid_covers_tree;
          Alcotest.test_case "balanced polarity helps" `Quick
            test_balanced_polarity_reduces_peak;
        ] );
    ]
