module Montecarlo = Repro_core.Montecarlo
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Electrical = Repro_cell.Electrical
module Rng = Repro_util.Rng

let tree () =
  let sinks =
    Repro_cts.Placement.random_sinks (Rng.create ~seed:3131)
      (Repro_cts.Placement.square_die 150.0) ~count:12 ()
  in
  Repro_cts.Synthesis.synthesize ~rng:(Rng.create ~seed:3132) sinks ~internals:4

let small_config =
  { Montecarlo.default_config with
    Montecarlo.instances = 60;
    noise_instances = 10;
    kappa = 100.0 }

let test_perturbed_env_varies_timing () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let rng = Rng.create ~seed:5 in
  let e1 = Montecarlo.perturbed_env rng ~sigma_ratio:0.05 t in
  let e2 = Montecarlo.perturbed_env rng ~sigma_ratio:0.05 t in
  let a1 = (Timing.analyze t asg e1 ~edge:Electrical.Rising).Timing.sink_arrival in
  let a2 = (Timing.analyze t asg e2 ~edge:Electrical.Rising).Timing.sink_arrival in
  Alcotest.(check bool) "instances differ" true (a1 <> a2)

let test_zero_sigma_is_nominal () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let rng = Rng.create ~seed:5 in
  let env = Montecarlo.perturbed_env rng ~sigma_ratio:0.0 t in
  let nominal = Timing.analyze t asg (Timing.nominal ()) ~edge:Electrical.Rising in
  let varied = Timing.analyze t asg env ~edge:Electrical.Rising in
  Array.iteri
    (fun i v ->
      if Float.is_finite v then
        Alcotest.(check (float 1e-6)) "equal" nominal.Timing.sink_arrival.(i) v)
    varied.Timing.sink_arrival

let test_run_report_ranges () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let r = Montecarlo.run ~config:small_config t asg in
  Alcotest.(check bool) "yield in [0,1]" true
    (r.Montecarlo.skew_yield >= 0.0 && r.Montecarlo.skew_yield <= 1.0);
  Alcotest.(check bool) "mean skew positive" true (r.Montecarlo.mean_skew >= 0.0);
  Alcotest.(check bool) "norm std small" true
    (r.Montecarlo.norm_std_peak >= 0.0 && r.Montecarlo.norm_std_peak < 0.5);
  Alcotest.(check bool) "vdd std" true (r.Montecarlo.norm_std_vdd >= 0.0);
  Alcotest.(check bool) "gnd std" true (r.Montecarlo.norm_std_gnd >= 0.0)

let test_run_deterministic () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let r1 = Montecarlo.run ~config:small_config t asg in
  let r2 = Montecarlo.run ~config:small_config t asg in
  Alcotest.(check (float 1e-12)) "same yield" r1.Montecarlo.skew_yield
    r2.Montecarlo.skew_yield;
  Alcotest.(check (float 1e-12)) "same std" r1.Montecarlo.norm_std_peak
    r2.Montecarlo.norm_std_peak

let test_loose_kappa_full_yield () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let config = { small_config with Montecarlo.kappa = 1000.0 } in
  let r = Montecarlo.run ~config t asg in
  Alcotest.(check (float 1e-12)) "yield 1" 1.0 r.Montecarlo.skew_yield

let test_tight_kappa_zero_yield () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let config = { small_config with Montecarlo.kappa = 0.001 } in
  let r = Montecarlo.run ~config t asg in
  Alcotest.(check (float 1e-12)) "yield 0" 0.0 r.Montecarlo.skew_yield

let test_more_sigma_more_spread () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  let run sigma =
    Montecarlo.run
      ~config:{ small_config with Montecarlo.sigma_ratio = sigma }
      t asg
  in
  let lo = run 0.01 and hi = run 0.10 in
  Alcotest.(check bool) "spread grows" true
    (hi.Montecarlo.norm_std_peak >= lo.Montecarlo.norm_std_peak)

let test_invalid_instances () =
  let t = tree () in
  let asg = Assignment.default t ~num_modes:1 in
  Alcotest.check_raises "instances"
    (Invalid_argument "Montecarlo.run: instances < 1") (fun () ->
      ignore
        (Montecarlo.run ~config:{ small_config with Montecarlo.instances = 0 } t asg))

let () =
  Alcotest.run "repro_core_montecarlo"
    [
      ( "montecarlo",
        [
          Alcotest.test_case "perturbed env varies" `Quick
            test_perturbed_env_varies_timing;
          Alcotest.test_case "zero sigma nominal" `Quick test_zero_sigma_is_nominal;
          Alcotest.test_case "report ranges" `Quick test_run_report_ranges;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "loose kappa" `Quick test_loose_kappa_full_yield;
          Alcotest.test_case "tight kappa" `Quick test_tight_kappa_zero_yield;
          Alcotest.test_case "sigma scaling" `Quick test_more_sigma_more_spread;
          Alcotest.test_case "invalid instances" `Quick test_invalid_instances;
        ] );
    ]
