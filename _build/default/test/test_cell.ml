module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Library = Repro_cell.Library
module Characterize = Repro_cell.Characterize
module Pwl = Repro_waveform.Pwl

let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Cell                                                                *)

let test_polarity () =
  Alcotest.(check bool) "buf positive" true
    (Cell.polarity (Library.buf 8) = Cell.Positive);
  Alcotest.(check bool) "inv negative" true
    (Cell.polarity (Library.inv 8) = Cell.Negative);
  Alcotest.(check bool) "adb positive" true
    (Cell.polarity (Library.adb 8) = Cell.Positive);
  Alcotest.(check bool) "adi negative" true
    (Cell.polarity (Library.adi 8) = Cell.Negative)

let test_adjustable () =
  Alcotest.(check bool) "buf fixed" false (Cell.is_adjustable (Library.buf 4));
  Alcotest.(check bool) "adb adjustable" true (Cell.is_adjustable (Library.adb 4))

let test_make_validation () =
  Alcotest.check_raises "bad drive"
    (Invalid_argument "Cell.make: drive must be positive") (fun () ->
      ignore
        (Cell.make ~name:"X" ~kind:Cell.Buffer ~drive:0 ~input_cap:1.0
           ~output_res:1.0 ~intrinsic_rise:1.0 ~intrinsic_fall:1.0 ~area:1.0 ()));
  Alcotest.check_raises "adjustable needs steps"
    (Invalid_argument "Cell.make: adjustable cell needs delay steps") (fun () ->
      ignore
        (Cell.make ~name:"X" ~kind:Cell.Adjustable_buffer ~drive:1 ~input_cap:1.0
           ~output_res:1.0 ~intrinsic_rise:1.0 ~intrinsic_fall:1.0 ~area:1.0 ()));
  Alcotest.check_raises "fixed cannot have steps"
    (Invalid_argument "Cell.make: fixed cell cannot have delay steps") (fun () ->
      ignore
        (Cell.make ~name:"X" ~kind:Cell.Buffer ~drive:1 ~input_cap:1.0
           ~output_res:1.0 ~intrinsic_rise:1.0 ~intrinsic_fall:1.0 ~area:1.0
           ~delay_steps:[| 0.0; 2.0 |] ()))

let test_opposite_rail () =
  Alcotest.(check bool) "vdd<->gnd" true
    (Cell.opposite_rail Cell.Vdd_rail = Cell.Gnd_rail
    && Cell.opposite_rail Cell.Gnd_rail = Cell.Vdd_rail)

(* ------------------------------------------------------------------ *)
(* Library anchors from the paper                                      *)

let test_anchor_buf16_resistance () =
  (* Table I: BUF_X16 R_out = 397.6 Ohm. *)
  check_close 1.0 "R_out (Ohm)" 397.6 ((Library.buf 16).Cell.output_res *. 1000.0)

let test_anchor_input_caps () =
  (* Table I: BUF_X4 Cin = 1 fF, INV_X8 Cin = 2.2 fF. *)
  check_close 1e-9 "BUF_X4" 1.0 (Library.buf 4).Cell.input_cap;
  check_close 1e-9 "INV_X8" 2.2 (Library.inv 8).Cell.input_cap

let test_library_find () =
  Alcotest.(check bool) "find BUF_X8" true
    (Cell.equal (Library.find "BUF_X8") (Library.buf 8));
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Library.find "NAND_X1"))

let test_library_unsupported_drive () =
  Alcotest.check_raises "X3" (Invalid_argument "Library: unsupported drive X3")
    (fun () -> ignore (Library.buf 3))

let test_experiment_sets () =
  Alcotest.(check int) "buffers" 2 (List.length Library.experiment_buffers);
  Alcotest.(check int) "inverters" 2 (List.length Library.experiment_inverters)

let test_adi_slower_than_adb () =
  (* Sec. VII-E: ADIs have longer propagation delay than ADBs. *)
  let d cell =
    Electrical.delay cell ~vdd:1.1 ~load:5.0 ~edge:Electrical.Rising ()
  in
  Alcotest.(check bool) "ADI slower" true (d (Library.adi 8) > d (Library.adb 8))

(* ------------------------------------------------------------------ *)
(* Electrical model                                                    *)

let test_derate () =
  check_close 1e-9 "nominal" 1.0 (Electrical.derate ~vdd:1.1);
  let low = Electrical.derate ~vdd:0.9 in
  (* Table III delays stretch by 12-29 % at 0.9 V. *)
  Alcotest.(check bool) "0.9V slower" true (low > 1.1 && low < 1.4)

let test_delay_monotone_in_load () =
  let cell = Library.buf 8 in
  let d load = Electrical.delay cell ~vdd:1.1 ~load ~edge:Electrical.Rising () in
  Alcotest.(check bool) "monotone" true (d 2.0 < d 8.0 && d 8.0 < d 20.0)

let test_delay_bigger_drive_faster () =
  let d cell = Electrical.delay cell ~vdd:1.1 ~load:10.0 ~edge:Electrical.Rising () in
  Alcotest.(check bool) "X16 < X4" true (d (Library.buf 16) < d (Library.buf 4))

let test_inverter_faster_than_buffer () =
  (* Table II: INV_X1 (21 ps) < BUF_X1 (24 ps). *)
  let d cell = Electrical.delay cell ~vdd:1.1 ~load:5.0 ~edge:Electrical.Rising () in
  Alcotest.(check bool) "inv faster" true (d (Library.inv 8) < d (Library.buf 8))

let test_output_edge () =
  Alcotest.(check bool) "buffer keeps" true
    (Electrical.output_edge (Library.buf 1) Electrical.Rising = Electrical.Rising);
  Alcotest.(check bool) "inverter flips" true
    (Electrical.output_edge (Library.inv 1) Electrical.Rising = Electrical.Falling)

let test_charge_physical () =
  (* Q = (load + self) * vdd. *)
  let q = Electrical.switching_charge (Library.buf 4) ~vdd:1.1 ~load:10.0 in
  Alcotest.(check bool) "bounded" true (q > 10.0 && q < 20.0)

let test_event_currents_buffer_rising () =
  (* A buffer's rising input puts the main pulse on V_DD. *)
  let c =
    Electrical.event_currents (Library.buf 8) ~vdd:1.1 ~load:5.0
      ~edge:Electrical.Rising ()
  in
  Alcotest.(check bool) "idd dominates" true
    (Pwl.peak c.Electrical.idd > 2.0 *. Pwl.peak c.Electrical.iss)

let test_event_currents_inverter_rising () =
  (* An inverter's rising input discharges: main pulse on Gnd. *)
  let c =
    Electrical.event_currents (Library.inv 8) ~vdd:1.1 ~load:5.0
      ~edge:Electrical.Rising ()
  in
  Alcotest.(check bool) "iss dominates" true
    (Pwl.peak c.Electrical.iss > 2.0 *. Pwl.peak c.Electrical.idd)

let test_event_currents_charge_conservation () =
  (* The main pulse must carry the switching charge (in uA*ps = aC;
     1 fC = 1000 uA*ps). *)
  let cell = Library.buf 8 in
  let load = 6.0 in
  let c = Electrical.event_currents cell ~vdd:1.1 ~load ~edge:Electrical.Rising () in
  let q_ac = 1000.0 *. Electrical.switching_charge cell ~vdd:1.1 ~load in
  check_close (q_ac *. 0.01) "charge" q_ac (Pwl.area c.Electrical.idd)

let test_peak_of_event_matches_waveform () =
  let cell = Library.inv 16 in
  let c = Electrical.event_currents cell ~vdd:1.1 ~load:7.0 ~edge:Electrical.Falling () in
  let p =
    Electrical.peak_of_event cell ~vdd:1.1 ~load:7.0 ~edge:Electrical.Falling
      ~rail:Cell.Vdd_rail
  in
  check_close 1e-6 "consistent" (Pwl.peak c.Electrical.idd) p

let test_lower_vdd_lower_peak () =
  let p vdd =
    Electrical.peak_of_event (Library.buf 8) ~vdd ~load:5.0
      ~edge:Electrical.Rising ~rail:Cell.Vdd_rail
  in
  Alcotest.(check bool) "P(0.9) < P(1.1)" true (p 0.9 < p 1.1)

let test_table2_magnitudes () =
  (* Table II scale check: X1/X2-class cells peak in the 100-400 uA
     range at small loads. *)
  let p = Electrical.peak_of_event (Library.buf 1) ~vdd:1.1 ~load:2.0
            ~edge:Electrical.Rising ~rail:Cell.Vdd_rail in
  Alcotest.(check bool) "magnitude" true (p > 50.0 && p < 500.0)

(* ------------------------------------------------------------------ *)
(* Characterization                                                    *)

let test_profile_structure () =
  let p = Characterize.profile (Library.buf 8) ~vdd:1.1 ~load:5.0 ~period:2000.0 () in
  Alcotest.(check bool) "delays positive" true (p.Characterize.t_d_rise > 0.0);
  (* Both edges over a period: two pulses on each rail. *)
  Alcotest.(check bool) "idd active near falling edge too" true
    (Pwl.peak p.Characterize.idd > 0.0 && Pwl.peak p.Characterize.iss > 0.0)

let test_hot_spot_times () =
  let p = Characterize.profile (Library.buf 8) ~vdd:1.1 ~load:5.0 ~period:2000.0 () in
  let ts = Characterize.hot_spot_times p ~count:12 in
  Alcotest.(check bool) "some samples" true (Array.length ts >= 2);
  let sorted = Array.copy ts in
  Array.sort compare sorted;
  Alcotest.(check bool) "sorted unique" true (sorted = ts)

let test_sibling_sweep_shape () =
  (* Observation 4 / Table I: delay and slew of the observed buffer move
     mildly; the local rail peak moves strongly. *)
  let rows = Characterize.sibling_sweep () in
  Alcotest.(check int) "16 rows" 16 (List.length rows);
  let first = List.hd rows in
  let last = List.nth rows 15 in
  let rel a b = Float.abs (a -. b) /. Float.max a b in
  Alcotest.(check bool) "delay mild" true
    (rel first.Characterize.obs_t_d_rise last.Characterize.obs_t_d_rise < 0.5);
  (* Peaks swing strongly over the sweep (the paper's data is not
     monotone either — compare the extremes of the whole column). *)
  let peaks = List.map (fun r -> r.Characterize.peak_idd) rows in
  let pmin = List.fold_left Float.min infinity peaks in
  let pmax = List.fold_left Float.max 0.0 peaks in
  Alcotest.(check bool) "peak strong" true (pmax /. pmin > 1.5);
  (* Slew degrades monotonically as bigger inverters replace buffers. *)
  Alcotest.(check bool) "slew grows" true
    (last.Characterize.obs_slew_rise > first.Characterize.obs_slew_rise)

let test_sibling_sweep_counts () =
  let rows = Characterize.sibling_sweep ~fanout:8 () in
  List.iteri
    (fun k row ->
      Alcotest.(check int) "invs" k row.Characterize.num_inverters;
      Alcotest.(check int) "bufs" (8 - k) row.Characterize.num_buffers)
    rows

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let cell_gen =
  QCheck.make
    ~print:(fun c -> c.Cell.name)
    QCheck.Gen.(
      let* d = oneofl [ 1; 2; 4; 8; 16; 32 ] in
      let* mk = oneofl [ Library.buf; Library.inv; Library.adb; Library.adi ] in
      return (mk d))

let prop_delay_positive =
  QCheck.Test.make ~name:"delay positive" ~count:200
    QCheck.(pair cell_gen (float_range 0.5 50.0))
    (fun (cell, load) ->
      Electrical.delay cell ~vdd:1.1 ~load ~edge:Electrical.Rising () > 0.0)

let prop_event_charge_scales_with_load =
  QCheck.Test.make ~name:"more load, more charge" ~count:100
    QCheck.(pair cell_gen (float_range 1.0 20.0))
    (fun (cell, load) ->
      let q1 = Electrical.switching_charge cell ~vdd:1.1 ~load in
      let q2 = Electrical.switching_charge cell ~vdd:1.1 ~load:(load +. 5.0) in
      q2 > q1)

let prop_main_rail_polarity =
  QCheck.Test.make ~name:"main pulse rail follows polarity" ~count:100 cell_gen
    (fun cell ->
      let c =
        Electrical.event_currents cell ~vdd:1.1 ~load:5.0 ~edge:Electrical.Rising ()
      in
      match Cell.polarity cell with
      | Cell.Positive -> Pwl.peak c.Electrical.idd >= Pwl.peak c.Electrical.iss
      | Cell.Negative -> Pwl.peak c.Electrical.iss >= Pwl.peak c.Electrical.idd)

let () =
  Alcotest.run "repro_cell"
    [
      ( "cell",
        [
          Alcotest.test_case "polarity" `Quick test_polarity;
          Alcotest.test_case "adjustable" `Quick test_adjustable;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "opposite rail" `Quick test_opposite_rail;
        ] );
      ( "library",
        [
          Alcotest.test_case "BUF_X16 resistance anchor" `Quick
            test_anchor_buf16_resistance;
          Alcotest.test_case "input cap anchors" `Quick test_anchor_input_caps;
          Alcotest.test_case "find" `Quick test_library_find;
          Alcotest.test_case "unsupported drive" `Quick
            test_library_unsupported_drive;
          Alcotest.test_case "experiment sets" `Quick test_experiment_sets;
          Alcotest.test_case "ADI slower than ADB" `Quick test_adi_slower_than_adb;
        ] );
      ( "electrical",
        [
          Alcotest.test_case "derate" `Quick test_derate;
          Alcotest.test_case "delay monotone in load" `Quick
            test_delay_monotone_in_load;
          Alcotest.test_case "bigger drive faster" `Quick
            test_delay_bigger_drive_faster;
          Alcotest.test_case "inverter faster" `Quick
            test_inverter_faster_than_buffer;
          Alcotest.test_case "output edge" `Quick test_output_edge;
          Alcotest.test_case "charge physical" `Quick test_charge_physical;
          Alcotest.test_case "buffer rising on VDD" `Quick
            test_event_currents_buffer_rising;
          Alcotest.test_case "inverter rising on GND" `Quick
            test_event_currents_inverter_rising;
          Alcotest.test_case "charge conservation" `Quick
            test_event_currents_charge_conservation;
          Alcotest.test_case "peak accessor consistent" `Quick
            test_peak_of_event_matches_waveform;
          Alcotest.test_case "lower vdd lower peak" `Quick test_lower_vdd_lower_peak;
          Alcotest.test_case "Table II magnitudes" `Quick test_table2_magnitudes;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "profile structure" `Quick test_profile_structure;
          Alcotest.test_case "hot spot times" `Quick test_hot_spot_times;
          Alcotest.test_case "sibling sweep shape (Table I)" `Quick
            test_sibling_sweep_shape;
          Alcotest.test_case "sibling sweep counts" `Quick test_sibling_sweep_counts;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_delay_positive; prop_event_charge_scales_with_load;
            prop_main_rail_polarity ] );
    ]
