module Placement = Repro_cts.Placement
module Topology = Repro_cts.Topology
module Synthesis = Repro_cts.Synthesis
module Benchmarks = Repro_cts.Benchmarks
module Islands = Repro_cts.Islands
module Tree = Repro_clocktree.Tree
module Rng = Repro_util.Rng

let rng () = Rng.create ~seed:4242

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)

let test_random_sinks () =
  let die = Placement.square_die 200.0 in
  let sinks = Placement.random_sinks (rng ()) die ~count:50 () in
  Alcotest.(check int) "count" 50 (Array.length sinks);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "in die" true
        (s.Placement.x >= 0.0 && s.Placement.x <= 200.0
        && s.Placement.y >= 0.0 && s.Placement.y <= 200.0);
      Alcotest.(check bool) "cap range" true
        (s.Placement.cap >= 10.0 && s.Placement.cap <= 18.0))
    sinks

let test_clustered_sinks () =
  let die = Placement.square_die 200.0 in
  let sinks = Placement.clustered_sinks (rng ()) die ~count:40 ~clusters:3 () in
  Alcotest.(check int) "count" 40 (Array.length sinks);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "clamped" true
        (s.Placement.x >= 0.0 && s.Placement.x <= 200.0))
    sinks

let test_bounding_box () =
  let sinks =
    [| { Placement.x = 1.0; y = 5.0; cap = 3.0 };
       { Placement.x = 4.0; y = 2.0; cap = 3.0 } |]
  in
  let x0, y0, x1, y1 = Placement.bounding_box sinks in
  Alcotest.(check (float 1e-12)) "x0" 1.0 x0;
  Alcotest.(check (float 1e-12)) "y0" 2.0 y0;
  Alcotest.(check (float 1e-12)) "x1" 4.0 x1;
  Alcotest.(check (float 1e-12)) "y1" 5.0 y1

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)

let sinks_n n =
  Placement.random_sinks (rng ()) (Placement.square_die 300.0) ~count:n ()

let test_bisect_counts () =
  let topo = Topology.bisect (sinks_n 16) ~branching:2 in
  Alcotest.(check int) "leaves" 16 (Topology.leaf_count topo);
  Alcotest.(check int) "full binary internals" 15 (Topology.internal_count topo)

let test_bisect_invalid () =
  Alcotest.check_raises "branching" (Invalid_argument "Topology.bisect: branching < 2")
    (fun () -> ignore (Topology.bisect (sinks_n 4) ~branching:1))

let test_budgeted_exact () =
  List.iter
    (fun (n, taps) ->
      let topo = Topology.budgeted (sinks_n n) ~taps in
      Alcotest.(check int)
        (Printf.sprintf "taps n=%d t=%d" n taps)
        (min taps (max 1 (n - 1)))
        (Topology.internal_count topo);
      Alcotest.(check int) "leaves preserved" n (Topology.leaf_count topo))
    [ (50, 8); (19, 3); (246, 77); (111, 110); (10, 1); (10, 9); (1, 1); (7, 100) ]

let test_add_repeaters () =
  let topo = Topology.bisect (sinks_n 8) ~branching:2 in
  let before = Topology.internal_count topo in
  let topo' = Topology.add_repeaters (rng ()) topo ~extra:5 in
  Alcotest.(check int) "added" (before + 5) (Topology.internal_count topo');
  Alcotest.(check int) "leaves same" 8 (Topology.leaf_count topo')

(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)

let test_level_sizes_sum () =
  List.iter
    (fun (internals, leaves) ->
      let sizes = Synthesis.level_sizes ~internals ~leaves in
      Alcotest.(check int)
        (Printf.sprintf "sum i=%d l=%d" internals leaves)
        internals
        (List.fold_left ( + ) 0 sizes);
      (match sizes with
      | root :: _ -> Alcotest.(check int) "root level" 1 root
      | [] -> Alcotest.fail "empty sizes");
      (* A level never exceeds the one below. *)
      let rec check = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "monotone" true (a <= b);
          check rest
        | [ _ ] | [] -> ()
      in
      check sizes)
    [ (8, 50); (3, 19); (77, 246); (217, 111); (141, 69); (1, 10); (2, 2) ]

let test_build_structure () =
  let tree = Synthesis.build ~rng:(rng ()) (sinks_n 30) ~internals:10 in
  Alcotest.(check int) "n" 40 (Tree.size tree);
  Alcotest.(check int) "leaves" 30 (Tree.num_leaves tree)

let test_build_uniform_leaf_depth () =
  let tree = Synthesis.build ~rng:(rng ()) (sinks_n 64) ~internals:21 in
  let depths =
    Array.map (fun nd -> Tree.depth tree nd.Tree.id) (Tree.leaves tree)
  in
  let d0 = depths.(0) in
  Array.iter (fun d -> Alcotest.(check int) "uniform depth" d0 d) depths

let test_synthesize_low_skew () =
  let tree = Synthesis.synthesize ~rng:(rng ()) (sinks_n 60) ~internals:15 in
  Alcotest.(check bool) "skew < 10ps" true (Synthesis.nominal_skew tree < 10.0)

let test_synthesize_rejects_empty () =
  Alcotest.check_raises "no sinks" (Invalid_argument "Synthesis.build: no sinks")
    (fun () -> ignore (Synthesis.build ~rng:(rng ()) [||] ~internals:3))

(* ------------------------------------------------------------------ *)
(* DME                                                                 *)

let test_merge_split_balances () =
  let la, lb =
    Repro_cts.Dme.merge_split ~distance:100.0 ~delay_a:20.0 ~cap_a:2.0
      ~delay_b:24.0 ~cap_b:2.0
  in
  Alcotest.(check bool) "covers distance" true (la +. lb >= 100.0 -. 1e-6);
  (* The slower side gets the shorter stub. *)
  Alcotest.(check bool) "slower side shorter" true (lb < la)

let test_merge_split_detour () =
  (* Huge delay difference: the fast side must detour beyond the direct
     distance. *)
  let la, lb =
    Repro_cts.Dme.merge_split ~distance:10.0 ~delay_a:80.0 ~cap_a:2.0
      ~delay_b:20.0 ~cap_b:2.0
  in
  Alcotest.(check (float 1e-9)) "slow side zero" 0.0 la;
  Alcotest.(check bool) "detour" true (lb > 10.0)

let test_merge_split_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Dme.merge_split: negative input")
    (fun () ->
      ignore
        (Repro_cts.Dme.merge_split ~distance:(-1.0) ~delay_a:1.0 ~cap_a:1.0
           ~delay_b:1.0 ~cap_b:1.0))

let test_dme_structure () =
  let sinks = sinks_n 20 in
  let tree = Repro_cts.Dme.synthesize sinks in
  Alcotest.(check int) "2n-1 nodes" 39 (Tree.size tree);
  Alcotest.(check int) "n leaves" 20 (Tree.num_leaves tree);
  (* Binary: every internal node has exactly 2 children. *)
  Array.iter
    (fun nd ->
      Alcotest.(check int) "binary" 2 (List.length nd.Tree.children))
    (Tree.internals tree)

let test_dme_low_skew () =
  let tree = Repro_cts.Dme.synthesize (sinks_n 60) in
  Alcotest.(check bool) "skew < 6ps" true (Repro_cts.Dme.nominal_skew tree < 6.0)

let test_dme_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Dme.synthesize: no sinks")
    (fun () -> ignore (Repro_cts.Dme.synthesize [||]))

let prop_dme_skew_small =
  QCheck.Test.make ~name:"DME skew stays small" ~count:15
    QCheck.(pair (int_range 1 100000) (int_range 2 80))
    (fun (seed, n) ->
      let sinks =
        Placement.random_sinks (Rng.create ~seed) (Placement.square_die 250.0)
          ~count:n ()
      in
      let tree = Repro_cts.Dme.synthesize sinks in
      (* The balance is first-order Elmore (slew coupling ignored), so a
         few ps of residual remain — same class as the paper's "<10 ps"
         zero-skew trees. *)
      Tree.size tree = (2 * n) - 1 && Repro_cts.Dme.nominal_skew tree < 12.0)

(* ------------------------------------------------------------------ *)
(* H-tree                                                              *)

let test_htree_tap_count () =
  Alcotest.(check int) "4^2" 16
    (Array.length (Repro_cts.Htree.tap_positions ~die_side:100.0 ~levels:2));
  Alcotest.(check int) "4^0" 1
    (Array.length (Repro_cts.Htree.tap_positions ~die_side:100.0 ~levels:0))

let test_htree_taps_inside_die () =
  let taps = Repro_cts.Htree.tap_positions ~die_side:100.0 ~levels:3 in
  Array.iter
    (fun (x, y) ->
      Alcotest.(check bool) "inside" true
        (x > 0.0 && x < 100.0 && y > 0.0 && y < 100.0))
    taps

let test_htree_synthesize () =
  let sinks = sinks_n 40 in
  let tree = Repro_cts.Htree.synthesize ~die_side:300.0 ~levels:2 sinks in
  (* All sink capacitance is preserved in the leaf loads. *)
  let total_sinks = Array.fold_left (fun a s -> a +. s.Placement.cap) 0.0 sinks in
  let total_leaves =
    Array.fold_left (fun a nd -> a +. nd.Tree.sink_cap) 0.0 (Tree.leaves tree)
  in
  Alcotest.(check (float 1e-6)) "cap preserved" total_sinks total_leaves;
  Alcotest.(check bool) "at most 16 leaves" true (Tree.num_leaves tree <= 16);
  Alcotest.(check bool) "low skew" true (Synthesis.nominal_skew tree < 10.0)

let test_htree_prunes_empty_taps () =
  (* Sinks concentrated in one corner: most taps vanish. *)
  let sinks =
    Array.init 6 (fun i ->
        { Placement.x = 5.0 +. float_of_int i; y = 5.0; cap = 10.0 })
  in
  let tree = Repro_cts.Htree.synthesize ~die_side:400.0 ~levels:2 sinks in
  Alcotest.(check int) "single leaf chain" 1 (Tree.num_leaves tree)

let test_htree_validation () =
  Alcotest.check_raises "levels" (Invalid_argument "Htree.synthesize: levels < 1")
    (fun () ->
      ignore (Repro_cts.Htree.synthesize ~die_side:100.0 ~levels:0 (sinks_n 4)));
  Alcotest.check_raises "empty" (Invalid_argument "Htree.synthesize: no sinks")
    (fun () -> ignore (Repro_cts.Htree.synthesize ~die_side:100.0 ~levels:2 [||]))

(* ------------------------------------------------------------------ *)
(* Benchmarks                                                          *)

let test_benchmark_suite_statistics () =
  List.iter
    (fun spec ->
      let tree = Benchmarks.synthesize spec in
      Alcotest.(check int)
        (spec.Benchmarks.name ^ " n")
        spec.Benchmarks.num_nodes (Tree.size tree);
      Alcotest.(check int)
        (spec.Benchmarks.name ^ " |L|")
        spec.Benchmarks.num_leaves (Tree.num_leaves tree);
      Alcotest.(check bool)
        (spec.Benchmarks.name ^ " zero skew")
        true
        (Synthesis.nominal_skew tree < 10.0))
    Benchmarks.all

let test_benchmark_deterministic () =
  let spec = Benchmarks.find "s15850" in
  let t1 = Benchmarks.synthesize spec and t2 = Benchmarks.synthesize spec in
  Alcotest.(check (float 1e-12)) "same skew" (Synthesis.nominal_skew t1)
    (Synthesis.nominal_skew t2);
  Alcotest.(check int) "same size" (Tree.size t1) (Tree.size t2)

let test_benchmark_find_unknown () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Benchmarks.find "s99999"))

let test_benchmark_zone_occupancy () =
  (* Sec. VII-A: ~4.3 leaves per 50x50 zone for ISCAS'89 circuits. *)
  let spec = Benchmarks.find "s38417" in
  let tree = Benchmarks.synthesize spec in
  let zones = Repro_core.Zones.partition tree ~side:Benchmarks.zone_side in
  let mean = Repro_core.Zones.mean_leaves_per_zone zones in
  Alcotest.(check bool) "occupancy in range" true (mean > 2.5 && mean < 8.0)

(* ------------------------------------------------------------------ *)
(* Islands                                                             *)

let test_islands_grid () =
  let isl = Islands.grid ~die_side:100.0 ~count:6 in
  Alcotest.(check bool) "count >= asked" true (Islands.count isl >= 6)

let test_islands_lookup () =
  let isl = Islands.grid ~die_side:100.0 ~count:4 in
  let a = Islands.island_of isl ~x:10.0 ~y:10.0 in
  let b = Islands.island_of isl ~x:90.0 ~y:90.0 in
  Alcotest.(check bool) "different corners" true (a <> b);
  (* Outside points clamp onto the die. *)
  let c = Islands.island_of isl ~x:(-5.0) ~y:(-5.0) in
  Alcotest.(check int) "clamped" a c

let test_islands_modes () =
  let isl = Islands.grid ~die_side:100.0 ~count:4 in
  let modes = Islands.random_modes (rng ()) isl ~num_modes:4 () in
  Alcotest.(check int) "modes" 4 (Array.length modes);
  Array.iter
    (fun v -> Alcotest.(check (float 1e-12)) "mode 0 nominal" 1.1 v)
    modes.(0);
  Array.iter
    (fun mode ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "levels" true (v = 0.9 || v = 1.1))
        mode)
    modes

let test_islands_vdd_of_node () =
  let isl = Islands.grid ~die_side:100.0 ~count:4 in
  let mode = Islands.uniform_mode isl ~vdd:0.9 in
  let tree =
    Synthesis.build ~rng:(rng ())
      (Placement.random_sinks (rng ()) (Placement.square_die 100.0) ~count:8 ())
      ~internals:3
  in
  Array.iter
    (fun nd ->
      Alcotest.(check (float 1e-12)) "uniform 0.9" 0.9
        (Islands.vdd_of_node isl mode nd))
    (Tree.nodes tree)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_budgeted_counts =
  QCheck.Test.make ~name:"budgeted consumes exact tap budget" ~count:60
    QCheck.(pair (int_range 2 120) (int_range 1 200))
    (fun (n, taps) ->
      let sinks = sinks_n n in
      let topo = Topology.budgeted sinks ~taps in
      Topology.internal_count topo = min taps (n - 1)
      && Topology.leaf_count topo = n)

let prop_level_sizes =
  QCheck.Test.make ~name:"level sizes sum and shape" ~count:100
    QCheck.(pair (int_range 1 300) (int_range 1 300))
    (fun (internals, leaves) ->
      let sizes = Synthesis.level_sizes ~internals ~leaves in
      List.fold_left ( + ) 0 sizes = internals
      && List.hd sizes = 1
      && List.for_all (fun s -> s >= 1) sizes)

let () =
  Alcotest.run "repro_cts"
    [
      ( "placement",
        [
          Alcotest.test_case "random sinks" `Quick test_random_sinks;
          Alcotest.test_case "clustered sinks" `Quick test_clustered_sinks;
          Alcotest.test_case "bounding box" `Quick test_bounding_box;
        ] );
      ( "topology",
        [
          Alcotest.test_case "bisect counts" `Quick test_bisect_counts;
          Alcotest.test_case "bisect invalid" `Quick test_bisect_invalid;
          Alcotest.test_case "budgeted exact" `Quick test_budgeted_exact;
          Alcotest.test_case "add repeaters" `Quick test_add_repeaters;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "level sizes sum" `Quick test_level_sizes_sum;
          Alcotest.test_case "build structure" `Quick test_build_structure;
          Alcotest.test_case "uniform leaf depth" `Quick
            test_build_uniform_leaf_depth;
          Alcotest.test_case "low skew" `Quick test_synthesize_low_skew;
          Alcotest.test_case "rejects empty" `Quick test_synthesize_rejects_empty;
        ] );
      ( "dme",
        [
          Alcotest.test_case "merge split balances" `Quick test_merge_split_balances;
          Alcotest.test_case "merge split detour" `Quick test_merge_split_detour;
          Alcotest.test_case "merge split validation" `Quick
            test_merge_split_validation;
          Alcotest.test_case "structure" `Quick test_dme_structure;
          Alcotest.test_case "low skew" `Quick test_dme_low_skew;
          Alcotest.test_case "empty rejected" `Quick test_dme_empty_rejected;
        ] );
      ( "htree",
        [
          Alcotest.test_case "tap count" `Quick test_htree_tap_count;
          Alcotest.test_case "taps inside die" `Quick test_htree_taps_inside_die;
          Alcotest.test_case "synthesize" `Quick test_htree_synthesize;
          Alcotest.test_case "prunes empty taps" `Quick test_htree_prunes_empty_taps;
          Alcotest.test_case "validation" `Quick test_htree_validation;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "suite statistics" `Slow test_benchmark_suite_statistics;
          Alcotest.test_case "deterministic" `Quick test_benchmark_deterministic;
          Alcotest.test_case "find unknown" `Quick test_benchmark_find_unknown;
          Alcotest.test_case "zone occupancy" `Quick test_benchmark_zone_occupancy;
        ] );
      ( "islands",
        [
          Alcotest.test_case "grid" `Quick test_islands_grid;
          Alcotest.test_case "lookup" `Quick test_islands_lookup;
          Alcotest.test_case "modes" `Quick test_islands_modes;
          Alcotest.test_case "vdd of node" `Quick test_islands_vdd_of_node;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_budgeted_counts; prop_level_sizes; prop_dme_skew_small ] );
    ]
