type t = {
  nx : int;
  ny : int;
  die_side : float;
  conductance : float; (* 1 / segment_res, in 1/Ohm *)
  pad : bool array;
}

let create ~die_side ?(nx = 16) ?(ny = 16) ?(segment_res = 0.5)
    ?(pad_stride = 8) () =
  if nx < 2 || ny < 2 then invalid_arg "Grid.create: mesh too small";
  if die_side <= 0.0 || segment_res <= 0.0 then
    invalid_arg "Grid.create: non-positive dimension";
  if pad_stride < 1 then invalid_arg "Grid.create: pad_stride < 1";
  let pad = Array.make (nx * ny) false in
  (* Pads sit on the boundary ring, every [pad_stride] nodes, plus the
     four corners. *)
  let mark i j = pad.((j * nx) + i) <- true in
  for i = 0 to nx - 1 do
    if i mod pad_stride = 0 || i = nx - 1 then begin
      mark i 0;
      mark i (ny - 1)
    end
  done;
  for j = 0 to ny - 1 do
    if j mod pad_stride = 0 || j = ny - 1 then begin
      mark 0 j;
      mark (nx - 1) j
    end
  done;
  { nx; ny; die_side; conductance = 1.0 /. segment_res; pad }

let num_nodes t = t.nx * t.ny

let die_side t = t.die_side

let node_at t ~x ~y =
  let clamp v = Float.max 0.0 (Float.min t.die_side v) in
  let i =
    min (t.nx - 1)
      (int_of_float (clamp x /. t.die_side *. float_of_int t.nx))
  in
  let j =
    min (t.ny - 1)
      (int_of_float (clamp y /. t.die_side *. float_of_int t.ny))
  in
  (j * t.nx) + i

let position t id =
  let i = id mod t.nx and j = id / t.nx in
  ( (float_of_int i +. 0.5) /. float_of_int t.nx *. t.die_side,
    (float_of_int j +. 0.5) /. float_of_int t.ny *. t.die_side )

let is_pad t id = t.pad.(id)

(* y := L x where L is the grounded mesh Laplacian: pads act as Dirichlet
   nodes (row = identity), free rows are conductance-weighted degrees. *)
let apply t x y =
  let nx = t.nx and ny = t.ny and g = t.conductance in
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      let id = (j * nx) + i in
      if t.pad.(id) then y.(id) <- x.(id)
      else begin
        let acc = ref 0.0 in
        let couple nid =
          acc := !acc +. (g *. (x.(id) -. (if t.pad.(nid) then 0.0 else x.(nid))))
        in
        if i > 0 then couple (id - 1);
        if i < nx - 1 then couple (id + 1);
        if j > 0 then couple (id - nx);
        if j < ny - 1 then couple (id + nx);
        y.(id) <- !acc
      end
    done
  done

let solve_operator t ~apply_op ~injection =
  let n = num_nodes t in
  (* Conjugate gradient; the grounded Laplacian is SPD on the free nodes
     as long as at least one pad exists (guaranteed by create). *)
  let b = Array.mapi (fun i v -> if t.pad.(i) then 0.0 else v) injection in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy b in
  let ap = Array.make n 0.0 in
  let dot a c =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (a.(i) *. c.(i))
    done;
    !acc
  in
  let rs = ref (dot r r) in
  let rs0 = !rs in
  (* Relative tolerance: the mesh is well conditioned, a few hundred
     iterations at most. *)
  let eps = Float.max 1e-30 (1e-14 *. rs0) in
  let max_iter = 4 * n in
  let rec loop k =
    if !rs < eps || k >= max_iter then ()
    else begin
      apply_op p ap;
      let alpha = !rs /. Float.max eps (dot p ap) in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. (alpha *. p.(i));
        r.(i) <- r.(i) -. (alpha *. ap.(i))
      done;
      let rs' = dot r r in
      let beta = rs' /. !rs in
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. p.(i))
      done;
      rs := rs';
      loop (k + 1)
    end
  in
  loop 0;
  Array.mapi (fun i v -> if t.pad.(i) then 0.0 else v) x

let solve t ~injection =
  if Array.length injection <> num_nodes t then
    invalid_arg "Grid.solve: injection length mismatch";
  solve_operator t ~apply_op:(fun x y -> apply t x y) ~injection

let solve_shifted t ~diag ~injection =
  let n = num_nodes t in
  if Array.length injection <> n then
    invalid_arg "Grid.solve_shifted: injection length mismatch";
  if Array.length diag <> n then
    invalid_arg "Grid.solve_shifted: diag length mismatch";
  if Array.exists (fun d -> d < 0.0) diag then
    invalid_arg "Grid.solve_shifted: negative diagonal entry";
  let apply_op x y =
    apply t x y;
    for i = 0 to n - 1 do
      if not t.pad.(i) then y.(i) <- y.(i) +. (diag.(i) *. x.(i))
    done
  in
  solve_operator t ~apply_op ~injection

let effective_resistance t id =
  let injection = Array.make (num_nodes t) 0.0 in
  injection.(id) <- 1.0;
  (solve t ~injection).(id)
