(** Transient RC power-grid simulation.

    The resistive solve of {!Noise} treats every instant independently;
    on a real rail the decoupling capacitance between V_DD and Gnd
    low-pass-filters the drop.  This module models a uniform decap per
    mesh node and time-steps the grid with backward Euler:

    {v (L + C/dt) v[k+1] = i(t[k+1]) + (C/dt) v[k] v}

    with pads clamped to zero.  Decap smooths and delays the worst drop;
    with zero decap the result converges to the per-instant resistive
    solve. *)

type config = {
  decap_ff : float;  (** fF of decap per non-pad mesh node (default 2000). *)
  dt : float;  (** ps time step (default 5). *)
}

val default_config : config

type result = {
  times : float array;
  worst_drop_mv : float;  (** Max drop over nodes and steps, mV. *)
  worst_node : int;
  worst_time : float;
  envelope_mv : float array;  (** Per step: max drop over nodes, mV. *)
}

val simulate :
  Grid.t -> ?config:config -> injections:Noise.injection list -> unit -> result
(** Simulate from just before the first pulse to one time constant after
    the last.  With no injections the result is all-zero with an empty
    time axis.
    @raise Invalid_argument if [config] has non-positive [dt] or
    negative [decap_ff]. *)

val resistive_reference :
  Grid.t -> injections:Noise.injection list -> times:float array -> float
(** The per-instant resistive worst drop (mV) on the same time axis —
    the zero-decap limit, for comparisons. *)
