module Pwl = Repro_waveform.Pwl

type config = { decap_ff : float; dt : float }

let default_config = { decap_ff = 2000.0; dt = 5.0 }

type result = {
  times : float array;
  worst_drop_mv : float;
  worst_node : int;
  worst_time : float;
  envelope_mv : float array;
}

(* Unit note: node voltages are in uV (uA through Ohm).  The capacitor
   current C dv/dt with C in fF, v in uV and t in ps is 1e-3 uA, hence
   the 1e-3 factor on the equivalent conductance. *)
let cap_conductance ~decap_ff ~dt = 1.0e-3 *. decap_ff /. dt

let span injections =
  List.fold_left
    (fun acc (i : Noise.injection) ->
      match (Pwl.support i.Noise.waveform, acc) with
      | None, acc -> acc
      | Some (a, b), None -> Some (a, b)
      | Some (a, b), Some (lo, hi) -> Some (Float.min a lo, Float.max b hi))
    None injections

let nodal grid injections time =
  let currents = Array.make (Grid.num_nodes grid) 0.0 in
  List.iter
    (fun (i : Noise.injection) ->
      let node = Grid.node_at grid ~x:i.Noise.x ~y:i.Noise.y in
      currents.(node) <- currents.(node) +. Pwl.eval i.Noise.waveform time)
    injections;
  currents

let simulate grid ?(config = default_config) ~injections () =
  if config.dt <= 0.0 then invalid_arg "Transient.simulate: dt <= 0";
  if config.decap_ff < 0.0 then invalid_arg "Transient.simulate: decap < 0";
  match span injections with
  | None ->
    { times = [||]; worst_drop_mv = 0.0; worst_node = 0; worst_time = 0.0;
      envelope_mv = [||] }
  | Some (t0, t1) ->
    let n = Grid.num_nodes grid in
    let g_cap = cap_conductance ~decap_ff:config.decap_ff ~dt:config.dt in
    let diag = Array.make n g_cap in
    (* Run one RC time constant past the last pulse so stored charge
       drains back through the grid. *)
    let settle =
      if g_cap > 0.0 then Float.min 200.0 (10.0 *. config.dt) else 0.0
    in
    let steps =
      max 2 (int_of_float (ceil ((t1 -. t0 +. settle) /. config.dt)) + 1)
    in
    let times =
      Array.init steps (fun k -> t0 +. (config.dt *. float_of_int k))
    in
    let v = ref (Array.make n 0.0) in
    let worst = ref 0.0 and worst_node = ref 0 and worst_time = ref t0 in
    let envelope =
      Array.mapi
        (fun _k time ->
          let rhs = nodal grid injections time in
          for i = 0 to n - 1 do
            if not (Grid.is_pad grid i) then
              rhs.(i) <- rhs.(i) +. (g_cap *. !v.(i))
          done;
          let v' = Grid.solve_shifted grid ~diag ~injection:rhs in
          v := v';
          let step_max = ref 0.0 and step_node = ref 0 in
          Array.iteri
            (fun i d ->
              let a = Float.abs d in
              if a > !step_max then begin
                step_max := a;
                step_node := i
              end)
            v';
          if !step_max > !worst then begin
            worst := !step_max;
            worst_node := !step_node;
            worst_time := time
          end;
          !step_max /. 1000.0)
        times
    in
    {
      times;
      worst_drop_mv = !worst /. 1000.0;
      worst_node = !worst_node;
      worst_time = !worst_time;
      envelope_mv = envelope;
    }

let resistive_reference grid ~injections ~times =
  Noise.rail_noise_mv grid ~injections ~times
