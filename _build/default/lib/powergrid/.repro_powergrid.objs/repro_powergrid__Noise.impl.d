lib/powergrid/noise.ml: Array Float Grid List Repro_waveform
