lib/powergrid/grid.mli:
