lib/powergrid/noise.mli: Grid Repro_waveform
