lib/powergrid/grid.ml: Array Float
