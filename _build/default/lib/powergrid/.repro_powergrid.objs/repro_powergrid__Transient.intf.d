lib/powergrid/transient.mli: Grid Noise
