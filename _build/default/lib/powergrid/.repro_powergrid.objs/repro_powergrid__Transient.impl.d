lib/powergrid/transient.ml: Array Float Grid List Noise Repro_waveform
