module Pwl = Repro_waveform.Pwl

type injection = { x : float; y : float; waveform : Pwl.t }

let nodal_currents grid injections time =
  let currents = Array.make (Grid.num_nodes grid) 0.0 in
  List.iter
    (fun inj ->
      let node = Grid.node_at grid ~x:inj.x ~y:inj.y in
      currents.(node) <- currents.(node) +. Pwl.eval inj.waveform time)
    injections;
  currents

let rail_noise_mv grid ~injections ~times =
  Array.fold_left
    (fun worst time ->
      let injection = nodal_currents grid injections time in
      let drops = Grid.solve grid ~injection in
      let peak = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 drops in
      Float.max worst peak)
    0.0 times
  /. 1000.0

type report = { vdd_noise_mv : float; gnd_noise_mv : float }

let evaluate grid ~vdd ~gnd ~times =
  {
    vdd_noise_mv = rail_noise_mv grid ~injections:vdd ~times;
    gnd_noise_mv = rail_noise_mv grid ~injections:gnd ~times;
  }

let default_times injections ~count =
  let span =
    List.fold_left
      (fun acc inj ->
        match (Pwl.support inj.waveform, acc) with
        | None, acc -> acc
        | Some (a, b), None -> Some (a, b)
        | Some (a, b), Some (lo, hi) -> Some (Float.min a lo, Float.max b hi))
      None injections
  in
  match span with
  | None -> [||]
  | Some (lo, hi) -> Repro_waveform.Sampling.uniform ~t0:lo ~t1:hi ~count
