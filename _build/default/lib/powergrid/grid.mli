(** Resistive power-grid mesh (the model of Zhu's book used by the paper
    to measure V_DD / Gnd noise).

    The rail is a uniform nx x ny mesh of nodes over the die, connected to
    4-neighbours through equal segment resistances; pad nodes are ideal
    voltage sources (zero drop).  Each of the V_DD and Gnd rails is one
    such mesh; by symmetry a single structure serves both (currents drawn
    from V_DD produce a positive drop, currents dumped into Gnd produce a
    positive bounce). *)

type t

val create :
  die_side:float ->
  ?nx:int ->
  ?ny:int ->
  ?segment_res:float ->
  ?pad_stride:int ->
  unit ->
  t
(** Mesh over a square die.  Defaults: 16 x 16 nodes, 0.5 Ohm per
    segment, pads every 8 nodes along the boundary (and the four
    corners).
    @raise Invalid_argument if dimensions are smaller than 2 or values
    non-positive. *)

val num_nodes : t -> int

val die_side : t -> float

val node_at : t -> x:float -> y:float -> int
(** Mesh node closest to a die position (positions are clamped onto the
    die). *)

val position : t -> int -> float * float
(** Die coordinates of a mesh node. *)

val is_pad : t -> int -> bool

val solve : t -> injection:float array -> float array
(** [solve t ~injection] returns the voltage drop (uV when injections are
    uA and segment resistance is in Ohm) at every node for the given
    nodal current draw, with pads held at zero, by conjugate gradient on
    the mesh Laplacian.
    @raise Invalid_argument if the injection length differs from
    [num_nodes]. *)

val solve_shifted : t -> diag:float array -> injection:float array -> float array
(** [solve_shifted t ~diag ~injection] solves [(L + D) v = injection]
    where [L] is the grounded mesh Laplacian and [D] the given
    non-negative diagonal (pads stay clamped at zero) — the linear
    system of one backward-Euler transient step.
    @raise Invalid_argument on length mismatches or negative diagonal
    entries. *)

val effective_resistance : t -> int -> float
(** Drop at node [i] per unit current injected at [i] (Ohm) — a quick
    severity measure used in tests. *)
