(** Transient power-grid noise evaluation.

    Plays the role of the paper's HSPICE power-grid simulation: the
    current pulse of every clock buffering element is injected at its
    nearest mesh node, the resistive grid is solved at a set of time
    samples, and the reported V_DD (resp. Gnd) noise is the worst voltage
    drop (resp. bounce) seen at any node over all samples — the
    "maximum voltage fluctuation" of Table V. *)

type injection = {
  x : float;  (** um position of the drawing cell. *)
  y : float;
  waveform : Repro_waveform.Pwl.t;  (** uA over ps on this rail. *)
}

val rail_noise_mv :
  Grid.t -> injections:injection list -> times:float array -> float
(** Worst voltage fluctuation (mV) on one rail: for each sample time the
    grid is solved with the instantaneous currents and the maximal nodal
    drop is taken; the result is the max over samples.  With currents in
    uA and segment resistances in Ohm the drops come out in uV and are
    converted to mV. *)

type report = {
  vdd_noise_mv : float;
  gnd_noise_mv : float;
}

val evaluate :
  Grid.t ->
  vdd:injection list ->
  gnd:injection list ->
  times:float array ->
  report
(** Both rails at once (each rail is an independent mesh by symmetry). *)

val default_times : injection list -> count:int -> float array
(** A uniform time grid covering the union of the injection supports
    ([count] samples; empty when there are no injections). *)
