(** Zero-skew buffered clock tree synthesis.

    Substitutes the paper's Synopsys IC Compiler flow.  The pipeline is:

    + build the abstract topology by geometric bisection, choosing the
      branching factor so that the internal-node count does not exceed
      the requested budget;
    + spend the remaining internal-node budget on repeater chains spread
      evenly over the leaf edges (the ISPD'09 benchmarks have more
      internal nodes than leaves);
    + size internal buffers bottom-up against their capacitive load;
    + equalize sink arrival times by iterative wire snaking on the leaf
      nets until the skew target is met or the iteration budget runs out.

    The result is a {!Repro_clocktree.Tree.t} whose nominal skew is a few
    ps, comparable to the "<10 ps" zero-skew trees of the paper. *)

type options = {
  leaf_cell : Repro_cell.Cell.t;  (** Initial leaf cell (BUF_X8). *)
  target_skew : float;  (** ps; stop snaking below this (default 4). *)
  max_iterations : int;  (** Snaking iterations (default 60). *)
  max_snake : float;  (** um cap on any single snaked net (default 4000). *)
}

val default_options : options

val level_sizes : internals:int -> leaves:int -> int list
(** Internal-buffer level sizes, root level (always 1) first, summing to
    exactly [internals]; each level is at most as large as the level
    below it.  Exposed for tests and diagnostics.
    @raise Invalid_argument on non-positive arguments. *)

val build :
  ?options:options ->
  rng:Repro_util.Rng.t ->
  Placement.sink array ->
  internals:int ->
  Repro_clocktree.Tree.t
(** Structure and sizing only — no skew equalization.
    @raise Invalid_argument if [internals < 1] or there are no sinks. *)

val equalize_skew : ?options:options -> Repro_clocktree.Tree.t -> Repro_clocktree.Tree.t
(** Iterative leaf-net snaking under the default assignment and nominal
    environment. *)

val synthesize :
  ?options:options ->
  rng:Repro_util.Rng.t ->
  Placement.sink array ->
  internals:int ->
  Repro_clocktree.Tree.t
(** [build] followed by [equalize_skew]. *)

val nominal_skew : Repro_clocktree.Tree.t -> float
(** Skew of the tree under its default assignment at 1.1 V. *)
