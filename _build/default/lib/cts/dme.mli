(** Deferred-merge-embedding (DME) style zero-skew synthesis.

    The classic construction of Chao/Hsu/Wong: merge subtrees bottom-up
    over a binary topology, splitting each merging wire's length so the
    two sides' Elmore delays match exactly; when one side is slower than
    the other even with a zero-length stub, the fast side's wire is
    detoured (snaked) by the closed-form length that restores balance.
    Every merge point receives a buffer.

    This is an alternative to {!Synthesis} (level-balanced construction
    plus iterative snaking): DME balances {e by construction}, produces
    binary trees (n-1 internal nodes for n sinks), and demonstrates that
    the optimizers are agnostic to how the zero-skew tree was obtained. *)

val merge_split :
  distance:float ->
  delay_a:float ->
  cap_a:float ->
  delay_b:float ->
  cap_b:float ->
  float * float
(** [(la, lb)] wire lengths from the merge point to subtrees a and b:
    [la + lb >= distance] (equality unless a detour was needed) and the
    Elmore-balanced delays agree to first order.  Exposed for tests.
    @raise Invalid_argument on negative inputs. *)

val synthesize :
  ?buffer:Repro_cell.Cell.t ->
  Placement.sink array ->
  Repro_clocktree.Tree.t
(** Build the DME tree over the binary geometric bisection of the sinks
    ([buffer] defaults to BUF_X16 everywhere; leaves use BUF_X8).  The
    resulting tree has exactly [2n - 1] buffering nodes for [n >= 2]
    sinks.
    @raise Invalid_argument on an empty sink set. *)

val nominal_skew : Repro_clocktree.Tree.t -> float
(** Alias of {!Synthesis.nominal_skew} for convenience. *)
