(** Voltage islands and power modes (Sec. VI).

    A multi-power-mode design partitions the die into voltage islands; a
    {e power mode} assigns each island a supply voltage.  The paper's
    experiments use 4-10 power domains, each switchable between 0.9 V
    and 1.1 V, and 4 power modes. *)

type t
(** A partition of a die into rectangular islands (a grid). *)

val grid : die_side:float -> count:int -> t
(** Partition a square die into [count] islands, laid out on the most
    square grid that covers it (e.g. 6 islands -> 3 x 2).
    @raise Invalid_argument if [count < 1] or [die_side <= 0]. *)

val count : t -> int

val island_of : t -> x:float -> y:float -> int
(** Island index containing a point (points outside the die are clamped
    onto it). *)

type mode = float array
(** Supply voltage per island; length must equal [count]. *)

val uniform_mode : t -> vdd:float -> mode

val random_modes :
  Repro_util.Rng.t -> t -> num_modes:int -> ?levels:float list -> unit -> mode array
(** [num_modes] modes with island supplies drawn from [levels]
    (default [\[0.9; 1.1\]]).  The first mode is all-nominal (1.1 V),
    matching the paper's examples where M1 is the fast mode. *)

val vdd_of_node : t -> mode -> Repro_clocktree.Tree.node -> float
(** Supply of the island a tree node is placed in — plugs directly into
    {!Repro_clocktree.Timing.env}. *)
