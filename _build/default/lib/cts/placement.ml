module Rng = Repro_util.Rng

type die = { width : float; height : float }

type sink = { x : float; y : float; cap : float }

let square_die side = { width = side; height = side }

let random_cap rng (lo, hi) = Rng.uniform rng ~lo ~hi

let random_sinks rng die ~count ?(cap_range = (10.0, 18.0)) () =
  if count < 1 then invalid_arg "Placement.random_sinks: count < 1";
  Array.init count (fun _ ->
      {
        x = Rng.float rng ~bound:die.width;
        y = Rng.float rng ~bound:die.height;
        cap = random_cap rng cap_range;
      })

let clamp lo hi v = Float.max lo (Float.min hi v)

let clustered_sinks rng die ~count ~clusters ?(cap_range = (10.0, 18.0)) () =
  if count < 1 then invalid_arg "Placement.clustered_sinks: count < 1";
  if clusters < 1 then invalid_arg "Placement.clustered_sinks: clusters < 1";
  let centres =
    Array.init clusters (fun _ ->
        (Rng.float rng ~bound:die.width, Rng.float rng ~bound:die.height))
  in
  let spread = 0.12 *. Float.min die.width die.height in
  Array.init count (fun _ ->
      let cx, cy = centres.(Rng.int rng ~bound:clusters) in
      {
        x = clamp 0.0 die.width (Rng.gaussian rng ~mu:cx ~sigma:spread);
        y = clamp 0.0 die.height (Rng.gaussian rng ~mu:cy ~sigma:spread);
        cap = random_cap rng cap_range;
      })

let bounding_box sinks =
  if Array.length sinks = 0 then
    invalid_arg "Placement.bounding_box: empty sink set";
  Array.fold_left
    (fun (x0, y0, x1, y1) s ->
      (Float.min x0 s.x, Float.min y0 s.y, Float.max x1 s.x, Float.max y1 s.y))
    (sinks.(0).x, sinks.(0).y, sinks.(0).x, sinks.(0).y)
    sinks
