(** Abstract clock-tree topology generation.

    The topology is built by recursive geometric bisection of the sink
    set, alternating median cuts in x and y — the classic means-and-
    medians construction.  Every topology leaf owns exactly one sink
    (one leaf buffering element); internal taps sit at the centroid of
    their children.  Long-route repeater chains (single-child internal
    nodes) can be grafted afterwards to reach a prescribed internal-node
    count, mirroring the deep buffer chains of the ISPD'09 trees. *)

type t =
  | Tap of { x : float; y : float; children : t list }
  | Sink_leaf of { index : int; x : float; y : float }
      (** [index] refers into the originating sink array. *)

val bisect : Placement.sink array -> branching:int -> t
(** Recursively split the sinks into at most [branching] child groups per
    tap until each group is a single sink.
    @raise Invalid_argument if [branching < 2] or the sink set is empty. *)

val internal_count : t -> int
(** Number of taps (future internal buffering nodes). *)

val leaf_count : t -> int

val add_repeaters : Repro_util.Rng.t -> t -> extra:int -> t
(** Insert [extra] single-child repeater taps, placed at the midpoint of
    the longest parent-child edges first.
    @raise Invalid_argument if [extra < 0]. *)

val with_internal_count : Repro_util.Rng.t -> Placement.sink array -> internals:int -> t
(** Build a topology whose internal-node count is exactly [internals]:
    choose the smallest branching factor whose bisection does not exceed
    the target, then pad with repeaters.
    @raise Invalid_argument if [internals < 1]. *)

val budgeted : Placement.sink array -> taps:int -> t
(** Build a topology that consumes {e exactly} [min taps (max 1 (n-1))]
    taps (internal nodes), where [n] is the sink count: the budget is
    split proportionally across recursive geometric bisections, and a
    subtree whose budget runs out attaches its sinks directly to its
    tap.  This produces the natural balanced structure for any
    (leaves, internals) pair of the benchmark suite.
    @raise Invalid_argument if [taps < 1] or the sink set is empty. *)
