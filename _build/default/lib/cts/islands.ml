module Rng = Repro_util.Rng

type t = { die_side : float; cols : int; rows : int }

let grid ~die_side ~count =
  if count < 1 then invalid_arg "Islands.grid: count < 1";
  if die_side <= 0.0 then invalid_arg "Islands.grid: die_side <= 0";
  (* Most-square factorization cols x rows >= count with cols*rows minimal
     would leave unused cells; instead pick cols = ceil(sqrt count) and
     rows = ceil(count / cols), then fold the trailing cells onto the last
     island so exactly [count] islands tile the die. *)
  let cols = int_of_float (ceil (sqrt (float_of_int count))) in
  let rows = (count + cols - 1) / cols in
  { die_side; cols; rows }

let count t = t.cols * t.rows

let island_of t ~x ~y =
  let clamp v = Float.max 0.0 (Float.min (t.die_side -. 1e-9) v) in
  let cx =
    int_of_float (clamp x /. t.die_side *. float_of_int t.cols)
  in
  let cy =
    int_of_float (clamp y /. t.die_side *. float_of_int t.rows)
  in
  (cy * t.cols) + cx

type mode = float array

let uniform_mode t ~vdd = Array.make (count t) vdd

let random_modes rng t ~num_modes ?(levels = [ 0.9; 1.1 ]) () =
  if num_modes < 1 then invalid_arg "Islands.random_modes: num_modes < 1";
  Array.init num_modes (fun m ->
      if m = 0 then uniform_mode t ~vdd:1.1
      else Array.init (count t) (fun _ -> Rng.pick rng levels))

let vdd_of_node t mode nd =
  if Array.length mode <> count t then
    invalid_arg "Islands.vdd_of_node: mode length mismatch";
  mode.(island_of t ~x:nd.Repro_clocktree.Tree.x ~y:nd.Repro_clocktree.Tree.y)
