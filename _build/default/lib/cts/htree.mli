(** H-tree (quad-fractal) clock distribution.

    The textbook regular structure: the root drives four quadrant taps,
    each tap recursively drives its own four quadrants, [levels] deep.
    Sinks attach to the leaf tap covering their position (the tap's leaf
    buffer drives their combined pin load); taps that end up with no
    sinks are pruned.  The structure is perfectly symmetric, so only tap
    load imbalance causes skew; a final {!Synthesis.equalize_skew} pass
    polishes that away. *)

val tap_positions : die_side:float -> levels:int -> (float * float) array
(** The [4^levels] leaf-tap centres of the fractal over a square die.
    @raise Invalid_argument if [levels < 0] or the side is
    non-positive. *)

val synthesize :
  ?leaf_cell:Repro_cell.Cell.t ->
  die_side:float ->
  levels:int ->
  Placement.sink array ->
  Repro_clocktree.Tree.t
(** Build the pruned H-tree over the sinks ([leaf_cell] defaults to
    BUF_X8; internal buffers are sized per level).
    @raise Invalid_argument if there are no sinks or [levels < 1]. *)
