module Cell = Repro_cell.Cell
module Library = Repro_cell.Library
module Tree = Repro_clocktree.Tree
module Wire = Repro_clocktree.Wire

let tap_positions ~die_side ~levels =
  if levels < 0 then invalid_arg "Htree.tap_positions: levels < 0";
  if die_side <= 0.0 then invalid_arg "Htree.tap_positions: non-positive die";
  let rec expand centres k =
    if k = 0 then centres
    else begin
      let offset = die_side /. Float.pow 2.0 (float_of_int (levels - k + 2)) in
      let next =
        List.concat_map
          (fun (x, y) ->
            [ (x -. offset, y -. offset); (x +. offset, y -. offset);
              (x -. offset, y +. offset); (x +. offset, y +. offset) ])
          centres
      in
      expand next (k - 1)
    end
  in
  Array.of_list (expand [ (die_side /. 2.0, die_side /. 2.0) ] levels)

(* Quadrant index of a point relative to a centre. *)
let quadrant ~cx ~cy ~x ~y =
  (if y >= cy then 2 else 0) + if x >= cx then 1 else 0

(* Pruned fractal structure before node-id assignment. *)
type plan = Pleaf of float * float * float | Pnode of float * float * plan list

let synthesize ?(leaf_cell = Library.buf 8) ~die_side ~levels sinks =
  if levels < 1 then invalid_arg "Htree.synthesize: levels < 1";
  if Array.length sinks = 0 then invalid_arg "Htree.synthesize: no sinks";
  (* Recursive build: returns None when no sink lives in the region. *)
  let nodes = ref [] in
  let count = ref 0 in
  let emit ~parent ~children ~kind ~x ~y ~wire_len ~sink_cap ~cell =
    let id = !count in
    incr count;
    nodes :=
      (id, parent, children, kind, x, y, wire_len, sink_cap, cell) :: !nodes;
    id
  in
  (* First pass: recursively decide the structure functionally. *)
  let rec plan cx cy half level members =
    if Array.length members = 0 then None
    else if level = 0 then
      let cap =
        Array.fold_left (fun a i -> a +. sinks.(i).Placement.cap) 0.0 members
      in
      Some (Pleaf (cx, cy, cap))
    else begin
      let quads = [| []; []; []; [] |] in
      Array.iter
        (fun i ->
          let q =
            quadrant ~cx ~cy ~x:sinks.(i).Placement.x ~y:sinks.(i).Placement.y
          in
          quads.(q) <- i :: quads.(q))
        members;
      let offset = half /. 2.0 in
      let centres =
        [| (cx -. offset, cy -. offset); (cx +. offset, cy -. offset);
           (cx -. offset, cy +. offset); (cx +. offset, cy +. offset) |]
      in
      let children =
        List.filter_map
          (fun q ->
            let qx, qy = centres.(q) in
            plan qx qy offset (level - 1) (Array.of_list quads.(q)))
          [ 0; 1; 2; 3 ]
      in
      match children with
      | [] -> None
      | _ :: _ -> Some (Pnode (cx, cy, children))
    end
  in
  let centre = die_side /. 2.0 in
  let root_plan =
    match
      plan centre centre (die_side /. 2.0) levels
        (Array.init (Array.length sinks) (fun i -> i))
    with
    | Some p -> p
    | None -> assert false (* sinks is non-empty *)
  in
  (* Second pass: emit nodes, sizing internal buffers by level. *)
  let drive_for_level level = if level >= 2 then 16 else 8 in
  let rec emit_plan parent px py level = function
    | Pleaf (x, y, cap) ->
      ignore
        (emit ~parent ~children:[] ~kind:Tree.Leaf ~x ~y
           ~wire_len:(Float.abs (x -. px) +. Float.abs (y -. py))
           ~sink_cap:cap ~cell:leaf_cell)
    | Pnode (x, y, children) ->
      let id =
        emit ~parent ~children:[] ~kind:Tree.Internal ~x ~y
          ~wire_len:(Float.abs (x -. px) +. Float.abs (y -. py))
          ~sink_cap:0.0
          ~cell:(Library.buf (drive_for_level level))
      in
      List.iter (emit_plan (Some id) x y (level - 1)) children
  in
  (match root_plan with
  | Pleaf _ ->
    (* Degenerate: everything under one tap — wrap in a root driver. *)
    let id =
      emit ~parent:None ~children:[] ~kind:Tree.Internal ~x:centre ~y:centre
        ~wire_len:0.0 ~sink_cap:0.0 ~cell:(Library.buf 16)
    in
    emit_plan (Some id) centre centre 0 root_plan
  | Pnode _ -> emit_plan None centre centre levels root_plan);
  (* Materialize, wiring children lists. *)
  let arr = Array.of_list (List.rev !nodes) in
  let children = Array.make (Array.length arr) [] in
  Array.iter
    (fun (id, parent, _, _, _, _, _, _, _) ->
      match parent with
      | Some p -> children.(p) <- id :: children.(p)
      | None -> ())
    arr;
  let tree_nodes =
    Array.map
      (fun (id, parent, _, kind, x, y, wire_len, sink_cap, cell) ->
        {
          Tree.id;
          parent;
          children = List.rev children.(id);
          kind;
          x;
          y;
          wire = Wire.of_length wire_len;
          sink_cap;
          default_cell = cell;
        })
      arr
  in
  (* The fractal is symmetric, but tap loads are not: polish the residual
     load-imbalance skew with the standard snaking pass. *)
  Synthesis.equalize_skew (Tree.create tree_nodes)
