module Cell = Repro_cell.Cell
module Library = Repro_cell.Library
module Electrical = Repro_cell.Electrical
module Tree = Repro_clocktree.Tree
module Wire = Repro_clocktree.Wire

(* Elmore delay of a wire of length [l] into a lumped load [cap]. *)
let wire_delay l ~cap =
  Wire.res_per_um *. l *. ((Wire.cap_per_um *. l /. 2.0) +. cap)

(* Length whose wire delay into [cap] equals [target] (>= 0). *)
let length_for target ~cap =
  if target <= 0.0 then 0.0
  else begin
    let a = Wire.res_per_um *. Wire.cap_per_um /. 2.0 in
    let b = Wire.res_per_um *. cap in
    ((-.b) +. sqrt ((b *. b) +. (4.0 *. a *. target))) /. (2.0 *. a)
  end

let merge_split ~distance ~delay_a ~cap_a ~delay_b ~cap_b =
  if distance < 0.0 || cap_a < 0.0 || cap_b < 0.0 then
    invalid_arg "Dme.merge_split: negative input";
  let balance la =
    let lb = distance -. la in
    delay_a +. wire_delay la ~cap:cap_a
    -. (delay_b +. wire_delay lb ~cap:cap_b)
  in
  if balance 0.0 >= 0.0 then
    (* a is slower even with a zero stub: detour b's wire. *)
    (0.0, length_for (delay_a -. delay_b) ~cap:cap_b)
  else if balance distance <= 0.0 then
    (* b is slower even with the whole wire on a's side. *)
    (length_for (delay_b -. delay_a) ~cap:cap_a, 0.0)
  else begin
    (* balance is continuous and increasing in la: bisect. *)
    let rec bisect lo hi k =
      if k = 0 then 0.5 *. (lo +. hi)
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if balance mid >= 0.0 then bisect lo mid (k - 1)
        else bisect mid hi (k - 1)
      end
    in
    let la = bisect 0.0 distance 60 in
    (la, distance -. la)
  end

(* A merged subtree: the buffer at its root has its input at (x, y);
   [delay] spans from that input to the slowest sink below. *)
type subtree = {
  x : float;
  y : float;
  delay : float;
  node : int;  (** Proto index of the subtree root. *)
}

type proto = {
  mutable parent : int option;
  mutable children : int list;
  kind : Tree.kind;
  px : float;
  py : float;
  mutable wire_len : float;
  sink_cap : float;
  cell : Cell.t;
}

let vdd = Electrical.vdd_nominal

let synthesize ?(buffer = Library.buf 16) sinks =
  let n = Array.length sinks in
  if n = 0 then invalid_arg "Dme.synthesize: no sinks";
  let leaf_cell = Library.buf 8 in
  let protos : (int, proto) Hashtbl.t = Hashtbl.create 64 in
  let count = ref 0 in
  let fresh ~kind ~x ~y ~sink_cap ~cell =
    let id = !count in
    incr count;
    Hashtbl.replace protos id
      { parent = None; children = []; kind; px = x; py = y; wire_len = 0.0;
        sink_cap; cell };
    id
  in
  let proto id = Hashtbl.find protos id in
  let leaf_subtree i =
    let s = sinks.(i) in
    let node =
      fresh ~kind:Tree.Leaf ~x:s.Placement.x ~y:s.Placement.y
        ~sink_cap:s.Placement.cap ~cell:leaf_cell
    in
    {
      x = s.Placement.x;
      y = s.Placement.y;
      delay =
        Electrical.delay leaf_cell ~vdd ~load:s.Placement.cap
          ~edge:Electrical.Rising ();
      node;
    }
  in
  let set_edge ~parent_id ~child ~wire_len =
    let pc = proto parent_id and cc = proto child in
    cc.parent <- Some parent_id;
    cc.wire_len <- wire_len;
    pc.children <- child :: pc.children
  in
  (* Input capacitance presented by a subtree root. *)
  let leafish_cap sub = (proto sub.node).cell.Cell.input_cap in
  (* Merge two subtrees: balance the wire split, place the parent buffer
     at the split point along the (straightened) a-b segment. *)
  let merge a b =
    let distance = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y) in
    let cap_a = leafish_cap a and cap_b = leafish_cap b in
    let la, lb = merge_split ~distance ~delay_a:a.delay ~cap_a ~delay_b:b.delay ~cap_b in
    let frac = if la +. lb > 0.0 then la /. (la +. lb) else 0.5 in
    let x = a.x +. (frac *. (b.x -. a.x)) in
    let y = a.y +. (frac *. (b.y -. a.y)) in
    let node = fresh ~kind:Tree.Internal ~x ~y ~sink_cap:0.0 ~cell:buffer in
    set_edge ~parent_id:node ~child:a.node ~wire_len:la;
    set_edge ~parent_id:node ~child:b.node ~wire_len:lb;
    let load =
      (Wire.cap_per_um *. (la +. lb)) +. cap_a +. cap_b
    in
    let buf_delay = Electrical.delay buffer ~vdd ~load ~edge:Electrical.Rising () in
    let child_delay =
      (* Balanced: either branch gives (to first order) the same value. *)
      Float.max
        (wire_delay la ~cap:cap_a +. a.delay)
        (wire_delay lb ~cap:cap_b +. b.delay)
    in
    { x; y; delay = buf_delay +. child_delay; node }
  in
  (* Bottom-up merging over the binary geometric bisection: recursively
     split the sink set and merge the two halves' subtrees. *)
  let rec build indices =
    match Array.length indices with
    | 1 -> leaf_subtree indices.(0)
    | m ->
      let xs = Array.map (fun i -> sinks.(i).Placement.x) indices in
      let ys = Array.map (fun i -> sinks.(i).Placement.y) indices in
      let x0, x1 = Repro_util.Stats.min_max xs in
      let y0, y1 = Repro_util.Stats.min_max ys in
      let key =
        if x1 -. x0 >= y1 -. y0 then fun i -> sinks.(i).Placement.x
        else fun i -> sinks.(i).Placement.y
      in
      let sorted = Array.copy indices in
      Array.sort (fun a b -> compare (key a) (key b)) sorted;
      let h = m / 2 in
      merge (build (Array.sub sorted 0 h)) (build (Array.sub sorted h (m - h)))
  in
  let root = build (Array.init n (fun i -> i)) in
  ignore root;
  let arr = Array.init !count proto in
  let nodes =
    Array.mapi
      (fun id p ->
        {
          Tree.id;
          parent = p.parent;
          children = p.children;
          kind = p.kind;
          x = p.px;
          y = p.py;
          wire = Wire.of_length p.wire_len;
          sink_cap = p.sink_cap;
          default_cell = p.cell;
        })
      arr
  in
  Tree.create nodes

let nominal_skew = Synthesis.nominal_skew
