(** Sink placement for synthetic benchmark generation.

    The paper's clock trees come from placed ISCAS'89 / ISPD'09 designs.
    We substitute a placement generator: each {e sink} is the location of
    one leaf buffering element together with the lumped clock-pin
    capacitance of the flip-flop group it drives. *)

type die = { width : float; height : float }
(** Die dimensions in um. *)

type sink = {
  x : float;
  y : float;
  cap : float;  (** fF: lumped FF clock-pin load of this leaf. *)
}

val square_die : float -> die
(** [square_die side] is a [side] x [side] um die. *)

val random_sinks :
  Repro_util.Rng.t -> die -> count:int -> ?cap_range:float * float -> unit -> sink array
(** Uniformly placed sinks with loads drawn from [cap_range]
    (default (10.0, 18.0) fF, i.e. roughly 7-12 FF clock pins — heavy
    enough that the leaves dominate the peak current, the premise of
    [24] and the paper).
    @raise Invalid_argument if [count < 1]. *)

val clustered_sinks :
  Repro_util.Rng.t ->
  die ->
  count:int ->
  clusters:int ->
  ?cap_range:float * float ->
  unit ->
  sink array
(** Sinks gathered around [clusters] Gaussian cluster centres — closer to
    real register banks than a uniform spray.
    @raise Invalid_argument if [count < 1] or [clusters < 1]. *)

val bounding_box : sink array -> float * float * float * float
(** [(x0, y0, x1, y1)] of the sink set.
    @raise Invalid_argument on the empty array. *)
