(** Benchmark circuit suite.

    Synthetic stand-ins for the circuits of the paper's evaluation
    (Sec. VII-A), reproducing each circuit's published clock-tree
    statistics: total buffering-element count [n], leaf count [|L|], and
    the zone-occupancy averages (4.3 leaves per 50x50 um zone for
    ISCAS'89, 4.9 for ISPD'09, 7.1 for s35932).  Die sizes are chosen so
    that |L| / (die area / zone area) matches those averages.  Every
    benchmark is generated deterministically from its name. *)

type family = Iscas89 | Ispd09

type spec = {
  name : string;
  family : family;
  num_nodes : int;  (** Paper's [n] (column n of Table V). *)
  num_leaves : int;  (** Paper's [|L|]. *)
  die_side : float;  (** um, square die. *)
  clusters : int;  (** Placement cluster count (register banks). *)
  seed : int;
}

val all : spec list
(** The seven circuits of Table V in paper order:
    s13207, s15850, s35932, s38417, s38584, ispd09f31, ispd09f34. *)

val find : string -> spec
(** @raise Not_found for unknown benchmark names. *)

val sinks : spec -> Placement.sink array
(** Deterministic sink placement for the benchmark. *)

val synthesize : ?options:Synthesis.options -> spec -> Repro_clocktree.Tree.t
(** Generate the zero-skew clock tree for the benchmark.  The resulting
    tree has exactly [num_nodes] buffering elements, [num_leaves] of them
    leaves. *)

val zone_side : float
(** 50 um — the empirically chosen zone side of Sec. VII-A. *)
