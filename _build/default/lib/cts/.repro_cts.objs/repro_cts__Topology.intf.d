lib/cts/topology.mli: Placement Repro_util
