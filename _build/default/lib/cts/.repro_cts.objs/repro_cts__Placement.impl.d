lib/cts/placement.ml: Array Float Repro_util
