lib/cts/islands.mli: Repro_clocktree Repro_util
