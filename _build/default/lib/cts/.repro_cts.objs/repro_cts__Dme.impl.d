lib/cts/dme.ml: Array Float Hashtbl Placement Repro_cell Repro_clocktree Repro_util Synthesis
