lib/cts/benchmarks.mli: Placement Repro_clocktree Synthesis
