lib/cts/synthesis.ml: Array Float List Placement Repro_cell Repro_clocktree Repro_util
