lib/cts/placement.mli: Repro_util
