lib/cts/islands.ml: Array Float Repro_clocktree Repro_util
