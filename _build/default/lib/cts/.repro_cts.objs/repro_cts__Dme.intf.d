lib/cts/dme.mli: Placement Repro_cell Repro_clocktree
