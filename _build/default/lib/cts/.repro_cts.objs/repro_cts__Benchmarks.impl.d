lib/cts/benchmarks.ml: List Placement Repro_util String Synthesis
