lib/cts/topology.ml: Array Float List Placement Repro_util
