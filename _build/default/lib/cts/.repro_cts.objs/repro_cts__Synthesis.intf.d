lib/cts/synthesis.mli: Placement Repro_cell Repro_clocktree Repro_util
