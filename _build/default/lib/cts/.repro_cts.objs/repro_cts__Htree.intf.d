lib/cts/htree.mli: Placement Repro_cell Repro_clocktree
