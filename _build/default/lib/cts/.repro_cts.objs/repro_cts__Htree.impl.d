lib/cts/htree.ml: Array Float List Placement Repro_cell Repro_clocktree Synthesis
