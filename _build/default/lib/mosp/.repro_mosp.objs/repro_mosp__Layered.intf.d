lib/mosp/layered.mli:
