lib/mosp/pareto.ml: Array Buffer Float Hashtbl Int64 List
