lib/mosp/warburton.mli: Layered Pareto
