lib/mosp/layered.ml: Array Printf
