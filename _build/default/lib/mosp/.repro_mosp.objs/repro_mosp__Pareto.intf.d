lib/mosp/pareto.mli:
