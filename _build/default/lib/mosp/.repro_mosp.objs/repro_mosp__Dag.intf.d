lib/mosp/dag.mli: Layered
