lib/mosp/dag.ml: Array Float Layered List Pareto Queue
