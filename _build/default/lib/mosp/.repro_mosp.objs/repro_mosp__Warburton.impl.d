lib/mosp/warburton.ml: Array Float Layered List Pareto
