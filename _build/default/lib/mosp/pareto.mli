(** Pareto label sets for multiobjective dynamic programming.

    A label couples a cost vector with the (reversed) list of choices
    that produced it.  Label sets are kept free of dominated entries;
    the Warburton-style ε-grid pruning additionally keeps at most one
    label per grid cell, which is the mechanism that turns the
    exponential Pareto enumeration into a fully polynomial
    approximation scheme. *)

type label = {
  cost : float array;
  choices_rev : int list;  (** Most recent row's choice first. *)
}

val dominates : float array -> float array -> bool
(** [dominates a b] iff [a] is component-wise <= [b].  (Every vector
    dominates itself.) *)

val insert : label list -> label -> label list
(** Insert a label, dropping it if dominated and evicting the labels it
    dominates. *)

val non_dominated : label list -> label list
(** Reduce a list to its non-dominated subset (keeps first occurrences). *)

val grid_prune : deltas:float array -> label list -> label list
(** Keep one representative per ε-grid cell ([floor (cost_k / deltas.(k))]
    per component); the representative is the cell's label with the
    smallest maximum component.  A component with [deltas.(k) <= 0] is
    kept exact; an all-non-positive [deltas] is the identity. *)

val max_component : label -> float
(** The min-max objective value of a label ([0.] for dimension 0). *)

val best_min_max : label list -> label option
(** Label with the smallest maximum component, [None] on the empty
    list. *)
