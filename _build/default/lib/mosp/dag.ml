type arc = { src : int; dst : int; weight : float array }

type t = {
  n : int;
  dim : int;
  out : (int * float array) list array; (* out.(v) = (dst, weight) *)
  in_degree : int array;
  arcs : int;
  topo : int array;
}

let create ~num_vertices ~arcs =
  if num_vertices < 1 then invalid_arg "Dag.create: num_vertices < 1";
  let dim =
    match arcs with [] -> 0 | a :: _ -> Array.length a.weight
  in
  let out = Array.make num_vertices [] in
  let in_degree = Array.make num_vertices 0 in
  List.iter
    (fun a ->
      if a.src < 0 || a.src >= num_vertices || a.dst < 0 || a.dst >= num_vertices
      then invalid_arg "Dag.create: arc endpoint out of range";
      if a.src = a.dst then invalid_arg "Dag.create: self loop";
      if Array.length a.weight <> dim then
        invalid_arg "Dag.create: inconsistent weight dimension";
      if Array.exists (fun w -> w < 0.0) a.weight then
        invalid_arg "Dag.create: negative weight component";
      out.(a.src) <- (a.dst, a.weight) :: out.(a.src);
      in_degree.(a.dst) <- in_degree.(a.dst) + 1)
    arcs;
  (* Kahn's algorithm: also detects cycles. *)
  let topo = Array.make num_vertices (-1) in
  let deg = Array.copy in_degree in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) deg;
  let pos = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    topo.(!pos) <- v;
    incr pos;
    List.iter
      (fun (u, _) ->
        deg.(u) <- deg.(u) - 1;
        if deg.(u) = 0 then Queue.add u queue)
      out.(v)
  done;
  if !pos <> num_vertices then invalid_arg "Dag.create: graph has a cycle";
  { n = num_vertices; dim; out; in_degree; arcs = List.length arcs; topo }

let num_vertices t = t.n
let num_arcs t = t.arcs
let dimension t = t.dim
let topological_order t = Array.copy t.topo

type path = { vertices : int list; cost : float array }

let check_vertex t name v =
  if v < 0 || v >= t.n then invalid_arg ("Dag." ^ name ^ ": vertex out of range")

(* Per-objective lower bound from each vertex to [dst] (used for the
   ε-grid scaling and the admissible truncation rank): reverse-topo DP
   over component-wise minima. *)
let suffix_minima t ~dst =
  let inf = Array.make t.dim infinity in
  let best = Array.make t.n inf in
  best.(dst) <- Array.make t.dim 0.0;
  for i = t.n - 1 downto 0 do
    let v = t.topo.(i) in
    List.iter
      (fun (u, w) ->
        if best.(u) != inf || u = dst then begin
          let cand =
            Array.init t.dim (fun k -> w.(k) +. best.(u).(k))
          in
          if best.(v) == inf then best.(v) <- cand
          else
            best.(v) <-
              Array.init t.dim (fun k -> Float.min best.(v).(k) cand.(k))
        end)
      t.out.(v)
  done;
  best

let pareto_paths ?(epsilon = 0.01) ?(max_labels = 20_000) t ~src ~dst =
  if epsilon < 0.0 then invalid_arg "Dag.pareto_paths: epsilon < 0";
  if max_labels < 1 then invalid_arg "Dag.pareto_paths: max_labels < 1";
  check_vertex t "pareto_paths" src;
  check_vertex t "pareto_paths" dst;
  if t.dim = 0 then
    if src = dst then [ { vertices = [ src ]; cost = [||] } ] else []
  else begin
    let suffix = suffix_minima t ~dst in
    let reachable v = Float.is_finite suffix.(v).(0) || v = dst in
    let deltas =
      let lb = suffix.(src) in
      Array.map
        (fun l ->
          if Float.is_finite l then epsilon *. l /. float_of_int (t.n + 1)
          else 0.0)
        lb
    in
    (* labels.(v): non-dominated (cost, reversed vertex list) at v. *)
    let labels : Pareto.label list array = Array.make t.n [] in
    labels.(src) <-
      [ { Pareto.cost = Array.make t.dim 0.0; choices_rev = [ src ] } ];
    let truncate v ls =
      if List.length ls <= max_labels then ls
      else begin
        let project (l : Pareto.label) =
          let m = ref 0.0 in
          Array.iteri
            (fun k c ->
              let s = suffix.(v).(k) in
              let x = if Float.is_finite s then c +. s else c in
              if x > !m then m := x)
            l.Pareto.cost;
          !m
        in
        let arr = Array.of_list (List.map (fun l -> (project l, l)) ls) in
        Array.sort (fun ((a : float), _) (b, _) -> compare a b) arr;
        Array.to_list (Array.map snd (Array.sub arr 0 max_labels))
      end
    in
    Array.iter
      (fun v ->
        if labels.(v) <> [] && reachable v then begin
          let pruned = Pareto.grid_prune ~deltas labels.(v) in
          let pruned =
            if t.dim <= 8 && List.length pruned <= 256 then
              Pareto.non_dominated pruned
            else pruned
          in
          let pruned = truncate v pruned in
          labels.(v) <- pruned;
          if v <> dst then
            List.iter
              (fun (u, w) ->
                if reachable u then
                  let extended =
                    List.map
                      (fun (l : Pareto.label) ->
                        {
                          Pareto.cost =
                            Array.init t.dim (fun k -> l.Pareto.cost.(k) +. w.(k));
                          choices_rev = u :: l.Pareto.choices_rev;
                        })
                      labels.(v)
                  in
                  labels.(u) <- List.rev_append extended labels.(u))
              t.out.(v)
        end)
      t.topo;
    List.map
      (fun (l : Pareto.label) ->
        { vertices = List.rev l.Pareto.choices_rev; cost = l.Pareto.cost })
      labels.(dst)
  end

let min_max_path ?epsilon ?max_labels t ~src ~dst =
  match pareto_paths ?epsilon ?max_labels t ~src ~dst with
  | [] -> None
  | paths ->
    let worst p = Array.fold_left Float.max 0.0 p.cost in
    Some
      (List.fold_left
         (fun best p -> if worst p < worst best then p else best)
         (List.hd paths) (List.tl paths))

let of_layered graph =
  let rows = Layered.options graph in
  let dim = Layered.dimension graph in
  let offsets = Array.make (Array.length rows) 0 in
  let counter = ref 1 in
  Array.iteri
    (fun i row ->
      offsets.(i) <- !counter;
      counter := !counter + Array.length row)
    rows;
  let dst = !counter in
  let arcs = ref [] in
  (* src -> first row. *)
  (match Array.length rows with
  | 0 -> arcs := [ { src = 0; dst; weight = Array.copy (Layered.dest_weight graph) } ]
  | nrows ->
    Array.iteri
      (fun c w -> arcs := { src = 0; dst = offsets.(0) + c; weight = Array.copy w } :: !arcs)
      rows.(0);
    for i = 0 to nrows - 2 do
      Array.iteri
        (fun c' w ->
          for c = 0 to Array.length rows.(i) - 1 do
            arcs :=
              { src = offsets.(i) + c; dst = offsets.(i + 1) + c';
                weight = Array.copy w }
              :: !arcs
          done)
        rows.(i + 1)
    done;
    let last = nrows - 1 in
    for c = 0 to Array.length rows.(last) - 1 do
      arcs :=
        { src = offsets.(last) + c; dst;
          weight = Array.copy (Layered.dest_weight graph) }
        :: !arcs
    done);
  ignore dim;
  (create ~num_vertices:(dst + 1) ~arcs:!arcs, 0, dst)
