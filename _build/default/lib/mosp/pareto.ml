type label = { cost : float array; choices_rev : int list }

let dominates a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  Array.length b = n && go 0

let insert labels candidate =
  if List.exists (fun l -> dominates l.cost candidate.cost) labels then labels
  else
    candidate :: List.filter (fun l -> not (dominates candidate.cost l.cost)) labels

let non_dominated labels = List.fold_left insert [] labels

let max_component l = Array.fold_left Float.max 0.0 l.cost

let grid_prune ~deltas labels =
  if Array.for_all (fun d -> d <= 0.0) deltas then labels
  else begin
    let table = Hashtbl.create 64 in
    (* Keys are packed byte strings: strings hash and compare fast,
       unlike long boxed lists whose polymorphic hash samples only a
       prefix (catastrophic collisions). *)
    let bucket l =
      let buf = Buffer.create (8 * Array.length l.cost) in
      Array.iteri
        (fun k c ->
          let d = deltas.(k) in
          let v =
            if d <= 0.0 then Int64.bits_of_float c
            else Int64.of_float (floor (c /. d))
          in
          Buffer.add_int64_le buf v)
        l.cost;
      Buffer.contents buf
    in
    let table : (string, label * float) Hashtbl.t = table in
    List.iter
      (fun l ->
        let key = bucket l in
        let mx = max_component l in
        match Hashtbl.find_opt table key with
        | Some (_, emx) when emx <= mx -> ()
        | Some _ | None -> Hashtbl.replace table key (l, mx))
      labels;
    Hashtbl.fold (fun _ (l, _) acc -> l :: acc) table []
  end

let best_min_max labels =
  List.fold_left
    (fun acc l ->
      match acc with
      | None -> Some l
      | Some b -> if max_component l < max_component b then Some l else acc)
    None labels
