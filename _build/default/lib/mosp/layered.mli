(** Layered multiobjective shortest-path graphs.

    This is exactly the graph family produced by Algorithm 1 of the paper
    (WaveMin-to-MOSP conversion): rows 1..R each hold the feasible options
    of one sink, every vertex of row i has an incoming arc from every
    vertex of row i-1 (and from [src] for i = 1), the weight of any arc
    into a vertex is that vertex's own r-dimensional noise vector, and
    the arcs into [dest] all carry the non-leaf noise vector
    (Observation 1).  A src-dest path therefore selects one option per
    row, and its cost is the component-wise sum of the selected vectors
    plus the dest vector. *)

type weight = float array
(** An r-dimensional cost vector; all graphs of one instance share the
    dimension. *)

type t

val create : options:weight array array -> dest_weight:weight -> t
(** [create ~options ~dest_weight] builds the graph whose row [i] has
    [Array.length options.(i)] vertices.
    @raise Invalid_argument if any row is empty, or any weight's
    dimension differs from [dest_weight]'s, or a weight has a negative
    component. *)

val num_rows : t -> int
val dimension : t -> int
val options : t -> weight array array
val dest_weight : t -> weight

val num_vertices : t -> int
(** Option vertices plus the two dummies (src, dest). *)

val num_arcs : t -> int

val path_cost : t -> choices:int array -> weight
(** Cost vector of the path selecting option [choices.(i)] in row [i]
    (including the dest arc).
    @raise Invalid_argument on wrong length or out-of-range choices. *)
