(** Multiobjective shortest paths on general directed acyclic graphs.

    {!Layered} covers the graphs Algorithm 1 produces; this module is
    the general form (Problem 4 of the paper): arbitrary DAGs with
    r-dimensional non-negative arc weights, Pareto label correcting in
    topological order, the same ε-grid rounding as {!Warburton}, and
    min-max path selection.  {!of_layered} embeds a layered instance so
    the two solvers can be cross-checked. *)

type arc = { src : int; dst : int; weight : float array }

type t

val create : num_vertices:int -> arcs:arc list -> t
(** Build and validate a DAG.
    @raise Invalid_argument on out-of-range endpoints, inconsistent
    weight dimensions, negative weight components, self loops, or
    cycles. *)

val num_vertices : t -> int
val num_arcs : t -> int
val dimension : t -> int
(** 0 when there are no arcs. *)

val topological_order : t -> int array

type path = { vertices : int list; cost : float array }
(** [vertices] from source to destination inclusive. *)

val pareto_paths :
  ?epsilon:float -> ?max_labels:int -> t -> src:int -> dst:int -> path list
(** Approximate Pareto-optimal src-dst paths (empty when [dst] is
    unreachable).  Defaults match {!Warburton.pareto_paths}.
    @raise Invalid_argument on bad vertex ids or negative epsilon. *)

val min_max_path :
  ?epsilon:float -> ?max_labels:int -> t -> src:int -> dst:int -> path option
(** The Pareto path minimizing the maximum cost component. *)

val of_layered : Layered.t -> t * int * int
(** Embed a layered instance: returns the DAG and its (src, dst) vertex
    ids.  Vertex numbering: src = 0, then the rows' options in order,
    dst last. *)
