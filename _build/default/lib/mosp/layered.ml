type weight = float array

type t = {
  options : weight array array;
  dest_weight : weight;
  dim : int;
}

let create ~options ~dest_weight =
  let dim = Array.length dest_weight in
  if Array.exists (fun w -> w < 0.0) dest_weight then
    invalid_arg "Layered.create: negative weight component";
  Array.iteri
    (fun i row ->
      if Array.length row = 0 then
        invalid_arg (Printf.sprintf "Layered.create: empty row %d" i);
      Array.iter
        (fun w ->
          if Array.length w <> dim then
            invalid_arg "Layered.create: weight dimension mismatch";
          if Array.exists (fun v -> v < 0.0) w then
            invalid_arg "Layered.create: negative weight component")
        row)
    options;
  { options; dest_weight; dim }

let num_rows t = Array.length t.options
let dimension t = t.dim
let options t = t.options
let dest_weight t = t.dest_weight

let num_vertices t =
  2 + Array.fold_left (fun acc row -> acc + Array.length row) 0 t.options

let num_arcs t =
  (* src -> row 1, complete bipartite between consecutive rows, last row
     -> dest. *)
  let rows = Array.map Array.length t.options in
  let n = Array.length rows in
  if n = 0 then 1
  else begin
    let acc = ref rows.(0) in
    for i = 0 to n - 2 do
      acc := !acc + (rows.(i) * rows.(i + 1))
    done;
    !acc + rows.(n - 1)
  end

let path_cost t ~choices =
  if Array.length choices <> num_rows t then
    invalid_arg "Layered.path_cost: wrong number of choices";
  let cost = Array.copy t.dest_weight in
  Array.iteri
    (fun row choice ->
      let row_opts = t.options.(row) in
      if choice < 0 || choice >= Array.length row_opts then
        invalid_arg "Layered.path_cost: choice out of range";
      let w = row_opts.(choice) in
      for k = 0 to t.dim - 1 do
        cost.(k) <- cost.(k) +. w.(k)
      done)
    choices;
  cost
