module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical

type env = {
  vdd_of : Tree.node -> float;
  mode : int;
  cell_derate : Tree.node_id -> float;
  wire_r_scale : Tree.node_id -> float;
  wire_c_scale : Tree.node_id -> float;
  source_slew : float;
}

let nominal ?(vdd = Electrical.vdd_nominal) ?(mode = 0) () =
  {
    vdd_of = (fun _ -> vdd);
    mode;
    cell_derate = (fun _ -> 1.0);
    wire_r_scale = (fun _ -> 1.0);
    wire_c_scale = (fun _ -> 1.0);
    source_slew = 20.0;
  }

type result = {
  input_arrival : float array;
  input_edge : Electrical.edge array;
  input_slew : float array;
  load : float array;
  sink_arrival : float array;
}

let scaled_wire env nd =
  Wire.scaled nd.Tree.wire ~r_scale:(env.wire_r_scale nd.Tree.id)
    ~c_scale:(env.wire_c_scale nd.Tree.id)

(* Load on a node's cell output: leaf cells drive the FF pins; internal
   cells drive each child's wire plus the child cell's input pin. *)
let node_load tree asg env nd =
  match nd.Tree.kind with
  | Tree.Leaf -> nd.Tree.sink_cap
  | Tree.Internal ->
    List.fold_left
      (fun acc child_id ->
        let child = Tree.node tree child_id in
        let w = scaled_wire env child in
        acc +. w.Wire.cap +. (Assignment.cell asg child_id).Cell.input_cap)
      0.0 nd.Tree.children

let cell_delay asg env nd ~load ~input_slew ~edge =
  let c = Assignment.cell asg nd.Tree.id in
  let vdd = env.vdd_of nd in
  let base = Electrical.delay c ~vdd ~load ~input_slew ~edge () in
  (base *. env.cell_derate nd.Tree.id)
  +. Assignment.extra_delay asg ~mode:env.mode nd.Tree.id

let analyze tree asg env ~edge =
  if env.mode < 0 || env.mode >= Assignment.num_modes asg then
    invalid_arg "Timing.analyze: mode out of range";
  let n = Tree.size tree in
  let input_arrival = Array.make n 0.0 in
  let input_edge = Array.make n edge in
  let input_slew = Array.make n env.source_slew in
  let load = Array.make n 0.0 in
  let sink_arrival = Array.make n Float.nan in
  Tree.iter_down tree (fun nd ->
      let id = nd.Tree.id in
      let l = node_load tree asg env nd in
      load.(id) <- l;
      let here_edge = input_edge.(id) in
      let d =
        cell_delay asg env nd ~load:l ~input_slew:input_slew.(id)
          ~edge:here_edge
      in
      let out_time = input_arrival.(id) +. d in
      let c = Assignment.cell asg id in
      let out_slew =
        Electrical.output_slew c ~vdd:(env.vdd_of nd) ~load:l
          ~input_slew:input_slew.(id) ~edge:here_edge ()
      in
      let out_edge = Electrical.output_edge c here_edge in
      (match nd.Tree.kind with
      | Tree.Leaf -> sink_arrival.(id) <- out_time
      | Tree.Internal -> ());
      List.iter
        (fun child_id ->
          let child = Tree.node tree child_id in
          let w = scaled_wire env child in
          let child_cap = (Assignment.cell asg child_id).Cell.input_cap in
          let wd = Wire.elmore_delay w ~load:child_cap in
          input_arrival.(child_id) <- out_time +. wd;
          input_edge.(child_id) <- out_edge;
          input_slew.(child_id) <- out_slew +. (0.5 *. wd))
        nd.Tree.children);
  { input_arrival; input_edge; input_slew; load; sink_arrival }

let sink_arrivals tree result =
  Array.map
    (fun nd -> (nd.Tree.id, result.sink_arrival.(nd.Tree.id)))
    (Tree.leaves tree)

let skew tree result =
  let arr = sink_arrivals tree result in
  match Array.length arr with
  | 0 -> 0.0
  | _ ->
    let times = Array.map snd arr in
    let lo, hi = Repro_util.Stats.min_max times in
    hi -. lo

let leaf_delay tree asg env result leaf_id candidate =
  let nd = Tree.node tree leaf_id in
  (match nd.Tree.kind with
  | Tree.Leaf -> ()
  | Tree.Internal -> invalid_arg "Timing.leaf_delay: not a leaf");
  let vdd = env.vdd_of nd in
  let base =
    Electrical.delay candidate ~vdd ~load:nd.Tree.sink_cap
      ~input_slew:result.input_slew.(leaf_id)
      ~edge:result.input_edge.(leaf_id) ()
  in
  let extra =
    if Cell.is_adjustable candidate then
      Assignment.extra_delay asg ~mode:env.mode leaf_id
    else 0.0
  in
  (base *. env.cell_derate leaf_id) +. extra
