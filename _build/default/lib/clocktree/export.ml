module Cell = Repro_cell.Cell
module Library = Repro_cell.Library

let to_dot ?assignment tree =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph clock_tree {\n  rankdir=TB;\n";
  Array.iter
    (fun nd ->
      let cell =
        match assignment with
        | Some asg -> Assignment.cell asg nd.Tree.id
        | None -> nd.Tree.default_cell
      in
      (match nd.Tree.kind with
      | Tree.Leaf ->
        let fill =
          match Cell.polarity cell with
          | Cell.Negative -> ", style=filled, fillcolor=lightgrey"
          | Cell.Positive -> ""
        in
        Buffer.add_string b
          (Printf.sprintf
             "  n%d [shape=box, label=\"%d: %s\\n%.1f fF\"%s];\n" nd.Tree.id
             nd.Tree.id cell.Cell.name nd.Tree.sink_cap fill)
      | Tree.Internal ->
        Buffer.add_string b
          (Printf.sprintf "  n%d [label=\"%d: %s\"];\n" nd.Tree.id nd.Tree.id
             cell.Cell.name));
      match nd.Tree.parent with
      | None -> ()
      | Some p ->
        Buffer.add_string b
          (Printf.sprintf "  n%d -> n%d [label=\"%.0f um\"];\n" p nd.Tree.id
             nd.Tree.wire.Wire.length))
    (Tree.nodes tree);
  Buffer.add_string b "}\n";
  Buffer.contents b

let header = "# id parent kind x y wire_len sink_cap cell"

let to_table tree =
  let b = Buffer.create 1024 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  let f = Repro_util.Floats.shortest_string in
  Array.iter
    (fun nd ->
      Buffer.add_string b
        (Printf.sprintf "%d %d %s %s %s %s %s %s\n" nd.Tree.id
           (match nd.Tree.parent with Some p -> p | None -> -1)
           (match nd.Tree.kind with Tree.Leaf -> "leaf" | Tree.Internal -> "internal")
           (f nd.Tree.x) (f nd.Tree.y) (f nd.Tree.wire.Wire.length)
           (f nd.Tree.sink_cap) nd.Tree.default_cell.Cell.name))
    (Tree.nodes tree);
  Buffer.contents b

let of_table input =
  let lines =
    String.split_on_char '\n' input
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) ->
           String.length l > 0 && not (String.length l > 0 && l.[0] = '#'))
  in
  let parse_line (lineno, line) =
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ id; parent; kind; x; y; wire_len; sink_cap; cell ] -> (
      try
        let parent = int_of_string parent in
        Ok
          ( int_of_string id,
            (if parent < 0 then None else Some parent),
            (match kind with
            | "leaf" -> Tree.Leaf
            | "internal" -> Tree.Internal
            | _ -> failwith "bad kind"),
            float_of_string x,
            float_of_string y,
            float_of_string wire_len,
            float_of_string sink_cap,
            Library.find cell )
      with
      | Not_found -> Error (Printf.sprintf "line %d: unknown cell" lineno)
      | Failure _ -> Error (Printf.sprintf "line %d: malformed field" lineno))
    | _ -> Error (Printf.sprintf "line %d: expected 8 fields" lineno)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match parse_line l with
      | Ok row -> collect (row :: acc) rest
      | Error _ as e -> e)
  in
  match collect [] lines with
  | Error e -> Error e
  | Ok rows ->
    let rows =
      List.sort
        (fun (a, _, _, _, _, _, _, _) (b, _, _, _, _, _, _, _) -> compare a b)
        rows
    in
    let n = List.length rows in
    let contiguous =
      List.for_all2
        (fun (id, _, _, _, _, _, _, _) expected -> id = expected)
        rows
        (List.init n (fun i -> i))
    in
    if not contiguous then Error "node ids must be exactly 0..n-1"
    else begin
    let children = Array.make n [] in
    List.iter
      (fun (id, parent, _, _, _, _, _, _) ->
        match parent with
        | Some p when p >= 0 && p < n -> children.(p) <- id :: children.(p)
        | Some _ -> ()
        | None -> ())
      rows;
    let nodes =
      List.map
        (fun (id, parent, kind, x, y, wire_len, sink_cap, cell) ->
          {
            Tree.id;
            parent;
            children = List.rev children.(id);
            kind;
            x;
            y;
            wire = Wire.of_length wire_len;
            sink_cap;
            default_cell = cell;
          })
        rows
    in
    (try Ok (Tree.create (Array.of_list nodes))
     with Invalid_argument msg -> Error msg)
    end

let of_table_exn input =
  match of_table input with
  | Ok tree -> tree
  | Error msg -> failwith ("Export.of_table: " ^ msg)

let save_file path tree =
  let oc = open_out path in
  output_string oc (to_table tree);
  close_out oc

let load_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  of_table contents
