(** Cell assignments for a clock tree.

    An assignment maps every tree node to a concrete buffering cell and,
    for adjustable cells (ADB/ADI), gives the selected capacitor-bank
    delay per power mode.  Polarity assignment and buffer sizing both act
    by replacing the cells of {e leaf} nodes; internal nodes normally
    keep their CTS default.  Assignments are immutable; updates return a
    new value. *)

type t

val default : Tree.t -> num_modes:int -> t
(** Every node carries its [default_cell] and every adjustable setting
    is 0.  @raise Invalid_argument if [num_modes < 1]. *)

val num_modes : t -> int

val cell : t -> Tree.node_id -> Repro_cell.Cell.t

val extra_delay : t -> mode:int -> Tree.node_id -> float
(** The selected additional delay (ps) of an adjustable cell (0 for fixed
    cells).  @raise Invalid_argument on a bad mode index. *)

val set_cell : t -> Tree.node_id -> Repro_cell.Cell.t -> t
(** Replace the cell of one node, resetting its settings to 0. *)

val set_extra_delay : t -> mode:int -> Tree.node_id -> float -> t
(** Select an adjustable delay.
    @raise Invalid_argument if the node's cell is not adjustable or the
    value is not one of its [delay_steps]. *)

val count_leaves : t -> Tree.t -> pred:(Repro_cell.Cell.t -> bool) -> int
(** Number of leaf nodes whose assigned cell satisfies [pred] — used to
    report #inverters, #ADBs, #ADIs. *)

val leaf_cells : t -> Tree.t -> (Tree.node_id * Repro_cell.Cell.t) array
(** The (leaf id, assigned cell) pairs in id order. *)

val total_area : t -> Tree.t -> float
(** Sum of the assigned cells' areas (um^2). *)
