type node_id = int

type kind = Internal | Leaf

type node = {
  id : node_id;
  parent : node_id option;
  children : node_id list;
  kind : kind;
  x : float;
  y : float;
  wire : Wire.t;
  sink_cap : float;
  default_cell : Repro_cell.Cell.t;
}

type t = { arr : node array; root_id : node_id; topo : node_id array }

let validate arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Tree.create: empty node array";
  let root_id = ref None in
  Array.iteri
    (fun i nd ->
      if nd.id <> i then invalid_arg "Tree.create: node id mismatch";
      (match nd.parent with
      | None -> (
        match !root_id with
        | None -> root_id := Some i
        | Some _ -> invalid_arg "Tree.create: multiple roots")
      | Some p ->
        if p < 0 || p >= n then invalid_arg "Tree.create: bad parent id";
        if not (List.mem i arr.(p).children) then
          invalid_arg "Tree.create: parent does not list child");
      List.iter
        (fun c ->
          if c < 0 || c >= n then invalid_arg "Tree.create: bad child id";
          if arr.(c).parent <> Some i then
            invalid_arg "Tree.create: child does not point to parent")
        nd.children;
      match nd.kind with
      | Leaf ->
        if nd.children <> [] then invalid_arg "Tree.create: leaf with children";
        if nd.sink_cap <= 0.0 then
          invalid_arg "Tree.create: leaf needs positive sink capacitance"
      | Internal ->
        if nd.children = [] then
          invalid_arg "Tree.create: internal node without children")
    arr;
  match !root_id with
  | None -> invalid_arg "Tree.create: no root"
  | Some r -> r

let topological arr root_id =
  let n = Array.length arr in
  let order = Array.make n (-1) in
  let pos = ref 0 in
  let rec visit id =
    order.(!pos) <- id;
    incr pos;
    List.iter visit arr.(id).children
  in
  visit root_id;
  if !pos <> n then invalid_arg "Tree.create: disconnected nodes";
  order

let create arr =
  let root_id = validate arr in
  { arr; root_id; topo = topological arr root_id }

let node t id =
  if id < 0 || id >= Array.length t.arr then
    invalid_arg "Tree.node: id out of range";
  t.arr.(id)

let root t = t.arr.(t.root_id)
let size t = Array.length t.arr
let nodes t = t.arr

let leaves t =
  Array.of_list
    (Array.to_list t.arr |> List.filter (fun nd -> nd.kind = Leaf))

let num_leaves t = Array.length (leaves t)

let internals t =
  Array.of_list
    (Array.to_list t.arr |> List.filter (fun nd -> nd.kind = Internal))

let topological_order t = Array.copy t.topo

let depth t id =
  let rec go id acc =
    match t.arr.(id).parent with None -> acc | Some p -> go p (acc + 1)
  in
  go id 0

let iter_down t f = Array.iter (fun id -> f t.arr.(id)) t.topo

let pp_summary fmt t =
  let max_depth =
    Array.fold_left (fun acc nd -> max acc (depth t nd.id)) 0 (leaves t)
  in
  Format.fprintf fmt "clock tree: n=%d, |L|=%d, depth=%d" (size t)
    (num_leaves t) max_depth
