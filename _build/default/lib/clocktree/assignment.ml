module Cell = Repro_cell.Cell

type t = {
  cells : Cell.t array;
  extra : float array array; (* extra.(mode).(node) *)
}

let default tree ~num_modes =
  if num_modes < 1 then invalid_arg "Assignment.default: num_modes < 1";
  let n = Tree.size tree in
  {
    cells = Array.map (fun nd -> nd.Tree.default_cell) (Tree.nodes tree);
    extra = Array.init num_modes (fun _ -> Array.make n 0.0);
  }

let num_modes t = Array.length t.extra

let cell t id = t.cells.(id)

let extra_delay t ~mode id =
  if mode < 0 || mode >= num_modes t then
    invalid_arg "Assignment.extra_delay: bad mode";
  t.extra.(mode).(id)

let set_cell t id new_cell =
  let cells = Array.copy t.cells in
  cells.(id) <- new_cell;
  let extra =
    Array.map
      (fun row ->
        let row = Array.copy row in
        row.(id) <- 0.0;
        row)
      t.extra
  in
  { cells; extra }

let set_extra_delay t ~mode id value =
  if mode < 0 || mode >= num_modes t then
    invalid_arg "Assignment.set_extra_delay: bad mode";
  let c = t.cells.(id) in
  if not (Cell.is_adjustable c) then
    invalid_arg "Assignment.set_extra_delay: cell is not adjustable";
  if not (Array.exists (fun s -> s = value) c.Cell.delay_steps) then
    invalid_arg "Assignment.set_extra_delay: value not in delay steps";
  let extra =
    Array.mapi
      (fun m row ->
        if m = mode then begin
          let row = Array.copy row in
          row.(id) <- value;
          row
        end
        else row)
      t.extra
  in
  { t with extra }

let count_leaves t tree ~pred =
  Array.fold_left
    (fun acc nd -> if pred t.cells.(nd.Tree.id) then acc + 1 else acc)
    0 (Tree.leaves tree)

let leaf_cells t tree =
  Array.map (fun nd -> (nd.Tree.id, t.cells.(nd.Tree.id))) (Tree.leaves tree)

let total_area t _tree =
  Array.fold_left (fun acc c -> acc +. c.Cell.area) 0.0 t.cells
