type t = { length : float; res : float; cap : float }

let res_per_um = 2.0e-3
let cap_per_um = 0.2

let of_length length =
  if length < 0.0 then invalid_arg "Wire.of_length: negative length";
  { length; res = res_per_um *. length; cap = cap_per_um *. length }

let zero = { length = 0.0; res = 0.0; cap = 0.0 }

let manhattan ~x0 ~y0 ~x1 ~y1 =
  of_length (Float.abs (x1 -. x0) +. Float.abs (y1 -. y0))

let elmore_delay w ~load = w.res *. ((w.cap /. 2.0) +. load)

let scaled w ~r_scale ~c_scale =
  { w with res = w.res *. r_scale; cap = w.cap *. c_scale }
