lib/clocktree/wire.mli:
