lib/clocktree/tree_stats.mli: Assignment Format Tree
