lib/clocktree/tree.ml: Array Format List Repro_cell Wire
