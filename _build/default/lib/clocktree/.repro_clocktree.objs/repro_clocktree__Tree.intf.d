lib/clocktree/tree.mli: Format Repro_cell Wire
