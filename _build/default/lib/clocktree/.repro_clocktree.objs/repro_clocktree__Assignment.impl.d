lib/clocktree/assignment.ml: Array Repro_cell Tree
