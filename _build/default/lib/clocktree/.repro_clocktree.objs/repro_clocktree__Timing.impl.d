lib/clocktree/timing.ml: Array Assignment Float List Repro_cell Repro_util Tree Wire
