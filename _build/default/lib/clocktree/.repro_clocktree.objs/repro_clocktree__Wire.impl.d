lib/clocktree/wire.ml: Float
