lib/clocktree/timing.mli: Assignment Repro_cell Tree
