lib/clocktree/export.ml: Array Assignment Buffer List Printf Repro_cell Repro_util String Tree Wire
