lib/clocktree/export.mli: Assignment Tree
