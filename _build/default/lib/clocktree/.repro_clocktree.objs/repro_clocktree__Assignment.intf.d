lib/clocktree/assignment.mli: Repro_cell Tree
