lib/clocktree/tree_stats.ml: Array Assignment Format List Repro_cell Tree Wire
