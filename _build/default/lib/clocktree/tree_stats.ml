module Cell = Repro_cell.Cell

type t = {
  num_nodes : int;
  num_leaves : int;
  num_internal : int;
  max_depth : int;
  total_wirelength : float;
  total_wire_cap : float;
  total_sink_cap : float;
  total_cell_area : float;
  max_fanout : int;
  mean_fanout : float;
  num_inverting_leaves : int;
  num_adjustable : int;
}

let compute ?assignment tree =
  let cell_of nd =
    match assignment with
    | Some asg -> Assignment.cell asg nd.Tree.id
    | None -> nd.Tree.default_cell
  in
  let nodes = Tree.nodes tree in
  let leaves = Tree.leaves tree in
  let internals = Tree.internals tree in
  let fold f init = Array.fold_left f init nodes in
  let total_wirelength = fold (fun a nd -> a +. nd.Tree.wire.Wire.length) 0.0 in
  let total_wire_cap = fold (fun a nd -> a +. nd.Tree.wire.Wire.cap) 0.0 in
  let total_sink_cap = fold (fun a nd -> a +. nd.Tree.sink_cap) 0.0 in
  let total_cell_area = fold (fun a nd -> a +. (cell_of nd).Cell.area) 0.0 in
  let max_fanout =
    Array.fold_left
      (fun a nd -> max a (List.length nd.Tree.children))
      0 internals
  in
  let mean_fanout =
    if Array.length internals = 0 then 0.0
    else
      Array.fold_left
        (fun a nd -> a +. float_of_int (List.length nd.Tree.children))
        0.0 internals
      /. float_of_int (Array.length internals)
  in
  let max_depth =
    Array.fold_left (fun a nd -> max a (Tree.depth tree nd.Tree.id)) 0 leaves
  in
  let num_inverting_leaves =
    Array.fold_left
      (fun a nd -> if Cell.polarity (cell_of nd) = Cell.Negative then a + 1 else a)
      0 leaves
  in
  let num_adjustable =
    fold (fun a nd -> if Cell.is_adjustable (cell_of nd) then a + 1 else a) 0
  in
  {
    num_nodes = Tree.size tree;
    num_leaves = Array.length leaves;
    num_internal = Array.length internals;
    max_depth;
    total_wirelength;
    total_wire_cap;
    total_sink_cap;
    total_cell_area;
    max_fanout;
    mean_fanout;
    num_inverting_leaves;
    num_adjustable;
  }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>nodes: %d (%d leaves, %d internal), depth %d@,\
     wire: %.0f um (%.1f fF); sink cap %.1f fF; cell area %.1f um^2@,\
     fanout: max %d, mean %.2f@,\
     inverting leaves: %d; adjustable cells: %d@]"
    s.num_nodes s.num_leaves s.num_internal s.max_depth s.total_wirelength
    s.total_wire_cap s.total_sink_cap s.total_cell_area s.max_fanout
    s.mean_fanout s.num_inverting_leaves s.num_adjustable
