(** Clock-tree export for inspection and downstream tooling.

    Trees (optionally with an assignment) can be rendered as Graphviz
    DOT for visual inspection or serialized to a line-based tabular
    format (one node per line) that loads back exactly — useful for
    versioning generated benchmarks and for debugging optimization
    results outside OCaml. *)

val to_dot :
  ?assignment:Assignment.t -> Tree.t -> string
(** Graphviz digraph: leaves are boxes labelled with their cell and sink
    capacitance (inverter-assigned leaves are shaded), internal nodes
    are ellipses; edges carry the wire length. *)

val to_table : Tree.t -> string
(** Tabular serialization:
    one [id parent kind x y wire_len sink_cap cell_name] row per node
    (parent -1 for the root), preceded by a header line. *)

val of_table : string -> (Tree.t, string) result
(** Load a {!to_table} dump; cells are resolved through
    {!Repro_cell.Library.find}.  Returns a description of the first
    offending line on failure. *)

val of_table_exn : string -> Tree.t
(** @raise Failure on malformed input. *)

val save_file : string -> Tree.t -> unit
(** Write {!to_table} output to a file. *)

val load_file : string -> (Tree.t, string) result
