(** Lumped RC interconnect segments.

    Clock-tree nets are modelled as a single pi-segment per parent-child
    edge: total resistance (kOhm) and capacitance (fF) proportional to the
    routed length, using 45 nm-class per-unit constants. *)

type t = { length : float;  (** um of routed wire. *)
           res : float;  (** kOhm total. *)
           cap : float  (** fF total. *) }

val res_per_um : float
(** 2.0e-3 kOhm/um (2 Ohm/um, thin-metal class). *)

val cap_per_um : float
(** 0.2 fF/um. *)

val of_length : float -> t
(** Wire of the given routed length with the default per-unit RC.
    @raise Invalid_argument on negative length. *)

val zero : t
(** A zero-length wire (direct connection). *)

val manhattan : x0:float -> y0:float -> x1:float -> y1:float -> t
(** Wire along the Manhattan (L1) route between two points. *)

val elmore_delay : t -> load:float -> float
(** Elmore delay (ps) through the wire into a capacitive load (fF):
    [res * (cap / 2 + load)]. *)

val scaled : t -> r_scale:float -> c_scale:float -> t
(** Multiply R and C independently (Monte-Carlo variation). *)
