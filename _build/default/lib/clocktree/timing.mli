(** Static timing of a clock tree under an assignment.

    Timing propagates arrival time, edge direction and slew from the clock
    source at the root input (time 0) down to the flip-flops.  The
    environment abstracts everything that varies across experiments:
    per-node supply voltage (voltage islands / power modes), the active
    power mode for adjustable-delay settings, and the multiplicative
    Monte-Carlo variations of cell delays and wire RC. *)

type env = {
  vdd_of : Tree.node -> float;  (** Supply of the island the node sits in. *)
  mode : int;  (** Power mode index, selects the ADB/ADI settings. *)
  cell_derate : Tree.node_id -> float;  (** Monte-Carlo delay multiplier. *)
  wire_r_scale : Tree.node_id -> float;
  wire_c_scale : Tree.node_id -> float;
  source_slew : float;  (** ps slew of the clock at the root input. *)
}

val nominal : ?vdd:float -> ?mode:int -> unit -> env
(** Uniform supply (default 1.1 V), no variation, 20 ps source slew. *)

type result = {
  input_arrival : float array;  (** ps at each node's input, by id. *)
  input_edge : Repro_cell.Electrical.edge array;
      (** Edge direction at each node's input (negative-polarity internal
          cells flip it for the subtree below). *)
  input_slew : float array;  (** ps at each node's input. *)
  load : float array;  (** fF seen by each node's cell output. *)
  sink_arrival : float array;
      (** ps at the flip-flops, meaningful for leaf ids only ([nan]
          elsewhere): leaf input arrival plus the leaf cell delay. *)
}

val analyze :
  Tree.t -> Assignment.t -> env -> edge:Repro_cell.Electrical.edge -> result
(** Propagate the source edge (at the root input, time 0) through the
    tree.  @raise Invalid_argument if [env.mode] is out of range for the
    assignment. *)

val sink_arrivals : Tree.t -> result -> (Tree.node_id * float) array
(** The (leaf id, FF arrival) pairs in id order. *)

val skew : Tree.t -> result -> float
(** Max minus min FF arrival — the paper's clock skew. *)

val leaf_delay :
  Tree.t -> Assignment.t -> env -> result -> Tree.node_id -> Repro_cell.Cell.t -> float
(** Delay (ps) that the given candidate cell would have at the given leaf
    (using the leaf's sink load, input slew, island supply, and the
    adjustable setting of the current assignment) — the quantity that
    drives arrival-time collection during polarity assignment. *)
