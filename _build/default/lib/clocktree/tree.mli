(** Buffered clock tree structure.

    A tree is an immutable array of buffering nodes.  Every node carries a
    buffering element (a {!Repro_cell.Cell.t}); {e leaf} nodes drive
    flip-flop clock pins directly (their load is [sink_cap]) and are the
    subject of polarity assignment; {e internal} nodes drive child nodes
    through RC wires.  Placement coordinates are in um on the die. *)

type node_id = int

type kind = Internal | Leaf

type node = {
  id : node_id;
  parent : node_id option;  (** [None] only for the root. *)
  children : node_id list;  (** Empty for leaves. *)
  kind : kind;
  x : float;
  y : float;
  wire : Wire.t;  (** Net from the parent output to this node's input. *)
  sink_cap : float;  (** fF of FF clock pins (leaves; 0 for internal). *)
  default_cell : Repro_cell.Cell.t;  (** The cell placed by CTS. *)
}

type t
(** A validated clock tree. *)

val create : node array -> t
(** Build a tree from its node array.  Node [i] must have [id = i]; there
    must be exactly one root; [children]/[parent] must agree; leaves must
    have no children and positive sink capacitance.
    @raise Invalid_argument when any invariant fails. *)

val node : t -> node_id -> node
(** @raise Invalid_argument on out-of-range ids. *)

val root : t -> node
val size : t -> int
(** Number of buffering nodes, the paper's [n]. *)

val nodes : t -> node array
(** The underlying array (do not mutate). *)

val leaves : t -> node array
(** The leaf buffering elements in id order, the paper's set [L]. *)

val num_leaves : t -> int
(** The paper's [|L|]. *)

val internals : t -> node array
(** Non-leaf buffering elements. *)

val topological_order : t -> node_id array
(** Ids in root-to-leaves order (parents before children). *)

val depth : t -> node_id -> int
(** Root has depth 0. *)

val iter_down : t -> (node -> unit) -> unit
(** Visit every node parents-first. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: node count, leaf count, depth. *)
