(** Structural and electrical statistics of a clock tree — the numbers a
    CTS report card shows (total wirelength, capacitance, buffer area,
    fanout and depth distributions). *)

type t = {
  num_nodes : int;
  num_leaves : int;
  num_internal : int;
  max_depth : int;  (** Leaf depth (uniform in synthesized trees). *)
  total_wirelength : float;  (** um. *)
  total_wire_cap : float;  (** fF. *)
  total_sink_cap : float;  (** fF. *)
  total_cell_area : float;  (** um^2 under the given assignment. *)
  max_fanout : int;
  mean_fanout : float;  (** Over internal nodes. *)
  num_inverting_leaves : int;  (** Under the given assignment. *)
  num_adjustable : int;  (** ADB/ADI count under the given assignment. *)
}

val compute : ?assignment:Assignment.t -> Tree.t -> t
(** Statistics under an assignment (default: the tree's default cells). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
