let drives = [ 1; 2; 4; 8; 16; 32 ]

let check_drive x =
  if not (List.mem x drives) then
    invalid_arg (Printf.sprintf "Library: unsupported drive X%d" x)

let fdrive x = float_of_int x

(* Intrinsic delays shrink mildly with drive (better internal slopes). *)
let intrinsic base x = base /. (fdrive x ** 0.08)

let buf x =
  check_drive x;
  Cell.make
    ~name:(Printf.sprintf "BUF_X%d" x)
    ~kind:Cell.Buffer ~drive:x
    ~input_cap:(0.25 *. fdrive x)
    ~output_res:(6.36 /. fdrive x)
    ~intrinsic_rise:(intrinsic 21.0 x)
    ~intrinsic_fall:(intrinsic 23.0 x)
    ~area:(1.4 *. fdrive x)
    ()

let inv x =
  check_drive x;
  Cell.make
    ~name:(Printf.sprintf "INV_X%d" x)
    ~kind:Cell.Inverter ~drive:x
    ~input_cap:(0.275 *. fdrive x)
    ~output_res:(5.6 /. fdrive x)
    ~intrinsic_rise:(intrinsic 17.0 x)
    ~intrinsic_fall:(intrinsic 18.5 x)
    ~area:(0.8 *. fdrive x)
    ()

let adjustable_steps =
  [| 0.0; 2.0; 4.0; 6.0; 8.0; 10.0; 12.0; 14.0; 16.0; 18.0; 20.0 |]

let adb x =
  check_drive x;
  Cell.make
    ~name:(Printf.sprintf "ADB_X%d" x)
    ~kind:Cell.Adjustable_buffer ~drive:x
    ~input_cap:(0.30 *. fdrive x)
    ~output_res:(6.36 /. fdrive x)
    ~intrinsic_rise:(intrinsic 25.0 x)
    ~intrinsic_fall:(intrinsic 27.0 x)
    ~area:(3.1 *. fdrive x)
    ~delay_steps:adjustable_steps ()

let adi x =
  check_drive x;
  (* Three inverter stages (Fig. 4): the first is minimum width, so the
     ADI is noticeably slower than the same-drive ADB (Sec. VII-E). *)
  Cell.make
    ~name:(Printf.sprintf "ADI_X%d" x)
    ~kind:Cell.Adjustable_inverter ~drive:x
    ~input_cap:(0.30 *. fdrive x)
    ~output_res:(5.6 /. fdrive x)
    ~intrinsic_rise:(intrinsic 31.0 x)
    ~intrinsic_fall:(intrinsic 33.0 x)
    ~area:(3.4 *. fdrive x)
    ~delay_steps:adjustable_steps ()

let all =
  List.concat_map (fun x -> [ buf x; inv x; adb x; adi x ]) drives

let find name =
  match List.find_opt (fun c -> String.equal c.Cell.name name) all with
  | Some c -> c
  | None -> raise Not_found

let experiment_buffers = [ buf 8; buf 16 ]
let experiment_inverters = [ inv 8; inv 16 ]
let toy_buffers = [ buf 1; buf 2 ]
let toy_inverters = [ inv 1; inv 2 ]
