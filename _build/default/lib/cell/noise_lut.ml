module Pwl = Repro_waveform.Pwl

type entry = {
  d_rise : float;
  d_fall : float;
  rise : Electrical.currents;  (** Input-rising event, t = 0 at the edge. *)
  fall : Electrical.currents;  (** Input-falling event. *)
}

type t = {
  cell : Cell.t;
  vdd : float;
  loads : float array;
  slews : float array;
  grid : entry array array;  (** grid.(load index).(slew index) *)
}

let default_loads = [| 1.0; 3.0; 6.0; 10.0; 15.0; 20.0; 26.0; 33.0; 40.0 |]
let default_slews = [| 8.0; 15.0; 25.0; 35.0; 48.0; 60.0 |]

let check_grid name g =
  if Array.length g < 2 then invalid_arg ("Noise_lut.build: " ^ name ^ " too small");
  for i = 0 to Array.length g - 2 do
    if g.(i) >= g.(i + 1) then
      invalid_arg ("Noise_lut.build: " ^ name ^ " must be strictly increasing")
  done

let build cell ~vdd ?(loads = default_loads) ?(slews = default_slews) () =
  check_grid "loads" loads;
  check_grid "slews" slews;
  let grid =
    Array.map
      (fun load ->
        Array.map
          (fun input_slew ->
            {
              d_rise =
                Electrical.delay cell ~vdd ~load ~input_slew
                  ~edge:Electrical.Rising ();
              d_fall =
                Electrical.delay cell ~vdd ~load ~input_slew
                  ~edge:Electrical.Falling ();
              rise =
                Electrical.event_currents cell ~vdd ~load ~input_slew
                  ~edge:Electrical.Rising ();
              fall =
                Electrical.event_currents cell ~vdd ~load ~input_slew
                  ~edge:Electrical.Falling ();
            })
          slews)
      loads
  in
  { cell; vdd; loads; slews; grid }

let cell t = t.cell
let vdd t = t.vdd
let loads t = Array.copy t.loads
let slews t = Array.copy t.slews

(* Index of the cell [g.(i), g.(i+1)] containing x (clamped), plus the
   interpolation fraction. *)
let locate g x =
  let n = Array.length g in
  if x <= g.(0) then (0, 0.0)
  else if x >= g.(n - 1) then (n - 2, 1.0)
  else begin
    let i = ref 0 in
    while g.(!i + 1) < x do
      incr i
    done;
    (!i, (x -. g.(!i)) /. (g.(!i + 1) -. g.(!i)))
  end

let bilinear t ~load ~input_slew f =
  let i, fx = locate t.loads load in
  let j, fy = locate t.slews input_slew in
  let v00 = f t.grid.(i).(j)
  and v01 = f t.grid.(i).(j + 1)
  and v10 = f t.grid.(i + 1).(j)
  and v11 = f t.grid.(i + 1).(j + 1) in
  ((1.0 -. fx) *. (((1.0 -. fy) *. v00) +. (fy *. v01)))
  +. (fx *. (((1.0 -. fy) *. v10) +. (fy *. v11)))

let delay t ~load ~input_slew ~edge =
  bilinear t ~load ~input_slew (fun e ->
      match edge with Electrical.Rising -> e.d_rise | Electrical.Falling -> e.d_fall)

let event_waveform entry ~edge ~rail =
  let c =
    match edge with Electrical.Rising -> entry.rise | Electrical.Falling -> entry.fall
  in
  match rail with
  | Cell.Vdd_rail -> c.Electrical.idd
  | Cell.Gnd_rail -> c.Electrical.iss

let noise t ~load ~input_slew ~edge ~rail ~time =
  bilinear t ~load ~input_slew (fun e ->
      Pwl.eval (event_waveform e ~edge ~rail) time)

let peak t ~load ~input_slew ~edge ~rail =
  bilinear t ~load ~input_slew (fun e -> Pwl.peak (event_waveform e ~edge ~rail))

let max_relative_error t ~probe_loads ~probe_slews =
  let worst = ref 0.0 in
  Array.iter
    (fun load ->
      Array.iter
        (fun input_slew ->
          List.iter
            (fun edge ->
              let exact =
                Electrical.delay t.cell ~vdd:t.vdd ~load ~input_slew ~edge ()
              in
              let interp = delay t ~load ~input_slew ~edge in
              if exact > 0.0 then
                worst := Float.max !worst (Float.abs (interp -. exact) /. exact))
            [ Electrical.Rising; Electrical.Falling ])
        probe_slews)
    probe_loads;
  !worst
