(** Standard cell libraries.

    The drive-strength families mirror the Nangate 45 nm open cell library
    used by the paper: BUF_X1..X32 and INV_X1..X32, plus the adjustable
    ADB_X* (capacitor-bank buffer, [16]) and the paper's proposed ADI_X*
    (capacitor-bank inverter, Fig. 4).  The anchors from the paper hold:
    BUF_X16 output resistance ~0.3975 kOhm, BUF_X4 input cap 1.0 fF,
    INV_X8 input cap 2.2 fF. *)

val buf : int -> Cell.t
(** [buf x] is BUF_X[x].  @raise Invalid_argument unless [x] is one of
    1, 2, 4, 8, 16, 32. *)

val inv : int -> Cell.t
(** [inv x] is INV_X[x], same drives as {!buf}. *)

val adb : int -> Cell.t
(** [adb x] is ADB_X[x] with the {!adjustable_steps} delay range. *)

val adi : int -> Cell.t
(** [adi x] is ADI_X[x]; slower than the same-drive ADB because of its
    extra input inverter (Sec. VII-E). *)

val drives : int list
(** The available drive strengths, ascending. *)

val adjustable_steps : float array
(** The capacitor-bank delay steps of ADB/ADI cells: 0..20 ps in 2 ps
    increments (the bank size is a design parameter, Fig. 4 of the
    paper; 20 ps matches the mode-induced arrival spreads of the
    synthetic trees). *)

val find : string -> Cell.t
(** Look a cell up by name, e.g. ["BUF_X8"].
    @raise Not_found for unknown names. *)

val all : Cell.t list
(** Every cell of the library. *)

val experiment_buffers : Cell.t list
(** The buffer choices of the paper's experiments: BUF_X8 and BUF_X16
    (Sec. VII-A). *)

val experiment_inverters : Cell.t list
(** INV_X8 and INV_X16 (Sec. VII-A). *)

val toy_buffers : Cell.t list
(** BUF_X1 and BUF_X2 — the worked-example library B of Table II. *)

val toy_inverters : Cell.t list
(** INV_X1 and INV_X2 — the worked-example library I of Table II. *)
