type polarity = Positive | Negative

type kind = Buffer | Inverter | Adjustable_buffer | Adjustable_inverter

type rail = Vdd_rail | Gnd_rail

type t = {
  name : string;
  kind : kind;
  drive : int;
  input_cap : float;
  output_res : float;
  intrinsic_rise : float;
  intrinsic_fall : float;
  area : float;
  delay_steps : float array;
}

let is_adjustable_kind = function
  | Adjustable_buffer | Adjustable_inverter -> true
  | Buffer | Inverter -> false

let make ~name ~kind ~drive ~input_cap ~output_res ~intrinsic_rise
    ~intrinsic_fall ~area ?(delay_steps = [||]) () =
  if drive <= 0 then invalid_arg "Cell.make: drive must be positive";
  if input_cap <= 0.0 || output_res <= 0.0 || intrinsic_rise <= 0.0
     || intrinsic_fall <= 0.0 || area <= 0.0
  then invalid_arg "Cell.make: electrical values must be positive";
  (match (is_adjustable_kind kind, Array.length delay_steps) with
  | true, 0 -> invalid_arg "Cell.make: adjustable cell needs delay steps"
  | false, n when n > 0 ->
    invalid_arg "Cell.make: fixed cell cannot have delay steps"
  | true, _ | false, _ -> ());
  if Array.length delay_steps > 0 then begin
    if delay_steps.(0) <> 0.0 then
      invalid_arg "Cell.make: delay steps must start at 0";
    let sorted = Array.copy delay_steps in
    Array.sort compare sorted;
    if sorted <> delay_steps then
      invalid_arg "Cell.make: delay steps must be sorted ascending"
  end;
  { name; kind; drive; input_cap; output_res; intrinsic_rise;
    intrinsic_fall; area; delay_steps }

let polarity cell =
  match cell.kind with
  | Buffer | Adjustable_buffer -> Positive
  | Inverter | Adjustable_inverter -> Negative

let is_adjustable cell = is_adjustable_kind cell.kind

let equal a b = String.equal a.name b.name && a.drive = b.drive

let compare a b =
  match String.compare a.name b.name with
  | 0 -> Int.compare a.drive b.drive
  | c -> c

let pp fmt cell = Format.pp_print_string fmt cell.name

let opposite_rail = function Vdd_rail -> Gnd_rail | Gnd_rail -> Vdd_rail

let pp_rail fmt = function
  | Vdd_rail -> Format.pp_print_string fmt "VDD"
  | Gnd_rail -> Format.pp_print_string fmt "GND"
