type edge = Rising | Falling

let vdd_nominal = 1.1

let v_threshold = 0.35

let alpha = 1.3

(* Alpha-power law: cell delay scales as vdd / (vdd - vt)^alpha. *)
let derate ~vdd =
  if vdd <= v_threshold +. 0.05 then
    invalid_arg "Electrical.derate: vdd too close to threshold";
  let f v = v /. ((v -. v_threshold) ** alpha) in
  f vdd /. f vdd_nominal

let output_edge cell edge =
  match (Cell.polarity cell, edge) with
  | Cell.Positive, e -> e
  | Cell.Negative, Rising -> Falling
  | Cell.Negative, Falling -> Rising

let default_slew = 20.0

(* Elmore-style delay with a 0.69 RC coefficient plus a mild input-slew
   penalty.  Rising/falling intrinsics differ (pMOS weaker). *)
let delay cell ~vdd ~load ?(input_slew = default_slew) ~edge () =
  let intrinsic =
    match output_edge cell edge with
    | Rising -> cell.Cell.intrinsic_rise
    | Falling -> cell.Cell.intrinsic_fall
  in
  derate ~vdd
  *. (intrinsic +. (0.69 *. cell.Cell.output_res *. load)
     +. (0.05 *. input_slew))

let output_slew cell ~vdd ~load ?(input_slew = 20.0) ~edge () =
  let asym = match output_edge cell edge with Rising -> 1.12 | Falling -> 1.0 in
  (derate ~vdd *. asym *. (6.0 +. (1.2 *. cell.Cell.output_res *. load)))
  +. (0.3 *. input_slew)

let self_cap cell = 0.4 *. float_of_int cell.Cell.drive

let switching_charge cell ~vdd ~load = (load +. self_cap cell) *. vdd

type currents = { idd : Repro_waveform.Pwl.t; iss : Repro_waveform.Pwl.t }

(* Short-circuit fraction grows when the input transition is slow relative
   to the output transition (both transistor stacks conduct for longer). *)
let short_circuit_fraction ~input_slew ~width =
  Float.min 0.45 (0.04 +. (0.12 *. input_slew /. width))

let natural_width cell ~vdd ~load ~edge ~input_slew =
  Float.max 6.0
    (Float.max (0.6 *. input_slew)
       (output_slew cell ~vdd ~load ~input_slew ~edge ()))

(* The transistor stack cannot deliver more than ~vdd/R_out; when the
   triangular charge pulse would exceed that, the driver is
   slew-limited: the peak saturates and the pulse widens to conserve
   charge.  The pull-up network (output rising) is modelled slightly
   stronger than the pull-down, giving Table I's I_DD > I_SS asymmetry;
   the factors calibrate BUF_X1/X2 onto Table II's 130/255 uA anchors. *)
let saturation_factor = function Rising -> 0.78 | Falling -> 0.70

let saturation_peak cell ~vdd ~output_edge:oe =
  saturation_factor oe *. 1000.0 *. vdd /. cell.Cell.output_res

(* (main peak uA, pulse width ps) of the main-rail pulse. *)
let pulse_shape cell ~vdd ~load ~edge ~input_slew =
  let w0 = natural_width cell ~vdd ~load ~edge ~input_slew in
  let q_ac = 1000.0 *. switching_charge cell ~vdd ~load in
  let h0 = 2.0 *. q_ac /. w0 in
  let h_sat = saturation_peak cell ~vdd ~output_edge:(output_edge cell edge) in
  if h0 <= h_sat then (h0, w0) else (h_sat, 2.0 *. q_ac /. h_sat)

let peak_of_event cell ~vdd ~load ~edge ~rail =
  let input_slew = default_slew in
  let main, w = pulse_shape cell ~vdd ~load ~edge ~input_slew in
  let main_rail =
    match output_edge cell edge with
    | Rising -> Cell.Vdd_rail
    | Falling -> Cell.Gnd_rail
  in
  if rail = main_rail then main
  else short_circuit_fraction ~input_slew ~width:w *. main

let event_currents cell ~vdd ~load ?(input_slew = default_slew) ~edge () =
  let d = delay cell ~vdd ~load ~input_slew ~edge () in
  let main, w = pulse_shape cell ~vdd ~load ~edge ~input_slew in
  let sc = short_circuit_fraction ~input_slew ~width:w *. main in
  (* The main pulse peaks when the output crosses mid-rail, i.e. at the
     propagation delay; it is skewed 40/60 around that instant.  The
     short-circuit pulse overlaps the input transition, slightly
     earlier. *)
  let main_start = Float.max (0.1 *. d) (d -. (0.4 *. w)) in
  let main_pulse =
    Repro_waveform.Pwl.triangle ~start:main_start ~peak_time:d
      ~finish:(d +. (0.6 *. w)) ~height:main
  in
  let sc_peak_t = Float.max (main_start +. 0.05 *. w) (d -. (0.1 *. w)) in
  let sc_start = Float.max (0.05 *. d) (sc_peak_t -. (0.4 *. w)) in
  let sc_pulse =
    Repro_waveform.Pwl.triangle ~start:sc_start ~peak_time:sc_peak_t
      ~finish:(sc_peak_t +. (0.4 *. w)) ~height:sc
  in
  match output_edge cell edge with
  | Rising -> { idd = main_pulse; iss = sc_pulse }
  | Falling -> { idd = sc_pulse; iss = main_pulse }
