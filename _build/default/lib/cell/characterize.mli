(** Cell characterization (Sec. IV-B, Table I of the paper).

    Characterization plays the role of the paper's HSPICE profiling runs:
    it applies a clock pulse to a cell, records the propagation delays,
    output slews and the I_DD/I_SS current waveforms over one clock
    period, and extracts the hot-spot time sampling points that form the
    set S of the WaveMin objective. *)

type profile = {
  cell : Cell.t;
  vdd : float;
  load : float;  (** fF on the cell output. *)
  input_slew : float;  (** ps, the profiling slew (20 ps in the paper). *)
  period : float;  (** ps; the rising edge is at 0, falling at period/2. *)
  t_d_rise : float;  (** delay of the input-rising event. *)
  t_d_fall : float;  (** delay of the input-falling event. *)
  slew_rise : float;  (** output slew of the output-rising event. *)
  slew_fall : float;  (** output slew of the output-falling event. *)
  idd : Repro_waveform.Pwl.t;  (** V_DD current over one period. *)
  iss : Repro_waveform.Pwl.t;  (** Gnd current over one period. *)
}

val profile :
  Cell.t -> vdd:float -> load:float -> ?input_slew:float -> period:float -> unit -> profile
(** Characterize one cell.  The default input slew is 20 ps, the paper's
    profiling value (slightly sharper than the observed average so that
    the noise estimates are upper bounds). *)

val hot_spot_times : profile -> count:int -> float array
(** The [count] highest-current times of the profile, pooled over both
    rails — the sampling points s_1..s_n of Fig. 7(b). *)

(** One row of the Table I sibling sweep. *)
type sibling_row = {
  num_inverters : int;
  num_buffers : int;
  obs_t_d_rise : float;  (** observed buffer delay, rising (ps). *)
  obs_t_d_fall : float;
  peak_idd : float;  (** local rail peak over the period (uA). *)
  peak_iss : float;
  obs_slew_rise : float;  (** observed buffer output slew (ps). *)
  obs_slew_fall : float;
}

val sibling_sweep :
  ?parent:Cell.t ->
  ?observed:Cell.t ->
  ?replacement:Cell.t ->
  ?fanout:int ->
  ?leaf_load:float ->
  unit ->
  sibling_row list
(** Reproduce Table I: a parent (default BUF_X16) drives [fanout]
    (default 16) leaves that all start as [observed] (default BUF_X4,
    1 fF input cap) and are replaced one by one with [replacement]
    (default INV_X8, 2.2 fF).  Each row reports the surviving observed
    buffer's delay and slew — which move only mildly, because only the
    parent load changes — and the local rail peaks, which move strongly
    because every replacement swaps a cell's main pulse across rails and
    sizes.  [leaf_load] is the FF capacitance per leaf (default 3 fF). *)
