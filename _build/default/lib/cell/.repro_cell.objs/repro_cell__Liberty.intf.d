lib/cell/liberty.mli: Cell Format
