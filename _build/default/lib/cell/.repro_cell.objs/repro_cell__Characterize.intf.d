lib/cell/characterize.mli: Cell Repro_waveform
