lib/cell/cell.ml: Array Format Int String
