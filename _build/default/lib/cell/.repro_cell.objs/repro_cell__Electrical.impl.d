lib/cell/electrical.ml: Cell Float Repro_waveform
