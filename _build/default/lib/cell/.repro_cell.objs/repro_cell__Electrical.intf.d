lib/cell/electrical.mli: Cell Repro_waveform
