lib/cell/characterize.ml: Cell Electrical Library List Repro_waveform
