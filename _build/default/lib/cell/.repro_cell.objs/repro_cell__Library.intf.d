lib/cell/library.mli: Cell
