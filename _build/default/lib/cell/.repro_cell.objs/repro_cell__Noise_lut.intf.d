lib/cell/noise_lut.mli: Cell Electrical
