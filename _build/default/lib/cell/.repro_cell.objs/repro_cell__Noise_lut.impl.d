lib/cell/noise_lut.ml: Array Cell Electrical Float List Repro_waveform
