lib/cell/liberty.ml: Array Buffer Cell Format List Printf Repro_util String
