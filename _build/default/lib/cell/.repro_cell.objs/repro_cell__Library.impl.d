lib/cell/library.ml: Cell List Printf String
