lib/cell/cell.mli: Format
