(** Textual cell-library interchange, Liberty-flavoured.

    Real flows exchange cell libraries as Liberty files.  This module
    implements a small self-describing dialect of that idea: a library
    is a sequence of cell blocks with typed attributes,

    {v
    cell (BUF_X8) {
      kind : buffer;
      drive : 8;
      input_cap : 2.0;        /* fF */
      output_res : 0.795;     /* kOhm */
      intrinsic_rise : 17.66; /* ps */
      intrinsic_fall : 19.34;
      area : 11.2;
      delay_steps : (0, 2, 4, 6, 8, 10);  /* adjustable cells only */
    }
    v}

    so that user libraries can be versioned, diffed and loaded without
    recompiling.  The printer and parser round-trip exactly. *)

val to_string : Cell.t list -> string
(** Serialize a library. *)

val cell_to_string : Cell.t -> string
(** Serialize one cell block. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Cell.t list, error) result
(** Parse a library.  Comments ([/* ... */]) and blank lines are
    ignored; unknown attributes are rejected (typo safety); every cell
    must define all electrical attributes. *)

val parse_exn : string -> Cell.t list
(** @raise Failure with a rendered {!error} on malformed input. *)

val load_file : string -> (Cell.t list, error) result
(** Read and parse a file ({!error} line numbers refer to the file). *)

val save_file : string -> Cell.t list -> unit
(** Write a library to a file. *)
