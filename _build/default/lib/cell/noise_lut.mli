(** Characterized noise lookup tables (Sec. IV-B).

    The paper does not run SPICE inside the optimizer: every cell is
    profiled once over a (load, input slew) grid, the I_DD/I_SS
    waveforms are recorded, and [noise(cell, s)] is answered by linear
    interpolation from the table.  This module is that mechanism.  The
    rest of the library calls the analytic models directly (they are
    cheap); the LUT exists to mirror the paper's flow, to bound the
    interpolation error in tests, and to serve as the natural adapter
    were a real characterization (SPICE decks) dropped in. *)

type t

val build :
  Cell.t ->
  vdd:float ->
  ?loads:float array ->
  ?slews:float array ->
  unit ->
  t
(** Profile the cell on the grid (defaults: loads 1..40 fF in 9 points,
    slews 8..60 ps in 6 points), recording the event waveforms for both
    input edges at every grid point.
    @raise Invalid_argument if a grid has fewer than 2 points or is not
    strictly increasing. *)

val cell : t -> Cell.t
val vdd : t -> float
val loads : t -> float array
val slews : t -> float array

val delay :
  t -> load:float -> input_slew:float -> edge:Electrical.edge -> float
(** Bilinearly interpolated propagation delay (ps); queries outside the
    grid are clamped onto it. *)

val noise :
  t ->
  load:float ->
  input_slew:float ->
  edge:Electrical.edge ->
  rail:Cell.rail ->
  time:float ->
  float
(** The noise function of the paper: interpolated current (uA) at a time
    sampling point, measured from the input edge at time 0. *)

val peak :
  t -> load:float -> input_slew:float -> edge:Electrical.edge -> rail:Cell.rail -> float
(** Interpolated pulse peak (uA) on a rail. *)

val max_relative_error :
  t -> probe_loads:float array -> probe_slews:float array -> float
(** Worst relative error of the interpolated {!delay} against the direct
    analytic model over the probe points — the table-accuracy metric a
    characterization flow reports. *)
