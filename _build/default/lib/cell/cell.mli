(** Clock buffering cells.

    Four families of cells drive the leaves of the clock tree in the paper:
    plain buffers (positive polarity), plain inverters (negative polarity),
    adjustable delay buffers (ADB, positive) and the paper's proposed
    adjustable delay inverters (ADI, negative).  Adjustable cells expose a
    discrete set of extra capacitor-bank delays that can differ per power
    mode; the chosen setting lives with the clock-tree assignment, not
    here. *)

type polarity = Positive | Negative
(** Positive: the output switches in the same direction as the clock
    source; negative: the opposite direction (footnote 1 of the paper). *)

type kind = Buffer | Inverter | Adjustable_buffer | Adjustable_inverter

type rail = Vdd_rail | Gnd_rail
(** The two power rails whose current spikes constitute the noise. *)

type t = private {
  name : string;
  kind : kind;
  drive : int;  (** X-factor, e.g. 8 for BUF_X8. *)
  input_cap : float;  (** fF presented to the parent net. *)
  output_res : float;  (** kOhm equivalent driver resistance. *)
  intrinsic_rise : float;  (** ps unloaded delay, output-rising event. *)
  intrinsic_fall : float;  (** ps unloaded delay, output-falling event. *)
  area : float;  (** um^2, used for area reporting. *)
  delay_steps : float array;
      (** Extra capacitor-bank delays (ps) selectable at runtime;
          [[||]] for fixed cells.  Sorted ascending, starts at [0.]. *)
}

val make :
  name:string ->
  kind:kind ->
  drive:int ->
  input_cap:float ->
  output_res:float ->
  intrinsic_rise:float ->
  intrinsic_fall:float ->
  area:float ->
  ?delay_steps:float array ->
  unit ->
  t
(** Smart constructor.
    @raise Invalid_argument if a fixed cell is given delay steps, an
    adjustable cell is given none, or any electrical value is
    non-positive. *)

val polarity : t -> polarity
(** Buffers and ADBs are positive; inverters and ADIs are negative. *)

val is_adjustable : t -> bool

val equal : t -> t -> bool
(** Structural equality (cells are compared by name and drive). *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints the cell name. *)

val opposite_rail : rail -> rail

val pp_rail : Format.formatter -> rail -> unit
