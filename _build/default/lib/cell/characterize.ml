module Pwl = Repro_waveform.Pwl
module Sampling = Repro_waveform.Sampling

type profile = {
  cell : Cell.t;
  vdd : float;
  load : float;
  input_slew : float;
  period : float;
  t_d_rise : float;
  t_d_fall : float;
  slew_rise : float;
  slew_fall : float;
  idd : Pwl.t;
  iss : Pwl.t;
}

let profile cell ~vdd ~load ?(input_slew = 20.0) ~period () =
  if period <= 0.0 then invalid_arg "Characterize.profile: period <= 0";
  let rising =
    Electrical.event_currents cell ~vdd ~load ~input_slew ~edge:Electrical.Rising ()
  in
  let falling =
    Electrical.event_currents cell ~vdd ~load ~input_slew ~edge:Electrical.Falling ()
  in
  let half = period /. 2.0 in
  let idd = Pwl.add rising.Electrical.idd (Pwl.shift falling.Electrical.idd half) in
  let iss = Pwl.add rising.Electrical.iss (Pwl.shift falling.Electrical.iss half) in
  {
    cell;
    vdd;
    load;
    input_slew;
    period;
    t_d_rise = Electrical.delay cell ~vdd ~load ~input_slew ~edge:Electrical.Rising ();
    t_d_fall = Electrical.delay cell ~vdd ~load ~input_slew ~edge:Electrical.Falling ();
    slew_rise =
      Electrical.output_slew cell ~vdd ~load ~input_slew ~edge:Electrical.Rising ();
    slew_fall =
      Electrical.output_slew cell ~vdd ~load ~input_slew ~edge:Electrical.Falling ();
    idd;
    iss;
  }

let hot_spot_times p ~count =
  let per_rail = max 1 ((count + 1) / 2) in
  Sampling.merge
    [ Sampling.hot_spots p.idd ~count:per_rail;
      Sampling.hot_spots p.iss ~count:per_rail ]

type sibling_row = {
  num_inverters : int;
  num_buffers : int;
  obs_t_d_rise : float;
  obs_t_d_fall : float;
  peak_idd : float;
  peak_iss : float;
  obs_slew_rise : float;
  obs_slew_fall : float;
}

let sibling_sweep ?(parent = Library.buf 16) ?(observed = Library.buf 4)
    ?(replacement = Library.inv 8) ?(fanout = 16) ?(leaf_load = 3.0) () =
  if fanout < 2 then invalid_arg "Characterize.sibling_sweep: fanout < 2";
  let vdd = Electrical.vdd_nominal in
  let period = 500.0 in
  let row k =
    let kept = fanout - k in
    (* Parent load is the sum of the children input capacitances; this is
       the only channel by which sibling replacement reaches the observed
       buffer (its input slew), per Observation 4. *)
    let parent_load =
      (float_of_int kept *. observed.Cell.input_cap)
      +. (float_of_int k *. replacement.Cell.input_cap)
    in
    let input_slew =
      Electrical.output_slew parent ~vdd ~load:parent_load ~edge:Electrical.Rising ()
    in
    let leaf_profile cell =
      profile cell ~vdd ~load:leaf_load ~input_slew ~period ()
    in
    let obs = leaf_profile observed in
    let rep = leaf_profile replacement in
    (* All leaves switch simultaneously (same parent arrival), so the
       local rail current is the direct sum of their pulses. *)
    let group rail =
      Pwl.sum
        (Pwl.scale (rail obs) (float_of_int kept)
        :: [ Pwl.scale (rail rep) (float_of_int k) ])
    in
    let idd_total = group (fun p -> p.idd) in
    let iss_total = group (fun p -> p.iss) in
    {
      num_inverters = k;
      num_buffers = kept;
      obs_t_d_rise = obs.t_d_rise;
      obs_t_d_fall = obs.t_d_fall;
      peak_idd = Pwl.peak idd_total;
      peak_iss = Pwl.peak iss_total;
      obs_slew_rise = obs.slew_rise;
      obs_slew_fall = obs.slew_fall;
    }
  in
  List.init fanout row
