(** Analytic switch-level electrical models.

    These models replace the HSPICE characterization runs of the paper.
    They are calibrated so that the published anchor points hold: a
    BUF_X16 has an output resistance of ~398 Ohm (Table I), a BUF_X4 has
    an input capacitance of 1 fF and an INV_X8 of 2.2 fF (Table I), peak
    currents for X1/X2 cells land in the 100-300 uA range of Table II,
    and lowering V_DD from 1.1 V to 0.9 V stretches delays by the 12-29 %
    of Table III while slightly reducing peak currents.

    Units: time ps, capacitance fF, resistance kOhm (so R*C is in ps),
    current uA, voltage V.  A triangular pulse of height h uA and width w
    ps carries h*w/2 uA*ps = h*w/2 aC of charge; physical consistency
    with Q = C*V is maintained ([1 fC = 1000 uA*ps]). *)

type edge = Rising | Falling
(** Direction of the switching event at the cell {e input}. *)

val vdd_nominal : float
(** 1.1 V — the nominal supply of the paper's experiments. *)

val derate : vdd:float -> float
(** Alpha-power-law delay derating factor, 1.0 at {!vdd_nominal} and
    ~1.22 at 0.9 V.  @raise Invalid_argument if [vdd] is not above the
    threshold voltage (0.35 V). *)

val output_edge : Cell.t -> edge -> edge
(** Direction of the output transition for an input edge: equal for
    positive-polarity cells, opposite for negative. *)

val delay :
  Cell.t -> vdd:float -> load:float -> ?input_slew:float -> edge:edge -> unit -> float
(** Propagation delay (ps) of the event whose {e input} edge is [edge].
    [load] is the capacitance (fF) on the cell output; [input_slew]
    (default 20 ps) adds a mild penalty.  Adjustable cells report the
    delay at setting 0; add the chosen {!Cell.t.delay_steps} entry on
    top. *)

val output_slew :
  Cell.t -> vdd:float -> load:float -> ?input_slew:float -> edge:edge -> unit -> float
(** 20-80 % output transition time (ps); a slow input transition
    degrades the output slew too (default input slew 20 ps). *)

val switching_charge : Cell.t -> vdd:float -> load:float -> float
(** Charge (fC) moved through the main rail per output transition:
    (load + self capacitance) * vdd. *)

val saturation_peak : Cell.t -> vdd:float -> output_edge:edge -> float
(** Maximum current (uA) the driver can deliver (~0.7-0.8 * vdd/R_out;
    the pull-up is slightly stronger than the pull-down): the
    pulse-height ceiling.  Calibrated so BUF_X1/X2 land on Table II's
    130/255 uA peaks. *)

type currents = { idd : Repro_waveform.Pwl.t; iss : Repro_waveform.Pwl.t }
(** Supply and ground current pulses (uA over ps).  Pulse heights are
    capped at {!saturation_peak} with the width stretched to conserve
    the switching charge. *)

val event_currents :
  Cell.t -> vdd:float -> load:float -> ?input_slew:float -> edge:edge -> unit -> currents
(** Current waveforms caused by a single input edge arriving at time 0 at
    the cell input.  The main pulse lands on V_DD when the output rises
    and on Gnd when it falls; a smaller short-circuit pulse lands on the
    opposite rail.  Peak ratios follow Table II's P+/P- asymmetry. *)

val peak_of_event : Cell.t -> vdd:float -> load:float -> edge:edge -> rail:Cell.rail -> float
(** Peak (uA) of the corresponding pulse of {!event_currents} — a cheap
    accessor that avoids building the waveform. *)
