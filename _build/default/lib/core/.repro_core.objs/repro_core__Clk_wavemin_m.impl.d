lib/core/clk_wavemin_m.ml: Adb_embedding Array Context Float Multimode Repro_cell Repro_clocktree
