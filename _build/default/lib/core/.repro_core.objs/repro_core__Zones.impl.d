lib/core/zones.ml: Array Float Hashtbl List Repro_clocktree
