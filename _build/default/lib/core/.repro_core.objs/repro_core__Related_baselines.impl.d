lib/core/related_baselines.ml: Array List Repro_cell Repro_clocktree Zones
