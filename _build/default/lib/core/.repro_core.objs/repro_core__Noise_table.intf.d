lib/core/noise_table.mli: Intervals Repro_cell Repro_clocktree Slots Zones
