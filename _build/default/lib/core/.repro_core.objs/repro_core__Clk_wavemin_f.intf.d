lib/core/clk_wavemin_f.mli: Context Noise_table
