lib/core/zones.mli: Repro_clocktree
