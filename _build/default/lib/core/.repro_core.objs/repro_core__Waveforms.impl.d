lib/core/waveforms.ml: Array Repro_cell Repro_clocktree Repro_waveform
