lib/core/clk_peakmin.mli: Context Noise_table
