lib/core/clk_wavemin.ml: Array Context List Noise_table Repro_mosp
