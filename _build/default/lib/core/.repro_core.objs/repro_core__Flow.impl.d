lib/core/flow.ml: Clk_peakmin Clk_wavemin Clk_wavemin_f Context Golden Repro_cell Repro_clocktree Repro_cts Sys
