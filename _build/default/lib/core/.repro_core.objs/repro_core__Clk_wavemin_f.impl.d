lib/core/clk_wavemin_f.ml: Array Context Noise_table
