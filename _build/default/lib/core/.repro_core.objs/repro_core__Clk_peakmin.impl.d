lib/core/clk_peakmin.ml: Array Context Float Intervals List Noise_table Repro_cell Repro_clocktree
