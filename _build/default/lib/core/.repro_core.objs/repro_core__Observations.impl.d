lib/core/observations.ml: Array Bytes Float List Repro_cell Repro_clocktree Repro_mosp Repro_waveform String Waveforms
