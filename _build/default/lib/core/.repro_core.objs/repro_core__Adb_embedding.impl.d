lib/core/adb_embedding.ml: Array Float List Repro_cell Repro_clocktree
