lib/core/slots.ml: Array Format List Repro_cell Repro_waveform
