lib/core/adb_embedding.mli: Repro_clocktree
