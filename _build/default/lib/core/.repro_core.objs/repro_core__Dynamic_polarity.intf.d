lib/core/dynamic_polarity.mli: Context Repro_cell Repro_clocktree
