lib/core/report.ml: Buffer Clk_peakmin Clk_wavemin Clk_wavemin_f Context Flow Golden List Power Printf Repro_clocktree Repro_cts Zones
