lib/core/intervals.mli: Repro_cell Repro_clocktree
