lib/core/waveforms.mli: Repro_cell Repro_clocktree
