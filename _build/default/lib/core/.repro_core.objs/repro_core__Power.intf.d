lib/core/power.mli: Format Repro_clocktree
