lib/core/multimode.ml: Array Buffer Context Float Hashtbl Intervals List Noise_table Repro_cell Repro_clocktree Repro_mosp Repro_waveform Waveforms Zones
