lib/core/report.mli: Context Flow Repro_clocktree Repro_cts
