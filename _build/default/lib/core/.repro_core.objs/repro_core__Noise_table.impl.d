lib/core/noise_table.ml: Array Float Hashtbl Intervals List Repro_cell Repro_clocktree Repro_waveform Slots Waveforms Zones
