lib/core/related_baselines.mli: Repro_cell Repro_clocktree
