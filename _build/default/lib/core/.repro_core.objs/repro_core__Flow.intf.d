lib/core/flow.mli: Context Golden Repro_cell Repro_clocktree Repro_cts
