lib/core/slots.mli: Format Repro_cell
