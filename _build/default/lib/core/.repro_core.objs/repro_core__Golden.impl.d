lib/core/golden.ml: Array Float Repro_cell Repro_clocktree Repro_powergrid Repro_waveform Waveforms
