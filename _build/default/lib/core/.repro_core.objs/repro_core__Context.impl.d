lib/core/context.ml: Array Float Hashtbl Intervals List Noise_table Repro_cell Repro_clocktree Repro_waveform Waveforms Zones
