lib/core/clk_wavemin_m.mli: Adb_embedding Context Repro_cell Repro_clocktree
