lib/core/dynamic_polarity.ml: Array Clk_wavemin Clk_wavemin_m Context Float Repro_cell Repro_clocktree
