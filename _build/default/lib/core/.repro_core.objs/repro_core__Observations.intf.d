lib/core/observations.mli: Repro_clocktree
