lib/core/golden.mli: Repro_clocktree Repro_powergrid
