lib/core/context.mli: Intervals Noise_table Repro_cell Repro_clocktree Zones
