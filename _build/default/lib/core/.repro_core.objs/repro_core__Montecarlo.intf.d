lib/core/montecarlo.mli: Repro_clocktree Repro_util
