lib/core/multimode.mli: Context Intervals Noise_table Repro_cell Repro_clocktree Zones
