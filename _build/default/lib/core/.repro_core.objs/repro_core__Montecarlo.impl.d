lib/core/montecarlo.ml: Array Float Golden Repro_cell Repro_clocktree Repro_util
