lib/core/intervals.ml: Array Buffer List Repro_cell Repro_clocktree
