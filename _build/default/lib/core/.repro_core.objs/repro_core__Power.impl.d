lib/core/power.ml: Array Float Format Golden Repro_cell Repro_clocktree Repro_waveform Waveforms
