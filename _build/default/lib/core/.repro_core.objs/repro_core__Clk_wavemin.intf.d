lib/core/clk_wavemin.mli: Context Noise_table Repro_mosp
