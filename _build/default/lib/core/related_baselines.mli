(** Earlier polarity-assignment baselines from the paper's related work.

    - {!opposite_phase} — Nieh/Huang/Hsu [22]: split the clock tree into
      two halves at the root and give one half negative polarity, so
      roughly half the chip charges while the other discharges.  No
      placement or timing awareness.
    - {!placement_balanced} — Samanta/Venkataraman/Hu [23]: balance the
      polarities {e locally}: within every zone, assign negative
      polarity to half the leaves (round-robin in position order).
      Placement-aware, but blind to skew, sizing, waveforms and non-leaf
      current.

    Both keep every leaf's drive strength (only the polarity flips, by
    swapping to the same-drive inverter), which is how the paper's
    comparisons treat them. *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment
module Cell := Repro_cell.Cell

val flip_cell : Cell.t -> Cell.t
(** The same-drive cell of opposite polarity (BUF_X8 <-> INV_X8).
    @raise Invalid_argument for adjustable cells. *)

val opposite_phase : Tree.t -> Assignment.t -> Assignment.t
(** [22]: leaves under the root's first-half children flip polarity.
    (With a single root child, the subtree is split one level lower.) *)

val placement_balanced :
  ?zone_side:float -> Tree.t -> Assignment.t -> Assignment.t
(** [23]: per zone (default 50 um), flip every other leaf in x-then-y
    position order. *)
