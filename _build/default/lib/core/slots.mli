(** Time-sampling slots: the set S of the WaveMin objective.

    A slot is a (rail, time) pair; the estimate of the zone's peak
    current is the maximum over slots of the summed cell contributions
    at that slot (plus the non-leaf term).  Slot times are chosen per
    zone with the split-max strategy of Sec. VII-C: the window covered
    by the zone's default current waveform is divided into |S|/2
    sub-windows per rail and the argmax time of each sub-window is
    taken — for |S| = 4 this is exactly the paper's "maximum of each
    half of each rail's waveform", and for large |S| it converges to
    dense fine-grained sampling. *)

type t = { rail : Repro_cell.Cell.rail; time : float }

val of_currents :
  Repro_cell.Electrical.currents ->
  count:int ->
  ?extra_vdd:float list ->
  ?extra_gnd:float list ->
  ?windows:(float * float) list ->
  unit ->
  t array
(** Select [count] slots (half per rail, minimum one each) adapted to
    the given reference waveform pair.  [extra_vdd]/[extra_gnd] are
    priority sampling instants (candidate pulse peaks); they are taken
    first — subsampled uniformly if they alone exceed the rail budget —
    and the remaining budget is filled with the split-max grid of the
    reference waveform.  [windows] restricts the grid to time intervals
    (one per clock edge): pass the leaf switching windows so that the
    estimate samples where the assignment decision acts, with the
    non-leaf background entering as the tail it contributes there
    (Fig. 2(d) of the paper).
    @raise Invalid_argument if [count < 2]. *)

val sample : t array -> Repro_cell.Electrical.currents -> float array
(** Evaluate a cell's current contribution at every slot. *)

val pp : Format.formatter -> t -> unit
