(** Markdown run reports.

    Bundles everything a designer would want to see after optimizing one
    clock tree — tree statistics, per-algorithm golden metrics, power
    accounting, zone occupancy — as a self-contained markdown document
    (the CLI's [report] subcommand writes it to a file). *)

module Tree := Repro_clocktree.Tree

val for_tree :
  ?params:Context.params ->
  name:string ->
  Tree.t ->
  algorithms:Flow.algorithm list ->
  string
(** Run each algorithm on the tree and render the comparison report.
    Determinstic for a fixed tree and parameter set. *)

val for_benchmark :
  ?params:Context.params ->
  Repro_cts.Benchmarks.spec ->
  algorithms:Flow.algorithm list ->
  string
(** Synthesize the benchmark, then {!for_tree}. *)
