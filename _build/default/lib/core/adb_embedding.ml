module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Library = Repro_cell.Library
module Electrical = Repro_cell.Electrical

type result = {
  assignment : Assignment.t;
  num_adbs : int;
  skews : float array;
  feasible : bool;
}

let skews tree asg envs =
  Array.map
    (fun env -> Timing.skew tree (Timing.analyze tree asg env ~edge:Electrical.Rising))
    envs

let adb_steps = Library.adjustable_steps

(* Smallest selectable step >= value (the largest step when the need
   exceeds the ADB range). *)
let ceil_step value =
  let steps = adb_steps in
  let n = Array.length steps in
  let rec go i =
    if i >= n then steps.(n - 1)
    else if steps.(i) +. 1e-9 >= value then steps.(i)
    else go (i + 1)
  in
  go 0

(* Largest selectable step <= value. *)
let floor_step value =
  let steps = adb_steps in
  let n = Array.length steps in
  let rec go i best =
    if i >= n then best
    else if steps.(i) <= value +. 1e-9 then go (i + 1) steps.(i)
    else best
  in
  go 0 0.0

(* Selectable step closest to value. *)
let nearest_step value =
  let lo = floor_step value and hi = ceil_step value in
  if value -. lo <= hi -. value then lo else hi

let max_step = Array.fold_left Float.max 0.0 adb_steps

let nearest_drive drive =
  let best = ref (List.hd Library.drives) in
  List.iter
    (fun d -> if abs (d - drive) < abs (!best - drive) then best := d)
    Library.drives;
  !best

let embed ?(max_rounds = 8) tree base ~envs ~kappa =
  if kappa <= 0.0 then invalid_arg "Adb_embedding.embed: kappa <= 0";
  let num_modes = Array.length envs in
  if num_modes = 0 then invalid_arg "Adb_embedding.embed: no modes";
  if num_modes <> Assignment.num_modes base then
    invalid_arg "Adb_embedding.embed: envs/assignment mode count mismatch";
  let n = Tree.size tree in
  let guard = 0.15 *. kappa in
  let round asg =
    let timings =
      Array.map (fun env -> Timing.analyze tree asg env ~edge:Electrical.Rising) envs
    in
    let current_skews = Array.map (Timing.skew tree) timings in
    if Array.for_all (fun s -> s <= kappa) current_skews then (asg, false)
    else begin
      (* Per-mode need of each leaf to reach the mode's arrival window. *)
      let need = Array.make_matrix num_modes n 0.0 in
      Array.iteri
        (fun m timing ->
          let arrivals = Timing.sink_arrivals tree timing in
          let t_max =
            Array.fold_left (fun acc (_, t) -> Float.max acc t) neg_infinity arrivals
          in
          Array.iter
            (fun (leaf, t) ->
              need.(m).(leaf) <- Float.max 0.0 (t_max -. kappa +. guard -. t))
            arrivals)
        timings;
      (* Hierarchical absorption: a node absorbs (up to the ADB range)
         the smallest residual need of the leaves below it; the
         remainder propagates towards the leaves. *)
      let absorb = Array.make_matrix num_modes n 0.0 in
      let rec walk id inherited =
        let nd = Tree.node tree id in
        match nd.Tree.kind with
        | Tree.Leaf ->
          Array.iteri
            (fun m inh ->
              let rest = Float.max 0.0 (need.(m).(id) -. inh) in
              (* Nearest step: a small undershoot is recovered next
                 round, a large overshoot would create new skew. *)
              if rest > 0.5 then absorb.(m).(id) <- nearest_step rest)
            inherited
        | Tree.Internal ->
          (* Smallest per-mode need among the leaves below; all of them
             share this node's [inherited] coverage. *)
          let min_need = Array.make num_modes infinity in
          let rec scan nid =
            let nnd = Tree.node tree nid in
            match nnd.Tree.kind with
            | Tree.Leaf ->
              for m = 0 to num_modes - 1 do
                min_need.(m) <- Float.min min_need.(m) need.(m).(nid)
              done
            | Tree.Internal -> List.iter scan nnd.Tree.children
          in
          scan id;
          let here =
            Array.mapi
              (fun m mn ->
                let rest = Float.max 0.0 (mn -. inherited.(m)) in
                (* Floor: internal overshoot accumulates along the path
                   and would manufacture new skew; leaves make up the
                   remainder. *)
                if rest < 0.5 then 0.0 else Float.min max_step (floor_step rest))
              min_need
          in
          (* Chains (single-child repeaters) are prime ADB sites too:
             they delay exactly one subtree. *)
          if Array.exists (fun a -> a > 0.0) here then
            Array.iteri (fun m a -> absorb.(m).(id) <- a) here;
          let inherited' =
            Array.mapi (fun m inh -> inh +. absorb.(m).(id)) inherited
          in
          List.iter (fun c -> walk c inherited') nd.Tree.children
      in
      walk (Tree.root tree).Tree.id (Array.make num_modes 0.0);
      (* Apply: convert absorbing nodes to ADBs and program them. *)
      let asg = ref asg in
      let changed = ref false in
      for id = 0 to n - 1 do
        let any = ref false in
        for m = 0 to num_modes - 1 do
          if absorb.(m).(id) > 0.0 then any := true
        done;
        if !any then begin
          changed := true;
          let prev = Assignment.cell !asg id in
          let prev_extra =
            Array.init num_modes (fun m -> Assignment.extra_delay !asg ~mode:m id)
          in
          (if not (Cell.is_adjustable prev) then
             let drive = nearest_drive prev.Cell.drive in
             asg := Assignment.set_cell !asg id (Library.adb drive));
          for m = 0 to num_modes - 1 do
            let total =
              Float.min max_step
                (nearest_step (prev_extra.(m) +. absorb.(m).(id)))
            in
            if total > 0.0 then
              asg := Assignment.set_extra_delay !asg ~mode:m id total
          done
        end
      done;
      (!asg, !changed)
    end
  in
  let rec iterate asg k =
    if k >= max_rounds then asg
    else
      let asg', changed = round asg in
      if changed then iterate asg' (k + 1) else asg'
  in
  let final = iterate base 0 in
  let final_skews = skews tree final envs in
  let num_adbs =
    let count = ref 0 in
    for id = 0 to n - 1 do
      if Cell.is_adjustable (Assignment.cell final id) then incr count
    done;
    !count
  in
  {
    assignment = final;
    num_adbs;
    skews = final_skews;
    feasible = Array.for_all (fun s -> s <= kappa) final_skews;
  }
