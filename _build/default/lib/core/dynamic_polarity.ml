module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Library = Repro_cell.Library

let xor_area_overhead = 1.1

let inverting_twin (cell : Cell.t) =
  match cell.Cell.kind with
  | Cell.Buffer ->
    Cell.make
      ~name:("~" ^ cell.Cell.name)
      ~kind:Cell.Inverter ~drive:cell.Cell.drive ~input_cap:cell.Cell.input_cap
      ~output_res:cell.Cell.output_res
        (* The twin's output edge is the opposite of the buffer's for the
           same input edge; swapping the intrinsics makes the two cells
           delay-matched per input edge. *)
      ~intrinsic_rise:cell.Cell.intrinsic_fall
      ~intrinsic_fall:cell.Cell.intrinsic_rise
      ~area:(cell.Cell.area +. xor_area_overhead)
      ()
  | Cell.Inverter | Cell.Adjustable_buffer | Cell.Adjustable_inverter ->
    invalid_arg "Dynamic_polarity.inverting_twin: driver must be a plain buffer"

type outcome = {
  polarity_bits : bool array array;
  assignments : Assignment.t array;
  predicted_peak_ua : float;
  area_overhead : float;
}

let optimize ?(params = Context.default_params) ?(driver = Library.buf 8) tree
    ~envs =
  if Array.length envs = 0 then invalid_arg "Dynamic_polarity.optimize: no modes";
  let twin = inverting_twin driver in
  let leaves = Tree.leaves tree in
  (* The twin is delay-matched, so the skew bound can never be the
     binding constraint: relax kappa enough that the single interval
     class admits both polarities everywhere. *)
  let solutions =
    Array.map
      (fun env ->
        (* Single-mode context in this mode's environment; mode index
           must be 0 for a fresh 1-mode base assignment.  Polarity bits
           are delay-neutral, so the skew bound is vacuous here: widen
           it past this mode's base skew so the (unique) interval class
           admits both polarities everywhere. *)
        let env0 = { env with Timing.mode = 0 } in
        let base = Assignment.default tree ~num_modes:1 in
        let base_skew =
          Timing.skew tree
            (Timing.analyze tree base env0 ~edge:Repro_cell.Electrical.Rising)
        in
        let params =
          { params with
            Context.kappa =
              Float.max params.Context.kappa
                (base_skew +. params.Context.sibling_guard +. 1.0) }
        in
        let ctx = Context.create ~params ~env:env0 tree ~cells:[ driver; twin ] in
        if not (Context.feasible ctx) then
          failwith "Dynamic_polarity.optimize: no feasible interval (unexpected)";
        Clk_wavemin.optimize ctx)
      envs
  in
  let polarity_bits =
    Array.map
      (fun (sol : Context.outcome) ->
        Array.map
          (fun nd ->
            Cell.polarity (Assignment.cell sol.Context.assignment nd.Tree.id)
            = Cell.Negative)
          leaves)
      solutions
  in
  let predicted_peak_ua =
    Array.fold_left
      (fun acc (sol : Context.outcome) ->
        Float.max acc sol.Context.predicted_peak_ua)
      0.0 solutions
  in
  {
    polarity_bits;
    assignments = Array.map (fun (s : Context.outcome) -> s.Context.assignment) solutions;
    predicted_peak_ua;
    area_overhead = xor_area_overhead *. float_of_int (Array.length leaves);
  }

let static_gap ?(params = Context.default_params) tree ~envs =
  let dynamic = optimize ~params tree ~envs in
  let static = Clk_wavemin_m.optimize ~params tree ~envs in
  (dynamic.predicted_peak_ua, static.Clk_wavemin_m.predicted_peak_ua)
