module Tree = Repro_clocktree.Tree
module Wire = Repro_clocktree.Wire
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Library = Repro_cell.Library
module Electrical = Repro_cell.Electrical
module Pwl = Repro_waveform.Pwl

type fig2_row = {
  polarities : string;
  leaf_peak_ua : float;
  total_peak_ua : float;
}

type fig2 = {
  rows : fig2_row list;
  best_by_leaf : fig2_row;
  best_by_total : fig2_row;
  divergence : bool;
}

(* Fig. 2(a): a root buffer driving two internal buffers, each driving
   two leaves.  The internal nets are long (heavy wire capacitance), so
   the internal buffers run saturated with wide current pulses that
   overlap the leaf switching window — the non-leaf current fluctuation
   of Observation 1.  Because the internal cells are positive-polarity
   buffers, that background loads the V_DD rail, and the total-optimal
   leaf assignment leans further towards inverters than the leaf-only
   optimum does. *)
let example_tree () =
  let node id parent children kind x y wire_len sink_cap cell =
    {
      Tree.id;
      parent;
      children;
      kind;
      x;
      y;
      wire = Wire.of_length wire_len;
      sink_cap;
      default_cell = cell;
    }
  in
  Tree.create
    [|
      node 0 None [ 1; 2 ] Tree.Internal 50.0 50.0 0.0 0.0 (Library.buf 8);
      node 1 (Some 0) [ 3; 4 ] Tree.Internal 25.0 40.0 140.0 0.0 (Library.buf 8);
      node 2 (Some 0) [ 5; 6 ] Tree.Internal 80.0 65.0 200.0 0.0 (Library.buf 8);
      node 3 (Some 1) [] Tree.Leaf 15.0 30.0 60.0 11.0 (Library.buf 8);
      node 4 (Some 1) [] Tree.Leaf 30.0 55.0 90.0 16.0 (Library.buf 8);
      node 5 (Some 2) [] Tree.Leaf 70.0 80.0 70.0 10.0 (Library.buf 8);
      node 6 (Some 2) [] Tree.Leaf 95.0 60.0 100.0 17.0 (Library.buf 8);
    |]

let fig2 () =
  let tree = example_tree () in
  let env = Timing.nominal () in
  let leaves = Array.map (fun nd -> nd.Tree.id) (Tree.leaves tree) in
  let rows =
    List.init 16 (fun mask ->
        let asg = ref (Assignment.default tree ~num_modes:1) in
        let polarities = Bytes.make 4 'P' in
        Array.iteri
          (fun i leaf ->
            if mask land (1 lsl i) <> 0 then begin
              Bytes.set polarities i 'N';
              asg := Assignment.set_cell !asg leaf (Library.inv 8)
            end)
          leaves;
        let asg = !asg in
        let timing = Timing.analyze tree asg env ~edge:Electrical.Rising in
        let sum ids =
          let cs = Array.map (Waveforms.node_currents tree asg env timing) ids in
          let idd =
            Pwl.sum (Array.to_list (Array.map (fun c -> c.Electrical.idd) cs))
          in
          let iss =
            Pwl.sum (Array.to_list (Array.map (fun c -> c.Electrical.iss) cs))
          in
          Float.max (Pwl.peak idd) (Pwl.peak iss)
        in
        let all = Array.map (fun nd -> nd.Tree.id) (Tree.nodes tree) in
        {
          polarities = Bytes.to_string polarities;
          leaf_peak_ua = sum leaves;
          total_peak_ua = sum all;
        })
  in
  let argmin f =
    match rows with
    | [] -> assert false
    | first :: rest ->
      List.fold_left (fun acc r -> if f r < f acc then r else acc) first rest
  in
  let best_by_leaf = argmin (fun r -> r.leaf_peak_ua) in
  let best_by_total = argmin (fun r -> r.total_peak_ua) in
  {
    rows;
    best_by_leaf;
    best_by_total;
    divergence =
      (not (String.equal best_by_leaf.polarities best_by_total.polarities))
      || best_by_leaf.total_peak_ua > best_by_total.total_peak_ua +. 1e-9;
  }

type fig3 = { peak_without_adi : float; peak_with_adi : float; adi_helps : bool }

(* Observation 3 as an abstract two-mode instance.  Three sinks whose
   feasible intersection admits only buffers (as happens in Table IV,
   where some intervals leave a sink with buffer types only), plus one
   sink that must stay delay-adjustable for skew repair.  Without the
   ADI every cell loads the V_DD rail; allowing the ADB to become an ADI
   moves its burden onto the idle Gnd rail and strictly lowers the worst
   peak over both modes. *)
let fig3 () =
  (* (P+ mode1, P- mode1, P+ mode2, P- mode2) *)
  let buf = [| 10.0; 2.0; 9.0; 2.0 |] in
  let adb = [| 11.0; 2.0; 10.0; 2.0 |] in
  let adi = [| 3.0; 11.0; 2.0; 10.0 |] in
  let solve adjustable_lib =
    let plain = [ buf ] in
    let options =
      [| Array.of_list plain; Array.of_list plain; Array.of_list plain;
         Array.of_list adjustable_lib |]
    in
    let graph =
      Repro_mosp.Layered.create ~options ~dest_weight:(Array.make 4 0.0)
    in
    (Repro_mosp.Warburton.exhaustive_min_max graph).Repro_mosp.Warburton.objective
  in
  let peak_without_adi = solve [ adb ] in
  let peak_with_adi = solve [ adb; adi ] in
  {
    peak_without_adi;
    peak_with_adi;
    adi_helps = peak_with_adi <= peak_without_adi +. 1e-9;
  }
