module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Electrical = Repro_cell.Electrical
module Pwl = Repro_waveform.Pwl

type report = {
  charge_per_cycle_fc : float;
  avg_power_uw : float;
  peak_current_ma : float;
  peak_to_average : float;
  leaf_share : float;
}

let analyze ?(period = Golden.default_period) tree asg env =
  let all = Waveforms.period_rail_currents tree asg env ~period () in
  let leaf_ids = Array.map (fun nd -> nd.Tree.id) (Tree.leaves tree) in
  let leaves =
    let rising = Timing.analyze tree asg env ~edge:Electrical.Rising in
    let falling = Timing.analyze tree asg env ~edge:Electrical.Falling in
    let r = Waveforms.total_rail_currents tree asg env rising ~node_ids:leaf_ids () in
    let f = Waveforms.total_rail_currents tree asg env falling ~node_ids:leaf_ids () in
    Pwl.add r.Electrical.idd (Pwl.shift f.Electrical.idd (period /. 2.0))
  in
  (* uA*ps = aC; /1000 -> fC. *)
  let total_charge_ac = Pwl.area all.Electrical.idd in
  let leaf_charge_ac = Pwl.area leaves in
  let charge_per_cycle_fc = total_charge_ac /. 1000.0 in
  (* P = Q * V / T: fC * V / ps = mW; * 1000 -> uW. *)
  let vdd = env.Timing.vdd_of (Tree.root tree) in
  let avg_power_uw = charge_per_cycle_fc *. vdd /. period *. 1000.0 in
  let peak_ua =
    Float.max (Pwl.peak all.Electrical.idd) (Pwl.peak all.Electrical.iss)
  in
  let avg_current_ua = total_charge_ac /. period in
  {
    charge_per_cycle_fc;
    avg_power_uw;
    peak_current_ma = peak_ua /. 1000.0;
    peak_to_average =
      (if avg_current_ua > 0.0 then peak_ua /. avg_current_ua else 1.0);
    leaf_share =
      (if total_charge_ac > 0.0 then leaf_charge_ac /. total_charge_ac else 0.0);
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>charge/cycle: %.1f fC@,average power: %.2f uW@,\
     peak current: %.2f mA (peak/avg %.1f)@,leaf share of charge: %.0f%%@]"
    r.charge_per_cycle_fc r.avg_power_uw r.peak_current_ma r.peak_to_average
    (100.0 *. r.leaf_share)
