(** Clock-tree power accounting.

    Polarity assignment redistributes {e when} and {e on which rail}
    charge moves, but the total switching charge per cycle is an
    invariant of the tree (loads don't change; only cell swaps move it
    slightly).  This module reports the classic numbers a clock-power
    tool prints: per-cycle charge, average dynamic power at a clock
    frequency, and the peak-to-average ratio that the paper's
    optimization improves. *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment
module Timing := Repro_clocktree.Timing

type report = {
  charge_per_cycle_fc : float;
      (** Total V_DD charge moved per clock period (fC). *)
  avg_power_uw : float;  (** Average dynamic power (uW) at the period. *)
  peak_current_ma : float;  (** Worst instantaneous rail current. *)
  peak_to_average : float;
      (** Peak current over the cycle-average current — the crest the
          polarity assignment flattens (1.0 when there is no current). *)
  leaf_share : float;
      (** Fraction of the charge drawn by leaf cells (0 when no charge
          moves). *)
}

val analyze :
  ?period:float -> Tree.t -> Assignment.t -> Timing.env -> report
(** Full-period waveform-based accounting ([period] defaults to
    {!Golden.default_period}). *)

val pp : Format.formatter -> report -> unit
