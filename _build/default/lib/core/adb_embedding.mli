(** Adjustable-delay-buffer embedding for multi-mode skew repair (the
    role of Lim/Kim [16] and Kim/Joo/Kim [17] in the ClkWaveMin-M flow,
    Fig. 13).

    When buffer sizing alone cannot satisfy the skew bound in every
    power mode, some buffers are replaced by ADBs whose capacitor-bank
    delay is programmed per mode.  The embedding computes, for every
    mode, how much extra delay each sink needs to land inside the mode's
    arrival window, absorbs the common part of each subtree's need at
    internal nodes (fewer ADBs), quantizes to the ADB delay steps, and
    iterates until the skew of every mode meets the bound or no progress
    is made. *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment
module Timing := Repro_clocktree.Timing

type result = {
  assignment : Assignment.t;  (** With ADBs placed and programmed. *)
  num_adbs : int;  (** Buffers converted to ADBs (leaf and internal). *)
  skews : float array;  (** Final skew per mode, ps. *)
  feasible : bool;  (** All mode skews within the bound. *)
}

val skews : Tree.t -> Assignment.t -> Timing.env array -> float array
(** Per-mode clock skew of an assignment. *)

val embed :
  ?max_rounds:int ->
  Tree.t ->
  Assignment.t ->
  envs:Timing.env array ->
  kappa:float ->
  result
(** Insert and program ADBs on the base assignment ([max_rounds]
    refinement rounds, default 4).
    @raise Invalid_argument if [kappa <= 0] or [envs] is empty. *)
