module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Pwl = Repro_waveform.Pwl
module Sampling = Repro_waveform.Sampling

type t = { rail : Cell.rail; time : float }

let subsample k items =
  let arr = Array.of_list (List.sort_uniq compare items) in
  let n = Array.length arr in
  if n <= k then Array.to_list arr
  else
    List.init k (fun i -> arr.(i * n / k))

let of_currents (currents : Electrical.currents) ~count ?(extra_vdd = [])
    ?(extra_gnd = []) ?(windows = []) () =
  if count < 2 then invalid_arg "Slots.of_currents: count < 2";
  let per_rail = max 1 (count / 2) in
  let windows = List.filter (fun (t0, t1) -> t1 > t0) windows in
  let rail_slots rail w extras =
    (* Priority instants first, grid for the remainder, the grid budget
       spread evenly over the event windows (one per clock edge). *)
    let chosen = subsample per_rail extras in
    let remaining = per_rail - List.length chosen in
    let grid =
      if remaining <= 0 then []
      else
        match windows with
        | [] -> Array.to_list (Sampling.split_max_times w ~halves:remaining)
        | windows ->
          let n = List.length windows in
          List.concat
            (List.mapi
               (fun i (t0, t1) ->
                 let budget = (remaining / n) + (if i < remaining mod n then 1 else 0) in
                 if budget <= 0 then []
                 else
                   Array.to_list
                     (Sampling.split_max_times_in w ~t0 ~t1 ~halves:budget))
               windows)
    in
    Sampling.merge [ Array.of_list chosen; Array.of_list grid ]
    |> Array.map (fun time -> { rail; time })
  in
  Array.append
    (rail_slots Cell.Vdd_rail currents.Electrical.idd extra_vdd)
    (rail_slots Cell.Gnd_rail currents.Electrical.iss extra_gnd)

let sample slots (currents : Electrical.currents) =
  Array.map
    (fun slot ->
      match slot.rail with
      | Cell.Vdd_rail -> Pwl.eval currents.Electrical.idd slot.time
      | Cell.Gnd_rail -> Pwl.eval currents.Electrical.iss slot.time)
    slots

let pp fmt slot =
  Format.fprintf fmt "%a@%.1fps" Cell.pp_rail slot.rail slot.time
