module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Electrical = Repro_cell.Electrical
module Pwl = Repro_waveform.Pwl
module Grid = Repro_powergrid.Grid
module Noise = Repro_powergrid.Noise

type metrics = {
  peak_current_ma : float;
  vdd_noise_mv : float;
  gnd_noise_mv : float;
  skew_ps : float;
}

let default_period = 2000.0

let default_grid tree =
  let side =
    Array.fold_left
      (fun acc nd -> Float.max acc (Float.max nd.Tree.x nd.Tree.y))
      1.0 (Tree.nodes tree)
  in
  Grid.create ~die_side:(side *. 1.02) ()

let node_injections tree asg env ~period =
  let rising = Timing.analyze tree asg env ~edge:Electrical.Rising in
  let falling = Timing.analyze tree asg env ~edge:Electrical.Falling in
  let per_node nd =
    let id = nd.Tree.id in
    let r = Waveforms.node_currents tree asg env rising id in
    let f = Waveforms.node_currents tree asg env falling id in
    let idd =
      Pwl.add r.Electrical.idd (Pwl.shift f.Electrical.idd (period /. 2.0))
    in
    let iss =
      Pwl.add r.Electrical.iss (Pwl.shift f.Electrical.iss (period /. 2.0))
    in
    (nd, { Electrical.idd; iss })
  in
  (rising, Array.map per_node (Tree.nodes tree))

let evaluate ?(period = default_period) ?grid ?(noise_samples = 48) tree asg env =
  let grid = match grid with Some g -> g | None -> default_grid tree in
  let rising, injections = node_injections tree asg env ~period in
  let total_idd =
    Pwl.sum (Array.to_list (Array.map (fun (_, c) -> c.Electrical.idd) injections))
  in
  let total_iss =
    Pwl.sum (Array.to_list (Array.map (fun (_, c) -> c.Electrical.iss) injections))
  in
  let peak_ua = Float.max (Pwl.peak total_idd) (Pwl.peak total_iss) in
  let vdd_inj =
    Array.to_list
      (Array.map
         (fun ((nd : Tree.node), (c : Electrical.currents)) ->
           { Noise.x = nd.Tree.x; y = nd.Tree.y; waveform = c.Electrical.idd })
         injections)
  in
  let gnd_inj =
    Array.to_list
      (Array.map
         (fun ((nd : Tree.node), (c : Electrical.currents)) ->
           { Noise.x = nd.Tree.x; y = nd.Tree.y; waveform = c.Electrical.iss })
         injections)
  in
  let times = Noise.default_times (vdd_inj @ gnd_inj) ~count:noise_samples in
  let report = Noise.evaluate grid ~vdd:vdd_inj ~gnd:gnd_inj ~times in
  {
    peak_current_ma = peak_ua /. 1000.0;
    vdd_noise_mv = report.Noise.vdd_noise_mv;
    gnd_noise_mv = report.Noise.gnd_noise_mv;
    skew_ps = Timing.skew tree rising;
  }

let worst_over_modes ?period ?grid ?noise_samples tree asg envs =
  if Array.length envs = 0 then
    invalid_arg "Golden.worst_over_modes: no modes";
  let metrics =
    Array.map (fun env -> evaluate ?period ?grid ?noise_samples tree asg env) envs
  in
  Array.fold_left
    (fun acc m ->
      {
        peak_current_ma = Float.max acc.peak_current_ma m.peak_current_ma;
        vdd_noise_mv = Float.max acc.vdd_noise_mv m.vdd_noise_mv;
        gnd_noise_mv = Float.max acc.gnd_noise_mv m.gnd_noise_mv;
        skew_ps = Float.max acc.skew_ps m.skew_ps;
      })
    metrics.(0) metrics
