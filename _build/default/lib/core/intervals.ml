module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell

type candidate = { cell : Cell.t; extra : float; arrival : float }

type sink = { leaf_id : Tree.node_id; candidates : candidate array }

let collect_per_leaf tree asg env timing ~cells_of =
  Array.map
    (fun nd ->
      let leaf_id = nd.Tree.id in
      let cells = cells_of leaf_id in
      if cells = [] then
        invalid_arg "Intervals.collect_per_leaf: empty leaf library";
      let candidates =
        List.concat_map
          (fun cell ->
            (* leaf_delay already includes the base assignment's setting
               for adjustable cells; candidates span the selectable
               steps instead. *)
            let d = Timing.leaf_delay tree asg env timing leaf_id cell in
            let base =
              d
              -. (if Cell.is_adjustable cell then
                    Repro_clocktree.Assignment.extra_delay asg
                      ~mode:env.Timing.mode leaf_id
                  else 0.0)
            in
            let steps =
              if Cell.is_adjustable cell then
                Array.to_list cell.Cell.delay_steps
              else [ 0.0 ]
            in
            List.map
              (fun extra ->
                {
                  cell;
                  extra;
                  arrival =
                    timing.Timing.input_arrival.(leaf_id) +. base +. extra;
                })
              steps)
          cells
        |> Array.of_list
      in
      { leaf_id; candidates })
    (Tree.leaves tree)

let collect tree asg env timing ~cells =
  collect_per_leaf tree asg env timing ~cells_of:(fun _ -> cells)

type interval = { lo : float; hi : float }

let inside iv arrival = arrival >= iv.lo -. 1e-9 && arrival <= iv.hi +. 1e-9

let feasible sinks iv =
  Array.for_all
    (fun s -> Array.exists (fun c -> inside iv c.arrival) s.candidates)
    sinks

let feasible_intervals ?(coalesce = 0.25) sinks ~kappa =
  if kappa <= 0.0 then invalid_arg "Intervals.feasible_intervals: kappa <= 0";
  let arrivals =
    Array.to_list sinks
    |> List.concat_map (fun s ->
           Array.to_list (Array.map (fun c -> c.arrival) s.candidates))
    |> List.sort_uniq compare
  in
  (* Coalesce near-equal arrival times to bound the interval count.  The
     representative of each merged run is its LARGEST member: intervals
     are [t - kappa, t], so only a representative at least as large as
     every member of its run still covers the run. *)
  let arrivals =
    List.fold_left
      (fun acc t ->
        match acc with
        | prev :: rest when t -. prev < coalesce -> t :: rest
        | _ -> t :: acc)
      [] arrivals
    |> List.rev
  in
  arrivals
  |> List.map (fun hi -> { lo = hi -. kappa; hi })
  |> List.filter (feasible sinks)

let availability sinks iv =
  Array.map
    (fun s -> Array.map (fun c -> inside iv c.arrival) s.candidates)
    sinks

let signature avail =
  let buf = Buffer.create 128 in
  Array.iter
    (fun row ->
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) row;
      Buffer.add_char buf '|')
    avail;
  Buffer.contents buf
