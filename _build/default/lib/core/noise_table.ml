module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Electrical = Repro_cell.Electrical
module Pwl = Repro_waveform.Pwl

type t = {
  zone : Zones.zone;
  slots : Slots.t array;
  sinks : Intervals.sink array;
  sink_rows : int array;
  noise : float array array array;
  nonleaf : float array;
  cand_peak : float array array;
}

let default_period = 2000.0

let add_currents (a : Electrical.currents) (b : Electrical.currents) =
  {
    Electrical.idd = Pwl.add a.Electrical.idd b.Electrical.idd;
    iss = Pwl.add a.Electrical.iss b.Electrical.iss;
  }

let support_union acc w =
  match (Pwl.support w, acc) with
  | None, acc -> acc
  | Some (a, b), None -> Some (a, b)
  | Some (a, b), Some (lo, hi) -> Some (Float.min a lo, Float.max b hi)

let build tree asg env ~rising ~falling ?(period = default_period) ~sinks
    ~zone ~num_slots ?background () =
  let row_of_leaf = Hashtbl.create 16 in
  Array.iteri
    (fun row (s : Intervals.sink) ->
      Hashtbl.replace row_of_leaf s.Intervals.leaf_id row)
    sinks;
  let sink_rows =
    Array.map
      (fun leaf ->
        match Hashtbl.find_opt row_of_leaf leaf with
        | Some row -> row
        | None -> invalid_arg "Noise_table.build: zone leaf missing from sinks")
      zone.Zones.leaf_ids
  in
  let zone_sinks = Array.map (fun row -> sinks.(row)) sink_rows in
  (* Per candidate: the rising-edge and (already period/2-shifted)
     falling-edge pulse pairs, both also shifted by the candidate's
     adjustable delay step. *)
  let cand_pairs =
    Array.map
      (fun (s : Intervals.sink) ->
        Array.map
          (fun (c : Intervals.candidate) ->
            let r, f =
              Waveforms.candidate_period_currents tree env ~rising ~falling
                s.Intervals.leaf_id c.Intervals.cell ~period
            in
            let shift (x : Electrical.currents) =
              {
                Electrical.idd = Pwl.shift x.Electrical.idd c.Intervals.extra;
                iss = Pwl.shift x.Electrical.iss c.Intervals.extra;
              }
            in
            (shift r, shift f))
          s.Intervals.candidates)
      zone_sinks
  in
  let cand_currents =
    Array.map (Array.map (fun (r, f) -> add_currents r f)) cand_pairs
  in
  (* Slot selection: the paper samples both rails at both clock edges
     (Sec. III); every candidate pulse peak is a priority instant and
     the remaining budget is spread over the two per-edge leaf switching
     windows (Fig. 7). *)
  let peak_times rail_of =
    Array.to_list cand_pairs
    |> List.concat_map (fun per_sink ->
           Array.to_list per_sink
           |> List.concat_map (fun (r, f) ->
                  [ Pwl.peak_time (rail_of r); Pwl.peak_time (rail_of f) ]))
  in
  let window part =
    Array.fold_left
      (fun acc per_sink ->
        Array.fold_left
          (fun acc pair ->
            let (c : Electrical.currents) = part pair in
            support_union (support_union acc c.Electrical.idd) c.Electrical.iss)
          acc per_sink)
      None cand_pairs
  in
  let windows = List.filter_map (fun w -> w) [ window fst; window snd ] in
  (* Reference waveform for the grid: the zone's default leaf cells over
     the whole period. *)
  let reference =
    let r =
      Waveforms.total_rail_currents tree asg env rising
        ~node_ids:zone.Zones.leaf_ids ()
    in
    let f =
      Waveforms.total_rail_currents tree asg env falling
        ~node_ids:zone.Zones.leaf_ids ()
    in
    add_currents r
      {
        Electrical.idd = Pwl.shift f.Electrical.idd (period /. 2.0);
        iss = Pwl.shift f.Electrical.iss (period /. 2.0);
      }
  in
  let slots =
    Slots.of_currents reference ~count:num_slots
      ~extra_vdd:(peak_times (fun (c : Electrical.currents) -> c.Electrical.idd))
      ~extra_gnd:(peak_times (fun (c : Electrical.currents) -> c.Electrical.iss))
      ~windows ()
  in
  let nonleaf_currents =
    match background with
    | Some (global, share) ->
      (* The zone accounts for a leaf-proportional share of the entire
         chip's non-leaf current; the shares sum to one, so optimizing
         zones independently balances the global waveform without
         double counting. *)
      {
        Electrical.idd = Pwl.scale global.Electrical.idd share;
        iss = Pwl.scale global.Electrical.iss share;
      }
    | None ->
      if Array.length zone.Zones.internal_ids = 0 then
        { Electrical.idd = Pwl.zero; iss = Pwl.zero }
      else
        let r =
          Waveforms.total_rail_currents tree asg env rising
            ~node_ids:zone.Zones.internal_ids ()
        in
        let f =
          Waveforms.total_rail_currents tree asg env falling
            ~node_ids:zone.Zones.internal_ids ()
        in
        add_currents r
          {
            Electrical.idd = Pwl.shift f.Electrical.idd (period /. 2.0);
            iss = Pwl.shift f.Electrical.iss (period /. 2.0);
          }
  in
  let clamp = Array.map (fun v -> Float.max 0.0 v) in
  let nonleaf = clamp (Slots.sample slots nonleaf_currents) in
  let noise =
    Array.map (Array.map (fun c -> clamp (Slots.sample slots c))) cand_currents
  in
  let cand_peak =
    Array.map
      (Array.map (fun (c : Electrical.currents) ->
           Float.max (Pwl.peak c.Electrical.idd) (Pwl.peak c.Electrical.iss)))
      cand_currents
  in
  { zone; slots; sinks = zone_sinks; sink_rows; noise; nonleaf; cand_peak }

let zone_objective t ~choices =
  if Array.length choices <> Array.length t.sinks then
    invalid_arg "Noise_table.zone_objective: arity mismatch";
  let acc = Array.copy t.nonleaf in
  Array.iteri
    (fun zi ci ->
      let v = t.noise.(zi).(ci) in
      Array.iteri (fun si x -> acc.(si) <- acc.(si) +. x) v)
    choices;
  Array.fold_left Float.max 0.0 acc
