(** The motivating observations of Sec. II as executable experiments.

    [fig2] reproduces Observation 1/2: on a 4-leaf clock tree, the
    polarity assignment that minimizes the {e leaf-only} peak current is
    not the one that minimizes the {e total} (leaf + non-leaf) peak,
    because the non-leaf pulses skew the accumulated waveform.

    [fig3] reproduces Observation 3: on a two-power-mode toy instance
    where one sink must stay delay-adjustable for skew reasons, adding
    the ADI cell to the library strictly reduces the achievable peak
    noise versus buffers/inverters/ADB alone. *)

type fig2_row = {
  polarities : string;  (** e.g. "NNPP": N = inverter, P = buffer. *)
  leaf_peak_ua : float;  (** Peak of the summed leaf waveforms. *)
  total_peak_ua : float;  (** Peak including the non-leaf waveforms. *)
}

type fig2 = {
  rows : fig2_row list;  (** All 16 assignments. *)
  best_by_leaf : fig2_row;  (** Argmin of [leaf_peak_ua]. *)
  best_by_total : fig2_row;  (** Argmin of [total_peak_ua]. *)
  divergence : bool;
      (** The two argmins select different assignments, or the
          leaf-optimal assignment is total-suboptimal. *)
}

val example_tree : unit -> Repro_clocktree.Tree.t
(** The 4-leaf, 3-internal-node toy tree of Fig. 2(a). *)

val fig2 : unit -> fig2

type fig3 = {
  peak_without_adi : float;
  peak_with_adi : float;
  adi_helps : bool;  (** [peak_with_adi <= peak_without_adi]. *)
}

val fig3 : unit -> fig3
