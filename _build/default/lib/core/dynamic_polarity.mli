(** Reconfigurable (XOR-gate) polarity assignment — the extension of
    Lu/Taskin [30] and Lu/Teng/Taskin [31] the paper cites as recent
    related work.

    With an XOR gate in front of each leaf driver and double-edge
    triggered flip-flops, a leaf's polarity becomes a {e configuration
    bit} that can differ per power mode, without swapping cells and
    (ideally) without touching the timing.  That removes both
    restrictions static assignment fights with: the skew constraint
    (polarity selection is delay-neutral) and the one-setting-for-all-
    modes coupling.  The achievable peak is therefore a lower bound for
    any static assignment over the same cell — which is exactly what
    this module is for: quantifying how much of the gap ClkWaveMin-M
    leaves on the table.

    Modelling: each leaf keeps one driver cell; its inverting alter ego
    is a synthetic cell with identical electrical parameters but
    negative polarity (plus the XOR's area overhead).  Per power mode an
    independent single-mode ClkWaveMin solves for the polarity bits. *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment
module Timing := Repro_clocktree.Timing
module Cell := Repro_cell.Cell

val xor_area_overhead : float
(** um^2 added per leaf for the XOR selector (1.1). *)

val inverting_twin : Cell.t -> Cell.t
(** The delay-matched negative-polarity twin of a (positive) driver
    cell; its name gets an ["~"] prefix.
    @raise Invalid_argument if the cell is not a plain buffer. *)

type outcome = {
  polarity_bits : bool array array;
      (** [polarity_bits.(m).(i)]: leaf [i] (in {!Tree.leaves} order)
          inverts in mode [m]. *)
  assignments : Assignment.t array;
      (** Per-mode static-equivalent assignments (for evaluation). *)
  predicted_peak_ua : float;  (** Worst mode's zone estimate. *)
  area_overhead : float;  (** Total XOR area added (um^2). *)
}

val optimize :
  ?params:Context.params ->
  ?driver:Cell.t ->
  Tree.t ->
  envs:Timing.env array ->
  outcome
(** Choose per-mode polarity bits ([driver] defaults to BUF_X8).  Every
    mode is solved independently; because the twin is delay-matched,
    every sink admits both polarities in every interval and skew equals
    the all-buffer tree's skew in each mode.
    @raise Invalid_argument if [envs] is empty or badly indexed. *)

val static_gap :
  ?params:Context.params -> Tree.t -> envs:Timing.env array -> float * float
(** (dynamic predicted peak, static ClkWaveMin-M predicted peak) on the
    same tree and modes — the reconfigurability benefit. *)
