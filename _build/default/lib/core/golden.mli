(** Golden evaluation of an assignment — the HSPICE stand-in.

    Unlike the optimizers' slot-sampled estimates, the golden evaluator
    sums the full PWL current waveforms of {e every} buffering element
    over a whole clock period (rising-edge event train plus falling-edge
    train) and reports:

    - the peak current: maximum instantaneous total current on either
      rail (Table V/VI/VII's "Peak curr.");
    - V_DD and Gnd noise: worst voltage fluctuation of the resistive
      power mesh under those currents (Table V/VII's noise columns);
    - the clock skew of the assignment. *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment
module Timing := Repro_clocktree.Timing

type metrics = {
  peak_current_ma : float;
  vdd_noise_mv : float;
  gnd_noise_mv : float;
  skew_ps : float;
}

val default_period : float
(** 2000 ps (500 MHz). *)

val evaluate :
  ?period:float ->
  ?grid:Repro_powergrid.Grid.t ->
  ?noise_samples:int ->
  Tree.t ->
  Assignment.t ->
  Timing.env ->
  metrics
(** Evaluate one assignment in one environment/mode.  When [grid] is
    omitted a default 16 x 16 mesh sized to the tree's bounding box is
    used.  [noise_samples] (default 48) is the number of grid transient
    samples. *)

val worst_over_modes :
  ?period:float ->
  ?grid:Repro_powergrid.Grid.t ->
  ?noise_samples:int ->
  Tree.t ->
  Assignment.t ->
  Timing.env array ->
  metrics
(** Component-wise worst metrics across power modes (Table VII reports
    the worst mode). *)

val default_grid : Tree.t -> Repro_powergrid.Grid.t
(** The mesh used when [grid] is omitted. *)
