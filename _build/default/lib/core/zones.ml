module Tree = Repro_clocktree.Tree

type zone = {
  ix : int;
  iy : int;
  leaf_ids : Tree.node_id array;
  internal_ids : Tree.node_id array;
}

type t = { side : float; zones : zone array; of_leaf : (int, int) Hashtbl.t }

let partition tree ~side =
  if side <= 0.0 then invalid_arg "Zones.partition: side <= 0";
  let index_of nd =
    ( int_of_float (Float.max 0.0 nd.Tree.x /. side),
      int_of_float (Float.max 0.0 nd.Tree.y /. side) )
  in
  let table : (int * int, Tree.node_id list ref * Tree.node_id list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iter
    (fun nd ->
      let key = index_of nd in
      let leaves, internals =
        match Hashtbl.find_opt table key with
        | Some cell -> cell
        | None ->
          let cell = (ref [], ref []) in
          Hashtbl.add table key cell;
          cell
      in
      match nd.Tree.kind with
      | Tree.Leaf -> leaves := nd.Tree.id :: !leaves
      | Tree.Internal -> internals := nd.Tree.id :: !internals)
    (Tree.nodes tree);
  let zones =
    Hashtbl.fold
      (fun (ix, iy) (leaves, internals) acc ->
        match !leaves with
        | [] -> acc
        | _ ->
          {
            ix;
            iy;
            leaf_ids = Array.of_list (List.rev !leaves);
            internal_ids = Array.of_list (List.rev !internals);
          }
          :: acc)
      table []
  in
  let zones =
    Array.of_list
      (List.sort (fun a b -> compare (a.ix, a.iy) (b.ix, b.iy)) zones)
  in
  let of_leaf = Hashtbl.create 64 in
  Array.iteri
    (fun zi z -> Array.iter (fun leaf -> Hashtbl.replace of_leaf leaf zi) z.leaf_ids)
    zones;
  { side; zones; of_leaf }

let zones t = t.zones
let num_zones t = Array.length t.zones
let side t = t.side

let zone_of_leaf t leaf =
  match Hashtbl.find_opt t.of_leaf leaf with
  | Some zi -> Some t.zones.(zi)
  | None -> None

let mean_leaves_per_zone t =
  if Array.length t.zones = 0 then 0.0
  else
    Array.fold_left
      (fun acc z -> acc +. float_of_int (Array.length z.leaf_ids))
      0.0 t.zones
    /. float_of_int (Array.length t.zones)
