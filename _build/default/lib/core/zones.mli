(** Zone partitioning (Sec. V-A / VII-A).

    Power/ground noise is a local effect, so the die is divided into
    square zones (50 x 50 um in the paper) and the peak current is
    minimized zone by zone; the design objective is the maximum over
    zones.  A zone records the leaf buffering elements whose noise is
    being optimized and the non-leaf elements whose current fluctuation
    must be accounted for (Observation 1). *)

type zone = {
  ix : int;
  iy : int;
  leaf_ids : Repro_clocktree.Tree.node_id array;
  internal_ids : Repro_clocktree.Tree.node_id array;
}

type t

val partition : Repro_clocktree.Tree.t -> side:float -> t
(** Partition the tree's nodes into zones of the given side (um).  Zones
    without any leaf are dropped (nothing to optimize there).
    @raise Invalid_argument if [side <= 0]. *)

val zones : t -> zone array

val num_zones : t -> int

val side : t -> float

val zone_of_leaf : t -> Repro_clocktree.Tree.node_id -> zone option
(** Zone containing a given leaf, if any. *)

val mean_leaves_per_zone : t -> float
(** Average |zone leaves| over non-empty zones — the statistic the paper
    reports (4.3 / 4.9 / 7.1). *)
