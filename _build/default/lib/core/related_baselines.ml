module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Cell = Repro_cell.Cell
module Library = Repro_cell.Library

let flip_cell (c : Cell.t) =
  match c.Cell.kind with
  | Cell.Buffer -> Library.inv c.Cell.drive
  | Cell.Inverter -> Library.buf c.Cell.drive
  | Cell.Adjustable_buffer | Cell.Adjustable_inverter ->
    invalid_arg "Related_baselines.flip_cell: adjustable cell"

let flip_leaves asg tree leaf_ids =
  List.fold_left
    (fun a leaf -> Assignment.set_cell a leaf (flip_cell (Assignment.cell a leaf)))
    asg leaf_ids
  |> fun a ->
  ignore tree;
  a

(* Leaves below a node. *)
let rec leaves_below tree id =
  let nd = Tree.node tree id in
  match nd.Tree.kind with
  | Tree.Leaf -> [ id ]
  | Tree.Internal -> List.concat_map (leaves_below tree) nd.Tree.children

let opposite_phase tree asg =
  (* Walk down until a node with >= 2 children, then flip the leaves
     under its first ceil(k/2) children. *)
  let rec split_point id =
    let nd = Tree.node tree id in
    match nd.Tree.children with
    | [] -> id
    | [ only ] -> split_point only
    | _ :: _ -> id
  in
  let at = split_point (Tree.root tree).Tree.id in
  let nd = Tree.node tree at in
  match nd.Tree.kind with
  | Tree.Leaf -> asg (* single-leaf tree: nothing to balance *)
  | Tree.Internal ->
    let children = nd.Tree.children in
    let half = (List.length children + 1) / 2 in
    let first_half = List.filteri (fun i _ -> i < half) children in
    let to_flip = List.concat_map (leaves_below tree) first_half in
    flip_leaves asg tree to_flip

let placement_balanced ?(zone_side = 50.0) tree asg =
  let zones = Zones.partition tree ~side:zone_side in
  Array.fold_left
    (fun a zone ->
      let ordered =
        Array.to_list zone.Zones.leaf_ids
        |> List.sort (fun i j ->
               let ni = Tree.node tree i and nj = Tree.node tree j in
               compare (ni.Tree.x, ni.Tree.y) (nj.Tree.x, nj.Tree.y))
      in
      let to_flip = List.filteri (fun i _ -> i mod 2 = 1) ordered in
      flip_leaves a tree to_flip)
    asg (Zones.zones zones)
