(** Scalar metrics of current waveforms.

    Peak current is the paper's headline number; these companions
    (charge, RMS, overlap) quantify the {e shape} effects polarity
    assignment has: total charge is invariant under polarity swaps, RMS
    drops as the waveform flattens, and the overlap integral between two
    cells' waveforms measures how much their pulses collide. *)

val energy : Pwl.t -> float
(** Integral of the waveform (uA*ps = aC for currents): the transported
    charge.  Alias of {!Pwl.area} with the metric-name spelled out. *)

val rms : Pwl.t -> ?window:float * float -> unit -> float
(** Root-mean-square value over [window] (default: the waveform support;
    0 for an empty support).  Exact for PWL: the square is piecewise
    quadratic and integrated in closed form per segment. *)

val mean_value : Pwl.t -> ?window:float * float -> unit -> float
(** Time-average over the window (0 for an empty support). *)

val crest_factor : Pwl.t -> float
(** peak / rms — how "peaky" the waveform is (0 when rms = 0).  Polarity
    assignment lowers the crest factor of the total rail current. *)

val overlap : Pwl.t -> Pwl.t -> float
(** Integral of the pointwise product — large when two pulses collide in
    time, ~0 when they are disjoint.  Exact for PWL inputs. *)
