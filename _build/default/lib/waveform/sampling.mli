(** Time-sampling-point selection (Sec. IV-B of the paper).

    WaveMin estimates noise at a finite set S of time sampling points per
    power rail.  The paper's experiments use |S| = 4 (the maximum of each
    half of each rail's waveform), |S| = 8, and |S| = 158 (a dense
    hot-spot sampling).  This module provides the generic selection
    strategies; {!Repro_core} pairs them with rails to form S. *)

val uniform : t0:float -> t1:float -> count:int -> float array
(** [count] equally spaced times covering [\[t0, t1\]] inclusive.
    @raise Invalid_argument if [count < 1] or [t1 < t0]. *)

val hot_spots : Pwl.t -> count:int -> float array
(** The [count] times of highest waveform value, drawn from a dense
    uniform scan of the waveform support, returned in increasing time
    order.  Fewer points are returned when the support is empty. *)

val split_max_times : Pwl.t -> halves:int -> float array
(** Partition the waveform support into [halves] equal sub-windows and
    return the time of maximum value inside each — the paper's |S| = 4
    strategy uses [halves = 2] per rail.
    @raise Invalid_argument if [halves < 1]. *)

val split_max_times_in :
  Pwl.t -> t0:float -> t1:float -> halves:int -> float array
(** Like {!split_max_times} but over an explicit window [\[t0, t1\]]
    instead of the waveform support — used to sample a background
    waveform only where the foreground (leaf) events live.
    @raise Invalid_argument if [halves < 1] or [t1 <= t0]. *)

val merge : float array list -> float array
(** Sorted union of several sampling grids with duplicates removed. *)
