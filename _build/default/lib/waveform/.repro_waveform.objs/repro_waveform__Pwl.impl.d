lib/waveform/pwl.ml: Array Float Format List
