lib/waveform/sampling.mli: Pwl
