lib/waveform/metrics.ml: Float List Pwl
