lib/waveform/sampling.ml: Array List Pwl
