lib/waveform/metrics.mli: Pwl
