lib/waveform/pwl.mli: Format
