let shortest_string v =
  let short = Printf.sprintf "%g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v
