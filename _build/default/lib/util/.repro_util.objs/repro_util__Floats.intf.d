lib/util/floats.mli:
