lib/util/floats.ml: Printf
