lib/util/table.ml: Array List Printf String
