lib/util/rng.mli:
