lib/util/stats.mli:
