lib/util/table.mli:
