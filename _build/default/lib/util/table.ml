type align = Left | Right

type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list }

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch with headers";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render ?(align = Right) t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let widen cells =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      cells
  in
  List.iter (function Cells cells -> widen cells | Separator -> ()) rows;
  let pad i cell =
    let w = widths.(i) in
    let fill = String.make (w - String.length cell) ' ' in
    match align with Left -> cell ^ fill | Right -> fill ^ cell
  in
  let line cells =
    "| " ^ String.concat " | " (List.mapi pad cells) ^ " |"
  in
  let rule =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let body =
    List.map (function Cells cells -> line cells | Separator -> rule) rows
  in
  String.concat "\n" ((line t.headers :: rule :: body) @ [ "" ])

let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_i n = string_of_int n
let cell_pct x = Printf.sprintf "%.2f%%" x
