(** Float formatting helpers. *)

val shortest_string : float -> string
(** Shortest decimal representation that parses back to exactly the same
    float — use for serialization formats that must round-trip. *)
