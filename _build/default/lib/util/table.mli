(** Plain-text table rendering for the benchmark harness.

    The bench executable reproduces the paper's tables as aligned ASCII
    rows; this module does the column sizing and separators. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : headers:string list -> t
(** [create ~headers] starts a table; every row must have the same number
    of cells as there are headers. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument on arity mismatch. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : ?align:align -> t -> string
(** Render with one space of padding per side.  Numeric-looking tables read
    best with [~align:Right] (the default). *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell with a fixed number of decimals (default 2). *)

val cell_i : int -> string
(** Format an integer cell. *)

val cell_pct : float -> string
(** Format a percentage cell, e.g. [12.34] -> ["12.34%"]. *)
