(** Small descriptive-statistics toolkit used by the Monte-Carlo analysis
    (Sec. VII-D of the paper) and by the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Population standard deviation (divides by [n], matching the paper's
    normalized sigma-hat / mu-hat reporting).
    @raise Invalid_argument on an empty array. *)

val normalized_stddev : float array -> float
(** [stddev xs /. mean xs] — the paper's normalized standard deviation.
    @raise Invalid_argument if the mean is zero or the array empty. *)

val min_max : float array -> float * float
(** Smallest and largest element.  @raise Invalid_argument on empty. *)

val percentile : float array -> p:float -> float
(** [percentile xs ~p] for [p] in [\[0, 100\]], by linear interpolation on
    the sorted copy.  @raise Invalid_argument on empty or out-of-range p. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length samples.
    @raise Invalid_argument on length mismatch, empty input, or a
    zero-variance sample. *)

val fraction_satisfying : ('a -> bool) -> 'a array -> float
(** Share of elements satisfying the predicate (the paper's skew yield). *)
