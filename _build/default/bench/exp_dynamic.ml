(* Extension: XOR-gate reconfigurable polarity ([30], [31] of the
   paper).  Per power mode the polarity of every leaf is a free
   configuration bit (delay-neutral), which lower-bounds what any static
   assignment can achieve.  Reported per benchmark: the static
   ClkWaveMin-M estimate, the dynamic estimate, and the XOR area
   overhead. *)

module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Dynamic_polarity = Repro_core.Dynamic_polarity
module Clk_wavemin_m = Repro_core.Clk_wavemin_m
module Islands = Repro_cts.Islands
module Timing = Repro_clocktree.Timing
module Table = Repro_util.Table

let envs_for spec =
  let islands =
    Islands.grid ~die_side:spec.Repro_cts.Benchmarks.die_side ~count:4
  in
  let rng = Repro_util.Rng.create ~seed:(spec.Repro_cts.Benchmarks.seed * 17) in
  let modes = Islands.random_modes rng islands ~num_modes:2 () in
  Array.mapi
    (fun mode_idx vdds ->
      { (Timing.nominal ~mode:mode_idx ()) with
        Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands vdds nd) })
    modes

let run () =
  Bench_common.section
    "Extension — dynamic (XOR) polarity vs static ClkWaveMin-M (2 power modes)";
  let params =
    { Context.default_params with
      Context.kappa = 24.0;
      num_slots = Bench_common.multimode_slots;
      max_interval_classes = 8;
      max_labels = 200 }
  in
  let t =
    Table.create
      ~headers:
        [ "circuit"; "static est (uA)"; "dynamic est (uA)"; "gain";
          "XOR area (um^2)" ]
  in
  List.iter
    (fun spec ->
      let tree = Repro_cts.Benchmarks.synthesize spec in
      let envs = envs_for spec in
      let static = Clk_wavemin_m.optimize ~params tree ~envs in
      let dynamic = Dynamic_polarity.optimize ~params tree ~envs in
      let gain =
        Flow.improvement_pct
          ~baseline:static.Clk_wavemin_m.predicted_peak_ua
          ~value:dynamic.Dynamic_polarity.predicted_peak_ua
      in
      Table.add_row t
        [ spec.Repro_cts.Benchmarks.name;
          Table.cell_f static.Clk_wavemin_m.predicted_peak_ua;
          Table.cell_f dynamic.Dynamic_polarity.predicted_peak_ua;
          Table.cell_pct gain;
          Table.cell_f ~decimals:0 dynamic.Dynamic_polarity.area_overhead ])
    (List.filter
       (fun s ->
         List.mem s.Repro_cts.Benchmarks.name [ "s13207"; "s15850"; "s38584" ])
       Bench_common.table5_suite);
  print_string (Table.render t);
  Bench_common.note
    "dynamic >= static is impossible by construction: reconfigurability removes the mode coupling"
