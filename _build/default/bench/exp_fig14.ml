(* Fig. 14: degree of freedom vs peak noise across feasible interval
   intersections.  The paper observes a negative correlation: the more
   buffer/inverter choices an intersection admits, the lower the
   achievable peak noise — which justifies pruning low-DoF
   intersections. *)

module Context = Repro_core.Context
module Multimode = Repro_core.Multimode
module Islands = Repro_cts.Islands
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Table = Repro_util.Table
module Stats = Repro_util.Stats

let run () =
  Bench_common.section
    "Fig. 14 — degree of freedom vs solved peak noise across intersections (s35932-class)";
  let spec = Repro_cts.Benchmarks.find "s13207" in
  let tree = Repro_cts.Benchmarks.synthesize spec in
  let islands = Islands.grid ~die_side:spec.Repro_cts.Benchmarks.die_side ~count:4 in
  let rng = Repro_util.Rng.create ~seed:44 in
  let modes = Islands.random_modes rng islands ~num_modes:2 () in
  let envs =
    Array.mapi
      (fun mode_idx vdds ->
        { (Timing.nominal ~mode:mode_idx ()) with
          Timing.vdd_of = (fun nd -> Islands.vdd_of_node islands vdds nd) })
      modes
  in
  let params =
    { Context.default_params with
      Context.kappa = 40.0;
      num_slots = 16;
      max_interval_classes = 24 }
  in
  let base = Assignment.default tree ~num_modes:2 in
  let mm =
    Multimode.create ~params tree ~base ~envs
      ~cells:(Repro_core.Flow.leaf_library ())
  in
  if not (Multimode.feasible mm) then
    Bench_common.note "no feasible intersection at kappa = %.0f" params.Context.kappa
  else begin
    let rows = Multimode.degree_of_freedom_table mm in
    let t = Table.create ~headers:[ "degree of freedom"; "peak noise (uA)" ] in
    List.iter
      (fun (dof, peak) ->
        Table.add_row t [ Table.cell_i dof; Table.cell_f peak ])
      rows;
    print_string (Table.render t);
    if List.length rows >= 3 then begin
      let dofs = Array.of_list (List.map (fun (d, _) -> float_of_int d) rows) in
      let peaks = Array.of_list (List.map snd rows) in
      match Stats.correlation dofs peaks with
      | r ->
        Bench_common.note
          "correlation(DoF, peak) = %.3f (paper: negative — more freedom, less noise)" r
      | exception Invalid_argument _ ->
        Bench_common.note "correlation undefined (constant column)"
    end
  end
