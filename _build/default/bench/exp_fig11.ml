(* Fig. 10/11 + Table IV + Fig. 12: the two-power-mode worked example.
   A 4-leaf tree spans two voltage islands A1 (always 1.1 V) and A2
   (1.1 V in mode M1, 0.9 V in mode M2).  Printed: the per-mode arrival
   grids over the toy X1/X2 library, the per-mode feasible intervals,
   the feasible intersections with their node-to-type (fsbl/infsbl)
   tables, and the min-max solution of the best intersection. *)

module Multimode = Repro_core.Multimode
module Context = Repro_core.Context
module Intervals = Repro_core.Intervals
module Tree = Repro_clocktree.Tree
module Wire = Repro_clocktree.Wire
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Cell = Repro_cell.Cell
module Library = Repro_cell.Library
module Electrical = Repro_cell.Electrical
module Table = Repro_util.Table

(* Root at the A1/A2 boundary; taps and leaves inside their islands. *)
let example_tree () =
  let node id parent children kind x y wire_len sink_cap cell =
    { Tree.id; parent; children; kind; x; y;
      wire = Wire.of_length wire_len; sink_cap; default_cell = cell }
  in
  Tree.create
    [|
      node 0 None [ 1; 2 ] Tree.Internal 50.0 50.0 0.0 0.0 (Library.buf 16);
      node 1 (Some 0) [ 3; 4 ] Tree.Internal 25.0 50.0 30.0 0.0 (Library.buf 4);
      node 2 (Some 0) [ 5; 6 ] Tree.Internal 75.0 50.0 30.0 0.0 (Library.buf 4);
      node 3 (Some 1) [] Tree.Leaf 15.0 40.0 15.0 2.2 (Library.buf 2);
      node 4 (Some 1) [] Tree.Leaf 20.0 65.0 18.0 1.8 (Library.buf 2);
      node 5 (Some 2) [] Tree.Leaf 80.0 35.0 15.0 2.0 (Library.buf 2);
      node 6 (Some 2) [] Tree.Leaf 85.0 60.0 18.0 2.4 (Library.buf 2);
    |]

let vdd_of_mode mode nd =
  (* A1: x < 50; A2: x >= 50. *)
  if nd.Tree.x < 50.0 then 1.1
  else match mode with 0 -> 1.1 | _ -> 0.9

let cells = Library.toy_buffers @ Library.toy_inverters

let kappa = 12.0

let run () =
  Bench_common.section
    "Fig. 10/11 + Table IV + Fig. 12 — the two-power-mode worked example";
  let tree = example_tree () in
  let envs =
    Array.init 2 (fun mode ->
        { (Timing.nominal ~mode ()) with Timing.vdd_of = vdd_of_mode mode })
  in
  let base = Assignment.default tree ~num_modes:2 in
  (* Per-mode arrival grids (Fig. 11's dot grids). *)
  Array.iteri
    (fun m env ->
      let timing = Timing.analyze tree base env ~edge:Electrical.Rising in
      let sinks = Intervals.collect tree base env timing ~cells in
      Bench_common.note "mode M%d arrival times (ps):" (m + 1);
      let t = Table.create ~headers:("sink" :: List.map (fun c -> c.Cell.name) cells) in
      Array.iteri
        (fun i s ->
          Table.add_row t
            (Printf.sprintf "e%d" (i + 1)
            :: Array.to_list
                 (Array.map
                    (fun c -> Table.cell_f ~decimals:1 c.Intervals.arrival)
                    s.Intervals.candidates)))
        sinks;
      print_string (Table.render t);
      let ivs = Intervals.feasible_intervals sinks ~kappa in
      Bench_common.note "  feasible intervals at kappa = %.0f ps: %d" kappa
        (List.length ivs))
    envs;
  (* Intersections (Table IV). *)
  let params =
    { Context.default_params with
      Context.kappa;
      num_slots = 8;
      sibling_guard = 0.5;
      max_interval_classes = 12 }
  in
  let mm = Multimode.create ~params tree ~base ~envs ~cells in
  Bench_common.note "feasible intersections: %d" (List.length mm.Multimode.intersections);
  List.iteri
    (fun k inter ->
      if k < 3 then begin
        Bench_common.note "intersection %d: M1 [%.1f, %.1f] x M2 [%.1f, %.1f], DoF %d"
          (k + 1)
          inter.Multimode.intervals.(0).Intervals.lo
          inter.Multimode.intervals.(0).Intervals.hi
          inter.Multimode.intervals.(1).Intervals.lo
          inter.Multimode.intervals.(1).Intervals.hi
          inter.Multimode.degree_of_freedom;
        let t =
          Table.create
            ~headers:
              ("node"
              :: Array.to_list
                   (Array.map (fun c -> c.Cell.name) mm.Multimode.cell_universe))
        in
        Array.iteri
          (fun row avail ->
            Table.add_row t
              (Printf.sprintf "e%d" (row + 1)
              :: Array.to_list
                   (Array.map (fun ok -> if ok then "fsbl" else "infsbl") avail)))
          inter.Multimode.cell_avail;
        print_string (Table.render t)
      end)
    mm.Multimode.intersections;
  (* Solve (Fig. 12's MOSP on the best intersection). *)
  if Multimode.feasible mm then begin
    let sol = Multimode.solve mm in
    Bench_common.note "best intersection solution (peak estimate %.1f uA):"
      sol.Multimode.predicted_peak_ua;
    Array.iteri
      (fun i nd ->
        Bench_common.note "  e%d <- %s" (i + 1)
          (Assignment.cell sol.Multimode.assignment nd.Tree.id).Cell.name)
      (Tree.leaves tree);
    let skews = Repro_core.Adb_embedding.skews tree sol.Multimode.assignment envs in
    Bench_common.note "skews: M1 %.1f ps, M2 %.1f ps (kappa %.0f)" skews.(0)
      skews.(1) kappa
  end
  else Bench_common.note "no feasible intersection (unexpected for this toy)"
