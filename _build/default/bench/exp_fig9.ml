(* Fig. 9 / Algorithm 1: the WaveMin-to-MOSP conversion.  Shows the
   layered graph built for one zone of a real benchmark: row/vertex/arc
   counts, the weight dimension |S|, an example arc weight, and the
   min-max solution. *)

module Context = Repro_core.Context
module Clk_wavemin = Repro_core.Clk_wavemin
module Noise_table = Repro_core.Noise_table
module Layered = Repro_mosp.Layered
module Warburton = Repro_mosp.Warburton
module Flow = Repro_core.Flow

let run () =
  Bench_common.section "Fig. 9 — MOSP graph of one zone (Algorithm 1), s13207";
  let spec = Repro_cts.Benchmarks.find "s13207" in
  let tree = Repro_cts.Benchmarks.synthesize spec in
  let params = { Context.default_params with Context.num_slots = 8 } in
  let ctx = Context.create ~params tree ~cells:(Flow.leaf_library ()) in
  match ctx.Context.classes with
  | [] -> Bench_common.note "no feasible interval (unexpected)"
  | cls :: _ ->
    let table = ctx.Context.tables.(0) in
    let avail =
      Array.map (fun row -> cls.Context.avail.(row)) table.Noise_table.sink_rows
    in
    let graph, _ = Clk_wavemin.to_mosp table ~avail in
    Bench_common.note "interval [%.1f, %.1f] ps, degree of freedom %d"
      cls.Context.interval.Repro_core.Intervals.lo
      cls.Context.interval.Repro_core.Intervals.hi cls.Context.degree_of_freedom;
    Bench_common.note "rows (zone sinks): %d" (Layered.num_rows graph);
    Bench_common.note "vertices (incl. src/dest): %d" (Layered.num_vertices graph);
    Bench_common.note "arcs: %d" (Layered.num_arcs graph);
    Bench_common.note "arc weight dimension r = |S| = %d" (Layered.dimension graph);
    let opts = Layered.options graph in
    let w = opts.(0).(0) in
    Bench_common.note "example arc weight (row 1, option 1): (%s) uA"
      (String.concat ", "
         (Array.to_list (Array.map (fun v -> Printf.sprintf "%.1f" v) w)));
    Bench_common.note "dest arc weight (non-leaf noise, Observation 1): (%s) uA"
      (String.concat ", "
         (Array.to_list
            (Array.map (fun v -> Printf.sprintf "%.1f" v) (Layered.dest_weight graph))));
    let sol = Warburton.solve_min_max ~epsilon:0.01 graph in
    Bench_common.note "min-max Pareto path objective: %.1f uA; choices: [%s]"
      sol.Warburton.objective
      (String.concat "; "
         (Array.to_list (Array.map string_of_int sol.Warburton.choices)))
