(* Fig. 5/6 (and Table II): the worked interval example.  A small
   4-leaf tree with the toy X1/X2 library: collect per-(sink, cell)
   arrival times, form the intervals [t - kappa, t], and report which
   are feasible. *)

module Intervals = Repro_core.Intervals
module Observations = Repro_core.Observations
module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Assignment = Repro_clocktree.Assignment
module Library = Repro_cell.Library
module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Table = Repro_util.Table

(* Fig. 5's toy: a root buffer directly driving four leaves with
   near-equal arrival times (the paper's 69/70/71/70 situation), so
   that kappa = 5 ps admits a handful of feasible intervals over the
   X1/X2 library. *)
let fig5_tree () =
  let node id parent children kind x y wire_len sink_cap cell =
    {
      Repro_clocktree.Tree.id;
      parent;
      children;
      kind;
      x;
      y;
      wire = Repro_clocktree.Wire.of_length wire_len;
      sink_cap;
      default_cell = cell;
    }
  in
  Repro_clocktree.Tree.create
    [|
      node 0 None [ 1; 2; 3; 4 ] Tree.Internal 50.0 50.0 0.0 0.0
        (Library.buf 16);
      node 1 (Some 0) [] Tree.Leaf 30.0 40.0 12.0 1.8 (Library.buf 2);
      node 2 (Some 0) [] Tree.Leaf 60.0 35.0 18.0 2.2 (Library.buf 2);
      node 3 (Some 0) [] Tree.Leaf 45.0 70.0 25.0 2.6 (Library.buf 2);
      node 4 (Some 0) [] Tree.Leaf 70.0 60.0 20.0 2.0 (Library.buf 2);
    |]

let run () =
  Bench_common.section
    "Fig. 5/6 — arrival-time grid and feasible intervals (toy X1/X2 library, kappa = 5 ps)";
  let tree = fig5_tree () in
  ignore (Observations.example_tree ());
  let asg = Assignment.default tree ~num_modes:1 in
  let env = Timing.nominal () in
  let timing = Timing.analyze tree asg env ~edge:Electrical.Rising in
  let cells = Library.toy_buffers @ Library.toy_inverters in
  let sinks = Intervals.collect tree asg env timing ~cells in
  let t =
    Table.create
      ~headers:("sink" :: List.map (fun c -> c.Cell.name) cells)
  in
  Array.iteri
    (fun i s ->
      Table.add_row t
        (Printf.sprintf "e%d" (i + 1)
        :: Array.to_list
             (Array.map
                (fun c -> Table.cell_f ~decimals:1 c.Intervals.arrival)
                s.Intervals.candidates)))
    sinks;
  print_string (Table.render t);
  let kappa = 5.0 in
  let ivs = Intervals.feasible_intervals sinks ~kappa in
  Bench_common.note "kappa = %.0f ps: %d feasible interval(s)" kappa (List.length ivs);
  List.iter
    (fun iv ->
      let avail = Intervals.availability sinks iv in
      let dof =
        Array.fold_left
          (fun acc row ->
            acc + Array.fold_left (fun a b -> if b then a + 1 else a) 0 row)
          0 avail
      in
      Bench_common.note "  [%.1f, %.1f]  degree of freedom %d" iv.Intervals.lo
        iv.Intervals.hi dof)
    ivs;
  let wide = Intervals.feasible_intervals sinks ~kappa:12.0 in
  Bench_common.note "kappa = 12 ps: %d feasible interval(s) (wider bound, more freedom)"
    (List.length wide)
