(* Fig. 2 (Observations 1 and 2): the leaf-only optimal polarity
   assignment differs from the total (non-leaf aware) optimum.
   Fig. 3 (Observation 3): adding ADIs to the library lowers the
   achievable two-mode peak noise. *)

module Observations = Repro_core.Observations
module Table = Repro_util.Table

let run () =
  Bench_common.section
    "Fig. 2 — leaf-only vs total peak current for all 16 polarity assignments";
  let f = Observations.fig2 () in
  let t = Table.create ~headers:[ "assignment"; "leaf peak (uA)"; "total peak (uA)" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.Observations.polarities;
          Table.cell_f r.Observations.leaf_peak_ua;
          Table.cell_f r.Observations.total_peak_ua ])
    f.Observations.rows;
  print_string (Table.render t);
  Bench_common.note "leaf-only optimum:  %s (leaf %.1f uA, total %.1f uA)"
    f.Observations.best_by_leaf.Observations.polarities
    f.Observations.best_by_leaf.Observations.leaf_peak_ua
    f.Observations.best_by_leaf.Observations.total_peak_ua;
  Bench_common.note "total optimum:      %s (leaf %.1f uA, total %.1f uA)"
    f.Observations.best_by_total.Observations.polarities
    f.Observations.best_by_total.Observations.leaf_peak_ua
    f.Observations.best_by_total.Observations.total_peak_ua;
  Bench_common.note "non-leaf awareness changes the optimum: %b" f.Observations.divergence;

  Bench_common.section "Fig. 3 — ADI benefit on a two-mode toy instance";
  let g = Observations.fig3 () in
  Bench_common.note "peak without ADI: %.1f; with ADI: %.1f (paper: 26 -> 25)"
    g.Observations.peak_without_adi g.Observations.peak_with_adi
