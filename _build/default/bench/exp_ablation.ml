(* Ablations on the design choices DESIGN.md calls out:
   - zone size (Sec. VII-A: larger zones optimize jointly but saturate);
   - skew bound kappa (more slack, more sizing freedom, lower peak);
   - Warburton epsilon (coarser approximation vs quality). *)

module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Golden = Repro_core.Golden
module Table = Repro_util.Table

let spec () = Repro_cts.Benchmarks.find "s38584"

let run () =
  let tree = Repro_cts.Benchmarks.synthesize (spec ()) in
  let name = "s38584" in

  Bench_common.section "Ablation — zone side (um) on s38584 (ClkWaveMin)";
  let t = Table.create ~headers:[ "zone side"; "peak (mA)"; "time (s)" ] in
  List.iter
    (fun zone_side ->
      let params = { Context.default_params with Context.zone_side } in
      let r = Flow.run_tree ~params ~name tree Flow.Wavemin in
      Table.add_row t
        [ Table.cell_f ~decimals:0 zone_side;
          Table.cell_f r.Flow.metrics.Golden.peak_current_ma;
          Table.cell_f ~decimals:2 r.Flow.elapsed_s ])
    [ 25.0; 50.0; 100.0; 200.0 ];
  print_string (Table.render t);

  Bench_common.section "Ablation — skew bound kappa (ps) on s38584 (ClkWaveMin)";
  let t = Table.create ~headers:[ "kappa"; "peak (mA)"; "skew (ps)" ] in
  List.iter
    (fun kappa ->
      let params = { Context.default_params with Context.kappa } in
      match Flow.run_tree ~params ~name tree Flow.Wavemin with
      | r ->
        Table.add_row t
          [ Table.cell_f ~decimals:0 kappa;
            Table.cell_f r.Flow.metrics.Golden.peak_current_ma;
            Table.cell_f r.Flow.metrics.Golden.skew_ps ]
      | exception Failure _ ->
        Table.add_row t [ Table.cell_f ~decimals:0 kappa; "infeasible"; "-" ])
    [ 8.0; 12.0; 20.0; 40.0 ];
  print_string (Table.render t);

  Bench_common.section "Ablation — Warburton epsilon on s38584 (ClkWaveMin)";
  let t = Table.create ~headers:[ "epsilon"; "peak (mA)"; "time (s)" ] in
  List.iter
    (fun epsilon ->
      let params = { Context.default_params with Context.epsilon } in
      let r = Flow.run_tree ~params ~name tree Flow.Wavemin in
      Table.add_row t
        [ Table.cell_f ~decimals:3 epsilon;
          Table.cell_f r.Flow.metrics.Golden.peak_current_ma;
          Table.cell_f ~decimals:2 r.Flow.elapsed_s ])
    [ 0.001; 0.01; 0.1; 0.5 ];
  print_string (Table.render t)
