(* Related-work progression (Sec. I / Sec. II of the paper): how each
   generation of polarity assignment improves on the last.

     initial            all buffers
     [22] Nieh          opposite-phase halves (global split)
     [23] Samanta       placement-balanced (per-zone split)
     [27] ClkPeakMin    skew-aware balancing with sizing
     ClkWaveMin         fine-grained waveform-aware (this paper)

   Reported: golden peak current, VDD/GND noise, and skew per step. *)

module Flow = Repro_core.Flow
module Golden = Repro_core.Golden
module Related = Repro_core.Related_baselines
module Context = Repro_core.Context
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Table = Repro_util.Table

let run () =
  Bench_common.section
    "Related-work progression — [22] -> [23] -> [27] -> ClkWaveMin";
  let env = Timing.nominal () in
  List.iter
    (fun name ->
      let spec = Repro_cts.Benchmarks.find name in
      let tree = Repro_cts.Benchmarks.synthesize spec in
      let base = Assignment.default tree ~num_modes:1 in
      let t =
        Table.create
          ~headers:[ "method"; "peak (mA)"; "VDD (mV)"; "GND (mV)"; "skew (ps)" ]
      in
      let row label asg =
        let m = Golden.evaluate tree asg env in
        Table.add_row t
          [ label;
            Table.cell_f m.Golden.peak_current_ma;
            Table.cell_f m.Golden.vdd_noise_mv;
            Table.cell_f m.Golden.gnd_noise_mv;
            Table.cell_f m.Golden.skew_ps ]
      in
      row "initial (all buffers)" base;
      row "[22] opposite-phase" (Related.opposite_phase tree base);
      row "[23] placement-balanced" (Related.placement_balanced tree base);
      let ctx = Context.create ~env tree ~cells:(Flow.leaf_library ()) in
      row "[27] ClkPeakMin" (Repro_core.Clk_peakmin.optimize ctx).Context.assignment;
      row "ClkWaveMin" (Repro_core.Clk_wavemin.optimize ctx).Context.assignment;
      Bench_common.note "%s:" name;
      print_string (Table.render t))
    [ "s13207"; "s35932" ]
