bench/exp_fig11.ml: Array Bench_common List Printf Repro_cell Repro_clocktree Repro_core Repro_util
