bench/exp_table1.ml: Bench_common Float List Repro_cell Repro_util
