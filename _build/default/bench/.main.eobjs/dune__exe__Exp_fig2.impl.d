bench/exp_fig2.ml: Bench_common List Repro_core Repro_util
