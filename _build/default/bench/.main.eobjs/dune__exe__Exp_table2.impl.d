bench/exp_table2.ml: Array Bench_common List Printf Repro_cell Repro_util Repro_waveform String
