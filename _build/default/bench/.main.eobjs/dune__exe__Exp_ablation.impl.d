bench/exp_ablation.ml: Bench_common List Repro_core Repro_cts Repro_util
