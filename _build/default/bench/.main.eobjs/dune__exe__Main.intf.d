bench/main.mli:
