bench/exp_dynamic.ml: Array Bench_common List Repro_clocktree Repro_core Repro_cts Repro_util
