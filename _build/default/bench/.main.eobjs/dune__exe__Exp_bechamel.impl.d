bench/exp_bechamel.ml: Analyze Array Bechamel Bench_common Benchmark Hashtbl Instance List Measure Repro_core Repro_cts Staged Test Time Toolkit
