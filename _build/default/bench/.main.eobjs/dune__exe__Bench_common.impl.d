bench/bench_common.ml: Printf Repro_cts String Sys
