bench/exp_baselines.ml: Bench_common List Repro_clocktree Repro_core Repro_cts Repro_util
