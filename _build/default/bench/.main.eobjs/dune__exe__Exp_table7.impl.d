bench/exp_table7.ml: Array Bench_common List Repro_clocktree Repro_core Repro_cts Repro_util
