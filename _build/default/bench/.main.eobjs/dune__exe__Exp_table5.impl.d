bench/exp_table5.ml: Array Bench_common List Repro_core Repro_cts Repro_util
