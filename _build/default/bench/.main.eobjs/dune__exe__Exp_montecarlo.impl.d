bench/exp_montecarlo.ml: Bench_common Hashtbl List Repro_core Repro_cts Repro_util
