bench/exp_table6.ml: Bench_common List Repro_core Repro_cts Repro_util
