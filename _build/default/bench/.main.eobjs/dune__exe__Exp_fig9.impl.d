bench/exp_fig9.ml: Array Bench_common Printf Repro_core Repro_cts Repro_mosp String
