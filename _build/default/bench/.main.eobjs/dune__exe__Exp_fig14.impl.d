bench/exp_fig14.ml: Array Bench_common List Repro_clocktree Repro_core Repro_cts Repro_util
