(* Shared helpers for the experiment harness. *)

let section title =
  let bar = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n%!" bar title bar

let note fmt = Printf.printf (fmt ^^ "\n%!")

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

(* The benchmarks of Table V in paper order. *)
let table5_suite = Repro_cts.Benchmarks.all

(* Cheaper parameters for the heavy multi-mode experiments; the skew
   bounds are scaled from the paper's 90/110/130 ps to our trees'
   shorter source latencies (see EXPERIMENTS.md). *)
let multimode_slots = 24
