let uniform ~t0 ~t1 ~count =
  if count < 1 then invalid_arg "Sampling.uniform: count < 1";
  if t1 < t0 then invalid_arg "Sampling.uniform: t1 < t0";
  if count = 1 then [| 0.5 *. (t0 +. t1) |]
  else
    Array.init count (fun i ->
        t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (count - 1)))

let hot_spots w ~count =
  match Pwl.support w with
  | None -> [||]
  | Some (t0, t1) ->
    let scan = uniform ~t0 ~t1 ~count:(max 64 (count * 8)) in
    let indexed = Array.mapi (fun i t -> (Pwl.eval w t, i)) scan in
    Array.sort (fun (v1, _) (v2, _) -> Float.compare v2 v1) indexed;
    let keep = min count (Array.length indexed) in
    let times = Array.init keep (fun i -> scan.(snd indexed.(i))) in
    Array.sort Float.compare times;
    times

let split_max_times_in w ~t0 ~t1 ~halves =
  if halves < 1 then invalid_arg "Sampling.split_max_times_in: halves < 1";
  if t1 <= t0 then invalid_arg "Sampling.split_max_times_in: empty window";
  begin
    let width = (t1 -. t0) /. float_of_int halves in
    Array.init halves (fun k ->
        let lo = t0 +. (width *. float_of_int k) in
        let hi = lo +. width in
        let scan = uniform ~t0:lo ~t1:hi ~count:64 in
        let best = ref scan.(0) and best_v = ref (Pwl.eval w scan.(0)) in
        Array.iter
          (fun t ->
            let v = Pwl.eval w t in
            if v > !best_v then begin
              best_v := v;
              best := t
            end)
          scan;
        !best)
  end

let split_max_times w ~halves =
  if halves < 1 then invalid_arg "Sampling.split_max_times: halves < 1";
  match Pwl.support w with
  | None -> [||]
  | Some (t0, t1) -> split_max_times_in w ~t0 ~t1 ~halves

let merge grids =
  let all = Array.concat grids in
  Array.sort Float.compare all;
  let out = ref [] in
  Array.iter
    (fun t ->
      match !out with
      | prev :: _ when prev = t -> ()
      | _ -> out := t :: !out)
    all;
  Array.of_list (List.rev !out)
