let energy = Pwl.area

(* Integral of the product of two linear segments a(t), b(t) over
   [t0, t1] by Simpson's rule, which is exact for quadratics. *)
let product_segment_integral ~t0 ~t1 ~a0 ~a1 ~b0 ~b1 =
  let h = t1 -. t0 in
  let mid = 0.5 *. (a0 +. a1) *. 0.5 *. (b0 +. b1) in
  h /. 6.0 *. ((a0 *. b0) +. (4.0 *. mid) +. (a1 *. b1))

let merged_times w1 w2 ~window =
  let bps w = List.map fst (Pwl.breakpoints w) in
  let all = List.sort_uniq Float.compare (bps w1 @ bps w2) in
  match window with
  | None -> all
  | Some (lo, hi) ->
    let inner = List.filter (fun t -> t > lo && t < hi) all in
    (lo :: inner) @ [ hi ]

let integrate_product w1 w2 ~window =
  let times = merged_times w1 w2 ~window in
  let rec go acc = function
    | t0 :: (t1 :: _ as rest) ->
      let seg =
        product_segment_integral ~t0 ~t1 ~a0:(Pwl.eval w1 t0) ~a1:(Pwl.eval w1 t1)
          ~b0:(Pwl.eval w2 t0) ~b1:(Pwl.eval w2 t1)
      in
      go (acc +. seg) rest
    | [ _ ] | [] -> acc
  in
  go 0.0 times

let span w ~window =
  match window with
  | Some (lo, hi) -> if hi > lo then Some (lo, hi) else None
  | None -> Pwl.support w

let rms w ?window () =
  match span w ~window with
  | None -> 0.0
  | Some (lo, hi) when hi <= lo -> 0.0
  | Some (lo, hi) ->
    let sq = integrate_product w w ~window:(Some (lo, hi)) in
    sqrt (sq /. (hi -. lo))

let mean_value w ?window () =
  match span w ~window with
  | None -> 0.0
  | Some (lo, hi) when hi <= lo -> 0.0
  | Some (lo, hi) ->
    let times = merged_times w w ~window:(Some (lo, hi)) in
    let rec go acc = function
      | t0 :: (t1 :: _ as rest) ->
        go
          (acc +. (0.5 *. (Pwl.eval w t0 +. Pwl.eval w t1) *. (t1 -. t0)))
          rest
      | [ _ ] | [] -> acc
    in
    go 0.0 times /. (hi -. lo)

let crest_factor w =
  let r = rms w () in
  if r = 0.0 then 0.0 else Pwl.peak w /. r

let overlap w1 w2 =
  match (Pwl.support w1, Pwl.support w2) with
  | None, _ | _, None -> 0.0
  | Some (a0, a1), Some (b0, b1) ->
    let lo = Float.max a0 b0 and hi = Float.min a1 b1 in
    if hi <= lo then 0.0 else integrate_product w1 w2 ~window:(Some (lo, hi))
