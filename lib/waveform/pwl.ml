type t = { times : float array; values : float array }

let zero = { times = [||]; values = [||] }

let create points =
  let sorted = List.sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) points in
  let rec check = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
      if t1 = t2 then invalid_arg "Pwl.create: duplicate breakpoint time";
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  { times = Array.of_list (List.map fst sorted);
    values = Array.of_list (List.map snd sorted) }

let triangle ~start ~peak_time ~finish ~height =
  if not (start < peak_time && peak_time < finish) then
    invalid_arg "Pwl.triangle: requires start < peak_time < finish";
  create [ (start, 0.0); (peak_time, height); (finish, 0.0) ]

(* Index of the last breakpoint <= x, or -1 when x precedes them all. *)
let find_segment times x =
  let n = Array.length times in
  if n = 0 || x < times.(0) then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if times.(mid) <= x then lo := mid else hi := mid - 1
    done;
    !lo
  end

let eval w x =
  let n = Array.length w.times in
  if n = 0 then 0.0
  else
    let i = find_segment w.times x in
    if i < 0 || x > w.times.(n - 1) then 0.0
    else if i = n - 1 then w.values.(n - 1)
    else
      let t0 = w.times.(i) and t1 = w.times.(i + 1) in
      let v0 = w.values.(i) and v1 = w.values.(i + 1) in
      v0 +. ((v1 -. v0) *. (x -. t0) /. (t1 -. t0))

let shift w dt =
  { w with times = Array.map (fun t -> t +. dt) w.times }

let scale w k = { w with values = Array.map (fun v -> v *. k) w.values }

(* Merge two sorted time arrays, dropping duplicates. *)
let merge_times a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0.0 in
  let rec go i j k last =
    if i = na && j = nb then k
    else
      let pick_a = j = nb || (i < na && a.(i) <= b.(j)) in
      let x = if pick_a then a.(i) else b.(j) in
      let i' = if pick_a then i + 1 else i in
      let j' = if pick_a then j else j + 1 in
      match last with
      | Some prev when prev = x -> go i' j' k last
      | Some _ | None ->
        out.(k) <- x;
        go i' j' (k + 1) (Some x)
  in
  let k = go 0 0 0 None in
  Array.sub out 0 k

let add w1 w2 =
  if Array.length w1.times = 0 then w2
  else if Array.length w2.times = 0 then w1
  else
    let times = merge_times w1.times w2.times in
    let values = Array.map (fun t -> eval w1 t +. eval w2 t) times in
    { times; values }

let sum ws =
  (* Balanced pairwise reduction keeps the breakpoint merging O(n log n)
     in the total number of breakpoints instead of O(n^2). *)
  let rec reduce = function
    | [] -> zero
    | [ w ] -> w
    | ws ->
      let rec pair = function
        | a :: b :: rest -> add a b :: pair rest
        | ([ _ ] | []) as tail -> tail
      in
      reduce (pair ws)
  in
  reduce ws

let peak w = Array.fold_left Float.max 0.0 w.values

let peak_time w =
  let best = ref 0.0 and best_t = ref 0.0 in
  Array.iteri
    (fun i v ->
      if v > !best then begin
        best := v;
        best_t := w.times.(i)
      end)
    w.values;
  !best_t

let area w =
  let n = Array.length w.times in
  let acc = ref 0.0 in
  for i = 0 to n - 2 do
    let dt = w.times.(i + 1) -. w.times.(i) in
    acc := !acc +. (0.5 *. (w.values.(i) +. w.values.(i + 1)) *. dt)
  done;
  !acc

let support w =
  let n = Array.length w.times in
  if n = 0 then None else Some (w.times.(0), w.times.(n - 1))

let breakpoints w =
  Array.to_list (Array.mapi (fun i t -> (t, w.values.(i))) w.times)

let sample w ~times = Array.map (eval w) times

let sample_into ?(shift = 0.0) w ~times ~into =
  let n = Array.length times in
  if Array.length into <> n then
    invalid_arg "Pwl.sample_into: length mismatch";
  for i = 0 to n - 1 do
    into.(i) <- eval w (times.(i) -. shift)
  done

let add_into ?(shift = 0.0) w ~times ~into =
  let n = Array.length times in
  if Array.length into <> n then invalid_arg "Pwl.add_into: length mismatch";
  for i = 0 to n - 1 do
    into.(i) <- into.(i) +. eval w (times.(i) -. shift)
  done

let sub_into ?(shift = 0.0) w ~times ~into =
  let n = Array.length times in
  if Array.length into <> n then invalid_arg "Pwl.sub_into: length mismatch";
  for i = 0 to n - 1 do
    into.(i) <- into.(i) -. eval w (times.(i) -. shift)
  done

let peak2 a b =
  (* Peak of the pointwise sum without materializing [add a b]: walk the
     union of breakpoints with two cursors (the maximum of a PWL sum is
     attained at a breakpoint of either operand). *)
  let na = Array.length a.times and nb = Array.length b.times in
  if na = 0 then peak b
  else if nb = 0 then peak a
  else begin
    let best = ref 0.0 in
    let i = ref 0 and j = ref 0 in
    while !i < na || !j < nb do
      let t =
        if !j >= nb then a.times.(!i)
        else if !i >= na then b.times.(!j)
        else Float.min a.times.(!i) b.times.(!j)
      in
      let v = eval a t +. eval b t in
      if v > !best then best := v;
      while !i < na && a.times.(!i) <= t do incr i done;
      while !j < nb && b.times.(!j) <= t do incr j done
    done;
    !best
  end

let equal ?(eps = 1e-9) w1 w2 =
  let times = merge_times w1.times w2.times in
  Array.for_all (fun t -> Float.abs (eval w1 t -. eval w2 t) <= eps) times

let pp fmt w =
  Format.fprintf fmt "@[<hov 2>pwl[";
  Array.iteri
    (fun i t -> Format.fprintf fmt "@ (%g, %g)" t w.values.(i))
    w.times;
  Format.fprintf fmt "]@]"
