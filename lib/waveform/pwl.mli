(** Piecewise-linear (PWL) waveforms.

    A waveform maps time (ps) to a current (uA) or voltage (mV) value.  It
    is represented by strictly increasing breakpoint times with one value
    per breakpoint; between breakpoints the value is linearly interpolated
    and outside the breakpoint span it is zero (all waveforms in this
    library are transient pulses that settle back to zero).

    PWL waveforms play the role of the HSPICE current traces of the paper:
    cell characterization produces one I_DD and one I_SS pulse train per
    switching event ({!Repro_cell}), and the golden evaluator sums the
    time-shifted pulses of every clock-tree node to obtain the total
    current waveform whose maximum is the peak current. *)

type t
(** An immutable PWL waveform. *)

val zero : t
(** The identically-zero waveform. *)

val create : (float * float) list -> t
(** [create points] builds a waveform from [(time, value)] breakpoints.
    The list is sorted internally; duplicate times are rejected.
    @raise Invalid_argument on duplicate breakpoint times. *)

val triangle : start:float -> peak_time:float -> finish:float -> height:float -> t
(** [triangle ~start ~peak_time ~finish ~height] is the triangular pulse
    rising linearly from zero at [start] to [height] at [peak_time] and
    back to zero at [finish].
    @raise Invalid_argument unless [start < peak_time < finish]. *)

val eval : t -> float -> float
(** Value at a time instant (zero outside the support). *)

val shift : t -> float -> t
(** [shift w dt] delays the waveform by [dt] ps. *)

val scale : t -> float -> t
(** Pointwise multiplication by a constant. *)

val add : t -> t -> t
(** Pointwise sum, with the union of both breakpoint sets. *)

val sum : t list -> t
(** Pointwise sum of many waveforms (balanced reduction). *)

val peak : t -> float
(** Maximum value over all time.  For a PWL waveform the maximum is
    attained at a breakpoint.  [peak zero = 0.0]. *)

val peak_time : t -> float
(** A time at which {!peak} is attained ([0.0] for the zero waveform). *)

val area : t -> float
(** Integral over all time (trapezoid rule); for a current pulse this is
    the transported charge in uA*ps = aC. *)

val support : t -> (float * float) option
(** [Some (t0, t1)] spanning the breakpoints, or [None] for {!zero}. *)

val breakpoints : t -> (float * float) list
(** The breakpoints in increasing time order. *)

val sample : t -> times:float array -> float array
(** Evaluate at each of the given times. *)

val sample_into : ?shift:float -> t -> times:float array -> into:float array -> unit
(** [sample_into ~shift w ~times ~into] writes
    [eval (Pwl.shift w shift) times.(i)] into [into.(i)] — i.e.
    [eval w (times.(i) -. shift)] — without allocating.  [shift]
    defaults to 0.
    @raise Invalid_argument when lengths differ. *)

val add_into : ?shift:float -> t -> times:float array -> into:float array -> unit
(** Like {!sample_into} but accumulates:
    [into.(i) <- into.(i) +. eval w (times.(i) -. shift)].  Together the
    two let a caller sum many shifted waveforms onto a reused buffer
    with zero intermediate waveform allocation.
    @raise Invalid_argument when lengths differ. *)

val sub_into : ?shift:float -> t -> times:float array -> into:float array -> unit
(** The inverse of {!add_into}:
    [into.(i) <- into.(i) -. eval w (times.(i) -. shift)].  With
    {!add_into} this is the delta-evaluation primitive of the annealer:
    replacing one pulse in an accumulated waveform is one [sub_into] of
    the old pulse plus one [add_into] of the new one — no re-sum of the
    other contributors.
    @raise Invalid_argument when lengths differ. *)

val peak2 : t -> t -> float
(** [peak2 a b = peak (add a b)] up to float associativity, computed by
    a two-cursor walk over the union of breakpoints — no merged waveform
    is built.  Shifting both operands by the same amount leaves the
    result unchanged, so callers holding unshifted pulses can use it
    directly. *)

val equal : ?eps:float -> t -> t -> bool
(** Approximate pointwise equality, compared on the union of breakpoints
    (default [eps = 1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Debug printer. *)
