(** ClkWaveMin-f (Sec. V-C): the fast greedy heuristic.

    Instead of searching Pareto paths, the assignment is built vertex by
    vertex: starting from the non-leaf noise expectation, repeatedly pick
    the (sink, candidate) pair whose selection least worsens the running
    maximum over slots, fix it, and remove the sink's other options.
    Runs in O(|S| * |L|^2) per zone. *)

val zone_solver :
  Context.t -> Noise_table.t -> avail:bool array array -> int array * bool
(** Greedy zone solve: candidate index per zone sink.  The second
    component is always [false] (the greedy never truncates a label
    set); it exists so all zone solvers share one signature.
    @raise Invalid_argument if some sink has no available candidate. *)

val optimize : Context.t -> Context.outcome
(** Full ClkWaveMin-f over all zones and interval classes.
    @raise Failure when the skew bound admits no feasible interval. *)
