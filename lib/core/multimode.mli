(** Multi-power-mode polarity assignment (Sec. VI).

    Each power mode gives every voltage island its own supply, hence its
    own timing: per mode the feasible time intervals are computed
    independently, and an {e intersection} picks one interval per mode.
    A cell is admitted for a sink under an intersection iff, in every
    mode, some delay-step of the cell puts the sink's arrival inside
    that mode's interval (Table IV); the intersection is feasible iff
    every sink admits at least one cell.  The per-mode noise vectors are
    concatenated into one MOSP weight (Fig. 12), so the single-mode
    machinery solves the multi-mode problem unchanged.  Intersections
    are pruned by degree of freedom (Fig. 14). *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment
module Timing := Repro_clocktree.Timing
module Cell := Repro_cell.Cell

type mode = {
  env : Timing.env;
  timing : Timing.result;
  sinks : Intervals.sink array;  (** Per-mode candidate arrivals. *)
  tables : Noise_table.t array;  (** Per-zone tables under this mode. *)
}

type intersection = {
  intervals : Intervals.interval array;  (** One per mode. *)
  cell_avail : bool array array;
      (** [cell_avail.(row).(k)] — global sink row admits cell [k] of
          the cell universe in {e every} mode. *)
  chosen_candidate : int array array array;
      (** [chosen_candidate.(m).(row).(k)] — candidate index (into the
          sink's expanded candidate array) realising cell [k] for sink
          [row] in mode [m]; [-1] when infeasible.  The minimal-delay
          feasible step is chosen. *)
  degree_of_freedom : int;
}

type t = {
  tree : Tree.t;
  base : Assignment.t;
  params : Context.params;
  cell_universe : Cell.t array;
      (** All distinct cells appearing in any sink's library. *)
  sink_cells : bool array array;
      (** [sink_cells.(row).(k)] — cell [k] belongs to sink [row]'s
          library. *)
  zones : Zones.t;
  modes : mode array;
  intersections : intersection list;  (** Feasible, DoF-descending. *)
}

val create :
  ?params:Context.params ->
  ?cells_of:(Tree.node_id -> Cell.t list) ->
  Tree.t ->
  base:Assignment.t ->
  envs:Timing.env array ->
  cells:Cell.t list ->
  t
(** Build the multi-mode context.  [envs] must have one entry per mode
    of [base], with [env.mode] set accordingly.  [cells_of] overrides
    the candidate library per leaf (defaults to [cells] everywhere).
    @raise Invalid_argument on empty modes or libraries. *)

val feasible : t -> bool

type outcome = {
  assignment : Assignment.t;
  intersection : intersection;
  predicted_peak_ua : float;
  zone_peaks : float array;
  approximate : bool;
      (** Some zone's MOSP solve tripped the [max_labels] cap; the
          epsilon approximation guarantee does not cover this outcome. *)
}

val solve : t -> outcome
(** ClkWaveMin on the concatenated-mode MOSP graphs, best feasible
    intersection.  @raise Failure when no intersection is feasible. *)

val degree_of_freedom_table : t -> (int * float) list
(** (DoF, solved peak estimate) per explored intersection — the data
    behind Fig. 14. *)
