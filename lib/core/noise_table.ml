module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Electrical = Repro_cell.Electrical
module Pwl = Repro_waveform.Pwl

type t = {
  zone : Zones.zone;
  slots : Slots.t array;
  sinks : Intervals.sink array;
  sink_rows : int array;
  noise : float array array array;
  nonleaf : float array;
  cand_peak : float array array;
}

let default_period = 2000.0

let add_currents (a : Electrical.currents) (b : Electrical.currents) =
  {
    Electrical.idd = Pwl.add a.Electrical.idd b.Electrical.idd;
    iss = Pwl.add a.Electrical.iss b.Electrical.iss;
  }

let build tree asg env ~rising ~falling ?(period = default_period) ~sinks
    ~zone ~num_slots ?background ?cache () =
  Repro_obs.Fault.trip Repro_obs.Fault.Noise_table ~site:"noise_table.build";
  let row_of_leaf = Hashtbl.create 16 in
  Array.iteri
    (fun row (s : Intervals.sink) ->
      Hashtbl.replace row_of_leaf s.Intervals.leaf_id row)
    sinks;
  let sink_rows =
    Array.map
      (fun leaf ->
        match Hashtbl.find_opt row_of_leaf leaf with
        | Some row -> row
        | None -> invalid_arg "Noise_table.build: zone leaf missing from sinks")
      zone.Zones.leaf_ids
  in
  let zone_sinks = Array.map (fun row -> sinks.(row)) sink_rows in
  (* Per candidate: the unshifted rising-edge and (already
     period/2-shifted) falling-edge pulse pairs.  The candidate's
     adjustable delay step is applied later as a sampling-time offset —
     no shifted or merged waveform is ever materialized, and candidates
     of one cell that differ only in delay step share the pair through
     the memo. *)
  let cand_base =
    Array.map
      (fun (s : Intervals.sink) ->
        Array.map
          (fun (c : Intervals.candidate) ->
            Waveforms.candidate_period_currents ?cache tree env ~rising
              ~falling s.Intervals.leaf_id c.Intervals.cell ~period)
          s.Intervals.candidates)
      zone_sinks
  in
  (* Slot selection: the paper samples both rails at both clock edges
     (Sec. III); every candidate pulse peak is a priority instant and
     the remaining budget is spread over the two per-edge leaf switching
     windows (Fig. 7).  A delayed pulse peaks at base peak + extra. *)
  let peak_times rail_of =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun si per_cand ->
              let s = zone_sinks.(si) in
              List.concat
                (Array.to_list
                   (Array.mapi
                      (fun ci (r, f) ->
                        let extra =
                          s.Intervals.candidates.(ci).Intervals.extra
                        in
                        [ Pwl.peak_time (rail_of r) +. extra;
                          Pwl.peak_time (rail_of f) +. extra ])
                      per_cand)))
            cand_base))
  in
  let window part =
    let acc = ref None in
    Array.iteri
      (fun si per_cand ->
        let s = zone_sinks.(si) in
        Array.iteri
          (fun ci pair ->
            let extra = s.Intervals.candidates.(ci).Intervals.extra in
            let (c : Electrical.currents) = part pair in
            let shifted w =
              match Pwl.support w with
              | None -> None
              | Some (a, b) -> Some (a +. extra, b +. extra)
            in
            let union bounds =
              match (bounds, !acc) with
              | None, _ -> ()
              | Some (a, b), None -> acc := Some (a, b)
              | Some (a, b), Some (lo, hi) ->
                acc := Some (Float.min a lo, Float.max b hi)
            in
            union (shifted c.Electrical.idd);
            union (shifted c.Electrical.iss))
          per_cand)
      cand_base;
    !acc
  in
  let windows = List.filter_map (fun w -> w) [ window fst; window snd ] in
  (* Reference waveform for the grid: the zone's default leaf cells over
     the whole period. *)
  let reference =
    let r =
      Waveforms.total_rail_currents tree asg env rising
        ~node_ids:zone.Zones.leaf_ids ()
    in
    let f =
      Waveforms.total_rail_currents tree asg env falling
        ~node_ids:zone.Zones.leaf_ids ()
    in
    add_currents r
      {
        Electrical.idd = Pwl.shift f.Electrical.idd (period /. 2.0);
        iss = Pwl.shift f.Electrical.iss (period /. 2.0);
      }
  in
  let slots =
    Slots.of_currents reference ~count:num_slots
      ~extra_vdd:(peak_times (fun (c : Electrical.currents) -> c.Electrical.idd))
      ~extra_gnd:(peak_times (fun (c : Electrical.currents) -> c.Electrical.iss))
      ~windows ()
  in
  let nonleaf_currents =
    match background with
    | Some (global, share) ->
      (* The zone accounts for a leaf-proportional share of the entire
         chip's non-leaf current; the shares sum to one, so optimizing
         zones independently balances the global waveform without
         double counting. *)
      {
        Electrical.idd = Pwl.scale global.Electrical.idd share;
        iss = Pwl.scale global.Electrical.iss share;
      }
    | None ->
      if Array.length zone.Zones.internal_ids = 0 then
        { Electrical.idd = Pwl.zero; iss = Pwl.zero }
      else
        let r =
          Waveforms.total_rail_currents tree asg env rising
            ~node_ids:zone.Zones.internal_ids ()
        in
        let f =
          Waveforms.total_rail_currents tree asg env falling
            ~node_ids:zone.Zones.internal_ids ()
        in
        add_currents r
          {
            Electrical.idd = Pwl.shift f.Electrical.idd (period /. 2.0);
            iss = Pwl.shift f.Electrical.iss (period /. 2.0);
          }
  in
  let clamp = Array.map (fun v -> Float.max 0.0 v) in
  let nonleaf = clamp (Slots.sample slots nonleaf_currents) in
  (* Sample every candidate straight from its unshifted pulse pair onto
     reused per-rail scratch buffers: two in-place accumulation passes
     per rail (rising + falling pulse) with the delay step folded into
     the sampling times, then a clamped scatter into the row. *)
  let num_slots_total = Array.length slots in
  let rail_indices rail =
    Array.of_list
      (List.filter_map (fun x -> x)
         (Array.to_list
            (Array.mapi
               (fun si (slot : Slots.t) ->
                 if slot.Slots.rail = rail then Some si else None)
               slots)))
  in
  let vdd_idx = rail_indices Repro_cell.Cell.Vdd_rail in
  let gnd_idx = rail_indices Repro_cell.Cell.Gnd_rail in
  let vdd_times = Array.map (fun si -> slots.(si).Slots.time) vdd_idx in
  let gnd_times = Array.map (fun si -> slots.(si).Slots.time) gnd_idx in
  let vdd_buf = Array.make (Array.length vdd_idx) 0.0 in
  let gnd_buf = Array.make (Array.length gnd_idx) 0.0 in
  let sample_candidate (r : Electrical.currents) (f : Electrical.currents)
      ~extra =
    let out = Array.make num_slots_total 0.0 in
    Pwl.sample_into ~shift:extra r.Electrical.idd ~times:vdd_times
      ~into:vdd_buf;
    Pwl.add_into ~shift:extra f.Electrical.idd ~times:vdd_times ~into:vdd_buf;
    Array.iteri
      (fun k si -> out.(si) <- Float.max 0.0 vdd_buf.(k))
      vdd_idx;
    Pwl.sample_into ~shift:extra r.Electrical.iss ~times:gnd_times
      ~into:gnd_buf;
    Pwl.add_into ~shift:extra f.Electrical.iss ~times:gnd_times ~into:gnd_buf;
    Array.iteri
      (fun k si -> out.(si) <- Float.max 0.0 gnd_buf.(k))
      gnd_idx;
    out
  in
  let noise =
    Array.mapi
      (fun si per_cand ->
        let s = zone_sinks.(si) in
        Array.mapi
          (fun ci (r, f) ->
            sample_candidate r f
              ~extra:s.Intervals.candidates.(ci).Intervals.extra)
          per_cand)
      cand_base
  in
  (* The characterized peak is shift-invariant, so it is computed on the
     unshifted pair without building the summed waveform. *)
  let cand_peak =
    Array.map
      (Array.map (fun ((r : Electrical.currents), (f : Electrical.currents)) ->
           Float.max
             (Pwl.peak2 r.Electrical.idd f.Electrical.idd)
             (Pwl.peak2 r.Electrical.iss f.Electrical.iss)))
      cand_base
  in
  { zone; slots; sinks = zone_sinks; sink_rows; noise; nonleaf; cand_peak }

let zone_objective t ~choices =
  if Array.length choices <> Array.length t.sinks then
    invalid_arg "Noise_table.zone_objective: arity mismatch";
  let acc = Array.copy t.nonleaf in
  Array.iteri
    (fun zi ci ->
      let v = t.noise.(zi).(ci) in
      Array.iteri (fun si x -> acc.(si) <- acc.(si) +. x) v)
    choices;
  Array.fold_left Float.max 0.0 acc
