(** Assembly of clock-tree current waveforms.

    Bridges the cell-level event models and the tree: every node's
    I_DD/I_SS pulses are computed at its own load, input slew and island
    supply, and shifted to its input arrival time.  Used by the noise
    tables that feed the optimizers and by the golden (HSPICE stand-in)
    evaluator. *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment
module Timing := Repro_clocktree.Timing
module Electrical := Repro_cell.Electrical

val node_currents :
  Tree.t ->
  Assignment.t ->
  Timing.env ->
  Timing.result ->
  Tree.node_id ->
  Electrical.currents
(** Current pulses of a node for the source edge analysed in the timing
    result, shifted to absolute time (source edge at 0). *)

val candidate_currents :
  Tree.t ->
  Timing.env ->
  Timing.result ->
  Tree.node_id ->
  Repro_cell.Cell.t ->
  Electrical.currents
(** Current pulses the given candidate cell would produce at a leaf
    (same load / slew / supply the leaf sees), shifted to absolute time.
    @raise Invalid_argument if the node is not a leaf. *)

val total_rail_currents :
  Tree.t ->
  Assignment.t ->
  Timing.env ->
  Timing.result ->
  ?node_ids:Tree.node_id array ->
  unit ->
  Electrical.currents
(** Sum of all (or the given) nodes' waveforms per rail — the total
    current profile whose maximum is the peak current. *)

val period_rail_currents :
  Tree.t ->
  Assignment.t ->
  Timing.env ->
  ?node_ids:Tree.node_id array ->
  period:float ->
  unit ->
  Electrical.currents
(** Full clock-period profile: the rising-edge event train at 0 plus the
    falling-edge train at [period/2], each with its own timing analysis,
    over all (or the given) nodes.
    @raise Invalid_argument if [period <= 0]. *)

type cache
(** Memo of candidate pulse pairs keyed by (leaf, cell): one entry per
    (sink, polarity, size), shared across an adjustable cell's delay
    steps.  Domain-safe; hits/misses are counted in the
    [waveforms.cache_hits]/[waveforms.cache_misses] metrics. *)

val create_cache : unit -> cache

val candidate_period_currents :
  ?cache:cache ->
  Tree.t ->
  Timing.env ->
  rising:Timing.result ->
  falling:Timing.result ->
  Tree.node_id ->
  Repro_cell.Cell.t ->
  period:float ->
  Electrical.currents * Electrical.currents
(** The candidate's pulses for the rising-edge event (absolute time) and
    for the falling-edge event already shifted to the second half of the
    period — the pair the per-edge sampling slots are computed from.
    With [?cache] the pair is computed once per (leaf, cell) and reused.
    @raise Invalid_argument if the node is not a leaf or [period <= 0]. *)
