(** Shared optimization context for the single-power-mode algorithms
    (Fig. 8): timing, candidate arrivals, zones, per-zone noise tables,
    and the deduplicated feasible time-interval classes.

    Two feasible intervals admitting exactly the same candidate sets are
    one {e class}; classes are ranked by their degree of freedom (total
    number of admitted candidates, Sec. VI / Fig. 14) and only the top
    [max_interval_classes] are explored — the pruning the paper derives
    from the negative DoF/noise correlation. *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment
module Timing := Repro_clocktree.Timing
module Cell := Repro_cell.Cell

type params = {
  kappa : float;  (** Clock skew bound, ps. *)
  epsilon : float;  (** Warburton approximation parameter. *)
  num_slots : int;  (** |S|, split across both rails. *)
  zone_side : float;  (** um. *)
  max_labels : int;  (** Per-row label cap in the MOSP solver. *)
  coalesce : float;  (** Arrival-time merging granularity, ps. *)
  max_interval_classes : int;  (** DoF-pruned class budget. *)
  sibling_guard : float;
      (** ps subtracted from kappa when forming intervals.  Observation 4
          lets the optimizer ignore the (small) effect of a sibling's
          reassignment on a leaf's own arrival; the guard absorbs that
          modelling slack so the final skew still meets kappa. *)
}

val default_params : params
(** kappa = 20 ps, epsilon = 0.01, num_slots = 158, zone_side = 50 um,
    max_labels = 400, coalesce = 0.25 ps, max_interval_classes = 16,
    sibling_guard = 4 ps. *)

type interval_class = {
  interval : Intervals.interval;
  avail : bool array array;  (** Global sink rows x candidates. *)
  degree_of_freedom : int;
}

type t = {
  tree : Tree.t;
  base : Assignment.t;
  env : Timing.env;
  timing : Timing.result;
  params : params;
  cells : Cell.t array;  (** The candidate library, fixed order. *)
  sinks : Intervals.sink array;  (** Global, leaf id order. *)
  zones : Zones.t;
  tables : Noise_table.t array;  (** One per zone. *)
  classes : interval_class list;  (** DoF-descending. *)
}

val create :
  ?params:params ->
  ?env:Timing.env ->
  ?base:Assignment.t ->
  Tree.t ->
  cells:Cell.t list ->
  t
(** Build the context.  [base] defaults to the tree's default assignment;
    [env] to the nominal 1.1 V environment.
    @raise Invalid_argument if [cells] is empty. *)

val feasible : t -> bool
(** At least one feasible interval class exists. *)

type outcome = {
  assignment : Assignment.t;
  interval : Intervals.interval;
  predicted_peak_ua : float;  (** max over zones of the zone estimate. *)
  zone_peaks : float array;
  approximate : bool;
      (** Some zone of the winning class was solved with a truncated
          label set (the MOSP [max_labels] cap tripped), so the epsilon
          approximation guarantee does not cover this outcome. *)
}

val zone_avail : t -> bool array array -> Noise_table.t -> bool array array
(** Restrict a class's global availability matrix (rows = global sink
    indices) to one zone's table (rows = [table.sinks] order) — the
    matrix a zone solver receives. *)

val apply_choices : t -> int array array -> Repro_clocktree.Assignment.t
(** [apply_choices t per_zone_choices] materializes an assignment from
    one candidate index per sink of every zone ([per_zone_choices.(zi)]
    aligned with [t.tables.(zi).sinks]), setting the cell and — for
    adjustable cells — the selected extra delay.  Exposed so solvers
    with their own class loop (ClkPeakMin-style baselines, the SA
    engine) can build outcomes without going through {!solve_with}. *)

val solve_with :
  t ->
  zone_solver:
    (t -> Noise_table.t -> avail:bool array array -> int array * bool) ->
  outcome
(** Run [zone_solver] on every zone for every interval class and return
    the best class's assignment.  The solver receives the zone's table
    and the zone-local availability matrix (rows aligned with
    [table.sinks]) and must return one {e available} candidate index per
    zone sink, plus a flag marking the zone solution as approximate
    (label-capped); the flags of the winning class are OR-ed into
    [outcome.approximate].
    @raise Failure when no feasible interval exists (check {!feasible}). *)
