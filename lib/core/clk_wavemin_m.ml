module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Library = Repro_cell.Library

type outcome = {
  assignment : Assignment.t;
  predicted_peak_ua : float;
  num_adbs : int;
  num_adis : int;
  used_adb_embedding : bool;
  skews : float array;
  feasible : bool;
  approximate : bool;
}

let default_buffers = Library.experiment_buffers
let default_inverters = Library.experiment_inverters

let adb_embedded_only ?(params = Context.default_params) tree ~envs =
  let base = Assignment.default tree ~num_modes:(Array.length envs) in
  Adb_embedding.embed tree base ~envs ~kappa:params.Context.kappa

let count_cells asg tree pred =
  let count = ref 0 in
  Array.iter
    (fun (nd : Tree.node) ->
      if pred (Assignment.cell asg nd.Tree.id) then incr count)
    (Tree.nodes tree);
  !count

let is_adb (c : Cell.t) = c.Cell.kind = Cell.Adjustable_buffer
let is_adi (c : Cell.t) = c.Cell.kind = Cell.Adjustable_inverter

let finish tree params envs asg predicted ~used_adb_embedding ~approximate =
  {
    assignment = asg;
    predicted_peak_ua = predicted;
    num_adbs = count_cells asg tree is_adb;
    num_adis = count_cells asg tree is_adi;
    used_adb_embedding;
    skews = Adb_embedding.skews tree asg envs;
    feasible =
      Array.for_all
        (fun s -> s <= params.Context.kappa)
        (Adb_embedding.skews tree asg envs);
    approximate;
  }

(* Solve with verification: the optimizer's intervals use base-timing
   arrivals minus the sibling guard; if the realized skew still exceeds
   kappa (the sibling shifts were larger than the guard), retry with a
   widened guard before giving up. *)
let solve_verified params tree envs ?cells_of ~base ~cells () =
  let rec attempt guard tries =
    let params = { params with Context.sibling_guard = guard } in
    let ctx = Multimode.create ~params ?cells_of tree ~base ~envs ~cells in
    if not (Multimode.feasible ctx) then None
    else begin
      let sol = Multimode.solve ctx in
      let skews = Adb_embedding.skews tree sol.Multimode.assignment envs in
      if Array.for_all (fun s -> s <= params.Context.kappa) skews || tries <= 0
      then Some sol
      else attempt (guard +. 3.0) (tries - 1)
    end
  in
  attempt params.Context.sibling_guard 2

let optimize ?(params = Context.default_params) ?(buffers = default_buffers)
    ?(inverters = default_inverters) tree ~envs =
  if Array.length envs = 0 then invalid_arg "Clk_wavemin_m.optimize: no modes";
  Repro_obs.Trace.with_span ~name:"wavemin_m.optimize"
    ~attrs:[ ("modes", string_of_int (Array.length envs)) ]
  @@ fun () ->
  let plain = buffers @ inverters in
  let base = Assignment.default tree ~num_modes:(Array.length envs) in
  (* Attempt 1: polarity assignment and sizing alone. *)
  match solve_verified params tree envs ~base ~cells:plain () with
  | Some sol ->
    finish tree params envs sol.Multimode.assignment sol.Multimode.predicted_peak_ua
      ~used_adb_embedding:false ~approximate:sol.Multimode.approximate
  | None ->
    (* Attempt 2: ADB embedding, then re-optimize; ADB leaves choose
       between the same-drive ADB and ADI, plain leaves keep B u I.
       Embedding targets a bound tightened by the sibling guard (plus a
       small margin) so that the re-optimization still finds feasible
       intervals inside kappa. *)
    let embed_kappa =
      Float.max 2.0
        (params.Context.kappa -. params.Context.sibling_guard -. 2.0)
    in
    let embedded = Adb_embedding.embed tree base ~envs ~kappa:embed_kappa in
    let base = embedded.Adb_embedding.assignment in
    let cells_of leaf =
      let current = Assignment.cell base leaf in
      if Cell.is_adjustable current then
        [ Library.adb current.Cell.drive; Library.adi current.Cell.drive ]
      else plain
    in
    (match solve_verified params tree envs ~cells_of ~base ~cells:plain () with
    | Some sol ->
      finish tree params envs sol.Multimode.assignment
        sol.Multimode.predicted_peak_ua ~used_adb_embedding:true
        ~approximate:sol.Multimode.approximate
    | None ->
      (* Trivial fallback (guaranteed by construction after embedding):
         keep the embedded design unchanged. *)
      finish tree params envs base 0.0 ~used_adb_embedding:true
        ~approximate:false)
