(** Per-zone noise lookup tables (the [noise(e_i, type, s)] function of
    the paper, Sec. IV-B).

    For one zone the table holds, for every zone sink and every candidate
    cell, the candidate's sampled current contribution at every slot of
    the zone's sampling set S, plus the fixed contribution of the
    non-leaf buffering elements located in the zone (Observation 1).
    Tables are interval-independent: feasibility masks select among the
    precomputed candidates. *)

module Tree := Repro_clocktree.Tree

type t = {
  zone : Zones.zone;
  slots : Slots.t array;
  sinks : Intervals.sink array;  (** The zone's sinks, zone-local order. *)
  sink_rows : int array;
      (** For each zone sink, its row index in the global sink array. *)
  noise : float array array array;
      (** [noise.(zi).(ci).(si)] — zone sink [zi], candidate [ci],
          slot [si]; uA. *)
  nonleaf : float array;  (** Non-leaf contribution per slot; uA. *)
  cand_peak : float array array;
      (** [cand_peak.(zi).(ci)] — the candidate's own characterized peak
          current (uA), max over both rails and all time: the scalar
          the ClkPeakMin baseline [27] optimizes with. *)
}

val default_period : float
(** 2000 ps (500 MHz) — the analysis period when none is given. *)

val build :
  Tree.t ->
  Repro_clocktree.Assignment.t ->
  Repro_clocktree.Timing.env ->
  rising:Repro_clocktree.Timing.result ->
  falling:Repro_clocktree.Timing.result ->
  ?period:float ->
  sinks:Intervals.sink array ->
  zone:Zones.zone ->
  num_slots:int ->
  ?background:Repro_cell.Electrical.currents * float ->
  ?cache:Waveforms.cache ->
  unit ->
  t
(** Build the table for one zone.  [sinks] is the global candidate array
    from {!Intervals.collect} (leaf id order).  Slot times combine the
    zone's default-assignment waveform with the peak instants of every
    candidate pulse (when the slot budget allows), so tall narrow
    candidates cannot hide between samples.  [background] is the
    out-of-zone non-leaf current and the fraction of it this zone
    accounts for; per-zone shares sum to the full chip background, so
    optimizing zones independently still balances the global waveform
    (Observation 1 at chip scale).  [cache] shares candidate pulse pairs
    across delay steps (and across zones when the caller passes one
    cache to every build — see {!Waveforms.create_cache}); candidates
    are sampled straight from the unshifted pair onto reused scratch
    buffers, so no per-candidate shifted or merged waveform is
    allocated. *)

val zone_objective : t -> choices:int array -> float
(** Estimated zone peak (uA) when zone sink [zi] uses candidate
    [choices.(zi)]: max over slots of the summed contributions plus the
    non-leaf term.
    @raise Invalid_argument on arity mismatch. *)
