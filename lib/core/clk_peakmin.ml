module Verrors = Repro_util.Verrors
module Cell = Repro_cell.Cell

let buckets = 512

let polarity_of (table : Noise_table.t) zi ci =
  Cell.polarity
    table.Noise_table.sinks.(zi).Intervals.candidates.(ci).Intervals.cell

let zone_balance_objective (table : Noise_table.t) ~choices =
  let pos = ref 0.0 and neg = ref 0.0 in
  Array.iteri
    (fun zi ci ->
      let p = table.Noise_table.cand_peak.(zi).(ci) in
      match polarity_of table zi ci with
      | Cell.Positive -> pos := !pos +. p
      | Cell.Negative -> neg := !neg +. p)
    choices;
  Float.max !pos !neg

(* DP over the discretized positive-rail sum: state = bucket of the
   positive sum, value = minimum achievable negative sum; backpointers
   recover the choices. *)
let zone_solver (ctx : Context.t) (table : Noise_table.t) ~avail =
  ignore ctx;
  let num_sinks = Array.length table.Noise_table.sinks in
  Array.iteri
    (fun zi row ->
      ignore zi;
      if not (Array.exists (fun b -> b) row) then
        invalid_arg "Clk_peakmin.zone_solver: sink without available candidate")
    avail;
  let max_pos =
    (* Upper bound: every sink takes its largest positive-rail peak. *)
    let acc = ref 0.0 in
    for zi = 0 to num_sinks - 1 do
      let best = ref 0.0 in
      Array.iteri
        (fun ci ok ->
          if ok then best := Float.max !best table.Noise_table.cand_peak.(zi).(ci))
        avail.(zi);
      acc := !acc +. !best
    done;
    Float.max 1.0 !acc
  in
  let width = max_pos /. float_of_int buckets in
  let bucket_of v = min buckets (int_of_float (ceil (v /. width))) in
  let nan_row () = Array.make (buckets + 1) infinity in
  let dp = ref (nan_row ()) in
  !dp.(0) <- 0.0;
  (* back.(zi).(bucket) = (previous bucket, candidate index) *)
  let back = Array.init num_sinks (fun _ -> Array.make (buckets + 1) (-1, -1)) in
  for zi = 0 to num_sinks - 1 do
    let next = nan_row () in
    Array.iteri
      (fun ci ok ->
        if ok then begin
          let p = table.Noise_table.cand_peak.(zi).(ci) in
          match polarity_of table zi ci with
          | Cell.Positive ->
            let shift = bucket_of p in
            for b = 0 to buckets - shift do
              let v = !dp.(b) in
              if v < next.(b + shift) then begin
                next.(b + shift) <- v;
                back.(zi).(b + shift) <- (b, ci)
              end
            done
          | Cell.Negative ->
            for b = 0 to buckets do
              let v = !dp.(b) +. p in
              if v < next.(b) then begin
                next.(b) <- v;
                back.(zi).(b) <- (b, ci)
              end
            done
        end)
      avail.(zi);
    dp := next
  done;
  (* Pick the final bucket minimizing max(pos, neg). *)
  let best_bucket = ref (-1) and best_obj = ref infinity in
  for b = 0 to buckets do
    let neg = !dp.(b) in
    if neg < infinity then begin
      let pos = float_of_int b *. width in
      let obj = Float.max pos neg in
      if obj < !best_obj then begin
        best_obj := obj;
        best_bucket := b
      end
    end
  done;
  assert (!best_bucket >= 0);
  let choices = Array.make num_sinks 0 in
  let b = ref !best_bucket in
  for zi = num_sinks - 1 downto 0 do
    let prev, ci = back.(zi).(!b) in
    assert (ci >= 0);
    choices.(zi) <- ci;
    b := prev
  done;
  (choices, false)

(* Class selection with the baseline's own (timing-blind) objective. *)
let optimize (ctx : Context.t) =
  Repro_obs.Trace.with_span ~name:"peakmin.optimize" @@ fun () ->
  let best = ref None in
  List.iter
    (fun (cls : Context.interval_class) ->
      let per_zone =
        Array.map
          (fun (table : Noise_table.t) ->
            let avail =
              Array.map
                (fun row -> cls.Context.avail.(row))
                table.Noise_table.sink_rows
            in
            let choices, _capped = zone_solver ctx table ~avail in
            (table, choices))
          ctx.Context.tables
      in
      let own_objective =
        Array.fold_left
          (fun acc (table, choices) ->
            Float.max acc (zone_balance_objective table ~choices))
          0.0 per_zone
      in
      match !best with
      | Some (_, best_obj) when best_obj <= own_objective -> ()
      | Some _ | None -> best := Some ((cls, per_zone), own_objective))
    ctx.Context.classes;
  match !best with
  | None ->
    let p = ctx.Context.params in
    let effective_kappa =
      Float.max 1.0 (p.Context.kappa -. p.Context.sibling_guard)
    in
    Verrors.fail ~code:Verrors.Infeasible_window ~stage:"clk_peakmin.optimize"
      ~hints:
        [ "widen the skew window (larger kappa) or reduce sibling_guard";
          "run `wavemin validate` for a per-sink feasibility breakdown" ]
      (Printf.sprintf
         "%s (effective kappa %.2f ps = kappa %.2f ps - sibling guard %.2f \
          ps)"
         (Intervals.infeasibility_message ctx.Context.sinks
            ~kappa:effective_kappa)
         effective_kappa p.Context.kappa p.Context.sibling_guard)
  | Some ((cls, per_zone), _) ->
    let assignment = ref ctx.Context.base in
    Array.iter
      (fun ((table : Noise_table.t), choices) ->
        Array.iteri
          (fun zi ci ->
            let sink = table.Noise_table.sinks.(zi) in
            let cell = sink.Intervals.candidates.(ci).Intervals.cell in
            assignment :=
              Repro_clocktree.Assignment.set_cell !assignment
                sink.Intervals.leaf_id cell)
          choices)
      per_zone;
    let zone_peaks =
      Array.map
        (fun (table, choices) -> Noise_table.zone_objective table ~choices)
        per_zone
    in
    {
      Context.assignment = !assignment;
      interval = cls.Context.interval;
      predicted_peak_ua = Array.fold_left Float.max 0.0 zone_peaks;
      zone_peaks;
      approximate = false;
    }
