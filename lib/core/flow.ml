module Cell = Repro_cell.Cell
module Library = Repro_cell.Library
module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Verrors = Repro_util.Verrors
module Budget = Repro_obs.Budget
module Obs_metrics = Repro_obs.Metrics
module Flight = Repro_obs.Flight

type algorithm = Initial | Peakmin | Wavemin | Wavemin_fast | Sa

let algorithm_name = function
  | Initial -> "Initial"
  | Peakmin -> "ClkPeakMin"
  | Wavemin -> "ClkWaveMin"
  | Wavemin_fast -> "ClkWaveMin-f"
  | Sa -> "ClkSA"

let solver_names =
  [ ("initial", Initial);
    ("peakmin", Peakmin);
    ("wavemin", Wavemin);
    ("wavemin-f", Wavemin_fast);
    ("sa", Sa) ]

let solver_of_name name =
  match List.assoc_opt (String.lowercase_ascii name) solver_names with
  | Some alg -> Ok alg
  | None ->
    Verrors.error ~code:Verrors.Invalid_params ~stage:"flow.solver"
      ~subject:name
      ~hints:
        [ "valid solvers: "
          ^ String.concat ", " (List.map fst solver_names) ]
      "unknown solver"

type degradation = {
  from_alg : algorithm;
  to_alg : algorithm option;
  error : Verrors.t;
}

type portfolio_entry = {
  member : algorithm;
  won : bool;
  wall_s : float;
  peak_ma : float option;
  failure : Verrors.t option;
}

type run = {
  benchmark : string;
  algorithm : algorithm;
  params : Context.params;
  assignment : Assignment.t;
  metrics : Golden.metrics;
  predicted_peak_ua : float;
  num_leaf_inverters : int;
  elapsed_s : float;
  cpu_s : float;
  approximate : bool;
  degradations : degradation list;
  sa : Clk_sa.stats option;
  portfolio : portfolio_entry list;
}

let leaf_library () =
  [ Library.buf 8; Library.buf 16; Library.inv 8; Library.inv 16 ]

module Clock = Repro_obs.Clock
module Trace = Repro_obs.Trace

(* A benchmark prepared for (repeated) optimization: the synthesized
   tree plus a context built at most once and reused by every later
   solver run — the warm-cache path of the server's session cache.  The
   context is rebuilt on the next use if its construction raised (an
   injected fault or infeasible input must not be memoized). *)
type prepared = {
  prep_name : string;
  prep_tree : Tree.t;
  prep_params : Context.params;
  prep_env : Timing.env;
  prep_cells : Cell.t list;
  mutable prep_ctx : Context.t option;
}

let prepare ?(params = Context.default_params) ?cells ~name tree =
  {
    prep_name = name;
    prep_tree = tree;
    prep_params = params;
    prep_env = Timing.nominal ();
    prep_cells = (match cells with Some cs -> cs | None -> leaf_library ());
    prep_ctx = None;
  }

let prepared_name p = p.prep_name
let prepared_tree p = p.prep_tree
let prepared_params p = p.prep_params
let prepared_cells p = p.prep_cells
let context_warm p = p.prep_ctx <> None

let prepared_context p =
  match p.prep_ctx with
  | Some ctx -> ctx
  | None ->
    let ctx =
      Context.create ~params:p.prep_params ~env:p.prep_env p.prep_tree
        ~cells:p.prep_cells
    in
    p.prep_ctx <- Some ctx;
    ctx

(* The shared solve-and-evaluate skeleton: [solve] produces the
   assignment (plus the optimizer's own estimate and the annealer's
   counters when applicable); everything around it — flight bracketing,
   timing, golden evaluation — is identical for the standard dispatch,
   the portfolio members and the warm-start path. *)
let run_prepared_with p ~algorithm ~solve =
  Trace.with_span ~name:"flow.run_tree"
    ~attrs:
      [ ("benchmark", p.prep_name); ("algorithm", algorithm_name algorithm) ]
  @@ fun () ->
  let tree = p.prep_tree and env = p.prep_env in
  Flight.record
    (Flight.Solve_start
       { benchmark = p.prep_name; algorithm = algorithm_name algorithm });
  let t0 = Clock.now_s () in
  let c0 = Clock.cpu_s () in
  let assignment, predicted, approximate, sa = solve () in
  let elapsed_s = Clock.now_s () -. t0 in
  let cpu_s = Clock.cpu_s () -. c0 in
  let metrics =
    Trace.with_span ~name:"flow.golden_evaluate" (fun () ->
        Golden.evaluate tree assignment env)
  in
  let num_leaf_inverters =
    Assignment.count_leaves assignment tree ~pred:(fun c ->
        Cell.polarity c = Cell.Negative)
  in
  Flight.record
    (Flight.Solve_end
       { benchmark = p.prep_name;
         algorithm = algorithm_name algorithm;
         ok = true;
         wall_ms = elapsed_s *. 1000.0 });
  {
    benchmark = p.prep_name;
    algorithm;
    params = p.prep_params;
    assignment;
    metrics;
    predicted_peak_ua = predicted;
    num_leaf_inverters;
    elapsed_s;
    cpu_s;
    approximate;
    degradations = [];
    sa;
    portfolio = [];
  }

let run_prepared p algorithm =
  run_prepared_with p ~algorithm ~solve:(fun () ->
      match algorithm with
      | Initial ->
        (Assignment.default p.prep_tree ~num_modes:1, 0.0, false, None)
      | Peakmin | Wavemin | Wavemin_fast ->
        let ctx = prepared_context p in
        let outcome =
          match algorithm with
          | Peakmin -> Clk_peakmin.optimize ctx
          | Wavemin -> Clk_wavemin.optimize ctx
          | Wavemin_fast -> Clk_wavemin_f.optimize ctx
          | Initial | Sa -> assert false
        in
        ( outcome.Context.assignment,
          outcome.Context.predicted_peak_ua,
          outcome.Context.approximate,
          None )
      | Sa ->
        let ctx = prepared_context p in
        let outcome, stats = Clk_sa.optimize_stats ctx in
        ( outcome.Context.assignment,
          outcome.Context.predicted_peak_ua,
          outcome.Context.approximate,
          Some stats ))

let run_tree ?params ~name tree algorithm =
  run_prepared (prepare ?params ~name tree) algorithm

let run_benchmark ?params spec algorithm =
  Trace.with_span ~name:"flow.run_benchmark"
    ~attrs:[ ("benchmark", spec.Repro_cts.Benchmarks.name) ]
  @@ fun () ->
  let tree = Repro_cts.Benchmarks.synthesize spec in
  run_tree ?params ~name:spec.Repro_cts.Benchmarks.name tree algorithm

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                 *)

let degradations_c = Obs_metrics.counter "flow.degradations"

let fallback_chain = function
  | Wavemin -> [ Wavemin; Wavemin_fast; Peakmin; Initial ]
  | Wavemin_fast -> [ Wavemin_fast; Peakmin; Initial ]
  | Peakmin -> [ Peakmin; Initial ]
  | Sa -> [ Sa; Wavemin_fast; Peakmin; Initial ]
  | Initial -> [ Initial ]

module Log = (val Logs.src_log (Repro_obs.Log.src "wavemin.flow"))

(* The shared fallback loop: [runner alg] is one attempt (a fresh
   [run_tree] for the plain robust runners, a warm [run_prepared] for
   the server's session-cached path). *)
let robust ?budget ~name ~runner algorithm =
  let rec attempt budget degs = function
    | [] -> assert false (* fallback_chain is never empty *)
    | alg :: rest -> (
      let t0 = Clock.now_s () in
      let res =
        Verrors.guard ~stage:"flow.run" (fun () ->
            match budget with
            | Some b -> Budget.with_current b (fun () -> runner alg)
            | None -> runner alg)
      in
      match res with
      | Ok run -> Ok { run with degradations = List.rev degs }
      | Error e -> (
        Obs_metrics.incr degradations_c;
        (* The failed attempt never reached run_prepared's Solve_end:
           close its timeline entry, then record the transition with
           the triggering error so a dump explains why it fired. *)
        if Flight.enabled () then begin
          Flight.record
            (Flight.Solve_end
               { benchmark = name;
                 algorithm = algorithm_name alg;
                 ok = false;
                 wall_ms = (Clock.now_s () -. t0) *. 1000.0 });
          Flight.record
            (Flight.Fallback
               { from_alg = algorithm_name alg;
                 to_alg =
                   (match rest with
                   | [] -> None
                   | next :: _ -> Some (algorithm_name next));
                 code = Verrors.code_name e.Verrors.code;
                 message = e.Verrors.message })
        end;
        match rest with
        | [] -> Error (e, List.rev ({ from_alg = alg; to_alg = None; error = e } :: degs))
        | next :: _ ->
          Log.warn (fun m ->
              m "%s: %s failed (%s); falling back to %s" name
                (algorithm_name alg)
                (Verrors.code_name e.Verrors.code)
                (algorithm_name next));
          (* A tripped budget is sticky; give the cheaper fallback a
             chance by running it unbudgeted instead of re-tripping
             immediately. *)
          let budget =
            if e.Verrors.code = Verrors.Budget_exhausted then None else budget
          in
          attempt budget ({ from_alg = alg; to_alg = Some next; error = e } :: degs) rest))
  in
  attempt budget [] (fallback_chain algorithm)

let run_tree_robust ?params ?budget ~name tree algorithm =
  robust ?budget ~name
    ~runner:(fun alg -> run_tree ?params ~name tree alg)
    algorithm

let run_prepared_robust ?budget p algorithm =
  robust ?budget ~name:p.prep_name
    ~runner:(fun alg -> run_prepared p alg)
    algorithm

let run_benchmark_robust ?params ?budget spec algorithm =
  match
    Verrors.guard ~stage:"flow.synthesize" (fun () ->
        Repro_cts.Benchmarks.synthesize spec)
  with
  | Error e -> Error (e, [])
  | Ok tree ->
    run_tree_robust ?params ?budget ~name:spec.Repro_cts.Benchmarks.name tree
      algorithm

(* ------------------------------------------------------------------ *)
(* Solver portfolio                                                    *)

let portfolio_members = [ Wavemin; Wavemin_fast; Sa ]

(* Run every member under ONE shared budget (a member that exhausts it
   leaves only already-banked results competitive: the budget is sticky,
   so later members trip immediately) and keep the best golden peak.
   The order is fixed, the attempts sequential — the portfolio is as
   deterministic as its members. *)
let run_prepared_portfolio ?budget p =
  Trace.with_span ~name:"flow.portfolio" ~attrs:[ ("benchmark", p.prep_name) ]
  @@ fun () ->
  let t0 = Clock.now_s () in
  let attempts =
    List.map
      (fun member ->
        let a0 = Clock.now_s () in
        let res =
          Verrors.guard ~stage:"flow.portfolio" (fun () ->
              match budget with
              | Some b -> Budget.with_current b (fun () -> run_prepared p member)
              | None -> run_prepared p member)
        in
        (member, Clock.now_s () -. a0, res))
      portfolio_members
  in
  let ranked =
    List.filter_map
      (function
        | (member, wall, Ok run) -> Some (member, wall, run)
        | (_, _, Error _) -> None)
      attempts
  in
  let winner =
    List.fold_left
      (fun acc (member, _, run) ->
        match acc with
        | Some (_, _, best)
          when best.metrics.Golden.peak_current_ma
               <= run.metrics.Golden.peak_current_ma ->
          acc
        | _ -> Some (algorithm_name member, member, run))
      None ranked
  in
  match winner with
  | None ->
    (* Every member failed (broken input or an instantly-tripped
       budget): degrade to the reference assignment so the caller still
       gets an answer, with the full failure record attached. *)
    let degs =
      List.filter_map
        (function
          | (member, _, Error e) ->
            Some { from_alg = member; to_alg = Some Initial; error = e }
          | _ -> None)
        attempts
    in
    let entries =
      List.map
        (fun (member, wall, res) ->
          { member;
            won = false;
            wall_s = wall;
            peak_ma = None;
            failure = (match res with Error e -> Some e | Ok _ -> None) })
        attempts
    in
    (match Verrors.guard ~stage:"flow.portfolio" (fun () ->
         run_prepared p Initial)
     with
    | Ok run ->
      Ok { run with degradations = degs; portfolio = entries }
    | Error e ->
      Error (e, degs @ [ { from_alg = Initial; to_alg = None; error = e } ]))
  | Some (winner_name, winner_alg, winner_run) ->
    let entries =
      List.map
        (fun (member, wall, res) ->
          match res with
          | Ok run ->
            { member;
              won = member = winner_alg;
              wall_s = wall;
              peak_ma = Some run.metrics.Golden.peak_current_ma;
              failure = None }
          | Error e ->
            { member;
              won = false;
              wall_s = wall;
              peak_ma = None;
              failure = Some e })
        attempts
    in
    let degs =
      List.filter_map
        (function
          | (member, _, Error e) ->
            Obs_metrics.incr degradations_c;
            Some { from_alg = member; to_alg = Some winner_alg; error = e }
          | _ -> None)
        attempts
    in
    if Flight.enabled () then
      Flight.record
        (Flight.Portfolio_winner
           { winner = winner_name;
             losers =
               List.filter_map
                 (fun (m, _, _) ->
                   if m = winner_alg then None else Some (algorithm_name m))
                 attempts;
             wall_ms = (Clock.now_s () -. t0) *. 1000.0 });
    Ok { winner_run with degradations = degs; portfolio = entries }

let run_benchmark_portfolio ?params ?budget spec =
  match
    Verrors.guard ~stage:"flow.synthesize" (fun () ->
        Repro_cts.Benchmarks.synthesize spec)
  with
  | Error e -> Error (e, [])
  | Ok tree ->
    run_prepared_portfolio ?budget
      (prepare ?params ~name:spec.Repro_cts.Benchmarks.name tree)

(* ------------------------------------------------------------------ *)
(* Warm-started re-solves                                              *)

let warm_starts_c = Obs_metrics.counter "flow.warm_starts"

let resolve_warm ?budget p ~previous =
  let attempt =
    Verrors.guard ~stage:"flow.resolve_warm" (fun () ->
        let solve () =
          let ctx = prepared_context p in
          let outcome, stats =
            Clk_sa.optimize_stats ~config:Clk_sa.warm_config ~warm:previous
              ctx
          in
          if Flight.enabled () then
            Flight.record
              (Flight.Warm_start
                 { benchmark = p.prep_name;
                   moves = stats.Clk_sa.proposed;
                   objective = outcome.Context.predicted_peak_ua });
          Obs_metrics.incr warm_starts_c;
          ( outcome.Context.assignment,
            outcome.Context.predicted_peak_ua,
            outcome.Context.approximate,
            Some stats )
        in
        match budget with
        | Some b ->
          Budget.with_current b (fun () ->
              run_prepared_with p ~algorithm:Sa ~solve)
        | None -> run_prepared_with p ~algorithm:Sa ~solve)
  in
  match attempt with
  | Ok run -> Ok run
  | Error e ->
    (* The quench failed (tripped budget, injected fault): fall through
       to the cold robust chain, recording the abandoned warm start. *)
    Log.warn (fun m ->
        m "%s: warm start failed (%s); cold solve" p.prep_name
          (Verrors.code_name e.Verrors.code));
    let deg = { from_alg = Sa; to_alg = Some Sa; error = e } in
    (match run_prepared_robust ?budget p Sa with
    | Ok run -> Ok { run with degradations = deg :: run.degradations }
    | Error (e', degs) -> Error (e', deg :: degs))

let improvement_pct ~baseline ~value =
  if baseline = 0.0 then 0.0 else (baseline -. value) /. baseline *. 100.0
