module Tree = Repro_clocktree.Tree
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell

type candidate = { cell : Cell.t; extra : float; arrival : float }

type sink = { leaf_id : Tree.node_id; candidates : candidate array }

let collect_per_leaf tree asg env timing ~cells_of =
  Array.map
    (fun nd ->
      let leaf_id = nd.Tree.id in
      let cells = cells_of leaf_id in
      if cells = [] then
        invalid_arg "Intervals.collect_per_leaf: empty leaf library";
      let candidates =
        List.concat_map
          (fun cell ->
            (* leaf_delay already includes the base assignment's setting
               for adjustable cells; candidates span the selectable
               steps instead. *)
            let d = Timing.leaf_delay tree asg env timing leaf_id cell in
            let base =
              d
              -. (if Cell.is_adjustable cell then
                    Repro_clocktree.Assignment.extra_delay asg
                      ~mode:env.Timing.mode leaf_id
                  else 0.0)
            in
            let steps =
              if Cell.is_adjustable cell then
                Array.to_list cell.Cell.delay_steps
              else [ 0.0 ]
            in
            List.map
              (fun extra ->
                {
                  cell;
                  extra;
                  arrival =
                    timing.Timing.input_arrival.(leaf_id) +. base +. extra;
                })
              steps)
          cells
        |> Array.of_list
      in
      { leaf_id; candidates })
    (Tree.leaves tree)

let collect tree asg env timing ~cells =
  collect_per_leaf tree asg env timing ~cells_of:(fun _ -> cells)

type interval = { lo : float; hi : float }

let inside iv arrival = arrival >= iv.lo -. 1e-9 && arrival <= iv.hi +. 1e-9

let feasible sinks iv =
  Array.for_all
    (fun s -> Array.exists (fun c -> inside iv c.arrival) s.candidates)
    sinks

let feasible_intervals ?(coalesce = 0.25) sinks ~kappa =
  if kappa <= 0.0 then invalid_arg "Intervals.feasible_intervals: kappa <= 0";
  let arrivals =
    Array.to_list sinks
    |> List.concat_map (fun s ->
           Array.to_list (Array.map (fun c -> c.arrival) s.candidates))
    |> List.sort_uniq compare
  in
  (* Coalesce near-equal arrival times to bound the interval count.  The
     representative of each merged run is its LARGEST member: intervals
     are [t - kappa, t], so only a representative at least as large as
     every member of its run still covers the run. *)
  let arrivals =
    List.fold_left
      (fun acc t ->
        match acc with
        | prev :: rest when t -. prev < coalesce -> t :: rest
        | _ -> t :: acc)
      [] arrivals
    |> List.rev
  in
  arrivals
  |> List.map (fun hi -> { lo = hi -. kappa; hi })
  |> List.filter (feasible sinks)

(* A window [A, B] admits a candidate of every sink only if
   A <= min_i (max_j a_ij) and B >= max_i (min_j a_ij): it cannot start
   after the sink whose candidates end earliest, nor end before the
   sink whose candidates start latest.  The gap between those two
   arrivals is therefore a lower bound on any feasible window's
   width — i.e. on kappa. *)
type binding = {
  earliest_leaf : Repro_clocktree.Tree.node_id;
  earliest_ps : float;
  latest_leaf : Repro_clocktree.Tree.node_id;
  latest_ps : float;
}

let binding_sinks sinks =
  let bound = ref None in
  Array.iter
    (fun s ->
      if Array.length s.candidates > 0 then begin
        let mn = ref s.candidates.(0).arrival
        and mx = ref s.candidates.(0).arrival in
        Array.iter
          (fun c ->
            if c.arrival < !mn then mn := c.arrival;
            if c.arrival > !mx then mx := c.arrival)
          s.candidates;
        match !bound with
        | None ->
          bound :=
            Some
              { latest_leaf = s.leaf_id; latest_ps = !mn;
                earliest_leaf = s.leaf_id; earliest_ps = !mx }
        | Some b ->
          let latest_leaf, latest_ps =
            if !mn > b.latest_ps then (s.leaf_id, !mn)
            else (b.latest_leaf, b.latest_ps)
          and earliest_leaf, earliest_ps =
            if !mx < b.earliest_ps then (s.leaf_id, !mx)
            else (b.earliest_leaf, b.earliest_ps)
          in
          bound := Some { latest_leaf; latest_ps; earliest_leaf; earliest_ps }
      end)
    sinks;
  !bound

let min_window_width b = b.latest_ps -. b.earliest_ps

let infeasibility_message sinks ~kappa =
  match
    Option.map
      (fun b ->
        (b.latest_leaf, b.latest_ps, b.earliest_leaf, b.earliest_ps))
      (binding_sinks sinks)
  with
  | None ->
    Printf.sprintf
      "no feasible interval: no sink has any candidate arrival (kappa = \
       %.2f ps)"
      kappa
  | Some (late_id, late, early_id, early) when late -. early > kappa ->
    Printf.sprintf
      "no feasible interval: skew bound kappa = %.2f ps, but any window \
       covering every sink spans at least [%.2f, %.2f] ps = %.2f ps wide \
       (leaf %d's candidates end earliest at %.2f ps, leaf %d's start \
       latest at %.2f ps); raise kappa by at least %.2f ps"
      kappa early late (late -. early) early_id early late_id late
      (late -. early -. kappa)
  | Some (late_id, late, early_id, early) ->
    Printf.sprintf
      "no feasible interval: no window of width kappa = %.2f ps anchored \
       at a candidate arrival covers every sink, although the binding \
       sinks only require %.2f ps (leaf %d's candidates end earliest at \
       %.2f ps, leaf %d's start latest at %.2f ps); the sinks' arrival \
       sets leave gaps, so raise kappa or loosen coalescing"
      kappa
      (Float.max 0.0 (late -. early))
      early_id early late_id late

let availability sinks iv =
  Array.map
    (fun s -> Array.map (fun c -> inside iv c.arrival) s.candidates)
    sinks

let signature avail =
  let buf = Buffer.create 128 in
  Array.iter
    (fun row ->
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) row;
      Buffer.add_char buf '|')
    avail;
  Buffer.contents buf
