module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Electrical = Repro_cell.Electrical
module Rng = Repro_util.Rng
module Stats = Repro_util.Stats

type config = {
  instances : int;
  sigma_ratio : float;
  kappa : float;
  noise_instances : int;
  seed : int;
}

let default_config =
  { instances = 1000; sigma_ratio = 0.05; kappa = 100.0; noise_instances = 64;
    seed = 20140214 }

type report = {
  skew_yield : float;
  mean_skew : float;
  norm_std_peak : float;
  norm_std_vdd : float;
  norm_std_gnd : float;
}

let positive_gaussian rng ~sigma_ratio =
  Float.max 0.5 (Rng.gaussian rng ~mu:1.0 ~sigma:sigma_ratio)

let perturbed_env rng ~sigma_ratio tree =
  let n = Tree.size tree in
  let cell_factor =
    Array.init n (fun _ -> positive_gaussian rng ~sigma_ratio)
  in
  let wire_r = Array.init n (fun _ -> positive_gaussian rng ~sigma_ratio) in
  let wire_c = Array.init n (fun _ -> positive_gaussian rng ~sigma_ratio) in
  let nominal = Timing.nominal () in
  {
    nominal with
    Timing.cell_derate = (fun id -> cell_factor.(id));
    wire_r_scale = (fun id -> wire_r.(id));
    wire_c_scale = (fun id -> wire_c.(id));
  }

let run ?(config = default_config) tree asg =
  if config.instances < 1 then invalid_arg "Montecarlo.run: instances < 1";
  let grid = Golden.default_grid tree in
  let skews = Array.make config.instances 0.0 in
  let noise_n = min config.noise_instances config.instances in
  let peaks = Array.make noise_n 0.0 in
  let vdds = Array.make noise_n 0.0 in
  let gnds = Array.make noise_n 0.0 in
  (* Each instance draws from its own RNG stream, a pure function of
     (seed, i), and writes only its own index — so the sweep is
     bit-identical for any job count or chunking. *)
  let eval_instance i =
    let rng = Rng.of_instance ~seed:config.seed i in
    let env = perturbed_env rng ~sigma_ratio:config.sigma_ratio tree in
    if i < noise_n then begin
      let m = Golden.evaluate ~grid tree asg env in
      skews.(i) <- m.Golden.skew_ps;
      peaks.(i) <- m.Golden.peak_current_ma;
      vdds.(i) <- m.Golden.vdd_noise_mv;
      gnds.(i) <- m.Golden.gnd_noise_mv
    end
    else begin
      let timing = Timing.analyze tree asg env ~edge:Electrical.Rising in
      skews.(i) <- Timing.skew tree timing
    end
  in
  Repro_par.Par.parallel_for ~label:"montecarlo" ~n:config.instances
    eval_instance;
  {
    skew_yield = Stats.fraction_satisfying (fun s -> s <= config.kappa) skews;
    mean_skew = Stats.mean skews;
    norm_std_peak = Stats.normalized_stddev peaks;
    norm_std_vdd = Stats.normalized_stddev vdds;
    norm_std_gnd = Stats.normalized_stddev gnds;
  }
