module Verrors = Repro_util.Verrors
module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell

let node_subject id = Printf.sprintf "node %d" id

(* Collect-all style: every checker appends to a diagnostics list and
   keeps going, so one validate run reports the full damage. *)
let check_nodes nodes =
  let ds = ref [] in
  let add ?subject fmt =
    Printf.ksprintf
      (fun message ->
        ds :=
          Verrors.make ~code:Verrors.Invalid_tree ~stage:"preflight.tree"
            ?subject message
          :: !ds)
      fmt
  in
  let n = Array.length nodes in
  if n = 0 then add "empty node array";
  let in_range id = id >= 0 && id < n in
  Array.iteri
    (fun i (nd : Tree.node) ->
      let subject = node_subject nd.Tree.id in
      if nd.Tree.id <> i then
        add ~subject "id %d does not match its array index %d" nd.Tree.id i;
      (match nd.Tree.parent with
      | Some p when not (in_range p) ->
        add ~subject "dangling parent id %d (tree has %d nodes)" p n
      | Some p when p = nd.Tree.id -> add ~subject "node is its own parent"
      | Some p ->
        let listed =
          in_range nd.Tree.id && List.mem nd.Tree.id nodes.(p).Tree.children
        in
        if not listed then
          add ~subject "parent %d does not list it as a child" p
      | None -> ());
      List.iter
        (fun c ->
          if not (in_range c) then
            add ~subject "dangling child id %d (tree has %d nodes)" c n
          else if nodes.(c).Tree.parent <> Some nd.Tree.id then
            add ~subject "child %d does not point back to it as parent" c)
        nd.Tree.children;
      (match nd.Tree.kind with
      | Tree.Leaf ->
        if nd.Tree.children <> [] then
          add ~subject "leaf has %d children" (List.length nd.Tree.children);
        if not (nd.Tree.sink_cap > 0.0) then
          add ~subject "leaf sink capacitance %g fF is not positive"
            nd.Tree.sink_cap
      | Tree.Internal ->
        if nd.Tree.children = [] then add ~subject "internal node has no children";
        if nd.Tree.sink_cap <> 0.0 then
          add ~subject "internal node has sink capacitance %g fF (must be 0)"
            nd.Tree.sink_cap);
      if not (Float.is_finite nd.Tree.x && Float.is_finite nd.Tree.y) then
        add ~subject "non-finite placement (%g, %g)" nd.Tree.x nd.Tree.y;
      let w = nd.Tree.wire in
      if
        not
          (w.Repro_clocktree.Wire.length >= 0.0
          && w.Repro_clocktree.Wire.res >= 0.0
          && w.Repro_clocktree.Wire.cap >= 0.0)
      then
        add ~subject "negative wire RC (length %g um, %g kOhm, %g fF)"
          w.Repro_clocktree.Wire.length w.Repro_clocktree.Wire.res
          w.Repro_clocktree.Wire.cap)
    nodes;
  let roots =
    Array.to_list nodes
    |> List.filter (fun (nd : Tree.node) -> nd.Tree.parent = None)
    |> List.map (fun (nd : Tree.node) -> nd.Tree.id)
  in
  (match roots with
  | [] when n > 0 -> add "no root node (every node has a parent)"
  | [ _ ] | [] -> ()
  | ids ->
    add "%d root nodes (%s); a tree has exactly one" (List.length ids)
      (String.concat ", " (List.map string_of_int ids)));
  (* Reachability: with one root and locally-consistent pointers, any
     unreachable node indicates a parent cycle off the main tree. *)
  (match roots with
  | [ root ] ->
    let seen = Array.make n false in
    let rec visit id =
      if in_range id && not seen.(id) then begin
        seen.(id) <- true;
        List.iter visit nodes.(id).Tree.children
      end
    in
    visit root;
    Array.iteri
      (fun id reached ->
        if not reached then
          add ~subject:(node_subject id)
            "unreachable from root %d (parent cycle?)" root)
      seen
  | _ -> ());
  List.rev !ds

let check_tree tree = check_nodes (Tree.nodes tree)

let check_library cells =
  let ds = ref [] in
  let add ?subject ?hints fmt =
    Printf.ksprintf
      (fun message ->
        ds :=
          Verrors.make ~code:Verrors.Invalid_library
            ~stage:"preflight.library" ?subject ?hints message
          :: !ds)
      fmt
  in
  if cells = [] then add "empty cell library"
  else begin
    (* Distinct cells sharing a name would alias in caches and printed
       libraries. *)
    let by_name = Hashtbl.create 16 in
    List.iter
      (fun (c : Cell.t) ->
        (match Hashtbl.find_opt by_name c.Cell.name with
        | Some prev when prev != c && Stdlib.compare prev c <> 0 ->
          add ~subject:c.Cell.name
            "two distinct cells share the name %s" c.Cell.name
        | _ -> ());
        Hashtbl.replace by_name c.Cell.name c)
      cells;
    let has pol = List.exists (fun c -> Cell.polarity c = pol) cells in
    if not (has Cell.Positive) then
      add
        ~hints:[ "add a buffer or adjustable_buffer cell" ]
        "no positive-polarity cell (buffer/ADB) in the library";
    if not (has Cell.Negative) then
      add
        ~hints:
          [ "add an inverter or adjustable_inverter cell; polarity \
             assignment is vacuous without one" ]
        "no negative-polarity cell (inverter/ADI) in the library"
  end;
  List.rev !ds

let check_params (p : Context.params) =
  let ds = ref [] in
  let add ?hints fmt =
    Printf.ksprintf
      (fun message ->
        ds :=
          Verrors.make ~code:Verrors.Invalid_params ~stage:"preflight.params"
            ?hints message
          :: !ds)
      fmt
  in
  if not (p.Context.kappa > 0.0) then
    add "kappa %g ps is not positive" p.Context.kappa;
  if not (p.Context.epsilon >= 0.0) then
    add "epsilon %g is negative" p.Context.epsilon;
  if p.Context.num_slots < 1 then
    add "num_slots %d is below 1" p.Context.num_slots;
  if not (p.Context.zone_side > 0.0) then
    add "zone_side %g um is not positive" p.Context.zone_side;
  if p.Context.max_labels < 1 then
    add "max_labels %d is below 1" p.Context.max_labels;
  if not (p.Context.coalesce >= 0.0) then
    add "coalesce %g ps is negative" p.Context.coalesce;
  if p.Context.max_interval_classes < 1 then
    add "max_interval_classes %d is below 1" p.Context.max_interval_classes;
  if not (p.Context.sibling_guard >= 0.0) then
    add "sibling_guard %g ps is negative" p.Context.sibling_guard;
  if
    p.Context.kappa > 0.0
    && p.Context.sibling_guard >= 0.0
    && p.Context.kappa -. p.Context.sibling_guard < 1.0
  then
    add
      ~hints:
        [ "raise kappa or lower sibling_guard so their difference is at \
           least 1 ps" ]
      "sibling_guard %g ps leaves an effective skew window below 1 ps \
       (kappa %g ps); the solver clamps it to 1 ps"
      p.Context.sibling_guard p.Context.kappa;
  List.rev !ds

let check_modes (envs : Timing.env array) =
  let ds = ref [] in
  let add ?subject fmt =
    Printf.ksprintf
      (fun message ->
        ds :=
          Verrors.make ~code:Verrors.Invalid_modes ~stage:"preflight.modes"
            ?subject message
          :: !ds)
      fmt
  in
  if Array.length envs = 0 then add "no power modes";
  let seen = Hashtbl.create 8 in
  Array.iteri
    (fun i env ->
      let subject = Printf.sprintf "mode %d" i in
      if env.Timing.mode <> i then
        add ~subject "env.mode %d does not match its array index %d"
          env.Timing.mode i;
      (match Hashtbl.find_opt seen env.Timing.mode with
      | Some j ->
        add ~subject "duplicate mode id %d (also used at index %d)"
          env.Timing.mode j
      | None -> Hashtbl.add seen env.Timing.mode i);
      if not (env.Timing.source_slew > 0.0) then
        add ~subject "source slew %g ps is not positive" env.Timing.source_slew)
    envs;
  List.rev !ds

let check_feasibility ?(params = Context.default_params) tree ~cells =
  match
    Verrors.guard ~stage:"preflight.feasibility" (fun () ->
        let ds = ref [] in
        let zones = Zones.partition tree ~side:params.Context.zone_side in
        if Zones.num_zones zones = 0 then
          ds :=
            Verrors.make ~code:Verrors.Empty_zones
              ~stage:"preflight.feasibility"
              (Printf.sprintf
                 "zone partitioning (side %g um) produced no zone with \
                  leaves"
                 params.Context.zone_side)
            :: !ds;
        let env = Timing.nominal () in
        let base = Assignment.default tree ~num_modes:1 in
        let timing = Timing.analyze tree base env ~edge:Repro_cell.Electrical.Rising in
        let sinks = Intervals.collect tree base env timing ~cells in
        let effective_kappa =
          Float.max 1.0 (params.Context.kappa -. params.Context.sibling_guard)
        in
        (match
           Intervals.feasible_intervals ~coalesce:params.Context.coalesce
             sinks ~kappa:effective_kappa
         with
        | _ :: _ -> ()
        | [] ->
          ds :=
            Verrors.make ~code:Verrors.Infeasible_window
              ~stage:"preflight.feasibility"
              ~hints:
                [ "widen the skew window (larger kappa) or reduce \
                   sibling_guard" ]
              (Printf.sprintf
                 "%s (effective kappa %.2f ps = kappa %.2f ps - sibling \
                  guard %.2f ps)"
                 (Intervals.infeasibility_message sinks ~kappa:effective_kappa)
                 effective_kappa params.Context.kappa
                 params.Context.sibling_guard)
            :: !ds);
        List.rev !ds)
  with
  | Ok ds -> ds
  | Error e -> [ e ]

let check ?params ?envs tree ~cells =
  let structural =
    check_tree tree @ check_library cells
    @ (match params with
      | Some p -> check_params p
      | None -> [])
    @ (match envs with Some e -> check_modes e | None -> [])
  in
  (* Feasibility evaluates the inputs, so only attempt it on inputs the
     cheap checks accepted. *)
  if structural <> [] then structural
  else check_feasibility ?params tree ~cells

let result = function [] -> Ok () | ds -> Error ds

let to_string = function
  | [] -> "preflight: ok"
  | ds -> String.concat "\n" (List.map Verrors.to_string ds)
