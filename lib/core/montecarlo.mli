(** Monte-Carlo process-variation analysis (Sec. VII-D).

    Wire widths/lengths, buffer widths and threshold voltages are
    randomized as Gaussians with sigma/mu = 5 %; in our model that maps
    to multiplicative Gaussian factors on per-node cell delays and wire
    R/C.  For each randomized instance the skew and the golden noise
    metrics are measured; reported are the skew yield (share of
    instances within the bound) and the normalized standard deviations
    sigma-hat/mu-hat of peak current and V_DD/Gnd noise. *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment

type config = {
  instances : int;  (** 1000 in the paper. *)
  sigma_ratio : float;  (** 0.05 in the paper. *)
  kappa : float;  (** Skew bound for the yield, ps. *)
  noise_instances : int;
      (** Number of instances on which the (expensive) golden noise
          metrics are also measured; skew is measured on all. *)
  seed : int;
}

val default_config : config
(** 1000 instances, 5 %, kappa = 100 ps, 64 noise instances. *)

type report = {
  skew_yield : float;  (** Fraction of instances with skew <= kappa. *)
  mean_skew : float;
  norm_std_peak : float;  (** sigma-hat/mu-hat of peak current. *)
  norm_std_vdd : float;
  norm_std_gnd : float;
}

val run : ?config:config -> Tree.t -> Assignment.t -> report
(** Analyse one (optimized) assignment under variation.  The instance
    loop fans out across the {!Repro_par.Par} pool; every instance draws
    from its own [Rng.of_instance (seed, i)] stream and owns its result
    slot, so the report is bit-identical for any job count. *)

val perturbed_env :
  Repro_util.Rng.t -> sigma_ratio:float -> Tree.t -> Repro_clocktree.Timing.env
(** One randomized environment instance (exposed for tests). *)
