(** ClkWaveMin-M (Fig. 13): polarity assignment for multi-power-mode
    designs.

    First the multi-mode WaveMin problem is attempted with plain buffer
    and inverter sizing only; if no feasible interval intersection
    exists, ADBs are embedded to repair the skew ({!Adb_embedding}), and
    the optimization is re-run where ADB leaves may choose between
    staying ADBs and becoming ADIs (never reverting to plain cells — the
    ADB is needed for skew; never upgrading plain cells to ADBs — that
    would waste area), while plain leaves use the normal B and I
    libraries. *)

module Tree := Repro_clocktree.Tree
module Assignment := Repro_clocktree.Assignment
module Timing := Repro_clocktree.Timing
module Cell := Repro_cell.Cell

type outcome = {
  assignment : Assignment.t;
  predicted_peak_ua : float;
  num_adbs : int;  (** ADBs in the final design (leaf + internal). *)
  num_adis : int;  (** ADB leaves converted to ADIs. *)
  used_adb_embedding : bool;
  skews : float array;  (** Final per-mode skews. *)
  feasible : bool;  (** All mode skews within kappa. *)
  approximate : bool;
      (** The winning solve tripped the MOSP label cap; the epsilon
          approximation guarantee does not cover this outcome. *)
}

val adb_embedded_only :
  ?params:Context.params ->
  Tree.t ->
  envs:Timing.env array ->
  Adb_embedding.result
(** The noise-unaware reference design of Table VII: ADBs inserted to
    meet the skew bound in every mode, no polarity optimization. *)

val optimize :
  ?params:Context.params ->
  ?buffers:Cell.t list ->
  ?inverters:Cell.t list ->
  Tree.t ->
  envs:Timing.env array ->
  outcome
(** Full ClkWaveMin-M.  [buffers]/[inverters] default to the experiment
    libraries (X8/X16).
    @raise Invalid_argument on empty [envs]. *)
