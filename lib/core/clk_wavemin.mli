(** ClkWaveMin (Sec. V-B): the approximation algorithm.

    Per zone and per feasible interval class, the WaveMin instance is
    converted to a layered MOSP graph (Algorithm 1) — one row per zone
    sink, one vertex per admitted candidate, the non-leaf noise vector on
    the dest arcs — and solved with the Warburton ε-approximation; the
    Pareto path with the minimum worst component is selected. *)

val to_mosp :
  Noise_table.t -> avail:bool array array -> Repro_mosp.Layered.t * int array array
(** Algorithm 1: build the layered graph for one zone under an
    availability mask.  Also returns, per row, the mapping from graph
    option index back to the candidate index in the noise table.
    @raise Invalid_argument if some sink has no available candidate. *)

val zone_solver :
  Context.t -> Noise_table.t -> avail:bool array array -> int array * bool
(** Solve one zone: candidate index per zone sink, and whether the MOSP
    label cap truncated the search (the solution is then approximate
    beyond the epsilon guarantee). *)

val optimize : Context.t -> Context.outcome
(** Full ClkWaveMin over all zones and interval classes.
    @raise Failure when the skew bound admits no feasible interval. *)
