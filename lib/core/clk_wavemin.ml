module Layered = Repro_mosp.Layered
module Warburton = Repro_mosp.Warburton

let to_mosp (table : Noise_table.t) ~avail =
  let mapping =
    Array.mapi
      (fun zi row ->
        let admitted = ref [] in
        Array.iteri (fun ci ok -> if ok then admitted := ci :: !admitted) row;
        let admitted = Array.of_list (List.rev !admitted) in
        if Array.length admitted = 0 then
          invalid_arg "Clk_wavemin.to_mosp: sink without available candidate";
        ignore zi;
        admitted)
      avail
  in
  let options =
    Array.mapi
      (fun zi admitted ->
        Array.map (fun ci -> table.Noise_table.noise.(zi).(ci)) admitted)
      mapping
  in
  let graph =
    Layered.create ~options ~dest_weight:table.Noise_table.nonleaf
  in
  (graph, mapping)

let zone_solver (ctx : Context.t) table ~avail =
  let graph, mapping = to_mosp table ~avail in
  let solution =
    Warburton.solve_min_max ~epsilon:ctx.Context.params.Context.epsilon
      ~max_labels:ctx.Context.params.Context.max_labels graph
  in
  ( Array.mapi (fun row opt -> mapping.(row).(opt)) solution.Warburton.choices,
    solution.Warburton.capped )

let optimize ctx =
  Repro_obs.Trace.with_span ~name:"wavemin.optimize" (fun () ->
      Context.solve_with ctx ~zone_solver)
