(** End-to-end single-power-mode flow: synthesize a benchmark, run an
    algorithm, evaluate with the golden evaluator — the machinery behind
    Tables V and VI. *)

type algorithm = Initial | Peakmin | Wavemin | Wavemin_fast | Sa
(** [Initial] evaluates the unmodified CTS tree (all leaves at the
    default buffer) as a reference point; [Sa] is the simulated-
    annealing solver {!Clk_sa} (ClkSA). *)

val algorithm_name : algorithm -> string

val solver_names : (string * algorithm) list
(** The CLI/protocol solver vocabulary: initial, peakmin, wavemin,
    wavemin-f, sa. *)

val solver_of_name : string -> (algorithm, Repro_util.Verrors.t) result
(** Case-insensitive lookup in {!solver_names}; unknown names return a
    structured [Invalid_params] error naming the valid solvers. *)

type degradation = {
  from_alg : algorithm;  (** The attempt that failed. *)
  to_alg : algorithm option;
      (** The fallback tried next; [None] when the chain was exhausted. *)
  error : Repro_util.Verrors.t;  (** Why the attempt failed. *)
}
(** One link of the fallback chain ClkWaveMin → ClkWaveMin-f →
    ClkPeakMin → Initial taken by {!run_tree_robust}. *)

type portfolio_entry = {
  member : algorithm;
  won : bool;
  wall_s : float;  (** This member's attempt wall time. *)
  peak_ma : float option;  (** Golden peak; [None] when it failed. *)
  failure : Repro_util.Verrors.t option;
}
(** One member's result in a {!run_prepared_portfolio} race. *)

type run = {
  benchmark : string;
  algorithm : algorithm;
  params : Context.params;
  assignment : Repro_clocktree.Assignment.t;
      (** The optimized assignment (the default one for [Initial]) —
          input for downstream analyses such as {!Montecarlo}. *)
  metrics : Golden.metrics;
  predicted_peak_ua : float;  (** The optimizer's own estimate. *)
  num_leaf_inverters : int;
  elapsed_s : float;
      (** Wall-clock seconds spent inside the optimizer (monotonic
          clock, {!Repro_obs.Clock.now_s}). *)
  cpu_s : float;  (** CPU seconds over the same region ([Sys.time]). *)
  approximate : bool;
      (** The optimizer truncated its label sets (see
          {!Context.outcome.approximate}); always [false] for [Initial],
          [Peakmin] and [Wavemin_fast]. *)
  degradations : degradation list;
      (** Fallback links taken before this run succeeded, oldest first.
          Empty for {!run_tree}/{!run_benchmark} and for robust runs
          whose first attempt succeeded; when non-empty, [algorithm] is
          the member of the chain that actually produced the result. *)
  sa : Clk_sa.stats option;
      (** The annealer's move counters — [Some] exactly when [algorithm]
          is [Sa] (including warm starts). *)
  portfolio : portfolio_entry list;
      (** Per-member results when this run came from
          {!run_prepared_portfolio}; empty otherwise. *)
}

val leaf_library : unit -> Repro_cell.Cell.t list
(** The experiment library of Sec. VII-A:
    BUF_X8, BUF_X16, INV_X8, INV_X16. *)

val run_tree :
  ?params:Context.params ->
  name:string ->
  Repro_clocktree.Tree.t ->
  algorithm ->
  run
(** Optimize an existing tree and evaluate the result. *)

val run_benchmark :
  ?params:Context.params -> Repro_cts.Benchmarks.spec -> algorithm -> run
(** Synthesize the benchmark tree, then {!run_tree}. *)

(** {1 Prepared (warm-cache) runs}

    A {!prepared} bundles a synthesized tree with its optimization
    context, built at most once and reused by every subsequent
    {!run_prepared} — the unit the server's session cache
    ({!Repro_server.Session}) keeps warm.  Context construction (timing
    analysis, zone partitioning, noise tables, the candidate-waveform
    memo) dominates a single run's cost, so a warm [prepared] makes
    repeat requests measurably cheaper.  Reuse is safe: the context is
    immutable once built, so warm and cold runs return bit-identical
    results.  If construction raises (injected fault, infeasible input)
    nothing is memoized and the next run retries. *)

type prepared

val prepare :
  ?params:Context.params ->
  ?cells:Repro_cell.Cell.t list ->
  name:string ->
  Repro_clocktree.Tree.t ->
  prepared
(** Wrap a tree for repeated runs.  [cells] defaults to
    {!leaf_library}; the context itself is built lazily on the first
    solver run (never for [Initial]). *)

val prepared_name : prepared -> string
val prepared_tree : prepared -> Repro_clocktree.Tree.t
val prepared_params : prepared -> Context.params
val prepared_cells : prepared -> Repro_cell.Cell.t list

val context_warm : prepared -> bool
(** Whether the context has already been built (and memoized). *)

val run_prepared : prepared -> algorithm -> run
(** {!run_tree} against the prepared tree, reusing the memoized
    context.  [elapsed_s]/[cpu_s] cover only this call, so warm runs
    report the residual solver time. *)

(** {1 Graceful degradation}

    The robust runners never raise (asynchronous exceptions aside).
    Each attempt runs under the optional {!Repro_obs.Budget}; on a
    structured failure — infeasible window, exhausted budget, injected
    fault, or any exception captured by {!Repro_util.Verrors.guard} —
    the next algorithm of {!fallback_chain} is tried and the downgrade
    is recorded (also counted in the [flow.degradations] metric and
    logged at warning level).  A budget that tripped is dropped for the
    remaining attempts: the cheaper fallback gets its chance instead of
    re-tripping instantly.  [Initial] cannot hit a solver failure, so
    the chain only exhausts on inputs that are broken end-to-end. *)

val fallback_chain : algorithm -> algorithm list
(** The algorithm itself followed by its cheaper fallbacks, ending in
    [Initial]. *)

val run_tree_robust :
  ?params:Context.params ->
  ?budget:Repro_obs.Budget.t ->
  name:string ->
  Repro_clocktree.Tree.t ->
  algorithm ->
  (run, Repro_util.Verrors.t * degradation list) result
(** Like {!run_tree} with the fallback chain.  [Ok run] carries the
    downgrades in [run.degradations]; [Error (e, degradations)] is the
    final failure after the whole chain (the last degradation has
    [to_alg = None]). *)

val run_prepared_robust :
  ?budget:Repro_obs.Budget.t ->
  prepared ->
  algorithm ->
  (run, Repro_util.Verrors.t * degradation list) result
(** {!run_tree_robust} over a {!prepared}: the fallback chain shares
    the memoized context instead of rebuilding it per attempt. *)

val run_benchmark_robust :
  ?params:Context.params ->
  ?budget:Repro_obs.Budget.t ->
  Repro_cts.Benchmarks.spec ->
  algorithm ->
  (run, Repro_util.Verrors.t * degradation list) result
(** Synthesize (failures captured as [Error]) then {!run_tree_robust}. *)

(** {1 Solver portfolio}

    The portfolio races ClkWaveMin, ClkWaveMin-f and ClkSA sequentially
    under ONE shared budget and returns the member with the lowest
    golden peak current ([best-under-budget]; ties go to the earlier,
    more deterministic member).  A member that exhausts the shared
    budget leaves the rest to trip instantly — only results banked
    within the budget compete.  Losing and failed members are recorded
    in [run.portfolio]; failures additionally appear as
    degradation-style annotations and a [Portfolio_winner] flight event
    closes the race. *)

val portfolio_members : algorithm list
(** [Wavemin; Wavemin_fast; Sa], the fixed race order. *)

val run_prepared_portfolio :
  ?budget:Repro_obs.Budget.t ->
  prepared ->
  (run, Repro_util.Verrors.t * degradation list) result
(** Race the portfolio over a prepared benchmark.  When every member
    fails, the reference [Initial] assignment is returned with the
    failures attached (mirroring the robust chain's last resort);
    [Error] only when even that is impossible. *)

val run_benchmark_portfolio :
  ?params:Context.params ->
  ?budget:Repro_obs.Budget.t ->
  Repro_cts.Benchmarks.spec ->
  (run, Repro_util.Verrors.t * degradation list) result
(** Synthesize (failures captured as [Error]) then
    {!run_prepared_portfolio}. *)

(** {1 Warm-started re-solves} *)

val resolve_warm :
  ?budget:Repro_obs.Budget.t ->
  prepared ->
  previous:Repro_clocktree.Assignment.t ->
  (run, Repro_util.Verrors.t * degradation list) result
(** Re-solve by annealing from [previous] (a cached assignment for the
    same tree under nearby parameters) with the low-temperature quench
    schedule ({!Clk_sa.warm_config}) instead of solving cold — the ECO
    path behind the server's warm-start cache.  Counted in the
    [flow.warm_starts] metric and flight-recorded as a [Warm_start]
    event.  If the quench itself fails, falls back to the cold robust
    [Sa] chain with the abandoned warm start recorded as a
    degradation. *)

val improvement_pct : baseline:float -> value:float -> float
(** [(baseline - value) / baseline * 100] — the paper's improvement
    columns (negative = degradation).  Returns 0 for a zero baseline. *)
