(** End-to-end single-power-mode flow: synthesize a benchmark, run an
    algorithm, evaluate with the golden evaluator — the machinery behind
    Tables V and VI. *)

type algorithm = Initial | Peakmin | Wavemin | Wavemin_fast
(** [Initial] evaluates the unmodified CTS tree (all leaves at the
    default buffer) as a reference point. *)

val algorithm_name : algorithm -> string

type run = {
  benchmark : string;
  algorithm : algorithm;
  params : Context.params;
  metrics : Golden.metrics;
  predicted_peak_ua : float;  (** The optimizer's own estimate. *)
  num_leaf_inverters : int;
  elapsed_s : float;
      (** Wall-clock seconds spent inside the optimizer (monotonic
          clock, {!Repro_obs.Clock.now_s}). *)
  cpu_s : float;  (** CPU seconds over the same region ([Sys.time]). *)
  approximate : bool;
      (** The optimizer truncated its label sets (see
          {!Context.outcome.approximate}); always [false] for [Initial],
          [Peakmin] and [Wavemin_fast]. *)
}

val leaf_library : unit -> Repro_cell.Cell.t list
(** The experiment library of Sec. VII-A:
    BUF_X8, BUF_X16, INV_X8, INV_X16. *)

val run_tree :
  ?params:Context.params ->
  name:string ->
  Repro_clocktree.Tree.t ->
  algorithm ->
  run
(** Optimize an existing tree and evaluate the result. *)

val run_benchmark :
  ?params:Context.params -> Repro_cts.Benchmarks.spec -> algorithm -> run
(** Synthesize the benchmark tree, then {!run_tree}. *)

val improvement_pct : baseline:float -> value:float -> float
(** [(baseline - value) / baseline * 100] — the paper's improvement
    columns (negative = degradation).  Returns 0 for a zero baseline. *)
