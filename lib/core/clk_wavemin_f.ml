let zone_solver (ctx : Context.t) (table : Noise_table.t) ~avail =
  ignore ctx;
  let num_sinks = Array.length table.Noise_table.sinks in
  Array.iter
    (fun row ->
      if not (Array.exists (fun b -> b) row) then
        invalid_arg "Clk_wavemin_f.zone_solver: sink without available candidate")
    avail;
  let num_slots = Array.length table.Noise_table.nonleaf in
  let sum = Array.copy table.Noise_table.nonleaf in
  let choices = Array.make num_sinks (-1) in
  let assigned = Array.make num_sinks false in
  (* Max over slots if the candidate were added to the current sum. *)
  let worsened zi ci =
    let v = table.Noise_table.noise.(zi).(ci) in
    let m = ref 0.0 in
    for si = 0 to num_slots - 1 do
      let x = sum.(si) +. v.(si) in
      if x > !m then m := x
    done;
    !m
  in
  for _ = 1 to num_sinks do
    let best = ref None in
    for zi = 0 to num_sinks - 1 do
      if not assigned.(zi) then
        Array.iteri
          (fun ci ok ->
            if ok then begin
              let m = worsened zi ci in
              match !best with
              | Some (_, _, bm) when bm <= m -> ()
              | Some _ | None -> best := Some (zi, ci, m)
            end)
          avail.(zi)
    done;
    match !best with
    | None -> assert false (* every sink has an available candidate *)
    | Some (zi, ci, _) ->
      assigned.(zi) <- true;
      choices.(zi) <- ci;
      let v = table.Noise_table.noise.(zi).(ci) in
      for si = 0 to num_slots - 1 do
        sum.(si) <- sum.(si) +. v.(si)
      done
  done;
  (choices, false)

let optimize ctx =
  Repro_obs.Trace.with_span ~name:"wavemin_f.optimize" (fun () ->
      Context.solve_with ctx ~zone_solver)
