module Verrors = Repro_util.Verrors
module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Obs_metrics = Repro_obs.Metrics
module Trace = Repro_obs.Trace
module Flight = Repro_obs.Flight
module Obs_clock = Repro_obs.Clock
module Par = Repro_par.Par

module Log = (val Logs.src_log (Repro_obs.Log.src "wavemin.context"))

let sinks_g = Obs_metrics.gauge "context.sinks"
let zones_g = Obs_metrics.gauge "context.zones"
let classes_g = Obs_metrics.gauge "context.interval_classes"
let feasible_intervals_g = Obs_metrics.gauge "context.feasible_intervals"

type params = {
  kappa : float;
  epsilon : float;
  num_slots : int;
  zone_side : float;
  max_labels : int;
  coalesce : float;
  max_interval_classes : int;
  sibling_guard : float;
}

let default_params =
  {
    kappa = 20.0;
    epsilon = 0.01;
    num_slots = 158;
    zone_side = 50.0;
    max_labels = 400;
    coalesce = 0.25;
    max_interval_classes = 16;
    sibling_guard = 4.0;
  }

type interval_class = {
  interval : Intervals.interval;
  avail : bool array array;
  degree_of_freedom : int;
}

type t = {
  tree : Tree.t;
  base : Assignment.t;
  env : Timing.env;
  timing : Timing.result;
  params : params;
  cells : Cell.t array;
  sinks : Intervals.sink array;
  zones : Zones.t;
  tables : Noise_table.t array;
  classes : interval_class list;
}

let degree_of_freedom avail =
  Array.fold_left
    (fun acc row ->
      acc + Array.fold_left (fun a b -> if b then a + 1 else a) 0 row)
    0 avail

let create ?(params = default_params) ?env ?base tree ~cells =
  if cells = [] then invalid_arg "Context.create: empty cell library";
  Trace.with_span ~name:"context.create"
    ~attrs:[ ("leaves", string_of_int (Array.length (Tree.leaves tree))) ]
  @@ fun () ->
  let env = match env with Some e -> e | None -> Timing.nominal () in
  let base =
    match base with Some a -> a | None -> Assignment.default tree ~num_modes:1
  in
  let timing, falling =
    Trace.with_span ~name:"context.timing" (fun () ->
        ( Timing.analyze tree base env ~edge:Electrical.Rising,
          Timing.analyze tree base env ~edge:Electrical.Falling ))
  in
  let sinks =
    Trace.with_span ~name:"context.sinks" (fun () ->
        Intervals.collect tree base env timing ~cells)
  in
  let zones = Zones.partition tree ~side:params.zone_side in
  let num_leaves = Array.length (Tree.leaves tree) in
  let internal_ids = Array.map (fun nd -> nd.Tree.id) (Tree.internals tree) in
  let global_internal =
    if Array.length internal_ids = 0 then
      { Electrical.idd = Repro_waveform.Pwl.zero; iss = Repro_waveform.Pwl.zero }
    else
      Waveforms.period_rail_currents tree base env ~node_ids:internal_ids
        ~period:Noise_table.default_period ()
  in
  let tables =
    Trace.with_span ~name:"context.noise_tables"
      ~attrs:[ ("zones", string_of_int (Zones.num_zones zones)) ]
    @@ fun () ->
    (* One candidate-waveform memo for all zones: a leaf lives in
       exactly one zone, so cross-zone traffic is nil, but within a zone
       every delay step of an adjustable cell shares its pulse pair. *)
    let cache = Waveforms.create_cache () in
    Par.parallel_map ~label:"context.noise_tables"
      (fun zone ->
        (* Each zone accounts for a leaf-proportional share of the
           chip-global non-leaf background; shares sum to 1, so the
           per-zone objectives jointly balance the global waveform. *)
        let share =
          float_of_int (Array.length zone.Zones.leaf_ids)
          /. float_of_int (max 1 num_leaves)
        in
        Noise_table.build tree base env ~rising:timing ~falling ~sinks ~zone
          ~num_slots:params.num_slots
          ~background:(global_internal, share) ~cache ())
      (Zones.zones zones)
  in
  let classes =
    Trace.with_span ~name:"context.interval_classes" @@ fun () ->
    let effective_kappa =
      Float.max 1.0 (params.kappa -. params.sibling_guard)
    in
    let feasible =
      Intervals.feasible_intervals ~coalesce:params.coalesce sinks
        ~kappa:effective_kappa
    in
    Obs_metrics.set feasible_intervals_g (float_of_int (List.length feasible));
    (* Flight-record which sinks bound the window: the forensic answer
       to "why is this kappa (in)feasible" in a post-mortem dump. *)
    if Flight.enabled () then begin
      match Intervals.binding_sinks sinks with
      | None -> ()
      | Some b ->
        Flight.record
          (Flight.Window
             { kappa_ps = effective_kappa;
               feasible = List.length feasible;
               min_width_ps = Intervals.min_window_width b;
               earliest_leaf = b.Intervals.earliest_leaf;
               earliest_ps = b.Intervals.earliest_ps;
               latest_leaf = b.Intervals.latest_leaf;
               latest_ps = b.Intervals.latest_ps })
    end;
    let seen = Hashtbl.create 32 in
    let classes =
      List.filter_map
        (fun interval ->
          let avail = Intervals.availability sinks interval in
          let key = Intervals.signature avail in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some
              { interval; avail; degree_of_freedom = degree_of_freedom avail }
          end)
        feasible
    in
    let classes =
      List.sort
        (fun a b -> Int.compare b.degree_of_freedom a.degree_of_freedom)
        classes
    in
    List.filteri (fun i _ -> i < params.max_interval_classes) classes
  in
  Obs_metrics.set sinks_g (float_of_int (Array.length sinks));
  Obs_metrics.set zones_g (float_of_int (Zones.num_zones zones));
  Obs_metrics.set classes_g (float_of_int (List.length classes));
  Log.debug (fun m ->
      m "context: %d sinks, %d zones, %d interval classes"
        (Array.length sinks) (Zones.num_zones zones) (List.length classes));
  {
    tree;
    base;
    env;
    timing;
    params;
    cells = Array.of_list cells;
    sinks;
    zones;
    tables;
    classes;
  }

let feasible t = t.classes <> []

type outcome = {
  assignment : Assignment.t;
  interval : Intervals.interval;
  predicted_peak_ua : float;
  zone_peaks : float array;
  approximate : bool;
}

let zone_avail t avail (table : Noise_table.t) =
  ignore t;
  Array.map (fun row -> avail.(row)) table.Noise_table.sink_rows

let apply_choices t per_zone_choices =
  let asg = ref t.base in
  Array.iteri
    (fun zi choices ->
      let table = t.tables.(zi) in
      Array.iteri
        (fun sink_idx cand_idx ->
          let sink = table.Noise_table.sinks.(sink_idx) in
          let cand = sink.Intervals.candidates.(cand_idx) in
          asg := Assignment.set_cell !asg sink.Intervals.leaf_id cand.Intervals.cell;
          if Cell.is_adjustable cand.Intervals.cell then
            asg :=
              Assignment.set_extra_delay !asg ~mode:t.env.Timing.mode
                sink.Intervals.leaf_id cand.Intervals.extra)
        choices)
    per_zone_choices;
  !asg

let solve_with t ~zone_solver =
  Trace.with_span ~name:"context.solve"
    ~attrs:[ ("classes", string_of_int (List.length t.classes)) ]
  @@ fun () ->
  let best = ref None in
  List.iteri
    (fun cls_idx cls ->
      Trace.with_span ~name:"context.class"
        ~attrs:
          [ ("index", string_of_int cls_idx);
            ("dof", string_of_int cls.degree_of_freedom) ]
      @@ fun () ->
      (* Zones are independent once the class's availability is fixed;
         results are index-addressed, so the fan-out is deterministic. *)
      let per_zone =
        Par.parallel_init ~label:"context.zone_solve"
          (Array.length t.tables)
          (fun zi ->
            let table = t.tables.(zi) in
            Trace.with_span ~name:"context.zone_solve"
              ~attrs:[ ("zone", string_of_int zi) ]
            @@ fun () ->
            (* Zone_start/Zone_end bracket the solver's Label_row events
               on this domain — how `explain` attributes rows to zones. *)
            let flight = Flight.enabled () in
            let t0 = if flight then Obs_clock.now_ns () else 0L in
            if flight then
              Flight.record
                (Flight.Zone_start
                   { cls = cls_idx;
                     zone = zi;
                     sinks = Array.length table.Noise_table.sinks });
            let avail = zone_avail t cls.avail table in
            let choices, capped = zone_solver t table ~avail in
            let peak = Noise_table.zone_objective table ~choices in
            if flight then
              Flight.record
                (Flight.Zone_end
                   { cls = cls_idx;
                     zone = zi;
                     peak_ua = peak;
                     capped;
                     wall_ms =
                       Int64.to_float (Int64.sub (Obs_clock.now_ns ()) t0)
                       /. 1e6 });
            (choices, capped, peak))
      in
      let peak =
        Array.fold_left (fun acc (_, _, p) -> Float.max acc p) 0.0 per_zone
      in
      match !best with
      | Some (_, best_peak, _) when best_peak <= peak -> ()
      | Some _ | None -> best := Some (cls, peak, per_zone))
    t.classes;
  match !best with
  | None ->
    let effective_kappa =
      Float.max 1.0 (t.params.kappa -. t.params.sibling_guard)
    in
    Verrors.fail ~code:Verrors.Infeasible_window ~stage:"context.solve"
      ~hints:
        [ "widen the skew window (larger kappa) or reduce sibling_guard";
          "run `wavemin validate` for a per-sink feasibility breakdown" ]
      (Printf.sprintf
         "%s (effective kappa %.2f ps = kappa %.2f ps - sibling guard %.2f \
          ps)"
         (Intervals.infeasibility_message t.sinks ~kappa:effective_kappa)
         effective_kappa t.params.kappa t.params.sibling_guard)
  | Some (cls, peak, per_zone) ->
    let assignment =
      apply_choices t (Array.map (fun (c, _, _) -> c) per_zone)
    in
    let approximate =
      Array.exists (fun (_, capped, _) -> capped) per_zone
    in
    if approximate then
      Log.info (fun m ->
          m
            "winning interval class solved with a truncated label set; \
             the result is approximate beyond the epsilon guarantee");
    {
      assignment;
      interval = cls.interval;
      predicted_peak_ua = peak;
      zone_peaks = Array.map (fun (_, _, p) -> p) per_zone;
      approximate;
    }
