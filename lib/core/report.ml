module Tree = Repro_clocktree.Tree
module Tree_stats = Repro_clocktree.Tree_stats
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing

let buf_add = Buffer.add_string

let for_tree ?(params = Context.default_params) ~name tree ~algorithms =
  let b = Buffer.create 4096 in
  let env = Timing.nominal () in
  buf_add b (Printf.sprintf "# WaveMin report — %s\n\n" name);
  (* Tree section. *)
  let stats = Tree_stats.compute tree in
  buf_add b "## Clock tree\n\n";
  buf_add b
    (Printf.sprintf
       "- %d buffering nodes: %d leaves, %d internal (depth %d)\n"
       stats.Tree_stats.num_nodes stats.Tree_stats.num_leaves
       stats.Tree_stats.num_internal stats.Tree_stats.max_depth);
  buf_add b
    (Printf.sprintf "- wire: %.0f um (%.1f fF); sink load %.1f fF\n"
       stats.Tree_stats.total_wirelength stats.Tree_stats.total_wire_cap
       stats.Tree_stats.total_sink_cap);
  buf_add b
    (Printf.sprintf "- fanout: max %d, mean %.2f\n" stats.Tree_stats.max_fanout
       stats.Tree_stats.mean_fanout);
  let zones = Zones.partition tree ~side:params.Context.zone_side in
  buf_add b
    (Printf.sprintf "- zones (%.0f um): %d, mean %.1f leaves/zone\n\n"
       params.Context.zone_side (Zones.num_zones zones)
       (Zones.mean_leaves_per_zone zones));
  (* Parameters. *)
  buf_add b "## Parameters\n\n";
  buf_add b
    (Printf.sprintf
       "kappa = %.0f ps, |S| = %d, epsilon = %.3g, zone side = %.0f um\n\n"
       params.Context.kappa params.Context.num_slots params.Context.epsilon
       params.Context.zone_side);
  (* Results. *)
  buf_add b "## Results\n\n";
  buf_add b
    "| algorithm | peak (mA) | VDD (mV) | GND (mV) | skew (ps) | #inv | \
     power (uW) | peak/avg | time (s) |\n";
  buf_add b "|---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun algo ->
      let r = Flow.run_tree ~params ~name tree algo in
      let asg =
        (* Re-derive the assignment for the power columns. *)
        match algo with
        | Flow.Initial -> Assignment.default tree ~num_modes:1
        | Flow.Peakmin | Flow.Wavemin | Flow.Wavemin_fast | Flow.Sa ->
          let ctx = Context.create ~params ~env tree ~cells:(Flow.leaf_library ()) in
          (match algo with
          | Flow.Peakmin -> (Clk_peakmin.optimize ctx).Context.assignment
          | Flow.Wavemin -> (Clk_wavemin.optimize ctx).Context.assignment
          | Flow.Wavemin_fast -> (Clk_wavemin_f.optimize ctx).Context.assignment
          | Flow.Sa -> (Clk_sa.optimize ctx).Context.assignment
          | Flow.Initial -> assert false)
      in
      let p = Power.analyze tree asg env in
      buf_add b
        (Printf.sprintf "| %s | %.2f | %.2f | %.2f | %.2f | %d | %.1f | %.1f | %.3f |\n"
           (Flow.algorithm_name algo)
           r.Flow.metrics.Golden.peak_current_ma
           r.Flow.metrics.Golden.vdd_noise_mv
           r.Flow.metrics.Golden.gnd_noise_mv
           r.Flow.metrics.Golden.skew_ps r.Flow.num_leaf_inverters
           p.Power.avg_power_uw p.Power.peak_to_average r.Flow.elapsed_s))
    algorithms;
  buf_add b "\nMetrics from the golden evaluator (full PWL waveforms + power mesh).\n";
  Buffer.contents b

let for_benchmark ?params spec ~algorithms =
  let tree = Repro_cts.Benchmarks.synthesize spec in
  for_tree ?params ~name:spec.Repro_cts.Benchmarks.name tree ~algorithms
