(** Arrival-time candidates and feasible time intervals (Sec. IV-A,
    Fig. 6).

    For every sink (leaf buffering element) and every cell of the
    candidate library, the arrival time at the flip-flops is the leaf's
    input arrival plus the candidate's delay.  Every distinct arrival
    time [t] defines the interval [\[t - kappa, t\]]; an interval is
    {e feasible} when every sink has at least one candidate cell whose
    arrival lies inside it, in which case assigning only such cells
    keeps the clock skew within [kappa]. *)

module Tree := Repro_clocktree.Tree
module Cell := Repro_cell.Cell

type candidate = {
  cell : Cell.t;
  extra : float;
      (** Selected adjustable-delay step (ps); 0 for fixed cells.
          Adjustable cells contribute one candidate per delay step, so
          choosing a candidate fixes both the cell and its setting. *)
  arrival : float;  (** ps at the FFs when this candidate is assigned. *)
}

type sink = {
  leaf_id : Tree.node_id;
  candidates : candidate array;  (** One per library cell, in order. *)
}

val collect :
  Tree.t ->
  Repro_clocktree.Assignment.t ->
  Repro_clocktree.Timing.env ->
  Repro_clocktree.Timing.result ->
  cells:Cell.t list ->
  sink array
(** Candidate arrivals for every leaf, in leaf id order; adjustable
    cells are expanded over their delay steps. *)

val collect_per_leaf :
  Tree.t ->
  Repro_clocktree.Assignment.t ->
  Repro_clocktree.Timing.env ->
  Repro_clocktree.Timing.result ->
  cells_of:(Tree.node_id -> Cell.t list) ->
  sink array
(** Like {!collect} with a per-leaf candidate library — used by
    ClkWaveMin-M where ADB leaves may only swap to ADB/ADI while plain
    leaves use B and I (Fig. 13).
    @raise Invalid_argument if some leaf gets an empty library. *)

type interval = { lo : float; hi : float }
(** [\[hi - kappa, hi\]] with [lo = hi -. kappa]. *)

val feasible : sink array -> interval -> bool
(** Every sink has a candidate inside the interval. *)

val feasible_intervals :
  ?coalesce:float -> sink array -> kappa:float -> interval list
(** All feasible intervals defined by the (deduplicated) arrival times,
    sorted by [hi].  [coalesce] (default 0.25 ps) merges arrival times
    closer than that before interval generation, which bounds the
    interval count without affecting feasibility materially.
    @raise Invalid_argument if [kappa <= 0]. *)

type binding = {
  earliest_leaf : Tree.node_id;
      (** The sink whose candidates end earliest... *)
  earliest_ps : float;  (** ...its largest candidate arrival. *)
  latest_leaf : Tree.node_id;
      (** The sink whose candidates start latest... *)
  latest_ps : float;  (** ...its smallest candidate arrival. *)
}
(** The two sinks that bound any feasible window from both sides: no
    window may start after [earliest_ps] nor end before [latest_ps]. *)

val binding_sinks : sink array -> binding option
(** [None] when no sink has any candidate arrival. *)

val min_window_width : binding -> float
(** [latest_ps -. earliest_ps] — a lower bound on the width of any
    window covering every sink, hence on kappa.  May be negative when a
    zero-width window would already suffice. *)

val infeasibility_message : sink array -> kappa:float -> string
(** Human-readable diagnosis for an empty {!feasible_intervals} result:
    reports the two binding sinks (the one whose candidates end
    earliest and the one whose candidates start latest), the minimum
    window width any feasible interval must have, and — when that width
    exceeds [kappa] — by how much the skew bound must be raised. *)

val availability : sink array -> interval -> bool array array
(** [availability sinks iv] has one row per sink and one entry per
    candidate: [true] iff the candidate's arrival is inside [iv]. *)

val signature : bool array array -> string
(** Canonical key of an availability matrix — intervals with equal
    signatures admit exactly the same assignments and need solving only
    once. *)
