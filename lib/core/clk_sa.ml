module Cell = Repro_cell.Cell
module Assignment = Repro_clocktree.Assignment
module Verrors = Repro_util.Verrors
module Rng = Repro_util.Rng
module Flight = Repro_obs.Flight
module Obs_clock = Repro_obs.Clock
module Trace = Repro_obs.Trace
module Par = Repro_par.Par
module Anneal = Repro_sa.Anneal
module Eval = Repro_sa.Eval

type config = {
  seed : int;
  max_classes : int;
  anneal : Anneal.config;
}

let default_config =
  { seed = 1; max_classes = 4; anneal = Anneal.default_config }

let warm_config = { default_config with anneal = Anneal.quench_config }

type stats = {
  zones : int;
  proposed : int;
  accepted : int;
  rejected : int;
  flips : int;
  resizes : int;
  pairs : int;
  restarts : int;
}

let stats_of_anneal zones (a : Anneal.stats) =
  {
    zones;
    proposed = a.Anneal.proposed;
    accepted = a.Anneal.accepted;
    rejected = a.Anneal.rejected;
    flips = a.Anneal.flips;
    resizes = a.Anneal.resizes;
    pairs = a.Anneal.pairs;
    restarts = a.Anneal.restarts_done;
  }

let problem_of (table : Noise_table.t) ~avail =
  {
    Eval.rows = table.Noise_table.noise;
    base = table.Noise_table.nonleaf;
    avail;
  }

(* Move tags: the flip class is the cell polarity, the resize axis is
   drive strength refined by the adjustable-delay step, so a resize
   walks the size/delay ladder without changing polarity. *)
let tags_of (table : Noise_table.t) =
  Array.map
    (fun (sink : Intervals.sink) ->
      Array.map
        (fun (c : Intervals.candidate) ->
          {
            Anneal.group =
              (match Cell.polarity c.Intervals.cell with
              | Cell.Positive -> 0
              | Cell.Negative -> 1);
            size =
              (float_of_int c.Intervals.cell.Cell.drive *. 1e6)
              +. c.Intervals.extra;
          })
        sink.Intervals.candidates)
    table.Noise_table.sinks

let first_available ~stage (avail : bool array) =
  let rec find i =
    if i >= Array.length avail then
      invalid_arg (stage ^ ": sink without available candidate")
    else if avail.(i) then i
    else find (i + 1)
  in
  find 0

(* Cold start: every sink at its first admitted candidate (the library
   order is deterministic). *)
let cold_init (table : Noise_table.t) ~avail =
  ignore table;
  Array.map (first_available ~stage:"Clk_sa.cold_init") avail

(* Warm start: map the previous assignment of each sink back to a
   candidate index.  The exact (cell, extra) pair may not be admitted
   by this interval class; prefer an exact match, then the same cell at
   the nearest extra-delay step, then the first available candidate. *)
let warm_init (ctx : Context.t) (table : Noise_table.t) ~avail ~previous =
  Array.mapi
    (fun zi (sink : Intervals.sink) ->
      let prev_cell = Assignment.cell previous sink.Intervals.leaf_id in
      let prev_extra =
        if Cell.is_adjustable prev_cell then
          Assignment.extra_delay previous ~mode:ctx.Context.env.Repro_clocktree.Timing.mode
            sink.Intervals.leaf_id
        else 0.0
      in
      let best = ref (-1) and best_gap = ref infinity in
      Array.iteri
        (fun ci (c : Intervals.candidate) ->
          if avail.(zi).(ci) && Cell.equal c.Intervals.cell prev_cell then begin
            let gap = Float.abs (c.Intervals.extra -. prev_extra) in
            if gap < !best_gap then begin
              best := ci;
              best_gap := gap
            end
          end)
        sink.Intervals.candidates;
      if !best >= 0 then !best
      else first_available ~stage:"Clk_sa.warm_init" avail.(zi))
    table.Noise_table.sinks

let infeasible (ctx : Context.t) =
  let p = ctx.Context.params in
  let effective_kappa =
    Float.max 1.0 (p.Context.kappa -. p.Context.sibling_guard)
  in
  Verrors.fail ~code:Verrors.Infeasible_window ~stage:"clk_sa.optimize"
    ~hints:
      [ "widen the skew window (larger kappa) or reduce sibling_guard";
        "run `wavemin validate` for a per-sink feasibility breakdown" ]
    (Printf.sprintf
       "%s (effective kappa %.2f ps = kappa %.2f ps - sibling guard %.2f ps)"
       (Intervals.infeasibility_message ctx.Context.sinks
          ~kappa:effective_kappa)
       effective_kappa p.Context.kappa p.Context.sibling_guard)

let optimize_stats ?(config = default_config) ?warm (ctx : Context.t) =
  Trace.with_span ~name:"clk_sa.optimize" @@ fun () ->
  let classes =
    List.filteri (fun i _ -> i < config.max_classes) ctx.Context.classes
  in
  if classes = [] then infeasible ctx;
  let nzones = Array.length ctx.Context.tables in
  let best = ref None in
  let total_stats = ref Anneal.zero_stats in
  let total_zones = ref 0 in
  List.iteri
    (fun cls_idx (cls : Context.interval_class) ->
      Trace.with_span ~name:"clk_sa.class"
        ~attrs:
          [ ("index", string_of_int cls_idx);
            ("dof", string_of_int cls.Context.degree_of_freedom) ]
      @@ fun () ->
      (* One Rng.of_instance stream per (class, zone): bit-identical
         randomness no matter how zones are chunked across domains. *)
      let per_zone =
        Par.parallel_init ~label:"clk_sa.zone_solve" nzones (fun zi ->
            let table = ctx.Context.tables.(zi) in
            let flight = Flight.enabled () in
            let t0 = if flight then Obs_clock.now_ns () else 0L in
            if flight then
              Flight.record
                (Flight.Zone_start
                   { cls = cls_idx;
                     zone = zi;
                     sinks = Array.length table.Noise_table.sinks });
            let avail = Context.zone_avail ctx cls.Context.avail table in
            let init =
              match warm with
              | Some previous -> warm_init ctx table ~avail ~previous
              | None -> cold_init table ~avail
            in
            let rng =
              Rng.of_instance ~seed:config.seed ((cls_idx * nzones) + zi)
            in
            let choices, _obj, stats =
              Anneal.solve ~zone:zi ~config:config.anneal
                (problem_of table ~avail)
                ~tags:(tags_of table) ~init ~rng
            in
            (* Class selection uses the exact table objective, the same
               yardstick every other solver is measured by. *)
            let peak = Noise_table.zone_objective table ~choices in
            if flight then
              Flight.record
                (Flight.Zone_end
                   { cls = cls_idx;
                     zone = zi;
                     peak_ua = peak;
                     capped = false;
                     wall_ms =
                       Int64.to_float (Int64.sub (Obs_clock.now_ns ()) t0)
                       /. 1e6 });
            (choices, peak, stats))
      in
      (* Sequential, index-ordered reduction: deterministic at any job
         count. *)
      Array.iter
        (fun (_, _, s) ->
          total_stats := Anneal.add_stats !total_stats s;
          incr total_zones)
        per_zone;
      let peak =
        Array.fold_left (fun acc (_, p, _) -> Float.max acc p) 0.0 per_zone
      in
      match !best with
      | Some (_, best_peak, _) when best_peak <= peak -> ()
      | Some _ | None -> best := Some (cls, peak, per_zone))
    classes;
  match !best with
  | None -> assert false (* classes <> [] *)
  | Some (cls, peak, per_zone) ->
    let assignment =
      Context.apply_choices ctx (Array.map (fun (c, _, _) -> c) per_zone)
    in
    ( {
        Context.assignment;
        interval = cls.Context.interval;
        predicted_peak_ua = peak;
        zone_peaks = Array.map (fun (_, p, _) -> p) per_zone;
        approximate = false;
      },
      stats_of_anneal !total_zones !total_stats )

let optimize ctx = fst (optimize_stats ctx)
