(** ClkPeakMin — the baseline of Jang, Joo & Kim [27] (TCAD 2011).

    The best previously known polarity assignment with sizing: per
    feasible interval it minimizes

    {v max ( sum over positive-polarity sinks of peak(cell),
          sum over negative-polarity sinks of peak(cell) ) v}

    where [peak] is the cell's characterized scalar peak current — i.e.
    it balances the two rails using only per-cell peaks, ignoring the
    arrival-time differences of the sinks and the non-leaf current
    (the limitations WaveMin removes).  The inner problem is the
    Knapsack-style balancing of [27], solved here by pseudo-polynomial
    dynamic programming over a discretized positive-rail sum. *)

val buckets : int
(** Resolution of the DP discretization (512). *)

val zone_solver :
  Context.t -> Noise_table.t -> avail:bool array array -> int array * bool
(** Balance one zone: candidate index per zone sink.  The second
    component is always [false] (the DP is exhaustive over its
    discretization); it exists so all zone solvers share one signature.
    @raise Invalid_argument if some sink has no available candidate. *)

val zone_balance_objective : Noise_table.t -> choices:int array -> float
(** The baseline's own objective value (uA) for a choice vector —
    max(positive-rail sum, negative-rail sum) of scalar peaks. *)

val optimize : Context.t -> Context.outcome
(** Full ClkPeakMin over all zones and interval classes.  Class selection
    uses the baseline's own objective, faithfully reproducing its
    blindness to waveform timing; the reported [predicted_peak_ua] is
    nevertheless measured with the fine-grained zone estimate so that
    outcomes are comparable.
    @raise Failure when the skew bound admits no feasible interval. *)
