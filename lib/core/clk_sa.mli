(** ClkSA: simulated-annealing polarity/size assignment.

    The portfolio's stochastic member: where ClkWaveMin solves each zone
    exactly over MOSP labels, ClkSA explores the same per-zone candidate
    space with the {!Repro_sa} annealer — flip-polarity, resize and
    paired moves over the precomputed noise-table rows, evaluated
    incrementally.  Despite the stochastic search the solver is
    bit-deterministic for a fixed seed at any [--jobs]: each (class,
    zone) task draws from its own O(1) {!Repro_util.Rng.of_instance}
    stream and anneals sequentially, and the class/zone reduction is
    index-addressed.

    Like ClkPeakMin it runs its own class loop (the annealer's cost
    scales with classes, so only the top [max_classes] DoF-ranked
    classes are explored) and reports [approximate = false]: the result
    is a feasible assignment whose quality is whatever the anneal
    found, not an epsilon-bounded approximation. *)

module Assignment := Repro_clocktree.Assignment

type config = {
  seed : int;  (** Stream seed; fixed seed => bit-identical results. *)
  max_classes : int;  (** DoF-ranked interval classes explored. *)
  anneal : Repro_sa.Anneal.config;
}

val default_config : config
(** seed 1, 4 classes, {!Repro_sa.Anneal.default_config}. *)

val warm_config : config
(** {!default_config} with {!Repro_sa.Anneal.quench_config}: the
    low-temperature polish used when annealing from a cached
    assignment. *)

type stats = {
  zones : int;  (** (class, zone) anneals run. *)
  proposed : int;
  accepted : int;
  rejected : int;
  flips : int;
  resizes : int;
  pairs : int;
  restarts : int;
}

val optimize : Context.t -> Context.outcome
(** Anneal with {!default_config} — the standard solver signature used
    by {!Flow}. *)

val optimize_stats :
  ?config:config -> ?warm:Assignment.t -> Context.t -> Context.outcome * stats
(** Like {!optimize} with explicit configuration and aggregated move
    counters.  [warm] seeds every zone from a previous assignment
    (candidates matched by cell and extra-delay setting; sinks whose
    previous cell is not admitted by the interval class fall back to
    the first available candidate) — pass {!warm_config} alongside for
    the quench schedule.
    @raise Repro_util.Verrors.Error with code [Infeasible_window] when
    no feasible interval class exists, or [Budget_exhausted] /
    [Deadline_exceeded] when the ambient budget trips. *)
