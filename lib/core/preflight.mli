(** End-to-end input validation with exhaustive diagnostics.

    Every checker walks its whole input and returns {e all} violations
    as structured {!Repro_util.Verrors.t} values instead of stopping at
    the first — unlike the constructors ({!Repro_clocktree.Tree.create},
    {!Repro_cell.Cell.make}), which raise on the first invariant they
    see.  A run that preflights cleanly cannot fail on malformed input
    later; the remaining failure modes (infeasible windows under a
    too-narrow kappa, label caps, budgets) are diagnosed here too, so
    `wavemin validate` can tell a user {e why} a run would degrade
    before spending solver time.

    The checkers never raise: internal errors are captured via
    {!Repro_util.Verrors.guard} and reported as diagnostics. *)

module Tree := Repro_clocktree.Tree
module Timing := Repro_clocktree.Timing
module Cell := Repro_cell.Cell

val check_nodes : Tree.node array -> Repro_util.Verrors.t list
(** Structural validation of a {e raw} node array, before
    {!Tree.create}: id/index agreement, dangling or self-referential
    parents, parent/children consistency, exactly one root, every node
    reachable from it, leaves childless with positive sink capacitance,
    internals with children and zero sink capacitance, finite
    coordinates and non-negative wire RC.  Code [Invalid_tree]. *)

val check_tree : Tree.t -> Repro_util.Verrors.t list
(** Physical sanity of an already-validated tree (the structural
    invariants being guaranteed by {!Tree.create}): finite coordinates,
    non-negative wire RC.  Code [Invalid_tree]. *)

val check_library : Cell.t list -> Repro_util.Verrors.t list
(** Cell-library validation: non-empty, no two distinct cells sharing a
    name, and both polarities present (polarity assignment is vacuous
    otherwise).  Code [Invalid_library]. *)

val check_params : Context.params -> Repro_util.Verrors.t list
(** Solver-parameter validation: positive kappa, zone side and slot
    count, non-negative epsilon, coalescing and sibling guard, label and
    interval-class caps of at least 1, and a sibling guard strictly
    below kappa (the effective window clamps to 1 ps otherwise).  Code
    [Invalid_params]. *)

val check_modes : Timing.env array -> Repro_util.Verrors.t list
(** Power-mode validation for multi-mode runs: at least one mode, every
    [env.mode] equal to its array index (which also rules out duplicate
    mode ids), positive source slews.  Code [Invalid_modes]. *)

val check_feasibility :
  ?params:Context.params -> Tree.t -> cells:Cell.t list ->
  Repro_util.Verrors.t list
(** The expensive end: zone partitioning must yield at least one zone
    ([Empty_zones]) and the skew window must admit at least one feasible
    interval — reported with {!Intervals.infeasibility_message}'s
    binding-sink diagnosis ([Infeasible_window]).  Runs a nominal timing
    analysis; a few ms on the paper's benchmarks. *)

val check :
  ?params:Context.params ->
  ?envs:Timing.env array ->
  Tree.t ->
  cells:Cell.t list ->
  Repro_util.Verrors.t list
(** Everything: {!check_tree}, {!check_library}, {!check_params},
    {!check_modes} (when [envs] is given), then — only when those are
    all clean, since it evaluates the inputs — {!check_feasibility}.
    An empty result means the run cannot fail on input validation. *)

val result : Repro_util.Verrors.t list -> (unit, Repro_util.Verrors.t list) result
(** [Ok ()] on no diagnostics, [Error ds] otherwise — for callers that
    want to chain validation monadically. *)

val to_string : Repro_util.Verrors.t list -> string
(** All diagnostics rendered one per line (with hints), or
    ["preflight: ok"] for the empty list. *)
