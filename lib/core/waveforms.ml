module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Pwl = Repro_waveform.Pwl
module Obs_metrics = Repro_obs.Metrics
module Trace = Repro_obs.Trace

let node_pulses_c = Obs_metrics.counter "waveforms.node_pulses"
let candidate_pulses_c = Obs_metrics.counter "waveforms.candidate_pulses"
let cache_hits_c = Obs_metrics.counter "waveforms.cache_hits"
let cache_misses_c = Obs_metrics.counter "waveforms.cache_misses"

let shift_currents (c : Electrical.currents) dt =
  { Electrical.idd = Pwl.shift c.Electrical.idd dt;
    iss = Pwl.shift c.Electrical.iss dt }

let node_currents tree asg env timing id =
  Obs_metrics.incr node_pulses_c;
  let nd = Tree.node tree id in
  let cell = Assignment.cell asg id in
  let currents =
    Electrical.event_currents cell ~vdd:(env.Timing.vdd_of nd)
      ~load:timing.Timing.load.(id)
      ~input_slew:timing.Timing.input_slew.(id)
      ~edge:timing.Timing.input_edge.(id) ()
  in
  shift_currents currents timing.Timing.input_arrival.(id)

let candidate_currents tree env timing id cell =
  Obs_metrics.incr candidate_pulses_c;
  let nd = Tree.node tree id in
  (match nd.Tree.kind with
  | Tree.Leaf -> ()
  | Tree.Internal -> invalid_arg "Waveforms.candidate_currents: not a leaf");
  let currents =
    Electrical.event_currents cell ~vdd:(env.Timing.vdd_of nd)
      ~load:nd.Tree.sink_cap
      ~input_slew:timing.Timing.input_slew.(id)
      ~edge:timing.Timing.input_edge.(id) ()
  in
  shift_currents currents timing.Timing.input_arrival.(id)

let total_rail_currents tree asg env timing ?node_ids () =
  let ids =
    match node_ids with
    | Some ids -> ids
    | None -> Array.map (fun nd -> nd.Tree.id) (Tree.nodes tree)
  in
  let currents = Array.map (node_currents tree asg env timing) ids in
  {
    Electrical.idd =
      Pwl.sum (Array.to_list (Array.map (fun c -> c.Electrical.idd) currents));
    iss =
      Pwl.sum (Array.to_list (Array.map (fun c -> c.Electrical.iss) currents));
  }

let period_rail_currents tree asg env ?node_ids ~period () =
  if period <= 0.0 then
    invalid_arg "Waveforms.period_rail_currents: period <= 0";
  let num_nodes =
    match node_ids with
    | Some ids -> Array.length ids
    | None -> Array.length (Tree.nodes tree)
  in
  Trace.with_span ~name:"waveforms.period_rail_currents"
    ~attrs:[ ("nodes", string_of_int num_nodes) ]
  @@ fun () ->
  let rising = Timing.analyze tree asg env ~edge:Electrical.Rising in
  let falling = Timing.analyze tree asg env ~edge:Electrical.Falling in
  let r = total_rail_currents tree asg env rising ?node_ids () in
  let f = total_rail_currents tree asg env falling ?node_ids () in
  {
    Electrical.idd =
      Pwl.add r.Electrical.idd (Pwl.shift f.Electrical.idd (period /. 2.0));
    iss = Pwl.add r.Electrical.iss (Pwl.shift f.Electrical.iss (period /. 2.0));
  }

(* Memo of sampled candidate pulse pairs, keyed by (leaf, cell).  A
   leaf's adjustable-cell candidates differ only in their delay step, so
   the unshifted pulse pair is shared by every step; callers that never
   materialize the shifted pulses (see Noise_table.build) then pay the
   characterization cost once per (sink, polarity, size).  Entries pin
   the physical cell so that two distinct cells sharing a name can never
   alias; the compute path is pure, so a racing double-compute stores a
   bit-identical value either way. *)
type cache = {
  cache_mutex : Mutex.t;
  table :
    ( int * string,
      (Cell.t * (Electrical.currents * Electrical.currents)) list )
    Hashtbl.t;
}

let create_cache () = { cache_mutex = Mutex.create (); table = Hashtbl.create 256 }

let candidate_period_currents ?cache tree env ~rising ~falling id cell ~period =
  if period <= 0.0 then
    invalid_arg "Waveforms.candidate_period_currents: period <= 0";
  Repro_obs.Fault.trip Repro_obs.Fault.Waveform_cache
    ~site:"waveforms.candidate_period_currents";
  let compute () =
    let r = candidate_currents tree env rising id cell in
    let f = candidate_currents tree env falling id cell in
    (r, shift_currents f (period /. 2.0))
  in
  match cache with
  | None -> compute ()
  | Some c -> (
    let key = (id, cell.Cell.name) in
    Mutex.lock c.cache_mutex;
    let hit =
      match Hashtbl.find_opt c.table key with
      | Some entries -> List.find_opt (fun (cl, _) -> cl == cell) entries
      | None -> None
    in
    Mutex.unlock c.cache_mutex;
    match hit with
    | Some (_, pair) ->
      Obs_metrics.incr cache_hits_c;
      pair
    | None ->
      Obs_metrics.incr cache_misses_c;
      let pair = compute () in
      Mutex.lock c.cache_mutex;
      let entries =
        Option.value ~default:[] (Hashtbl.find_opt c.table key)
      in
      Hashtbl.replace c.table key ((cell, pair) :: entries);
      Mutex.unlock c.cache_mutex;
      pair)
