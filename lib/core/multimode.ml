module Verrors = Repro_util.Verrors
module Tree = Repro_clocktree.Tree
module Assignment = Repro_clocktree.Assignment
module Timing = Repro_clocktree.Timing
module Cell = Repro_cell.Cell
module Electrical = Repro_cell.Electrical
module Layered = Repro_mosp.Layered
module Warburton = Repro_mosp.Warburton
module Trace = Repro_obs.Trace
module Par = Repro_par.Par

type mode = {
  env : Timing.env;
  timing : Timing.result;
  sinks : Intervals.sink array;
  tables : Noise_table.t array;
}

type intersection = {
  intervals : Intervals.interval array;
  cell_avail : bool array array;
  chosen_candidate : int array array array;
  degree_of_freedom : int;
}

type t = {
  tree : Tree.t;
  base : Assignment.t;
  params : Context.params;
  cell_universe : Cell.t array;
  sink_cells : bool array array;
  zones : Zones.t;
  modes : mode array;
  intersections : intersection list;
}

(* Per mode and interval: which universe cells are admitted per sink, and
   via which (minimal-arrival) candidate. *)
let mode_cell_admission universe (sinks : Intervals.sink array) interval =
  let num_cells = Array.length universe in
  let admit = Array.make_matrix (Array.length sinks) num_cells false in
  let via =
    Array.init (Array.length sinks) (fun _ -> Array.make num_cells (-1))
  in
  Array.iteri
    (fun row (s : Intervals.sink) ->
      Array.iteri
        (fun ci (c : Intervals.candidate) ->
          if
            c.Intervals.arrival >= interval.Intervals.lo -. 1e-9
            && c.Intervals.arrival <= interval.Intervals.hi +. 1e-9
          then begin
            match
              Array.to_list universe
              |> List.mapi (fun k cell -> (k, cell))
              |> List.find_opt (fun (_, cell) -> Cell.equal cell c.Intervals.cell)
            with
            | None -> ()
            | Some (k, _) ->
              if
                via.(row).(k) < 0
                || s.Intervals.candidates.(via.(row).(k)).Intervals.arrival
                   > c.Intervals.arrival
              then via.(row).(k) <- ci;
              admit.(row).(k) <- true
          end)
        s.Intervals.candidates)
    sinks;
  (admit, via)

let signature_of admit =
  let buf = Buffer.create 128 in
  Array.iter
    (fun row ->
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) row;
      Buffer.add_char buf '|')
    admit;
  Buffer.contents buf

let dof admit =
  Array.fold_left
    (fun acc row ->
      acc + Array.fold_left (fun a b -> if b then a + 1 else a) 0 row)
    0 admit

let per_mode_interval_cap = 10

let create ?(params = Context.default_params) ?cells_of tree ~base ~envs ~cells =
  if Array.length envs = 0 then invalid_arg "Multimode.create: no modes";
  if Array.length envs <> Assignment.num_modes base then
    invalid_arg "Multimode.create: envs/assignment mode count mismatch";
  if cells = [] then invalid_arg "Multimode.create: empty cell library";
  let cells_of =
    match cells_of with Some f -> f | None -> fun _ -> cells
  in
  (* The cell universe is the union of the per-leaf libraries. *)
  let leaves = Tree.leaves tree in
  let universe = ref [] in
  Array.iter
    (fun nd ->
      List.iter
        (fun c ->
          if not (List.exists (Cell.equal c) !universe) then
            universe := c :: !universe)
        (cells_of nd.Tree.id))
    leaves;
  let cell_universe = Array.of_list (List.rev !universe) in
  let sink_cells =
    Array.map
      (fun nd ->
        let lib = cells_of nd.Tree.id in
        Array.map (fun cell -> List.exists (Cell.equal cell) lib) cell_universe)
      leaves
  in
  let zones = Zones.partition tree ~side:params.Context.zone_side in
  (* Power modes are independent until intersection time, so their
     timing analyses and noise tables build concurrently; results are
     index-addressed per mode. *)
  let modes =
    Par.parallel_map ~label:"multimode.modes"
      (fun (m, env) ->
        if env.Timing.mode <> m then
          invalid_arg "Multimode.create: env.mode must equal its index";
        let timing = Timing.analyze tree base env ~edge:Electrical.Rising in
        let falling = Timing.analyze tree base env ~edge:Electrical.Falling in
        let sinks = Intervals.collect_per_leaf tree base env timing ~cells_of in
        let num_leaves = Array.length leaves in
        let internal_ids =
          Array.map (fun nd -> nd.Tree.id) (Tree.internals tree)
        in
        let global_internal =
          if Array.length internal_ids = 0 then
            { Electrical.idd = Repro_waveform.Pwl.zero;
              iss = Repro_waveform.Pwl.zero }
          else
            Waveforms.period_rail_currents tree base env ~node_ids:internal_ids
              ~period:Noise_table.default_period ()
        in
        let cache = Waveforms.create_cache () in
        let tables =
          Array.map
            (fun zone ->
              let share =
                float_of_int (Array.length zone.Zones.leaf_ids)
                /. float_of_int (max 1 num_leaves)
              in
              Noise_table.build tree base env ~rising:timing ~falling ~sinks
                ~zone ~num_slots:params.Context.num_slots
                ~background:(global_internal, share) ~cache ())
            (Zones.zones zones)
        in
        { env; timing; sinks; tables })
      (Array.mapi (fun m env -> (m, env)) envs)
  in
  (* Per-mode feasible intervals, deduplicated at the cell level and
     capped by DoF. *)
  let per_mode_intervals =
    Array.map
      (fun md ->
        let effective_kappa =
          Float.max 1.0
            (params.Context.kappa -. params.Context.sibling_guard)
        in
        let ivs =
          Intervals.feasible_intervals ~coalesce:params.Context.coalesce
            md.sinks ~kappa:effective_kappa
        in
        let seen = Hashtbl.create 16 in
        let described =
          List.filter_map
            (fun iv ->
              let admit, via = mode_cell_admission cell_universe md.sinks iv in
              let key = signature_of admit in
              if Hashtbl.mem seen key then None
              else begin
                Hashtbl.add seen key ();
                Some (iv, admit, via, dof admit)
              end)
            ivs
        in
        let described =
          List.sort (fun (_, _, _, a) (_, _, _, b) -> Int.compare b a) described
        in
        List.filteri (fun i _ -> i < per_mode_interval_cap) described)
      modes
  in
  (* Cartesian product of per-mode intervals -> feasible intersections.
     The per-mode lists are DoF-capped, so additionally force in, per
     mode, the TRIVIAL window anchored at the maximum base-assignment
     arrival: the combo of trivial windows always admits keeping every
     sink's current cell (the paper's guaranteed solution after ADB
     embedding), so it must never be pruned away. *)
  let num_rows = Array.length leaves in
  let num_cells = Array.length cell_universe in
  let trivial_described =
    Array.mapi
      (fun m md ->
        let hi =
          Array.fold_left
            (fun acc (s : Intervals.sink) ->
              let base_cell = Assignment.cell base s.Intervals.leaf_id in
              let extra =
                Assignment.extra_delay base ~mode:m s.Intervals.leaf_id
              in
              let arrival =
                Array.fold_left
                  (fun best (c : Intervals.candidate) ->
                    if
                      Cell.equal c.Intervals.cell base_cell
                      && Float.abs (c.Intervals.extra -. extra) < 1e-9
                    then c.Intervals.arrival
                    else best)
                  nan s.Intervals.candidates
              in
              if Float.is_nan arrival then acc else Float.max acc arrival)
            neg_infinity md.sinks
        in
        let effective_kappa =
          Float.max 1.0 (params.Context.kappa -. params.Context.sibling_guard)
        in
        let iv = { Intervals.lo = hi -. effective_kappa; hi } in
        let admit, via = mode_cell_admission cell_universe md.sinks iv in
        (iv, admit, via, dof admit))
      modes
  in
  let per_mode_intervals =
    Array.mapi
      (fun m described -> trivial_described.(m) :: described)
      per_mode_intervals
  in
  let rec product = function
    | [] -> [ [] ]
    | choices :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices
  in
  let combos = product (Array.to_list per_mode_intervals) in
  let seen = Hashtbl.create 64 in
  let intersections =
    List.filter_map
      (fun combo ->
        let combo = Array.of_list combo in
        let cell_avail =
          Array.init num_rows (fun row ->
              Array.init num_cells (fun k ->
                  sink_cells.(row).(k)
                  && Array.for_all
                       (fun (_, admit, _, _) -> admit.(row).(k))
                       combo))
        in
        let ok =
          Array.for_all (fun row -> Array.exists (fun b -> b) row) cell_avail
        in
        if not ok then None
        else begin
          let key = signature_of cell_avail in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            let chosen_candidate =
              Array.map (fun (_, _, via, _) -> via) combo
            in
            Some
              {
                intervals = Array.map (fun (iv, _, _, _) -> iv) combo;
                cell_avail;
                chosen_candidate;
                degree_of_freedom = dof cell_avail;
              }
          end
        end)
      combos
  in
  let intersections =
    List.sort
      (fun a b -> Int.compare b.degree_of_freedom a.degree_of_freedom)
      intersections
  in
  let intersections =
    List.filteri
      (fun i _ -> i < params.Context.max_interval_classes)
      intersections
  in
  { tree; base; params; cell_universe; sink_cells; zones; modes; intersections }

let feasible t = t.intersections <> []

type outcome = {
  assignment : Assignment.t;
  intersection : intersection;
  predicted_peak_ua : float;
  zone_peaks : float array;
  approximate : bool;
}

(* Solve one zone under one intersection: returns (universe cell index per
   zone sink, zone peak estimate). *)
let solve_zone t inter zi =
  let table0 = t.modes.(0).tables.(zi) in
  let rows = table0.Noise_table.sink_rows in
  let num_modes = Array.length t.modes in
  let admitted_cells =
    Array.map
      (fun row ->
        let cells = ref [] in
        Array.iteri
          (fun k ok -> if ok then cells := k :: !cells)
          inter.cell_avail.(row);
        Array.of_list (List.rev !cells))
      rows
  in
  let weight_of zrow row k =
    Array.concat
      (Array.to_list
         (Array.init num_modes (fun m ->
              let ci = inter.chosen_candidate.(m).(row).(k) in
              assert (ci >= 0);
              t.modes.(m).tables.(zi).Noise_table.noise.(zrow).(ci))))
  in
  let options =
    Array.mapi
      (fun zrow row ->
        Array.map (fun k -> weight_of zrow row k) admitted_cells.(zrow))
      rows
  in
  let dest_weight =
    Array.concat
      (Array.to_list
         (Array.init num_modes (fun m ->
              t.modes.(m).tables.(zi).Noise_table.nonleaf)))
  in
  let graph = Layered.create ~options ~dest_weight in
  let solution =
    Warburton.solve_min_max ~epsilon:t.params.Context.epsilon
      ~max_labels:t.params.Context.max_labels graph
  in
  let cells_chosen =
    Array.mapi
      (fun zrow opt -> admitted_cells.(zrow).(opt))
      solution.Warburton.choices
  in
  (cells_chosen, solution.Warburton.objective, solution.Warburton.capped)

let apply t inter per_zone_cells =
  let asg = ref t.base in
  Array.iteri
    (fun zi cells_chosen ->
      let table0 = t.modes.(0).tables.(zi) in
      Array.iteri
        (fun zrow k ->
          let row = table0.Noise_table.sink_rows.(zrow) in
          let leaf = t.modes.(0).sinks.(row).Intervals.leaf_id in
          let cell = t.cell_universe.(k) in
          asg := Assignment.set_cell !asg leaf cell;
          if Cell.is_adjustable cell then
            Array.iteri
              (fun m _ ->
                let ci = inter.chosen_candidate.(m).(row).(k) in
                let cand = t.modes.(m).sinks.(row).Intervals.candidates.(ci) in
                asg :=
                  Assignment.set_extra_delay !asg ~mode:m leaf
                    cand.Intervals.extra)
              t.modes)
        cells_chosen)
    per_zone_cells;
  !asg

let solve_intersection t inter =
  Trace.with_span ~name:"multimode.intersection"
    ~attrs:[ ("dof", string_of_int inter.degree_of_freedom) ]
  @@ fun () ->
  let num_zones = Zones.num_zones t.zones in
  let per_zone =
    Par.parallel_init ~label:"multimode.zone_solve" num_zones (fun zi ->
        solve_zone t inter zi)
  in
  let peak =
    Array.fold_left (fun acc (_, p, _) -> Float.max acc p) 0.0 per_zone
  in
  (per_zone, peak)

let solve t =
  Trace.with_span ~name:"multimode.solve"
    ~attrs:[ ("intersections", string_of_int (List.length t.intersections)) ]
  @@ fun () ->
  let best = ref None in
  List.iter
    (fun inter ->
      let per_zone, peak = solve_intersection t inter in
      match !best with
      | Some (_, _, best_peak) when best_peak <= peak -> ()
      | Some _ | None -> best := Some (inter, per_zone, peak))
    t.intersections;
  match !best with
  | None ->
    let p = t.params in
    let effective_kappa =
      Float.max 1.0 (p.Context.kappa -. p.Context.sibling_guard)
    in
    (* Pinpoint whether some mode is infeasible on its own, or every
       mode is fine alone and only the cross-mode cell admission
       (Table IV) is empty. *)
    let per_mode =
      Array.to_list t.modes
      |> List.mapi (fun m md ->
             match
               Intervals.feasible_intervals ~coalesce:p.Context.coalesce
                 md.sinks ~kappa:effective_kappa
             with
             | [] ->
               Printf.sprintf "mode %d: %s" m
                 (Intervals.infeasibility_message md.sinks
                    ~kappa:effective_kappa)
             | ivs ->
               Printf.sprintf
                 "mode %d: %d feasible interval(s) on its own" m
                 (List.length ivs))
      |> String.concat "; "
    in
    Verrors.fail ~code:Verrors.Infeasible_window ~stage:"multimode.solve"
      ~hints:
        [ "widen the skew window (larger kappa) or reduce sibling_guard";
          "drop or relax the mode that is infeasible on its own" ]
      (Printf.sprintf
         "no feasible intersection across %d mode(s): no cell admits every \
          sink in every mode (effective kappa %.2f ps = kappa %.2f ps - \
          sibling guard %.2f ps); %s"
         (Array.length t.modes) effective_kappa p.Context.kappa
         p.Context.sibling_guard per_mode)
  | Some (inter, per_zone, peak) ->
    {
      assignment = apply t inter (Array.map (fun (c, _, _) -> c) per_zone);
      intersection = inter;
      predicted_peak_ua = peak;
      zone_peaks = Array.map (fun (_, p, _) -> p) per_zone;
      approximate = Array.exists (fun (_, _, capped) -> capped) per_zone;
    }

let degree_of_freedom_table t =
  List.map
    (fun inter ->
      let _, peak = solve_intersection t inter in
      (inter.degree_of_freedom, peak))
    t.intersections
