(** Process-wide metrics registry: named counters, gauges and log-scale
    histograms.

    Instruments are registered once by name ([counter], [gauge] and
    [histogram] get-or-create) and are cheap to update from hot paths —
    a handle is a direct pointer into the registry, so updating never
    hashes.  [reset] zeroes every instrument but keeps it registered, so
    handles held at module top level stay valid across runs.

    Instruments are domain-safe: counters are atomic, gauges and
    histograms update under a per-instrument mutex, so hot kernels may
    bump them from pool workers ({!Repro_par}) without corruption.

    The registry observes; it never influences.  Nothing in the
    optimization pipeline may read a metric back to make a decision —
    that invariant is what makes traced and untraced runs bit-identical
    (see [test/test_obs.ml]). *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create the named counter.
    @raise Invalid_argument if the name exists with another kind. *)

val gauge : string -> gauge
(** Get or create the named gauge.
    @raise Invalid_argument if the name exists with another kind. *)

val histogram : string -> histogram
(** Get or create the named log-scale histogram (power-of-two buckets).
    @raise Invalid_argument if the name exists with another kind. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to a counter.  Negative [by] is rejected. *)

val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one sample.  Non-finite samples are counted but excluded from
    the bucket/extrema accounting. *)

type histogram_stats = {
  count : int;
  sum : float;
  mean : float;  (** 0 when empty. *)
  min : float;  (** +inf when empty. *)
  max : float;  (** -inf when empty. *)
  buckets : (float * int) list;
      (** (upper bound, samples <= bound in this bucket), power-of-two
          bounds, ascending; samples <= 0 land in the 0 bucket. *)
}

val histogram_stats : histogram -> histogram_stats

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0, 1]: the bucket upper bound at which
    the cumulative count reaches [q * count] — a log-scale
    approximation, exact to within one power of two.  0 when empty. *)

val names : unit -> string list
(** All registered instrument names, sorted. *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_stats

val snapshot : unit -> (string * value) list
(** Immutable copy of every instrument's current state, sorted by name —
    the form embedded into run reports ({!Repro_obs.Report}). *)

val histogram_stats_fields :
  histogram_stats -> (string * Repro_util.Json.t) list
(** The canonical JSON fields for a histogram snapshot
    ([count]/[sum]/[mean]/[min]/[max]/[buckets]), shared by {!to_json},
    {!Repro_obs.Report} and the server's stats responses.  Non-finite
    extrema (the no-finite-sample sentinels) are omitted and sum/mean
    clamped to 0 in that case, so the result always serializes to
    finite, round-trippable JSON. *)

val to_json : unit -> Repro_util.Json.t
(** {!snapshot} as a JSON array of
    [{"name", "kind", ...kind-specific fields}] objects.  Non-finite
    histogram extrema (the empty-histogram sentinels) are omitted. *)

val dump_json : unit -> string
(** {!to_json} rendered pretty-printed — the [--json] counterpart of
    {!dump}. *)

val reset : unit -> unit
(** Zero every instrument; registrations (and handles) survive. *)

val dump : unit -> string
(** Render a snapshot of every instrument as an aligned text table
    (via {!Repro_util.Table}), sorted by name. *)
