(* Periodic process-runtime sampler: GC accounting, resident-set size
   and caller-supplied gauges (queue depth, pool busy fractions)
   recorded into the metrics registry, so a scrape of the live daemon
   sees the process health next to the request telemetry.

   RSS comes from /proc/self/statm (resident pages) and the peak from
   the VmHWM line of /proc/self/status; on systems without procfs both
   gauges are simply skipped.  Pages are converted with the 4 KiB page
   size universal on the platforms this repo targets. *)

let page_bytes = 4096.0

let read_first_line path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (input_line ic))
  with Sys_error _ | End_of_file -> None

let rss_bytes () =
  match read_first_line "/proc/self/statm" with
  | None -> None
  | Some line -> (
    match String.split_on_char ' ' (String.trim line) with
    | _size :: resident :: _ -> (
      match int_of_string_opt resident with
      | Some pages -> Some (float_of_int pages *. page_bytes)
      | None -> None)
    | _ -> None)

(* "VmHWM:    12345 kB" somewhere in /proc/self/status. *)
let peak_rss_bytes () =
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            let rest = String.trim (String.sub line 6 (String.length line - 6)) in
            match String.split_on_char ' ' rest with
            | kb :: _ -> (
              match float_of_string_opt kb with
              | Some kb -> Some (kb *. 1024.0)
              | None -> None)
            | [] -> None
          else scan ()
        in
        try scan () with End_of_file -> None)
  with Sys_error _ -> None

let word_bytes = float_of_int (Sys.word_size / 8)

let sample ?probe () =
  let g = Gc.quick_stat () in
  let set name v = Metrics.set (Metrics.gauge name) v in
  set "runtime.gc_minor_collections" (float_of_int g.Gc.minor_collections);
  set "runtime.gc_major_collections" (float_of_int g.Gc.major_collections);
  set "runtime.gc_compactions" (float_of_int g.Gc.compactions);
  set "runtime.gc_heap_bytes" (float_of_int g.Gc.heap_words *. word_bytes);
  set "runtime.gc_top_heap_bytes" (float_of_int g.Gc.top_heap_words *. word_bytes);
  set "runtime.gc_minor_words" g.Gc.minor_words;
  set "runtime.gc_promoted_words" g.Gc.promoted_words;
  (match rss_bytes () with Some v -> set "runtime.rss_bytes" v | None -> ());
  (match peak_rss_bytes () with
  | Some v -> set "runtime.rss_peak_bytes" v
  | None -> ());
  match probe with
  | None -> ()
  | Some f -> List.iter (fun (name, v) -> set name v) (f ())

type sampler = { stop_flag : bool Atomic.t; thread : Thread.t }

let start ?(period_s = 1.0) ?probe () =
  if period_s <= 0.0 then invalid_arg "Runtime.start: period_s <= 0";
  let stop_flag = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        (* Sample immediately so short-lived processes still report, then
           sleep in small slices so [stop] returns promptly. *)
        while not (Atomic.get stop_flag) do
          (try sample ?probe () with _ -> ());
          let slept = ref 0.0 in
          while (not (Atomic.get stop_flag)) && !slept < period_s do
            let slice = Stdlib.min 0.05 (period_s -. !slept) in
            Thread.delay slice;
            slept := !slept +. slice
          done
        done)
      ()
  in
  { stop_flag; thread }

let stop t =
  Atomic.set t.stop_flag true;
  Thread.join t.thread
