(** Monotonic wall-clock and CPU-time sources.

    [Sys.time] measures CPU seconds, which silently under-reports any
    stage that blocks or is descheduled; the observability layer times
    spans with the monotonic clock (CLOCK_MONOTONIC via the bechamel
    stubs) so wall-clock reports survive NTP jumps and suspends. *)

val now_ns : unit -> int64
(** Monotonic time in nanoseconds.  Only differences are meaningful. *)

val now_s : unit -> float
(** Monotonic time in seconds ([now_ns] / 1e9). *)

val cpu_s : unit -> float
(** Processor (CPU) seconds of this process, [Sys.time]. *)
