(** Prometheus text-format (0.0.4) exposition of the metrics registry.

    Dotted registry names map onto the Prometheus grammar by replacing
    illegal characters with ['_'] and prefixing ["wavemin_"]; counters
    get the conventional ["_total"] suffix, and log-scale histograms
    render as cumulative [_bucket{le="..."}] series plus [_sum] and
    [_count].  Served by the daemon's [metrics] control-plane request
    (see {!Repro_server.Protocol}). *)

val metric_name : string -> string
(** The exposed name for a registry name (sanitized, ["wavemin_"]
    prefix, no kind suffix). *)

val expose : ?snapshot:(string * Metrics.value) list -> unit -> string
(** Render a snapshot (default: {!Metrics.snapshot}[ ()]) as exposition
    text, one [# TYPE] line per metric.  Histogram sums degraded by
    non-finite samples are clamped to 0 so the output never carries
    [NaN]. *)
