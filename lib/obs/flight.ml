module Json = Repro_util.Json

type kind =
  | Solve_start of { benchmark : string; algorithm : string }
  | Solve_end of {
      benchmark : string;
      algorithm : string;
      ok : bool;
      wall_ms : float;
    }
  | Fallback of {
      from_alg : string;
      to_alg : string option;
      code : string;
      message : string;
    }
  | Window of {
      kappa_ps : float;
      feasible : int;
      min_width_ps : float;
      earliest_leaf : int;
      earliest_ps : float;
      latest_leaf : int;
      latest_ps : float;
    }
  | Zone_start of { cls : int; zone : int; sinks : int }
  | Zone_end of {
      cls : int;
      zone : int;
      peak_ua : float;
      capped : bool;
      wall_ms : float;
    }
  | Label_row of {
      row : int;
      extended : int;
      kept : int;
      pruned : int;
      capped : int;
    }
  | Budget_trip of { reason : string; labels_used : int }
  | Cache of { cache : string; outcome : string; key : string }
  | Contention of { resource : string; wait_ms : float }
  | Sa_move of {
      zone : int;
      stage : int;
      temperature : float;
      proposed : int;
      accepted : int;
      objective : float;
    }
  | Sa_restart of { zone : int; restart : int; objective : float }
  | Portfolio_winner of {
      winner : string;
      losers : string list;
      wall_ms : float;
    }
  | Warm_start of { benchmark : string; moves : int; objective : float }
  | Note of { name : string; attrs : (string * string) list }

type event = { seq : int; t_ns : int64; domain : int; kind : kind }

let schema_name = "wavemin-flight"
let schema_version = 1

(* Disabled is the common case: [record] must be a single atomic load
   with no allocation, so the flag lives outside the mutex. *)
let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let dummy = { seq = -1; t_ns = 0L; domain = 0; kind = Note { name = ""; attrs = [] } }

let mutex = Mutex.create ()
let ring = ref (Array.make 4096 dummy)
let count = ref 0 (* events recorded since the last clear *)

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let capacity () = with_lock (fun () -> Array.length !ring)

let set_capacity n =
  if n < 1 then invalid_arg "Flight.set_capacity: capacity < 1";
  with_lock (fun () ->
      ring := Array.make n dummy;
      count := 0)

let clear () =
  with_lock (fun () ->
      Array.fill !ring 0 (Array.length !ring) dummy;
      count := 0)

let recorded () = with_lock (fun () -> !count)

let record kind =
  if Atomic.get enabled_flag then begin
    let t_ns = Clock.now_ns () in
    let domain = (Domain.self () :> int) in
    with_lock (fun () ->
        let r = !ring in
        let seq = !count in
        r.(seq mod Array.length r) <- { seq; t_ns; domain; kind };
        count := seq + 1)
  end

let events () =
  with_lock (fun () ->
      let r = !ring in
      let len = Array.length r in
      let n = Stdlib.min !count len in
      List.init n (fun i -> r.((!count - n + i) mod len)))

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let kind_name = function
  | Solve_start _ -> "solve-start"
  | Solve_end _ -> "solve-end"
  | Fallback _ -> "fallback"
  | Window _ -> "window"
  | Zone_start _ -> "zone-start"
  | Zone_end _ -> "zone-end"
  | Label_row _ -> "label-row"
  | Budget_trip _ -> "budget-trip"
  | Cache _ -> "cache"
  | Contention _ -> "contention"
  | Sa_move _ -> "sa-move"
  | Sa_restart _ -> "sa-restart"
  | Portfolio_winner _ -> "portfolio-winner"
  | Warm_start _ -> "warm-start"
  | Note _ -> "note"

let num_i i = Json.Num (float_of_int i)

let kind_fields = function
  | Solve_start { benchmark; algorithm } ->
    [ ("benchmark", Json.Str benchmark); ("algorithm", Json.Str algorithm) ]
  | Solve_end { benchmark; algorithm; ok; wall_ms } ->
    [ ("benchmark", Json.Str benchmark);
      ("algorithm", Json.Str algorithm);
      ("ok", Json.Bool ok);
      ("wall_ms", Json.Num wall_ms) ]
  | Fallback { from_alg; to_alg; code; message } ->
    [ ("from", Json.Str from_alg);
      ("to", match to_alg with Some a -> Json.Str a | None -> Json.Null);
      ("code", Json.Str code);
      ("message", Json.Str message) ]
  | Window
      { kappa_ps; feasible; min_width_ps; earliest_leaf; earliest_ps;
        latest_leaf; latest_ps } ->
    [ ("kappa_ps", Json.Num kappa_ps);
      ("feasible", num_i feasible);
      ("min_width_ps", Json.Num min_width_ps);
      ("earliest_leaf", num_i earliest_leaf);
      ("earliest_ps", Json.Num earliest_ps);
      ("latest_leaf", num_i latest_leaf);
      ("latest_ps", Json.Num latest_ps) ]
  | Zone_start { cls; zone; sinks } ->
    [ ("class", num_i cls); ("zone", num_i zone); ("sinks", num_i sinks) ]
  | Zone_end { cls; zone; peak_ua; capped; wall_ms } ->
    [ ("class", num_i cls);
      ("zone", num_i zone);
      ("peak_ua", Json.Num peak_ua);
      ("capped", Json.Bool capped);
      ("wall_ms", Json.Num wall_ms) ]
  | Label_row { row; extended; kept; pruned; capped } ->
    [ ("row", num_i row);
      ("extended", num_i extended);
      ("kept", num_i kept);
      ("pruned", num_i pruned);
      ("capped", num_i capped) ]
  | Budget_trip { reason; labels_used } ->
    [ ("reason", Json.Str reason); ("labels_used", num_i labels_used) ]
  | Cache { cache; outcome; key } ->
    [ ("cache", Json.Str cache);
      ("outcome", Json.Str outcome);
      ("key", Json.Str key) ]
  | Contention { resource; wait_ms } ->
    [ ("resource", Json.Str resource); ("wait_ms", Json.Num wait_ms) ]
  | Sa_move { zone; stage; temperature; proposed; accepted; objective } ->
    [ ("zone", num_i zone);
      ("stage", num_i stage);
      ("temperature", Json.Num temperature);
      ("proposed", num_i proposed);
      ("accepted", num_i accepted);
      ("objective", Json.Num objective) ]
  | Sa_restart { zone; restart; objective } ->
    [ ("zone", num_i zone);
      ("restart", num_i restart);
      ("objective", Json.Num objective) ]
  | Portfolio_winner { winner; losers; wall_ms } ->
    [ ("winner", Json.Str winner);
      ("losers", Json.List (List.map (fun l -> Json.Str l) losers));
      ("wall_ms", Json.Num wall_ms) ]
  | Warm_start { benchmark; moves; objective } ->
    [ ("benchmark", Json.Str benchmark);
      ("moves", num_i moves);
      ("objective", Json.Num objective) ]
  | Note { name; attrs } ->
    ("name", Json.Str name)
    :: List.map (fun (k, v) -> (k, Json.Str v)) attrs

let to_json () =
  let evs = events () in
  let n_recorded = recorded () in
  let cap = capacity () in
  let t0 = match evs with [] -> 0L | e :: _ -> e.t_ns in
  let event_json e =
    Json.Obj
      (( "seq", num_i e.seq )
       :: ( "t_ms",
            Json.Num (Int64.to_float (Int64.sub e.t_ns t0) /. 1e6) )
       :: ("domain", num_i e.domain)
       :: ("kind", Json.Str (kind_name e.kind))
       :: kind_fields e.kind)
  in
  Json.Obj
    [ ("schema", Json.Str schema_name);
      ("version", num_i schema_version);
      ("capacity", num_i cap);
      ("recorded", num_i n_recorded);
      ("dropped", num_i (Stdlib.max 0 (n_recorded - List.length evs)));
      ("events", Json.List (List.map event_json evs)) ]

let write path =
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Json.to_string (to_json ()));
        output_char oc '\n')
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
