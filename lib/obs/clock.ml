let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
let cpu_s () = Sys.time ()
