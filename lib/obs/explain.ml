module Json = Repro_util.Json

let str k e = Option.bind (Json.member k e) Json.string_value
let num k e = Option.bind (Json.member k e) Json.float_value
let int_f k e = Option.bind (Json.member k e) Json.int_value
let bool_f k e = Option.bind (Json.member k e) Json.bool_value

let str_or d k e = Option.value ~default:d (str k e)
let num_or d k e = Option.value ~default:d (num k e)
let int_or d k e = Option.value ~default:d (int_f k e)
let bool_or d k e = Option.value ~default:d (bool_f k e)

(* Per-zone aggregate built from Zone_start/Label_row/Zone_end events.
   Label rows carry no zone id — they are correlated by recording
   domain: a Label_row belongs to the zone its domain last opened. *)
type zone_agg = {
  z_cls : int;
  z_zone : int;
  mutable z_sinks : int;
  mutable z_rows : (int * bool) list;  (* kept labels per row, capped?; reversed *)
  mutable z_extended : int;
  mutable z_pruned : int;
  mutable z_capped_labels : int;
  mutable z_peak : float;
  mutable z_capped : bool;
  mutable z_wall_ms : float;
  mutable z_closed : bool;
}

let render doc =
  match (str "schema" doc, int_f "version" doc, Json.member "events" doc) with
  | (Some s, _, _) when s <> Flight.schema_name ->
    Error (Printf.sprintf "not a flight dump (schema %S)" s)
  | (None, _, _) -> Error "not a flight dump (no \"schema\" field)"
  | (_, None, _) -> Error "not a flight dump (no \"version\" field)"
  | (Some _, Some v, _) when v > Flight.schema_version ->
    Error
      (Printf.sprintf "flight dump version %d is newer than supported %d" v
         Flight.schema_version)
  | (Some _, Some _, None) -> Error "flight dump has no \"events\" field"
  | (Some _, Some _, Some events_j) -> (
    match Json.list_value events_j with
    | None -> Error "flight dump \"events\" is not a list"
    | Some events ->
      let buf = Buffer.create 4096 in
      let pr fmt = Printf.bprintf buf fmt in
      let recorded = int_or (List.length events) "recorded" doc in
      let dropped = int_or 0 "dropped" doc in
      let span_ms =
        List.fold_left (fun acc e -> Stdlib.max acc (num_or 0.0 "t_ms" e)) 0.0
          events
      in
      pr "flight recorder: %d events (%d recorded, %d dropped), span %.1f ms\n"
        (List.length events) recorded dropped span_ms;

      (* One ordered pass: the solve/fallback timeline, the skew window,
         zone aggregates correlated by domain, budget/cache/contention. *)
      let timeline = Buffer.create 512 in
      let tl fmt = Printf.bprintf timeline fmt in
      let window = ref None in
      let zones = Hashtbl.create 64 in
      let zone_order = ref [] in
      let open_zone = Hashtbl.create 8 in (* domain -> (cls, zone) *)
      let budget_trips = ref [] in
      let cache_counts = Hashtbl.create 8 in (* (cache, outcome) -> count *)
      let contention = Hashtbl.create 8 in (* resource -> (count, total_ms) *)
      (* zone -> (stages, proposed, accepted, last objective) *)
      let sa = Hashtbl.create 16 in
      let sa_order = ref [] in
      let unknown = Hashtbl.create 4 in
      List.iter
        (fun e ->
          let t_ms = num_or 0.0 "t_ms" e in
          let domain = int_or 0 "domain" e in
          match str_or "?" "kind" e with
          | "solve-start" ->
            tl "  %8.1f ms  %s: start (algorithm %s)\n" t_ms
              (str_or "?" "benchmark" e)
              (str_or "?" "algorithm" e)
          | "solve-end" ->
            let ok = bool_or false "ok" e in
            tl "  %8.1f ms  %s: %s after %.1f ms (algorithm %s)\n" t_ms
              (str_or "?" "benchmark" e)
              (if ok then "ok" else "FAILED")
              (num_or 0.0 "wall_ms" e)
              (str_or "?" "algorithm" e)
          | "fallback" ->
            let to_ = match str "to" e with
              | Some a -> Printf.sprintf "falling back to %s" a
              | None -> "chain exhausted"
            in
            tl "  %8.1f ms  fallback: %s failed [%s] — %s\n" t_ms
              (str_or "?" "from" e)
              (str_or "?" "code" e)
              to_;
            tl "              cause: %s\n" (str_or "?" "message" e)
          | "window" -> window := Some e
          | "zone-start" ->
            let cls = int_or 0 "class" e and zone = int_or 0 "zone" e in
            Hashtbl.replace open_zone domain (cls, zone);
            if not (Hashtbl.mem zones (cls, zone)) then begin
              let z =
                { z_cls = cls; z_zone = zone;
                  z_sinks = int_or 0 "sinks" e; z_rows = [];
                  z_extended = 0; z_pruned = 0; z_capped_labels = 0;
                  z_peak = 0.0; z_capped = false; z_wall_ms = 0.0;
                  z_closed = false }
              in
              Hashtbl.replace zones (cls, zone) z;
              zone_order := (cls, zone) :: !zone_order
            end
          | "label-row" -> (
            match Hashtbl.find_opt open_zone domain with
            | None -> ()
            | Some key -> (
              match Hashtbl.find_opt zones key with
              | None -> ()
              | Some z ->
                let capped = int_or 0 "capped" e in
                z.z_rows <- (int_or 0 "kept" e, capped > 0) :: z.z_rows;
                z.z_extended <- z.z_extended + int_or 0 "extended" e;
                z.z_pruned <- z.z_pruned + int_or 0 "pruned" e;
                z.z_capped_labels <- z.z_capped_labels + capped))
          | "zone-end" -> (
            let cls = int_or 0 "class" e and zone = int_or 0 "zone" e in
            Hashtbl.remove open_zone domain;
            match Hashtbl.find_opt zones (cls, zone) with
            | None -> ()
            | Some z ->
              z.z_peak <- num_or 0.0 "peak_ua" e;
              z.z_capped <- bool_or false "capped" e;
              z.z_wall_ms <- num_or 0.0 "wall_ms" e;
              z.z_closed <- true)
          | "budget-trip" ->
            budget_trips :=
              (t_ms, str_or "?" "reason" e, int_or 0 "labels_used" e)
              :: !budget_trips
          | "cache" ->
            let key = (str_or "?" "cache" e, str_or "?" "outcome" e) in
            Hashtbl.replace cache_counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt cache_counts key))
          | "contention" ->
            let r = str_or "?" "resource" e in
            let (c, total) =
              Option.value ~default:(0, 0.0) (Hashtbl.find_opt contention r)
            in
            Hashtbl.replace contention r (c + 1, total +. num_or 0.0 "wait_ms" e)
          | "sa-move" ->
            let zone = int_or 0 "zone" e in
            if not (Hashtbl.mem sa zone) then sa_order := zone :: !sa_order;
            let stages, proposed, accepted, _ =
              Option.value ~default:(0, 0, 0, 0.0) (Hashtbl.find_opt sa zone)
            in
            Hashtbl.replace sa zone
              ( stages + 1,
                proposed + int_or 0 "proposed" e,
                accepted + int_or 0 "accepted" e,
                num_or 0.0 "objective" e )
          | "sa-restart" ->
            tl "  %8.1f ms  annealer: zone %d restart %d (objective %.1f uA)\n"
              t_ms (int_or 0 "zone" e) (int_or 0 "restart" e)
              (num_or 0.0 "objective" e)
          | "portfolio-winner" ->
            let losers =
              match Option.bind (Json.member "losers" e) Json.list_value with
              | None -> ""
              | Some [] -> ""
              | Some ls ->
                Printf.sprintf " over %s"
                  (String.concat ", "
                     (List.filter_map Json.string_value ls))
            in
            tl "  %8.1f ms  portfolio: %s wins%s after %.1f ms\n" t_ms
              (str_or "?" "winner" e) losers (num_or 0.0 "wall_ms" e)
          | "warm-start" ->
            tl "  %8.1f ms  %s: warm start (%d polish moves, objective \
                %.1f uA)\n"
              t_ms
              (str_or "?" "benchmark" e)
              (int_or 0 "moves" e) (num_or 0.0 "objective" e)
          | "note" ->
            (* Attrs ride as flat string fields next to the envelope
               keys; render every one so server notes (executor-stalled,
               request-expired) carry their context into the report. *)
            let attrs =
              match Json.obj_value e with
              | None -> []
              | Some fields ->
                List.filter_map
                  (fun (k, v) ->
                    match (k, v) with
                    | ("seq" | "t_ms" | "domain" | "kind" | "name"), _ -> None
                    | k, Json.Str v -> Some (Printf.sprintf "%s=%s" k v)
                    | _ -> None)
                  fields
            in
            if attrs = [] then
              tl "  %8.1f ms  note: %s\n" t_ms (str_or "?" "name" e)
            else
              tl "  %8.1f ms  note: %s (%s)\n" t_ms (str_or "?" "name" e)
                (String.concat ", " attrs)
          | k -> Hashtbl.replace unknown k ())
        events;

      if Buffer.length timeline > 0 then begin
        pr "\nsolve timeline:\n";
        Buffer.add_buffer buf timeline
      end;

      (match !window with
      | None -> ()
      | Some w ->
        pr "\nskew window:\n";
        pr "  kappa %.1f ps, %d feasible arrival intervals\n"
          (num_or 0.0 "kappa_ps" w) (int_or 0 "feasible" w);
        pr "  binding sinks: leaf %d (candidates end earliest, %.1f ps) vs \
            leaf %d (start latest, %.1f ps)\n"
          (int_or (-1) "earliest_leaf" w) (num_or 0.0 "earliest_ps" w)
          (int_or (-1) "latest_leaf" w) (num_or 0.0 "latest_ps" w);
        (* A window must span [latest, earliest]; needing more than
           kappa of width is exactly the infeasibility condition of
           Intervals.infeasibility_message.  Width <= 0 means the
           binding sinks overlap: any single point in between works. *)
        let width = num_or 0.0 "min_width_ps" w in
        pr "  minimum window width %.1f ps%s\n" (Float.max 0.0 width)
          (if width > num_or infinity "kappa_ps" w then
             "  (EXCEEDS kappa — INFEASIBLE, no window fits every sink)"
           else ""));

      let zone_list =
        List.rev_map (fun key -> Hashtbl.find zones key) !zone_order
      in
      if zone_list <> [] then begin
        let by_wall =
          List.sort (fun a b -> compare b.z_wall_ms a.z_wall_ms) zone_list
        in
        let total_wall =
          List.fold_left (fun acc z -> acc +. z.z_wall_ms) 0.0 zone_list
        in
        pr "\nzones by wall time (%d zones, %.1f ms total):\n"
          (List.length zone_list) total_wall;
        let show = 10 in
        List.iteri
          (fun i z ->
            if i < show then
              pr "  class %d zone %-4d %8.1f ms  %d sinks, peak %.1f uA%s\n"
                z.z_cls z.z_zone z.z_wall_ms z.z_sinks z.z_peak
                (if z.z_capped then ", label-capped"
                 else if not z.z_closed then ", UNFINISHED"
                 else ""))
          by_wall;
        if List.length by_wall > show then
          pr "  ... %d more zones\n" (List.length by_wall - show);
        (* Label evolution gets its own section: the zones that carry
           row data are the interesting ones (a cap or budget trip cut
           them short) yet rarely the slowest, so burying them under
           the wall-time top list would hide exactly what a
           degradation post-mortem needs. *)
        let with_rows = List.filter (fun z -> z.z_rows <> []) zone_list in
        if with_rows <> [] then begin
          pr "\nlabel evolution (%d zones with row data):\n"
            (List.length with_rows);
          let show = 8 in
          List.iteri
            (fun i z ->
              if i < show then begin
                let rows = List.rev z.z_rows in
                let cell (kept, capped) =
                  string_of_int kept ^ if capped then "*" else ""
                in
                let shown = List.filteri (fun j _ -> j < 16) rows in
                pr "  class %d zone %-4d labels/row: %s%s  (extended %d, \
                    pruned %d, capped %d)\n"
                  z.z_cls z.z_zone
                  (String.concat " " (List.map cell shown))
                  (if List.length rows > 16 then
                     Printf.sprintf " ... [%d rows]" (List.length rows)
                   else "")
                  z.z_extended z.z_pruned z.z_capped_labels
              end)
            with_rows;
          if List.length with_rows > show then
            pr "  ... %d more zones\n" (List.length with_rows - show)
        end
      end;

      (match List.rev !budget_trips with
      | [] -> ()
      | trips ->
        pr "\nbudget trips:\n";
        List.iter
          (fun (t_ms, reason, labels) ->
            (* Label-budget reasons already carry their own count. *)
            let suffix =
              if labels > 0 && not (String.starts_with ~prefix:"label" reason)
              then Printf.sprintf "  (%d labels extended)" labels
              else ""
            in
            pr "  %8.1f ms  %s%s\n" t_ms reason suffix)
          trips);

      if Hashtbl.length cache_counts > 0 then begin
        pr "\ncaches:\n";
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) cache_counts []
        |> List.sort compare
        |> List.iter (fun ((cache, outcome), n) ->
               pr "  %-12s %-8s %d\n" cache outcome n)
      end;

      if Hashtbl.length sa > 0 then begin
        pr "\nannealer (per zone):\n";
        List.iter
          (fun zone ->
            let stages, proposed, accepted, objective =
              Hashtbl.find sa zone
            in
            pr "  zone %-4d %d stages, %d proposed, %d accepted (%.0f%%), \
                objective %.1f uA\n"
              zone stages proposed accepted
              (if proposed = 0 then 0.0
               else 100.0 *. float_of_int accepted /. float_of_int proposed)
              objective)
          (List.rev !sa_order)
      end;

      if Hashtbl.length contention > 0 then begin
        pr "\ncontention:\n";
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) contention []
        |> List.sort compare
        |> List.iter (fun (resource, (n, total_ms)) ->
               pr "  %-20s %d waits, %.2f ms total\n" resource n total_ms)
      end;

      if Hashtbl.length unknown > 0 then begin
        let ks = Hashtbl.fold (fun k () acc -> k :: acc) unknown [] in
        pr "\n(unknown event kinds ignored: %s)\n"
          (String.concat ", " (List.sort compare ks))
      end;
      Ok (Buffer.contents buf))
