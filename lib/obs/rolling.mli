(** Rolling-window histogram: percentiles over the last N seconds.

    A ring of time-sliced sub-histograms; each observation lands in the
    slice owning its timestamp and stale slices are cleared lazily on
    reuse, so both {!observe} and {!stats} are O(ring).  {!stats}
    aggregates only slices inside the window, so p50/p95/p99 describe
    recent behaviour — the live-telemetry complement to the cumulative
    {!Metrics.histogram}.

    Values are bucketed on a quarter-octave log2 grid (four buckets per
    doubling): reported percentiles are exact to within ~19%, tightened
    by clamping to the observed min/max.  Thread-safe; like the metrics
    registry it only ever observes, never influences, results.

    Every entry point takes [?now] (seconds, {!Clock.now_s} domain,
    defaulting to the real clock) so window rotation is testable with a
    synthetic clock. *)

type t

val create : ?window_s:float -> ?slots:int -> unit -> t
(** A window of [window_s] seconds (default 60) split into [slots]
    ring slices (default 12, i.e. 5-second slices).
    @raise Invalid_argument on a non-positive window or slot count. *)

val window_seconds : t -> float

val observe : ?now:float -> t -> float -> unit
(** Record one sample at time [now].  Non-finite and non-positive
    samples count toward [count]/[rate] but land in the underflow bucket
    and are excluded from sum/extrema, mirroring {!Metrics.observe}.

    Clock skew: a [now] older than the slice its timestamp maps to is
    folded into that newer slice (clamped forward in time) rather than
    resurrecting the stale period — late samples are never lost and
    never wipe newer window data. *)

type stats = {
  count : int;  (** Samples inside the window. *)
  total : int;  (** Lifetime samples, window-independent. *)
  rate : float;  (** Samples per second over the covered window. *)
  mean : float;
  min : float;  (** 0 when the window is empty. *)
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

val stats : ?now:float -> t -> stats
(** Aggregate of the slices within [window_s] of [now].  All fields are
    finite; an empty window yields zeros (never ±inf sentinels). *)

val reset : t -> unit

val stats_json : stats -> Repro_util.Json.t
(** Stats as a flat JSON object (all values finite) — embedded in the
    server's [stats] response. *)
