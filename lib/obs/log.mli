(** Structured logging on top of the [logs] library.

    Each subsystem gets its own {!Logs.src} via [src] (get-or-create by
    name), so verbosity is adjustable per module; [setup] installs a
    [Fmt]-based stderr reporter and the global level.  Nothing logs
    until [setup] runs — library code can hold sources and emit freely
    without forcing a reporter on embedding applications. *)

val src : string -> Logs.src
(** Get or create the named source (e.g. ["wavemin.warburton"]). *)

val setup : ?level:Logs.level option -> unit -> unit
(** Install the stderr reporter; [level] (default [Some Warning]) sets
    the global report threshold, [None] disables all logging. *)

val level_of_string : string -> (Logs.level option, string) result
(** Parse ["quiet"], ["app"], ["error"], ["warning"]/["warn"],
    ["info"] or ["debug"]. *)

val level_names : string list
(** Accepted spellings for {!level_of_string}, for CLI docs. *)
