(** Human rendering of {!Flight} dumps — the [wavemin explain] report.

    Consumes the versioned JSON produced by {!Flight.to_json} (a live
    ring snapshot or a dump file read back from disk) and renders the
    forensic narrative: the solve/fallback timeline with the triggering
    error codes, which sinks bind the skew window, per-zone label-count
    evolution, and where wall time went. *)

module Json := Repro_util.Json

val render : Json.t -> (string, string) result
(** [Error] on a schema mismatch (wrong ["schema"]/["version"] or a
    shapeless document); unknown event kinds inside a well-formed dump
    are listed, not fatal, so newer dumps degrade gracefully. *)
