module Verrors = Repro_util.Verrors

type t = {
  wall_ms : float option;
  deadline_ns : int64 option;  (* absolute, Clock.now_ns scale *)
  max_labels : int option;
  labels : int Atomic.t;
  (* Sticky trip reason: set once by the first failing check; later
     checks re-raise without re-deriving, so a tripped budget cancels
     cooperating workers promptly. *)
  tripped : string option Atomic.t;
}

let create ?wall_ms ?max_labels () =
  (match wall_ms with
  | Some ms when ms <= 0.0 -> invalid_arg "Budget.create: wall_ms <= 0"
  | _ -> ());
  (match max_labels with
  | Some n when n < 1 -> invalid_arg "Budget.create: max_labels < 1"
  | _ -> ());
  {
    wall_ms;
    deadline_ns =
      Option.map
        (fun ms -> Int64.add (Clock.now_ns ()) (Int64.of_float (ms *. 1e6)))
        wall_ms;
    max_labels;
    labels = Atomic.make 0;
    tripped = Atomic.make None;
  }

let labels_used t = Atomic.get t.labels

let exceeded t =
  match Atomic.get t.tripped with
  | Some _ as r -> r
  | None ->
    let reason =
      match t.deadline_ns with
      | Some d when Clock.now_ns () > d ->
        Some
          (Printf.sprintf "wall-clock budget of %.0f ms exhausted"
             (Option.value ~default:0.0 t.wall_ms))
      | _ -> (
        match t.max_labels with
        | Some cap when Atomic.get t.labels > cap ->
          Some
            (Printf.sprintf
               "label budget of %d exhausted (%d labels extended)" cap
               (Atomic.get t.labels))
        | _ -> None)
    in
    (match reason with
    | Some r ->
      (* Flight-record the transition only (CAS: one event per trip even
         when racing domains notice simultaneously) — sticky re-raises
         during cooperative cancellation would flood the ring. *)
      if Atomic.compare_and_set t.tripped None (Some r) then
        Flight.record
          (Flight.Budget_trip { reason = r; labels_used = Atomic.get t.labels })
    | None -> ());
    reason

let check t =
  match exceeded t with
  | None -> ()
  | Some reason ->
    Verrors.fail ~code:Verrors.Budget_exhausted ~stage:"budget"
      ~hints:
        [ "raise --budget-ms / the label budget, or accept the recorded \
           degradation" ]
      reason

let charge_labels t n =
  if n > 0 then ignore (Atomic.fetch_and_add t.labels n);
  check t

(* ------------------------------------------------------------------ *)
(* Ambient budget                                                      *)

let ambient : t option Atomic.t = Atomic.make None

let current () = Atomic.get ambient

let with_current t f =
  let saved = Atomic.get ambient in
  Atomic.set ambient (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set ambient saved) f

let check_current () =
  match Atomic.get ambient with None -> () | Some t -> check t

let charge_labels_current n =
  match Atomic.get ambient with None -> () | Some t -> charge_labels t n
