module Verrors = Repro_util.Verrors

type t = {
  wall_ms : float option;
  deadline_ns : int64 option;  (* absolute, Clock.now_ns scale *)
  request_deadline_ns : int64 option;
      (* absolute end-to-end request deadline (Clock.now_ns scale);
         trips with Deadline_exceeded, not Budget_exhausted — the
         sender has given up, the work is doomed either way. *)
  max_labels : int option;
  labels : int Atomic.t;
  (* Sticky trip reason: set once by the first failing check; later
     checks re-raise without re-deriving, so a tripped budget cancels
     cooperating workers promptly. *)
  tripped : (string * Verrors.code) option Atomic.t;
}

let create ?wall_ms ?deadline_ns ?max_labels () =
  (match wall_ms with
  | Some ms when ms <= 0.0 -> invalid_arg "Budget.create: wall_ms <= 0"
  | _ -> ());
  (match max_labels with
  | Some n when n < 1 -> invalid_arg "Budget.create: max_labels < 1"
  | _ -> ());
  {
    wall_ms;
    deadline_ns =
      Option.map
        (fun ms -> Int64.add (Clock.now_ns ()) (Int64.of_float (ms *. 1e6)))
        wall_ms;
    request_deadline_ns = deadline_ns;
    max_labels;
    labels = Atomic.make 0;
    tripped = Atomic.make None;
  }

let labels_used t = Atomic.get t.labels

let tripped_with t =
  match Atomic.get t.tripped with
  | Some _ as r -> r
  | None ->
    let reason =
      match t.request_deadline_ns with
      | Some d when Clock.now_ns () > d ->
        Some ("request deadline exceeded", Verrors.Deadline_exceeded)
      | _ -> (
        match t.deadline_ns with
        | Some d when Clock.now_ns () > d ->
          Some
            ( Printf.sprintf "wall-clock budget of %.0f ms exhausted"
                (Option.value ~default:0.0 t.wall_ms),
              Verrors.Budget_exhausted )
        | _ -> (
          match t.max_labels with
          | Some cap when Atomic.get t.labels > cap ->
            Some
              ( Printf.sprintf
                  "label budget of %d exhausted (%d labels extended)" cap
                  (Atomic.get t.labels),
                Verrors.Budget_exhausted )
          | _ -> None))
    in
    (match reason with
    | Some (r, _) ->
      (* Flight-record the transition only (CAS: one event per trip even
         when racing domains notice simultaneously) — sticky re-raises
         during cooperative cancellation would flood the ring. *)
      if Atomic.compare_and_set t.tripped None reason then
        Flight.record
          (Flight.Budget_trip { reason = r; labels_used = Atomic.get t.labels })
    | None -> ());
    Atomic.get t.tripped

let exceeded t = Option.map fst (tripped_with t)

let check t =
  match tripped_with t with
  | None -> ()
  | Some (reason, (Verrors.Deadline_exceeded as code)) ->
    Verrors.fail ~code ~stage:"budget"
      ~hints:
        [ "the client stopped waiting; raise deadline_ms or drop it for \
           unbounded requests" ]
      reason
  | Some (reason, code) ->
    Verrors.fail ~code ~stage:"budget"
      ~hints:
        [ "raise --budget-ms / the label budget, or accept the recorded \
           degradation" ]
      reason

let charge_labels t n =
  if n > 0 then ignore (Atomic.fetch_and_add t.labels n);
  check t

(* ------------------------------------------------------------------ *)
(* Ambient budget                                                      *)

(* Thread-scoped, not process-wide: the daemon runs several executor
   threads concurrently, and a global slot would leak one request's
   budget into another request's solver checks.  The slot is keyed by
   (domain, thread); {!Repro_par.Par} captures the submitting thread's
   budget at region setup and re-installs it around each pool task, so
   worker domains still observe it.  [installed] counts live
   installations so that with no budget anywhere the ambient check
   stays a single atomic load. *)

let installed = Atomic.make 0
let tls : (int * int, t) Hashtbl.t = Hashtbl.create 16
let tls_mutex = Mutex.create ()
let tls_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let current () =
  if Atomic.get installed = 0 then None
  else begin
    let k = tls_key () in
    Mutex.lock tls_mutex;
    let r = Hashtbl.find_opt tls k in
    Mutex.unlock tls_mutex;
    r
  end

let with_current t f =
  let k = tls_key () in
  Mutex.lock tls_mutex;
  let saved = Hashtbl.find_opt tls k in
  Hashtbl.replace tls k t;
  Mutex.unlock tls_mutex;
  Atomic.incr installed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr installed;
      Mutex.lock tls_mutex;
      (match saved with
      | Some prev -> Hashtbl.replace tls k prev
      | None -> Hashtbl.remove tls k);
      Mutex.unlock tls_mutex)
    f

let check_current () =
  match current () with None -> () | Some t -> check t

let charge_labels_current n =
  match current () with None -> () | Some t -> charge_labels t n
