(** Deterministic fault injection at the pipeline's fragile seams.

    Activated by the [WAVEMIN_FAULTS] environment variable (or
    programmatically via {!set_spec}); completely inert — a single
    atomic load per {!trip} call — when unconfigured.  A configured seam
    raises {!Repro_util.Verrors.Error} with code [Fault_injected] from
    {!trip} with the given probability, drawn from a per-seam
    {!Repro_util.Rng} stream seeded by the spec, so a fixed spec and
    seed reproduce the same injection pattern at [jobs = 1].

    Spec syntax (comma-separated):
    {[WAVEMIN_FAULTS="parser:1,noise-table:0.25,seed:42"]}
    Each entry is [seam\[:probability\]] (probability defaults to 1) or
    [seed:<int>] (defaults to 0).  Seams: [parser], [waveform-cache],
    [noise-table], [pool-task], [report-writer].

    The harness exists so tests and CI can assert the robustness
    contract: under any injected fault the flow never crashes with an
    uncaught exception — it returns a solution, a diagnosed
    degradation, or a structured error. *)

type seam =
  | Parser  (** {!Repro_cell.Liberty.parse} input parsing. *)
  | Waveform_cache  (** Candidate waveform memo lookups. *)
  | Noise_table  (** Per-zone noise-table construction. *)
  | Pool_task  (** Every {!Repro_par.Par} task. *)
  | Report_writer  (** {!Report.write}. *)

val seam_name : seam -> string
val seam_of_name : string -> seam option
val all_seams : seam list

val set_spec : string -> (unit, string) result
(** Parse and install a spec; [""] disables injection.  [Error] on a
    malformed spec, leaving the previous configuration in place. *)

val clear : unit -> unit
(** Disable injection (tests). *)

val active : unit -> bool
(** True when any seam is configured.  Reads [WAVEMIN_FAULTS] once,
    lazily, on first use; a malformed variable prints one warning to
    stderr and disables injection. *)

val trip : seam -> site:string -> unit
(** Raise a [Fault_injected] error at the given site if the seam is
    configured and its probability fires; otherwise (and always when
    inactive) return.  [site] becomes the error's [stage]. *)

val trips : unit -> int
(** Number of faults injected since configuration (also the
    [fault.injected] metrics counter). *)
