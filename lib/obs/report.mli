(** Machine-readable experiment run reports ([BENCH_*.json]).

    A report captures one experiment run end to end: a manifest (what
    ran, against which benchmark suite, with which seeds and solver
    configuration, in which — hostname-free — environment), the headline
    quality numbers per benchmark and algorithm, wall/CPU time per
    pipeline stage, and a snapshot of the {!Metrics} registry.  Reports
    serialize to a versioned JSON schema and parse back losslessly
    ([of_string (to_string r) = Ok r], floats bit-for-bit), so the
    repo's perf/quality trajectory can be compared across commits.

    {!diff} is the regression gate: it compares a candidate report
    against a baseline with per-metric tolerances — quality metrics must
    match exactly-or-within-epsilon (the pipeline is deterministic for
    fixed seeds; any drift is a behaviour change), runtimes only fail on
    a generous slowdown ratio (machines differ; only blow-ups are
    regressions). *)

val schema_version : int
(** Current schema version (1).  Parsing rejects other versions. *)

(** {1 Schema} *)

type status = Completed | Failed of string

type manifest = {
  experiment : string;  (** e.g. ["table5"]. *)
  suite : string list;  (** Benchmark names, paper order. *)
  git : string option;  (** [git describe] of the producing tree. *)
  seeds : (string * int) list;  (** RNG seeds, e.g. per benchmark. *)
  config : (string * string) list;
      (** Solver configuration (kappa, epsilon, max_labels, ...). *)
  environment : (string * string) list;
      (** Execution-environment facts that explain runtimes without
          affecting quality (e.g. [("jobs", "4")], measured speedups).
          Never gated by {!diff}. *)
  ocaml_version : string;
  word_size : int;
  os_type : string;
}

type sample = {
  benchmark : string;
  algorithm : string;
  quality : (string * float) list;
      (** Result metrics (peak current, noise, skew, improvement %...):
          gated exact-or-epsilon. *)
  runtime : (string * float) list;
      (** Time metrics (wall/CPU seconds, ns/run): gated by ratio. *)
}

type stage = { stage : string; wall_s : float; cpu_s : float }

type degradation = {
  benchmark : string;
  algorithm : string;  (** The algorithm the run asked for. *)
  from_alg : string;  (** The attempt that failed. *)
  to_alg : string option;
      (** The fallback tried next; [None] when the chain was exhausted
          and the run failed. *)
  code : string;  (** {!Repro_util.Verrors.code} name, kebab-case. *)
  detail : string;
}
(** One link of a fallback chain taken during the run.  Degradations are
    informational — {!diff} never gates on them (like [environment]),
    and the block is omitted from the JSON when empty, so unaffected
    reports stay byte-identical to schema-v1 files written before the
    block existed. *)

type t = {
  version : int;
  manifest : manifest;
  status : status;
  samples : sample list;
  stages : stage list;
  degradations : degradation list;
  registry : (string * Metrics.value) list;
}

(** {1 Building}

    A [builder] accumulates samples and stages imperatively while an
    experiment runs; {!finalize} seals it together with a registry
    snapshot.  This is what [bench/bench_common.ml] threads through the
    experiment drivers. *)

type builder

val create :
  experiment:string ->
  ?suite:string list ->
  ?seeds:(string * int) list ->
  ?config:(string * string) list ->
  ?environment:(string * string) list ->
  ?git:string ->
  unit ->
  builder
(** Environment fields are filled in from [Sys] (OCaml version, word
    size, OS type) — nothing host-identifying.  [environment] seeds the
    free-form manifest block; extend it later with {!add_environment}. *)

val add_environment : builder -> (string * string) list -> unit
(** Merge entries into the manifest's [environment] block; a repeated
    key replaces the earlier value. *)

val add_sample :
  builder ->
  benchmark:string ->
  algorithm:string ->
  ?quality:(string * float) list ->
  ?runtime:(string * float) list ->
  unit ->
  unit
(** Append one (benchmark, algorithm) result row.  Rows are kept in
    insertion order; (benchmark, algorithm) pairs should be unique —
    disambiguate variants in the algorithm label (e.g. ["wavemin@s8"]). *)

val add_stage : builder -> stage:string -> wall_s:float -> cpu_s:float -> unit

val add_degradation : builder -> degradation -> unit
(** Append one fallback-chain link, in occurrence order. *)

val record_error : builder -> string -> unit
(** Mark the run [Failed].  The first recorded error wins. *)

val finalize : ?registry:(string * Metrics.value) list -> builder -> t
(** Seal the report.  [registry] defaults to {!Metrics.snapshot}[ ()]. *)

(** {1 Serialization} *)

val to_json : t -> Repro_util.Json.t
val to_string : t -> string
(** Pretty-printed, diff-friendly. *)

val of_json : Repro_util.Json.t -> (t, string) result
val of_string : string -> (t, string) result

val write : string -> t -> unit
(** @raise Sys_error on I/O failure.
    @raise Repro_util.Verrors.Error when the [report-writer] fault seam
    is armed ({!Fault}). *)

val read : string -> (t, string) result
(** File-not-found/unreadable is reported as [Error], not an exception. *)

val equal : t -> t -> bool
(** Structural equality; float fields compare bit-for-bit (NaN equals
    NaN), which is what the round-trip guarantee is stated in. *)

(** {1 Regression gate} *)

type tolerances = {
  quality_rtol : float;  (** Relative quality tolerance (default 1e-6). *)
  quality_atol : float;  (** Absolute quality tolerance (default 1e-9). *)
  runtime_ratio : float;
      (** Slowdown factor that fails the gate (default 5.0). *)
  runtime_slack_s : float;
      (** Absolute seconds a runtime may grow regardless of ratio
          (default 0.25) — keeps micro-stages out of the gate. *)
}

val default_tolerances : tolerances

type verdict =
  | Unchanged  (** Within tolerance. *)
  | Quality_regression  (** Quality value moved beyond epsilon. *)
  | Runtime_regression  (** Runtime blew past the slowdown ratio. *)
  | Missing_in_new  (** Baseline metric absent from the candidate. *)
  | Only_in_new  (** New metric — informational, never fails the gate. *)
  | Errored  (** Candidate run failed, or manifests are incomparable. *)

type change = {
  path : string;  (** e.g. ["s13207/wavemin/quality/peak_current_ma"]. *)
  baseline : float option;
  candidate : float option;
  verdict : verdict;
}

val diff : ?tol:tolerances -> baseline:t -> candidate:t -> unit -> change list
(** Every comparable metric of both reports, in baseline order then
    candidate-only additions.  Comparing reports of different
    experiments yields a single [Errored] change. *)

val failures : change list -> change list
(** The gate-failing subset: everything except [Unchanged] and
    [Only_in_new]. *)

val render_diff : change list -> string
(** Human-readable verdict: a table of failing/new metrics (via
    {!Repro_util.Table}) plus a one-line summary. *)
