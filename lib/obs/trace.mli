(** Span-based execution tracer.

    [with_span ~name f] measures [f] with the monotonic clock and
    records a nested span into a per-execution buffer; the buffer can be
    rendered as an indented text tree or exported as Chrome
    [trace_event] JSON, loadable in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}.

    Tracing is {e off} by default: a disabled [with_span] runs [f]
    directly (no clock read, no allocation), so instrumented hot paths
    cost nothing in normal runs, and tracing never changes results —
    only observes them. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_ns : int64;  (** Monotonic, {!Clock.now_ns} domain. *)
  dur_ns : int64;
  depth : int;  (** Nesting depth at open; roots are 0, per domain. *)
  domain : int;  (** The OCaml domain the span ran on (Chrome [tid]). *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span :
  ?attrs:(string * string) list ->
  ?tid:int ->
  name:string ->
  (unit -> 'a) ->
  'a
(** Run [f] inside a span.  The span closes (and is recorded) even when
    [f] raises.  When tracing is disabled this is exactly [f ()].
    Safe to call from any domain: depth is tracked per domain and the
    completed-span buffer is mutex-protected, so parallel regions show
    up as separate [tid] lanes in the Chrome export.  [?tid] overrides
    the lane (default: the current domain id) — the server uses a
    synthetic lane for its executor so request spans group together
    regardless of which system thread ran them. *)

val record :
  ?attrs:(string * string) list ->
  ?tid:int ->
  name:string ->
  start_ns:int64 ->
  dur_ns:int64 ->
  unit ->
  unit
(** Record an already-measured interval as a root span — for phases
    whose start was observed before their duration was known (e.g. the
    time a request spent queued).  No-op when tracing is disabled. *)

val set_process_name : string -> unit
(** Label for the Chrome [process_name] metadata event
    (default ["wavemin"]). *)

val set_thread_name : tid:int -> string -> unit
(** Register a human-readable lane label emitted as a Chrome
    [thread_name] metadata event.  Unregistered lanes fall back to
    ["main"] (tid 0) or ["domain-N"].  Registrations survive {!reset}:
    they describe the process layout, not one trace. *)

val reset : unit -> unit
(** Drop all recorded spans.  Open spans (on the current stack) are
    unaffected and will still record on close. *)

val spans : unit -> span list
(** Completed spans, sorted by start time (parents before children). *)

val to_text_tree : unit -> string
(** Indented tree of span names with wall-clock durations. *)

val to_chrome_json : unit -> string
(** Chrome [trace_event] JSON (object format, ["X"] complete events,
    timestamps in microseconds).  The event stream opens with ["M"]
    metadata events naming the process and every thread lane. *)

val write_chrome_json : string -> unit
(** [write_chrome_json path] writes {!to_chrome_json} to [path]. *)
