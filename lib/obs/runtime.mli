(** Process-runtime sampler: GC statistics, resident-set size and
    caller-supplied gauges recorded into the metrics registry.

    {!sample} takes one snapshot ([Gc.quick_stat], RSS from
    [/proc/self/statm], peak RSS from [VmHWM] in [/proc/self/status] —
    both skipped gracefully without procfs) into [runtime.*] gauges.
    {!start} runs it on a dedicated thread at a fixed period; the
    daemon supplies a [probe] for its own gauges (queue depth, rolling
    percentiles, domain-pool busy fraction).  Pure observation — the
    sampler never feeds back into request handling. *)

val sample : ?probe:(unit -> (string * float) list) -> unit -> unit
(** Record one snapshot.  [probe] returns extra [(gauge name, value)]
    pairs recorded alongside the [runtime.*] gauges. *)

type sampler

val start : ?period_s:float -> ?probe:(unit -> (string * float) list) -> unit -> sampler
(** Spawn the sampling thread (default period 1 s; first sample is
    immediate).  Probe exceptions are swallowed — telemetry must never
    take the process down.
    @raise Invalid_argument on a non-positive period. *)

val stop : sampler -> unit
(** Signal and join the sampling thread (returns within ~50 ms). *)
