module Table = Repro_util.Table
module Json = Repro_util.Json

(* Counters are atomic ints (hot-path updates from worker domains are
   lock-free); gauges and histograms carry their own mutex — their
   update paths are orders of magnitude colder than counter bumps. *)
type counter = int Atomic.t
type gauge = { g_mutex : Mutex.t; mutable value : float; mutable assigned : bool }

type histogram = {
  h_mutex : Mutex.t;
  mutable n : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  mutable bucket_counts : (int * int) list;
      (* (power-of-two exponent, count), unordered, short in practice *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register name make select =
  Mutex.lock registry_mutex;
  let found = Hashtbl.find_opt registry name in
  let result =
    match found with
    | Some inst -> (
      match select inst with
      | Some h -> Ok h
      | None ->
        Error
          (Printf.sprintf "Metrics.%s: %S already registered as a %s"
             (kind_name (make ())) name (kind_name inst)))
    | None ->
      let inst = make () in
      Hashtbl.add registry name inst;
      (match select inst with Some h -> Ok h | None -> assert false)
  in
  Mutex.unlock registry_mutex;
  match result with Ok h -> h | Error msg -> invalid_arg msg

let counter name =
  register name
    (fun () -> Counter (Atomic.make 0))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> Gauge { g_mutex = Mutex.create (); value = 0.0; assigned = false })
    (function Gauge g -> Some g | _ -> None)

let fresh_histogram () =
  { h_mutex = Mutex.create (); n = 0; sum = 0.0; lo = infinity;
    hi = neg_infinity; bucket_counts = [] }

let histogram name =
  register name
    (fun () -> Histogram (fresh_histogram ()))
    (function Histogram h -> Some h | _ -> None)

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  ignore (Atomic.fetch_and_add c by)

let value c = Atomic.get c

let set g v =
  Mutex.lock g.g_mutex;
  g.value <- v;
  g.assigned <- true;
  Mutex.unlock g.g_mutex

let gauge_value g = g.value

(* Power-of-two (octave) buckets: sample v > 0 falls in the bucket with
   upper bound 2^ceil(log2 v); v <= 0 falls in the sentinel bucket
   [min_int] rendered with bound 0. *)
let bucket_of v =
  if v <= 0.0 then min_int
  else
    let e = int_of_float (Float.ceil (Float.log2 v)) in
    (* log2 rounding can land one octave low for exact powers of two *)
    if 2.0 ** float_of_int (e - 1) >= v then e - 1 else e

let observe h v =
  Mutex.lock h.h_mutex;
  h.n <- h.n + 1;
  if Float.is_finite v then begin
    h.sum <- h.sum +. v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v;
    let b = bucket_of v in
    let rec bump = function
      | [] -> [ (b, 1) ]
      | (e, c) :: rest when e = b -> (e, c + 1) :: rest
      | pair :: rest -> pair :: bump rest
    in
    h.bucket_counts <- bump h.bucket_counts
  end;
  Mutex.unlock h.h_mutex

type histogram_stats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

let bound_of_bucket e =
  if e = min_int then 0.0 else 2.0 ** float_of_int e

let histogram_stats h =
  Mutex.lock h.h_mutex;
  let n = h.n and sum = h.sum and lo = h.lo and hi = h.hi in
  let bucket_counts = h.bucket_counts in
  Mutex.unlock h.h_mutex;
  let buckets =
    List.sort (fun (a, _) (b, _) -> Stdlib.compare (a : int) b) bucket_counts
    |> List.map (fun (e, c) -> (bound_of_bucket e, c))
  in
  {
    count = n;
    sum;
    mean = (if n = 0 then 0.0 else sum /. float_of_int n);
    min = lo;
    max = hi;
    buckets;
  }

let quantile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.quantile: q out of range";
  let { count; buckets; max = hi; _ } = histogram_stats h in
  if count = 0 then 0.0
  else begin
    let target = q *. float_of_int count in
    let rec walk acc = function
      | [] -> (match hi with hi when Float.is_finite hi -> hi | _ -> 0.0)
      | (bound, c) :: rest ->
        let acc = acc +. float_of_int c in
        if acc >= target then bound else walk acc rest
    in
    walk 0.0 buckets
  end

let names () =
  Mutex.lock registry_mutex;
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort String.compare names

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | Counter c -> Atomic.set c 0
      | Gauge g ->
        Mutex.lock g.g_mutex;
        g.value <- 0.0;
        g.assigned <- false;
        Mutex.unlock g.g_mutex
      | Histogram h ->
        Mutex.lock h.h_mutex;
        h.n <- 0;
        h.sum <- 0.0;
        h.lo <- infinity;
        h.hi <- neg_infinity;
        h.bucket_counts <- [];
        Mutex.unlock h.h_mutex)
    registry;
  Mutex.unlock registry_mutex

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_stats

let find_instrument name =
  Mutex.lock registry_mutex;
  let inst = Hashtbl.find registry name in
  Mutex.unlock registry_mutex;
  inst

let snapshot () =
  List.map
    (fun name ->
      let v =
        match find_instrument name with
        | Counter c -> Counter_value (Atomic.get c)
        | Gauge g -> Gauge_value g.value
        | Histogram h -> Histogram_value (histogram_stats h)
      in
      (name, v))
    (names ())

(* The single histogram JSON serializer — shared with Report and the
   server's stats responses so every emitter agrees on the shape.  The
   extrema sentinels (+/-inf when no finite sample was seen, e.g. an
   empty histogram or one fed only NaN/inf) have no JSON representation;
   they are omitted and restored on parse (see Report.of_json).  sum and
   mean are clamped to 0.0 in the same degenerate case so the document
   always round-trips through the lossless JSON writer. *)
let histogram_stats_fields s =
  let finite v = if Float.is_finite v then v else 0.0 in
  let extrema =
    (if Float.is_finite s.min then [ ("min", Json.Num s.min) ] else [])
    @ if Float.is_finite s.max then [ ("max", Json.Num s.max) ] else []
  in
  [ ("count", Json.Num (float_of_int s.count));
    ("sum", Json.Num (finite s.sum));
    ("mean", Json.Num (finite s.mean)) ]
  @ extrema
  @ [ ( "buckets",
        Json.List
          (List.map
             (fun (bound, c) ->
               Json.List [ Json.Num bound; Json.Num (float_of_int c) ])
             s.buckets) ) ]

let to_json () =
  Json.List
    (List.map
       (fun (name, v) ->
         let common kind = [ ("name", Json.Str name); ("kind", Json.Str kind) ] in
         match v with
         | Counter_value n -> Json.Obj (common "counter" @ [ ("count", Json.Num (float_of_int n)) ])
         | Gauge_value x -> Json.Obj (common "gauge" @ [ ("value", Json.Num x) ])
         | Histogram_value s -> Json.Obj (common "histogram" @ histogram_stats_fields s))
       (snapshot ()))

let dump_json () = Json.to_string_pretty (to_json ())

let dump () =
  let t =
    Table.create
      ~headers:[ "metric"; "kind"; "count"; "value/mean"; "min"; "max"; "p90" ]
  in
  let blank = "-" in
  List.iter
    (fun name ->
      match find_instrument name with
      | Counter c ->
        let n = Atomic.get c in
        Table.add_row t
          [ name; "counter"; Table.cell_i n; Table.cell_i n; blank;
            blank; blank ]
      | Gauge g ->
        Table.add_row t
          [ name; "gauge"; (if g.assigned then "1" else "0");
            Table.cell_f g.value; blank; blank; blank ]
      | Histogram h ->
        let s = histogram_stats h in
        let f v = if Float.is_finite v then Table.cell_f v else blank in
        Table.add_row t
          [ name; "histogram"; Table.cell_i s.count; Table.cell_f s.mean;
            f s.min; f s.max; Table.cell_f (quantile h 0.9) ])
    (names ());
  Table.render t
