let srcs : (string, Logs.src) Hashtbl.t = Hashtbl.create 16

let src name =
  match Hashtbl.find_opt srcs name with
  | Some s -> s
  | None ->
    let s = Logs.Src.create name ~doc:(name ^ " log source") in
    Hashtbl.add srcs name s;
    s

let setup ?(level = Some Logs.Warning) () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" | "off" | "none" -> Ok None
  | "app" -> Ok (Some Logs.App)
  | "error" -> Ok (Some Logs.Error)
  | "warning" | "warn" -> Ok (Some Logs.Warning)
  | "info" -> Ok (Some Logs.Info)
  | "debug" -> Ok (Some Logs.Debug)
  | _ -> Error (Printf.sprintf "unknown log level %S" s)

let level_names = [ "quiet"; "app"; "error"; "warning"; "info"; "debug" ]
