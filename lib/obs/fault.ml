module Verrors = Repro_util.Verrors
module Rng = Repro_util.Rng

type seam = Parser | Waveform_cache | Noise_table | Pool_task | Report_writer

let seam_name = function
  | Parser -> "parser"
  | Waveform_cache -> "waveform-cache"
  | Noise_table -> "noise-table"
  | Pool_task -> "pool-task"
  | Report_writer -> "report-writer"

let all_seams = [ Parser; Waveform_cache; Noise_table; Pool_task; Report_writer ]

let seam_of_name name =
  List.find_opt (fun s -> String.equal (seam_name s) name) all_seams

let seam_index = function
  | Parser -> 0
  | Waveform_cache -> 1
  | Noise_table -> 2
  | Pool_task -> 3
  | Report_writer -> 4

type site_config = { prob : float; rng : Rng.t; rng_mutex : Mutex.t }

type config = { sites : site_config option array }

(* [None] = injection disabled; the single-atomic-load fast path. *)
let state : config option Atomic.t = Atomic.make None

let injected_c = Metrics.counter "fault.injected"
let trip_count = Atomic.make 0

let parse_spec spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let seed = ref 0 in
  let seams = ref [] in
  let rec go = function
    | [] -> Ok ()
    | entry :: rest -> (
      let name, value =
        match String.index_opt entry ':' with
        | None -> (entry, None)
        | Some i ->
          ( String.sub entry 0 i,
            Some (String.sub entry (i + 1) (String.length entry - i - 1)) )
      in
      match (name, value) with
      | "seed", Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some s ->
          seed := s;
          go rest
        | None -> Error (Printf.sprintf "bad seed %S" (String.trim v)))
      | "seed", None -> Error "seed needs a value (seed:<int>)"
      | name, value -> (
        match seam_of_name name with
        | None ->
          Error
            (Printf.sprintf "unknown seam %S (expected %s or seed:<int>)" name
               (String.concat ", " (List.map seam_name all_seams)))
        | Some seam -> (
          match value with
          | None ->
            seams := (seam, 1.0) :: !seams;
            go rest
          | Some v -> (
            match float_of_string_opt (String.trim v) with
            | Some p when p >= 0.0 && p <= 1.0 ->
              seams := (seam, p) :: !seams;
              go rest
            | Some _ | None ->
              Error
                (Printf.sprintf "bad probability %S for seam %s (want [0,1])"
                   (String.trim v) name)))))
  in
  match go entries with
  | Error _ as e -> e
  | Ok () ->
    if !seams = [] then Ok None
    else begin
      let sites = Array.make (List.length all_seams) None in
      List.iter
        (fun (seam, prob) ->
          sites.(seam_index seam) <-
            Some
              {
                prob;
                (* Independent stream per seam: stream index = seam. *)
                rng = Rng.of_instance ~seed:!seed (seam_index seam);
                rng_mutex = Mutex.create ();
              })
        !seams;
      Ok (Some { sites })
    end

let set_spec spec =
  match parse_spec spec with
  | Ok cfg ->
    Atomic.set state cfg;
    Atomic.set trip_count 0;
    Ok ()
  | Error _ as e -> e

let clear () = Atomic.set state None

(* Read WAVEMIN_FAULTS once; a malformed value warns and disables. *)
let env_loaded = ref false

let ensure_env_loaded () =
  if not !env_loaded then begin
    env_loaded := true;
    match Sys.getenv_opt "WAVEMIN_FAULTS" with
    | None | Some "" -> ()
    | Some spec -> (
      match set_spec spec with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf
          "wavemin: ignoring malformed WAVEMIN_FAULTS=%S: %s\n%!" spec msg)
  end

let active () =
  ensure_env_loaded ();
  Atomic.get state <> None

let trips () = Atomic.get trip_count

let trip seam ~site =
  ensure_env_loaded ();
  match Atomic.get state with
  | None -> ()
  | Some cfg -> (
    match cfg.sites.(seam_index seam) with
    | None -> ()
    | Some sc ->
      let fire =
        if sc.prob >= 1.0 then true
        else begin
          Mutex.lock sc.rng_mutex;
          let draw = Rng.float sc.rng ~bound:1.0 in
          Mutex.unlock sc.rng_mutex;
          draw < sc.prob
        end
      in
      if fire then begin
        Metrics.incr injected_c;
        Atomic.incr trip_count;
        Verrors.fail ~code:Verrors.Fault_injected ~stage:site
          ~subject:("seam " ^ seam_name seam)
          ~hints:[ "fault injected by WAVEMIN_FAULTS; unset it for real runs" ]
          (Printf.sprintf "injected fault at %s" site)
      end)
