(* Rolling-window histogram: a ring of time-bucketed sub-histograms.

   The window of [window_s] seconds is split into [slots] equal slices;
   each observation lands in the slice owning its timestamp and a slice
   is lazily cleared the first time it is reused for a newer period, so
   neither observation nor query ever walks more than the ring.  Stats
   aggregate only the slices whose period falls inside the window, which
   is what makes p50/p95/p99 reflect "the last N seconds" rather than
   the process lifetime (the cumulative [Metrics.histogram] keeps that
   role).

   Value buckets are quarter-octave log2 (four buckets per doubling), so
   a reported percentile is exact to within ~19% of the true value —
   plenty for latency dashboards — while a slice stays a fixed 200-int
   array.  Non-positive and non-finite samples land in the underflow
   bucket (index 0) and are excluded from sum/extrema, mirroring
   [Metrics.observe]. *)

(* 200 quarter-octave buckets centred so index OFFSET holds values in
   (2^-0.25, 1]; the span covers ~2^-20 .. 2^30 — microseconds to weeks
   when samples are milliseconds. *)
let nbuckets = 200
let offset = 80

let bucket_of v =
  if not (Float.is_finite v) || v <= 0.0 then 0
  else begin
    let e = int_of_float (Float.ceil (4.0 *. Float.log2 v)) in
    (* rounding can land one quarter-octave low for exact bounds *)
    let e = if 2.0 ** (float_of_int (e - 1) /. 4.0) >= v then e - 1 else e in
    Stdlib.min (nbuckets - 1) (Stdlib.max 1 (e + offset))
  end

let bound_of i =
  if i = 0 then 0.0 else 2.0 ** (float_of_int (i - offset) /. 4.0)

type slot = {
  mutable period : int;  (* floor (t / slot_s) when last written; -1 fresh *)
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
  counts : int array;
}

type t = {
  mutex : Mutex.t;
  window_s : float;
  slot_s : float;
  ring : slot array;
  mutable first_s : float;  (* first-ever observation time; for rate warm-up *)
  mutable total : int;  (* lifetime observation count *)
}

let create ?(window_s = 60.0) ?(slots = 12) () =
  if window_s <= 0.0 then invalid_arg "Rolling.create: window_s <= 0";
  if slots < 1 then invalid_arg "Rolling.create: slots < 1";
  {
    mutex = Mutex.create ();
    window_s;
    slot_s = window_s /. float_of_int slots;
    ring =
      Array.init slots (fun _ ->
          { period = -1; s_count = 0; s_sum = 0.0; s_min = infinity;
            s_max = neg_infinity; counts = Array.make nbuckets 0 });
    first_s = nan;
    total = 0;
  }

let window_seconds t = t.window_s

let clear_slot s period =
  s.period <- period;
  s.s_count <- 0;
  s.s_sum <- 0.0;
  s.s_min <- infinity;
  s.s_max <- neg_infinity;
  Array.fill s.counts 0 nbuckets 0

let slot_for t now =
  let period = int_of_float (Float.floor (now /. t.slot_s)) in
  let s = t.ring.(((period mod Array.length t.ring) + Array.length t.ring)
                  mod Array.length t.ring) in
  (* Clock skew: a timestamp older than what the slot already holds
     (period < s.period) must not resurrect the stale period — clearing
     here would silently wipe newer samples sharing the ring index.
     Fold the late sample into the newer slot instead; it is clamped
     forward in time, never lost, and window stats stay consistent. *)
  if period > s.period then clear_slot s period;
  s

let observe ?now t v =
  let now = match now with Some n -> n | None -> Clock.now_s () in
  Mutex.lock t.mutex;
  if Float.is_nan t.first_s then t.first_s <- now;
  t.total <- t.total + 1;
  let s = slot_for t now in
  s.s_count <- s.s_count + 1;
  if Float.is_finite v then begin
    s.s_sum <- s.s_sum +. v;
    if v < s.s_min then s.s_min <- v;
    if v > s.s_max then s.s_max <- v
  end;
  s.counts.(bucket_of v) <- s.counts.(bucket_of v) + 1;
  Mutex.unlock t.mutex

type stats = {
  count : int;  (** Samples inside the window. *)
  total : int;  (** Lifetime samples, window-independent. *)
  rate : float;  (** Samples per second over the covered window. *)
  mean : float;
  min : float;  (** 0 when the window is empty. *)
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let empty_stats total =
  { count = 0; total; rate = 0.0; mean = 0.0; min = 0.0; max = 0.0;
    p50 = 0.0; p90 = 0.0; p95 = 0.0; p99 = 0.0 }

let stats ?now t =
  let now = match now with Some n -> n | None -> Clock.now_s () in
  Mutex.lock t.mutex;
  let current = int_of_float (Float.floor (now /. t.slot_s)) in
  let nslots = Array.length t.ring in
  let counts = Array.make nbuckets 0 in
  let count = ref 0 and sum = ref 0.0 in
  let mn = ref infinity and mx = ref neg_infinity in
  let oldest = ref Stdlib.max_int in
  Array.iter
    (fun s ->
      if s.period >= 0 && s.period > current - nslots && s.period <= current
      then begin
        count := !count + s.s_count;
        sum := !sum +. s.s_sum;
        if s.s_min < !mn then mn := s.s_min;
        if s.s_max > !mx then mx := s.s_max;
        if s.s_count > 0 && s.period < !oldest then oldest := s.period;
        Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.counts
      end)
    t.ring;
  let total = t.total and first_s = t.first_s in
  Mutex.unlock t.mutex;
  if !count = 0 then empty_stats total
  else begin
    let mn = if Float.is_finite !mn then !mn else 0.0 in
    let mx = if Float.is_finite !mx then !mx else 0.0 in
    (* Quantile: bucket upper bound at the cumulative target, clamped to
       the observed extrema (tightens the coarse first/last bucket). *)
    let quantile q =
      let target = q *. float_of_int !count in
      let rec walk acc i =
        if i >= nbuckets then mx
        else begin
          let acc = acc +. float_of_int counts.(i) in
          if acc >= target && counts.(i) > 0 then
            Stdlib.min mx (Stdlib.max mn (bound_of i))
          else walk acc (i + 1)
        end
      in
      walk 0.0 0
    in
    (* The rate denominator is the window actually covered: from the
       start of the oldest populated slice (or the first observation,
       early in the process lifetime) to now, capped at the window. *)
    let span =
      let from_slot =
        if !oldest = Stdlib.max_int then t.window_s
        else now -. (float_of_int !oldest *. t.slot_s)
      in
      let covered = Stdlib.min t.window_s from_slot in
      let covered =
        if Float.is_nan first_s then covered
        else Stdlib.min covered (Stdlib.max (now -. first_s) t.slot_s)
      in
      Stdlib.max covered (t.slot_s *. 0.5)
    in
    {
      count = !count;
      total;
      rate = float_of_int !count /. span;
      mean = !sum /. float_of_int !count;
      min = mn;
      max = mx;
      p50 = quantile 0.5;
      p90 = quantile 0.9;
      p95 = quantile 0.95;
      p99 = quantile 0.99;
    }
  end

let reset t =
  Mutex.lock t.mutex;
  Array.iter (fun s -> clear_slot s (-1)) t.ring;
  t.first_s <- nan;
  t.total <- 0;
  Mutex.unlock t.mutex

let stats_json (s : stats) =
  let module Json = Repro_util.Json in
  Json.Obj
    [ ("count", Json.Num (float_of_int s.count));
      ("total", Json.Num (float_of_int s.total));
      ("rate_per_s", Json.Num s.rate);
      ("mean", Json.Num s.mean);
      ("min", Json.Num s.min);
      ("max", Json.Num s.max);
      ("p50", Json.Num s.p50);
      ("p90", Json.Num s.p90);
      ("p95", Json.Num s.p95);
      ("p99", Json.Num s.p99) ]
