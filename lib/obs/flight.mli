(** In-memory solver flight recorder.

    A bounded ring of structured events capturing what the solve
    {e did} — zone timelines, per-row label statistics, fallback
    transitions with their triggering error codes, budget trips, cache
    and lock contention — cheap enough to leave on in production and
    dumped as versioned JSON for post-mortem forensics ([wavemin
    explain], the server's black-box dumps).

    Like {!Trace} and {!Metrics} the recorder is a process-wide
    singleton behind an enable flag: disabled (the default), {!record}
    is a single atomic load and no allocation, so instrumented hot
    paths cost nothing.  Enabled, each event takes one mutex-guarded
    ring store; the ring is preallocated and old events are overwritten
    once capacity is reached ({!recorded} minus the ring length is the
    number dropped).

    The recorder observes; it never influences: results and responses
    are bit-identical with recording on or off. *)

module Json := Repro_util.Json

(** {1 Events} *)

type kind =
  | Solve_start of { benchmark : string; algorithm : string }
  | Solve_end of {
      benchmark : string;
      algorithm : string;
      ok : bool;
      wall_ms : float;
    }
  | Fallback of {
      from_alg : string;
      to_alg : string option;  (** [None]: chain exhausted. *)
      code : string;  (** The triggering {!Repro_util.Verrors.code}. *)
      message : string;
    }
  | Window of {
      kappa_ps : float;
      feasible : int;  (** Feasible arrival intervals after coalescing. *)
      min_width_ps : float;  (** Tightest window over sinks; may be <= 0. *)
      earliest_leaf : int;  (** Sink whose candidates end earliest... *)
      earliest_ps : float;  (** ...at this arrival time. *)
      latest_leaf : int;  (** Sink whose candidates start latest... *)
      latest_ps : float;  (** ...at this arrival time. *)
    }
  | Zone_start of { cls : int; zone : int; sinks : int }
  | Zone_end of {
      cls : int;
      zone : int;
      peak_ua : float;
      capped : bool;
      wall_ms : float;
    }
  | Label_row of {
      row : int;
      extended : int;  (** Labels created by extension. *)
      kept : int;  (** Labels surviving all pruning. *)
      pruned : int;  (** Dropped by ε-grid + dominance pruning. *)
      capped : int;  (** Dropped by the admissible-projection cap. *)
    }
  | Budget_trip of { reason : string; labels_used : int }
  | Cache of { cache : string; outcome : string; key : string }
  | Contention of { resource : string; wait_ms : float }
  | Sa_move of {
      zone : int;
      stage : int;  (** 1-based within the current (re)start. *)
      temperature : float;
      proposed : int;  (** Proposals this stage. *)
      accepted : int;
      objective : float;  (** Zone objective after the stage; uA. *)
    }  (** One annealing stage summary (per zone). *)
  | Sa_restart of {
      zone : int;
      restart : int;  (** 1-based restart ordinal. *)
      objective : float;  (** Objective of the reheated best state. *)
    }
  | Portfolio_winner of {
      winner : string;  (** Winning algorithm name. *)
      losers : string list;  (** The beaten (or failed) members. *)
      wall_ms : float;  (** Total portfolio wall time. *)
    }
  | Warm_start of {
      benchmark : string;
      moves : int;  (** Proposals spent polishing the cached solution. *)
      objective : float;  (** Final predicted peak; uA. *)
    }  (** A solve that annealed from a cached assignment. *)
  | Note of { name : string; attrs : (string * string) list }

type event = {
  seq : int;  (** Monotonic since the last {!clear}. *)
  t_ns : int64;  (** Monotonic clock, {!Clock.now_ns} scale. *)
  domain : int;  (** Recording domain's id. *)
  kind : kind;
}

(** {1 Recording} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val record : kind -> unit
(** No-op (one atomic load) when disabled.  Callers building expensive
    payloads should guard with [if Flight.enabled () then ...]. *)

val set_capacity : int -> unit
(** Resize the ring (default 4096 events); clears it.
    @raise Invalid_argument when < 1. *)

val capacity : unit -> int

val clear : unit -> unit
(** Drop all events and reset {!recorded}; the enable flag persists. *)

val recorded : unit -> int
(** Events recorded since the last {!clear} (including overwritten). *)

val events : unit -> event list
(** Ring contents, oldest first. *)

(** {1 Serialization}

    The dump is versioned: [{"schema": "wavemin-flight", "version": 1,
    "capacity", "recorded", "dropped", "events": [...]}], each event an
    object with ["seq"], ["t_ms"] (milliseconds since the oldest event
    in the ring), ["domain"], ["kind"] and the kind's fields. *)

val schema_name : string
val schema_version : int

val to_json : unit -> Json.t

val write : string -> (unit, string) result
(** Serialize the ring to a file (compact JSON, trailing newline). *)
