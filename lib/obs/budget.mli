(** Wall-clock / label budgets with cooperative cancellation.

    A budget bounds the effort one optimization run may spend: an
    optional wall-clock deadline and an optional cap on the total number
    of MOSP labels extended ({!Repro_mosp.Warburton} charges per row).
    Checks are cooperative: hot loops call {!check} (or the ambient
    {!check_current}) at natural yield points — every Warburton row,
    every {!Repro_par.Par} task — and the first check past the limit
    raises {!Repro_util.Verrors.Error} with code [Budget_exhausted].
    Once tripped, the budget is sticky: every later check raises too, so
    in-flight parallel batches drain quickly instead of finishing their
    full work.

    Exceeding a budget is deterministic for label limits (label counts
    do not depend on the job count) and inherently timing-dependent for
    wall-clock deadlines; either way the flow records the downgrade as a
    [degradation] instead of failing the run.

    The {e ambient} budget is a thread-scoped slot ({!with_current})
    read by the solver stack; {!Repro_par.Par} propagates the submitting
    thread's budget into every pool task, so concurrent server executors
    never observe each other's budgets.  With no budget installed
    anywhere, every ambient check is a single atomic load and a compare
    — the default path stays bit-identical. *)

type t

val create : ?wall_ms:float -> ?deadline_ns:int64 -> ?max_labels:int -> unit -> t
(** A budget with the given limits; omitted limits are unlimited.
    The wall-clock deadline starts at creation time.  [deadline_ns] is
    an {e absolute} end-to-end request deadline on the {!Clock.now_ns}
    scale (the [wavemin serve] data plane stamps it at parse time and
    threads the remainder here): it trips with code [Deadline_exceeded]
    rather than [Budget_exhausted] and takes precedence, so a shed
    request is reported as abandoned-by-sender, not as a solver-side
    downgrade.
    @raise Invalid_argument on non-positive limits. *)

val check : t -> unit
(** Raise [Verrors.Error] with code [Budget_exhausted] (wall/label
    limits) or [Deadline_exceeded] (request deadline) if a limit has
    been reached (or the budget already tripped); otherwise return. *)

val charge_labels : t -> int -> unit
(** Add extended-label work to the tally, then {!check}. *)

val exceeded : t -> string option
(** The trip reason, without raising; [None] while within budget. *)

val labels_used : t -> int

(** {1 Ambient budget} *)

val with_current : t -> (unit -> 'a) -> 'a
(** Install a budget as the calling thread's ambient budget for the
    duration of the thunk (restoring the previous one afterwards, also
    on exceptions).  Pool tasks submitted from inside the thunk observe
    the installed budget ({!Repro_par.Par} re-installs it around each
    task); unrelated threads never do. *)

val current : unit -> t option

val check_current : unit -> unit
(** {!check} on the ambient budget; no-op when none is installed. *)

val charge_labels_current : int -> unit
