module Json = Repro_util.Json
module Table = Repro_util.Table

let schema_version = 1

type status = Completed | Failed of string

type manifest = {
  experiment : string;
  suite : string list;
  git : string option;
  seeds : (string * int) list;
  config : (string * string) list;
  environment : (string * string) list;
  ocaml_version : string;
  word_size : int;
  os_type : string;
}

type sample = {
  benchmark : string;
  algorithm : string;
  quality : (string * float) list;
  runtime : (string * float) list;
}

type stage = { stage : string; wall_s : float; cpu_s : float }

type degradation = {
  benchmark : string;
  algorithm : string;
  from_alg : string;
  to_alg : string option;
  code : string;
  detail : string;
}

type t = {
  version : int;
  manifest : manifest;
  status : status;
  samples : sample list;
  stages : stage list;
  degradations : degradation list;
  registry : (string * Metrics.value) list;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

type builder = {
  mutable b_manifest : manifest;
  mutable b_status : status;
  mutable b_samples : sample list;  (* reversed *)
  mutable b_stages : stage list;  (* reversed *)
  mutable b_degradations : degradation list;  (* reversed *)
}

let create ~experiment ?(suite = []) ?(seeds = []) ?(config = [])
    ?(environment = []) ?git () =
  {
    b_manifest =
      {
        experiment;
        suite;
        git;
        seeds;
        config;
        environment;
        ocaml_version = Sys.ocaml_version;
        word_size = Sys.word_size;
        os_type = Sys.os_type;
      };
    b_status = Completed;
    b_samples = [];
    b_stages = [];
    b_degradations = [];
  }

let add_environment b kvs =
  let m = b.b_manifest in
  let dropped =
    List.filter (fun (k, _) -> not (List.mem_assoc k kvs)) m.environment
  in
  b.b_manifest <- { m with environment = dropped @ kvs }

let add_sample b ~benchmark ~algorithm ?(quality = []) ?(runtime = []) () =
  b.b_samples <- { benchmark; algorithm; quality; runtime } :: b.b_samples

let add_stage b ~stage ~wall_s ~cpu_s =
  b.b_stages <- { stage; wall_s; cpu_s } :: b.b_stages

let add_degradation b d = b.b_degradations <- d :: b.b_degradations

let record_error b msg =
  match b.b_status with Completed -> b.b_status <- Failed msg | Failed _ -> ()

let finalize ?registry b =
  let registry =
    match registry with Some r -> r | None -> Metrics.snapshot ()
  in
  {
    version = schema_version;
    manifest = b.b_manifest;
    status = b.b_status;
    samples = List.rev b.b_samples;
    stages = List.rev b.b_stages;
    degradations = List.rev b.b_degradations;
    registry;
  }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let json_of_float_fields fields =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) fields)

let to_json r =
  let m = r.manifest in
  let manifest =
    Json.Obj
      ([ ("experiment", Json.Str m.experiment);
         ("suite", Json.List (List.map (fun s -> Json.Str s) m.suite)) ]
      @ (match m.git with
        | None -> []
        | Some g -> [ ("git", Json.Str g) ])
      @ [ ( "seeds",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) m.seeds)
          );
          ("config", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.config));
          ( "environment",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.environment) );
          ("ocaml_version", Json.Str m.ocaml_version);
          ("word_size", Json.Num (float_of_int m.word_size));
          ("os_type", Json.Str m.os_type) ])
  in
  let status =
    match r.status with
    | Completed -> Json.Str "ok"
    | Failed msg -> Json.Obj [ ("error", Json.Str msg) ]
  in
  let samples =
    Json.List
      (List.map
         (fun (s : sample) ->
           Json.Obj
             [ ("benchmark", Json.Str s.benchmark);
               ("algorithm", Json.Str s.algorithm);
               ("quality", json_of_float_fields s.quality);
               ("runtime", json_of_float_fields s.runtime) ])
         r.samples)
  in
  let stages =
    Json.List
      (List.map
         (fun st ->
           Json.Obj
             [ ("stage", Json.Str st.stage); ("wall_s", Json.Num st.wall_s);
               ("cpu_s", Json.Num st.cpu_s) ])
         r.stages)
  in
  let registry =
    Json.List
      (List.map
         (fun (name, v) ->
           let common kind =
             [ ("name", Json.Str name); ("kind", Json.Str kind) ]
           in
           match v with
           | Metrics.Counter_value n ->
             Json.Obj (common "counter" @ [ ("count", Json.Num (float_of_int n)) ])
           | Metrics.Gauge_value x ->
             Json.Obj (common "gauge" @ [ ("value", Json.Num x) ])
           | Metrics.Histogram_value s ->
             Json.Obj (common "histogram" @ Metrics.histogram_stats_fields s))
         r.registry)
  in
  (* Omitted when empty so unaffected reports stay byte-identical to
     files written before the block existed. *)
  let degradations =
    match r.degradations with
    | [] -> []
    | ds ->
      [ ( "degradations",
          Json.List
            (List.map
               (fun d ->
                 Json.Obj
                   ([ ("benchmark", Json.Str d.benchmark);
                      ("algorithm", Json.Str d.algorithm);
                      ("from", Json.Str d.from_alg) ]
                   @ (match d.to_alg with
                     | None -> []
                     | Some a -> [ ("to", Json.Str a) ])
                   @ [ ("code", Json.Str d.code);
                       ("detail", Json.Str d.detail) ]))
               ds) ) ]
  in
  Json.Obj
    ([ ("schema_version", Json.Num (float_of_int r.version));
       ("manifest", manifest); ("status", status); ("samples", samples);
       ("stages", stages) ]
    @ degradations
    @ [ ("registry", registry) ])

let to_string r = Json.to_string_pretty (to_json r)

exception Shape of string

let shape fmt = Printf.ksprintf (fun msg -> raise (Shape msg)) fmt

let get name extract j =
  match Json.member name j with
  | None -> shape "missing field %S" name
  | Some v -> (
    match extract v with
    | Some x -> x
    | None -> shape "field %S has the wrong type" name)

let get_opt name extract j =
  match Json.member name j with
  | None -> None
  | Some v -> (
    match extract v with
    | Some x -> Some x
    | None -> shape "field %S has the wrong type" name)

let float_fields name j =
  get name Json.obj_value j
  |> List.map (fun (k, v) ->
         match Json.float_value v with
         | Some x -> (k, x)
         | None -> shape "%S/%S is not a number" name k)

let of_json j =
  match
    let version = get "schema_version" Json.int_value j in
    if version <> schema_version then
      shape "unsupported schema_version %d (expected %d)" version
        schema_version;
    let mj = match Json.member "manifest" j with
      | Some m -> m
      | None -> shape "missing field \"manifest\""
    in
    let manifest =
      {
        experiment = get "experiment" Json.string_value mj;
        suite =
          get "suite" Json.list_value mj
          |> List.map (fun v ->
                 match Json.string_value v with
                 | Some s -> s
                 | None -> shape "suite entry is not a string");
        git = get_opt "git" Json.string_value mj;
        seeds =
          get "seeds" Json.obj_value mj
          |> List.map (fun (k, v) ->
                 match Json.int_value v with
                 | Some n -> (k, n)
                 | None -> shape "seed %S is not an integer" k);
        config =
          get "config" Json.obj_value mj
          |> List.map (fun (k, v) ->
                 match Json.string_value v with
                 | Some s -> (k, s)
                 | None -> shape "config %S is not a string" k);
        environment =
          (* Absent in reports written before the block existed. *)
          (match get_opt "environment" Json.obj_value mj with
          | None -> []
          | Some kvs ->
            List.map
              (fun (k, v) ->
                match Json.string_value v with
                | Some s -> (k, s)
                | None -> shape "environment %S is not a string" k)
              kvs);
        ocaml_version = get "ocaml_version" Json.string_value mj;
        word_size = get "word_size" Json.int_value mj;
        os_type = get "os_type" Json.string_value mj;
      }
    in
    let status =
      match Json.member "status" j with
      | Some (Json.Str "ok") -> Completed
      | Some (Json.Obj _ as o) -> Failed (get "error" Json.string_value o)
      | Some _ | None -> shape "bad \"status\""
    in
    let samples =
      get "samples" Json.list_value j
      |> List.map (fun sj ->
             {
               benchmark = get "benchmark" Json.string_value sj;
               algorithm = get "algorithm" Json.string_value sj;
               quality = float_fields "quality" sj;
               runtime = float_fields "runtime" sj;
             })
    in
    let stages =
      get "stages" Json.list_value j
      |> List.map (fun sj ->
             {
               stage = get "stage" Json.string_value sj;
               wall_s = get "wall_s" Json.float_value sj;
               cpu_s = get "cpu_s" Json.float_value sj;
             })
    in
    let degradations =
      (* Absent in reports written before the block existed. *)
      match get_opt "degradations" Json.list_value j with
      | None -> []
      | Some ds ->
        List.map
          (fun dj ->
            {
              benchmark = get "benchmark" Json.string_value dj;
              algorithm = get "algorithm" Json.string_value dj;
              from_alg = get "from" Json.string_value dj;
              to_alg = get_opt "to" Json.string_value dj;
              code = get "code" Json.string_value dj;
              detail = get "detail" Json.string_value dj;
            })
          ds
    in
    let registry =
      get "registry" Json.list_value j
      |> List.map (fun ij ->
             let name = get "name" Json.string_value ij in
             let v =
               match get "kind" Json.string_value ij with
               | "counter" -> Metrics.Counter_value (get "count" Json.int_value ij)
               | "gauge" -> Metrics.Gauge_value (get "value" Json.float_value ij)
               | "histogram" ->
                 Metrics.Histogram_value
                   {
                     Metrics.count = get "count" Json.int_value ij;
                     sum = get "sum" Json.float_value ij;
                     mean = get "mean" Json.float_value ij;
                     min =
                       Option.value ~default:infinity
                         (get_opt "min" Json.float_value ij);
                     max =
                       Option.value ~default:neg_infinity
                         (get_opt "max" Json.float_value ij);
                     buckets =
                       get "buckets" Json.list_value ij
                       |> List.map (function
                            | Json.List [ Json.Num bound; Json.Num c ] ->
                              (bound, int_of_float c)
                            | _ -> shape "bad histogram bucket in %S" name);
                   }
               | k -> shape "unknown instrument kind %S" k
             in
             (name, v))
    in
    { version; manifest; status; samples; stages; degradations; registry }
  with
  | r -> Ok r
  | exception Shape msg -> Error msg

let of_string s =
  match Json.of_string s with
  | Error msg -> Error ("JSON syntax: " ^ msg)
  | Ok j -> of_json j

let write path r =
  Fault.trip Fault.Report_writer ~site:"report.write";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string r);
      output_char oc '\n')

let read path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

(* Stdlib.compare: structural, and treats NaN as equal to itself — the
   right notion for "parses back to the same report". *)
let equal a b = Stdlib.compare a b = 0

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)

type tolerances = {
  quality_rtol : float;
  quality_atol : float;
  runtime_ratio : float;
  runtime_slack_s : float;
}

let default_tolerances =
  {
    quality_rtol = 1e-6;
    quality_atol = 1e-9;
    runtime_ratio = 5.0;
    runtime_slack_s = 0.25;
  }

type verdict =
  | Unchanged
  | Quality_regression
  | Runtime_regression
  | Missing_in_new
  | Only_in_new
  | Errored

type change = {
  path : string;
  baseline : float option;
  candidate : float option;
  verdict : verdict;
}

type kind = Quality | Runtime

(* Flatten a report into path -> (kind, value), insertion-ordered. *)
let flatten r =
  List.concat_map
    (fun (s : sample) ->
      let prefix = s.benchmark ^ "/" ^ s.algorithm in
      List.map
        (fun (k, v) -> (prefix ^ "/quality/" ^ k, (Quality, v)))
        s.quality
      @ List.map
          (fun (k, v) -> (prefix ^ "/runtime/" ^ k, (Runtime, v)))
          s.runtime)
    r.samples
  @ List.concat_map
      (fun st ->
        [ ("stages/" ^ st.stage ^ "/wall_s", (Runtime, st.wall_s));
          ("stages/" ^ st.stage ^ "/cpu_s", (Runtime, st.cpu_s)) ])
      r.stages

let diff ?(tol = default_tolerances) ~baseline ~candidate () =
  if baseline.manifest.experiment <> candidate.manifest.experiment then
    [ {
        path = "manifest/experiment";
        baseline = None;
        candidate = None;
        verdict = Errored;
      } ]
  else begin
    let status_changes =
      match candidate.status with
      | Completed -> []
      | Failed _ ->
        [ { path = "status"; baseline = None; candidate = None;
            verdict = Errored } ]
    in
    let base = flatten baseline in
    let cand = flatten candidate in
    let cand_tbl = Hashtbl.create 64 in
    List.iter (fun (path, kv) -> Hashtbl.replace cand_tbl path kv) cand;
    let base_paths = Hashtbl.create 64 in
    List.iter (fun (path, _) -> Hashtbl.replace base_paths path ()) base;
    let compared =
      List.map
        (fun (path, (kind, b)) ->
          match Hashtbl.find_opt cand_tbl path with
          | None ->
            { path; baseline = Some b; candidate = None;
              verdict = Missing_in_new }
          | Some (_, c) ->
            let verdict =
              match kind with
              | Quality ->
                if
                  Float.abs (c -. b)
                  <= tol.quality_atol +. (tol.quality_rtol *. Float.abs b)
                  || (Float.is_nan b && Float.is_nan c)
                then Unchanged
                else Quality_regression
              | Runtime ->
                (* Only slowdowns regress, and only when they are both a
                   large ratio and a nontrivial absolute amount. *)
                if
                  c > b *. tol.runtime_ratio
                  && c -. b > tol.runtime_slack_s
                then Runtime_regression
                else Unchanged
            in
            { path; baseline = Some b; candidate = Some c; verdict })
        base
    in
    let additions =
      List.filter_map
        (fun (path, (_, c)) ->
          if Hashtbl.mem base_paths path then None
          else
            Some
              { path; baseline = None; candidate = Some c;
                verdict = Only_in_new })
        cand
    in
    status_changes @ compared @ additions
  end

let failures changes =
  List.filter
    (fun c ->
      match c.verdict with
      | Unchanged | Only_in_new -> false
      | Quality_regression | Runtime_regression | Missing_in_new | Errored ->
        true)
    changes

let verdict_name = function
  | Unchanged -> "ok"
  | Quality_regression -> "QUALITY REGRESSION"
  | Runtime_regression -> "RUNTIME REGRESSION"
  | Missing_in_new -> "MISSING"
  | Only_in_new -> "new"
  | Errored -> "RUN FAILED"

let render_diff changes =
  let bad = failures changes in
  let additions =
    List.filter (fun c -> c.verdict = Only_in_new) changes
  in
  let compared =
    List.length (List.filter (fun c -> c.baseline <> None) changes)
  in
  let buf = Buffer.create 512 in
  let listed = bad @ additions in
  if listed <> [] then begin
    let t =
      Table.create ~headers:[ "metric"; "baseline"; "candidate"; "delta"; "verdict" ]
    in
    List.iter
      (fun c ->
        let cell = function
          | None -> "-"
          | Some v -> Json.float_to_string v
        in
        let delta =
          match (c.baseline, c.candidate) with
          | Some b, Some c' when b <> 0.0 ->
            Printf.sprintf "%+.2f%%" (100.0 *. (c' -. b) /. Float.abs b)
          | _ -> "-"
        in
        Table.add_row t
          [ c.path; cell c.baseline; cell c.candidate; delta;
            verdict_name c.verdict ])
      listed;
    Buffer.add_string buf (Table.render t)
  end;
  Buffer.add_string buf
    (if bad = [] then
       Printf.sprintf "OK: %d metrics compared, no regressions%s\n" compared
         (match additions with
         | [] -> ""
         | l -> Printf.sprintf " (%d new metrics)" (List.length l))
     else
       Printf.sprintf "FAIL: %d regression(s) out of %d compared metrics\n"
         (List.length bad) compared);
  Buffer.contents buf
