(* Prometheus text-format exposition (version 0.0.4) of the metrics
   registry.

   The registry's dotted names ("server.latency_ms") are mapped onto the
   Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]* by replacing every
   illegal character with '_' and prefixing "wavemin_", which also
   namespaces the series when several exporters share a scrape target.
   Counters additionally get the conventional "_total" suffix.

   Log-scale histograms are rendered as the native histogram triplet:
   cumulative "_bucket{le=...}" series per power-of-two bound, the
   mandatory le="+Inf" bucket, and "_sum"/"_count".  Samples the
   registry saw as non-finite are counted but never summed, so the
   emitted sum is always finite (scrapers reject NaN/inf in practice
   even though the grammar allows them). *)

let is_legal first c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | '0' .. '9' -> not first
  | _ -> false

let metric_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "wavemin_";
  String.iter
    (fun c -> Buffer.add_char buf (if is_legal false c then c else '_'))
    name;
  Buffer.contents buf

let num v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Repro_util.Json.float_to_string v

let expose ?snapshot () =
  let snapshot =
    match snapshot with Some s -> s | None -> Metrics.snapshot ()
  in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, v) ->
      let pname = metric_name name in
      match v with
      | Metrics.Counter_value n ->
        line "# TYPE %s_total counter" pname;
        line "%s_total %d" pname n
      | Metrics.Gauge_value x ->
        line "# TYPE %s gauge" pname;
        line "%s %s" pname (num x)
      | Metrics.Histogram_value s ->
        line "# TYPE %s histogram" pname;
        let cumulative = ref 0 in
        List.iter
          (fun (bound, c) ->
            cumulative := !cumulative + c;
            line "%s_bucket{le=\"%s\"} %d" pname (num bound) !cumulative)
          s.Metrics.buckets;
        line "%s_bucket{le=\"+Inf\"} %d" pname s.Metrics.count;
        line "%s_sum %s" pname
          (num (if Float.is_finite s.Metrics.sum then s.Metrics.sum else 0.0));
        line "%s_count %d" pname s.Metrics.count)
    snapshot;
  Buffer.contents buf
