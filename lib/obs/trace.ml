type span = {
  name : string;
  attrs : (string * string) list;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  domain : int;
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* Completed spans in completion order (children complete before their
   parent); [spans] re-sorts by start time.  Worker domains record into
   the same buffer, so pushes are serialized by [mutex]; span nesting
   depth is tracked per domain (each domain has its own call stack). *)
let mutex = Mutex.create ()
let completed : span list ref = ref []
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

(* Human-readable lane labels for the Chrome export.  Registrations
   survive [reset] — they describe the process layout (worker domains,
   the server executor), not a particular trace. *)
let process_name_ref = ref "wavemin"
let thread_names : (int, string) Hashtbl.t = Hashtbl.create 8

let set_process_name name =
  Mutex.lock mutex;
  process_name_ref := name;
  Mutex.unlock mutex

let set_thread_name ~tid name =
  Mutex.lock mutex;
  Hashtbl.replace thread_names tid name;
  Mutex.unlock mutex

let with_span ?(attrs = []) ?tid ~name f =
  if not !enabled_flag then f ()
  else begin
    let open_depth = Domain.DLS.get depth_key in
    let depth = !open_depth in
    incr open_depth;
    let domain =
      match tid with Some t -> t | None -> (Domain.self () :> int)
    in
    let start_ns = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur_ns = Int64.sub (Clock.now_ns ()) start_ns in
        decr open_depth;
        let s = { name; attrs; start_ns; dur_ns; depth; domain } in
        Mutex.lock mutex;
        completed := s :: !completed;
        Mutex.unlock mutex)
      f
  end

let record ?(attrs = []) ?tid ~name ~start_ns ~dur_ns () =
  if !enabled_flag then begin
    let domain =
      match tid with Some t -> t | None -> (Domain.self () :> int)
    in
    let s = { name; attrs; start_ns; dur_ns; depth = 0; domain } in
    Mutex.lock mutex;
    completed := s :: !completed;
    Mutex.unlock mutex
  end

let reset () =
  Mutex.lock mutex;
  completed := [];
  Mutex.unlock mutex

let spans () =
  let snapshot =
    Mutex.lock mutex;
    let s = !completed in
    Mutex.unlock mutex;
    s
  in
  List.sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with
      | 0 -> (
        match Int.compare a.domain b.domain with
        | 0 -> Int.compare a.depth b.depth
        | c -> c)
      | c -> c)
    snapshot

let ms_of_ns ns = Int64.to_float ns /. 1e6

let to_text_tree () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3f ms" (String.make (2 * s.depth) ' ')
           (max 1 (40 - (2 * s.depth)))
           s.name (ms_of_ns s.dur_ns));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s=%s" k v))
        s.attrs;
      Buffer.add_char buf '\n')
    (spans ());
  Buffer.contents buf

(* Minimal JSON string escaping: quotes, backslash, control chars. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let thread_label tid =
  match Hashtbl.find_opt thread_names tid with
  | Some n -> n
  | None -> if tid = 0 then "main" else Printf.sprintf "domain-%d" tid

let to_chrome_json () =
  let spans = spans () in
  (* Every lane that appears — spans plus explicit registrations — gets a
     thread_name metadata event so Perfetto shows labels, not bare tids. *)
  let tids = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace tids s.domain ()) spans;
  Mutex.lock mutex;
  Hashtbl.iter (fun tid _ -> Hashtbl.replace tids tid ()) thread_names;
  let process_name = !process_name_ref in
  let tid_list =
    List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) tids [])
  in
  let labelled = List.map (fun tid -> (tid, thread_label tid)) tid_list in
  Mutex.unlock mutex;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"%s\"}}"
       (json_escape process_name));
  List.iter
    (fun (tid, label) ->
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid (json_escape label)))
    labelled;
  List.iter
    (fun s ->
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"wavemin\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape s.name)
           (Int64.to_float s.start_ns /. 1e3)
           (Int64.to_float s.dur_ns /. 1e3)
           s.domain);
      (match s.attrs with
      | [] -> ()
      | attrs ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          attrs;
        Buffer.add_char buf '}');
      Buffer.add_char buf '}')
    spans;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_chrome_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))
