type span = {
  name : string;
  attrs : (string * string) list;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* Completed spans in completion order (children complete before their
   parent); [spans] re-sorts by start time. *)
let completed : span list ref = ref []
let open_depth = ref 0

let with_span ?(attrs = []) ~name f =
  if not !enabled_flag then f ()
  else begin
    let depth = !open_depth in
    incr open_depth;
    let start_ns = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur_ns = Int64.sub (Clock.now_ns ()) start_ns in
        decr open_depth;
        completed := { name; attrs; start_ns; dur_ns; depth } :: !completed)
      f
  end

let reset () = completed := []

let spans () =
  List.sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with
      | 0 -> Stdlib.compare (a.depth : int) b.depth
      | c -> c)
    !completed

let ms_of_ns ns = Int64.to_float ns /. 1e6

let to_text_tree () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3f ms" (String.make (2 * s.depth) ' ')
           (max 1 (40 - (2 * s.depth)))
           s.name (ms_of_ns s.dur_ns));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s=%s" k v))
        s.attrs;
      Buffer.add_char buf '\n')
    (spans ());
  Buffer.contents buf

(* Minimal JSON string escaping: quotes, backslash, control chars. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"wavemin\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1"
           (json_escape s.name)
           (Int64.to_float s.start_ns /. 1e3)
           (Int64.to_float s.dur_ns /. 1e3));
      (match s.attrs with
      | [] -> ()
      | attrs ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          attrs;
        Buffer.add_char buf '}');
      Buffer.add_char buf '}')
    (spans ());
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_chrome_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))
