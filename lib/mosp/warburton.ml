module Metrics = Repro_obs.Metrics
module Trace = Repro_obs.Trace
module Budget = Repro_obs.Budget
module Flight = Repro_obs.Flight

module Log = (val Logs.src_log (Repro_obs.Log.src "wavemin.warburton"))

(* Registered once at module init so the instruments always appear in a
   metrics dump, even at zero. *)
let labels_per_row_h = Metrics.histogram "warburton.labels_per_row"
let labels_pruned_c = Metrics.counter "warburton.labels_pruned"
let labels_capped_c = Metrics.counter "warburton.labels_capped"
let grid_delta_h = Metrics.histogram "warburton.grid_delta"
let solves_c = Metrics.counter "warburton.solves"

(* Per-objective lower bound of any path: dest weight plus the row-wise
   minima. *)
let lower_bounds graph =
  let dim = Layered.dimension graph in
  let lb = Array.copy (Layered.dest_weight graph) in
  Array.iter
    (fun row ->
      for k = 0 to dim - 1 do
        let m =
          Array.fold_left (fun acc w -> Float.min acc w.(k)) infinity row
        in
        lb.(k) <- lb.(k) +. m
      done)
    (Layered.options graph);
  lb

(* When the label set must be truncated, rank by an admissible
   projection of the final min-max objective: current cost plus, per
   component, the sum over the remaining rows of the row-wise minima and
   the dest weight.  A purely myopic rank (current max component) keeps
   prefixes that cannot complete well. *)
(* One warning per process: the first truncation anywhere is loud, every
   later one (often thousands across a sweep) drops to debug. *)
let cap_warned = ref false

let warn_cap ~row ~dropped ~total ~max_labels =
  Metrics.incr ~by:dropped labels_capped_c;
  if not !cap_warned then begin
    cap_warned := true;
    Log.warn (fun m ->
        m
          "label cap hit at row %d: dropped %d of %d labels \
           (max_labels = %d); the solution is approximate beyond the \
           epsilon guarantee"
          row dropped total max_labels)
  end
  else
    Log.debug (fun m ->
        m "label cap hit at row %d: dropped %d of %d labels" row dropped total)

let pareto_paths_capped ?(epsilon = 0.01) ?(max_labels = 20_000) graph =
  if epsilon < 0.0 then invalid_arg "Warburton.pareto_paths: epsilon < 0";
  if max_labels < 1 then invalid_arg "Warburton.pareto_paths: max_labels < 1";
  Metrics.incr solves_c;
  let rows = Layered.options graph in
  let dim = Layered.dimension graph in
  Trace.with_span ~name:"warburton.pareto_paths"
    ~attrs:
      [ ("rows", string_of_int (Array.length rows));
        ("dim", string_of_int dim) ]
  @@ fun () ->
  let deltas =
    if epsilon = 0.0 then Array.make dim 0.0
    else begin
      let lb = lower_bounds graph in
      Array.map
        (fun l -> epsilon *. l /. float_of_int (Array.length rows + 1))
        lb
    end
  in
  Array.iter (fun d -> Metrics.observe grid_delta_h d) deltas;
  (* suffix_min.(i).(k): sum over rows i.. of the row-wise component
     minima, plus the dest weight — a lower bound on what any completion
     adds in component k after the first i rows are fixed. *)
  let num_rows = Array.length rows in
  let suffix_min = Array.make (num_rows + 1) (Array.copy (Layered.dest_weight graph)) in
  for i = num_rows - 1 downto 0 do
    let next = suffix_min.(i + 1) in
    suffix_min.(i) <-
      Array.init dim (fun k ->
          next.(k)
          +. Array.fold_left
               (fun acc w -> Float.min acc w.(k))
               infinity rows.(i));
  done;
  (* The frontier lives in flat scratch buffers for the whole solve:
     costs are a [count * dim] float array (one row-major block per
     label) with the per-label max component cached alongside, and
     choice prefixes are persistent lists shared parent-to-child.  Each
     row extends the frontier into a second set of flat buffers, prunes
     in place, and copies the survivors back — no per-label cost arrays
     or label records are allocated until the final materialization. *)
  let all_zero_deltas = Array.for_all (fun d -> d <= 0.0) deltas in
  let cur_costs = ref (Array.make (max 1 dim) 0.0) in
  let cur_choices = ref [| [] |] in
  let cur_n = ref 1 in
  let ext_costs = ref [||] in
  let ext_max = ref [||] in
  let ext_choice = ref [||] in
  let ext_parent = ref [||] in
  let ensure_ext n =
    if Array.length !ext_max < n then begin
      let cap = max n (2 * Array.length !ext_max) in
      ext_costs := Array.make (cap * dim) 0.0;
      ext_max := Array.make cap 0.0;
      ext_choice := Array.make cap 0;
      ext_parent := Array.make cap 0
    end
  in
  let any_capped = ref false in
  let key_buf = Buffer.create (8 * dim) in
  let step row_index row =
    (* Cooperative cancellation: a no-op atomic load unless an ambient
       budget is installed, in which case exhaustion raises
       [Budget_exhausted] here — between rows — so partial extension
       state never escapes. *)
    Budget.check_current ();
    let k_row = Array.length row in
    let n_ext = !cur_n * k_row in
    ensure_ext n_ext;
    Budget.charge_labels_current n_ext;
    let costs = !ext_costs
    and maxes = !ext_max
    and choice = !ext_choice
    and parent = !ext_parent
    and cc = !cur_costs in
    (* Extension: label-major, choice-minor — the same enumeration order
       as the old list-based concat_map, with the max component
       accumulated on the fly into the reused [maxes] array. *)
    let pos = ref 0 in
    for li = 0 to !cur_n - 1 do
      let base = li * dim in
      for c = 0 to k_row - 1 do
        let w = row.(c) in
        let o = !pos * dim in
        let m = ref 0.0 in
        for d = 0 to dim - 1 do
          let v = cc.(base + d) +. w.(d) in
          costs.(o + d) <- v;
          if v > !m then m := v
        done;
        maxes.(!pos) <- !m;
        choice.(!pos) <- c;
        parent.(!pos) <- li;
        incr pos
      done
    done;
    (* ε-grid prune on packed byte-string keys; per cell the label with
       the smallest cached max survives, first-seen winning ties, and
       survivors keep first-seen order (deterministic, unlike a
       Hashtbl.fold). *)
    let survivors =
      if all_zero_deltas then Array.init n_ext (fun i -> i)
      else begin
        let table : (string, int) Hashtbl.t = Hashtbl.create (2 * n_ext) in
        let order = ref [] in
        for i = 0 to n_ext - 1 do
          Buffer.clear key_buf;
          let o = i * dim in
          for d = 0 to dim - 1 do
            let c = costs.(o + d) in
            let dlt = deltas.(d) in
            let v =
              if dlt <= 0.0 then Int64.bits_of_float c
              else Int64.of_float (floor (c /. dlt))
            in
            Buffer.add_int64_le key_buf v
          done;
          let key = Buffer.contents key_buf in
          match Hashtbl.find_opt table key with
          | Some j when maxes.(j) <= maxes.(i) -> ()
          | Some _ -> Hashtbl.replace table key i
          | None ->
            Hashtbl.add table key i;
            order := key :: !order
        done;
        let keys = List.rev !order in
        Array.of_list (List.map (fun key -> Hashtbl.find table key) keys)
      end
    in
    (* Dominance pruning is quadratic and prunes little in high
       dimension; apply it only where it pays (small sets, few
       objectives) and lean on the ε-grid and the cap otherwise.  The
       cached max gives an O(1) early reject: a label can only dominate
       one whose max is no smaller. *)
    let survivors =
      let n = Array.length survivors in
      if not (dim <= 8 && n <= 256) then survivors
      else begin
        let dominates i j =
          let oi = i * dim and oj = j * dim in
          let rec go d =
            d >= dim || (costs.(oi + d) <= costs.(oj + d) && go (d + 1))
          in
          go 0
        in
        let kept = Array.make n 0 in
        let kept_n = ref 0 in
        Array.iter
          (fun i ->
            let dominated = ref false in
            let r = ref 0 in
            while (not !dominated) && !r < !kept_n do
              let kl = kept.(!r) in
              if maxes.(kl) <= maxes.(i) && dominates kl i then
                dominated := true;
              incr r
            done;
            if not !dominated then begin
              let w = ref 0 in
              for r = 0 to !kept_n - 1 do
                let kl = kept.(r) in
                if not (maxes.(i) <= maxes.(kl) && dominates i kl) then begin
                  kept.(!w) <- kl;
                  incr w
                end
              done;
              kept_n := !w;
              kept.(!kept_n) <- i;
              incr kept_n
            end)
          survivors;
        Array.sub kept 0 !kept_n
      end
    in
    let pruned_row = n_ext - Array.length survivors in
    Metrics.incr ~by:pruned_row labels_pruned_c;
    (* Admissible-projection cap, ranked by current cost plus the
       suffix lower bound; equal projections break by extension index so
       the truncation is deterministic. *)
    let remaining = suffix_min.(row_index + 1) in
    let capped_row = ref 0 in
    let survivors =
      let n = Array.length survivors in
      if n <= max_labels then survivors
      else begin
        warn_cap ~row:row_index ~dropped:(n - max_labels) ~total:n
          ~max_labels;
        capped_row := n - max_labels;
        any_capped := true;
        let proj =
          Array.map
            (fun i ->
              let o = i * dim in
              let m = ref 0.0 in
              for d = 0 to dim - 1 do
                let v = costs.(o + d) +. remaining.(d) in
                if v > !m then m := v
              done;
              (!m, i))
            survivors
        in
        Array.sort
          (fun ((a : float), ia) (b, ib) ->
            match Float.compare a b with
            | 0 -> Int.compare ia ib
            | c -> c)
          proj;
        Array.init max_labels (fun r -> snd proj.(r))
      end
    in
    Metrics.observe labels_per_row_h (float_of_int (Array.length survivors));
    if Flight.enabled () then
      Flight.record
        (Flight.Label_row
           { row = row_index;
             extended = n_ext;
             kept = Array.length survivors;
             pruned = pruned_row;
             capped = !capped_row });
    (* Commit survivors to the current-frontier buffers. *)
    let n_new = Array.length survivors in
    let old_choices = !cur_choices in
    if Array.length !cur_costs < n_new * dim then
      cur_costs :=
        Array.make (max (n_new * dim) (2 * Array.length !cur_costs)) 0.0;
    let ncc = !cur_costs in
    let nch = Array.make (max 1 n_new) [] in
    Array.iteri
      (fun r i ->
        Array.blit costs (i * dim) ncc (r * dim) dim;
        nch.(r) <- choice.(i) :: old_choices.(parent.(i)))
      survivors;
    cur_choices := nch;
    cur_n := n_new
  in
  Array.iteri step rows;
  let dest = Layered.dest_weight graph in
  let with_dest =
    List.init !cur_n (fun i ->
        {
          Pareto.cost =
            Array.init dim (fun d -> (!cur_costs).((i * dim) + d) +. dest.(d));
          choices_rev = (!cur_choices).(i);
        })
  in
  let result =
    if dim <= 8 && List.length with_dest <= 256 then
      Pareto.non_dominated with_dest
    else with_dest
  in
  (result, !any_capped)

let pareto_paths ?epsilon ?max_labels graph =
  fst (pareto_paths_capped ?epsilon ?max_labels graph)

type solution = {
  choices : int array;
  cost : float array;
  objective : float;
  capped : bool;
}

let label_to_solution graph ~capped (l : Pareto.label) =
  let choices = Array.of_list (List.rev l.Pareto.choices_rev) in
  ignore graph;
  {
    choices;
    cost = l.Pareto.cost;
    objective = Pareto.max_component l;
    capped;
  }

let solve_min_max ?epsilon ?max_labels graph =
  let paths, capped = pareto_paths_capped ?epsilon ?max_labels graph in
  match Pareto.best_min_max paths with
  | Some best -> label_to_solution graph ~capped best
  | None ->
    (* A layered graph always has at least one path (rows are
       non-empty). *)
    assert false

let exhaustive_min_max graph =
  let rows = Layered.options graph in
  let num_paths =
    Array.fold_left (fun acc row -> acc * Array.length row) 1 rows
  in
  if num_paths > 1_000_000 then
    invalid_arg "Warburton.exhaustive_min_max: too many paths";
  let num_rows = Array.length rows in
  let best = ref None in
  let choices = Array.make num_rows 0 in
  let rec go row =
    if row = num_rows then begin
      let cost = Layered.path_cost graph ~choices in
      let objective = Array.fold_left Float.max 0.0 cost in
      match !best with
      | Some (_, _, o) when o <= objective -> ()
      | Some _ | None -> best := Some (Array.copy choices, cost, objective)
    end
    else
      for c = 0 to Array.length rows.(row) - 1 do
        choices.(row) <- c;
        go (row + 1)
      done
  in
  go 0;
  match !best with
  | Some (choices, cost, objective) ->
    { choices; cost; objective; capped = false }
  | None ->
    (* num_rows = 0: the single src->dest path. *)
    let cost = Array.copy (Layered.dest_weight graph) in
    {
      choices = [||];
      cost;
      objective = Array.fold_left Float.max 0.0 cost;
      capped = false;
    }
