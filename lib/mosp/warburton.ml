module Metrics = Repro_obs.Metrics
module Trace = Repro_obs.Trace

module Log = (val Logs.src_log (Repro_obs.Log.src "wavemin.warburton"))

(* Registered once at module init so the instruments always appear in a
   metrics dump, even at zero. *)
let labels_per_row_h = Metrics.histogram "warburton.labels_per_row"
let labels_pruned_c = Metrics.counter "warburton.labels_pruned"
let labels_capped_c = Metrics.counter "warburton.labels_capped"
let grid_delta_h = Metrics.histogram "warburton.grid_delta"
let solves_c = Metrics.counter "warburton.solves"

let add_weight cost w =
  Array.mapi (fun k c -> c +. w.(k)) cost

(* Per-objective lower bound of any path: dest weight plus the row-wise
   minima. *)
let lower_bounds graph =
  let dim = Layered.dimension graph in
  let lb = Array.copy (Layered.dest_weight graph) in
  Array.iter
    (fun row ->
      for k = 0 to dim - 1 do
        let m =
          Array.fold_left (fun acc w -> Float.min acc w.(k)) infinity row
        in
        lb.(k) <- lb.(k) +. m
      done)
    (Layered.options graph);
  lb

(* When the label set must be truncated, rank by an admissible
   projection of the final min-max objective: current cost plus, per
   component, the sum over the remaining rows of the row-wise minima and
   the dest weight.  A purely myopic rank (current max component) keeps
   prefixes that cannot complete well. *)
(* One warning per process: the first truncation anywhere is loud, every
   later one (often thousands across a sweep) drops to debug. *)
let cap_warned = ref false

let cap_labels max_labels ~row ~project labels =
  let n = List.length labels in
  if n <= max_labels then (labels, false)
  else begin
    let dropped = n - max_labels in
    Metrics.incr ~by:dropped labels_capped_c;
    if not !cap_warned then begin
      cap_warned := true;
      Log.warn (fun m ->
          m
            "label cap hit at row %d: dropped %d of %d labels \
             (max_labels = %d); the solution is approximate beyond the \
             epsilon guarantee"
            row dropped n max_labels)
    end
    else
      Log.debug (fun m ->
          m "label cap hit at row %d: dropped %d of %d labels" row dropped n);
    let arr = Array.of_list (List.map (fun l -> (project l, l)) labels) in
    Array.sort (fun ((a : float), _) (b, _) -> Float.compare a b) arr;
    (Array.to_list (Array.map snd (Array.sub arr 0 max_labels)), true)
  end

let pareto_paths_capped ?(epsilon = 0.01) ?(max_labels = 20_000) graph =
  if epsilon < 0.0 then invalid_arg "Warburton.pareto_paths: epsilon < 0";
  if max_labels < 1 then invalid_arg "Warburton.pareto_paths: max_labels < 1";
  Metrics.incr solves_c;
  let rows = Layered.options graph in
  let dim = Layered.dimension graph in
  Trace.with_span ~name:"warburton.pareto_paths"
    ~attrs:
      [ ("rows", string_of_int (Array.length rows));
        ("dim", string_of_int dim) ]
  @@ fun () ->
  let deltas =
    if epsilon = 0.0 then Array.make dim 0.0
    else begin
      let lb = lower_bounds graph in
      Array.map
        (fun l -> epsilon *. l /. float_of_int (Array.length rows + 1))
        lb
    end
  in
  Array.iter (fun d -> Metrics.observe grid_delta_h d) deltas;
  (* suffix_min.(i).(k): sum over rows i.. of the row-wise component
     minima, plus the dest weight — a lower bound on what any completion
     adds in component k after the first i rows are fixed. *)
  let num_rows = Array.length rows in
  let suffix_min = Array.make (num_rows + 1) (Array.copy (Layered.dest_weight graph)) in
  for i = num_rows - 1 downto 0 do
    let next = suffix_min.(i + 1) in
    suffix_min.(i) <-
      Array.init dim (fun k ->
          next.(k)
          +. Array.fold_left
               (fun acc w -> Float.min acc w.(k))
               infinity rows.(i));
  done;
  let start = [ { Pareto.cost = Array.make dim 0.0; choices_rev = [] } ] in
  let row_index = ref 0 in
  let any_capped = ref false in
  let step labels row =
    let extended =
      List.concat_map
        (fun (l : Pareto.label) ->
          Array.to_list
            (Array.mapi
               (fun choice w ->
                 {
                   Pareto.cost = add_weight l.Pareto.cost w;
                   choices_rev = choice :: l.Pareto.choices_rev;
                 })
               row))
        labels
    in
    (* Dominance pruning is quadratic and prunes little in high
       dimension; apply it only where it pays (small sets, few
       objectives) and lean on the ε-grid and the cap otherwise. *)
    let pruned = Pareto.grid_prune ~deltas extended in
    let pruned =
      if dim <= 8 && List.length pruned <= 256 then Pareto.non_dominated pruned
      else pruned
    in
    Metrics.incr ~by:(List.length extended - List.length pruned)
      labels_pruned_c;
    incr row_index;
    let remaining = suffix_min.(!row_index) in
    let project (l : Pareto.label) =
      let m = ref 0.0 in
      Array.iteri
        (fun k c ->
          let v = c +. remaining.(k) in
          if v > !m then m := v)
        l.Pareto.cost;
      !m
    in
    let kept, capped =
      cap_labels max_labels ~row:(!row_index - 1) ~project pruned
    in
    if capped then any_capped := true;
    Metrics.observe labels_per_row_h (float_of_int (List.length kept));
    kept
  in
  let final = Array.fold_left step start rows in
  let dest = Layered.dest_weight graph in
  let with_dest =
    List.map
      (fun (l : Pareto.label) -> { l with Pareto.cost = add_weight l.Pareto.cost dest })
      final
  in
  let result =
    if dim <= 8 && List.length with_dest <= 256 then
      Pareto.non_dominated with_dest
    else with_dest
  in
  (result, !any_capped)

let pareto_paths ?epsilon ?max_labels graph =
  fst (pareto_paths_capped ?epsilon ?max_labels graph)

type solution = {
  choices : int array;
  cost : float array;
  objective : float;
  capped : bool;
}

let label_to_solution graph ~capped (l : Pareto.label) =
  let choices = Array.of_list (List.rev l.Pareto.choices_rev) in
  ignore graph;
  {
    choices;
    cost = l.Pareto.cost;
    objective = Pareto.max_component l;
    capped;
  }

let solve_min_max ?epsilon ?max_labels graph =
  let paths, capped = pareto_paths_capped ?epsilon ?max_labels graph in
  match Pareto.best_min_max paths with
  | Some best -> label_to_solution graph ~capped best
  | None ->
    (* A layered graph always has at least one path (rows are
       non-empty). *)
    assert false

let exhaustive_min_max graph =
  let rows = Layered.options graph in
  let num_paths =
    Array.fold_left (fun acc row -> acc * Array.length row) 1 rows
  in
  if num_paths > 1_000_000 then
    invalid_arg "Warburton.exhaustive_min_max: too many paths";
  let num_rows = Array.length rows in
  let best = ref None in
  let choices = Array.make num_rows 0 in
  let rec go row =
    if row = num_rows then begin
      let cost = Layered.path_cost graph ~choices in
      let objective = Array.fold_left Float.max 0.0 cost in
      match !best with
      | Some (_, _, o) when o <= objective -> ()
      | Some _ | None -> best := Some (Array.copy choices, cost, objective)
    end
    else
      for c = 0 to Array.length rows.(row) - 1 do
        choices.(row) <- c;
        go (row + 1)
      done
  in
  go 0;
  match !best with
  | Some (choices, cost, objective) ->
    { choices; cost; objective; capped = false }
  | None ->
    (* num_rows = 0: the single src->dest path. *)
    let cost = Array.copy (Layered.dest_weight graph) in
    {
      choices = [||];
      cost;
      objective = Array.fold_left Float.max 0.0 cost;
      capped = false;
    }
