(** Warburton's fully-polynomial ε-approximation for multiobjective
    shortest paths (Oper. Res. 35(1), 1987), specialised to the layered
    DAGs of Algorithm 1.

    The algorithm is forward dynamic programming over rows with
    non-dominated label sets; ε > 0 rounds label costs onto a grid whose
    cell size is ε·LB_k/(R+1) in objective k (LB_k a per-objective path
    lower bound), so every surviving label's cost is within (1+ε) of an
    exact Pareto point component-wise, while the label count stays
    polynomial in (R/ε)^r.  ε = 0 gives the exact Pareto set.

    All solvers here honor the ambient {!Repro_obs.Budget}: each DP row
    checks the budget and charges the labels it extends, so an exhausted
    wall-clock or label budget raises {!Repro_util.Verrors.Error}
    ([Budget_exhausted]) between rows.  With no ambient budget installed
    the checks are single atomic loads and results are unchanged. *)

val pareto_paths :
  ?epsilon:float -> ?max_labels:int -> Layered.t -> Pareto.label list
(** Approximate Pareto-optimal src-dest paths.  [choices_rev] of each
    returned label lists the selected option per row, last row first;
    costs include the dest arc.  Defaults: [epsilon = 0.01],
    [max_labels = 20_000] (a hard safety cap per row; when it trips, the
    labels with the smallest maximum component are kept, which preserves
    the min-max use case).
    @raise Invalid_argument if [epsilon < 0] or [max_labels < 1]. *)

val pareto_paths_capped :
  ?epsilon:float -> ?max_labels:int -> Layered.t -> Pareto.label list * bool
(** Like {!pareto_paths}, and additionally reports whether the
    [max_labels] safety cap truncated any row's label set — in which
    case the ε-approximation guarantee no longer holds and the result
    must be treated as heuristic.  The truncation is also counted in the
    ["warburton.labels_capped"] metric and logged (once per solve) at
    warning level. *)

type solution = {
  choices : int array;  (** Selected option per row, row order. *)
  cost : float array;  (** Path cost vector including the dest arc. *)
  objective : float;  (** Max component of [cost] — the peak noise. *)
  capped : bool;
      (** The per-row label cap dropped labels during the solve; the
          solution is approximate beyond the epsilon guarantee. *)
}

val solve_min_max :
  ?epsilon:float -> ?max_labels:int -> Layered.t -> solution
(** The paper's selection rule: among the (approximate) Pareto paths,
    take the one with the minimum worst component. *)

val exhaustive_min_max : Layered.t -> solution
(** Brute-force optimum by enumerating all option combinations — for
    tests and the tiny worked examples only.
    @raise Invalid_argument if the instance has more than ~1e6 paths. *)
