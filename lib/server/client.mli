(** Synchronous client for the [wavemin serve] protocol.

    One connection, one outstanding request at a time: {!request} sends
    a {!Protocol.request} tagged with a fresh id and blocks until the
    response with that id arrives (responses for other ids — which a
    well-behaved synchronous client never sees — are skipped).  Used by
    [wavemin client], the examples and the smoke tests. *)

module Json := Repro_util.Json
module Verrors := Repro_util.Verrors

type t

val connect : Server.address -> (t, Verrors.t) result
(** Open a connection.  Fails with an [Io_error] when the server is not
    (yet) listening — poll this for readiness. *)

val close : t -> unit
(** Idempotent. *)

val request :
  ?deadline_ms:float ->
  t ->
  Protocol.request ->
  (Protocol.response, Verrors.t) result
(** Send one request and wait for its response.  [Error] means a
    transport or framing failure; a structured rejection from the
    server (e.g. [overloaded]) is an [Ok] response with
    [response.ok = false].  [deadline_ms] rides in the request envelope:
    the server sheds the request with a structured [deadline-exceeded]
    error — and cancels an in-flight solve cooperatively — once that
    much time has passed since it parsed the line. *)

val request_with_id :
  ?deadline_ms:float ->
  t ->
  Protocol.request ->
  (Json.t * Protocol.response, Verrors.t) result
(** {!request}, additionally returning the id the request was tagged
    with — for correlating against the server's [stats] ["last"] block
    (the [client --time] server-side wall-time report). *)

val with_connection :
  Server.address -> (t -> ('a, Verrors.t) result) -> ('a, Verrors.t) result
(** [connect], run, [close] (also on exceptions). *)

val request_retry :
  ?retries:int ->
  ?backoff_ms:float ->
  ?deadline_ms:float ->
  ?on_retry:(attempt:int -> why:string -> delay_ms:float -> unit) ->
  Server.address ->
  Protocol.request ->
  (Protocol.response * int, Verrors.t) result
(** One-shot request with up to [retries] (default 0) re-attempts, each
    on a {e fresh} connection, sleeping [backoff_ms] (default 50) ×
    2{^attempt} × U[0.5, 1.5] between attempts (jittered exponential
    backoff, per-process seeded so retrying fleets spread out).
    Retried: an [overloaded] rejection and transport-level [Io_error]s
    (connection refused while the daemon restarts, resets mid-request)
    — safe because responses are deterministic and duplicates coalesce
    server-side.  Any other structured rejection is returned as-is.
    Returns the final response and the number of retries spent.
    [on_retry] fires before each backoff sleep ([attempt] counts from
    1). *)
