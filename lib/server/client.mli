(** Synchronous client for the [wavemin serve] protocol.

    One connection, one outstanding request at a time: {!request} sends
    a {!Protocol.request} tagged with a fresh id and blocks until the
    response with that id arrives (responses for other ids — which a
    well-behaved synchronous client never sees — are skipped).  Used by
    [wavemin client], the examples and the smoke tests. *)

module Json := Repro_util.Json
module Verrors := Repro_util.Verrors

type t

val connect : Server.address -> (t, Verrors.t) result
(** Open a connection.  Fails with an [Io_error] when the server is not
    (yet) listening — poll this for readiness. *)

val close : t -> unit
(** Idempotent. *)

val request : t -> Protocol.request -> (Protocol.response, Verrors.t) result
(** Send one request and wait for its response.  [Error] means a
    transport or framing failure; a structured rejection from the
    server (e.g. [overloaded]) is an [Ok] response with
    [response.ok = false]. *)

val request_with_id :
  t -> Protocol.request -> (Json.t * Protocol.response, Verrors.t) result
(** {!request}, additionally returning the id the request was tagged
    with — for correlating against the server's [stats] ["last"] block
    (the [client --time] server-side wall-time report). *)

val with_connection :
  Server.address -> (t -> ('a, Verrors.t) result) -> ('a, Verrors.t) result
(** [connect], run, [close] (also on exceptions). *)
