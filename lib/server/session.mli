(** The server's warm session cache.

    Maps a {e content hash} — benchmark spec, solver parameters, and
    the (inline or built-in) cell library text — to a
    {!Repro_core.Flow.prepared}: the synthesized tree plus the
    memoized optimization context (timing, zones, noise tables, the
    candidate-waveform memo).  A repeat request for the same content
    skips all of that work; modifying the library (or any parameter)
    changes the hash, so stale entries can never be served.  Parsed
    custom libraries are additionally cached by their own text hash, so
    two benchmarks sharing a library parse it once.

    Entries are evicted least-recently-used ({!Lru}).  Thread-safe:
    lookups/inserts serialize on an internal mutex while the expensive
    build work runs outside it.  Hits and misses are counted in the
    [server.cache_hits] / [server.cache_misses] metrics. *)

module Flow := Repro_core.Flow
module Verrors := Repro_util.Verrors

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 8) bounds the prepared-benchmark entries. *)

val key :
  spec:Repro_cts.Benchmarks.spec ->
  params:Repro_core.Context.params ->
  library:string option ->
  string
(** The content hash (hex digest).  [library = None] hashes the
    built-in leaf library's serialized form, so swapping the default
    library in a future build also invalidates. *)

val prepared :
  t ->
  spec:Repro_cts.Benchmarks.spec ->
  params:Repro_core.Context.params ->
  ?library:string ->
  unit ->
  (Flow.prepared * [ `Hit | `Miss ], Verrors.t) result
(** Fetch or build the prepared benchmark.  Failures (library parse
    errors, synthesis faults) are returned structurally and never
    cached, so a transient injected fault does not poison the entry. *)

type stats = {
  entries : string list;  (** Cache keys, most-recently-used first. *)
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats
