(** The server's warm session cache.

    Maps a {e content hash} — benchmark spec, solver parameters, and
    the (inline or built-in) cell library text — to a
    {!Repro_core.Flow.prepared}: the synthesized tree plus the
    memoized optimization context (timing, zones, noise tables, the
    candidate-waveform memo).  A repeat request for the same content
    skips all of that work; modifying the library (or any parameter)
    changes the hash, so stale entries can never be served.  Parsed
    custom libraries are additionally cached by their own text hash, so
    two benchmarks sharing a library parse it once.

    The prepared-entry store is {e lock-striped}: the capacity is split
    across a power-of-two number of shards, each with its own mutex and
    LRU, indexed by a hash of the content key.  Concurrent executors
    performing warm lookups only contend when their keys land on the
    same shard; eviction is least-recently-used within each shard.
    Hits and misses are counted in the [server.cache_hits] /
    [server.cache_misses] metrics (global atomics, coherent across
    shards). *)

module Flow := Repro_core.Flow
module Verrors := Repro_util.Verrors

type t

val create : ?capacity:int -> ?shards:int -> unit -> t
(** [capacity] (default 8) bounds the prepared-benchmark entries across
    all shards.  [shards] (default 4) is clamped to the largest power
    of two no greater than [min shards capacity], so every shard holds
    at least one entry and a capacity-1 cache keeps single-entry
    eviction semantics.
    @raise Invalid_argument when either is < 1. *)

val shard_count : t -> int
(** The effective (clamped) number of shards. *)

val shard_index : t -> string -> int
(** The shard a content key maps to — exposed for tests that need
    same-shard or cross-shard key pairs. *)

val key :
  spec:Repro_cts.Benchmarks.spec ->
  params:Repro_core.Context.params ->
  library:string option ->
  string
(** The content hash (hex digest).  [library = None] hashes the
    built-in leaf library's serialized form, so swapping the default
    library in a future build also invalidates. *)

val base_key :
  spec:Repro_cts.Benchmarks.spec -> library:string option -> string
(** The warm-start base key: like {!key} but with the solver params
    deliberately excluded, so a repeat request for the same synthesized
    tree under nearby parameters (a session-cache near-miss) still maps
    to the previously banked assignment. *)

val warm_hint :
  t ->
  base:string ->
  (Repro_core.Context.params * Repro_clocktree.Assignment.t) option
(** The most recent assignment banked under [base] (with the params it
    was solved under), if any — the annealer's ECO quench seed.  Hits
    are counted in the [server.warm_hits] metric and flight-recorded as
    a ["warm"] cache event. *)

val remember_warm :
  t ->
  base:string ->
  params:Repro_core.Context.params ->
  Repro_clocktree.Assignment.t ->
  unit
(** Bank a solved assignment for future warm starts (LRU, most recent
    solution per base key wins).  Counted in [server.warm_stores]. *)

val prepared :
  t ->
  spec:Repro_cts.Benchmarks.spec ->
  params:Repro_core.Context.params ->
  ?library:string ->
  unit ->
  (Flow.prepared * [ `Hit | `Miss ], Verrors.t) result
(** Fetch or build the prepared benchmark.  Failures (library parse
    errors, synthesis faults) are returned structurally and never
    cached, so a transient injected fault does not poison the entry.
    The expensive build runs outside any shard lock; two executors
    missing concurrently on the same key both build (deterministic
    duplicate work — the server's single-flight layer makes this
    rare). *)

type stats = {
  entries : string list;
      (** Cache keys, most-recently-used first within each shard,
          concatenated in shard order. *)
  capacity : int;  (** Total across shards. *)
  shards : int;
  hits : int;
  misses : int;
  evictions : int;  (** Summed across shards. *)
  warm_entries : int;  (** Banked warm-start assignments. *)
  warm_hits : int;  (** Warm hints served ([server.warm_hits]). *)
  warm_stores : int;  (** Assignments banked ([server.warm_stores]). *)
}

val stats : t -> stats
