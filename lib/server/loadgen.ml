module Json = Repro_util.Json
module Stats = Repro_util.Stats
module Verrors = Repro_util.Verrors
module Rng = Repro_util.Rng
module Clock = Repro_obs.Clock
module Rolling = Repro_obs.Rolling
module Report = Repro_obs.Report
module P = Protocol

(* The bench-serve load generator: N client threads drive a live daemon
   with a mixed request-class profile and the results land in a
   BENCH_serve.json via the Report builder, so the regression gate's
   ratio+slack runtime rules apply to service latency exactly as they do
   to solver runtime.

   The schedule is a fixed round-robin expansion of the class weights
   claimed through one atomic counter: in count mode the per-class
   request counts are deterministic regardless of connection count or
   interleaving, which keeps the gate's Missing_in_new rule safe — every
   class always appears in the report. *)

type klass = { k_name : string; k_request : P.request }

type config = {
  address : Server.address;
  connections : int;
  total : int option;  (* count budget *)
  duration_s : float option;  (* wall budget; stops at whichever is first *)
  profile : (klass * int) list;  (* (class, weight), weights >= 1 *)
  window_s : float;  (* rolling window width for the reported p50/95/99 *)
  retries : int;  (* per-request re-attempts on overloaded / transport loss *)
  retry_backoff_ms : float;  (* base of the jittered exponential backoff *)
}

let default_profile ~benchmark =
  let opts = P.default_opts ~benchmark in
  [ ({ k_name = "run-initial";
       k_request = P.Run { opts; algorithm = Repro_core.Flow.Initial; warm = false } },
     3);
    ({ k_name = "run-wavemin";
       k_request = P.Run { opts; algorithm = Repro_core.Flow.Wavemin; warm = false } },
     1);
    ({ k_name = "validate";
       k_request = P.Validate { opts; all = false } },
     1);
    ({ k_name = "stats"; k_request = P.Stats }, 1) ]

let default_config address ~benchmark =
  { address; connections = 4; total = Some 64; duration_s = None;
    profile = default_profile ~benchmark; window_s = 60.0;
    retries = 0; retry_backoff_ms = 50.0 }

(* Duplicate-heavy profile: the default mix plus one heavy class whose
   every request is content-identical (same benchmark, same kappa), so
   concurrent connections hit the server's single-flight layer.  The
   weight is chosen so the duplicate class is ~[fraction] of the
   schedule: w / (6 + w) = fraction. *)
let dup_profile ~benchmark ~fraction =
  let fraction = Float.max 0.0 (Float.min 0.9 fraction) in
  let weight =
    max 1 (int_of_float (Float.round (6.0 *. fraction /. (1.0 -. fraction))))
  in
  let opts = { (P.default_opts ~benchmark) with P.kappa = 25.0 } in
  default_profile ~benchmark
  @ [ ({ k_name = "dup-wavemin";
         k_request = P.Run { opts; algorithm = Repro_core.Flow.Wavemin; warm = false } },
       weight) ]

(* The server's lifetime coalesce counter, via one extra stats probe —
   sampled before and after the load so the result can report the
   delta.  Best-effort: a daemon predating the counter yields [None]. *)
let coalesced_count address =
  match Client.connect address with
  | Error _ -> None
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        match Client.request c P.Stats with
        | Ok resp when resp.P.ok ->
          Option.map int_of_float
            (Option.bind (Json.member "coalesced" resp.P.body) Json.float_value)
        | Ok _ | Error _ -> None)

(* Growable per-class latency sample buffer (mutex-guarded). *)
type samples = {
  s_mutex : Mutex.t;
  mutable arr : float array;
  mutable n : int;
  mutable errors : int;
}

let samples_create () =
  { s_mutex = Mutex.create (); arr = Array.make 64 0.0; n = 0; errors = 0 }

let samples_push s v =
  Mutex.lock s.s_mutex;
  if s.n = Array.length s.arr then begin
    let bigger = Array.make (2 * s.n) 0.0 in
    Array.blit s.arr 0 bigger 0 s.n;
    s.arr <- bigger
  end;
  s.arr.(s.n) <- v;
  s.n <- s.n + 1;
  Mutex.unlock s.s_mutex

let samples_error s =
  Mutex.lock s.s_mutex;
  s.errors <- s.errors + 1;
  Mutex.unlock s.s_mutex

type class_stats = {
  name : string;
  count : int;
  errors : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

type result = {
  wall_s : float;
  total_requests : int;
  total_errors : int;
  total_retries : int;  (* backoff re-attempts spent across all workers *)
  coalesced : int option;  (* server-side coalesce delta over the run *)
  throughput_rps : float;
  rolling : Rolling.stats;  (* the rolling-window view, ms *)
  overall : class_stats;  (* exact percentiles over every sample *)
  classes : class_stats list;
}

let response_code (resp : P.response) =
  if resp.P.ok then None
  else
    match Json.member "code" resp.P.body with
    | Some (Json.Str c) -> Some c
    | _ -> None

let class_stats_of name (s : samples) =
  let latencies = Array.sub s.arr 0 s.n in
  if s.n = 0 then
    { name; count = 0; errors = s.errors; mean_ms = 0.0; p50_ms = 0.0;
      p95_ms = 0.0; p99_ms = 0.0; max_ms = 0.0 }
  else
    { name;
      count = s.n;
      errors = s.errors;
      mean_ms = Stats.mean latencies;
      p50_ms = Stats.percentile latencies ~p:50.0;
      p95_ms = Stats.percentile latencies ~p:95.0;
      p99_ms = Stats.percentile latencies ~p:99.0;
      max_ms = snd (Stats.min_max latencies) }

let run cfg =
  if cfg.connections < 1 then
    Verrors.error ~code:Verrors.Invalid_params ~stage:"bench-serve"
      "connections must be >= 1"
  else if cfg.profile = [] then
    Verrors.error ~code:Verrors.Invalid_params ~stage:"bench-serve"
      "empty request profile"
  else if cfg.total = None && cfg.duration_s = None then
    Verrors.error ~code:Verrors.Invalid_params ~stage:"bench-serve"
      "either a request count or a duration budget is required"
  else begin
    (* Retrying workers write into connections a restarting daemon may
       have reset: that must surface as a retryable io-error, never
       SIGPIPE the process. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let schedule =
      Array.of_list
        (List.concat_map
           (fun (k, w) ->
             if w < 1 then
               Verrors.fail ~code:Verrors.Invalid_params ~stage:"bench-serve"
                 (Printf.sprintf "class %s has weight %d (must be >= 1)"
                    k.k_name w)
             else List.init w (fun _ -> k))
           cfg.profile)
    in
    let per_class =
      List.map (fun (k, _) -> (k.k_name, samples_create ())) cfg.profile
    in
    let all = samples_create () in
    let rolling = Rolling.create ~window_s:cfg.window_s () in
    let next = Atomic.make 0 in
    let started_s = Clock.now_s () in
    let deadline =
      Option.map (fun d -> started_s +. d) cfg.duration_s
    in
    let budget_left i =
      (match cfg.total with Some n -> i < n | None -> true)
      && match deadline with Some d -> Clock.now_s () < d | None -> true
    in
    let retries_total = Atomic.make 0 in
    let worker w () =
      (* Per-worker deterministic jitter stream: the load schedule stays
         reproducible for a given (connections, retries) config. *)
      let rng = Rng.create ~seed:(0xb0ff + w) in
      let backoff attempt =
        let ms =
          Float.max 0.0 cfg.retry_backoff_ms
          *. (2.0 ** float_of_int attempt)
          *. Rng.uniform rng ~lo:0.5 ~hi:1.5
        in
        ignore (Atomic.fetch_and_add retries_total 1);
        Thread.delay (ms /. 1000.0)
      in
      (* [None] after a transport casualty; the next attempt reconnects
         (the daemon may have restarted meanwhile). *)
      let client = ref None in
      let close_client () =
        match !client with
        | Some c ->
          Client.close c;
          client := None
        | None -> ()
      in
      let connect_client () =
        match !client with
        | Some c -> Ok c
        | None ->
          Result.map
            (fun c ->
              client := Some c;
              c)
            (Client.connect cfg.address)
      in
      (* One scheduled request with up to [cfg.retries] re-attempts on
         overloaded rejections and transport failures — mirroring
         {!Client.request_retry}, but keeping the connection warm across
         successful requests so retries stay the exceptional path. *)
      let rec exec k attempt =
        let failed e =
          if attempt < cfg.retries then begin
            backoff attempt;
            exec k (attempt + 1)
          end
          else Error e
        in
        match connect_client () with
        | Error e -> failed e
        | Ok c -> (
          match Client.request c k.k_request with
          | Ok resp
            when response_code resp = Some "overloaded"
                 && attempt < cfg.retries ->
            backoff attempt;
            exec k (attempt + 1)
          | Ok resp -> Ok resp
          | Error e ->
            close_client ();
            failed e)
      in
      (* A dead daemon should fail loudly (modulo configured retries),
         not report an all-error run. *)
      let rec eager attempt =
        match connect_client () with
        | Ok _ -> Ok ()
        | Error _ when attempt < cfg.retries ->
          backoff attempt;
          eager (attempt + 1)
        | Error e -> Error e
      in
      match eager 0 with
      | Error e -> Error e
      | Ok () ->
        Fun.protect ~finally:close_client (fun () ->
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if budget_left i then begin
                let k = schedule.(i mod Array.length schedule) in
                let cs = List.assoc k.k_name per_class in
                let t0 = Clock.now_s () in
                match exec k 0 with
                | Ok resp ->
                  let ms = (Clock.now_s () -. t0) *. 1000.0 in
                  if resp.P.ok then begin
                    samples_push cs ms;
                    samples_push all ms;
                    Rolling.observe rolling ms
                  end
                  else samples_error cs;
                  loop ()
                | Error _ ->
                  (* Retries exhausted: record and retire this worker —
                     the shared counter lets the others finish the
                     budget. *)
                  samples_error cs;
                  Ok ()
              end
              else Ok ()
            in
            loop ())
    in
    let coalesced_before = coalesced_count cfg.address in
    let results = Array.make cfg.connections (Ok ()) in
    let threads =
      Array.init cfg.connections (fun i ->
          Thread.create (fun () -> results.(i) <- worker i ()) ())
    in
    Array.iter Thread.join threads;
    let wall_s = Clock.now_s () -. started_s in
    let coalesced =
      match (coalesced_before, coalesced_count cfg.address) with
      | Some before, Some after -> Some (after - before)
      | _ -> None
    in
    (* Connecting to a dead daemon should fail loudly, not report an
       all-error run: surface the first connect failure if nothing at
       all was measured. *)
    let first_error =
      Array.fold_left
        (fun acc r -> match (acc, r) with None, Error e -> Some e | _ -> acc)
        None results
    in
    match first_error with
    | Some e when all.n = 0 -> Error e
    | _ ->
      let classes =
        List.map (fun (name, s) -> class_stats_of name s) per_class
      in
      let overall = class_stats_of "overall" all in
      let total_errors =
        List.fold_left (fun acc c -> acc + c.errors) 0 classes
      in
      Ok
        { wall_s;
          total_requests = overall.count + total_errors;
          total_errors;
          total_retries = Atomic.get retries_total;
          coalesced;
          throughput_rps =
            (if wall_s > 0.0 then float_of_int overall.count /. wall_s
             else 0.0);
          rolling = Rolling.stats rolling;
          overall;
          classes }
  end

(* BENCH_serve.json: every latency/count number rides in [runtime] (the
   ratio+slack-gated section — only slowdowns can fail the gate), while
   error counts go to the non-gated environment block so a flaky
   network burp cannot hard-fail CI through an exact-match rule. *)
let to_report cfg r =
  let builder =
    Report.create ~experiment:"serve"
      ~config:
        ([ ("connections", string_of_int cfg.connections);
           ( "profile",
             String.concat ","
               (List.map
                  (fun (k, w) -> Printf.sprintf "%s:%d" k.k_name w)
                  cfg.profile) );
           ("window_s", Json.float_to_string cfg.window_s) ]
        @ (match cfg.total with
          | Some n -> [ ("total", string_of_int n) ]
          | None -> [])
        @
        match cfg.duration_s with
        | Some d -> [ ("duration_s", Json.float_to_string d) ]
        | None -> [])
      ~environment:
        ([ ("address", Server.address_to_string cfg.address);
           ("errors", string_of_int r.total_errors);
           ("retries", string_of_int r.total_retries) ]
        @
        match r.coalesced with
        | Some n -> [ ("coalesced", string_of_int n) ]
        | None -> [])
      ()
  in
  let add_class (c : class_stats) =
    let runtime =
      [ ("requests", float_of_int c.count);
        ("latency_mean_ms", c.mean_ms);
        ("latency_p50_ms", c.p50_ms);
        ("latency_p95_ms", c.p95_ms);
        ("latency_p99_ms", c.p99_ms);
        ("latency_max_ms", c.max_ms) ]
    in
    let runtime =
      if c.name <> "overall" then runtime
      else
        runtime
        @ [ ("wall_s", r.wall_s);
            ("throughput_rps", r.throughput_rps);
            ("rolling_p50_ms", r.rolling.Rolling.p50);
            ("rolling_p95_ms", r.rolling.Rolling.p95);
            ("rolling_p99_ms", r.rolling.Rolling.p99);
            ("rolling_rate_rps", r.rolling.Rolling.rate) ]
    in
    Report.add_sample builder ~benchmark:"serve" ~algorithm:c.name ~runtime ()
  in
  add_class r.overall;
  List.iter add_class r.classes;
  Report.add_stage builder ~stage:"bench-serve" ~wall_s:r.wall_s
    ~cpu_s:(Clock.cpu_s ());
  Report.finalize builder
