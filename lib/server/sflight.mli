(** Single-flight registry: coalesce concurrent identical requests.

    A registry tracks, per content key, the one request currently
    queued-or-executing for that key (the {e leader}) and the requests
    that arrived while it was in flight (the {e followers}).  Admission
    is decided under the registry lock: the first arrival for a key
    runs the [enqueue] thunk and becomes leader; later arrivals attach
    as followers without consuming a queue slot.  When the leader's
    execution finishes, the executor calls {!complete} to detach the
    followers and answer each of them with the leader's result — a
    request arriving after that point starts a fresh flight, so a
    failed solve is never memoized.

    The invariant: an entry exists for a key if and only if a leader
    item for that key is queued or executing.  [enqueue] runs {e under}
    the registry lock precisely to keep admission and entry creation
    atomic — if the queue refuses the item (backpressure), no entry is
    created and no follower can strand. *)

type 'a t

val create : unit -> 'a t

val admit :
  'a t ->
  key:string ->
  'a ->
  enqueue:(unit -> ('ok, 'err) result) ->
  [ `Led of 'ok | `Joined | `Refused of 'err ]
(** [admit t ~key follower ~enqueue] — if a flight for [key] is already
    open, attach [follower] to it and return [`Joined].  Otherwise run
    [enqueue ()]: on [Ok v] open a flight for [key] and return
    [`Led v]; on [Error e] return [`Refused e] with no entry created. *)

val complete : 'a t -> key:string -> 'a list
(** Close the flight for [key] and return its followers in arrival
    order ([] when the key has no open flight — e.g. a request that was
    never admitted through {!admit}).  Executors call this exactly once
    per leader item, after the solve, before responding. *)

val in_flight : 'a t -> int
(** Number of open flights (distinct keys queued or executing). *)
