(** The wire protocol of [wavemin serve]: newline-delimited JSON.

    Each request is one single-line JSON object
    [{"id": ..., "type": ..., ...}] terminated by ['\n']; each response
    is one line [{"id": ..., "ok": true, "result": {...}}] or
    [{"id": ..., "ok": false, "error": {...}}] where [error] is the
    {!Repro_util.Verrors.to_json} rendering (plus a [degradations]
    array when a solver fallback chain was exhausted).  The [id] is
    echoed verbatim, so pipelined clients can match responses to
    requests; control-plane responses ([health], [stats], rejections)
    may overtake queued data-plane responses.

    Request bodies are {e deterministic} by construction: responses
    carry no timestamps, cache or queue state, so the same request
    yields a byte-identical response whether served cold, warm, or
    concurrently with others (the bit-identity property tested in
    [test/test_server.ml]). *)

module Flow := Repro_core.Flow
module Json := Repro_util.Json
module Verrors := Repro_util.Verrors

type solve_opts = {
  benchmark : string;
  kappa : float;  (** Skew bound, ps (default 20). *)
  slots : int;  (** Sampling slots |S| (default 158). *)
  budget_ms : float option;  (** Per-request wall budget. *)
  max_labels : int option;  (** Per-request MOSP label budget. *)
  library : string option;
      (** Inline Liberty-style cell library overriding the built-in
          leaf library; part of the session-cache content hash. *)
}

val default_opts : benchmark:string -> solve_opts

type metrics_format =
  | Text  (** Prometheus text exposition ({!Repro_obs.Prometheus}). *)
  | Json_snapshot  (** {!Repro_obs.Metrics.to_json} snapshot. *)

type request =
  | Run of { opts : solve_opts; algorithm : Flow.algorithm; warm : bool }
      (** [warm] (wire field ["warm"], default [false]) opts a
          [Sa] run into the warm-start ECO path: when the session holds
          a previous assignment for the same tree and library, the
          annealer quenches from it instead of solving cold.  Only
          rendered on the wire when [true], so pre-warm request bytes
          and canonical keys are unchanged. *)
  | Compare of solve_opts  (** All four algorithms on one benchmark. *)
  | Validate of { opts : solve_opts; all : bool }
      (** Preflight one benchmark, or the whole suite with [all]. *)
  | Montecarlo of { opts : solve_opts; instances : int }
  | Stats  (** Server statistics (control plane, never queued). *)
  | Metrics of metrics_format
      (** Live metrics-registry exposition (control plane).  Wire form:
          [{"type": "metrics", "format": "text" | "json"}] — ["text"]
          (alias ["prometheus"], the default) answers with
          [{"format": "prometheus", "body": <exposition text>}]. *)
  | Health  (** Readiness/liveness probe (control plane). *)
  | Flight
      (** Live snapshot of the {!Repro_obs.Flight} ring (control plane);
          answers with the versioned dump JSON, renderable by
          [wavemin explain]. *)
  | Shutdown  (** Graceful drain (control plane). *)

val request_kind : request -> string
(** The wire [type] string: ["run"], ["compare"], ... *)

val is_control : request -> bool
(** [Stats]/[Health]/[Shutdown]: answered directly by the connection
    thread, bypassing the bounded queue (so probes work under load). *)

val algorithm_of_name : string -> Flow.algorithm option
(** CLI spellings: ["initial"], ["peakmin"], ["wavemin"],
    ["wavemin-f"], ["sa"] (the {!Repro_core.Flow.solver_names}
    vocabulary). *)

val algorithm_name : Flow.algorithm -> string

type envelope = {
  id : Json.t;
  deadline_ms : float option;
      (** Optional end-to-end deadline, milliseconds from the moment the
          server parses the line.  The reader stamps an absolute
          deadline at parse time; work still queued (or executing) past
          it is shed/cancelled with a structured [deadline-exceeded]
          error.  Envelope-level, like [id]: it never participates in
          {!canonical_key}, so requests differing only in deadline
          still coalesce. *)
  payload : (request, Verrors.t) result;
}
(** One parsed request line: the echoed [id] ([Null] when the line was
    too malformed to carry one) and the request or a structured parse
    diagnostic. *)

val parse_request : string -> envelope
(** Total: malformed JSON, missing/unknown [type] or bad fields come
    back as [Error] payloads, never exceptions.  A [deadline_ms] that
    is not a finite number [>= 0] is a parse error. *)

val request_to_json : ?deadline_ms:float -> id:Json.t -> request -> Json.t

val canonical_key : request -> string
(** Hex digest of the canonical wire rendering with the id nulled out —
    the single-flight coalescing key.  Two requests coalesce iff every
    semantic field (benchmark, parameters, budgets, inline library)
    matches; the request id and the envelope [deadline_ms] never
    participate (a deadline bounds waiting, it does not change the
    deterministic result content). *)

val ok_response : id:Json.t -> Json.t -> Json.t
val error_response : id:Json.t -> ?degradations:Json.t list -> Verrors.t -> Json.t

val line : Json.t -> string
(** Compact one-line rendering plus the trailing newline. *)

type response = {
  rid : Json.t;  (** The echoed request id. *)
  ok : bool;
  body : Json.t;  (** The [result] on success, the [error] otherwise. *)
}

val parse_response : string -> (response, string) result
