module Json = Repro_util.Json
module Verrors = Repro_util.Verrors
module Clock = Repro_obs.Clock
module Trace = Repro_obs.Trace
module Metrics = Repro_obs.Metrics
module Prometheus = Repro_obs.Prometheus
module Rolling = Repro_obs.Rolling
module Runtime = Repro_obs.Runtime
module Report = Repro_obs.Report
module Par = Repro_par.Par
module Pool = Repro_par.Pool
module P = Protocol
module Flight = Repro_obs.Flight
module Log = (val Logs.src_log (Repro_obs.Log.src "wavemin.server"))

(* Executor lanes: executor K's request spans group under the synthetic
   Chrome-trace tid [1000 + K] regardless of which system thread runs
   them. *)
let executor_tid_base = 1000

(* ---- metrics ------------------------------------------------------ *)

let requests_c = Metrics.counter "server.requests"
let rejected_c = Metrics.counter "server.rejected"
let errors_c = Metrics.counter "server.errors"
let coalesced_c = Metrics.counter "server.coalesced"
let expired_c = Metrics.counter "server.expired"
let abandoned_c = Metrics.counter "server.abandoned"
let stalled_c = Metrics.counter "server.executor_stalled"
let queue_depth_g = Metrics.gauge "server.queue_depth"
let in_flight_g = Metrics.gauge "server.in_flight"
let latency_h = Metrics.histogram "server.latency_ms"
let queue_wait_h = Metrics.histogram "server.queue_wait_ms"

(* ---- addresses ---------------------------------------------------- *)

type address = Unix_path of string | Tcp of { host : string; port : int }

let address_of_string s =
  let tcp spec =
    let of_port p host =
      match int_of_string_opt p with
      | Some port when port > 0 && port < 65536 -> Ok (Tcp { host; port })
      | _ -> Error (Printf.sprintf "invalid TCP port %S" p)
    in
    match String.rindex_opt spec ':' with
    | None -> of_port spec "127.0.0.1"
    | Some i ->
      of_port
        (String.sub spec (i + 1) (String.length spec - i - 1))
        (String.sub spec 0 i)
  in
  if String.length s = 0 then Error "empty address"
  else if String.starts_with ~prefix:"unix:" s then
    Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.starts_with ~prefix:"tcp:" s then
    tcp (String.sub s 4 (String.length s - 4))
  else Ok (Unix_path s)

let address_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

(* ---- configuration ------------------------------------------------ *)

type config = {
  address : address;
  queue_capacity : int;
  cache_capacity : int;
  cache_shards : int;
  executors : int;
  report_path : string option;
  access_log_path : string option;
  access_log_max_bytes : int option;
  access_log_keep : int;
  rolling_window_s : float;
  sample_period_s : float option;
  handle_signals : bool;
  readiness : out_channel option;
  flight_dir : string option;
  idle_timeout_s : float option;
  max_line_bytes : int;
  watchdog_period_s : float option;
  stall_after_s : float;
}

let default_config address =
  { address; queue_capacity = 16; cache_capacity = 8; cache_shards = 4;
    executors = 0;
    report_path = Some "BENCH_serve_drain.json"; access_log_path = None;
    access_log_max_bytes = None; access_log_keep = 3;
    rolling_window_s = 60.0; sample_period_s = Some 1.0;
    handle_signals = false; readiness = None; flight_dir = Some ".";
    idle_timeout_s = Some 300.0; max_line_bytes = 1 lsl 20;
    watchdog_period_s = Some 1.0; stall_after_s = 30.0 }

(* ---- state -------------------------------------------------------- *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  mutable open_ : bool;  (* guarded by [wmutex] *)
  pending : int Atomic.t;
      (* data-plane responses this connection is still owed (admitted
         leaders, coalesced followers).  The reader's idle guard only
         runs while this is 0: a client waiting on a queued or slow
         solve is not idling. *)
  mutable last_write_s : float;  (* guarded by [wmutex] *)
}

type item = {
  item_conn : conn;
  item_id : Json.t;
  item_rid : string;  (* server-assigned request/trace id *)
  item_req : P.request;
  item_key : string;  (* single-flight content key ({!P.canonical_key}) *)
  item_deadline_ns : int64 option;
      (* absolute end-to-end deadline, stamped by the reader at parse
         time; queue pop sheds entries already past it *)
  enqueued_s : float;
  enqueued_ns : int64;
}

(* One executor worker: a thread popping the shared bounded queue, with
   its own Chrome-trace lane and per-worker counters.  [ex_busy_ns] has
   a single writer (the worker itself); [ex_rid] is the request id being
   executed, [""] when the worker is idle blocking in pop. *)
type executor = {
  ex_id : int;
  ex_tid : int;  (* executor_tid_base + ex_id *)
  ex_requests : int Atomic.t;  (* responses written, followers included *)
  ex_busy_ns : int Atomic.t;
  ex_rid : string Atomic.t;
  (* Watchdog state, written by the worker at request start/end and read
     by the watchdog thread: the absolute time past which the request in
     flight counts as stalled (0L when idle / no limit), and the last
     rid already reported — one stall event per wedged request, not one
     per watchdog tick. *)
  ex_stall_ns : int64 Atomic.t;
  ex_stall_reported : string Atomic.t;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  queue : item Bqueue.t;
  session : Session.t;
  executors : executor array;
  sflight : item Sflight.t;
  coalesced : int Atomic.t;
  accepting : bool Atomic.t;
  conns : (int, conn * Thread.t) Hashtbl.t;
  conns_mutex : Mutex.t;
  next_cid : int Atomic.t;
  next_rid : int Atomic.t;
  started_s : float;
  started_cpu_s : float;
  served : int Atomic.t;
  rejected : int Atomic.t;
  failed : int Atomic.t;
  expired : int Atomic.t;  (* shed past their deadline, never executed *)
  abandoned : int Atomic.t;  (* client gone before execution, skipped *)
  stalls : int Atomic.t;  (* watchdog stall episodes *)
  in_flight : int Atomic.t;
  rolling_latency : Rolling.t;  (* total ms, enqueue to response written *)
  rolling_queue_wait : Rolling.t;  (* ms *)
  access : Access_log.t option;
  overload_dumped : bool Atomic.t;  (* one black-box dump per overload episode *)
  last_mutex : Mutex.t;
  mutable last : Json.t;  (* last completed data-plane request, or Null *)
  mutable sampler : Runtime.sampler option;
  mutable pool_prev : (float * int) option;  (* sampler-thread only *)
  mutable acceptor : Thread.t option;
  watchdog_stop : bool Atomic.t;
  mutable watchdog : Thread.t option;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let draining t = not (Atomic.get t.accepting)

let initiate_drain t =
  if Atomic.compare_and_set t.accepting true false then begin
    Log.info (fun m -> m "drain initiated: finishing %d queued request(s)"
                 (Bqueue.length t.queue));
    Bqueue.close t.queue
  end

(* ---- connection writes -------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

(* One whole line per lock hold, so responses from the executor and
   control-plane responses from the reader thread never interleave
   mid-line.  A failed write marks the connection dead and shuts it
   down, waking the reader. *)
let write_json t conn json =
  ignore t;
  with_lock conn.wmutex (fun () ->
      if conn.open_ then
        try
          write_all conn.fd (P.line json);
          (* A response write is activity for the idle guard: the peer
             gets a full idle window to follow up after a long solve. *)
          conn.last_write_s <- Clock.now_s ()
        with Unix.Unix_error _ | Sys_error _ ->
          conn.open_ <- false;
          (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ()))

let overloaded_error ~stage ?subject message ~hints =
  Verrors.make ~code:Verrors.Overloaded ~stage ?subject message ~hints

(* ---- control plane ------------------------------------------------ *)

let health_json t =
  Json.Obj
    [ ("status", Json.Str (if draining t then "draining" else "serving"));
      ("queue_depth", Json.Num (float_of_int (Bqueue.length t.queue)));
      ("queue_capacity", Json.Num (float_of_int (Bqueue.capacity t.queue)));
      ("in_flight", Json.Num (float_of_int (Atomic.get t.in_flight)));
      ("executors", Json.Num (float_of_int (Array.length t.executors)));
      ("jobs", Json.Num (float_of_int (Par.jobs ()))) ]

(* Extrema are guarded per-field, not by [count <> 0]: a histogram fed
   only non-finite samples has count > 0 but sentinel extrema, and
   [Json.Num infinity] would render as [null] — unparseable stats. *)
let histogram_json h =
  let s = Metrics.histogram_stats h in
  let finite name v = if Float.is_finite v then [ (name, Json.Num v) ] else [] in
  Json.Obj
    ([ ("count", Json.Num (float_of_int s.Metrics.count));
       ("mean",
        Json.Num (if Float.is_finite s.Metrics.mean then s.Metrics.mean else 0.0)) ]
    @ finite "min" s.Metrics.min
    @ finite "max" s.Metrics.max
    @
    if s.Metrics.count = 0 then []
    else
      [ ("p50", Json.Num (Metrics.quantile h 0.5));
        ("p90", Json.Num (Metrics.quantile h 0.9)) ])

(* Per-executor state for [stats] / `wavemin top`: lifetime busy
   fraction, responses written (followers included), and the request id
   currently executing (null when idle). *)
let executor_json ~uptime_s ex =
  let busy_frac =
    if uptime_s <= 0.0 then 0.0
    else
      Float.max 0.0
        (Float.min 1.0
           (float_of_int (Atomic.get ex.ex_busy_ns) /. (uptime_s *. 1e9)))
  in
  Json.Obj
    [ ("id", Json.Num (float_of_int ex.ex_id));
      ("requests", Json.Num (float_of_int (Atomic.get ex.ex_requests)));
      ("busy_frac", Json.Num busy_frac);
      ( "rid",
        match Atomic.get ex.ex_rid with "" -> Json.Null | r -> Json.Str r ) ]

let stats_json t =
  let cache = Session.stats t.session in
  let uptime_s = Clock.now_s () -. t.started_s in
  Json.Obj
    [ ("status", Json.Str (if draining t then "draining" else "serving"));
      ("uptime_s", Json.Num uptime_s);
      ("served", Json.Num (float_of_int (Atomic.get t.served)));
      ("rejected", Json.Num (float_of_int (Atomic.get t.rejected)));
      ("errors", Json.Num (float_of_int (Atomic.get t.failed)));
      ("expired", Json.Num (float_of_int (Atomic.get t.expired)));
      ("abandoned", Json.Num (float_of_int (Atomic.get t.abandoned)));
      ("stalled", Json.Num (float_of_int (Atomic.get t.stalls)));
      ("coalesced", Json.Num (float_of_int (Atomic.get t.coalesced)));
      ("in_flight", Json.Num (float_of_int (Atomic.get t.in_flight)));
      ("jobs", Json.Num (float_of_int (Par.jobs ())));
      ( "executors",
        Json.List
          (Array.to_list (Array.map (executor_json ~uptime_s) t.executors)) );
      ( "queue",
        Json.Obj
          [ ("depth", Json.Num (float_of_int (Bqueue.length t.queue)));
            ("capacity", Json.Num (float_of_int (Bqueue.capacity t.queue))) ] );
      ( "cache",
        Json.Obj
          [ ("entries", Json.Num (float_of_int (List.length cache.Session.entries)));
            ("capacity", Json.Num (float_of_int cache.Session.capacity));
            ("shards", Json.Num (float_of_int cache.Session.shards));
            ("hits", Json.Num (float_of_int cache.Session.hits));
            ("misses", Json.Num (float_of_int cache.Session.misses));
            ("evictions", Json.Num (float_of_int cache.Session.evictions));
            ( "warm",
              Json.Obj
                [ ( "entries",
                    Json.Num (float_of_int cache.Session.warm_entries) );
                  ("hits", Json.Num (float_of_int cache.Session.warm_hits));
                  ( "stores",
                    Json.Num (float_of_int cache.Session.warm_stores) ) ] );
            ( "keys",
              Json.List (List.map (fun k -> Json.Str k) cache.Session.entries) ) ] );
      ("latency_ms", histogram_json latency_h);
      ( "rolling",
        Json.Obj
          [ ( "window_s",
              Json.Num (Rolling.window_seconds t.rolling_latency) );
            ("latency_ms", Rolling.stats_json (Rolling.stats t.rolling_latency));
            ( "queue_wait_ms",
              Rolling.stats_json (Rolling.stats t.rolling_queue_wait) ) ] );
      ("last", with_lock t.last_mutex (fun () -> t.last)) ]

let metrics_json fmt =
  match fmt with
  | P.Text ->
    Json.Obj
      [ ("format", Json.Str "prometheus");
        ("body", Json.Str (Prometheus.expose ())) ]
  | P.Json_snapshot ->
    Json.Obj [ ("format", Json.Str "json"); ("metrics", Metrics.to_json ()) ]

let handle_control t conn id = function
  | P.Health -> write_json t conn (P.ok_response ~id (health_json t))
  | P.Stats -> write_json t conn (P.ok_response ~id (stats_json t))
  | P.Metrics fmt -> write_json t conn (P.ok_response ~id (metrics_json fmt))
  | P.Flight ->
    (* Live snapshot of the flight ring — same document the black-box
       dump files carry, so `wavemin explain` renders both. *)
    write_json t conn (P.ok_response ~id (Repro_obs.Flight.to_json ()))
  | P.Shutdown ->
    (* Drain first, ack second: once the client reads the ack,
       [draining] is observably true. *)
    initiate_drain t;
    write_json t conn
      (P.ok_response ~id (Json.Obj [ ("draining", Json.Bool true) ]))
  | P.Run _ | P.Compare _ | P.Validate _ | P.Montecarlo _ -> assert false

(* ---- access log ---------------------------------------------------- *)

(* One JSONL line per data-plane request (rejections and parse failures
   included) — the replayable record of a request's journey.  Strictly
   out-of-band: written after the response bytes are determined, never
   read back by anything on the request path. *)
let access_entry ~rid ~id ~cid ~kind ~benchmark ~status ?code
    ?(cache = Handlers.Cache_none) ?content_key ?(degradations = [])
    ?(queue_wait_ms = 0.0) ?(wall_ms = 0.0) () =
  Json.Obj
    ([ ("ts", Json.Num (Unix.gettimeofday ()));
       ("rid", Json.Str rid);
       ("id", id);
       ("conn", Json.Num (float_of_int cid));
       ("type", Json.Str kind);
       ("benchmark", Json.Str benchmark);
       ("status", Json.Str status) ]
    @ (match code with None -> [] | Some c -> [ ("code", Json.Str c) ])
    @ [ ("cache", Json.Str (Handlers.cache_outcome_name cache));
        ( "content_hash",
          match content_key with None -> Json.Null | Some k -> Json.Str k );
        ( "degradations",
          Json.List (List.map (fun c -> Json.Str c) degradations) );
        ("queue_wait_ms", Json.Num queue_wait_ms);
        ("wall_ms", Json.Num wall_ms);
        ("total_ms", Json.Num (queue_wait_ms +. wall_ms)) ])

let log_access t entry =
  match t.access with None -> () | Some a -> Access_log.write a entry

let benchmark_of = function
  | P.Run { opts; _ } | P.Compare opts | P.Montecarlo { opts; _ } ->
    opts.P.benchmark
  | P.Validate { opts; all } -> if all then "*" else opts.P.benchmark
  | P.Stats | P.Metrics _ | P.Health | P.Flight | P.Shutdown -> ""

(* ---- flight dumps -------------------------------------------------- *)

(* Black-box style: when a request degrades, errors or is shed under
   overload, the flight ring is serialized to [<dir>/<rid>.flight.json]
   — the post-mortem `wavemin explain` consumes.  Best-effort by
   contract (a full disk must not take the request path down). *)
let dump_flight t ~rid ~why =
  match t.cfg.flight_dir with
  | None -> ()
  | Some dir -> (
    let path = Filename.concat dir (rid ^ ".flight.json") in
    match Repro_obs.Flight.write path with
    | Ok () ->
      Log.info (fun m -> m "flight dump (%s) written to %s" why path)
    | Error msg ->
      Log.warn (fun m -> m "cannot write flight dump %s: %s" path msg))

let fresh_rid t = Printf.sprintf "r%06d" (Atomic.fetch_and_add t.next_rid 1)

(* ---- data plane: admission ---------------------------------------- *)

let reject ?(overload = false) t conn ~rid id req err =
  Atomic.incr t.rejected;
  Metrics.incr rejected_c;
  write_json t conn (P.error_response ~id err);
  log_access t
    (access_entry ~rid ~id ~cid:conn.cid ~kind:(P.request_kind req)
       ~benchmark:(benchmark_of req) ~status:"rejected"
       ~code:(Verrors.code_name err.Verrors.code) ());
  (* One dump per overload episode: a flood would otherwise write one
     file per shed request; the flag re-arms when admission succeeds. *)
  if overload && Atomic.compare_and_set t.overload_dumped false true then
    dump_flight t ~rid ~why:"overloaded"

(* Single-flight admission, decided on the reader thread: the first
   arrival for a content key takes a queue slot and becomes the leader;
   duplicates arriving while that flight is open attach as followers —
   no queue slot, no recomputation — and are answered by the leader's
   executor with their own request ids.  Works at any executor count
   (including 1) because joining happens before the queue, not at pop
   time. *)
let admit t conn ~rid ~deadline_ns id req =
  let key = P.canonical_key req in
  let item =
    { item_conn = conn; item_id = id; item_rid = rid; item_req = req;
      item_key = key; item_deadline_ns = deadline_ns;
      enqueued_s = Clock.now_s ();
      enqueued_ns = Clock.now_ns () }
  in
  let enqueue () =
    match Bqueue.push t.queue item with
    | `Ok -> Ok ()
    | (`Full | `Closed) as refusal -> Error refusal
  in
  (* Owed before admission, repaid when the response (or shed error) is
     written: incrementing first means the executor can never settle an
     item the reader has not yet counted. *)
  Atomic.incr conn.pending;
  match Sflight.admit t.sflight ~key item ~enqueue with
  | `Led () ->
    Atomic.set t.overload_dumped false;
    Metrics.incr requests_c;
    Metrics.set queue_depth_g (float_of_int (Bqueue.length t.queue))
  | `Joined ->
    Atomic.set t.overload_dumped false;
    Metrics.incr requests_c;
    Atomic.incr t.coalesced;
    Metrics.incr coalesced_c;
    Flight.record
      (Flight.Cache { cache = "single-flight"; outcome = "coalesced"; key })
  | `Refused `Full ->
    Atomic.decr conn.pending;
    reject ~overload:true t conn ~rid id req
      (overloaded_error ~stage:"server.queue" ~subject:(P.request_kind req)
         (Printf.sprintf "request queue full (%d/%d): request rejected"
            (Bqueue.capacity t.queue) (Bqueue.capacity t.queue))
         ~hints:
           [ "retry with backoff";
             "raise the bound with `wavemin serve --queue N'" ])
  | `Refused `Closed ->
    Atomic.decr conn.pending;
    reject t conn ~rid id req
      (overloaded_error ~stage:"server.queue" ~subject:(P.request_kind req)
         "server is draining: no new work is accepted" ~hints:[])

let handle_line t conn line =
  let { P.id; deadline_ms; payload } = P.parse_request line in
  (* The absolute deadline is stamped here, at parse time: queue wait,
     execution and response writing all count against it. *)
  let deadline_ns =
    Option.map
      (fun ms -> Int64.add (Clock.now_ns ()) (Int64.of_float (ms *. 1e6)))
      deadline_ms
  in
  match payload with
  | Error e ->
    Atomic.incr t.failed;
    Metrics.incr errors_c;
    write_json t conn (P.error_response ~id e);
    log_access t
      (access_entry ~rid:(fresh_rid t) ~id ~cid:conn.cid ~kind:"invalid"
         ~benchmark:"" ~status:"error" ~code:(Verrors.code_name e.Verrors.code)
         ())
  | Ok req ->
    if P.is_control req then handle_control t conn id req
    else
      let rid = fresh_rid t in
      if draining t then
        reject t conn ~rid id req
          (overloaded_error ~stage:"server.queue" ~subject:(P.request_kind req)
             "server is draining: no new work is accepted" ~hints:[])
      else admit t conn ~rid ~deadline_ns id req

(* ---- connections -------------------------------------------------- *)

let unregister t cid = with_lock t.conns_mutex (fun () -> Hashtbl.remove t.conns cid)

(* Structured rejection for a misbehaving peer (oversized request line,
   slowloris dribble): one error line on the wire, one access-log entry,
   then the caller closes the connection.  The peer may never read the
   response — that is its problem, not a parked reader thread's. *)
let reject_peer t conn ~kind ~code err =
  Atomic.incr t.failed;
  Metrics.incr errors_c;
  write_json t conn (P.error_response ~id:Json.Null err);
  log_access t
    (access_entry ~rid:(fresh_rid t) ~id:Json.Null ~cid:conn.cid ~kind
       ~benchmark:"" ~status:"rejected" ~code ())

(* The connection reader: a bounded buffer fed by [Unix.read] under a
   [select] poll — never an unbounded [Buffer], never a read the drain
   cannot interrupt.  Caps and timeouts:

   - a line longer than [max_line_bytes] gets a structured
     [parse-error] rejection and the connection is closed (an attacker
     streaming an endless line previously grew a channel buffer without
     bound);
   - no complete line for [idle_timeout_s] — idle peer or slowloris
     dribble alike — gets a structured [io-error] rejection and the
     close (a byte-at-a-time sender previously parked this thread
     forever).  A connection still owed responses is exempt: waiting
     on a queued or slow solve is not idling;
   - EOF (client disconnect) exits quietly; queued work from this
     connection is detected dead at pop time and marked abandoned. *)
let conn_loop t conn =
  let max_line = max 1024 t.cfg.max_line_bytes in
  let chunk = Bytes.create 8192 in
  let acc = Buffer.create 256 in
  let last_line_s = ref (Clock.now_s ()) in
  let state = ref `Reading in
  let handle_buffered () =
    (* Split out every complete line; keep the unterminated tail (empty
       when the last byte was '\n').  A tail alone past the cap is
       already oversized — no need to wait for its newline. *)
    let s = Buffer.contents acc in
    let len = String.length s in
    let pos = ref 0 in
    let scanning = ref true in
    while !scanning && !state = `Reading do
      match String.index_from_opt s !pos '\n' with
      | Some nl ->
        let line = String.sub s !pos (nl - !pos) in
        last_line_s := Clock.now_s ();
        if String.trim line <> "" then handle_line t conn line;
        pos := nl + 1
      | None -> scanning := false
    done;
    Buffer.clear acc;
    if !state = `Reading && !pos < len then begin
      Buffer.add_substring acc s !pos (len - !pos);
      if Buffer.length acc > max_line then state := `Oversized
    end
  in
  let rec loop () =
    match !state with
    | `Oversized | `Timed_out | `Eof -> ()
    | `Reading ->
      let idle_left =
        match t.cfg.idle_timeout_s with
        | None -> infinity
        | Some limit ->
          (* A connection still owed responses is waiting on us, not
             idling: the clock is held at a full window while work is
             pending, and response writes count as activity, so a peer
             that queued a slow solve is never cut off mid-wait. *)
          if Atomic.get conn.pending > 0 then limit
          else
            let last_write =
              with_lock conn.wmutex (fun () -> conn.last_write_s)
            in
            limit -. (Clock.now_s () -. Float.max !last_line_s last_write)
      in
      if idle_left <= 0.0 then state := `Timed_out
      else begin
        (* Short poll slices keep drain prompt even against a silent
           peer; the idle budget spans slices via [last_line_s]. *)
        let tick = Float.min 0.25 idle_left in
        (match Unix.select [ conn.fd ] [] [] tick with
        | [], _, _ -> ()
        | _ :: _, _, _ -> (
          match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
          | 0 -> state := `Eof
          | n ->
            Buffer.add_subbytes acc chunk 0 n;
            handle_buffered ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            -> ()
          | exception (Unix.Unix_error _ | Sys_error _) -> state := `Eof)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> state := `Eof);
        if with_lock conn.wmutex (fun () -> not conn.open_) then state := `Eof;
        loop ()
      end
  in
  loop ();
  (match !state with
  | `Oversized ->
    reject_peer t conn ~kind:"oversized" ~code:"parse-error"
      (Verrors.make ~code:Verrors.Parse_error ~stage:"server.read"
         ~subject:"request-line"
         (Printf.sprintf
            "request line exceeds %d bytes: connection closed" max_line)
         ~hints:[ "split work into separate requests";
                  "raise the cap with `wavemin serve --max-line BYTES'" ])
  | `Timed_out ->
    reject_peer t conn ~kind:"idle" ~code:"io-error"
      (Verrors.make ~code:Verrors.Io_error ~stage:"server.read"
         ~subject:"idle-timeout"
         (Printf.sprintf
            "no complete request line in %.0f s: connection closed"
            (Option.value ~default:0.0 t.cfg.idle_timeout_s))
         ~hints:[ "send each request as one newline-terminated line" ])
  | `Eof | `Reading -> ());
  with_lock conn.wmutex (fun () ->
      if conn.open_ then begin
        conn.open_ <- false;
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
      end);
  (* The reader is the only closer, so the descriptor is closed exactly
     once and never while another thread could still write to it (writes
     check [open_] under [wmutex]). *)
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  unregister t conn.cid

let spawn_conn t fd =
  let cid = Atomic.fetch_and_add t.next_cid 1 in
  let conn =
    { cid; fd; wmutex = Mutex.create (); open_ = true;
      pending = Atomic.make 0; last_write_s = 0.0 }
  in
  with_lock t.conns_mutex (fun () ->
      let thread = Thread.create (fun () -> conn_loop t conn) () in
      Hashtbl.replace t.conns cid (conn, thread))

(* Poll-based accept so drain needs no blocked-syscall tricks: the loop
   re-checks [accepting] at least every 250 ms. *)
let accept_loop t =
  let rec loop () =
    if Atomic.get t.accepting then begin
      (match Unix.select [ t.listener ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listener with
        | fd, _ ->
          if Atomic.get t.accepting then spawn_conn t fd
          else ( try Unix.close fd with Unix.Unix_error _ -> ())
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
          -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        Atomic.set t.accepting false);
      loop ()
    end
  in
  loop ()

(* ---- executors ---------------------------------------------------- *)

let outcome_row = function
  | Ok _ -> ("ok", None, [])
  | Error (e, degs) ->
    ( "error",
      Some (Verrors.code_name e.Verrors.code),
      List.map
        (fun d -> Verrors.code_name d.Repro_core.Flow.error.Verrors.code)
        degs )

(* The [last] correlation block published before a response's bytes
   leave, so a client that got its answer can immediately look itself
   up via [stats] (`wavemin client --time`). *)
let publish_last t ~id ~rid ~kind ~benchmark ~status ~cache ~queue_wait_ms
    ~wall_ms =
  let last =
    Json.Obj
      [ ("id", id);
        ("rid", Json.Str rid);
        ("type", Json.Str kind);
        ("benchmark", Json.Str benchmark);
        ("status", Json.Str status);
        ("cache", Json.Str (Handlers.cache_outcome_name cache));
        ("queue_wait_ms", Json.Num queue_wait_ms);
        ("wall_ms", Json.Num wall_ms) ]
  in
  with_lock t.last_mutex (fun () -> t.last <- last)

(* The admitted item's response (or shed error) is on the wire — or its
   client is gone.  Either way its connection is owed one response
   fewer, re-arming the reader's idle guard once nothing is pending. *)
let settle item = Atomic.decr item.item_conn.pending

(* Answer one coalesced follower with the leader's (deterministic)
   outcome under the follower's own request id.  Telemetry mirrors a
   normal request: an access-log line with [cache = "coalesced"] and
   the shared content hash, latency observations, and a retroactive
   [server.coalesced] span covering the follower's whole wait on the
   leader's executor lane. *)
let respond_follower t ex ~leader_rid ~outcome ~(meta : Handlers.meta)
    ~exec_started_s f =
  let kind = P.request_kind f.item_req in
  let benchmark = benchmark_of f.item_req in
  let rid = f.item_rid in
  let queue_wait_ms =
    Float.max 0.0 ((exec_started_s -. f.enqueued_s) *. 1000.0)
  in
  let total_ms = Float.max 0.0 ((Clock.now_s () -. f.enqueued_s) *. 1000.0) in
  let wall_ms = Float.max 0.0 (total_ms -. queue_wait_ms) in
  let status, code, degradations = outcome_row outcome in
  Trace.record ~name:"server.coalesced"
    ~attrs:
      [ ("request_id", rid); ("leader_rid", leader_rid); ("type", kind);
        ("benchmark", benchmark) ]
    ~tid:ex.ex_tid ~start_ns:f.enqueued_ns
    ~dur_ns:(Int64.sub (Clock.now_ns ()) f.enqueued_ns)
    ();
  publish_last t ~id:f.item_id ~rid ~kind ~benchmark ~status
    ~cache:Handlers.Cache_coalesced ~queue_wait_ms ~wall_ms;
  log_access t
    (access_entry ~rid ~id:f.item_id ~cid:f.item_conn.cid ~kind ~benchmark
       ~status ?code ~cache:Handlers.Cache_coalesced
       ?content_key:meta.Handlers.content_key ~degradations ~queue_wait_ms
       ~wall_ms ());
  (match outcome with
  | Ok result ->
    Atomic.incr t.served;
    write_json t f.item_conn (P.ok_response ~id:f.item_id result)
  | Error (e, degs) ->
    Atomic.incr t.failed;
    Metrics.incr errors_c;
    write_json t f.item_conn
      (P.error_response ~id:f.item_id
         ~degradations:(List.map Handlers.degradation_json degs)
         e));
  settle f;
  Metrics.observe latency_h total_ms;
  Rolling.observe t.rolling_latency total_ms;
  Metrics.observe queue_wait_h queue_wait_ms;
  Rolling.observe t.rolling_queue_wait queue_wait_ms

let opts_of = function
  | P.Run { opts; _ } | P.Compare opts | P.Validate { opts; _ }
  | P.Montecarlo { opts; _ } -> Some opts
  | P.Stats | P.Metrics _ | P.Health | P.Flight | P.Shutdown -> None

(* How long a request may run before the watchdog calls it stalled: a
   budgeted or deadlined request gets [stall_factor] × its tighter
   limit (a solve that cooperatively cancels never gets near that); an
   unbounded one gets the flat configured ceiling. *)
let stall_factor = 4.0

let stall_limit_ns t item ~now =
  let budget_s =
    match opts_of item.item_req with
    | Some o -> Option.map (fun ms -> ms /. 1000.0) o.P.budget_ms
    | None -> None
  in
  let deadline_s =
    Option.map
      (fun d -> Float.max 0.0 (Int64.to_float (Int64.sub d now) /. 1e9))
      item.item_deadline_ns
  in
  let tighter =
    match (budget_s, deadline_s) with
    | Some b, Some d -> Some (Float.min b d)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  let limit_s =
    match tighter with
    | Some s -> Float.max 0.05 (stall_factor *. s)
    | None -> t.cfg.stall_after_s
  in
  Int64.add now (Int64.of_float (limit_s *. 1e9))

(* [claimed]: followers already detached from the flight by [dispatch]
   (the original leader was shed and this item promoted); the flight no
   longer exists, so the mid-execution [Sflight.complete] must not run
   — a duplicate arriving meanwhile opens a fresh flight, which is
   harmless because responses are deterministic. *)
let process ?claimed t ex item =
  let kind = P.request_kind item.item_req in
  let benchmark = benchmark_of item.item_req in
  let rid = item.item_rid in
  let attrs = [ ("request_id", rid); ("type", kind); ("benchmark", benchmark) ] in
  Atomic.incr t.in_flight;
  Metrics.set in_flight_g (float_of_int (Atomic.get t.in_flight));
  Metrics.set queue_depth_g (float_of_int (Bqueue.length t.queue));
  Atomic.set ex.ex_stall_ns (stall_limit_ns t item ~now:(Clock.now_ns ()));
  let started_s = Clock.now_s () in
  let queue_wait_ms = (started_s -. item.enqueued_s) *. 1000.0 in
  Metrics.observe queue_wait_h queue_wait_ms;
  Rolling.observe t.rolling_queue_wait queue_wait_ms;
  (* Retroactive queue-wait span: enqueue was its start, pop its end. *)
  Trace.record ~name:"server.queue" ~attrs ~tid:ex.ex_tid
    ~start_ns:item.enqueued_ns
    ~dur_ns:(Int64.sub (Clock.now_ns ()) item.enqueued_ns)
    ();
  let meta = Handlers.create_meta () in
  let outcome, wall_ms =
    Trace.with_span ~name:"server.request" ~attrs ~tid:ex.ex_tid (fun () ->
        let outcome =
          Trace.with_span ~name:"server.execute" ~attrs:[ ("request_id", rid) ]
            ~tid:ex.ex_tid (fun () ->
              (* Handlers never raise by contract; the guard is the
                 last-ditch net that keeps the daemon alive if one
                 does. *)
              match
                Verrors.guard ~stage:"server.request" (fun () ->
                    Handlers.execute ~meta
                      ?deadline_ns:item.item_deadline_ns t.session
                      item.item_req)
              with
              | Ok outcome -> outcome
              | Error e -> Error (e, []))
        in
        let wall_ms = (Clock.now_s () -. started_s) *. 1000.0 in
        (* Close the flight before any response is written: a duplicate
           arriving after this point opens a fresh flight (so a failure
           is never memoized), and none can attach to a flight whose
           responses are already on the wire. *)
        let followers =
          match claimed with
          | Some fs -> fs
          | None -> Sflight.complete t.sflight ~key:item.item_key
        in
        let status, code, degradations = outcome_row outcome in
        publish_last t ~id:item.item_id ~rid ~kind ~benchmark ~status
          ~cache:meta.Handlers.cache ~queue_wait_ms ~wall_ms;
        log_access t
          (access_entry ~rid ~id:item.item_id ~cid:item.item_conn.cid ~kind
             ~benchmark ~status ?code ~cache:meta.Handlers.cache
             ?content_key:meta.Handlers.content_key ~degradations
             ~queue_wait_ms ~wall_ms ());
        (* Black-box dump: anything that failed or degraded leaves a
           forensic trail named after the request id.  A successful run
           carries its degradations inside the (deterministic) result
           body, so peek there for the degraded-but-ok case.  Leader
           only — followers share the exact same solve. *)
        (match outcome with
        | Error _ -> dump_flight t ~rid ~why:"faulted request"
        | Ok result -> (
          match Json.member "degradations" result with
          | Some (Json.List (_ :: _)) ->
            dump_flight t ~rid ~why:"degraded request"
          | _ -> ()));
        Trace.with_span ~name:"server.respond" ~attrs:[ ("request_id", rid) ]
          ~tid:ex.ex_tid (fun () ->
            match outcome with
            | Ok result ->
              Atomic.incr t.served;
              write_json t item.item_conn (P.ok_response ~id:item.item_id result)
            | Error (e, degs) ->
              Atomic.incr t.failed;
              Metrics.incr errors_c;
              Log.warn (fun m ->
                  m "%s %s failed: %s" kind benchmark
                    (Verrors.code_name e.Verrors.code));
              write_json t item.item_conn
                (P.error_response ~id:item.item_id
                   ~degradations:(List.map Handlers.degradation_json degs)
                   e));
        settle item;
        List.iter
          (respond_follower t ex ~leader_rid:rid ~outcome ~meta
             ~exec_started_s:started_s)
          followers;
        ignore
          (Atomic.fetch_and_add ex.ex_requests (1 + List.length followers));
        (outcome, wall_ms))
  in
  ignore outcome;
  let total_ms = queue_wait_ms +. wall_ms in
  Metrics.observe latency_h total_ms;
  Rolling.observe t.rolling_latency total_ms;
  Atomic.set ex.ex_stall_ns 0L;
  Atomic.decr t.in_flight;
  Metrics.set in_flight_g (float_of_int (Atomic.get t.in_flight))

(* ---- shed work: expired and abandoned entries --------------------- *)

(* Answer one flight member that will never execute.  An expired entry
   owes its (still-listening) client a structured [deadline-exceeded]
   line; an abandoned one has nobody left to write to and is only
   accounted.  Either way the solve was skipped: no cache mutation, no
   solve span — the property tests pin exactly that. *)
let shed t reason item =
  let kind = P.request_kind item.item_req in
  let benchmark = benchmark_of item.item_req in
  let waited_ms =
    Float.max 0.0 ((Clock.now_s () -. item.enqueued_s) *. 1000.0)
  in
  settle item;
  match reason with
  | `Expired ->
    Atomic.incr t.expired;
    Metrics.incr expired_c;
    Flight.record
      (Flight.Note
         { name = "request-expired";
           attrs =
             [ ("rid", item.item_rid); ("type", kind);
               ("queued_ms", Printf.sprintf "%.0f" waited_ms) ] });
    write_json t item.item_conn
      (P.error_response ~id:item.item_id
         (Verrors.make ~code:Verrors.Deadline_exceeded ~stage:"server.queue"
            ~subject:kind
            (Printf.sprintf
               "deadline exceeded after %.0f ms in queue: request was not \
                executed"
               waited_ms)
            ~hints:
              [ "raise deadline_ms, or drop it for best-effort requests";
                "shrink queueing with `wavemin serve --executors N'" ]));
    log_access t
      (access_entry ~rid:item.item_rid ~id:item.item_id
         ~cid:item.item_conn.cid ~kind ~benchmark ~status:"expired"
         ~code:"deadline-exceeded" ~queue_wait_ms:waited_ms ())
  | `Abandoned ->
    Atomic.incr t.abandoned;
    Metrics.incr abandoned_c;
    log_access t
      (access_entry ~rid:item.item_rid ~id:item.item_id
         ~cid:item.item_conn.cid ~kind ~benchmark ~status:"abandoned"
         ~queue_wait_ms:waited_ms ())

(* A popped leader can be dead on arrival: expired in the window
   between the pop-time sweep and here, or its client already gone.
   Claim the whole flight atomically, then triage per member — any live
   member still wants the (shared, deterministic) answer, so the solve
   proceeds with the first live member promoted to leader; with no live
   member left the solve is skipped entirely. *)
let dispatch t ex item =
  let item_expired it =
    match it.item_deadline_ns with
    | Some d -> Int64.compare (Clock.now_ns ()) d > 0
    | None -> false
  in
  let item_abandoned it =
    with_lock it.item_conn.wmutex (fun () -> not it.item_conn.open_)
  in
  if not (item_expired item || item_abandoned item) then process t ex item
  else begin
    let followers = Sflight.complete t.sflight ~key:item.item_key in
    let live, gone =
      List.partition
        (fun it -> not (item_expired it) && not (item_abandoned it))
        (item :: followers)
    in
    List.iter
      (fun it -> shed t (if item_abandoned it then `Abandoned else `Expired) it)
      gone;
    match live with
    | [] -> ()
    | leader :: claimed -> process t ex leader ~claimed
  end

(* ---- lifecycle ---------------------------------------------------- *)

let io_fail stage msg =
  Verrors.fail ~code:Verrors.Io_error ~stage msg

let bind_listener = function
  | Unix_path path ->
    if String.length path >= 104 then
      io_fail "server.bind"
        (Printf.sprintf "socket path too long (%d chars): %s"
           (String.length path) path);
    (* Stale-socket recovery: a SIGKILLed daemon leaves its socket file
       behind.  Probe before evicting — only a socket nobody answers is
       stale; a live daemon (or any non-socket file) must be refused,
       never unlinked out from under its owner. *)
    (match (Unix.stat path).Unix.st_kind with
    | Unix.S_SOCK -> (
      let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> `Live
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
          -> `Stale
        | exception Unix.Unix_error (err, _, _) -> `Unknown err
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      match verdict with
      | `Live ->
        io_fail "server.bind"
          (Printf.sprintf
             "%s: a live daemon already answers on this socket; refusing to \
              evict it"
             path)
      | `Stale ->
        Log.info (fun m -> m "removing stale socket %s (nobody answers)" path);
        (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | `Unknown err ->
        io_fail "server.bind"
          (Printf.sprintf "%s exists and cannot be probed (%s): not evicting"
             path (Unix.error_message err)))
    | _ ->
      io_fail "server.bind"
        (Printf.sprintf "%s exists and is not a socket: not evicting" path)
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    | exception (Unix.Unix_error _ | Sys_error _) -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64;
       fd
     with Unix.Unix_error (err, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       io_fail "server.bind"
         (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message err)))
  | Tcp { host; port } ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          io_fail "server.bind" (Printf.sprintf "cannot resolve host %s" host)
        | { Unix.h_addr_list; _ } -> h_addr_list.(0))
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port));
       Unix.listen fd 64;
       fd
     with Unix.Unix_error (err, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       io_fail "server.bind"
         (Printf.sprintf "cannot bind %s:%d: %s" host port
            (Unix.error_message err)))

(* SIGTERM/SIGINT → one byte down a self-pipe → a watcher thread runs
   the drain.  The handler itself takes no locks (it may interrupt code
   holding any of them). *)
let install_signal_handlers t =
  let r, w = Unix.pipe ~cloexec:true () in
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        let buf = Bytes.create 1 in
        (match Unix.read r buf 0 1 with
        | _ -> ()
        | exception (Unix.Unix_error _ | Sys_error _) -> ());
        Log.info (fun m -> m "signal received: draining");
        initiate_drain t)
      ()
  in
  let byte = Bytes.make 1 '!' in
  let handler =
    Sys.Signal_handle
      (fun _ ->
        try ignore (Unix.write w byte 0 1) with Unix.Unix_error _ -> ())
  in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler

(* ---- runtime sampler ---------------------------------------------- *)

(* Extra gauges recorded by the periodic [Obs.Runtime] sampler: queue
   and executor state, the rolling percentiles (mirrored as gauges so a
   Prometheus scrape sees them), and the domain-pool busy fraction over
   the last sampling interval.  Runs on the sampler thread only. *)
let sampler_probe t () =
  let lat = Rolling.stats t.rolling_latency in
  let pool =
    match Par.pool_stats () with
    | None -> []
    | Some s ->
      let now = Clock.now_s () in
      let busy = Array.fold_left ( + ) 0 s.Pool.busy_ns in
      let frac =
        match t.pool_prev with
        | Some (t0, b0) when now > t0 ->
          let dt_ns = (now -. t0) *. 1e9 in
          Float.max 0.0
            (Float.min 1.0
               (float_of_int (busy - b0) /. (dt_ns *. float_of_int s.Pool.jobs)))
        | _ -> 0.0
      in
      t.pool_prev <- Some (now, busy);
      [ ("par.pool_busy_frac", frac) ]
  in
  let uptime_s = Clock.now_s () -. t.started_s in
  let per_executor =
    Array.to_list t.executors
    |> List.concat_map (fun ex ->
           let busy_frac =
             if uptime_s <= 0.0 then 0.0
             else
               Float.min 1.0
                 (float_of_int (Atomic.get ex.ex_busy_ns) /. (uptime_s *. 1e9))
           in
           [ ( Printf.sprintf "server.executor%d_busy_frac" ex.ex_id,
               busy_frac );
             ( Printf.sprintf "server.executor%d_requests" ex.ex_id,
               float_of_int (Atomic.get ex.ex_requests) ) ])
  in
  [ ("server.queue_depth", float_of_int (Bqueue.length t.queue));
    ("server.in_flight", float_of_int (Atomic.get t.in_flight));
    ("server.coalesced", float_of_int (Atomic.get t.coalesced));
    ("server.rolling_latency_p50_ms", lat.Rolling.p50);
    ("server.rolling_latency_p95_ms", lat.Rolling.p95);
    ("server.rolling_latency_p99_ms", lat.Rolling.p99);
    ("server.rolling_throughput_rps", lat.Rolling.rate) ]
  @ per_executor @ pool

let flush_report t =
  match t.cfg.report_path with
  | None -> ()
  | Some path -> (
    let cache = Session.stats t.session in
    let builder =
      Report.create ~experiment:"serve-drain"
        ~config:
          [ ("queue_capacity", string_of_int t.cfg.queue_capacity);
            ("cache_capacity", string_of_int t.cfg.cache_capacity);
            ("cache_shards", string_of_int cache.Session.shards);
            ("executors", string_of_int (Array.length t.executors)) ]
        ~environment:
          [ ("jobs", string_of_int (Par.jobs ()));
            ("address", address_to_string t.cfg.address);
            ("uptime_s", Json.float_to_string (Clock.now_s () -. t.started_s));
            ("requests_served", string_of_int (Atomic.get t.served));
            ("requests_rejected", string_of_int (Atomic.get t.rejected));
            ("request_errors", string_of_int (Atomic.get t.failed));
            ("requests_coalesced", string_of_int (Atomic.get t.coalesced));
            ("requests_expired", string_of_int (Atomic.get t.expired));
            ("requests_abandoned", string_of_int (Atomic.get t.abandoned));
            ("executor_stalls", string_of_int (Atomic.get t.stalls));
            ("cache_hits", string_of_int cache.Session.hits);
            ("cache_misses", string_of_int cache.Session.misses);
            ("cache_evictions", string_of_int cache.Session.evictions) ]
        ()
    in
    Report.add_stage builder ~stage:"serve"
      ~wall_s:(Clock.now_s () -. t.started_s)
      ~cpu_s:(Clock.cpu_s () -. t.started_cpu_s);
    let report = Report.finalize builder in
    match
      Verrors.guard ~stage:"server.report" (fun () -> Report.write path report)
    with
    | Ok () -> Log.info (fun m -> m "wrote final run report to %s" path)
    | Error e ->
      (* Survive the report-writer fault seam: drain completed, the
         report is best-effort. *)
      Log.warn (fun m -> m "cannot write final report: %s" (Verrors.to_string e)))

let open_access_log cfg =
  match cfg.access_log_path with
  | None -> None
  | Some path ->
    Some
      (Access_log.create ?max_bytes:cfg.access_log_max_bytes
         ~keep:cfg.access_log_keep path)

let setup cfg =
  (* A dead client mid-write must be an EPIPE error, not a fatal signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* The daemon records always: the ring is the black box whose dump
     explains the next degraded request.  Recording never influences
     responses (the bit-identity property runs with it enabled). *)
  Repro_obs.Flight.set_enabled true;
  let listener = bind_listener cfg.address in
  let n_executors = if cfg.executors <= 0 then Par.jobs () else cfg.executors in
  let t =
    { cfg;
      listener;
      queue = Bqueue.create ~capacity:cfg.queue_capacity;
      session =
        Session.create ~capacity:cfg.cache_capacity ~shards:cfg.cache_shards ();
      executors =
        Array.init n_executors (fun k ->
            { ex_id = k;
              ex_tid = executor_tid_base + k;
              ex_requests = Atomic.make 0;
              ex_busy_ns = Atomic.make 0;
              ex_rid = Atomic.make "";
              ex_stall_ns = Atomic.make 0L;
              ex_stall_reported = Atomic.make "" });
      sflight = Sflight.create ();
      coalesced = Atomic.make 0;
      accepting = Atomic.make true;
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      next_cid = Atomic.make 0;
      next_rid = Atomic.make 0;
      started_s = Clock.now_s ();
      started_cpu_s = Clock.cpu_s ();
      served = Atomic.make 0;
      rejected = Atomic.make 0;
      failed = Atomic.make 0;
      expired = Atomic.make 0;
      abandoned = Atomic.make 0;
      stalls = Atomic.make 0;
      in_flight = Atomic.make 0;
      rolling_latency = Rolling.create ~window_s:cfg.rolling_window_s ();
      rolling_queue_wait = Rolling.create ~window_s:cfg.rolling_window_s ();
      access = open_access_log cfg;
      overload_dumped = Atomic.make false;
      last_mutex = Mutex.create ();
      last = Json.Null;
      sampler = None;
      pool_prev = None;
      acceptor = None;
      watchdog_stop = Atomic.make false;
      watchdog = None }
  in
  Trace.set_process_name "wavemin-serve";
  Array.iter
    (fun ex ->
      Trace.set_thread_name ~tid:ex.ex_tid
        (Printf.sprintf "server-executor-%d" ex.ex_id))
    t.executors;
  (match cfg.sample_period_s with
  | None -> ()
  | Some period_s ->
    t.sampler <- Some (Runtime.start ~period_s ~probe:(sampler_probe t) ()));
  if cfg.handle_signals then install_signal_handlers t;
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  (match cfg.readiness with
  | None -> ()
  | Some oc ->
    Printf.fprintf oc
      "wavemin serve: listening on %s (jobs=%d, executors=%d, queue=%d, cache=%d)\n"
      (address_to_string cfg.address) (Par.jobs ())
      (Array.length t.executors) cfg.queue_capacity cfg.cache_capacity;
    flush oc);
  Log.info (fun m -> m "listening on %s" (address_to_string cfg.address));
  t

(* One executor worker: pop until the queue is closed and empty,
   tracking busy time and the request id in flight for [stats].  The
   expiry-sweeping pop skims entries that went stale while queued in
   one lock hold; each swept entry still goes through [dispatch], which
   owns the flight bookkeeping and the member-by-member triage. *)
let executor_loop t ex =
  let expired_now item =
    match item.item_deadline_ns with
    | Some d -> Int64.compare (Clock.now_ns ()) d > 0
    | None -> false
  in
  let handle item =
    let t0 = Clock.now_ns () in
    Atomic.set ex.ex_rid item.item_rid;
    dispatch t ex item;
    Atomic.set ex.ex_rid "";
    Atomic.set ex.ex_stall_ns 0L;
    ignore
      (Atomic.fetch_and_add ex.ex_busy_ns
         (Int64.to_int (Int64.sub (Clock.now_ns ()) t0)))
  in
  let rec loop () =
    let live, swept = Bqueue.pop_live t.queue ~expired:expired_now in
    List.iter handle swept;
    match live with
    | Some item ->
      handle item;
      loop ()
    | None -> if swept <> [] then loop ()
  in
  loop ()

(* ---- watchdog ----------------------------------------------------- *)

(* Detects executors that stopped making progress: each worker
   publishes an absolute stall limit when it starts a request and
   clears it when done; a lane still past its limit at poll time gets
   one warning, one [server.executor_stalled] bump, one flight note and
   one black-box dump — per wedged request, not per tick.  Evidence for
   the operator only: there is no safe way to kill a wedged thread, the
   budget channel is the cooperative path. *)
let watchdog_loop t period_s =
  (* Sleep in short slices so drain never waits a full period. *)
  let rec nap left =
    if left > 0.0 && not (Atomic.get t.watchdog_stop) then begin
      let s = Float.min 0.05 left in
      Thread.delay s;
      nap (left -. s)
    end
  in
  while not (Atomic.get t.watchdog_stop) do
    Array.iter
      (fun ex ->
        let limit = Atomic.get ex.ex_stall_ns in
        let rid = Atomic.get ex.ex_rid in
        if
          (not (Int64.equal limit 0L))
          && rid <> ""
          && Int64.compare (Clock.now_ns ()) limit > 0
          && Atomic.get ex.ex_stall_reported <> rid
        then begin
          Atomic.set ex.ex_stall_reported rid;
          Atomic.incr t.stalls;
          Metrics.incr stalled_c;
          let overdue_ms =
            Int64.to_float (Int64.sub (Clock.now_ns ()) limit) /. 1e6
          in
          Log.warn (fun m ->
              m "executor %d stalled on %s (%.0f ms past its stall limit)"
                ex.ex_id rid overdue_ms);
          Flight.record
            (Flight.Note
               { name = "executor-stalled";
                 attrs =
                   [ ("rid", rid);
                     ("executor", string_of_int ex.ex_id);
                     ("overdue_ms", Printf.sprintf "%.0f" overdue_ms) ] });
          dump_flight t ~rid ~why:"stalled executor"
        end)
      t.executors;
    nap period_s
  done

let run t =
  (* The data plane: N executor workers pulling from the shared bounded
     queue; each request's solver internals still fan out across the
     Repro_par pool, so total parallelism is executors × per-request
     pool use.  Drain joins every worker before the (single) cleanup
     and final report below. *)
  let workers =
    Array.map
      (fun ex -> Thread.create (fun () -> executor_loop t ex) ())
      t.executors
  in
  (match t.cfg.watchdog_period_s with
  | None -> ()
  | Some period_s ->
    t.watchdog <- Some (Thread.create (fun () -> watchdog_loop t period_s) ()));
  Array.iter Thread.join workers;
  Atomic.set t.watchdog_stop true;
  (match t.watchdog with None -> () | Some th -> Thread.join th);
  t.watchdog <- None;
  (* Drained: stop the acceptor, wake and join the readers, release the
     socket, flush the final report. *)
  Atomic.set t.accepting false;
  (match t.acceptor with None -> () | Some th -> Thread.join th);
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.cfg.address with
  | Unix_path path ->
    (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  let conns =
    with_lock t.conns_mutex (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  in
  List.iter
    (fun (conn, _) ->
      with_lock conn.wmutex (fun () ->
          if conn.open_ then begin
            conn.open_ <- false;
            try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ()
          end))
    conns;
  List.iter (fun (_, thread) -> Thread.join thread) conns;
  (* Stop the sampler, then take one final snapshot so the drain report
     captures end-of-life gauges. *)
  (match t.sampler with
  | None -> ()
  | Some s ->
    t.sampler <- None;
    Runtime.stop s;
    try Runtime.sample ~probe:(sampler_probe t) () with _ -> ());
  (match t.access with None -> () | Some a -> Access_log.close a);
  Log.info (fun m ->
      m "drained: %d served, %d rejected, %d failed" (Atomic.get t.served)
        (Atomic.get t.rejected) (Atomic.get t.failed));
  flush_report t

let serve cfg = run (setup cfg)

let serve_background cfg =
  let t = setup cfg in
  (t, Thread.create (fun () -> run t) ())
