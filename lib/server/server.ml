module Json = Repro_util.Json
module Verrors = Repro_util.Verrors
module Clock = Repro_obs.Clock
module Trace = Repro_obs.Trace
module Metrics = Repro_obs.Metrics
module Report = Repro_obs.Report
module Par = Repro_par.Par
module P = Protocol
module Log = (val Logs.src_log (Repro_obs.Log.src "wavemin.server"))

(* ---- metrics ------------------------------------------------------ *)

let requests_c = Metrics.counter "server.requests"
let rejected_c = Metrics.counter "server.rejected"
let errors_c = Metrics.counter "server.errors"
let queue_depth_g = Metrics.gauge "server.queue_depth"
let in_flight_g = Metrics.gauge "server.in_flight"
let latency_h = Metrics.histogram "server.latency_ms"
let queue_wait_h = Metrics.histogram "server.queue_wait_ms"

(* ---- addresses ---------------------------------------------------- *)

type address = Unix_path of string | Tcp of { host : string; port : int }

let address_of_string s =
  let tcp spec =
    let of_port p host =
      match int_of_string_opt p with
      | Some port when port > 0 && port < 65536 -> Ok (Tcp { host; port })
      | _ -> Error (Printf.sprintf "invalid TCP port %S" p)
    in
    match String.rindex_opt spec ':' with
    | None -> of_port spec "127.0.0.1"
    | Some i ->
      of_port
        (String.sub spec (i + 1) (String.length spec - i - 1))
        (String.sub spec 0 i)
  in
  if String.length s = 0 then Error "empty address"
  else if String.starts_with ~prefix:"unix:" s then
    Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.starts_with ~prefix:"tcp:" s then
    tcp (String.sub s 4 (String.length s - 4))
  else Ok (Unix_path s)

let address_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

(* ---- configuration ------------------------------------------------ *)

type config = {
  address : address;
  queue_capacity : int;
  cache_capacity : int;
  report_path : string option;
  handle_signals : bool;
  readiness : out_channel option;
}

let default_config address =
  { address; queue_capacity = 16; cache_capacity = 8;
    report_path = Some "BENCH_serve.json"; handle_signals = false;
    readiness = None }

(* ---- state -------------------------------------------------------- *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  mutable open_ : bool;  (* guarded by [wmutex] *)
}

type item = {
  item_conn : conn;
  item_id : Json.t;
  item_req : P.request;
  enqueued_s : float;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  queue : item Bqueue.t;
  session : Session.t;
  accepting : bool Atomic.t;
  conns : (int, conn * Thread.t) Hashtbl.t;
  conns_mutex : Mutex.t;
  next_cid : int Atomic.t;
  started_s : float;
  started_cpu_s : float;
  served : int Atomic.t;
  rejected : int Atomic.t;
  failed : int Atomic.t;
  in_flight : int Atomic.t;
  mutable acceptor : Thread.t option;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let draining t = not (Atomic.get t.accepting)

let initiate_drain t =
  if Atomic.compare_and_set t.accepting true false then begin
    Log.info (fun m -> m "drain initiated: finishing %d queued request(s)"
                 (Bqueue.length t.queue));
    Bqueue.close t.queue
  end

(* ---- connection writes -------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

(* One whole line per lock hold, so responses from the executor and
   control-plane responses from the reader thread never interleave
   mid-line.  A failed write marks the connection dead and shuts it
   down, waking the reader. *)
let write_json t conn json =
  ignore t;
  with_lock conn.wmutex (fun () ->
      if conn.open_ then
        try write_all conn.fd (P.line json)
        with Unix.Unix_error _ | Sys_error _ ->
          conn.open_ <- false;
          (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ()))

let overloaded_error ~stage ?subject message ~hints =
  Verrors.make ~code:Verrors.Overloaded ~stage ?subject message ~hints

(* ---- control plane ------------------------------------------------ *)

let health_json t =
  Json.Obj
    [ ("status", Json.Str (if draining t then "draining" else "serving"));
      ("queue_depth", Json.Num (float_of_int (Bqueue.length t.queue)));
      ("queue_capacity", Json.Num (float_of_int (Bqueue.capacity t.queue)));
      ("in_flight", Json.Num (float_of_int (Atomic.get t.in_flight)));
      ("jobs", Json.Num (float_of_int (Par.jobs ()))) ]

let histogram_json h =
  let s = Metrics.histogram_stats h in
  Json.Obj
    ([ ("count", Json.Num (float_of_int s.Metrics.count));
       ("mean", Json.Num s.Metrics.mean) ]
    @
    if s.Metrics.count = 0 then []
    else
      [ ("min", Json.Num s.Metrics.min);
        ("max", Json.Num s.Metrics.max);
        ("p50", Json.Num (Metrics.quantile h 0.5));
        ("p90", Json.Num (Metrics.quantile h 0.9)) ])

let stats_json t =
  let cache = Session.stats t.session in
  Json.Obj
    [ ("status", Json.Str (if draining t then "draining" else "serving"));
      ("uptime_s", Json.Num (Clock.now_s () -. t.started_s));
      ("served", Json.Num (float_of_int (Atomic.get t.served)));
      ("rejected", Json.Num (float_of_int (Atomic.get t.rejected)));
      ("errors", Json.Num (float_of_int (Atomic.get t.failed)));
      ("in_flight", Json.Num (float_of_int (Atomic.get t.in_flight)));
      ("jobs", Json.Num (float_of_int (Par.jobs ())));
      ( "queue",
        Json.Obj
          [ ("depth", Json.Num (float_of_int (Bqueue.length t.queue)));
            ("capacity", Json.Num (float_of_int (Bqueue.capacity t.queue))) ] );
      ( "cache",
        Json.Obj
          [ ("entries", Json.Num (float_of_int (List.length cache.Session.entries)));
            ("capacity", Json.Num (float_of_int cache.Session.capacity));
            ("hits", Json.Num (float_of_int cache.Session.hits));
            ("misses", Json.Num (float_of_int cache.Session.misses));
            ("evictions", Json.Num (float_of_int cache.Session.evictions));
            ( "keys",
              Json.List (List.map (fun k -> Json.Str k) cache.Session.entries) ) ] );
      ("latency_ms", histogram_json latency_h) ]

let handle_control t conn id = function
  | P.Health -> write_json t conn (P.ok_response ~id (health_json t))
  | P.Stats -> write_json t conn (P.ok_response ~id (stats_json t))
  | P.Shutdown ->
    (* Drain first, ack second: once the client reads the ack,
       [draining] is observably true. *)
    initiate_drain t;
    write_json t conn
      (P.ok_response ~id (Json.Obj [ ("draining", Json.Bool true) ]))
  | P.Run _ | P.Compare _ | P.Validate _ | P.Montecarlo _ -> assert false

(* ---- data plane: admission ---------------------------------------- *)

let reject t conn id err =
  Atomic.incr t.rejected;
  Metrics.incr rejected_c;
  write_json t conn (P.error_response ~id err)

let admit t conn id req =
  let item =
    { item_conn = conn; item_id = id; item_req = req;
      enqueued_s = Clock.now_s () }
  in
  match Bqueue.push t.queue item with
  | `Ok ->
    Metrics.incr requests_c;
    Metrics.set queue_depth_g (float_of_int (Bqueue.length t.queue))
  | `Full ->
    reject t conn id
      (overloaded_error ~stage:"server.queue" ~subject:(P.request_kind req)
         (Printf.sprintf "request queue full (%d/%d): request rejected"
            (Bqueue.capacity t.queue) (Bqueue.capacity t.queue))
         ~hints:
           [ "retry with backoff";
             "raise the bound with `wavemin serve --queue N'" ])
  | `Closed ->
    reject t conn id
      (overloaded_error ~stage:"server.queue" ~subject:(P.request_kind req)
         "server is draining: no new work is accepted" ~hints:[])

let handle_line t conn line =
  let { P.id; payload } = P.parse_request line in
  match payload with
  | Error e ->
    Atomic.incr t.failed;
    Metrics.incr errors_c;
    write_json t conn (P.error_response ~id e)
  | Ok req ->
    if P.is_control req then handle_control t conn id req
    else if draining t then
      reject t conn id
        (overloaded_error ~stage:"server.queue" ~subject:(P.request_kind req)
           "server is draining: no new work is accepted" ~hints:[])
    else admit t conn id req

(* ---- connections -------------------------------------------------- *)

let unregister t cid = with_lock t.conns_mutex (fun () -> Hashtbl.remove t.conns cid)

let conn_loop t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let rec loop () =
    match input_line ic with
    | line ->
      if String.trim line <> "" then handle_line t conn line;
      loop ()
    | exception (End_of_file | Sys_error _) -> ()
  in
  loop ();
  with_lock conn.wmutex (fun () ->
      if conn.open_ then begin
        conn.open_ <- false;
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
      end);
  (* The reader is the only closer, so the descriptor is closed exactly
     once and never while another thread could still write to it (writes
     check [open_] under [wmutex]). *)
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  unregister t conn.cid

let spawn_conn t fd =
  let cid = Atomic.fetch_and_add t.next_cid 1 in
  let conn = { cid; fd; wmutex = Mutex.create (); open_ = true } in
  with_lock t.conns_mutex (fun () ->
      let thread = Thread.create (fun () -> conn_loop t conn) () in
      Hashtbl.replace t.conns cid (conn, thread))

(* Poll-based accept so drain needs no blocked-syscall tricks: the loop
   re-checks [accepting] at least every 250 ms. *)
let accept_loop t =
  let rec loop () =
    if Atomic.get t.accepting then begin
      (match Unix.select [ t.listener ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listener with
        | fd, _ ->
          if Atomic.get t.accepting then spawn_conn t fd
          else ( try Unix.close fd with Unix.Unix_error _ -> ())
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
          -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        Atomic.set t.accepting false);
      loop ()
    end
  in
  loop ()

(* ---- executor ----------------------------------------------------- *)

let process t item =
  let kind = P.request_kind item.item_req in
  let benchmark =
    match item.item_req with
    | P.Run { opts; _ } | P.Compare opts | P.Montecarlo { opts; _ } ->
      opts.P.benchmark
    | P.Validate { opts; all } -> if all then "*" else opts.P.benchmark
    | P.Stats | P.Health | P.Shutdown -> ""
  in
  Atomic.incr t.in_flight;
  Metrics.set in_flight_g (float_of_int (Atomic.get t.in_flight));
  Metrics.set queue_depth_g (float_of_int (Bqueue.length t.queue));
  let started_s = Clock.now_s () in
  Metrics.observe queue_wait_h ((started_s -. item.enqueued_s) *. 1000.0);
  let outcome =
    Trace.with_span ~name:"server.request"
      ~attrs:[ ("type", kind); ("benchmark", benchmark) ]
      (fun () ->
        (* Handlers never raise by contract; the guard is the last-ditch
           net that keeps the daemon alive if one does. *)
        match
          Verrors.guard ~stage:"server.request" (fun () ->
              Handlers.execute t.session item.item_req)
        with
        | Ok outcome -> outcome
        | Error e -> Error (e, []))
  in
  (match outcome with
  | Ok result ->
    Atomic.incr t.served;
    write_json t item.item_conn (P.ok_response ~id:item.item_id result)
  | Error (e, degs) ->
    Atomic.incr t.failed;
    Metrics.incr errors_c;
    Log.warn (fun m ->
        m "%s %s failed: %s" kind benchmark (Verrors.code_name e.Verrors.code));
    write_json t item.item_conn
      (P.error_response ~id:item.item_id
         ~degradations:(List.map Handlers.degradation_json degs)
         e));
  Metrics.observe latency_h ((Clock.now_s () -. item.enqueued_s) *. 1000.0);
  Atomic.decr t.in_flight;
  Metrics.set in_flight_g (float_of_int (Atomic.get t.in_flight))

(* ---- lifecycle ---------------------------------------------------- *)

let io_fail stage msg =
  Verrors.fail ~code:Verrors.Io_error ~stage msg

let bind_listener = function
  | Unix_path path ->
    if String.length path >= 104 then
      io_fail "server.bind"
        (Printf.sprintf "socket path too long (%d chars): %s"
           (String.length path) path);
    if Sys.file_exists path then
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64;
       fd
     with Unix.Unix_error (err, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       io_fail "server.bind"
         (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message err)))
  | Tcp { host; port } ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          io_fail "server.bind" (Printf.sprintf "cannot resolve host %s" host)
        | { Unix.h_addr_list; _ } -> h_addr_list.(0))
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port));
       Unix.listen fd 64;
       fd
     with Unix.Unix_error (err, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       io_fail "server.bind"
         (Printf.sprintf "cannot bind %s:%d: %s" host port
            (Unix.error_message err)))

(* SIGTERM/SIGINT → one byte down a self-pipe → a watcher thread runs
   the drain.  The handler itself takes no locks (it may interrupt code
   holding any of them). *)
let install_signal_handlers t =
  let r, w = Unix.pipe ~cloexec:true () in
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        let buf = Bytes.create 1 in
        (match Unix.read r buf 0 1 with
        | _ -> ()
        | exception (Unix.Unix_error _ | Sys_error _) -> ());
        Log.info (fun m -> m "signal received: draining");
        initiate_drain t)
      ()
  in
  let byte = Bytes.make 1 '!' in
  let handler =
    Sys.Signal_handle
      (fun _ ->
        try ignore (Unix.write w byte 0 1) with Unix.Unix_error _ -> ())
  in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler

let flush_report t =
  match t.cfg.report_path with
  | None -> ()
  | Some path -> (
    let cache = Session.stats t.session in
    let builder =
      Report.create ~experiment:"serve"
        ~config:
          [ ("queue_capacity", string_of_int t.cfg.queue_capacity);
            ("cache_capacity", string_of_int t.cfg.cache_capacity) ]
        ~environment:
          [ ("jobs", string_of_int (Par.jobs ()));
            ("address", address_to_string t.cfg.address);
            ("uptime_s", Json.float_to_string (Clock.now_s () -. t.started_s));
            ("requests_served", string_of_int (Atomic.get t.served));
            ("requests_rejected", string_of_int (Atomic.get t.rejected));
            ("request_errors", string_of_int (Atomic.get t.failed));
            ("cache_hits", string_of_int cache.Session.hits);
            ("cache_misses", string_of_int cache.Session.misses);
            ("cache_evictions", string_of_int cache.Session.evictions) ]
        ()
    in
    Report.add_stage builder ~stage:"serve"
      ~wall_s:(Clock.now_s () -. t.started_s)
      ~cpu_s:(Clock.cpu_s () -. t.started_cpu_s);
    let report = Report.finalize builder in
    match
      Verrors.guard ~stage:"server.report" (fun () -> Report.write path report)
    with
    | Ok () -> Log.info (fun m -> m "wrote final run report to %s" path)
    | Error e ->
      (* Survive the report-writer fault seam: drain completed, the
         report is best-effort. *)
      Log.warn (fun m -> m "cannot write final report: %s" (Verrors.to_string e)))

let setup cfg =
  (* A dead client mid-write must be an EPIPE error, not a fatal signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listener = bind_listener cfg.address in
  let t =
    { cfg;
      listener;
      queue = Bqueue.create ~capacity:cfg.queue_capacity;
      session = Session.create ~capacity:cfg.cache_capacity ();
      accepting = Atomic.make true;
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      next_cid = Atomic.make 0;
      started_s = Clock.now_s ();
      started_cpu_s = Clock.cpu_s ();
      served = Atomic.make 0;
      rejected = Atomic.make 0;
      failed = Atomic.make 0;
      in_flight = Atomic.make 0;
      acceptor = None }
  in
  if cfg.handle_signals then install_signal_handlers t;
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  (match cfg.readiness with
  | None -> ()
  | Some oc ->
    Printf.fprintf oc "wavemin serve: listening on %s (jobs=%d, queue=%d, cache=%d)\n"
      (address_to_string cfg.address) (Par.jobs ()) cfg.queue_capacity
      cfg.cache_capacity;
    flush oc);
  Log.info (fun m -> m "listening on %s" (address_to_string cfg.address));
  t

let run t =
  (* The executor: one request at a time off the bounded queue; solver
     internals spread each request across the Repro_par pool. *)
  let rec loop () =
    match Bqueue.pop t.queue with
    | Some item ->
      process t item;
      loop ()
    | None -> ()
  in
  loop ();
  (* Drained: stop the acceptor, wake and join the readers, release the
     socket, flush the final report. *)
  Atomic.set t.accepting false;
  (match t.acceptor with None -> () | Some th -> Thread.join th);
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.cfg.address with
  | Unix_path path ->
    (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  let conns =
    with_lock t.conns_mutex (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  in
  List.iter
    (fun (conn, _) ->
      with_lock conn.wmutex (fun () ->
          if conn.open_ then begin
            conn.open_ <- false;
            try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ()
          end))
    conns;
  List.iter (fun (_, thread) -> Thread.join thread) conns;
  Log.info (fun m ->
      m "drained: %d served, %d rejected, %d failed" (Atomic.get t.served)
        (Atomic.get t.rejected) (Atomic.get t.failed));
  flush_report t

let serve cfg = run (setup cfg)

let serve_background cfg =
  let t = setup cfg in
  (t, Thread.create (fun () -> run t) ())
