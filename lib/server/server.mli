(** The resident optimization service behind [wavemin serve].

    One process serves newline-delimited JSON requests ({!Protocol})
    over a Unix-domain or TCP socket.  Architecture:

    - an {e acceptor} thread admits connections (poll-based, so drain
      is prompt) and spawns one reader thread per connection;
    - reader threads parse request lines.  Control-plane requests
      ([health]/[stats]/[shutdown]) are answered immediately — probes
      work even under full load.  Data-plane requests go through a
      {e bounded} queue ({!Bqueue}); when it is full the request is
      rejected {e immediately} with a structured [overloaded] error
      (explicit backpressure, never unbounded buffering);
    - the {e executor} (the calling thread) pops requests one at a time
      and runs them via {!Handlers} on the warm {!Session} cache;
      solver internals fan out across the {!Repro_par} pool, so
      [-j]/[WAVEMIN_JOBS] governs per-request parallelism.

    Graceful drain — a [shutdown] request, {!initiate_drain}, or
    SIGTERM/SIGINT (when [handle_signals], via a self-pipe so no locks
    are taken in the signal handler) — stops accepting, rejects new
    work, finishes everything already queued, then flushes a final
    BENCH-style run report ({!Repro_obs.Report}, experiment ["serve"])
    with the metrics-registry snapshot.

    Every request runs under a [server.request] span; queue depth,
    in-flight count, served/rejected totals and request latency are
    recorded in [server.*] metrics ([server.latency_ms] and
    [server.queue_wait_ms] are log-histograms). *)

type address =
  | Unix_path of string  (** Unix-domain socket path. *)
  | Tcp of { host : string; port : int }

val address_of_string : string -> (address, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], ["tcp:PORT"] (localhost), or a
    bare path (Unix-domain). *)

val address_to_string : address -> string

type config = {
  address : address;
  queue_capacity : int;  (** Bounded-queue depth (default 16). *)
  cache_capacity : int;  (** Session-cache entries (default 8). *)
  report_path : string option;
      (** Where the final drain report goes; [None] disables it. *)
  handle_signals : bool;
      (** Install SIGTERM/SIGINT drain handlers (the CLI does; embedded
          servers — tests, examples — must not). *)
  readiness : out_channel option;
      (** Print a one-line ["listening on ..."] banner here once the
          socket is bound (the smoke tests' readiness signal). *)
}

val default_config : address -> config
(** Queue 16, cache 8, report ["BENCH_serve.json"], no signal handlers,
    no banner. *)

type t
(** A handle onto a serving instance, usable from other threads. *)

val initiate_drain : t -> unit
(** Begin graceful drain: stop accepting connections and new work,
    finish what is queued.  Idempotent; thread-safe. *)

val draining : t -> bool

val serve : config -> unit
(** Bind, serve until drained, flush the final report, release the
    socket.  Blocks the calling thread (which becomes the executor).
    @raise Repro_util.Verrors.Error ([Io_error]) when the socket cannot
    be bound. *)

val serve_background : config -> t * Thread.t
(** {!serve} on a fresh thread, returning once the socket is bound and
    accepting — for tests and embedded use.  Join the thread after
    {!initiate_drain} (or a [shutdown] request) to complete drain.
    @raise Repro_util.Verrors.Error as {!serve}. *)
