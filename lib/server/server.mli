(** The resident optimization service behind [wavemin serve].

    One process serves newline-delimited JSON requests ({!Protocol})
    over a Unix-domain or TCP socket.  Architecture:

    - an {e acceptor} thread admits connections (poll-based, so drain
      is prompt) and spawns one reader thread per connection;
    - reader threads parse request lines.  Control-plane requests
      ([health]/[stats]/[shutdown]) are answered immediately — probes
      work even under full load.  Data-plane requests go through a
      {e bounded} queue ({!Bqueue}); when it is full the request is
      rejected {e immediately} with a structured [overloaded] error
      (explicit backpressure, never unbounded buffering);
    - N {e executor} workers ([executors] in {!config}, default = the
      job count) pop requests concurrently from the shared queue and
      run them via {!Handlers} on the warm {!Session} cache (itself
      lock-striped across shards); solver internals fan out across the
      {!Repro_par} pool, so [-j]/[WAVEMIN_JOBS] governs per-request
      parallelism and [executors] governs cross-request parallelism;
    - {e single-flight coalescing} ({!Sflight}): data-plane requests
      whose canonical content ({!Protocol.canonical_key}) matches an
      already queued-or-executing request attach to that flight instead
      of taking a queue slot; the leader's executor answers every
      follower with the same (deterministic) outcome under the
      follower's own request id.  Counted in [server.coalesced], logged
      with [cache = "coalesced"], visible as a [server.coalesced]
      retroactive trace span.

    Graceful drain — a [shutdown] request, {!initiate_drain}, or
    SIGTERM/SIGINT (when [handle_signals], via a self-pipe so no locks
    are taken in the signal handler) — stops accepting, rejects new
    work, finishes everything already queued, then flushes a final
    BENCH-style run report ({!Repro_obs.Report}, experiment
    ["serve-drain"]) with the metrics-registry snapshot.

    {b Telemetry.}  Every data-plane request gets a server-assigned
    request id ([r000042]) carried through queue → execute → respond:
    a retroactive [server.queue] span plus
    [server.request]/[server.execute]/[server.respond] spans — on the
    executing worker's own ["server-executor-K"] Chrome-trace lane
    (synthetic tid [1000 + K]) — an optional JSONL
    access-log line (timestamp, ids, type, content hash, cache outcome,
    degradations, queue-wait/wall time, status), and observations into
    both the cumulative [server.latency_ms]/[server.queue_wait_ms]
    histograms and rolling windows whose p50/p95/p99 are served live in
    [stats] (under ["rolling"], plus a ["last"] completed-request block
    that [wavemin client --time] correlates by request id).  A periodic
    {!Repro_obs.Runtime} sampler records GC/RSS gauges, queue depth and
    the domain-pool busy fraction; the [metrics] control request
    exposes the whole registry as Prometheus text or JSON.  All of it
    is strictly out-of-band: response bytes carry none of these fields,
    preserving the byte-identity determinism property. *)

type address =
  | Unix_path of string  (** Unix-domain socket path. *)
  | Tcp of { host : string; port : int }

val address_of_string : string -> (address, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], ["tcp:PORT"] (localhost), or a
    bare path (Unix-domain). *)

val address_to_string : address -> string

type config = {
  address : address;
  queue_capacity : int;  (** Bounded-queue depth (default 16). *)
  cache_capacity : int;  (** Session-cache entries (default 8). *)
  cache_shards : int;
      (** Session-cache lock stripes (default 4); clamped by
          {!Session.create} to a power of two no larger than the
          capacity. *)
  executors : int;
      (** Executor workers popping the queue; [<= 0] (the default)
          means one per job ({!Repro_par.Par.jobs}). *)
  report_path : string option;
      (** Where the final drain report goes; [None] disables it. *)
  access_log_path : string option;
      (** JSONL access log, one line per data-plane request (appended;
          [None] disables).  Opening failures raise [Io_error] at
          {!setup} time. *)
  access_log_max_bytes : int option;
      (** Size-based rotation threshold for the access log ({!Access_log});
          [None] (or [<= 0]) grows the file without bound. *)
  access_log_keep : int;
      (** Rotated access-log generations retained ([path.1] ..
          [path.N], default 3). *)
  rolling_window_s : float;
      (** Width of the rolling latency/queue-wait windows surfaced in
          [stats] (default 60 s). *)
  sample_period_s : float option;
      (** Period of the {!Repro_obs.Runtime} sampler thread recording
          GC/RSS/queue/pool gauges; [None] disables it. *)
  handle_signals : bool;
      (** Install SIGTERM/SIGINT drain handlers (the CLI does; embedded
          servers — tests, examples — must not). *)
  readiness : out_channel option;
      (** Print a one-line ["listening on ..."] banner here once the
          socket is bound (the smoke tests' readiness signal). *)
  flight_dir : string option;
      (** Where black-box {!Repro_obs.Flight} dumps go: on a faulted or
          degraded request, and once per overload episode, the ring is
          written to [<dir>/<rid>.flight.json] (request-id-named, for
          [wavemin explain]).  [None] disables dumping; the in-memory
          recorder stays on either way ([flight] control request). *)
  idle_timeout_s : float option;
      (** Close a connection that produces no complete request line for
          this long (default 300 s) with a structured [io-error] — the
          slowloris guard; a byte-at-a-time dribbler counts as idle
          because only {e complete} lines reset the clock.  [None]
          disables the timeout. *)
  max_line_bytes : int;
      (** Reject (structured [parse-error]) and disconnect a peer whose
          request line exceeds this many bytes (default 1 MiB, floor
          1024) — the reader buffer is bounded by it. *)
  watchdog_period_s : float option;
      (** Poll period of the executor watchdog thread (default 1 s);
          [None] disables the watchdog. *)
  stall_after_s : float;
      (** Stall limit for requests with no budget and no deadline
          (default 30 s).  Budgeted or deadlined requests stall at 4×
          their tighter limit instead.  A stalled executor is reported
          (warning, [server.executor_stalled] metric, flight note and
          black-box dump) once per wedged request — never killed; the
          per-request {!Repro_obs.Budget} is the cooperative
          cancellation path. *)
}

val default_config : address -> config
(** Queue 16, cache 8 across 4 shards, executors = jobs, report
    ["BENCH_serve_drain.json"], no access log (rotation off, keep 3),
    60 s rolling window, 1 s sampler, no signal handlers, no banner,
    flight dumps in ["."], 300 s idle timeout, 1 MiB line cap, 1 s
    watchdog period, 30 s unbudgeted stall limit. *)

type t
(** A handle onto a serving instance, usable from other threads. *)

val initiate_drain : t -> unit
(** Begin graceful drain: stop accepting connections and new work,
    finish what is queued.  Idempotent; thread-safe. *)

val draining : t -> bool

val serve : config -> unit
(** Bind, serve until drained, flush the final report, release the
    socket.  Blocks the calling thread until every executor worker has
    joined.
    @raise Repro_util.Verrors.Error ([Io_error]) when the socket cannot
    be bound. *)

val serve_background : config -> t * Thread.t
(** {!serve} on a fresh thread, returning once the socket is bound and
    accepting — for tests and embedded use.  Join the thread after
    {!initiate_drain} (or a [shutdown] request) to complete drain.
    @raise Repro_util.Verrors.Error as {!serve}. *)
