module Json = Repro_util.Json
module Verrors = Repro_util.Verrors
module Rng = Repro_util.Rng
module P = Protocol

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  mutable next_id : int;
  mutable open_ : bool;
}

let io_error msg =
  Verrors.make ~code:Verrors.Io_error ~stage:"client" msg

let connect address =
  let attempt () =
    match (address : Server.address) with
    | Server.Unix_path path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_UNIX path);
         fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e)
    | Server.Tcp { host; port } ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
            failwith (Printf.sprintf "cannot resolve host %s" host)
          | { Unix.h_addr_list; _ } -> h_addr_list.(0))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_INET (addr, port));
         fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e)
  in
  match attempt () with
  | fd ->
    Ok { fd; ic = Unix.in_channel_of_descr fd; next_id = 0; open_ = true }
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (io_error
         (Printf.sprintf "cannot connect to %s: %s"
            (Server.address_to_string address)
            (Unix.error_message err)))
  | exception Failure msg -> Error (io_error msg)

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let request_with_id ?deadline_ms t req =
  let id = Json.Num (float_of_int t.next_id) in
  t.next_id <- t.next_id + 1;
  match write_all t.fd (P.line (P.request_to_json ?deadline_ms ~id req)) with
  | exception (Unix.Unix_error _ | Sys_error _) ->
    Error (io_error "connection lost while sending request")
  | () ->
    let rec await () =
      match input_line t.ic with
      | exception (End_of_file | Sys_error _) ->
        Error (io_error "connection closed before the response arrived")
      | line when String.trim line = "" -> await ()
      | line -> (
        match P.parse_response line with
        | Error msg ->
          Error
            (Verrors.make ~code:Verrors.Parse_error ~stage:"client"
               (Printf.sprintf "malformed response line: %s" msg))
        | Ok resp -> if resp.P.rid = id then Ok (id, resp) else await ())
    in
    await ()

let request ?deadline_ms t req =
  Result.map snd (request_with_id ?deadline_ms t req)

let with_connection address f =
  match connect address with
  | Error e -> Error e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ---- retries ------------------------------------------------------- *)

let response_code (resp : P.response) =
  if resp.P.ok then None
  else
    match Json.member "code" resp.P.body with
    | Some (Json.Str c) -> Some c
    | _ -> None

(* What a retry can fix: the daemon shedding load ([overloaded]), or the
   transport dying under us ([Io_error]: connection refused mid-restart,
   ECONNRESET, a drain racing our send).  Re-sending is safe by
   construction — responses are deterministic and concurrent duplicates
   coalesce server-side — so at worst a retry recomputes; it never
   diverges.  Structured rejections other than [overloaded]
   ([deadline-exceeded], [parse-error], ...) mean the request itself is
   the problem and retrying would only repeat the refusal. *)
let retryable_response resp = response_code resp = Some "overloaded"
let retryable_error (e : Verrors.t) = e.Verrors.code = Verrors.Io_error

let request_retry ?(retries = 0) ?(backoff_ms = 50.0) ?deadline_ms ?on_retry
    address req =
  (* Jittered exponential backoff: backoff_ms × 2^attempt × U[0.5, 1.5],
     seeded per-process so a fleet of retrying clients spreads out
     instead of thundering back in lockstep. *)
  let rng =
    lazy
      (Rng.create
         ~seed:
           ((Unix.getpid () * 1_000_003)
           lxor int_of_float (Float.rem (Unix.gettimeofday () *. 1e6) 1e9)))
  in
  let attempts = max 1 retries + 1 in
  let backoff attempt =
    Float.max 0.0 backoff_ms
    *. (2.0 ** float_of_int attempt)
    *. Rng.uniform (Lazy.force rng) ~lo:0.5 ~hi:1.5
  in
  let rec go attempt =
    (* One connection per attempt: the previous one may be the casualty
       (reset, or pointing at a daemon that no longer exists). *)
    let outcome = with_connection address (fun c -> request ?deadline_ms c req) in
    let retry why =
      let delay_ms = backoff attempt in
      (match on_retry with
      | Some f -> f ~attempt:(attempt + 1) ~why ~delay_ms
      | None -> ());
      Thread.delay (delay_ms /. 1000.0);
      go (attempt + 1)
    in
    match outcome with
    | Ok resp when retryable_response resp && attempt + 1 < attempts ->
      retry "overloaded"
    | Error e when retryable_error e && attempt + 1 < attempts ->
      retry (Verrors.code_name e.Verrors.code)
    | Ok resp -> Ok (resp, attempt)
    | Error e -> Error e
  in
  go 0
