module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Benchmarks = Repro_cts.Benchmarks
module Liberty = Repro_cell.Liberty
module Json = Repro_util.Json
module Verrors = Repro_util.Verrors
module Metrics = Repro_obs.Metrics
module Flight = Repro_obs.Flight
module Obs_clock = Repro_obs.Clock

let hits_c = Metrics.counter "server.cache_hits"
let misses_c = Metrics.counter "server.cache_misses"
let evictions_c = Metrics.counter "server.cache_evictions"

type t = {
  mutex : Mutex.t;
  entries : Flow.prepared Lru.t;
  libraries : Repro_cell.Cell.t list Lru.t;  (* parsed, by text digest *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 8) () =
  { mutex = Mutex.create ();
    entries = Lru.create ~capacity;
    libraries = Lru.create ~capacity:(max 4 capacity);
    hits = 0;
    misses = 0 }

(* Reader threads (control plane) and the executor share this mutex;
   when the flight recorder is on, a measurable wait to acquire it is
   recorded as a contention event. *)
let with_lock t f =
  if Flight.enabled () then begin
    let t0 = Obs_clock.now_ns () in
    Mutex.lock t.mutex;
    let wait_ms =
      Int64.to_float (Int64.sub (Obs_clock.now_ns ()) t0) /. 1e6
    in
    if wait_ms > 0.05 then
      Flight.record
        (Flight.Contention { resource = "session.lock"; wait_ms })
  end
  else Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The default library's serialized form participates in the hash so a
   rebuilt binary with different built-in cells cannot alias an entry. *)
let builtin_library_text =
  lazy (Liberty.to_string (Flow.leaf_library ()))

let fl = Json.float_to_string

let key ~spec ~params ~library =
  let b = Buffer.create 256 in
  Buffer.add_string b spec.Benchmarks.name;
  Buffer.add_char b '\x00';
  Buffer.add_string b
    (match spec.Benchmarks.family with
    | Benchmarks.Iscas89 -> "iscas89"
    | Benchmarks.Ispd09 -> "ispd09");
  List.iter
    (fun s ->
      Buffer.add_char b '\x00';
      Buffer.add_string b s)
    [ string_of_int spec.Benchmarks.num_nodes;
      string_of_int spec.Benchmarks.num_leaves;
      fl spec.Benchmarks.die_side;
      string_of_int spec.Benchmarks.clusters;
      string_of_int spec.Benchmarks.seed;
      fl params.Context.kappa;
      fl params.Context.epsilon;
      string_of_int params.Context.num_slots;
      fl params.Context.zone_side;
      string_of_int params.Context.max_labels;
      fl params.Context.coalesce;
      string_of_int params.Context.max_interval_classes;
      fl params.Context.sibling_guard;
      (match library with
      | Some text -> text
      | None -> Lazy.force builtin_library_text) ];
  Digest.to_hex (Digest.string (Buffer.contents b))

let cells_of t = function
  | None -> Ok (Flow.leaf_library ())
  | Some text -> (
    let lib_key = Digest.to_hex (Digest.string text) in
    match with_lock t (fun () -> Lru.find t.libraries lib_key) with
    | Some cells ->
      Flight.record
        (Flight.Cache { cache = "library"; outcome = "hit"; key = lib_key });
      Ok cells
    | None -> (
      match Verrors.guard ~stage:"server.session" (fun () -> Liberty.parse text) with
      | Error e -> Error e  (* the parser fault seam trips through here *)
      | Ok (Error perr) -> Error (Liberty.to_verror perr)
      | Ok (Ok cells) ->
        with_lock t (fun () -> ignore (Lru.add t.libraries lib_key cells));
        Ok cells))

let prepared t ~spec ~params ?library () =
  let k = key ~spec ~params ~library in
  match with_lock t (fun () -> Lru.find t.entries k) with
  | Some prep ->
    t.hits <- t.hits + 1;
    Metrics.incr hits_c;
    Flight.record (Flight.Cache { cache = "session"; outcome = "hit"; key = k });
    Ok (prep, `Hit)
  | None -> (
    (* Build outside the lock: the executor is the only builder, and
       control-plane stats must stay responsive during synthesis. *)
    match cells_of t library with
    | Error e -> Error e
    | Ok cells -> (
      match
        Verrors.guard ~stage:"server.session" (fun () ->
            let tree = Benchmarks.synthesize spec in
            Flow.prepare ~params ~cells ~name:spec.Benchmarks.name tree)
      with
      | Error e -> Error e
      | Ok prep ->
        t.misses <- t.misses + 1;
        Metrics.incr misses_c;
        Flight.record
          (Flight.Cache { cache = "session"; outcome = "miss"; key = k });
        with_lock t (fun () ->
            match Lru.add t.entries k prep with
            | None -> ()
            | Some _evicted ->
              Metrics.incr evictions_c;
              Flight.record
                (Flight.Cache
                   { cache = "session"; outcome = "evict"; key = k }));
        Ok (prep, `Miss)))

type stats = {
  entries : string list;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  with_lock t (fun () ->
      { entries = Lru.keys t.entries;
        capacity = Lru.capacity t.entries;
        hits = t.hits;
        misses = t.misses;
        evictions = Lru.evictions t.entries })
