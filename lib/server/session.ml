module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Benchmarks = Repro_cts.Benchmarks
module Liberty = Repro_cell.Liberty
module Json = Repro_util.Json
module Verrors = Repro_util.Verrors
module Metrics = Repro_obs.Metrics
module Flight = Repro_obs.Flight
module Obs_clock = Repro_obs.Clock

let hits_c = Metrics.counter "server.cache_hits"
let misses_c = Metrics.counter "server.cache_misses"
let evictions_c = Metrics.counter "server.cache_evictions"
let warm_hits_c = Metrics.counter "server.warm_hits"
let warm_stores_c = Metrics.counter "server.warm_stores"

(* One lock-striped shard of the prepared-benchmark cache.  Hot keys on
   different shards no longer serialize on a single mutex when several
   executors perform warm lookups concurrently. *)
type shard = { s_mutex : Mutex.t; s_entries : Flow.prepared Lru.t }

type t = {
  shards : shard array;  (* power-of-two length *)
  mask : int;
  lib_mutex : Mutex.t;
  libraries : Repro_cell.Cell.t list Lru.t;  (* parsed, by text digest *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  (* Warm-start store: base key (tree + library, params excluded) to
     the most recent solved assignment and the params it was solved
     under.  A near-miss — same tree, different kappa/slots — becomes
     an annealer quench seed instead of a cold solve. *)
  warm_mutex : Mutex.t;
  warm : (Repro_core.Context.params * Repro_clocktree.Assignment.t) Lru.t;
  warm_hits : int Atomic.t;
  warm_stores : int Atomic.t;
}

(* Largest power of two that still gives every shard at least one
   entry: a capacity-1 cache must keep its single-entry eviction
   semantics no matter how many shards were requested. *)
let clamp_shards ~capacity requested =
  let bound = max 1 (min requested capacity) in
  let rec pow2 p = if p * 2 <= bound then pow2 (p * 2) else p in
  pow2 1

let create ?(capacity = 8) ?(shards = 4) () =
  if capacity < 1 then invalid_arg "Session.create: capacity < 1";
  if shards < 1 then invalid_arg "Session.create: shards < 1";
  let n = clamp_shards ~capacity shards in
  let per_shard = max 1 (capacity / n) in
  {
    shards =
      Array.init n (fun _ ->
          { s_mutex = Mutex.create ();
            s_entries = Lru.create ~capacity:per_shard });
    mask = n - 1;
    lib_mutex = Mutex.create ();
    libraries = Lru.create ~capacity:(max 4 capacity);
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    warm_mutex = Mutex.create ();
    warm = Lru.create ~capacity:(max 4 capacity);
    warm_hits = Atomic.make 0;
    warm_stores = Atomic.make 0;
  }

let shard_count t = Array.length t.shards

(* Keys are MD5 hex digests, so any stable hash spreads them; the mask
   keeps the index in range for the power-of-two shard count. *)
let shard_index t k = Hashtbl.hash k land t.mask

(* Reader threads (control plane) and the executors share these
   mutexes; when the flight recorder is on, a measurable wait to
   acquire one is recorded as a contention event against the specific
   shard (or the library cache). *)
let with_lock ~resource mutex f =
  if Flight.enabled () then begin
    let t0 = Obs_clock.now_ns () in
    Mutex.lock mutex;
    let wait_ms =
      Int64.to_float (Int64.sub (Obs_clock.now_ns ()) t0) /. 1e6
    in
    if wait_ms > 0.05 then Flight.record (Flight.Contention { resource; wait_ms })
  end
  else Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let with_shard t k f =
  let i = shard_index t k in
  let s = t.shards.(i) in
  with_lock
    ~resource:(Printf.sprintf "session.shard%d" i)
    s.s_mutex
    (fun () -> f s)

(* The default library's serialized form participates in the hash so a
   rebuilt binary with different built-in cells cannot alias an entry. *)
let builtin_library_text =
  lazy (Liberty.to_string (Flow.leaf_library ()))

let fl = Json.float_to_string

let key ~spec ~params ~library =
  let b = Buffer.create 256 in
  Buffer.add_string b spec.Benchmarks.name;
  Buffer.add_char b '\x00';
  Buffer.add_string b
    (match spec.Benchmarks.family with
    | Benchmarks.Iscas89 -> "iscas89"
    | Benchmarks.Ispd09 -> "ispd09");
  List.iter
    (fun s ->
      Buffer.add_char b '\x00';
      Buffer.add_string b s)
    [ string_of_int spec.Benchmarks.num_nodes;
      string_of_int spec.Benchmarks.num_leaves;
      fl spec.Benchmarks.die_side;
      string_of_int spec.Benchmarks.clusters;
      string_of_int spec.Benchmarks.seed;
      fl params.Context.kappa;
      fl params.Context.epsilon;
      string_of_int params.Context.num_slots;
      fl params.Context.zone_side;
      string_of_int params.Context.max_labels;
      fl params.Context.coalesce;
      string_of_int params.Context.max_interval_classes;
      fl params.Context.sibling_guard;
      (match library with
      | Some text -> text
      | None -> Lazy.force builtin_library_text) ];
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The warm-start base key deliberately EXCLUDES the solver params: a
   repeat request for the same synthesized tree under a nearby kappa or
   slot count is exactly the near-miss the ECO quench is for. *)
let base_key ~spec ~library =
  let b = Buffer.create 128 in
  Buffer.add_string b spec.Benchmarks.name;
  Buffer.add_char b '\x00';
  Buffer.add_string b
    (match spec.Benchmarks.family with
    | Benchmarks.Iscas89 -> "iscas89"
    | Benchmarks.Ispd09 -> "ispd09");
  List.iter
    (fun s ->
      Buffer.add_char b '\x00';
      Buffer.add_string b s)
    [ string_of_int spec.Benchmarks.num_nodes;
      string_of_int spec.Benchmarks.num_leaves;
      fl spec.Benchmarks.die_side;
      string_of_int spec.Benchmarks.clusters;
      string_of_int spec.Benchmarks.seed;
      (match library with
      | Some text -> text
      | None -> Lazy.force builtin_library_text) ];
  Digest.to_hex (Digest.string (Buffer.contents b))

let warm_hint t ~base =
  match
    with_lock ~resource:"session.warm" t.warm_mutex (fun () ->
        Lru.find t.warm base)
  with
  | Some entry ->
    Atomic.incr t.warm_hits;
    Metrics.incr warm_hits_c;
    Flight.record
      (Flight.Cache { cache = "warm"; outcome = "hit"; key = base });
    Some entry
  | None ->
    Flight.record
      (Flight.Cache { cache = "warm"; outcome = "miss"; key = base });
    None

let remember_warm t ~base ~params assignment =
  Atomic.incr t.warm_stores;
  Metrics.incr warm_stores_c;
  with_lock ~resource:"session.warm" t.warm_mutex (fun () ->
      ignore (Lru.add t.warm base (params, assignment)))

let cells_of t = function
  | None -> Ok (Flow.leaf_library ())
  | Some text -> (
    let lib_key = Digest.to_hex (Digest.string text) in
    match
      with_lock ~resource:"session.libraries" t.lib_mutex (fun () ->
          Lru.find t.libraries lib_key)
    with
    | Some cells ->
      Flight.record
        (Flight.Cache { cache = "library"; outcome = "hit"; key = lib_key });
      Ok cells
    | None -> (
      match Verrors.guard ~stage:"server.session" (fun () -> Liberty.parse text) with
      | Error e -> Error e  (* the parser fault seam trips through here *)
      | Ok (Error perr) -> Error (Liberty.to_verror perr)
      | Ok (Ok cells) ->
        with_lock ~resource:"session.libraries" t.lib_mutex (fun () ->
            ignore (Lru.add t.libraries lib_key cells));
        Ok cells))

let prepared t ~spec ~params ?library () =
  let k = key ~spec ~params ~library in
  match with_shard t k (fun s -> Lru.find s.s_entries k) with
  | Some prep ->
    Atomic.incr t.hits;
    Metrics.incr hits_c;
    Flight.record (Flight.Cache { cache = "session"; outcome = "hit"; key = k });
    Ok (prep, `Hit)
  | None -> (
    (* Build outside the lock so warm lookups on this shard (and the
       control plane) stay responsive during synthesis.  Two executors
       missing on the same key concurrently both build — deterministic
       duplicate work; [Lru.add] makes the second insert a no-op-sized
       replace.  The single-flight layer upstream makes this rare. *)
    match cells_of t library with
    | Error e -> Error e
    | Ok cells -> (
      match
        Verrors.guard ~stage:"server.session" (fun () ->
            let tree = Benchmarks.synthesize spec in
            Flow.prepare ~params ~cells ~name:spec.Benchmarks.name tree)
      with
      | Error e -> Error e
      | Ok prep ->
        Atomic.incr t.misses;
        Metrics.incr misses_c;
        Flight.record
          (Flight.Cache { cache = "session"; outcome = "miss"; key = k });
        with_shard t k (fun s ->
            match Lru.add s.s_entries k prep with
            | None -> ()
            | Some _evicted ->
              Metrics.incr evictions_c;
              Flight.record
                (Flight.Cache
                   { cache = "session"; outcome = "evict"; key = k }));
        Ok (prep, `Miss)))

type stats = {
  entries : string list;
  capacity : int;
  shards : int;
  hits : int;
  misses : int;
  evictions : int;
  warm_entries : int;
  warm_hits : int;
  warm_stores : int;
}

let stats (t : t) =
  (* Snapshot shard by shard: entries are MRU-first within a shard,
     concatenated in shard order.  Global counters are atomics, so no
     whole-cache lock is ever taken. *)
  let per =
    Array.map
      (fun s ->
        with_lock ~resource:"session.stats" s.s_mutex (fun () ->
            ( Lru.keys s.s_entries,
              Lru.capacity s.s_entries,
              Lru.evictions s.s_entries )))
      t.shards
  in
  {
    entries = Array.to_list per |> List.concat_map (fun (ks, _, _) -> ks);
    capacity = Array.fold_left (fun acc (_, c, _) -> acc + c) 0 per;
    shards = Array.length t.shards;
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Array.fold_left (fun acc (_, _, e) -> acc + e) 0 per;
    warm_entries =
      with_lock ~resource:"session.warm" t.warm_mutex (fun () ->
          List.length (Lru.keys t.warm));
    warm_hits = Atomic.get t.warm_hits;
    warm_stores = Atomic.get t.warm_stores;
  }
