(** The [wavemin bench-serve] load generator.

    Drives a live daemon with [connections] concurrent client threads
    over a mixed request-class profile until a request-count or
    wall-duration budget is spent, then reports throughput plus exact
    and rolling-window latency percentiles.  {!to_report} renders the
    result as a [BENCH_serve.json] ({!Repro_obs.Report}, experiment
    ["serve"]) whose numbers all ride in the ratio+slack-gated [runtime]
    section — the regression gate can fail on latency blow-ups but never
    on machine-to-machine speed differences — while error counts go to
    the ungated [environment] block.

    The schedule is a deterministic round-robin expansion of the class
    weights claimed through a shared atomic counter: under a count
    budget the per-class request counts are independent of connection
    count and interleaving, so every class always appears in the report
    (keeping the gate's [Missing_in_new] rule safe). *)

module Verrors := Repro_util.Verrors
module Rolling := Repro_obs.Rolling
module Report := Repro_obs.Report

type klass = { k_name : string; k_request : Protocol.request }

type config = {
  address : Server.address;
  connections : int;
  total : int option;  (** Request-count budget. *)
  duration_s : float option;
      (** Wall budget; with both set, whichever is spent first stops. *)
  profile : (klass * int) list;  (** (class, weight), weights >= 1. *)
  window_s : float;  (** Rolling window for the reported p50/95/99. *)
  retries : int;
      (** Per-request re-attempts on an [overloaded] rejection or a
          transport failure (reconnecting first), with jittered
          exponential backoff — mirroring {!Client.request_retry}.
          Latency samples include time spent retrying.  Default 0. *)
  retry_backoff_ms : float;
      (** Base backoff: sleep [retry_backoff_ms × 2{^attempt} ×
          U[0.5, 1.5]] before re-attempt [attempt]. *)
}

val default_profile : benchmark:string -> (klass * int) list
(** 3x [run] (initial), 1x [run] (wavemin), 1x [validate], 1x [stats] —
    a cache-friendly mix with one heavy class and one control probe. *)

val dup_profile : benchmark:string -> fraction:float -> (klass * int) list
(** The default profile plus a [dup-wavemin] class of content-identical
    heavy requests weighted to be ~[fraction] of the schedule (clamped
    to [0, 0.9]) — concurrent connections sending them exercise the
    server's single-flight coalescing. *)

val default_config : Server.address -> benchmark:string -> config
(** 4 connections, 64 requests, default profile, 60 s window, no
    retries (50 ms base backoff). *)

type class_stats = {
  name : string;
  count : int;  (** Successful requests. *)
  errors : int;  (** Failed or rejected requests. *)
  mean_ms : float;
  p50_ms : float;  (** Exact (sorted-sample) percentiles. *)
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

type result = {
  wall_s : float;
  total_requests : int;
  total_errors : int;
  total_retries : int;
      (** Backoff re-attempts spent across all workers; reported in the
          ungated [environment] block as ["retries"]. *)
  coalesced : int option;
      (** Delta of the server's [coalesced] stats counter over the run
          (sampled via an extra stats probe before and after);
          [None] when the probe failed. *)
  throughput_rps : float;  (** Successful requests per wall second. *)
  rolling : Rolling.stats;  (** The rolling-window view (ms). *)
  overall : class_stats;
  classes : class_stats list;  (** Profile order. *)
}

val run : config -> (result, Verrors.t) Stdlib.result
(** Execute the load.  [Error] on invalid configuration or when no
    connection could be established at all; partial transport failures
    mid-run are recorded as class errors instead. *)

val to_report : config -> result -> Report.t
