module Json = Repro_util.Json
module Verrors = Repro_util.Verrors
module Metrics = Repro_obs.Metrics
module Log = (val Logs.src_log (Repro_obs.Log.src "wavemin.access-log"))

(* Every swallowed write/rotate/reopen failure lands here: the log is
   best-effort by contract, but a full disk must still be visible on
   the telemetry plane (and as a one-shot warning, not a warning per
   request line). *)
let write_errors_c = Metrics.counter "server.log_write_errors"

type t = {
  a_path : string;
  max_bytes : int;  (* <= 0: rotation disabled *)
  keep : int;
  mutex : Mutex.t;
  mutable oc : out_channel option;
  mutable size : int;  (* bytes in the live file, tracked incrementally *)
  mutable warned : bool;  (* one degraded-mode warning per log lifetime *)
}

let record_failure t what detail =
  Metrics.incr write_errors_c;
  if not t.warned then begin
    t.warned <- true;
    Log.warn (fun m ->
        m
          "access log degraded: %s failed on %s (%s); continuing without \
           logging, counting in server.log_write_errors"
          what t.a_path detail)
  end

let open_channel path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc -> oc
  | exception Sys_error msg ->
    Verrors.fail ~code:Verrors.Io_error ~stage:"server.access_log"
      (Printf.sprintf "cannot open access log: %s" msg)

let create ?(max_bytes = 0) ?(keep = 3) path =
  let oc = open_channel path in
  let size = try (Unix.fstat (Unix.descr_of_out_channel oc)).Unix.st_size with
    | Unix.Unix_error _ -> 0
  in
  { a_path = path; max_bytes; keep = Stdlib.max 1 keep;
    mutex = Mutex.create (); oc = Some oc; size; warned = false }

let path t = t.a_path

let rotated t n = Printf.sprintf "%s.%d" t.a_path n

(* Shift path.(keep-1) -> path.keep, ..., path -> path.1 and reopen.
   Any rename/open failure leaves the log closed until the next write
   reopens it; entries are best-effort by contract. *)
let rotate t =
  (match t.oc with
  | Some oc ->
    close_out_noerr oc;
    t.oc <- None
  | None -> ());
  (try Sys.remove (rotated t t.keep) with Sys_error _ -> ());
  for n = t.keep - 1 downto 1 do
    try Sys.rename (rotated t n) (rotated t (n + 1)) with Sys_error _ -> ()
  done;
  (try Sys.rename t.a_path (rotated t 1)
   with Sys_error msg -> record_failure t "rotation" msg);
  (match open_channel t.a_path with
  | oc -> t.oc <- Some oc
  | exception Verrors.Error e ->
    record_failure t "reopen after rotation" e.Verrors.message);
  t.size <- 0

let write t entry =
  let line = Json.to_string entry ^ "\n" in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if
        t.max_bytes > 0
        && t.size > 0
        && t.size + String.length line > t.max_bytes
      then rotate t;
      (* A log closed by a failed rotation gets one reopen attempt per
         write, so a transient FS error does not silence the log. *)
      (match t.oc with
      | Some _ -> ()
      | None -> (
        match open_channel t.a_path with
        | oc ->
          t.oc <- oc |> Option.some;
          t.size <- 0
        | exception Verrors.Error e ->
          record_failure t "reopen" e.Verrors.message));
      match t.oc with
      | None -> ()  (* the failed reopen above already counted this drop *)
      | Some oc -> (
        try
          output_string oc line;
          flush oc;
          t.size <- t.size + String.length line
        with Sys_error msg -> record_failure t "write" msg))

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match t.oc with
      | Some oc ->
        close_out_noerr oc;
        t.oc <- None
      | None -> ())
