type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable is_closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { capacity; items = Queue.create (); mutex = Mutex.create ();
    nonempty = Condition.create (); is_closed = false }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = with_lock t (fun () -> Queue.length t.items)
let closed t = with_lock t (fun () -> t.is_closed)

let push t x =
  with_lock t (fun () ->
      if t.is_closed then `Closed
      else if Queue.length t.items >= t.capacity then `Full
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.take t.items)
        else if t.is_closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      if not t.is_closed then begin
        t.is_closed <- true;
        Condition.broadcast t.nonempty
      end)
