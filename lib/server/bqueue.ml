type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable is_closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { capacity; items = Queue.create (); mutex = Mutex.create ();
    nonempty = Condition.create (); is_closed = false }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = with_lock t (fun () -> Queue.length t.items)
let closed t = with_lock t (fun () -> t.is_closed)

let push t x =
  with_lock t (fun () ->
      if t.is_closed then `Closed
      else if Queue.length t.items >= t.capacity then `Full
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.take t.items)
        else if t.is_closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

(* Expiry-sweeping pop: entries whose deadline has already passed while
   they waited are not worth executing — skim them off (in FIFO order)
   until a live item or the closed-and-empty end.  The discards come
   back to the caller, which owes each one a structured
   [deadline-exceeded] answer; dropping them silently here would leave
   clients waiting on responses that never come.  Crucially, a sweep
   that empties the queue returns immediately ([None] with the
   non-empty discard list) instead of blocking: holding the discards
   while waiting for unrelated new work would leave their clients — and
   any followers coalesced behind them — hanging indefinitely. *)
let pop_live t ~expired =
  with_lock t (fun () ->
      let dead = ref [] in
      let rec wait () =
        if not (Queue.is_empty t.items) then begin
          let x = Queue.take t.items in
          if expired x then begin
            dead := x :: !dead;
            wait ()
          end
          else Some x
        end
        else if t.is_closed || !dead <> [] then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      let live = wait () in
      (live, List.rev !dead))

let close t =
  with_lock t (fun () ->
      if not t.is_closed then begin
        t.is_closed <- true;
        Condition.broadcast t.nonempty
      end)
