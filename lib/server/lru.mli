(** A plain LRU map with string keys.

    The session cache's eviction policy: [find] and [add] both mark the
    entry most-recently-used; inserting past [capacity] evicts the
    least-recently-used entry.  Operations are O(1) (hash table plus an
    intrusive doubly-linked recency list).  Not thread-safe — callers
    serialize access ({!Session} wraps one in a mutex). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit becomes the most-recently-used entry. *)

val mem : 'a t -> string -> bool
(** Membership test {e without} touching recency. *)

val add : 'a t -> string -> 'a -> string option
(** Insert or replace, making the entry most-recently-used.  Returns
    the key evicted to stay within capacity, if any (never the key just
    added). *)

val remove : 'a t -> string -> unit

val keys : 'a t -> string list
(** Most-recently-used first — the inverse of eviction order. *)

val evictions : 'a t -> int
(** Total entries evicted (not removed) since {!create}. *)
