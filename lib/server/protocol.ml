module Flow = Repro_core.Flow
module Json = Repro_util.Json
module Verrors = Repro_util.Verrors

type solve_opts = {
  benchmark : string;
  kappa : float;
  slots : int;
  budget_ms : float option;
  max_labels : int option;
  library : string option;
}

let default_opts ~benchmark =
  { benchmark; kappa = 20.0; slots = 158; budget_ms = None; max_labels = None;
    library = None }

type metrics_format = Text | Json_snapshot

type request =
  | Run of { opts : solve_opts; algorithm : Flow.algorithm; warm : bool }
  | Compare of solve_opts
  | Validate of { opts : solve_opts; all : bool }
  | Montecarlo of { opts : solve_opts; instances : int }
  | Stats
  | Metrics of metrics_format
  | Health
  | Flight
  | Shutdown

let request_kind = function
  | Run _ -> "run"
  | Compare _ -> "compare"
  | Validate _ -> "validate"
  | Montecarlo _ -> "montecarlo"
  | Stats -> "stats"
  | Metrics _ -> "metrics"
  | Health -> "health"
  | Flight -> "flight"
  | Shutdown -> "shutdown"

let is_control = function
  | Stats | Metrics _ | Health | Flight | Shutdown -> true
  | Run _ | Compare _ | Validate _ | Montecarlo _ -> false

let algorithms = Flow.solver_names

let algorithm_of_name n = List.assoc_opt n algorithms

let algorithm_name alg =
  fst (List.find (fun (_, a) -> a = alg) algorithms)

type envelope = {
  id : Json.t;
  deadline_ms : float option;
  payload : (request, Verrors.t) result;
}

let stage = "server.protocol"

let perr ?subject fmt =
  Format.kasprintf
    (fun message -> Error (Verrors.make ~code:Verrors.Parse_error ~stage ?subject message))
    fmt

(* ---- request parsing --------------------------------------------- *)

let opt_field doc name of_json =
  match Json.member name doc with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match of_json v with
    | Some x -> Ok (Some x)
    | None -> perr ~subject:name "field %S has the wrong type" name)

let field doc name of_json ~default =
  match opt_field doc name of_json with
  | Ok None -> Ok default
  | Ok (Some v) -> Ok v
  | Error e -> Error e

let ( let* ) = Result.bind

let solve_opts_of ?(require_benchmark = true) doc =
  let* benchmark =
    match Json.member "benchmark" doc with
    | Some (Json.Str b) -> Ok b
    | None | Some Json.Null ->
      if require_benchmark then
        perr ~subject:"benchmark" "missing required field \"benchmark\""
      else Ok ""
    | Some _ -> perr ~subject:"benchmark" "field \"benchmark\" must be a string"
  in
  let* kappa = field doc "kappa" Json.float_value ~default:20.0 in
  let* slots = field doc "slots" Json.int_value ~default:158 in
  let* budget_ms = opt_field doc "budget_ms" Json.float_value in
  let* max_labels = opt_field doc "max_labels" Json.int_value in
  let* library = opt_field doc "library" Json.string_value in
  Ok { benchmark; kappa; slots; budget_ms; max_labels; library }

let request_of_json doc =
  let* kind =
    match Json.member "type" doc with
    | Some (Json.Str k) -> Ok k
    | None -> perr ~subject:"type" "missing required field \"type\""
    | Some _ -> perr ~subject:"type" "field \"type\" must be a string"
  in
  match kind with
  | "run" ->
    let* opts = solve_opts_of doc in
    let* algorithm =
      let* name = field doc "algo" Json.string_value ~default:"wavemin" in
      match algorithm_of_name name with
      | Some a -> Ok a
      | None ->
        perr ~subject:"algo" "unknown algorithm %S (expected %s)" name
          (String.concat ", " (List.map fst algorithms))
    in
    let* warm = field doc "warm" Json.bool_value ~default:false in
    Ok (Run { opts; algorithm; warm })
  | "compare" ->
    let* opts = solve_opts_of doc in
    Ok (Compare opts)
  | "validate" ->
    let* all = field doc "all" Json.bool_value ~default:false in
    let* opts = solve_opts_of ~require_benchmark:(not all) doc in
    Ok (Validate { opts; all })
  | "montecarlo" ->
    let* opts = solve_opts_of doc in
    let* instances = field doc "instances" Json.int_value ~default:200 in
    if instances < 1 then
      perr ~subject:"instances" "field \"instances\" must be >= 1"
    else Ok (Montecarlo { opts; instances })
  | "stats" -> Ok Stats
  | "metrics" -> (
    let* format = field doc "format" Json.string_value ~default:"text" in
    match format with
    | "text" | "prometheus" -> Ok (Metrics Text)
    | "json" -> Ok (Metrics Json_snapshot)
    | f ->
      perr ~subject:"format"
        "unknown metrics format %S (expected \"text\" or \"json\")" f)
  | "health" -> Ok Health
  | "flight" -> Ok Flight
  | "shutdown" -> Ok Shutdown
  | k ->
    perr ~subject:"type"
      "unknown request type %S (expected run, compare, validate, montecarlo, \
       stats, metrics, health, flight or shutdown)"
      k

let parse_request line =
  match Json.of_string line with
  | Error msg ->
    { id = Json.Null; deadline_ms = None;
      payload = perr "malformed JSON: %s" msg }
  | Ok doc -> (
    let id = Option.value (Json.member "id" doc) ~default:Json.Null in
    match opt_field doc "deadline_ms" Json.float_value with
    | Error e -> { id; deadline_ms = None; payload = Error e }
    | Ok (Some ms) when not (Float.is_finite ms && ms >= 0.0) ->
      { id; deadline_ms = None;
        payload =
          perr ~subject:"deadline_ms"
            "field \"deadline_ms\" must be a finite number >= 0" }
    | Ok deadline_ms -> { id; deadline_ms; payload = request_of_json doc })

(* ---- request rendering (client side) ----------------------------- *)

let opts_fields o =
  [ ("benchmark", Json.Str o.benchmark);
    ("kappa", Json.Num o.kappa);
    ("slots", Json.Num (float_of_int o.slots)) ]
  @ (match o.budget_ms with
    | None -> []
    | Some ms -> [ ("budget_ms", Json.Num ms) ])
  @ (match o.max_labels with
    | None -> []
    | Some n -> [ ("max_labels", Json.Num (float_of_int n)) ])
  @ (match o.library with
    | None -> []
    | Some text -> [ ("library", Json.Str text) ])

let request_to_json ?deadline_ms ~id req =
  let body =
    match req with
    | Run { opts; algorithm; warm } ->
      opts_fields opts
      @ [ ("algo", Json.Str (algorithm_name algorithm)) ]
      (* Rendered only when set, so pre-warm request bytes (and their
         canonical keys) are unchanged; a warm run deliberately does
         NOT coalesce with its cold twin — their ECO paths differ. *)
      @ (if warm then [ ("warm", Json.Bool true) ] else [])
    | Compare opts -> opts_fields opts
    | Validate { opts; all } ->
      (if all then [ ("all", Json.Bool true) ] else []) @ opts_fields opts
    | Montecarlo { opts; instances } ->
      opts_fields opts @ [ ("instances", Json.Num (float_of_int instances)) ]
    | Metrics Text -> [ ("format", Json.Str "text") ]
    | Metrics Json_snapshot -> [ ("format", Json.Str "json") ]
    | Stats | Health | Flight | Shutdown -> []
  in
  let deadline =
    match deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", Json.Num ms) ]
  in
  Json.Obj
    (("id", id) :: ("type", Json.Str (request_kind req)) :: (deadline @ body))

(* ---- responses --------------------------------------------------- *)

let ok_response ~id result =
  Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ]

let error_response ~id ?(degradations = []) err =
  Json.Obj
    ([ ("id", id); ("ok", Json.Bool false); ("error", Verrors.to_json err) ]
    @
    if degradations = [] then []
    else [ ("degradations", Json.List degradations) ])

(* The single-flight content key: the canonical wire rendering with the
   id nulled out, so two requests differing only in their ids coalesce
   and any semantic difference (benchmark, kappa, budget, library text)
   keeps them apart. *)
let canonical_key req =
  Digest.to_hex (Digest.string (Json.to_string (request_to_json ~id:Json.Null req)))

let line json = Json.to_string json ^ "\n"

type response = { rid : Json.t; ok : bool; body : Json.t }

let parse_response text =
  match Json.of_string text with
  | Error msg -> Error ("malformed response JSON: " ^ msg)
  | Ok doc -> (
    let rid = Option.value (Json.member "id" doc) ~default:Json.Null in
    match Json.member "ok" doc with
    | Some (Json.Bool true) -> (
      match Json.member "result" doc with
      | Some body -> Ok { rid; ok = true; body }
      | None -> Error "response lacks a \"result\" field")
    | Some (Json.Bool false) -> (
      match Json.member "error" doc with
      | Some body -> Ok { rid; ok = false; body }
      | None -> Error "response lacks an \"error\" field")
    | _ -> Error "response lacks a boolean \"ok\" field")
