module Flow = Repro_core.Flow
module Context = Repro_core.Context
module Golden = Repro_core.Golden
module Preflight = Repro_core.Preflight
module Montecarlo = Repro_core.Montecarlo
module Benchmarks = Repro_cts.Benchmarks
module Json = Repro_util.Json
module Verrors = Repro_util.Verrors
module Budget = Repro_obs.Budget
module P = Protocol

let params_of (o : P.solve_opts) =
  { Context.default_params with Context.kappa = o.kappa; num_slots = o.slots }

(* One budget per request, merging the caller's solver limits with the
   envelope deadline (absolute, stamped by the reader at parse time).
   The deadline channel trips with [Deadline_exceeded] and wins over
   [Budget_exhausted] — a shed request is the sender's choice, not a
   solver downgrade. *)
let budget_of ?deadline_ns (o : P.solve_opts) =
  match (o.budget_ms, o.max_labels, deadline_ns) with
  | None, None, None -> None
  | wall_ms, max_labels, deadline_ns ->
    Some (Budget.create ?wall_ms ?deadline_ns ?max_labels ())

let find_spec ~stage name =
  match Benchmarks.find name with
  | spec -> Ok spec
  | exception Not_found ->
    Verrors.error ~code:Verrors.Invalid_params ~stage ~subject:name
      ~hints:[ "`wavemin list' names the benchmark suite" ]
      "unknown benchmark"

let degradation_json (d : Flow.degradation) =
  Json.Obj
    [ ("from", Json.Str (Flow.algorithm_name d.Flow.from_alg));
      ( "to",
        match d.Flow.to_alg with
        | Some a -> Json.Str (Flow.algorithm_name a)
        | None -> Json.Null );
      ("code", Json.Str (Verrors.code_name d.Flow.error.Verrors.code));
      ("message", Json.Str d.Flow.error.Verrors.message) ]

(* Only deterministic fields: no wall/CPU time, no cache provenance —
   the same request must serialize to the same bytes on every path. *)
let run_json (r : Flow.run) =
  Json.Obj
    [ ("benchmark", Json.Str r.Flow.benchmark);
      ("algorithm", Json.Str (Flow.algorithm_name r.Flow.algorithm));
      ( "quality",
        Json.Obj
          [ ("peak_current_ma", Json.Num r.Flow.metrics.Golden.peak_current_ma);
            ("vdd_noise_mv", Json.Num r.Flow.metrics.Golden.vdd_noise_mv);
            ("gnd_noise_mv", Json.Num r.Flow.metrics.Golden.gnd_noise_mv);
            ("skew_ps", Json.Num r.Flow.metrics.Golden.skew_ps);
            ("predicted_peak_ua", Json.Num r.Flow.predicted_peak_ua);
            ( "num_leaf_inverters",
              Json.Num (float_of_int r.Flow.num_leaf_inverters) ) ] );
      ("approximate", Json.Bool r.Flow.approximate);
      ( "degradations",
        Json.List (List.map degradation_json r.Flow.degradations) ) ]

(* Out-of-band execution facts for the access log: cache outcome and
   content hash.  Threaded as a mutable record precisely so nothing
   about it can leak into the response body — responses stay
   byte-identical with or without a [meta] attached. *)
type cache_outcome =
  | Cache_hit
  | Cache_miss
  | Cache_coalesced
  | Cache_warm
  | Cache_none

type meta = {
  mutable cache : cache_outcome;
  mutable content_key : string option;
}

let create_meta () = { cache = Cache_none; content_key = None }

let cache_outcome_name = function
  | Cache_hit -> "hit"
  | Cache_miss -> "miss"
  | Cache_coalesced -> "coalesced"
  | Cache_warm -> "warm"
  | Cache_none -> "none"

let prepared ?meta session (o : P.solve_opts) ~stage =
  match find_spec ~stage o.P.benchmark with
  | Error e -> Error e
  | Ok spec ->
    let params = params_of o in
    let result =
      Session.prepared session ~spec ~params ?library:o.P.library ()
    in
    (match meta with
    | None -> ()
    | Some m ->
      m.content_key <- Some (Session.key ~spec ~params ~library:o.P.library);
      (match result with
      | Ok (_, `Hit) -> m.cache <- Cache_hit
      | Ok (_, `Miss) -> m.cache <- Cache_miss
      | Error _ -> ()));
    result

let handle_run ?meta ?deadline_ns session (o : P.solve_opts) algorithm ~warm =
  match prepared ?meta session o ~stage:"server.run" with
  | Error e -> Error (e, [])
  | Ok (prep, _) ->
    let budget = budget_of ?deadline_ns o in
    (* The base key (tree + library, params excluded) indexes the
       warm-start store: [find_spec] cannot fail here because
       [prepared] already resolved the same name. *)
    let base =
      match find_spec ~stage:"server.run" o.P.benchmark with
      | Ok spec -> Some (Session.base_key ~spec ~library:o.P.library)
      | Error _ -> None
    in
    let result =
      match (warm, algorithm, base) with
      | true, Flow.Sa, Some base -> (
        match Session.warm_hint session ~base with
        | Some (_prev_params, previous) ->
          (match meta with
          | None -> ()
          | Some m -> m.cache <- Cache_warm);
          Flow.resolve_warm ?budget prep ~previous
        | None -> Flow.run_prepared_robust ?budget prep algorithm)
      | _ -> Flow.run_prepared_robust ?budget prep algorithm
    in
    (* Bank any real solver's solution (the Initial reference is just
       the default assignment — nothing worth quenching from). *)
    (match (result, base) with
    | Ok r, Some base when r.Flow.algorithm <> Flow.Initial ->
      Session.remember_warm session ~base ~params:(params_of o)
        r.Flow.assignment
    | _ -> ());
    (match result with
    | Ok r -> Ok (run_json r)
    | Error (e, degs) -> Error (e, degs))

let handle_compare ?meta ?deadline_ns session (o : P.solve_opts) =
  match prepared ?meta session o ~stage:"server.compare" with
  | Error e -> Error (e, [])
  | Ok (prep, _) ->
    let rows =
      List.map
        (fun algorithm ->
          match
            Flow.run_prepared_robust
              ?budget:(budget_of ?deadline_ns o)
              prep algorithm
          with
          | Ok r -> run_json r
          | Error (e, degs) ->
            Json.Obj
              [ ("algorithm", Json.Str (Flow.algorithm_name algorithm));
                ("error", Verrors.to_json e);
                ("degradations", Json.List (List.map degradation_json degs)) ])
        [ Flow.Initial; Flow.Peakmin; Flow.Wavemin; Flow.Wavemin_fast ]
    in
    Ok (Json.Obj [ ("benchmark", Json.Str o.P.benchmark);
                   ("algorithms", Json.List rows) ])

let handle_validate session (o : P.solve_opts) ~all =
  let specs =
    if all then Ok Benchmarks.all
    else
      match find_spec ~stage:"server.validate" o.P.benchmark with
      | Ok spec -> Ok [ spec ]
      | Error e -> Error e
  in
  match specs with
  | Error e -> Error (e, [])
  | Ok specs ->
    let params = params_of o in
    let rows =
      List.map
        (fun spec ->
          let issues =
            match
              Session.prepared session ~spec ~params ?library:o.P.library ()
            with
            | Error e -> [ e ]
            | Ok (prep, _) -> (
              match
                Verrors.guard ~stage:"server.validate" (fun () ->
                    Preflight.check ~params (Flow.prepared_tree prep)
                      ~cells:(Flow.prepared_cells prep))
              with
              | Ok ds -> ds
              | Error e -> [ e ])
          in
          Json.Obj
            [ ("benchmark", Json.Str spec.Benchmarks.name);
              ("ok", Json.Bool (issues = []));
              ("issues", Json.List (List.map Verrors.to_json issues)) ])
        specs
    in
    let clean =
      List.for_all
        (function
          | Json.Obj fields -> List.assoc_opt "ok" fields = Some (Json.Bool true)
          | _ -> false)
        rows
    in
    Ok (Json.Obj [ ("ok", Json.Bool clean); ("benchmarks", Json.List rows) ])

let handle_montecarlo ?meta ?deadline_ns session (o : P.solve_opts) ~instances =
  match prepared ?meta session o ~stage:"server.montecarlo" with
  | Error e -> Error (e, [])
  | Ok (prep, _) -> (
    match
      Flow.run_prepared_robust
        ?budget:(budget_of ?deadline_ns o)
        prep Flow.Wavemin
    with
    | Error (e, degs) -> Error (e, degs)
    | Ok r -> (
      let config =
        { Montecarlo.default_config with
          Montecarlo.instances;
          kappa = Float.max o.P.kappa 100.0 }
      in
      match
        Verrors.guard ~stage:"server.montecarlo" (fun () ->
            Montecarlo.run ~config (Flow.prepared_tree prep) r.Flow.assignment)
      with
      | Error e -> Error (e, r.Flow.degradations)
      | Ok rep ->
        Ok
          (Json.Obj
             [ ("benchmark", Json.Str o.P.benchmark);
               ("instances", Json.Num (float_of_int instances));
               ("skew_yield", Json.Num rep.Montecarlo.skew_yield);
               ("mean_skew", Json.Num rep.Montecarlo.mean_skew);
               ("norm_std_peak", Json.Num rep.Montecarlo.norm_std_peak);
               ("norm_std_vdd", Json.Num rep.Montecarlo.norm_std_vdd);
               ("norm_std_gnd", Json.Num rep.Montecarlo.norm_std_gnd);
               ( "degradations",
                 Json.List (List.map degradation_json r.Flow.degradations) ) ])))

let execute ?meta ?deadline_ns session = function
  | P.Run { opts; algorithm; warm } ->
    handle_run ?meta ?deadline_ns session opts algorithm ~warm
  | P.Compare opts -> handle_compare ?meta ?deadline_ns session opts
  | P.Validate { opts; all } -> handle_validate session opts ~all
  | P.Montecarlo { opts; instances } ->
    handle_montecarlo ?meta ?deadline_ns session opts ~instances
  | (P.Stats | P.Metrics _ | P.Health | P.Flight | P.Shutdown) as req ->
    Error
      ( Verrors.make ~code:Verrors.Invalid_params ~stage:"server.execute"
          ~subject:(P.request_kind req)
          "control-plane request reached the executor",
        [] )
