type 'a entry = { mutable followers_rev : 'a list }

type 'a t = { mutex : Mutex.t; flights : (string, 'a entry) Hashtbl.t }

let create () = { mutex = Mutex.create (); flights = Hashtbl.create 64 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let admit t ~key follower ~enqueue =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.flights key with
  | Some e ->
    e.followers_rev <- follower :: e.followers_rev;
    `Joined
  | None -> (
    (* Enqueue under the lock: entry creation must be atomic with the
       queue push, or a concurrent duplicate could join a flight whose
       leader was refused by backpressure and never runs. *)
    match enqueue () with
    | Ok v ->
      Hashtbl.replace t.flights key { followers_rev = [] };
      `Led v
    | Error e -> `Refused e)

let complete t ~key =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.flights key with
  | None -> []
  | Some e ->
    Hashtbl.remove t.flights key;
    List.rev e.followers_rev

let in_flight t = with_lock t @@ fun () -> Hashtbl.length t.flights
