(** A bounded multi-producer multi-consumer queue with explicit
    backpressure and drain semantics.

    Producers (connection threads) never block: {!push} returns [`Full]
    when the bound is reached — the caller turns that into a structured
    [Overloaded] rejection — and [`Closed] once draining has begun.
    Consumers (the executor workers) block in {!pop} until an item
    arrives; each item is delivered to exactly one consumer.  After
    {!close} they continue to receive the items already accepted
    (graceful drain finishes in-flight work) and then get [None].
    Thread- and domain-safe. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current depth (racy snapshot, for metrics/health). *)

val push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Non-blocking enqueue. *)

val pop : 'a t -> 'a option
(** Blocking dequeue; [None] once the queue is closed {e and} empty. *)

val pop_live : 'a t -> expired:('a -> bool) -> 'a option * 'a list
(** {!pop}, discarding entries for which [expired] holds at dequeue
    time: returns the first live item plus every expired entry skimmed
    on the way, in FIFO order.  The caller owns the discards — the
    server answers each with a structured [deadline-exceeded] error.
    A sweep that empties the queue returns [(None, discards)]
    {e without blocking} so the discards can be answered promptly; the
    call only means shutdown when both the item and the discard list
    are empty ([(None, [])] — closed and drained).  [expired] runs
    under the queue lock: it must be cheap and must not touch the
    queue. *)

val close : 'a t -> unit
(** Stop accepting; wake blocked consumers.  Idempotent. *)

val closed : 'a t -> bool
