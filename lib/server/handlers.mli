(** Data-plane request execution.

    Pure request → response-body logic, shared by the server's executor
    and by in-process tests: given a session cache and a request,
    produce the deterministic JSON result or a structured error (with
    the fallback-chain degradations when a robust run failed outright).
    Never raises — every failure mode, including injected faults at any
    seam, comes back as [Error]. *)

module Json := Repro_util.Json
module Verrors := Repro_util.Verrors
module Flow := Repro_core.Flow

val degradation_json : Flow.degradation -> Json.t

val execute :
  Session.t ->
  Protocol.request ->
  (Json.t, Verrors.t * Flow.degradation list) result
(** Execute a [Run]/[Compare]/[Validate]/[Montecarlo] request.
    Control-plane requests ([Stats]/[Health]/[Shutdown]) are the
    server's responsibility and yield an [Error] here. *)
