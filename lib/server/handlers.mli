(** Data-plane request execution.

    Pure request → response-body logic, shared by the server's executor
    and by in-process tests: given a session cache and a request,
    produce the deterministic JSON result or a structured error (with
    the fallback-chain degradations when a robust run failed outright).
    Never raises — every failure mode, including injected faults at any
    seam, comes back as [Error]. *)

module Json := Repro_util.Json
module Verrors := Repro_util.Verrors
module Flow := Repro_core.Flow

val degradation_json : Flow.degradation -> Json.t

type cache_outcome =
  | Cache_hit
  | Cache_miss
  | Cache_coalesced
      (** Answered from another request's in-flight solve (single-flight
          follower); set by the server, never by {!execute}. *)
  | Cache_warm
      (** A warm-opted [Sa] run found a banked assignment for the same
          tree and library and re-solved by annealer quench
          ({!Repro_core.Flow.resolve_warm}) instead of solving cold. *)
  | Cache_none  (** No session-cache lookup happened (e.g. [validate]). *)

type meta = {
  mutable cache : cache_outcome;
  mutable content_key : string option;  (** {!Session.key} hex digest. *)
}
(** Out-of-band execution facts recorded for the access log.  Strictly
    write-only from the handlers' perspective: nothing read from a
    [meta] may influence a response, so responses stay byte-identical
    with or without one attached. *)

val create_meta : unit -> meta
val cache_outcome_name : cache_outcome -> string

val execute :
  ?meta:meta ->
  ?deadline_ns:int64 ->
  Session.t ->
  Protocol.request ->
  (Json.t, Verrors.t * Flow.degradation list) result
(** Execute a [Run]/[Compare]/[Validate]/[Montecarlo] request.
    Control-plane requests ([Stats]/[Metrics]/[Health]/[Shutdown]) are
    the server's responsibility and yield an [Error] here.

    [deadline_ns] is the request's absolute end-to-end deadline
    ({!Repro_obs.Clock.now_ns} scale), merged into the per-request
    {!Repro_obs.Budget} so in-flight solves cancel cooperatively (every
    Warburton row checks the ambient budget) with a structured
    [Deadline_exceeded] error instead of running to completion for a
    client that stopped waiting. *)
