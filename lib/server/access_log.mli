(** JSONL access log with size-based rotation.

    One JSON line per entry, flushed per write so a crash loses at most
    the line being written.  When [max_bytes] is set and appending the
    next line would exceed it, the file is rotated first:
    [path.keep-1 -> path.keep], ..., [path.1 -> path.2],
    [path -> path.1], and a fresh [path] is opened — so at most
    [keep] rotated generations are retained and the live file never
    materially exceeds [max_bytes].  Thread-safe; write failures are
    swallowed (the access log is strictly out-of-band and must never
    take a request down with it) but not silent: each failed write,
    rotation or reopen bumps the [server.log_write_errors] metrics
    counter, and the first one logs a single degraded-mode warning —
    after that the log keeps retrying one reopen per write without
    flooding stderr. *)

type t

val create : ?max_bytes:int -> ?keep:int -> string -> t
(** Open [path] for appending (created if missing).  [max_bytes]
    omitted or [<= 0] disables rotation; [keep] (default 3) is the
    number of rotated generations retained.
    @raise Repro_util.Verrors.Error
      ([Io_error]) when the file cannot be opened. *)

val write : t -> Repro_util.Json.t -> unit
(** Append one line (rotating first if needed) and flush. *)

val close : t -> unit
(** Idempotent. *)

val path : t -> string
