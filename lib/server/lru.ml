type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* MRU *)
  mutable tail : 'a node option;  (* LRU *)
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { cap = capacity; table = Hashtbl.create 16; head = None; tail = None;
    evicted = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let evictions t = t.evicted
let mem t key = Hashtbl.mem t.table key

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
    unlink t n;
    push_front t n;
    Some n.value

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table key

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    n.value <- value;
    unlink t n;
    push_front t n;
    None
  | None ->
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key n;
    push_front t n;
    if Hashtbl.length t.table <= t.cap then None
    else begin
      match t.tail with
      | None -> None (* unreachable: cap >= 1 and we just inserted *)
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.table lru.key;
        t.evicted <- t.evicted + 1;
        Some lru.key
    end

let keys t =
  let rec collect acc = function
    | None -> List.rev acc
    | Some n -> collect (n.key :: acc) n.next
  in
  collect [] t.head
