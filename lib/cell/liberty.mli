(** Textual cell-library interchange, Liberty-flavoured.

    Real flows exchange cell libraries as Liberty files.  This module
    implements a small self-describing dialect of that idea: a library
    is a sequence of cell blocks with typed attributes,

    {v
    cell (BUF_X8) {
      kind : buffer;
      drive : 8;
      input_cap : 2.0;        /* fF */
      output_res : 0.795;     /* kOhm */
      intrinsic_rise : 17.66; /* ps */
      intrinsic_fall : 19.34;
      area : 11.2;
      delay_steps : (0, 2, 4, 6, 8, 10);  /* adjustable cells only */
    }
    v}

    so that user libraries can be versioned, diffed and loaded without
    recompiling.  The printer and parser round-trip exactly. *)

val to_string : Cell.t list -> string
(** Serialize a library. *)

val cell_to_string : Cell.t -> string
(** Serialize one cell block. *)

type error = { line : int; col : int; message : string }
(** A parse diagnostic with a full source position: 1-based line and
    column.  Every error path carries one — including unexpected
    end-of-input (positioned at the end of the file) and semantic cell
    validation (positioned at the offending cell's header). *)

val pp_error : Format.formatter -> error -> unit

val to_verror : error -> Repro_util.Verrors.t
(** The same diagnostic as a structured {!Repro_util.Verrors.t}
    ([Parse_error], stage ["liberty.parse"], position in [subject]). *)

val parse : string -> (Cell.t list, error) result
(** Parse a library.  Comments ([/* ... */]) and blank lines are
    ignored; unknown attributes are rejected (typo safety); every cell
    must define all electrical attributes.
    @raise Repro_util.Verrors.Error when the [parser] fault seam is
    armed ({!Repro_obs.Fault}). *)

val parse_exn : string -> Cell.t list
(** @raise Repro_util.Verrors.Error with {!to_verror} of the diagnostic
    on malformed input. *)

val load_file : string -> (Cell.t list, error) result
(** Read and parse a file ({!error} positions refer to the file).
    @raise Sys_error if the file cannot be read. *)

val save_file : string -> Cell.t list -> unit
(** Write a library to a file. *)
