module Verrors = Repro_util.Verrors
module Fault = Repro_obs.Fault

type error = { line : int; col : int; message : string }

let pp_error fmt e =
  Format.fprintf fmt "line %d, column %d: %s" e.line e.col e.message

let to_verror e =
  Verrors.make ~code:Verrors.Parse_error ~stage:"liberty.parse"
    ~subject:(Printf.sprintf "line %d, column %d" e.line e.col)
    e.message

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let kind_to_string = function
  | Cell.Buffer -> "buffer"
  | Cell.Inverter -> "inverter"
  | Cell.Adjustable_buffer -> "adjustable_buffer"
  | Cell.Adjustable_inverter -> "adjustable_inverter"

let print_float = Repro_util.Floats.shortest_string

let float_attr b name v =
  Buffer.add_string b (Printf.sprintf "  %s : %s;\n" name (print_float v))

let cell_to_buffer b (c : Cell.t) =
  Buffer.add_string b (Printf.sprintf "cell (%s) {\n" c.Cell.name);
  Buffer.add_string b
    (Printf.sprintf "  kind : %s;\n" (kind_to_string c.Cell.kind));
  Buffer.add_string b (Printf.sprintf "  drive : %d;\n" c.Cell.drive);
  float_attr b "input_cap" c.Cell.input_cap;
  float_attr b "output_res" c.Cell.output_res;
  float_attr b "intrinsic_rise" c.Cell.intrinsic_rise;
  float_attr b "intrinsic_fall" c.Cell.intrinsic_fall;
  float_attr b "area" c.Cell.area;
  if Array.length c.Cell.delay_steps > 0 then
    Buffer.add_string b
      (Printf.sprintf "  delay_steps : (%s);\n"
         (String.concat ", "
            (Array.to_list (Array.map print_float c.Cell.delay_steps))));
  Buffer.add_string b "}\n"

let cell_to_string c =
  let b = Buffer.create 256 in
  cell_to_buffer b c;
  Buffer.contents b

let to_string cells =
  let b = Buffer.create 1024 in
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b '\n';
      cell_to_buffer b c)
    cells;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

(* A tiny hand-rolled tokenizer over the whole input, tracking line and
   column numbers for error reporting. *)
type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Colon
  | Semicolon
  | Comma

(* A source position: [at] is the 1-based line, [col] the 1-based
   column of the token's first character. *)
type lexed = { token : token; at : int; col : int }

exception Parse_error of error

let fail line col fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; col; message })) fmt

(* Tokenize, also returning the end-of-input position so that
   unexpected-EOF errors point at the actual end of the file instead of
   a sentinel. *)
let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  (* Offset of the current line's first character; column = i - bol + 1. *)
  let bol = ref 0 in
  let col_of i = i - !bol + 1 in
  let push i token = tokens := { token; at = !line; col = col_of i } :: !tokens in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let is_number_char c =
    (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'
  in
  let rec go i =
    if i >= n then ()
    else
      match input.[i] with
      | '\n' ->
        incr line;
        bol := i + 1;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && input.[i + 1] = '*' ->
        (* Comment: skip to the closing marker, counting newlines. *)
        let rec skip j =
          if j + 1 >= n then fail !line (col_of i) "unterminated comment"
          else if input.[j] = '*' && input.[j + 1] = '/' then j + 2
          else begin
            if input.[j] = '\n' then begin
              incr line;
              bol := j + 1
            end;
            skip (j + 1)
          end
        in
        go (skip (i + 2))
      | '(' ->
        push i Lparen;
        go (i + 1)
      | ')' ->
        push i Rparen;
        go (i + 1)
      | '{' ->
        push i Lbrace;
        go (i + 1)
      | '}' ->
        push i Rbrace;
        go (i + 1)
      | ':' ->
        push i Colon;
        go (i + 1)
      | ';' ->
        push i Semicolon;
        go (i + 1)
      | ',' ->
        push i Comma;
        go (i + 1)
      | c when (c >= '0' && c <= '9') || c = '-' || c = '+' ->
        let j = ref i in
        while !j < n && is_number_char input.[!j] do
          incr j
        done;
        let text = String.sub input i (!j - i) in
        (match float_of_string_opt text with
        | Some v -> push i (Number v)
        | None -> fail !line (col_of i) "malformed number %S" text);
        go !j
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        push i (Ident (String.sub input i (!j - i)));
        go !j
      | c -> fail !line (col_of i) "unexpected character %C" c
  in
  go 0;
  (List.rev !tokens, (!line, col_of n))

(* Recursive-descent parser over the token list. *)
type attr_value = Num of float | Name of string | Tuple of float list

let parse_tokens (tokens, (eof_line, eof_col)) =
  (* Every failure path carries a position: a token's own (line, col),
     or the end-of-input position when the token stream ran out. *)
  let fail_eof fmt = fail eof_line eof_col fmt in
  let expect what pred = function
    | [] -> fail_eof "unexpected end of input, expected %s" what
    | t :: rest -> (
      match pred t.token with
      | Some v -> (v, rest)
      | None -> fail t.at t.col "expected %s" what)
  in
  let ident = expect "identifier" (function Ident s -> Some s | _ -> None) in
  let punct name p =
    expect name (fun t -> if t = p then Some () else None)
  in
  let rec attr_tuple acc tokens =
    let v, tokens =
      expect "number" (function Number v -> Some v | _ -> None) tokens
    in
    match tokens with
    | { token = Comma; _ } :: rest -> attr_tuple (v :: acc) rest
    | { token = Rparen; _ } :: rest -> (List.rev (v :: acc), rest)
    | { at; col; _ } :: _ -> fail at col "expected ',' or ')' in tuple"
    | [] -> fail_eof "unexpected end of input in tuple"
  in
  let attr_value tokens =
    match tokens with
    | { token = Number v; _ } :: rest -> (Num v, rest)
    | { token = Ident s; _ } :: rest -> (Name s, rest)
    | { token = Lparen; _ } :: rest ->
      let vs, rest = attr_tuple [] rest in
      (Tuple vs, rest)
    | { at; col; _ } :: _ -> fail at col "expected attribute value"
    | [] -> fail_eof "unexpected end of input, expected attribute value"
  in
  let rec attrs acc tokens =
    match tokens with
    | { token = Rbrace; _ } :: rest -> (List.rev acc, rest)
    | { token = Ident name; at; col } :: rest ->
      let (), rest = punct "':'" Colon rest in
      let value, rest = attr_value rest in
      let (), rest = punct "';'" Semicolon rest in
      attrs ((name, value, (at, col)) :: acc) rest
    | { at; col; _ } :: _ -> fail at col "expected attribute or '}'"
    | [] -> fail_eof "unexpected end of input inside cell block"
  in
  let build_cell name (at, col) attributes =
    let fail_cell (at, col) fmt = fail at col fmt in
    let find key =
      List.find_opt (fun (k, _, _) -> String.equal k key) attributes
    in
    let number key =
      match find key with
      | Some (_, Num v, _) -> v
      | Some (_, (Name _ | Tuple _), pos) ->
        fail_cell pos "%s must be a number" key
      | None -> fail at col "cell %s is missing attribute %s" name key
    in
    let kind =
      match find "kind" with
      | Some (_, Name "buffer", _) -> Cell.Buffer
      | Some (_, Name "inverter", _) -> Cell.Inverter
      | Some (_, Name "adjustable_buffer", _) -> Cell.Adjustable_buffer
      | Some (_, Name "adjustable_inverter", _) -> Cell.Adjustable_inverter
      | Some (_, _, pos) ->
        fail_cell pos
          "kind must be one of buffer, inverter, adjustable_buffer, adjustable_inverter"
      | None -> fail at col "cell %s is missing attribute kind" name
    in
    let delay_steps =
      match find "delay_steps" with
      | Some (_, Tuple vs, _) -> Array.of_list vs
      | Some (_, (Num _ | Name _), pos) ->
        fail_cell pos "delay_steps must be a tuple"
      | None -> [||]
    in
    let allowed =
      [ "kind"; "drive"; "input_cap"; "output_res"; "intrinsic_rise";
        "intrinsic_fall"; "area"; "delay_steps" ]
    in
    List.iter
      (fun (k, _, pos) ->
        if not (List.mem k allowed) then fail_cell pos "unknown attribute %s" k)
      attributes;
    match
      Cell.make ~name ~kind
        ~drive:(int_of_float (number "drive"))
        ~input_cap:(number "input_cap")
        ~output_res:(number "output_res")
        ~intrinsic_rise:(number "intrinsic_rise")
        ~intrinsic_fall:(number "intrinsic_fall")
        ~area:(number "area") ~delay_steps ()
    with
    | cell -> cell
    | exception Invalid_argument msg ->
      (* Point at the cell header so the rejected block is locatable. *)
      fail at col "invalid cell %s: %s" name msg
  in
  let rec cells acc tokens =
    match tokens with
    | [] -> List.rev acc
    | { token = Ident "cell"; at; col } :: rest ->
      let (), rest = punct "'('" Lparen rest in
      let name, rest = ident rest in
      let (), rest = punct "')'" Rparen rest in
      let (), rest = punct "'{'" Lbrace rest in
      let attributes, rest = attrs [] rest in
      cells (build_cell name (at, col) attributes :: acc) rest
    | { at; col; _ } :: _ -> fail at col "expected 'cell'"
  in
  cells [] tokens

let parse input =
  Fault.trip Fault.Parser ~site:"liberty.parse";
  match parse_tokens (tokenize input) with
  | cells -> Ok cells
  | exception Parse_error e -> Error e

let parse_exn input =
  match parse input with
  | Ok cells -> cells
  | Error e -> raise (Verrors.Error (to_verror e))

let load_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  parse contents

let save_file path cells =
  let oc = open_out path in
  output_string oc (to_string cells);
  close_out oc
