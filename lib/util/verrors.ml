type code =
  | Parse_error
  | Invalid_tree
  | Invalid_library
  | Invalid_params
  | Invalid_modes
  | Empty_zones
  | Infeasible_window
  | Label_cap
  | Budget_exhausted
  | Deadline_exceeded
  | Fault_injected
  | Overloaded
  | Io_error
  | Internal

let code_name = function
  | Parse_error -> "parse-error"
  | Invalid_tree -> "invalid-tree"
  | Invalid_library -> "invalid-library"
  | Invalid_params -> "invalid-params"
  | Invalid_modes -> "invalid-modes"
  | Empty_zones -> "empty-zones"
  | Infeasible_window -> "infeasible-window"
  | Label_cap -> "label-cap"
  | Budget_exhausted -> "budget-exhausted"
  | Deadline_exceeded -> "deadline-exceeded"
  | Fault_injected -> "fault-injected"
  | Overloaded -> "overloaded"
  | Io_error -> "io-error"
  | Internal -> "internal"

let all_codes =
  [ Parse_error; Invalid_tree; Invalid_library; Invalid_params; Invalid_modes;
    Empty_zones; Infeasible_window; Label_cap; Budget_exhausted;
    Deadline_exceeded; Fault_injected; Overloaded; Io_error; Internal ]

let code_of_name name =
  List.find_opt (fun c -> String.equal (code_name c) name) all_codes

type t = {
  code : code;
  stage : string;
  subject : string option;
  message : string;
  hints : string list;
}

exception Error of t

let make ~code ~stage ?subject ?(hints = []) message =
  { code; stage; subject; message; hints }

let fail ~code ~stage ?subject ?hints message =
  raise (Error (make ~code ~stage ?subject ?hints message))

let error ~code ~stage ?subject ?hints message =
  Stdlib.Error (make ~code ~stage ?subject ?hints message)

let to_string e =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "[%s] %s%s: %s" (code_name e.code) e.stage
       (match e.subject with None -> "" | Some s -> " (" ^ s ^ ")")
       e.message);
  List.iter (fun h -> Buffer.add_string b ("\n  hint: " ^ h)) e.hints;
  Buffer.contents b

let pp fmt e = Format.pp_print_string fmt (to_string e)

let to_json e =
  Json.Obj
    ([ ("code", Json.Str (code_name e.code));
       ("stage", Json.Str e.stage) ]
    @ (match e.subject with
      | None -> []
      | Some s -> [ ("subject", Json.Str s) ])
    @ [ ("message", Json.Str e.message);
        ("hints", Json.List (List.map (fun h -> Json.Str h) e.hints)) ])

let of_exn = function
  | Error e -> e
  | Failure msg -> make ~code:Internal ~stage:"unknown" msg
  | Invalid_argument msg -> make ~code:Internal ~stage:"unknown" msg
  | Sys_error msg -> make ~code:Io_error ~stage:"io" msg
  | Not_found -> make ~code:Internal ~stage:"unknown" "value not found"
  | exn -> make ~code:Internal ~stage:"unknown" (Printexc.to_string exn)

let guard ~stage f =
  match f () with
  | v -> Ok v
  | exception ((Stack_overflow | Out_of_memory | Sys.Break) as e) -> raise e
  | exception Error e -> Stdlib.Error e
  | exception exn ->
    let e = of_exn exn in
    Stdlib.Error (if e.stage = "unknown" then { e with stage } else e)
