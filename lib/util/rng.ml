type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 output function: two xor-shift multiplies
   (Steele, Lea & Flood 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = s }

let of_instance ~seed i =
  if i < 0 then invalid_arg "Rng.of_instance: negative instance index";
  (* Draw number [i] of [create ~seed] has pre-mix state
     seed + (i+1)*gamma, so seeding a child with its mixed output is
     exactly [split] of the parent stream at position [i] — but in O(1)
     instead of O(i), which is what lets parallel workers jump straight
     to their own instance's stream. *)
  let pre =
    Int64.add (Int64.of_int seed)
      (Int64.mul golden_gamma (Int64.of_int (i + 1)))
  in
  { state = mix64 pre }

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native positive int range. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let float t ~bound =
  (* 53 uniform bits mapped into [0, bound). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (float_of_int bits /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. float t ~bound:(hi -. lo)

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t ~bound:1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t ~bound:1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | items ->
    let arr = Array.of_list items in
    arr.(int t ~bound:(Array.length arr))
