type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Shortest of %.15g/%.16g/%.17g that parses back exactly; 17 significant
   digits always suffice for a binary64. *)
let float_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p x in
      if float_of_string s = x then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> (
      match try_prec 16 with Some s -> s | None -> Printf.sprintf "%.17g" x)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write ~indent v =
  let buf = Buffer.create 1024 in
  let nl depth =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x ->
      Buffer.add_string buf (if Float.is_finite x then float_to_string x else "null")
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (depth + 1);
          go (depth + 1) item)
        items;
      nl depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          go (depth + 1) item)
        fields;
      nl depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let to_string v = write ~indent:false v
let to_string_pretty v = write ~indent:true v

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_lit lit v =
    if
      !pos + String.length lit <= len
      && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= len then fail "truncated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= len then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail "bad \\u escape"
          in
          (* ASCII range only — all this module's writer emits. *)
          if code > 0x7f then fail "non-ASCII \\u escape unsupported";
          Buffer.add_char buf (Char.chr code);
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < len
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      advance ()
    done;
    if start = !pos then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> parse_lit "true" (Bool true)
    | Some 'f' -> parse_lit "false" (Bool false)
    | Some 'n' -> parse_lit "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_value = function Str s -> Some s | _ -> None
let float_value = function Num x -> Some x | _ -> None

let int_value = function
  | Num x
    when Float.is_integer x
         && x >= float_of_int min_int
         && x <= float_of_int max_int -> Some (int_of_float x)
  | _ -> None

let bool_value = function Bool b -> Some b | _ -> None
let list_value = function List l -> Some l | _ -> None
let obj_value = function Obj fields -> Some fields | _ -> None
