(** Minimal JSON tree, writer and parser.

    The run-report subsystem ({!Repro_obs.Report}, the [BENCH_*.json]
    files) and the CLI's [--json] outputs need machine-readable
    documents that round-trip exactly: [of_string (to_string v)] must
    reconstruct [v], including float values bit-for-bit, without pulling
    in an external JSON dependency.

    Restrictions compared to full JSON: numbers are OCaml floats
    (integers survive up to 2^53), strings are byte strings escaped with
    [\uXXXX] for control characters (the parser only decodes ASCII
    escapes — all this writer emits), and non-finite floats are written
    as [null] (JSON has no representation for them; keep them out of
    documents that must round-trip). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** Key order is preserved. *)

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read and
    diffed by humans ([BENCH_*.json]). *)

val of_string : string -> (t, string) result
(** Parse a complete document; the error carries a byte offset. *)

val float_to_string : float -> string
(** Shortest decimal rendering that parses back to the same float
    (integral values print without a fractional part). *)

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field lookup; [None] when absent or not an object. *)

val string_value : t -> string option
val float_value : t -> float option
val int_value : t -> int option
(** [Num] with an integral value in [int] range. *)

val bool_value : t -> bool option
val list_value : t -> t list option
val obj_value : t -> (string * t) list option
