let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let sumsq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (sumsq /. float_of_int (Array.length xs))

let normalized_stddev xs =
  let m = mean xs in
  if m = 0.0 then invalid_arg "Stats.normalized_stddev: zero mean";
  stddev xs /. m

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs ~p =
  require_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: total over NaN and an
     order of magnitude cheaper than the generic comparison. *)
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let correlation xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.correlation: length mismatch";
  require_nonempty "Stats.correlation" xs;
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      num := !num +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy))
    xs;
  if !vx = 0.0 || !vy = 0.0 then
    invalid_arg "Stats.correlation: zero-variance sample";
  !num /. sqrt (!vx *. !vy)

let fraction_satisfying pred xs =
  let hits = Array.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 xs in
  if Array.length xs = 0 then 0.0
  else float_of_int hits /. float_of_int (Array.length xs)
