(** Deterministic pseudo-random number generation.

    All stochastic components of the library (benchmark synthesis,
    Monte-Carlo variation analysis, property-test corpora) draw their
    randomness from an explicitly seeded generator so that every run of the
    benches and tests is reproducible.  The implementation is SplitMix64,
    which has a 64-bit state, passes BigCrush, and supports cheap
    independent streams via {!split}. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use one split per subsystem so that adding draws to one subsystem does
    not perturb another. *)

val of_instance : seed:int -> int -> t
(** [of_instance ~seed i] is the generator [split] would produce after
    [i] draws from [create ~seed], computed in O(1).  The resulting
    family of streams is a pure function of [(seed, i)], so per-instance
    work (e.g. one Monte-Carlo trial) gets bit-identical randomness no
    matter how instances are chunked across domains.
    @raise Invalid_argument if [i < 0]. *)

val int : t -> bound:int -> int
(** [int t ~bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> bound:float -> float
(** [float t ~bound] returns a uniform float in [\[0, bound)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** [uniform t ~lo ~hi] returns a uniform float in [\[lo, hi)]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] draws from the normal distribution
    N(mu, sigma^2) by the Box-Muller transform. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.
    @raise Invalid_argument on the empty list. *)
